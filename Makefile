# Standard entry points. Everything is plain `go` underneath.

.PHONY: all build test vet bench race experiments datasets clean

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test -shuffle=on ./...

race:
	go test -race -shuffle=on ./...

bench:
	go test -bench=. -benchmem ./...

# Regenerate every paper table/figure (writes CSVs into ./csv).
experiments:
	go run ./cmd/experiments -all -chart -csv csv

# Write the 12 synthetic screens into ./data at 1% of paper scale.
datasets:
	go run ./cmd/datagen -out data -scale 0.01

# Run every example end to end.
examples:
	go run ./examples/quickstart
	go run ./examples/featurespace
	go run ./examples/drugdiscovery
	go run ./examples/classification
	go run ./examples/graphsearch
	go run ./examples/generalgraphs

clean:
	rm -rf data csv
