# Standard entry points. Everything is plain `go` underneath.

.PHONY: all build test vet lint fuzz bench bench-json bench-smoke race crash-test shard-test experiments datasets examples clean

all: build vet lint test

build:
	go build ./...

vet:
	go vet ./...

# Project-invariant analyzer suite (internal/analysis): determinism of
# canonical codes/fingerprints/cache keys, runctl checkpoint coverage,
# panic-isolated goroutine spawns, context discipline, %w wrapping.
lint:
	go run ./cmd/graphsiglint ./...

# Native fuzz harnesses on a short fixed budget: graph text codec
# round-trip, the CSR-vs-reference representation differentials (build/
# codec round-trip and VF2 verdict/count/order agreement), DFS-code
# minimality under node relabeling and edge-order mutation, the SMILES
# parser, and the store's two untrusted-input decoders (segment binary
# format, manifest JSON). `go test -fuzz` accepts one target per
# invocation, hence one line each.
fuzz:
	go test ./internal/graph    -run='^$$' -fuzz=FuzzReadDB               -fuzztime=2000x
	go test ./internal/graph    -run='^$$' -fuzz=FuzzCSRRoundTrip         -fuzztime=500x
	go test ./internal/isomorph -run='^$$' -fuzz=FuzzVF2Differential      -fuzztime=2000x
	go test ./internal/dfscode  -run='^$$' -fuzz=FuzzCanonicalInvariance  -fuzztime=500x
	go test ./internal/dfscode  -run='^$$' -fuzz=FuzzMinCodeEdgeOrder     -fuzztime=500x
	go test ./internal/gspan    -run='^$$' -fuzz=FuzzClosedEquivalence    -fuzztime=500x
	go test ./internal/chem     -run='^$$' -fuzz=FuzzParseSMILES          -fuzztime=2000x
	go test ./internal/store    -run='^$$' -fuzz=FuzzDecodeSegment        -fuzztime=500x
	go test ./internal/store    -run='^$$' -fuzz=FuzzManifestJSON         -fuzztime=500x

test:
	go test -shuffle=on ./...

race:
	go test -race -shuffle=on ./...

# Durability integration test: builds a real serve binary, kills it
# with SIGKILL mid-mine, restarts over the same journal directory, and
# asserts the resumed job finishes byte-identical to an uninterrupted
# mine. Under -race because the interesting bugs here are races between
# the checkpointer, the journal, and the worker pool.
crash-test:
	go test -race -count=1 -run 'TestCrashRestart' -v ./cmd/serve

# Shard-invariance acceptance gate: the scatter-gather mine must answer
# byte-identically — every p-value and verified support — to an
# unsharded in-memory mine at shard counts 1, 2, and 4 under both
# partition strategies, plus the out-of-core store-backed path. Under
# -race because the coordinator fans out per-shard vectorization and
# support counting.
shard-test:
	go test -race -count=1 -run 'TestShardInvariance|TestStoreBackedMine' -v ./internal/shard

bench:
	go test -bench=. -benchmem ./...

# Machine-readable per-stage mining profile (the Fig-10 workload read
# through the obs registry) for CI trend tracking.
bench-json:
	go run ./cmd/benchjson -runs 3 -out BENCH_graphsig.json

# Same workload as bench-json, gated: fails when a fresh run is more
# than 2x slower per run — or allocates more than 2x as much — as the
# committed baseline. CI runs this blocking; refresh the baseline with
# `make bench-json` after intentional performance changes.
bench-smoke:
	go run ./cmd/benchjson -runs 1 -out - -baseline BENCH_graphsig.json -max-regression 2

# Regenerate every paper table/figure (writes CSVs into ./csv).
experiments:
	go run ./cmd/experiments -all -chart -csv csv

# Write the 12 synthetic screens into ./data at 1% of paper scale.
datasets:
	go run ./cmd/datagen -out data -scale 0.01

# Run every example end to end.
examples:
	go run ./examples/quickstart
	go run ./examples/featurespace
	go run ./examples/drugdiscovery
	go run ./examples/classification
	go run ./examples/graphsearch
	go run ./examples/generalgraphs

# BENCH_graphsig.json is a committed baseline, not a build artifact;
# clean leaves it alone.
clean:
	rm -rf data csv
