// Benchmarks: one per paper table/figure (see DESIGN.md §2 and
// EXPERIMENTS.md) plus the design-choice ablations. Workloads are small
// fixed slices of the synthetic screens so that -bench=. completes in
// minutes; cmd/experiments runs the full paper-style sweeps.
package graphsig

import (
	"fmt"
	"testing"
	"time"

	"graphsig/internal/chem"
	"graphsig/internal/classify"
	"graphsig/internal/core"
	"graphsig/internal/experiments"
	"graphsig/internal/feature"
	"graphsig/internal/fsg"
	"graphsig/internal/fvmine"
	"graphsig/internal/gindex"
	"graphsig/internal/gspan"
	"graphsig/internal/isomorph"
	"graphsig/internal/kernel"
	"graphsig/internal/leap"
	"graphsig/internal/obs"
	"graphsig/internal/rwr"
	"graphsig/internal/sigmodel"
	"graphsig/internal/svm"
)

// benchDB caches a generated screen across benchmarks.
var benchDBCache = map[int][]*Graph{}

func benchDB(n int) []*Graph {
	if db, ok := benchDBCache[n]; ok {
		return db
	}
	spec := chem.AIDSSpec()
	db := chem.GenerateN(spec, n).Graphs
	benchDBCache[n] = db
	return db
}

func benchMiningConfig() core.Config {
	cfg := core.Defaults()
	cfg.CutoffRadius = 3
	cfg.SkipVerify = true
	return cfg
}

// BenchmarkFig2 regenerates the motivating baseline-runtime figure: one
// sub-benchmark per (miner, frequency threshold) point.
func BenchmarkFig2(b *testing.B) {
	db := benchDB(100)
	for _, freq := range []float64{10, 8, 6} {
		minSup := gspan.FromPercent(freq, len(db))
		b.Run(fmt.Sprintf("gSpan/freq=%g%%", freq), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				gspan.Mine(db, gspan.Options{MinSupport: minSup})
			}
		})
		b.Run(fmt.Sprintf("FSG/freq=%g%%", freq), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fsg.Mine(db, fsg.Options{MinSupport: minSup})
			}
		})
	}
}

// BenchmarkFig4_AtomCoverage regenerates the cumulative atom profile.
func BenchmarkFig4_AtomCoverage(b *testing.B) {
	db := benchDB(300)
	alpha := chem.Alphabet()
	for i := 0; i < b.N; i++ {
		profile := feature.AtomProfile(db, alpha)
		if profile[4].CumulativePct < 97 {
			b.Fatalf("top-5 coverage %.1f", profile[4].CumulativePct)
		}
	}
}

// BenchmarkFig9_GraphSig measures GraphSig across the frequency sweep of
// Fig 9 — including 0.1%, where the baselines cannot run.
func BenchmarkFig9_GraphSig(b *testing.B) {
	db := benchDB(100)
	for _, freq := range []float64{0.1, 1, 10} {
		b.Run(fmt.Sprintf("freq=%g%%", freq), func(b *testing.B) {
			cfg := benchMiningConfig()
			cfg.MinFreqPct = freq
			for i := 0; i < b.N; i++ {
				core.Mine(db, cfg)
			}
		})
	}
}

// BenchmarkFig10_Profile runs the full pipeline on one cancer screen and
// reports the per-phase split as custom metrics. The split is read from
// the obs stage metrics — the same per-stage instrumentation /metrics
// serves — so the benchmark and the running service report one truth.
func BenchmarkFig10_Profile(b *testing.B) {
	spec := chem.CancerSpecs()[1] // MOLT-4
	db := chem.GenerateN(spec, 120).Graphs
	cfg := benchMiningConfig()
	reg := obs.NewRegistry()
	cfg.Metrics = reg
	var profT time.Duration
	for i := 0; i < b.N; i++ {
		res := core.Mine(db, cfg)
		profT += res.Profile.RWR + res.Profile.FeatureAnalysis + res.Profile.FSM
	}
	snap := reg.Snapshot()
	stageSeconds := func(stage string) float64 {
		h, _ := snap.HistogramValue(obs.MStageDuration, "stage", stage)
		return h.Sum
	}
	// Fold the six stages into the paper's three phases (Fig 10).
	rwrT := stageSeconds("rwr")
	featT := stageSeconds("features") + stageSeconds("fvmine") + stageSeconds("group")
	fsmT := stageSeconds("group-mine") + stageSeconds("verify")
	total := rwrT + featT + fsmT
	if total > 0 {
		b.ReportMetric(100*rwrT/total, "rwr%")
		b.ReportMetric(100*featT/total, "feature%")
		b.ReportMetric(100*fsmT/total, "fsm%")
	}
	if profT > 0 {
		// Cross-check the legacy profile against the obs split: the two
		// instrumentations measure the same run, so they must agree
		// within bookkeeping overhead.
		b.ReportMetric(total/profT.Seconds(), "obs/profile")
	}
	for _, stage := range []string{"features", "rwr", "fvmine", "group", "group-mine"} {
		started := snap.CounterValue(obs.MStageStarted, "stage", stage)
		completed := snap.CounterValue(obs.MStageCompleted, "stage", stage)
		if started == 0 || started != completed {
			b.Fatalf("stage %s: started %d completed %d", stage, started, completed)
		}
	}
}

// BenchmarkFig11_DatasetSize measures GraphSig at increasing database
// sizes (the linear-growth claim).
func BenchmarkFig11_DatasetSize(b *testing.B) {
	for _, n := range []int{100, 200, 400} {
		db := benchDB(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			cfg := benchMiningConfig()
			for i := 0; i < b.N; i++ {
				core.Mine(db, cfg)
			}
		})
	}
}

// BenchmarkFig12_PvalueSweep measures GraphSig against the p-value
// threshold (the slow-growth claim).
func BenchmarkFig12_PvalueSweep(b *testing.B) {
	db := benchDB(100)
	for _, p := range []float64{0.01, 0.1, 0.5} {
		b.Run(fmt.Sprintf("maxP=%g", p), func(b *testing.B) {
			cfg := benchMiningConfig()
			cfg.MaxPvalue = p
			for i := 0; i < b.N; i++ {
				core.Mine(db, cfg)
			}
		})
	}
}

// BenchmarkFig13to15_MotifRecovery times the qualitative drug-core
// recovery pipeline on the AIDS-like actives.
func BenchmarkFig13to15_MotifRecovery(b *testing.B) {
	d := chem.GenerateN(chem.AIDSSpec(), 400)
	actives := d.Actives()
	cfg := benchMiningConfig()
	cfg.SkipVerify = false
	cfg.FeatureSet = core.BuildFeatureSet(d.Graphs, cfg)
	for i := 0; i < b.N; i++ {
		res := core.Mine(actives, cfg)
		if len(res.Subgraphs) == 0 {
			b.Fatal("nothing mined")
		}
	}
}

// BenchmarkFig16_PvalueVsFrequency times the scatter generation including
// the benzene significance evaluation.
func BenchmarkFig16_PvalueVsFrequency(b *testing.B) {
	cfg := experiments.Defaults()
	cfg.MiningN = 60
	for i := 0; i < b.N; i++ {
		res := experiments.Fig16(cfg)
		if res.Benzene.PValue <= 0.1 {
			b.Fatal("benzene significant")
		}
	}
}

// classification bench fixtures: a balanced train/test split of MOLT-4.
func benchClassification() (trainPos, trainNeg, test []*Graph, testLabels []bool) {
	d := chem.GenerateN(chem.CancerSpecs()[1], 500)
	pos := d.Actives()
	neg := d.Inactives()[:len(pos)]
	split := len(pos) * 3 / 4
	test = append(append([]*Graph{}, pos[split:]...), neg[split:]...)
	testLabels = make([]bool, len(test))
	for i := range pos[split:] {
		testLabels[i] = true
	}
	return pos[:split], neg[:split], test, testLabels
}

// BenchmarkTable6_GraphSig times the significant-pattern classifier
// (train + score), the Table VI / Fig 17 GraphSig column.
func BenchmarkTable6_GraphSig(b *testing.B) {
	trainPos, trainNeg, test, _ := benchClassification()
	opt := classify.DefaultGraphSigOptions()
	opt.Core.CutoffRadius = 3
	for i := 0; i < b.N; i++ {
		c := classify.TrainGraphSig(trainPos, trainNeg, opt)
		for _, g := range test {
			c.Score(g)
		}
	}
}

// BenchmarkTable6_LEAP times the pattern-based baseline column.
func BenchmarkTable6_LEAP(b *testing.B) {
	trainPos, trainNeg, test, _ := benchClassification()
	opt := classify.LEAPOptions{
		Mine: leap.Options{MinPosFreq: 0.3, TopK: 20, MaxEdges: 8},
		SVM:  svm.LinearOptions{Seed: 1},
	}
	for i := 0; i < b.N; i++ {
		c := classify.TrainLEAP(trainPos, trainNeg, opt)
		for _, g := range test {
			c.Score(g)
		}
	}
}

// BenchmarkTable6_OA times the kernel baseline column (the slow one —
// Fig 17's OA(3X) shape).
func BenchmarkTable6_OA(b *testing.B) {
	trainPos, trainNeg, test, _ := benchClassification()
	for i := 0; i < b.N; i++ {
		c := classify.TrainOA(trainPos, trainNeg, classify.OAOptions{SVM: svm.KernelOptions{Seed: 1}})
		for _, g := range test {
			c.Score(g)
		}
	}
}

// BenchmarkFig17_ScoreOnly times per-query scoring of the trained
// classifiers (the deployment-side cost).
func BenchmarkFig17_ScoreOnly(b *testing.B) {
	trainPos, trainNeg, test, _ := benchClassification()
	gsOpt := classify.DefaultGraphSigOptions()
	gsOpt.Core.CutoffRadius = 3
	gs := classify.TrainGraphSig(trainPos, trainNeg, gsOpt)
	lp := classify.TrainLEAP(trainPos, trainNeg, classify.LEAPOptions{
		Mine: leap.Options{MinPosFreq: 0.3, TopK: 20, MaxEdges: 8},
	})
	oa := classify.TrainOA(trainPos, trainNeg, classify.OAOptions{})
	for _, tc := range []struct {
		name string
		m    classify.Scorer
	}{{"GraphSig", gs}, {"LEAP", lp}, {"OA", oa}} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tc.m.Score(test[i%len(test)])
			}
		})
	}
}

// --- Ablations (DESIGN.md §4) ---

// BenchmarkAblation_RWRvsWindowCounts contrasts the RWR feature
// extraction with plain window counting (§II-C's structural-information
// argument is about quality; this measures the cost side).
func BenchmarkAblation_RWRvsWindowCounts(b *testing.B) {
	db := benchDB(100)
	fs := feature.ChemistrySet(db, chem.Alphabet(), 5)
	cfg := rwr.Defaults()
	b.Run("RWR", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g := db[i%len(db)]
			for v := 0; v < g.NumNodes(); v++ {
				rwr.Walk(g, v, fs, cfg)
			}
		}
	})
	b.Run("WindowCounts", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g := db[i%len(db)]
			for v := 0; v < g.NumNodes(); v++ {
				rwr.WindowCounts(g, v, 4, fs, 10)
			}
		}
	})
}

// BenchmarkAblation_DiscretizationBins sweeps the RWR bin count.
func BenchmarkAblation_DiscretizationBins(b *testing.B) {
	db := benchDB(60)
	for _, bins := range []int{5, 10, 20} {
		b.Run(fmt.Sprintf("bins=%d", bins), func(b *testing.B) {
			cfg := benchMiningConfig()
			cfg.Bins = bins
			for i := 0; i < b.N; i++ {
				core.Mine(db, cfg)
			}
		})
	}
}

// BenchmarkAblation_GroupMiner contrasts FSG and gSpan as the group
// maximal-FSM step of Algorithm 2 line 13.
func BenchmarkAblation_GroupMiner(b *testing.B) {
	db := benchDB(100)
	for _, tc := range []struct {
		name  string
		miner core.MinerKind
	}{{"FSG", core.MinerFSG}, {"gSpan", core.MinerGSpan}} {
		b.Run(tc.name, func(b *testing.B) {
			cfg := benchMiningConfig()
			cfg.Miner = tc.miner
			for i := 0; i < b.N; i++ {
				core.Mine(db, cfg)
			}
		})
	}
}

// BenchmarkAblation_FVMinePriors contrasts FVMine under global priors
// (GraphSig's model) and per-label self priors.
func BenchmarkAblation_FVMinePriors(b *testing.B) {
	db := benchDB(100)
	fs := feature.ChemistrySet(db, chem.Alphabet(), 5)
	vectors := rwr.DatabaseVectors(db, fs, rwr.Defaults())
	var all []feature.Vector
	var carbon []feature.Vector
	for _, nv := range vectors {
		all = append(all, nv.Vec)
		if nv.Label == chem.Atom("C") {
			carbon = append(carbon, nv.Vec)
		}
	}
	global := sigmodel.New(all)
	b.Run("global-priors", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fvmine.Mine(carbon, fvmine.Options{MinSupport: 5, MaxPvalue: 0.1, Model: global, SkipZeroFloor: true})
		}
	})
	b.Run("self-priors", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fvmine.Mine(carbon, fvmine.Options{MinSupport: 5, MaxPvalue: 0.1, SkipZeroFloor: true})
		}
	})
}

// BenchmarkSubstrate_VF2 measures the isomorphism workhorse on molecule-
// scale inputs (support counting of benzene over a screen slice).
func BenchmarkSubstrate_VF2(b *testing.B) {
	db := benchDB(200)
	pattern := chem.Benzene()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if isomorph.Support(pattern, db) == 0 {
			b.Fatal("benzene absent")
		}
	}
}

// BenchmarkSubstrate_OAKernelPair measures one optimal-assignment kernel
// evaluation (the O(n³) unit cost behind Fig 17).
func BenchmarkSubstrate_OAKernelPair(b *testing.B) {
	db := benchDB(50)
	k := kernel.DefaultOA()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k.Similarity(db[i%len(db)], db[(i+1)%len(db)])
	}
}

// BenchmarkSubstrate_RWRNode measures one random-walk feature extraction
// (the unit GraphSig pays per database node).
func BenchmarkSubstrate_RWRNode(b *testing.B) {
	db := benchDB(50)
	fs := feature.ChemistrySet(db, chem.Alphabet(), 5)
	cfg := rwr.Defaults()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := db[i%len(db)]
		rwr.Walk(g, i%g.NumNodes(), fs, cfg)
	}
}

// BenchmarkSubstrate_FVMine measures the closed-vector search over a
// carbon vector group.
func BenchmarkSubstrate_FVMine(b *testing.B) {
	db := benchDB(100)
	fs := feature.ChemistrySet(db, chem.Alphabet(), 5)
	vectors := rwr.DatabaseVectors(db, fs, rwr.Defaults())
	var all, carbon []feature.Vector
	for _, nv := range vectors {
		all = append(all, nv.Vec)
		if nv.Label == chem.Atom("C") {
			carbon = append(carbon, nv.Vec)
		}
	}
	model := sigmodel.New(all)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fvmine.Mine(carbon, fvmine.Options{MinSupport: 5, MaxPvalue: 0.1, Model: model, SkipZeroFloor: true})
	}
}

// BenchmarkSubstrate_TopK measures the threshold-free top-k variant.
func BenchmarkSubstrate_TopK(b *testing.B) {
	db := benchDB(100)
	fs := feature.ChemistrySet(db, chem.Alphabet(), 5)
	vectors := rwr.DatabaseVectors(db, fs, rwr.Defaults())
	var all, carbon []feature.Vector
	for _, nv := range vectors {
		all = append(all, nv.Vec)
		if nv.Label == chem.Atom("C") {
			carbon = append(carbon, nv.Vec)
		}
	}
	model := sigmodel.New(all)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fvmine.MineTopK(carbon, 20, 5, model)
	}
}

// BenchmarkSubstrate_SMILES measures the SMILES round trip.
func BenchmarkSubstrate_SMILES(b *testing.B) {
	db := benchDB(50)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := chem.WriteSMILES(db[i%len(db)])
		if err != nil {
			b.Fatal(err)
		}
		if _, err := chem.ParseSMILES(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGIndex_QueryVsScan contrasts indexed and scan subgraph search.
func BenchmarkGIndex_QueryVsScan(b *testing.B) {
	db := benchDB(200)
	ix := gindex.BuildFrequent(db, gindex.FrequentOptions{MinSupportPct: 15, MaxPatternEdges: 3})
	query := db[7].CutGraph(0, 2)
	b.Run("indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ix.Query(query)
		}
	})
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gindex.ScanQuery(db, query)
		}
	})
}
