// Command benchjson runs the Fig-10 profiling workload — a full
// GraphSig mine over a synthetic MOLT-4 slice — with the obs registry
// attached, and writes the per-stage split as machine-readable JSON
// (default BENCH_graphsig.json; `make bench-json`). It exists so CI
// and tooling can track where mining time goes per stage without
// scraping `go test -bench` text:
//
//	benchjson -n 120 -runs 3 -out BENCH_graphsig.json
//
// The emitted stages are the same series /metrics serves, read through
// the same snapshot API, so benchmark numbers and production telemetry
// can never disagree about what was measured.
package main

import (
	"encoding/json"
	"flag"
	"log"
	"os"
	"time"

	"graphsig/internal/chem"
	"graphsig/internal/core"
	"graphsig/internal/obs"
)

// stageJSON is one pipeline stage's accounting across all runs.
type stageJSON struct {
	Started   int64   `json:"started"`
	Completed int64   `json:"completed"`
	Degraded  int64   `json:"degraded"`
	Units     int64   `json:"units"`
	Seconds   float64 `json:"seconds"`
	P50       float64 `json:"p50Seconds"`
	P95       float64 `json:"p95Seconds"`
}

type benchJSON struct {
	Dataset       string               `json:"dataset"`
	Graphs        int                  `json:"graphs"`
	Runs          int                  `json:"runs"`
	Radius        int                  `json:"radius"`
	ElapsedSec    float64              `json:"elapsedSeconds"`
	Patterns      int                  `json:"patterns"`
	Stages        map[string]stageJSON `json:"stages"`
	StageOrder    []string             `json:"stageOrder"`
	GeneratedUnix int64                `json:"generatedUnix"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")

	n := flag.Int("n", 120, "molecules in the generated MOLT-4 slice")
	runs := flag.Int("runs", 1, "full mining runs to accumulate")
	radius := flag.Int("radius", 3, "cutoff radius")
	verify := flag.Bool("verify", false, "include graph-space support verification")
	out := flag.String("out", "BENCH_graphsig.json", "output file (- for stdout)")
	flag.Parse()

	spec := chem.CancerSpecs()[1] // MOLT-4, the Fig-10 screen
	db := chem.GenerateN(spec, *n).Graphs

	cfg := core.Defaults()
	cfg.CutoffRadius = *radius
	cfg.SkipVerify = !*verify
	reg := obs.NewRegistry()
	cfg.Metrics = reg

	t0 := time.Now()
	patterns := 0
	for i := 0; i < *runs; i++ {
		res := core.Mine(db, cfg)
		if res.Truncated {
			log.Fatalf("benchmark run truncated: %s", res.Degradation.String())
		}
		patterns = len(res.Subgraphs)
	}
	elapsed := time.Since(t0)

	snap := reg.Snapshot()
	result := benchJSON{
		Dataset:       spec.Name,
		Graphs:        len(db),
		Runs:          *runs,
		Radius:        *radius,
		ElapsedSec:    elapsed.Seconds(),
		Patterns:      patterns,
		Stages:        map[string]stageJSON{},
		StageOrder:    snap.LabelValues(obs.MStageStarted, "stage"),
		GeneratedUnix: t0.Unix(),
	}
	for _, stage := range result.StageOrder {
		h, _ := snap.HistogramValue(obs.MStageDuration, "stage", stage)
		result.Stages[stage] = stageJSON{
			Started:   snap.CounterValue(obs.MStageStarted, "stage", stage),
			Completed: snap.CounterValue(obs.MStageCompleted, "stage", stage),
			Degraded:  snap.CounterValue(obs.MStageDegraded, "stage", stage),
			Units:     snap.CounterValue(obs.MStageUnits, "stage", stage),
			Seconds:   h.Sum,
			P50:       h.Quantile(0.5),
			P95:       h.Quantile(0.95),
		}
	}

	data, err := json.MarshalIndent(result, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("mined %d patterns over %d graphs ×%d in %s; wrote %s",
		patterns, len(db), *runs, elapsed.Round(time.Millisecond), *out)
}
