// Command benchjson runs the Fig-10 profiling workload — a full
// GraphSig mine over a synthetic MOLT-4 slice — with the obs registry
// attached, and writes the per-stage split as machine-readable JSON
// (default BENCH_graphsig.json; `make bench-json`). It exists so CI
// and tooling can track where mining time goes per stage without
// scraping `go test -bench` text:
//
//	benchjson -n 120 -runs 3 -out BENCH_graphsig.json
//
// With -baseline it compares the fresh elapsed time against a committed
// baseline file and exits non-zero on regression beyond -max-regression
// (`make bench-smoke`). The comparison is skipped, with a log line, when
// the baseline was recorded for a different dataset shape.
//
// The emitted stages are the same series /metrics serves, read through
// the same snapshot API, so benchmark numbers and production telemetry
// can never disagree about what was measured.
package main

import (
	"encoding/json"
	"flag"
	"log"
	"os"
	"runtime"
	"time"

	"graphsig/internal/chem"
	"graphsig/internal/core"
	"graphsig/internal/obs"
)

// stageJSON is one pipeline stage's accounting across all runs.
type stageJSON struct {
	Started   int64   `json:"started"`
	Completed int64   `json:"completed"`
	Degraded  int64   `json:"degraded"`
	Units     int64   `json:"units"`
	Seconds   float64 `json:"seconds"`
	P50       float64 `json:"p50Seconds"`
	P95       float64 `json:"p95Seconds"`
}

type benchJSON struct {
	Dataset       string               `json:"dataset"`
	Graphs        int                  `json:"graphs"`
	Runs          int                  `json:"runs"`
	Radius        int                  `json:"radius"`
	Parallelism   int                  `json:"parallelism"`
	ElapsedSec    float64              `json:"elapsedSeconds"`
	AllocsPerRun  float64              `json:"allocsPerRun"`
	AllocMBPerRun float64              `json:"allocMBPerRun"`
	Patterns      int                  `json:"patterns"`
	WindowHits    int64                `json:"windowCacheHits"`
	WindowMisses  int64                `json:"windowCacheMisses"`
	PrefilterHit  int64                `json:"prefilterRejects"`
	PrefilterMiss int64                `json:"prefilterPasses"`
	// Closed-pattern mining counters: patterns suppressed at emission,
	// DFS subtrees cut by equivalent-occurrence detection, containment
	// pairs the maximality sweeps examined, and how many reached VF2.
	// Together they make the closed-mine's effect on the O(n²) sweep
	// visible in CI, not just in wall time.
	ClosedPrunes    int64 `json:"closedPrunes"`
	EquivOccHits    int64 `json:"equivOccurrenceHits"`
	MaximalPairs    int64 `json:"maximalSweepPairs"`
	MaximalVF2Calls int64 `json:"maximalVF2Calls"`
	Stages        map[string]stageJSON `json:"stages"`
	StageOrder    []string             `json:"stageOrder"`
	GeneratedUnix int64                `json:"generatedUnix"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")

	n := flag.Int("n", 120, "molecules in the generated MOLT-4 slice")
	runs := flag.Int("runs", 1, "full mining runs to accumulate")
	radius := flag.Int("radius", 3, "cutoff radius")
	parallelism := flag.Int("parallelism", 0, "Config.Parallelism (0 = GOMAXPROCS)")
	verify := flag.Bool("verify", false, "include graph-space support verification")
	out := flag.String("out", "BENCH_graphsig.json", "output file (- for stdout)")
	baseline := flag.String("baseline", "", "committed baseline JSON to compare against (empty = no comparison)")
	maxRegression := flag.Float64("max-regression", 2.0, "fail when elapsed exceeds this multiple of the baseline")
	flag.Parse()

	spec := chem.CancerSpecs()[1] // MOLT-4, the Fig-10 screen
	db := chem.GenerateN(spec, *n).Graphs

	cfg := core.Defaults()
	cfg.CutoffRadius = *radius
	cfg.SkipVerify = !*verify
	cfg.Parallelism = *parallelism
	reg := obs.NewRegistry()
	cfg.Metrics = reg

	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	t0 := time.Now()
	patterns := 0
	for i := 0; i < *runs; i++ {
		res := core.Mine(db, cfg)
		if res.Truncated {
			log.Fatalf("benchmark run truncated: %s", res.Degradation.String())
		}
		patterns = len(res.Subgraphs)
	}
	elapsed := time.Since(t0)
	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)

	effParallel := *parallelism
	if effParallel <= 0 {
		effParallel = runtime.GOMAXPROCS(0)
	}
	snap := reg.Snapshot()
	result := benchJSON{
		Dataset:       spec.Name,
		Graphs:        len(db),
		Runs:          *runs,
		Radius:        *radius,
		Parallelism:   effParallel,
		ElapsedSec:    elapsed.Seconds(),
		AllocsPerRun:  float64(msAfter.Mallocs-msBefore.Mallocs) / float64(*runs),
		AllocMBPerRun: float64(msAfter.TotalAlloc-msBefore.TotalAlloc) / float64(*runs) / (1 << 20),
		Patterns:      patterns,
		WindowHits:    snap.CounterValue(obs.MWindowCacheHits),
		WindowMisses:  snap.CounterValue(obs.MWindowCacheMisses),
		PrefilterHit:  sumSites(snap, obs.MPrefilterRejects),
		PrefilterMiss: sumSites(snap, obs.MPrefilterPasses),
		ClosedPrunes:  sumLabel(snap, obs.MClosedPrunes, "miner"),
		EquivOccHits:  sumLabel(snap, obs.MEquivOccurrences, "miner"),
		MaximalPairs:  sumSites(snap, obs.MMaximalPairs),
		MaximalVF2Calls: snap.CounterValue(obs.MPrefilterPasses,
			"site", "maximal"),
		Stages: map[string]stageJSON{},
		StageOrder:    snap.LabelValues(obs.MStageStarted, "stage"),
		GeneratedUnix: t0.Unix(),
	}
	for _, stage := range result.StageOrder {
		h, _ := snap.HistogramValue(obs.MStageDuration, "stage", stage)
		result.Stages[stage] = stageJSON{
			Started:   snap.CounterValue(obs.MStageStarted, "stage", stage),
			Completed: snap.CounterValue(obs.MStageCompleted, "stage", stage),
			Degraded:  snap.CounterValue(obs.MStageDegraded, "stage", stage),
			Units:     snap.CounterValue(obs.MStageUnits, "stage", stage),
			Seconds:   h.Sum,
			P50:       h.Quantile(0.5),
			P95:       h.Quantile(0.95),
		}
	}

	data, err := json.MarshalIndent(result, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
	} else {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("mined %d patterns over %d graphs ×%d in %s; wrote %s",
			patterns, len(db), *runs, elapsed.Round(time.Millisecond), *out)
	}

	if *baseline != "" {
		checkRegression(*baseline, result, *maxRegression)
	}
}

// sumSites totals a labelled counter across its "site" label values
// (maximal-filter and verify prefilters report separately).
func sumSites(snap obs.Snapshot, name string) int64 {
	return sumLabel(snap, name, "site")
}

// sumLabel totals a counter across every value of one label.
func sumLabel(snap obs.Snapshot, name, label string) int64 {
	var total int64
	for _, v := range snap.LabelValues(name, label) {
		total += snap.CounterValue(name, label, v)
	}
	return total
}

// checkRegression exits non-zero when the fresh run is slower than
// maxRegression × the committed baseline on the same workload shape.
// Per-run seconds are compared so -runs need not match the baseline's.
func checkRegression(path string, fresh benchJSON, maxRegression float64) {
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatalf("read baseline: %v", err)
	}
	var base benchJSON
	if err := json.Unmarshal(data, &base); err != nil {
		log.Fatalf("parse baseline %s: %v", path, err)
	}
	if base.Dataset != fresh.Dataset || base.Graphs != fresh.Graphs || base.Radius != fresh.Radius {
		log.Printf("baseline %s was recorded for %s/%d graphs/radius %d, not %s/%d/%d; skipping regression check",
			path, base.Dataset, base.Graphs, base.Radius, fresh.Dataset, fresh.Graphs, fresh.Radius)
		return
	}
	if base.Runs < 1 || base.ElapsedSec <= 0 {
		log.Printf("baseline %s has no usable timing; skipping regression check", path)
		return
	}
	basePer := base.ElapsedSec / float64(base.Runs)
	freshPer := fresh.ElapsedSec / float64(fresh.Runs)
	ratio := freshPer / basePer
	log.Printf("%.3fs/run vs baseline %.3fs/run (%.2fx, limit %.2fx)", freshPer, basePer, ratio, maxRegression)
	if ratio > maxRegression {
		log.Fatalf("performance regression: %.2fx exceeds the %.2fx limit", ratio, maxRegression)
	}
	// Allocation churn is gated at the same multiple; baselines written
	// before the field existed decode to 0 and skip the check.
	if base.AllocsPerRun > 0 && fresh.AllocsPerRun > 0 {
		aRatio := fresh.AllocsPerRun / base.AllocsPerRun
		log.Printf("%.0f allocs/run vs baseline %.0f allocs/run (%.2fx, limit %.2fx)",
			fresh.AllocsPerRun, base.AllocsPerRun, aRatio, maxRegression)
		if aRatio > maxRegression {
			log.Fatalf("allocation regression: %.2fx exceeds the %.2fx limit", aRatio, maxRegression)
		}
	}
	// Closed-pattern pruning must stay engaged: a baseline that recorded
	// prunes against a fresh run with none means the miners silently fell
	// back to sweeping the full frequent set — a regression wall time
	// alone can hide on small workloads.
	if base.ClosedPrunes > 0 {
		log.Printf("%d closed prunes vs baseline %d", fresh.ClosedPrunes, base.ClosedPrunes)
		if fresh.ClosedPrunes == 0 {
			log.Fatal("closed-pattern pruning inactive: baseline recorded prunes, fresh run has none")
		}
	}
}
