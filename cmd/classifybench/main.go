// Command classifybench trains and evaluates the three §VI-D classifiers
// (GraphSig significant-pattern, LEAP-style pattern+SVM, OA kernel+SVM)
// on one synthetic screen and prints AUC and runtime:
//
//	classifybench -dataset MOLT-4 -n 600
//	classifybench -dataset AIDS -in data/   # load datagen output instead
//	classifybench -dataset UACC-257 -skip-oa
package main

import (
	"flag"
	"fmt"
	"log"

	"graphsig/internal/chem"
	"graphsig/internal/classify"
	"graphsig/internal/graph"
	"graphsig/internal/leap"
	"graphsig/internal/svm"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("classifybench: ")

	dataset := flag.String("dataset", "MOLT-4", "dataset name from the catalog")
	in := flag.String("in", "", "load <dir>/<dataset>.db and .labels written by datagen instead of generating")
	n := flag.Int("n", 600, "molecules to generate")
	folds := flag.Int("folds", 5, "cross-validation folds")
	k := flag.Int("k", 9, "k for the GraphSig classifier")
	seed := flag.Int64("seed", 1, "generation and fold seed")
	skipOA := flag.Bool("skip-oa", false, "skip the (slow) OA kernel baseline")
	flag.Parse()

	var d *chem.Dataset
	if *in != "" {
		loaded, err := chem.Load(*in, *dataset)
		if err != nil {
			log.Fatal(err)
		}
		d = loaded
	} else {
		var spec chem.DatasetSpec
		found := false
		for _, s := range chem.Catalog() {
			if s.Name == *dataset {
				spec, found = s, true
			}
		}
		if !found {
			log.Fatalf("unknown dataset %q (see chem.Catalog)", *dataset)
		}
		d = chem.GenerateN(spec, *n)
	}

	pos := d.Actives()
	balanced, labels := classify.BalancedSample(pos, d.Inactives(), *seed)
	log.Printf("%s: balanced set of %d (%d actives)", d.Spec.Name, len(balanced), len(pos))
	if len(pos) < *folds {
		log.Fatalf("too few actives (%d) for %d folds; raise -n", len(pos), *folds)
	}

	type method struct {
		name  string
		train func(p, ng []*graph.Graph) classify.Scorer
	}
	methods := []method{
		{"GraphSig", func(p, ng []*graph.Graph) classify.Scorer {
			opt := classify.DefaultGraphSigOptions()
			opt.K = *k
			opt.Core.CutoffRadius = 3
			return classify.TrainGraphSig(p, ng, opt)
		}},
		{"LEAP", func(p, ng []*graph.Graph) classify.Scorer {
			return classify.TrainLEAP(p, ng, classify.LEAPOptions{
				Mine: leap.Options{MinPosFreq: 0.3, TopK: 20, MaxEdges: 8},
				SVM:  svm.LinearOptions{Seed: *seed},
			})
		}},
	}
	if !*skipOA {
		methods = append(methods, method{"OA", func(p, ng []*graph.Graph) classify.Scorer {
			return classify.TrainOA(p, ng, classify.OAOptions{SVM: svm.KernelOptions{Seed: *seed}})
		}})
	}

	fmt.Printf("%-10s %-16s %-12s\n", "method", "AUC (mean±std)", "total time")
	for _, m := range methods {
		res := classify.CrossValidate(balanced, labels, *folds, *seed, m.train)
		fmt.Printf("%-10s %.3f±%-10.3f %-12s\n", m.name, res.Mean, res.Std, res.Total.Round(1e6))
	}
}
