// Command datagen writes the synthetic chemical screens to disk in gSpan
// transaction format, one file per dataset plus a .labels file marking
// active compounds:
//
//	datagen -out data/ -scale 0.01          # all 12 screens at 1% of paper size
//	datagen -out data/ -dataset AIDS -n 5000
package main

import (
	"flag"
	"log"
	"os"

	"graphsig/internal/chem"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("datagen: ")

	out := flag.String("out", "data", "output directory")
	scale := flag.Float64("scale", 0.01, "dataset size relative to the paper's screens")
	n := flag.Int("n", 0, "exact molecule count (overrides -scale)")
	dataset := flag.String("dataset", "", "generate only this dataset (default: all 12)")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	for _, spec := range chem.Catalog() {
		if *dataset != "" && spec.Name != *dataset {
			continue
		}
		var d *chem.Dataset
		if *n > 0 {
			d = chem.GenerateN(spec, *n)
		} else {
			d = chem.Generate(spec, *scale)
		}
		if err := d.WriteTo(*out); err != nil {
			log.Fatal(err)
		}
		log.Println(d.Stats())
	}
}
