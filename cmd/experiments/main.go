// Command experiments regenerates the paper's tables and figures on the
// synthetic screens. Select one experiment or run the full suite:
//
//	experiments -fig 9              # Time vs Frequency
//	experiments -table 6            # AUC comparison (also prints Fig 17 times)
//	experiments -all                # everything
//	experiments -fig 10 -datasets MOLT-4,UACC-257 -n 150
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"graphsig/internal/experiments"
)

func main() {
	fig := flag.Int("fig", 0, "figure number to reproduce (2, 4, 9, 10, 11, 12, 13, 16, 17)")
	table := flag.Int("table", 0, "table number to reproduce (5, 6)")
	all := flag.Bool("all", false, "run every experiment")
	n := flag.Int("n", 0, "mining workload size in molecules (default 300)")
	classifyN := flag.Int("classify-n", 0, "classification workload size per screen (default 600)")
	budget := flag.Duration("budget", 0, "per-run budget for baseline miners (default 15s)")
	seed := flag.Int64("seed", 1, "generation seed")
	datasets := flag.String("datasets", "", "comma-separated dataset filter for multi-dataset experiments")
	ablation := flag.Bool("ablation", false, "run the RWR vs window-counts ablation")
	charts := flag.Bool("chart", false, "render text charts of each series")
	csvDir := flag.String("csv", "", "also write one CSV file per experiment into this directory")
	flag.Parse()

	cfg := experiments.Defaults()
	cfg.Out = os.Stdout
	cfg.Seed = *seed
	if *n > 0 {
		cfg.MiningN = *n
		cfg.ProfileN = *n
	}
	if *classifyN > 0 {
		cfg.ClassifyN = *classifyN
	}
	if *budget > 0 {
		cfg.RunBudget = *budget
	}
	if *datasets != "" {
		cfg.Datasets = strings.Split(*datasets, ",")
	}
	cfg.Charts = *charts
	cfg.CSVDir = *csvDir

	run := func(name string, f func()) {
		fmt.Printf("=== %s ===\n", name)
		t0 := time.Now()
		f()
		fmt.Printf("(%s elapsed)\n\n", time.Since(t0).Round(time.Millisecond))
	}

	ran := false
	want := func(figNo, tableNo int) bool {
		if *all {
			return true
		}
		return (*fig != 0 && *fig == figNo) || (*table != 0 && *table == tableNo)
	}
	if want(2, 0) {
		run("Fig 2", func() { experiments.Fig2(cfg) })
		ran = true
	}
	if want(4, 0) {
		run("Fig 4", func() { experiments.Fig4(cfg) })
		ran = true
	}
	if want(5, 0) || (*table != 0 && *table == 5) {
		run("Table V", func() { experiments.Table5(cfg) })
		ran = true
	}
	if want(9, 0) {
		run("Fig 9", func() { experiments.Fig9(cfg) })
		ran = true
	}
	if want(10, 0) {
		run("Fig 10", func() { experiments.Fig10(cfg) })
		ran = true
	}
	if want(11, 0) {
		run("Fig 11", func() { experiments.Fig11(cfg) })
		ran = true
	}
	if want(12, 0) {
		run("Fig 12", func() { experiments.Fig12(cfg) })
		ran = true
	}
	if want(13, 0) || want(14, 0) || want(15, 0) {
		run("Fig 13-15", func() { experiments.Fig13to15(cfg) })
		ran = true
	}
	if want(16, 0) {
		run("Fig 16", func() { experiments.Fig16(cfg) })
		ran = true
	}
	if want(17, 6) {
		run("Table VI / Fig 17", func() { experiments.Table6(cfg) })
		ran = true
	}
	if *ablation || *all {
		run("Ablation: RWR vs window counts", func() { experiments.AblationVectorizer(cfg) })
		ran = true
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}
