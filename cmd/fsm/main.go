// Command fsm runs the baseline frequent-subgraph miners (gSpan or the
// FSG-style apriori miner) over a graph database file:
//
//	fsm -in data/AIDS.db -miner gspan -freq 5
//	fsm -in data/AIDS.db -miner fsg -freq 10 -maximal
//	fsm -in data/AIDS.db -miner gspan -freq 5 -closed
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"graphsig/internal/fsg"
	"graphsig/internal/graph"
	"graphsig/internal/gspan"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fsm: ")

	in := flag.String("in", "", "input graph database (gSpan transaction format; required)")
	miner := flag.String("miner", "gspan", "miner: gspan or fsg")
	freq := flag.Float64("freq", 5, "frequency threshold in percent")
	maxEdges := flag.Int("maxedges", 0, "bound pattern size in edges (0 = unbounded)")
	maximal := flag.Bool("maximal", false, "keep only maximal patterns")
	closed := flag.Bool("closed", false, "keep only closed patterns (gspan only)")
	timeout := flag.Duration("timeout", 0, "abort after this duration (0 = none)")
	top := flag.Int("top", 25, "print at most this many patterns (0 = all)")
	flag.Parse()

	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	alpha := graph.NewAlphabet()
	db, err := graph.ReadDB(f, alpha)
	if err != nil {
		log.Fatal(err)
	}
	minSup := gspan.FromPercent(*freq, len(db))
	log.Printf("loaded %d graphs; frequency %.2f%% = support %d", len(db), *freq, minSup)

	var deadline time.Time
	if *timeout > 0 {
		deadline = time.Now().Add(*timeout)
	}

	type row struct {
		g       *graph.Graph
		support int
	}
	var rows []row
	truncated := false
	t0 := time.Now()
	switch *miner {
	case "gspan":
		res := gspan.Mine(db, gspan.Options{MinSupport: minSup, MaxEdges: *maxEdges, Deadline: deadline})
		truncated = res.Truncated
		patterns := res.Patterns
		if *closed {
			patterns = gspan.Closed(patterns)
		}
		if *maximal {
			patterns = gspan.Maximal(patterns)
		}
		for _, p := range patterns {
			rows = append(rows, row{p.Graph, p.Support})
		}
	case "fsg":
		opt := fsg.Options{MinSupport: minSup, MaxEdges: *maxEdges, Deadline: deadline}
		var res fsg.Result
		if *maximal {
			res = fsg.MaximalMine(db, opt)
		} else {
			res = fsg.Mine(db, opt)
		}
		truncated = res.Truncated
		for _, p := range res.Patterns {
			rows = append(rows, row{p.Graph, p.Support})
		}
	default:
		log.Fatalf("unknown miner %q (want gspan or fsg)", *miner)
	}
	log.Printf("%d patterns in %s", len(rows), time.Since(t0).Round(time.Millisecond))
	if truncated {
		log.Printf("warning: mining truncated by timeout")
	}

	for i, r := range rows {
		if *top > 0 && i >= *top {
			log.Printf("... %d more (raise -top)", len(rows)-i)
			break
		}
		fmt.Printf("#%d support=%d (%.2f%%) nodes=%d edges=%d\n",
			i+1, r.support, 100*float64(r.support)/float64(len(db)), r.g.NumNodes(), r.g.NumEdges())
		for v := 0; v < r.g.NumNodes(); v++ {
			fmt.Printf("    v%d %s\n", v, alpha.Name(r.g.NodeLabel(v)))
		}
		for _, e := range r.g.Edges() {
			fmt.Printf("    e %d %d %d\n", e.From, e.To, int(e.Label))
		}
	}
}
