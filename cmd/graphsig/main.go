// Command graphsig mines statistically significant subgraphs from a
// graph database file in gSpan transaction format:
//
//	graphsig -in screen.db -maxp 0.1 -minfreq 0.1 -radius 4 -top 10
//	graphsig -store-dir store/ -shards 4 -top 10
//	graphsig store build -in screen.db -dir store/
//
// With -store-dir the corpus is mined out of a persistent segment
// store (see `graphsig store build`): segments load lazily through a
// bounded LRU and the mine scatter-gathers across -shards shards, so a
// database larger than RAM is minable with results byte-identical to
// an in-memory run. Name rendering then assumes the standard chemistry
// alphabet (datagen or SMILES-derived stores qualify).
//
// Labels in the input may be symbols (atom names) or integers. The
// output lists each significant subgraph with its describing vector's
// p-value, its verified support, and its structure.
//
// Exit status: 0 on a complete mine, 2 on usage errors, 3 when the mine
// was truncated (timeout, budget, or an isolated worker failure) — the
// printed results are then a valid but partial answer, and the
// degradation report on stderr says which stage stopped and why.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"graphsig/internal/chem"
	"graphsig/internal/core"
	"graphsig/internal/graph"
	"graphsig/internal/obs"
	"graphsig/internal/runctl"
	"graphsig/internal/shard"
	"graphsig/internal/store"
)

// exitTruncated is the exit status for a partial (degraded) mine,
// distinct from 1 (fatal error) and 2 (usage).
const exitTruncated = 3

func main() {
	log.SetFlags(0)
	log.SetPrefix("graphsig: ")

	if len(os.Args) > 1 && os.Args[1] == "store" {
		storeMain(os.Args[2:])
		return
	}

	in := flag.String("in", "", "input graph database (gSpan transaction format, or .smi SMILES file)")
	storeDir := flag.String("store-dir", "", "mine out of this persistent segment store (see `graphsig store build`) instead of -in")
	shards := flag.Int("shards", 1, "scatter-gather mining shards for -store-dir")
	maxP := flag.Float64("maxp", 0.1, "p-value threshold")
	minFreq := flag.Float64("minfreq", 0.1, "FVMine support threshold, % of per-label vectors")
	radius := flag.Int("radius", 4, "cutoff radius around region centers")
	fsmFreq := flag.Float64("fsmfreq", 80, "maximal FSM frequency threshold, %")
	alpha := flag.Float64("alpha", 0.25, "random-walk restart probability")
	top := flag.Int("top", 20, "print at most this many subgraphs (0 = all)")
	topK := flag.Int("topk", 0, "threshold-free mode: keep the k most significant vectors per label")
	dotDir := flag.String("dot", "", "write one GraphViz .dot file per printed subgraph into this directory")
	timeout := flag.Duration("timeout", 0, "abort mining after this duration (0 = none)")
	maxStates := flag.Int64("max-states", 0, "budget on FVMine search states (0 = unbounded)")
	maxSteps := flag.Int64("max-steps", 0, "budget on FSM candidate/extension steps (0 = unbounded)")
	maxVF2 := flag.Int64("max-vf2", 0, "budget on VF2 isomorphism search nodes (0 = unbounded)")
	useGSpan := flag.Bool("gspan", false, "use gSpan instead of FSG for the group mining step")
	stats := flag.Bool("stats", false, "print the per-stage metrics table to stderr at exit")
	ckptFile := flag.String("checkpoint", "", "write resumable mining snapshots to this file (atomically replaced at each group-merge commit)")
	resumeFile := flag.String("resume", "", "resume group mining from a snapshot written by -checkpoint (ignored unless it matches this database and configuration)")
	flag.Parse()

	if (*in == "") == (*storeDir == "") {
		flag.Usage()
		os.Exit(2)
	}
	// A nil registry makes every metric a no-op; only meter when asked.
	var reg *obs.Registry
	if *stats {
		reg = obs.NewRegistry()
	}
	var db []*graph.Graph
	var reader *store.Reader
	var alphabet *graph.Alphabet
	if *storeDir != "" {
		// Segment stores persist integer labels only; render names
		// through the standard chemistry alphabet.
		alphabet = chem.Alphabet()
		var err error
		reader, err = store.Open(*storeDir, store.Options{Metrics: reg})
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("opened store %s: generation %d, %d graphs in %d segment(s)",
			*storeDir, reader.Generation(), reader.Len(), len(reader.Manifest().Segments))
	} else {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if strings.HasSuffix(*in, ".smi") {
			alphabet = chem.Alphabet()
			db, _, err = chem.ReadSMILESFile(f)
			for i, g := range db {
				g.ID = i
			}
		} else {
			alphabet = graph.NewAlphabet()
			db, err = graph.ReadDB(f, alphabet)
		}
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("loaded %d graphs from %s", len(db), *in)
	}

	cfg := core.Defaults()
	cfg.MaxPvalue = *maxP
	cfg.MinFreqPct = *minFreq
	cfg.CutoffRadius = *radius
	cfg.FSMFreqPct = *fsmFreq
	cfg.Alpha = *alpha
	cfg.Alphabet = alphabet
	cfg.TopKPerLabel = *topK
	if *useGSpan {
		cfg.Miner = core.MinerGSpan
	}
	if *timeout > 0 {
		cfg.Deadline = time.Now().Add(*timeout)
	}
	cfg.Budgets = runctl.Budgets{
		FVMineStates: *maxStates,
		MinerSteps:   *maxSteps,
		VF2Nodes:     *maxVF2,
	}
	cfg.Metrics = reg

	if *resumeFile != "" {
		buf, err := os.ReadFile(*resumeFile)
		if err != nil {
			log.Fatal(err)
		}
		rs, err := core.DecodeResumeState(buf)
		if err != nil {
			// A stale or corrupt snapshot is not fatal: the mine simply
			// starts over, exactly as core does for a key mismatch.
			log.Printf("warning: ignoring resume snapshot: %v", err)
		} else {
			cfg.Resume = rs
			log.Printf("resuming group mining from %s (%d groups done)", *resumeFile, rs.Done)
		}
	}
	if *ckptFile != "" {
		// With a sink installed the pipeline emits snapshots at every
		// group-merge commit; each lands atomically via rename so a kill
		// mid-write can never corrupt the previous good snapshot.
		cfg.Ctl = runctl.New(runctl.Options{
			Deadline: cfg.Deadline,
			Budgets:  cfg.Budgets,
			Metrics:  reg,
			CheckpointSink: func(payload []byte) {
				tmp := *ckptFile + ".tmp"
				if err := os.WriteFile(tmp, payload, 0o644); err != nil {
					log.Printf("warning: checkpoint write: %v", err)
					return
				}
				if err := os.Rename(tmp, *ckptFile); err != nil {
					log.Printf("warning: checkpoint rename: %v", err)
				}
			},
		})
	}

	t0 := time.Now()
	var res core.Result
	if reader != nil {
		coord, err := shard.New(reader, shard.Options{
			Shards:      *shards,
			Fingerprint: reader.Fingerprint(),
			Metrics:     reg,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err = coord.Mine(cfg)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		res = core.Mine(db, cfg)
	}
	log.Printf("mined %d significant subgraphs in %s (RWR %s, feature analysis %s, FSM %s)",
		len(res.Subgraphs), time.Since(t0).Round(time.Millisecond),
		res.Profile.RWR.Round(time.Millisecond),
		res.Profile.FeatureAnalysis.Round(time.Millisecond),
		res.Profile.FSM.Round(time.Millisecond))
	if res.Truncated {
		// log prints to stderr, keeping stdout a clean pattern listing.
		log.Printf("warning: partial results: %s", res.Degradation.String())
		for _, st := range res.Degradation.Stages {
			log.Printf("  stage %s: %s", st.Stage, stageLine(st))
		}
	}
	if res.GroupErrors > 0 {
		log.Printf("warning: %d region groups failed and were skipped", res.GroupErrors)
	}

	if *dotDir != "" {
		if err := os.MkdirAll(*dotDir, 0o755); err != nil {
			log.Fatal(err)
		}
	}
	for i, sg := range res.Subgraphs {
		if *top > 0 && i >= *top {
			log.Printf("... %d more (raise -top to see them)", len(res.Subgraphs)-i)
			break
		}
		support := fmt.Sprintf("support=%d (%.2f%%)", sg.Support, 100*sg.Frequency)
		if sg.Unverified {
			support = "support=unverified"
		}
		fmt.Printf("#%d  p=%.3g  %s  %d nodes / %d edges  [source %s]\n",
			i+1, sg.VectorPValue, support,
			sg.Graph.NumNodes(), sg.Graph.NumEdges(), alphabet.Name(sg.SourceLabel))
		printGraph(sg.Graph, alphabet)
		if *dotDir != "" {
			name := fmt.Sprintf("pattern%03d", i+1)
			f, err := os.Create(filepath.Join(*dotDir, name+".dot"))
			if err != nil {
				log.Fatal(err)
			}
			err = graph.WriteDOT(f, sg.Graph, name, alphabet, chem.BondName)
			f.Close()
			if err != nil {
				log.Fatal(err)
			}
		}
	}
	if *stats {
		// Stderr, like the rest of the diagnostics: stdout stays a clean
		// pattern listing.
		obs.WriteStageTable(os.Stderr, reg.Snapshot())
	}
	if res.Truncated || res.GroupErrors > 0 {
		os.Exit(exitTruncated)
	}
}

// stageLine renders one stage report for the stderr degradation listing.
func stageLine(st runctl.StageReport) string {
	s := fmt.Sprintf("%s", st.Reason)
	if st.Detail != "" {
		s += ": " + st.Detail
	}
	if st.Planned > 0 {
		s += fmt.Sprintf(" (%d/%d done)", st.Completed, st.Planned)
	} else if st.Completed > 0 {
		s += fmt.Sprintf(" (%d done)", st.Completed)
	}
	if st.Err != "" {
		s += " err=" + st.Err
	}
	return s
}

func printGraph(g *graph.Graph, alpha *graph.Alphabet) {
	// SMILES output is only meaningful when the file's labels line up
	// with the standard chemistry alphabet (true for datagen output).
	chemAlpha := chem.Alphabet()
	chemLabels := true
	for _, l := range g.Labels() {
		if chemAlpha.Name(l) != alpha.Name(l) {
			chemLabels = false
			break
		}
	}
	if chemLabels {
		if smiles, err := chem.WriteSMILES(g); err == nil {
			fmt.Printf("    SMILES: %s\n", smiles)
		}
	}
	for v := 0; v < g.NumNodes(); v++ {
		fmt.Printf("    v%d %s\n", v, alpha.Name(g.NodeLabel(v)))
	}
	for _, e := range g.Edges() {
		fmt.Printf("    %d %s %d\n", e.From, chem.BondName(e.Label), e.To)
	}
}
