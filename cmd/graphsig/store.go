package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"graphsig/internal/chem"
	"graphsig/internal/graph"
	"graphsig/internal/store"
)

// storeMain dispatches the `graphsig store` subcommands that manage
// persistent segment stores — the on-disk database format behind
// `graphsig -store-dir` and `serve -store-dir`:
//
//	graphsig store build  -in screen.db -dir store/ [-segment-graphs 256]
//	graphsig store append -in more.smi  -dir store/
//	graphsig store info   -dir store/
func storeMain(args []string) {
	if len(args) == 0 {
		log.Fatal("usage: graphsig store <build|append|info> ...")
	}
	switch args[0] {
	case "build":
		storeBuild("build", args[1:])
	case "append":
		storeBuild("append", args[1:])
	case "info":
		storeInfo(args[1:])
	default:
		log.Fatalf("unknown store subcommand %q (want build, append, or info)", args[0])
	}
}

// loadInput reads a graph database the same way the mining path does:
// gSpan transaction format, or SMILES when the name ends in .smi.
// SMILES IDs are assigned sequentially from base.
func loadInput(in string, base int) []*graph.Graph {
	f, err := os.Open(in)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	var db []*graph.Graph
	if strings.HasSuffix(in, ".smi") {
		db, _, err = chem.ReadSMILESFile(f)
		for i, g := range db {
			g.ID = base + i
		}
	} else {
		db, err = graph.ReadDB(f, graph.NewAlphabet())
	}
	if err != nil {
		log.Fatal(err)
	}
	return db
}

// storeBuild implements both `store build` (create) and `store append`
// (extend an existing store, bumping its generation).
func storeBuild(mode string, args []string) {
	fs := flag.NewFlagSet("graphsig store "+mode, flag.ExitOnError)
	in := fs.String("in", "", "input graph database (gSpan transaction format, or .smi SMILES file)")
	dir := fs.String("dir", "", "store directory")
	segGraphs := fs.Int("segment-graphs", 0, "graphs per segment (0 = default)")
	fs.Parse(args)
	if *in == "" || *dir == "" {
		fs.Usage()
		os.Exit(2)
	}
	base := 0
	if mode == "append" {
		// Validate the existing store before touching it, and continue
		// the SMILES ID sequence where the resident corpus left off.
		r, err := store.Open(*dir, store.Options{})
		if err != nil {
			log.Fatal(err)
		}
		base = r.Len()
	}
	db := loadInput(*in, base)
	opts := store.BuildOptions{SegmentGraphs: *segGraphs}
	var m *store.Manifest
	var err error
	if mode == "append" {
		m, err = store.Append(*dir, db, opts)
	} else {
		m, err = store.Build(*dir, db, opts)
	}
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("%s %s: generation %d, %d graphs in %d segment(s), fingerprint %s",
		mode, *dir, m.Generation, m.Graphs, len(m.Segments), m.Fingerprint)
}

func storeInfo(args []string) {
	fs := flag.NewFlagSet("graphsig store info", flag.ExitOnError)
	dir := fs.String("dir", "", "store directory")
	fs.Parse(args)
	if *dir == "" {
		fs.Usage()
		os.Exit(2)
	}
	r, err := store.Open(*dir, store.Options{})
	if err != nil {
		log.Fatal(err)
	}
	m := r.Manifest()
	fmt.Printf("store:        %s\n", *dir)
	fmt.Printf("generation:   %d\n", m.Generation)
	fmt.Printf("graphs:       %d\n", m.Graphs)
	fmt.Printf("nodes:        %d\n", m.Nodes)
	fmt.Printf("edges:        %d\n", m.Edges)
	fmt.Printf("fingerprint:  %s\n", m.Fingerprint)
	fmt.Printf("segments:     %d\n", len(m.Segments))
	for _, seg := range m.Segments {
		fmt.Printf("  %s  graphs [%d, %d)  %s\n", seg.File, seg.Start, seg.Start+seg.Count, seg.Fingerprint)
	}
}
