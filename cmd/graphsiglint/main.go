// Command graphsiglint runs graphsig's project-invariant analyzer suite
// (internal/analysis) over the repository. It is stdlib-only and is
// wired into `make lint`, CI, and a meta-test, so determinism and
// runtime-safety conventions are enforced rather than remembered.
//
// Usage:
//
//	graphsiglint [-run maporder,errwrap] [-json] [packages ...]
//
// Packages default to ./... resolved from the current directory. The
// exit status is 0 when clean, 1 when diagnostics were reported, and 2
// on usage or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"graphsig/internal/analysis"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		jsonOut = flag.Bool("json", false, "emit diagnostics as a JSON array")
		filter  = flag.String("run", "", "comma-separated analyzer names to run (default: all)")
		list    = flag.Bool("list", false, "list the available analyzers and exit")
	)
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := analysis.ByName(*filter)
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphsiglint:", err)
		return 2
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphsiglint:", err)
		return 2
	}

	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphsiglint:", err)
		return 2
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "graphsiglint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "graphsiglint: %d violation(s) in %d package(s) checked\n", len(diags), len(pkgs))
		}
		return 1
	}
	return 0
}
