// Command graphsiglint runs graphsig's project-invariant analyzer suite
// (internal/analysis) over the repository. It is stdlib-only and is
// wired into `make lint`, CI, and a meta-test, so determinism and
// runtime-safety conventions are enforced rather than remembered.
//
// Usage:
//
//	graphsiglint [-run maporder,errwrap] [-json] [-baseline file]
//	             [-write-baseline file] [packages ...]
//
// Packages default to ./... resolved from the current directory. The
// exit status is 0 when clean, 1 when diagnostics were reported, and 2
// on usage or load errors.
//
// -write-baseline records the current findings to a suppression file;
// -baseline loads one and reports only findings not in it, so a new
// analyzer can land in CI before its legacy findings are burned down.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"graphsig/internal/analysis"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		jsonOut       = flag.Bool("json", false, "emit diagnostics as a JSON array")
		filter        = flag.String("run", "", "comma-separated analyzer names to run (default: all)")
		list          = flag.Bool("list", false, "list the available analyzers and exit")
		baselinePath  = flag.String("baseline", "", "suppress diagnostics recorded in this baseline file")
		writeBaseline = flag.String("write-baseline", "", "write current diagnostics to this baseline file and exit")
	)
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := analysis.ByName(*filter)
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphsiglint:", err)
		return 2
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphsiglint:", err)
		return 2
	}

	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphsiglint:", err)
		return 2
	}

	// Baseline paths are relative to the module root so the file works
	// from any working directory; fall back to raw paths outside one.
	root, _ := analysis.ModuleRoot("")

	if *writeBaseline != "" {
		if err := analysis.WriteBaseline(*writeBaseline, root, diags); err != nil {
			fmt.Fprintln(os.Stderr, "graphsiglint:", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "graphsiglint: wrote %d finding(s) to %s\n", len(diags), *writeBaseline)
		return 0
	}
	if *baselinePath != "" {
		b, err := analysis.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "graphsiglint:", err)
			return 2
		}
		var suppressed int
		diags, suppressed = b.Filter(root, diags)
		if suppressed > 0 && !*jsonOut {
			fmt.Fprintf(os.Stderr, "graphsiglint: %d baselined finding(s) suppressed\n", suppressed)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "graphsiglint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "graphsiglint: %d violation(s) in %d package(s) checked\n", len(diags), len(pkgs))
		}
		return 1
	}
	return 0
}
