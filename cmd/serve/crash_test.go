package main

// Crash-restart integration test for the durable-jobs path: a real
// serve binary is killed (SIGKILL) mid-mine and restarted over the
// same journal directory; the replayed job must finish under its
// original id with a pattern set byte-identical to an uninterrupted
// in-process mine. Run via `make crash-test` or plain `go test`.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"graphsig/internal/chem"
	"graphsig/internal/core"
	"graphsig/internal/graph"
	"graphsig/internal/journal"
)

// crashDBGraphs sizes the screen so the mine runs long enough (a
// second or two) to be killed between its first checkpoint and its
// completion on any plausible machine.
const crashDBGraphs = 600

// buildServe compiles the serve binary once per test run.
func buildServe(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "serve-under-test")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// writeCrashDB generates a deterministic screen and writes it in
// transaction format, returning the path and the loaded graphs as the
// server will see them (same file, same alphabet).
func writeCrashDB(t *testing.T, dir string) (string, []*graph.Graph) {
	t.Helper()
	path := filepath.Join(dir, "screen.db")
	gen := chem.GenerateN(chem.AIDSSpec(), crashDBGraphs).Graphs
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteDB(f, gen, chem.Alphabet()); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	f2, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	db, err := graph.ReadDB(f2, chem.Alphabet())
	if err != nil {
		t.Fatal(err)
	}
	return path, db
}

// startServe launches the binary and scrapes the bound address from
// its startup log line ("serving N graphs on 127.0.0.1:PORT").
func startServe(t *testing.T, bin, dbPath, journalDir string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin,
		"-in", dbPath,
		"-addr", "127.0.0.1:0",
		"-journal-dir", journalDir,
		"-workers", "1",
		"-checkpoint-every", "1",
	)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			t.Logf("serve: %s", line)
			if i := strings.LastIndex(line, " on 127.0.0.1:"); i >= 0 {
				select {
				case addrCh <- strings.TrimSpace(line[i+len(" on "):]):
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return cmd, "http://" + addr
	case <-time.After(30 * time.Second):
		_ = cmd.Process.Kill()
		t.Fatal("serve did not announce its address within 30s")
		return nil, ""
	}
}

type wirePattern struct {
	SMILES     string  `json:"smiles"`
	PValue     float64 `json:"pValue"`
	Support    int     `json:"support"`
	Frequency  float64 `json:"frequency"`
	Nodes      int     `json:"nodes"`
	Edges      int     `json:"edges"`
	Unverified bool    `json:"unverified,omitempty"`
}

type wireJob struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Error  string `json:"error,omitempty"`
	Result *struct {
		Patterns  []wirePattern `json:"patterns"`
		Truncated bool          `json:"truncated"`
	} `json:"result"`
}

func getJob(t *testing.T, base, id string) (wireJob, int) {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id)
	if err != nil {
		return wireJob{}, 0
	}
	defer resp.Body.Close()
	var j wireJob
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		return wireJob{}, resp.StatusCode
	}
	return j, resp.StatusCode
}

func TestCrashRestartResumesByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test: builds and kills a child process")
	}
	bin := buildServe(t)
	workDir := t.TempDir()
	journalDir := filepath.Join(workDir, "journal")
	dbPath, db := writeCrashDB(t, workDir)

	const radius = 3
	body := fmt.Sprintf(`{"radius":%d,"timeoutMs":110000}`, radius)

	// Phase 1: submit, wait for the first durable checkpoint, SIGKILL.
	cmd, base := startServe(t, bin, dbPath, journalDir)
	resp, err := http.Post(base+"/jobs/mine", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct {
		ID string `json:"id"`
	}
	err = json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	if err != nil || sub.ID == "" {
		t.Fatalf("submit: %v (id %q, status %d)", err, sub.ID, resp.StatusCode)
	}

	walPath := filepath.Join(journalDir, journal.FileName)
	deadline := time.Now().Add(60 * time.Second)
	for {
		if data, err := os.ReadFile(walPath); err == nil &&
			bytes.Contains(data, []byte(`"type":"`+journal.EvCheckpoint+`"`)) {
			break
		}
		if time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			t.Fatal("no checkpoint appeared in the journal within 60s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// kill -9: no drain, no journal close — the WAL tail is whatever
	// the last fsync left behind.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = cmd.Wait()

	// Phase 2: restart over the same journal; replay must resurrect the
	// job under its original id and run it to completion.
	cmd2, base2 := startServe(t, bin, dbPath, journalDir)
	defer func() {
		_ = cmd2.Process.Kill()
		_ = cmd2.Wait()
	}()

	var final wireJob
	deadline = time.Now().Add(120 * time.Second)
	for {
		j, status := getJob(t, base2, sub.ID)
		if status == http.StatusOK && j.State == "done" {
			final = j
			break
		}
		if status == http.StatusOK && (j.State == "failed" || j.State == "canceled") {
			t.Fatalf("replayed job ended %s: %s", j.State, j.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("replayed job did not finish (last status %d, state %q)", status, j.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if final.Result == nil {
		t.Fatal("finished job has no result")
	}
	if final.Result.Truncated {
		t.Fatal("resumed mine reported truncation")
	}

	// Ground truth: the identical uninterrupted mine, in process.
	cfg := core.Defaults()
	cfg.CutoffRadius = radius
	res := core.Mine(db, cfg)
	want := make([]wirePattern, 0, len(res.Subgraphs))
	for _, sg := range res.Subgraphs {
		smiles, err := chem.WriteSMILES(sg.Graph)
		if err != nil {
			continue
		}
		want = append(want, wirePattern{
			SMILES:     smiles,
			PValue:     sg.VectorPValue,
			Support:    sg.Support,
			Frequency:  sg.Frequency,
			Nodes:      sg.Graph.NumNodes(),
			Edges:      sg.Graph.NumEdges(),
			Unverified: sg.Unverified,
		})
	}

	got, err := json.Marshal(final.Result.Patterns)
	if err != nil {
		t.Fatal(err)
	}
	exp, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, exp) {
		t.Fatalf("resumed pattern set differs from uninterrupted mine\n got %d patterns: %.400s\nwant %d patterns: %.400s",
			len(final.Result.Patterns), got, len(want), exp)
	}
	t.Logf("crash-restart: %d patterns byte-identical after kill -9 and resume", len(want))
}
