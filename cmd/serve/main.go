// Command serve runs the GraphSig HTTP service over a chemical screen:
//
//	serve -in data/AIDS.db -addr :8080
//	serve -dataset MOLT-4 -n 1000 -addr :8080
//
// Endpoints: GET /healthz, GET /stats, POST /mine, POST /query,
// POST /significance (see internal/server).
//
// The server carries connection timeouts, a request concurrency limit,
// request body caps, and per-request mine deadlines; SIGINT/SIGTERM
// triggers a graceful shutdown that drains in-flight requests up to
// -drain before forcing connections closed.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"graphsig/internal/chem"
	"graphsig/internal/graph"
	"graphsig/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("serve: ")

	addr := flag.String("addr", ":8080", "listen address")
	in := flag.String("in", "", "graph database file (.db transaction format or .smi)")
	dataset := flag.String("dataset", "", "generate this catalog dataset instead of loading")
	n := flag.Int("n", 1000, "molecules to generate with -dataset")
	maxConc := flag.Int("max-concurrent", server.DefaultMaxConcurrent, "max in-flight requests before 503 (0 = unbounded)")
	maxBody := flag.Int64("max-body", server.DefaultMaxBodyBytes, "request body cap in bytes (0 = unbounded)")
	mineCap := flag.Duration("mine-cap", server.DefaultMineTimeoutCap, "hard cap on a single /mine run")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain deadline")
	flag.Parse()

	var db []*graph.Graph
	switch {
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		if strings.HasSuffix(*in, ".smi") {
			db, _, err = chem.ReadSMILESFile(f)
		} else {
			db, err = graph.ReadDB(f, chem.Alphabet())
		}
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	case *dataset != "":
		found := false
		for _, spec := range chem.Catalog() {
			if spec.Name == *dataset {
				db = chem.GenerateN(spec, *n).Graphs
				found = true
			}
		}
		if !found {
			log.Fatalf("unknown dataset %q", *dataset)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	svc := server.New(db)
	svc.MaxConcurrent = *maxConc
	svc.MaxBodyBytes = *maxBody
	svc.MineTimeoutCap = *mineCap
	if *mineCap <= 0 {
		svc.MineTimeoutCap = server.DefaultMineTimeoutCap
	}

	srv := &http.Server{
		Addr:    *addr,
		Handler: svc.Handler(),
		// Header/read timeouts bound slow-loris clients; the write
		// timeout must outlast the longest admissible mine, so it tracks
		// the mine cap with headroom for serialization.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      svc.MineTimeoutCap + 30*time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("serving %d graphs on %s", len(db), *addr)
		errCh <- srv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		// Listener failed before any shutdown signal.
		log.Fatal(err)
	case <-ctx.Done():
		stop() // restore default signal handling: a second signal kills immediately
		log.Printf("shutdown signal received, draining for up to %s", *drain)
		shCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(shCtx); err != nil {
			log.Printf("drain deadline exceeded, closing connections: %v", err)
			srv.Close()
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
		log.Printf("shutdown complete")
	}
}
