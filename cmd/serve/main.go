// Command serve runs the GraphSig HTTP service over a chemical screen:
//
//	serve -in data/AIDS.db -addr :8080
//	serve -dataset MOLT-4 -n 1000 -addr :8080 -warm
//	serve -store-dir store/ -shards 4 -addr :8080
//
// With -store-dir the corpus is served out of a persistent segment
// store (built with `graphsig store build`): segments load lazily
// through a bounded LRU, so a database larger than RAM is servable,
// and mining scatter-gathers across -shards shards with results
// byte-identical to an unsharded in-memory mine.
//
// Endpoints: GET /healthz, GET /stats, POST /mine, POST /query,
// POST /significance, POST /jobs/mine, GET /jobs, GET /jobs/{id},
// DELETE /jobs/{id} (see internal/server).
//
// Mining runs through an asynchronous job subsystem: a bounded queue
// (-queue-depth) feeds a worker pool (-workers), finished jobs stay
// retrievable for -job-ttl, and identical requests coalesce through a
// result cache of -cache-size entries. The server carries connection
// timeouts, a request concurrency limit, request body caps, and
// per-job mine deadlines; SIGINT/SIGTERM triggers a graceful shutdown
// that drains in-flight requests and running mining jobs up to -drain
// before canceling them into partial results.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"graphsig/internal/chem"
	"graphsig/internal/graph"
	"graphsig/internal/jobs"
	"graphsig/internal/journal"
	"graphsig/internal/obs"
	"graphsig/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("serve: ")

	addr := flag.String("addr", ":8080", "listen address")
	in := flag.String("in", "", "graph database file (.db transaction format or .smi)")
	dataset := flag.String("dataset", "", "generate this catalog dataset instead of loading")
	n := flag.Int("n", 1000, "molecules to generate with -dataset")
	storeDir := flag.String("store-dir", "", "serve out of this persistent segment store (see `graphsig store build`) instead of loading into memory")
	shards := flag.Int("shards", 1, "scatter-gather mining shards for -store-dir")
	cachedSegments := flag.Int("cached-segments", 0, "decoded-segment LRU size for -store-dir (0 = default)")
	maxConc := flag.Int("max-concurrent", server.DefaultMaxConcurrent, "max in-flight requests before 503 (0 = unbounded)")
	maxBody := flag.Int64("max-body", server.DefaultMaxBodyBytes, "request body cap in bytes (0 = unbounded)")
	mineCap := flag.Duration("mine-cap", server.DefaultMineTimeoutCap, "hard cap on a single /mine run")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain deadline")
	workers := flag.Int("workers", jobs.DefaultWorkers, "mining worker pool size")
	queueDepth := flag.Int("queue-depth", jobs.DefaultQueueDepth, "max queued mining jobs before 503 backpressure")
	jobTTL := flag.Duration("job-ttl", jobs.DefaultTTL, "how long finished jobs stay retrievable")
	cacheSize := flag.Int("cache-size", jobs.DefaultCacheSize, "dedup result-cache entries (-1 disables)")
	journalDir := flag.String("journal-dir", "", "directory for the durable job journal (empty = jobs are not durable)")
	maxRetries := flag.Int("max-retries", 0, "automatic retries for transiently failed jobs (0 = disabled)")
	stallTimeout := flag.Duration("stall-timeout", 0, "cancel running jobs whose checkpoints stop advancing for this long (0 = no watchdog)")
	checkpointEvery := flag.Int("checkpoint-every", 0, "emit a resumable snapshot every N mined groups (0 = default)")
	warm := flag.Bool("warm", false, "eagerly build the query index and RWR vectors before serving")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (off by default: it reveals stacks and timings)")
	stats := flag.Bool("stats", false, "print the per-stage metrics table to stderr after shutdown")
	flag.Parse()

	var db []*graph.Graph
	switch {
	case *storeDir != "":
		// The store is opened below; the corpus never loads into memory.
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		if strings.HasSuffix(*in, ".smi") {
			db, _, err = chem.ReadSMILESFile(f)
		} else {
			db, err = graph.ReadDB(f, chem.Alphabet())
		}
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	case *dataset != "":
		found := false
		for _, spec := range chem.Catalog() {
			if spec.Name == *dataset {
				db = chem.GenerateN(spec, *n).Graphs
				found = true
			}
		}
		if !found {
			log.Fatalf("unknown dataset %q", *dataset)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	var svc *server.Server
	if *storeDir != "" {
		var err error
		svc, err = server.NewFromStore(*storeDir, server.StoreOptions{
			Shards:         *shards,
			CachedSegments: *cachedSegments,
		})
		if err != nil {
			log.Fatal(err)
		}
		gen, graphs, width, _ := svc.Store()
		log.Printf("opened store %s: generation %d, %d graphs, %d shard(s)", *storeDir, gen, graphs, width)
	} else {
		svc = server.New(db)
	}
	svc.MaxConcurrent = *maxConc
	svc.MaxBodyBytes = *maxBody
	svc.MineTimeoutCap = *mineCap
	if *mineCap <= 0 {
		svc.MineTimeoutCap = server.DefaultMineTimeoutCap
	}
	svc.JobWorkers = *workers
	svc.JobQueueDepth = *queueDepth
	svc.JobTTL = *jobTTL
	svc.JobCacheSize = *cacheSize
	svc.JobMaxRetries = *maxRetries
	svc.JobStallTimeout = *stallTimeout
	svc.JobCheckpointEvery = *checkpointEvery
	svc.EnablePprof = *pprofOn

	var jnl *journal.Journal
	if *journalDir != "" {
		if err := os.MkdirAll(*journalDir, 0o755); err != nil {
			log.Fatal(err)
		}
		var recs []journal.JobRecord
		var err error
		jnl, recs, err = journal.Open(*journalDir, journal.Options{
			Retention: *jobTTL,
			Metrics:   svc.Metrics,
		})
		if err != nil {
			log.Fatal(err)
		}
		svc.Journal = jnl
		svc.JournalReplay = recs
		if len(recs) > 0 {
			log.Printf("journal: replaying %d job(s) from %s", len(recs), *journalDir)
		}
	}

	if *warm {
		t0 := time.Now()
		if err := svc.Warm(); err != nil {
			log.Fatal(err)
		}
		log.Printf("warmed query index and RWR vectors in %s", time.Since(t0).Round(time.Millisecond))
	}

	// Listen before announcing: the bound address (meaningful with
	// ":0") goes to the log, and tooling that spawns this binary can
	// scrape it to find the port.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}

	srv := &http.Server{
		Handler: svc.Handler(),
		// Header/read timeouts bound slow-loris clients; the write
		// timeout must outlast the longest admissible mine, so it tracks
		// the mine cap with headroom for serialization.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      svc.MineTimeoutCap + 30*time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		if _, graphs, _, ok := svc.Store(); ok {
			log.Printf("serving %d graphs (store-backed) on %s", graphs, ln.Addr())
		} else {
			log.Printf("serving %d graphs on %s", len(db), ln.Addr())
		}
		errCh <- srv.Serve(ln)
	}()

	select {
	case err := <-errCh:
		// Listener failed before any shutdown signal.
		log.Fatal(err)
	case <-ctx.Done():
		stop() // restore default signal handling: a second signal kills immediately
		log.Printf("shutdown signal received, draining for up to %s", *drain)
		shCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(shCtx); err != nil {
			log.Printf("drain deadline exceeded, closing connections: %v", err)
			srv.Close()
		}
		// Drain the mining job pool within the same deadline: queued
		// jobs are canceled, running jobs get the remaining budget to
		// finish before being cut into partial results.
		if err := svc.Close(shCtx); err != nil {
			log.Printf("job drain deadline exceeded, running mines canceled: %v", err)
		}
		if err := jnl.Close(); err != nil {
			log.Printf("journal close: %v", err)
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
		log.Printf("shutdown complete")
		if *stats {
			obs.WriteStageTable(os.Stderr, svc.Metrics.Snapshot())
		}
	}
}
