// Command serve runs the GraphSig HTTP service over a chemical screen:
//
//	serve -in data/AIDS.db -addr :8080
//	serve -dataset MOLT-4 -n 1000 -addr :8080
//
// Endpoints: GET /healthz, GET /stats, POST /mine, POST /query,
// POST /significance (see internal/server).
package main

import (
	"flag"
	"log"
	"net/http"
	"os"
	"strings"

	"graphsig/internal/chem"
	"graphsig/internal/graph"
	"graphsig/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("serve: ")

	addr := flag.String("addr", ":8080", "listen address")
	in := flag.String("in", "", "graph database file (.db transaction format or .smi)")
	dataset := flag.String("dataset", "", "generate this catalog dataset instead of loading")
	n := flag.Int("n", 1000, "molecules to generate with -dataset")
	flag.Parse()

	var db []*graph.Graph
	switch {
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		if strings.HasSuffix(*in, ".smi") {
			db, _, err = chem.ReadSMILESFile(f)
		} else {
			db, err = graph.ReadDB(f, chem.Alphabet())
		}
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	case *dataset != "":
		found := false
		for _, spec := range chem.Catalog() {
			if spec.Name == *dataset {
				db = chem.GenerateN(spec, *n).Graphs
				found = true
			}
		}
		if !found {
			log.Fatalf("unknown dataset %q", *dataset)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	log.Printf("serving %d graphs on %s", len(db), *addr)
	if err := http.ListenAndServe(*addr, server.New(db).Handler()); err != nil {
		log.Fatal(err)
	}
}
