package graphsig_test

import (
	"fmt"

	"graphsig"
)

// ExampleMine mines significant subgraphs from the active compounds of a
// generated screen with the paper's default parameters.
func ExampleMine() {
	ds := graphsig.GenerateDatasetN(graphsig.AIDSSpec(), 300)
	cfg := graphsig.DefaultConfig()
	cfg.CutoffRadius = 3
	res := graphsig.Mine(ds.Actives(), cfg)
	fmt.Println(len(res.Subgraphs) > 0)
	// Output: true
}

// ExampleTrainClassifier trains the §V significant-pattern classifier
// and scores a held-out molecule.
func ExampleTrainClassifier() {
	ds := graphsig.GenerateDatasetN(graphsig.AIDSSpec(), 400)
	pos := ds.Actives()
	neg := ds.Inactives()[:len(pos)]
	opt := graphsig.DefaultClassifierOptions()
	opt.Core.CutoffRadius = 3
	c := graphsig.TrainClassifier(pos[:len(pos)-1], neg[:len(neg)-1], opt)
	// An active molecule should score at least as high as an inactive.
	fmt.Println(c.Score(pos[len(pos)-1]) >= c.Score(neg[len(neg)-1]))
	// Output: true
}

// ExampleMineGSpan runs the frequent-subgraph baseline at 50% support.
func ExampleMineGSpan() {
	ds := graphsig.GenerateDatasetN(graphsig.AIDSSpec(), 50)
	res := graphsig.MineGSpan(ds.Graphs, graphsig.GSpanOptions{
		MinSupport: 25,
		MaxEdges:   2,
	})
	fmt.Println(len(res.Patterns) > 0, res.Truncated)
	// Output: true false
}
