// Classification: train the significant-pattern classifier of §V on a
// balanced sample of a cancer screen and compare it with the two §VI-D
// baselines (LEAP-style patterns + linear SVM, OA kernel + SVM) on a
// held-out test set.
//
//	go run ./examples/classification
package main

import (
	"fmt"
	"time"

	"graphsig"
)

func main() {
	spec := findSpec("MOLT-4")
	ds := graphsig.GenerateDatasetN(spec, 800)
	pos := ds.Actives()
	neg := ds.Inactives()[:len(pos)] // balanced sample
	split := len(pos) * 3 / 4
	trainPos, testPos := pos[:split], pos[split:]
	trainNeg, testNeg := neg[:split], neg[split:]
	fmt.Printf("%s: train %d+%d, test %d+%d\n",
		spec.Name, len(trainPos), len(trainNeg), len(testPos), len(testNeg))

	evaluate := func(name string, train func() func(*graphsig.Graph) float64) {
		t0 := time.Now()
		score := train()
		var scores []float64
		var labels []bool
		for _, g := range testPos {
			scores = append(scores, score(g))
			labels = append(labels, true)
		}
		for _, g := range testNeg {
			scores = append(scores, score(g))
			labels = append(labels, false)
		}
		fmt.Printf("%-10s AUC %.3f   (train+test %v)\n",
			name, graphsig.AUC(scores, labels), time.Since(t0).Round(time.Millisecond))
	}

	evaluate("GraphSig", func() func(*graphsig.Graph) float64 {
		opt := graphsig.DefaultClassifierOptions() // k = 9, Table IV mining
		opt.Core.CutoffRadius = 3
		c := graphsig.TrainClassifier(trainPos, trainNeg, opt)
		return c.Score
	})
	evaluate("LEAP", func() func(*graphsig.Graph) float64 {
		c := graphsig.TrainLEAP(trainPos, trainNeg, graphsig.LEAPOptions{})
		return c.Score
	})
	evaluate("OA", func() func(*graphsig.Graph) float64 {
		c := graphsig.TrainOA(trainPos, trainNeg, graphsig.OAOptions{})
		return c.Score
	})
}

func findSpec(name string) graphsig.DatasetSpec {
	for _, s := range graphsig.Catalog() {
		if s.Name == name {
			return s
		}
	}
	panic("unknown dataset " + name)
}
