// Drug discovery: the Fig 13-15 scenario. Mine the active compounds of
// three screens and check that the planted drug cores — the analogues of
// AZT, FDT, methyltriphenylphosphonium and the antimony/bismuth pair —
// are recovered among the significant subgraphs, even the ones whose
// overall frequency is below 1% (where frequent-subgraph miners cannot
// reach).
//
//	go run ./examples/drugdiscovery
package main

import (
	"fmt"

	"graphsig"
	"graphsig/internal/chem"
	"graphsig/internal/core"
	"graphsig/internal/isomorph"
)

func main() {
	for _, name := range []string{"AIDS", "MOLT-4", "UACC-257"} {
		spec := findSpec(name)
		ds := graphsig.GenerateDatasetN(spec, 1200)
		actives := ds.Actives()
		fmt.Printf("=== %s: %d molecules, %d active ===\n", name, len(ds.Graphs), len(actives))

		cfg := graphsig.DefaultConfig()
		cfg.CutoffRadius = 3
		// Feature set from the whole screen, as the paper builds its
		// top-5 atom profile from the full database (Fig 4).
		cfg.FeatureSet = core.BuildFeatureSet(ds.Graphs, cfg)
		res := graphsig.Mine(actives, cfg)
		fmt.Printf("%d significant subgraphs mined from the active class\n", len(res.Subgraphs))

		for _, plan := range spec.Motifs {
			coreGraph := chem.MotifByName(plan.Motif).Build()
			freq := float64(isomorph.Support(coreGraph, ds.Graphs)) / float64(len(ds.Graphs))
			recovered := "MISSED"
			for _, sg := range res.Subgraphs {
				if isomorph.SubgraphIsomorphic(coreGraph, sg.Graph) ||
					(sg.Graph.NumEdges()*2 >= coreGraph.NumEdges() && isomorph.SubgraphIsomorphic(sg.Graph, coreGraph)) {
					recovered = fmt.Sprintf("recovered (pattern with %d edges, p=%.2g)",
						sg.Graph.NumEdges(), sg.VectorPValue)
					break
				}
			}
			fmt.Printf("  core %-14s screen frequency %5.2f%%  -> %s\n", plan.Motif, 100*freq, recovered)
		}
		fmt.Println()
	}
}

func findSpec(name string) graphsig.DatasetSpec {
	for _, s := range graphsig.Catalog() {
		if s.Name == name {
			return s
		}
	}
	panic("unknown dataset " + name)
}
