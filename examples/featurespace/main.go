// Featurespace: a walkthrough of GraphSig's feature-space machinery,
// mirroring the paper's running example (Fig 6, Tables I-II): convert a
// tiny graph database to feature vectors by random walk with restart,
// inspect the floor of a vector group, and mine closed significant
// sub-feature vectors with FVMine.
//
//	go run ./examples/featurespace
package main

import (
	"fmt"

	"graphsig/internal/feature"
	"graphsig/internal/fvmine"
	"graphsig/internal/graph"
	"graphsig/internal/rwr"
	"graphsig/internal/sigmodel"
)

func main() {
	// Four graphs in the spirit of Fig 6: G1-G3 share the subgraph
	// a-b with branches b-c and b-d (Fig 7); G4 does not.
	alpha := graph.NewAlphabet()
	build := func(labels string, edges ...[2]int) *graph.Graph {
		g := graph.New(len(labels), len(edges))
		for _, ch := range labels {
			g.AddNode(alpha.Intern(string(ch)))
		}
		for _, e := range edges {
			g.MustAddEdge(e[0], e[1], 0)
		}
		return g
	}
	g1 := build("abcde", [2]int{0, 1}, [2]int{1, 2}, [2]int{1, 3}, [2]int{0, 4})
	g2 := build("abcdf", [2]int{0, 1}, [2]int{1, 2}, [2]int{1, 3}, [2]int{3, 4})
	g3 := build("abcdef", [2]int{0, 1}, [2]int{1, 2}, [2]int{1, 3}, [2]int{2, 4}, [2]int{2, 5})
	g4 := build("adf", [2]int{0, 1}, [2]int{0, 2}, [2]int{1, 2})
	db := []*graph.Graph{g1, g2, g3, g4}

	// The running example's feature set: one feature per edge type.
	fs := feature.AllEdgeTypesSet(db, alpha)
	fmt.Println("features:", fs.Names())

	// Slide the window over each 'a' node (Table II): RWR per node.
	cfg := rwr.Defaults()
	fmt.Println("\nvectors from the 'a' node of each graph:")
	var aVecs []feature.Vector
	for i, g := range db {
		v := rwr.Walk(g, 0, fs, cfg)
		fmt.Printf("  G%d: %v\n", i+1, v)
		aVecs = append(aVecs, v)
	}

	// The floor of G1-G3 exposes the common subgraph; adding G4 (no
	// common subgraph) zeroes it out (Def 5 and the Fig 6 discussion).
	fmt.Println("\nfloor(G1..G3):", feature.Floor(aVecs[:3]))
	fmt.Println("floor(G1..G4):", feature.Floor(aVecs))

	// Mine closed significant sub-feature vectors across all nodes.
	var all []feature.Vector
	for _, g := range db {
		all = append(all, rwr.GraphVectors(g, fs, cfg)...)
	}
	model := sigmodel.New(all)
	res := fvmine.Mine(all, fvmine.Options{
		MinSupport:    2,
		MaxPvalue:     0.5,
		Model:         model,
		SkipZeroFloor: true,
	})
	fvmine.SortBySignificance(res.Vectors)
	fmt.Printf("\nFVMine: %d closed significant vectors (support>=2, p<=0.5)\n", len(res.Vectors))
	for i, s := range res.Vectors {
		if i >= 5 {
			break
		}
		fmt.Printf("  %v  support=%d  p=%.3f\n", s.Vec, s.Support, s.PValue)
	}
}
