// Generalgraphs: GraphSig outside chemistry. The paper's §II-A describes
// a general, domain-agnostic path: enumerate candidate features, select a
// compact set greedily (Eqn 2, trading importance against redundancy),
// and run the same pipeline. This example mines significant interaction
// patterns from synthetic collaboration networks — node labels are roles
// (dev, ops, mgr, sec), edge labels are interaction kinds (review,
// oncall) — where a rare "incident triangle" is planted in a minority of
// networks and surfaces as the most significant pattern.
//
//	go run ./examples/generalgraphs
package main

import (
	"fmt"

	"graphsig/internal/core"
	"graphsig/internal/feature"
	"graphsig/internal/graph"
	"graphsig/internal/social"
)

func main() {
	gen := social.NewGenerator(5)
	db := gen.Database(300, 12)
	fmt.Printf("database: %d collaboration networks, 12 with the planted incident pattern\n", len(db))

	// §II-A: candidate features scored by frequency, selected greedily
	// with a role-overlap redundancy penalty (Eqn 2).
	cands, types := social.CandidateEdgeTypes(db)
	selected := feature.GreedySelect(cands, 6, 1.0, 0.3, social.RoleOverlapSimilarity(types))
	fmt.Println("selected features (Eqn 2, w1=1.0 w2=0.3):")
	var chosen []feature.EdgeType
	for _, idx := range selected {
		fmt.Printf("  %-18s importance %.3f\n", cands[idx].Name, cands[idx].Importance)
		chosen = append(chosen, types[idx])
	}
	fs := feature.NewCustomSet(chosen,
		[]graph.Label{social.RoleDev, social.RoleOps, social.RoleMgr, social.RoleSec}, social.RoleNames)

	cfg := core.Defaults()
	cfg.FeatureSet = fs
	cfg.CutoffRadius = 2
	cfg.MinSupportFloor = 4
	res := core.Mine(db, cfg)
	fmt.Printf("\n%d significant subgraphs\n", len(res.Subgraphs))
	for i, sg := range res.Subgraphs {
		if i >= 4 {
			break
		}
		fmt.Printf("#%d p=%.3g support=%d/%d\n", i+1, sg.VectorPValue, sg.Support, len(db))
		for v := 0; v < sg.Graph.NumNodes(); v++ {
			fmt.Printf("   node %d: %s\n", v, social.RoleNames[sg.Graph.NodeLabel(v)])
		}
		for _, e := range sg.Graph.Edges() {
			fmt.Printf("   %d --%s-- %d\n", e.From, social.EdgeName(e.Label), e.To)
		}
	}
}
