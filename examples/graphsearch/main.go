// Graphsearch: use mined patterns as a subgraph-search index — the
// application direction the paper's related-work section points at
// (GIndex). Build an index over a screen from (a) frequent patterns and
// (b) GraphSig's significant patterns, then compare their filtering power
// on substructure queries against a full database scan.
//
//	go run ./examples/graphsearch
package main

import (
	"fmt"
	"math/rand"
	"time"

	"graphsig"
	"graphsig/internal/gindex"
	"graphsig/internal/graph"
)

func main() {
	ds := graphsig.GenerateDatasetN(graphsig.AIDSSpec(), 400)
	db := ds.Graphs
	fmt.Printf("database: %d molecules\n", len(db))

	// Dictionary A: frequent patterns.
	t0 := time.Now()
	freqIx := gindex.BuildFrequent(db, gindex.FrequentOptions{
		MinSupportPct: 10, MaxPatternEdges: 3, MaxPatterns: 128,
	})
	fmt.Printf("frequent-pattern index: %+v (built in %v)\n",
		freqIx.Stats(), time.Since(t0).Round(time.Millisecond))

	// Dictionary B: GraphSig's significant patterns from the actives.
	t1 := time.Now()
	cfg := graphsig.DefaultConfig()
	cfg.CutoffRadius = 3
	res := graphsig.Mine(ds.Actives(), cfg)
	var dict []*graphsig.Graph
	for _, sg := range res.Subgraphs {
		dict = append(dict, sg.Graph)
	}
	sigIx := gindex.Build(db, dict)
	fmt.Printf("significant-pattern index: %+v (built in %v)\n",
		sigIx.Stats(), time.Since(t1).Round(time.Millisecond))

	// Queries: random substructures cut from database molecules.
	r := rand.New(rand.NewSource(7))
	var queries []*graph.Graph
	for i := 0; i < 20; i++ {
		g := db[r.Intn(len(db))]
		queries = append(queries, g.CutGraph(r.Intn(g.NumNodes()), 1+r.Intn(2)))
	}

	evaluate := func(name string, candidates func(q *graph.Graph) []int) {
		totalCand, totalAns := 0, 0
		t := time.Now()
		for _, q := range queries {
			cand := candidates(q)
			totalCand += len(cand)
			for _, id := range cand {
				if graphContains(db[id], q) {
					totalAns++
				}
			}
		}
		fmt.Printf("%-22s avg candidates %5.1f  avg answers %5.1f  (%v)\n",
			name, float64(totalCand)/float64(len(queries)),
			float64(totalAns)/float64(len(queries)), time.Since(t).Round(time.Millisecond))
	}

	all := func(q *graph.Graph) []int {
		ids := make([]int, len(db))
		for i := range ids {
			ids[i] = i
		}
		return ids
	}
	evaluate("full scan", all)
	evaluate("frequent index", freqIx.Candidates)
	evaluate("significant index", sigIx.Candidates)
}

// graphContains verifies a candidate: the query must embed in the graph.
func graphContains(g, q *graph.Graph) bool {
	return len(gindex.ScanQuery([]*graph.Graph{g}, q)) == 1
}
