// Quickstart: generate a small AIDS-like screen, mine the statistically
// significant subgraphs from its active compounds, and print them.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"graphsig"
)

func main() {
	// A synthetic stand-in for the DTP-AIDS antiviral screen: ~5% of the
	// molecules are active and carry azido-pyrimidine-like drug cores.
	ds := graphsig.GenerateDatasetN(graphsig.AIDSSpec(), 500)
	actives := ds.Actives()
	fmt.Printf("screen: %d molecules, %d active\n", len(ds.Graphs), len(actives))

	cfg := graphsig.DefaultConfig() // Table IV parameters
	cfg.CutoffRadius = 4            // molecule-scale window radius
	res := graphsig.Mine(actives, cfg)

	fmt.Printf("mined %d significant subgraphs (RWR %v, feature analysis %v, FSM %v)\n",
		len(res.Subgraphs), res.Profile.RWR, res.Profile.FeatureAnalysis, res.Profile.FSM)

	alpha := ds.Alphabet
	for i, sg := range res.Subgraphs {
		if i >= 5 {
			break
		}
		fmt.Printf("\n#%d  p-value %.3g, support %d of %d actives (%.1f%%)\n",
			i+1, sg.VectorPValue, sg.Support, len(actives), 100*sg.Frequency)
		for v := 0; v < sg.Graph.NumNodes(); v++ {
			fmt.Printf("  atom %d: %s\n", v, alpha.Name(sg.Graph.NodeLabel(v)))
		}
		for _, e := range sg.Graph.Edges() {
			fmt.Printf("  bond %d-%d\n", e.From, e.To)
		}
	}
}
