module graphsig

go 1.22
