// Package graphsig is a Go implementation of GraphSig (Ranu & Singh,
// ICDE 2009): scalable mining of statistically significant subgraphs
// from large graph databases, even when those subgraphs are infrequent.
//
// The public API re-exports the building blocks a downstream user needs:
//
//   - Graphs: labeled undirected graphs with a text codec (NewGraph,
//     ReadDB, WriteDB).
//   - Mining: Mine runs the GraphSig pipeline (RWR feature extraction,
//     FVMine over closed sub-feature vectors, region grouping, maximal
//     frequent-subgraph mining) with the paper's Table IV defaults
//     (DefaultConfig).
//   - Baselines: MineGSpan and MineFSG expose the frequent-subgraph
//     miners used as comparison points and substrate.
//   - Classification: TrainClassifier builds the significant-pattern
//     classifier of §V; TrainLEAP and TrainOA build the two baselines.
//   - Data: GenerateDataset materializes the synthetic chemical screens
//     standing in for the paper's NCI/PubChem datasets (see DESIGN.md).
//
// Quick start:
//
//	ds := graphsig.GenerateDataset(graphsig.AIDSSpec(), 0.01)
//	res := graphsig.Mine(ds.Actives(), graphsig.DefaultConfig())
//	for _, sg := range res.Subgraphs {
//	    fmt.Println(sg.Graph, sg.VectorPValue, sg.Frequency)
//	}
package graphsig

import (
	"io"

	"graphsig/internal/chem"
	"graphsig/internal/classify"
	"graphsig/internal/core"
	"graphsig/internal/fsg"
	"graphsig/internal/graph"
	"graphsig/internal/gspan"
	"graphsig/internal/metrics"
)

// Graph is a labeled undirected simple graph (nodes are atoms, edges are
// bonds in the chemistry domain).
type Graph = graph.Graph

// Label identifies a node or edge label.
type Label = graph.Label

// Alphabet maps label symbols to Labels and back.
type Alphabet = graph.Alphabet

// NewGraph returns an empty graph with capacity hints.
func NewGraph(nodes, edges int) *Graph { return graph.New(nodes, edges) }

// NewAlphabet returns an empty label alphabet.
func NewAlphabet() *Alphabet { return graph.NewAlphabet() }

// ReadDB parses a graph database in gSpan transaction format
// ("t # id" / "v id label" / "e from to label"). A nil alphabet requires
// integer labels.
func ReadDB(r io.Reader, alpha *Alphabet) ([]*Graph, error) { return graph.ReadDB(r, alpha) }

// WriteDB writes a graph database in gSpan transaction format.
func WriteDB(w io.Writer, graphs []*Graph, alpha *Alphabet) error {
	return graph.WriteDB(w, graphs, alpha)
}

// Config carries the GraphSig parameters (Table IV).
type Config = core.Config

// Result is the outcome of a GraphSig mine.
type Result = core.Result

// Subgraph is one mined significant subgraph with provenance.
type Subgraph = core.Subgraph

// DefaultConfig returns the paper's Table IV parameters.
func DefaultConfig() Config { return core.Defaults() }

// Mine runs GraphSig over db and returns the significant subgraphs,
// most significant first.
func Mine(db []*Graph, cfg Config) Result { return core.Mine(db, cfg) }

// GSpanOptions configures the gSpan baseline miner.
type GSpanOptions = gspan.Options

// GSpanResult is the gSpan mining outcome.
type GSpanResult = gspan.Result

// MineGSpan runs the gSpan frequent-subgraph miner (pattern growth).
func MineGSpan(db []*Graph, opt GSpanOptions) GSpanResult { return gspan.Mine(db, opt) }

// FSGOptions configures the FSG-style baseline miner.
type FSGOptions = fsg.Options

// FSGResult is the FSG mining outcome.
type FSGResult = fsg.Result

// MineFSG runs the apriori-style frequent-subgraph miner.
func MineFSG(db []*Graph, opt FSGOptions) FSGResult { return fsg.Mine(db, opt) }

// Classifier is the significant-pattern graph classifier of §V.
type Classifier = classify.GraphSigClassifier

// ClassifierOptions configures classifier training (k, delta, mining).
type ClassifierOptions = classify.GraphSigOptions

// DefaultClassifierOptions returns the paper's classification setup (k=9).
func DefaultClassifierOptions() ClassifierOptions { return classify.DefaultGraphSigOptions() }

// TrainClassifier mines significant sub-feature vectors from the
// positive and negative training graphs and returns the classifier.
func TrainClassifier(pos, neg []*Graph, opt ClassifierOptions) *Classifier {
	return classify.TrainGraphSig(pos, neg, opt)
}

// LEAPClassifier is the pattern-based baseline classifier.
type LEAPClassifier = classify.LEAPClassifier

// LEAPOptions configures the LEAP-style baseline.
type LEAPOptions = classify.LEAPOptions

// TrainLEAP trains the pattern-based baseline classifier.
func TrainLEAP(pos, neg []*Graph, opt LEAPOptions) *LEAPClassifier {
	return classify.TrainLEAP(pos, neg, opt)
}

// OAClassifier is the optimal-assignment kernel baseline classifier.
type OAClassifier = classify.OAClassifier

// OAOptions configures the kernel baseline.
type OAOptions = classify.OAOptions

// TrainOA trains the kernel baseline classifier.
func TrainOA(pos, neg []*Graph, opt OAOptions) *OAClassifier {
	return classify.TrainOA(pos, neg, opt)
}

// AUC computes the area under the ROC curve from decision scores and
// binary labels.
func AUC(scores []float64, labels []bool) float64 { return metrics.AUC(scores, labels) }

// Dataset is a generated synthetic screen (molecules plus activity).
type Dataset = chem.Dataset

// DatasetSpec describes one synthetic screen.
type DatasetSpec = chem.DatasetSpec

// AIDSSpec returns the DTP-AIDS screen stand-in.
func AIDSSpec() DatasetSpec { return chem.AIDSSpec() }

// Catalog returns all twelve paper dataset specs (AIDS plus the eleven
// Table V cancer screens).
func Catalog() []DatasetSpec { return chem.Catalog() }

// GenerateDataset materializes a spec at the given scale relative to the
// paper's dataset sizes (floor of 50 molecules).
func GenerateDataset(spec DatasetSpec, scale float64) *Dataset { return chem.Generate(spec, scale) }

// GenerateDatasetN materializes a spec with exactly n molecules.
func GenerateDatasetN(spec DatasetSpec, n int) *Dataset { return chem.GenerateN(spec, n) }

// LoadDataset reads <dir>/<name>.db and <dir>/<name>.labels as written
// by cmd/datagen or Dataset.WriteTo.
func LoadDataset(dir, name string) (*Dataset, error) { return chem.Load(dir, name) }

// ChemAlphabet returns the 58-symbol atom alphabet of the chemistry
// substrate, for naming labels in reports.
func ChemAlphabet() *Alphabet { return chem.Alphabet() }

// ParseSMILES parses a molecule from a practical SMILES subset (organic
// subset + bracket atoms, explicit bonds, branches, ring closures,
// aromatic lowercase); see internal/chem for the exact grammar. Real NCI
// and PubChem screens ship as SMILES.
func ParseSMILES(s string) (*Graph, error) { return chem.ParseSMILES(s) }

// WriteSMILES renders a molecule as SMILES with explicit bond symbols;
// ParseSMILES(WriteSMILES(g)) reproduces g up to isomorphism.
func WriteSMILES(g *Graph) (string, error) { return chem.WriteSMILES(g) }

// ReadSMILESFile reads a .smi file (one "SMILES[ name]" per line, '#'
// comments allowed) into molecules and their names.
func ReadSMILESFile(r io.Reader) ([]*Graph, []string, error) { return chem.ReadSMILESFile(r) }

// WriteSMILESFile writes molecules as a .smi file with optional names.
func WriteSMILESFile(w io.Writer, graphs []*Graph, names []string) error {
	return chem.WriteSMILESFile(w, graphs, names)
}

// ReadSDF parses an SDF/molfile stream (V2000 subset) into molecules and
// their title lines. Real NCI screens ship in this format.
func ReadSDF(r io.Reader) ([]*Graph, []string, error) { return chem.ReadSDF(r) }

// WriteSDF writes molecules as an SDF stream (V2000, zero coordinates).
func WriteSDF(w io.Writer, graphs []*Graph, names []string) error {
	return chem.WriteSDF(w, graphs, names)
}

// LoadSDFScreen builds a ready-to-mine Dataset from an SDF stream whose
// data fields carry activity annotations — e.g.
// LoadSDFScreen(f, "AIDS", "ACTIVITY", "CA", "CM") for the NCI screens.
func LoadSDFScreen(r io.Reader, name, activityField string, activeValues ...string) (*Dataset, error) {
	return chem.LoadSDFScreen(r, name, activityField, activeValues...)
}

// CrossValidate runs stratified k-fold cross validation of any classifier
// over a labeled graph set; see classify.CrossValidate.
func CrossValidate(graphs []*Graph, labels []bool, k int, seed int64,
	train func(pos, neg []*Graph) Scorer) CVResult {
	return classify.CrossValidate(graphs, labels, k, seed,
		func(p, n []*Graph) classify.Scorer { return train(p, n) })
}

// Scorer is the uniform classifier interface: a decision score whose
// sign classifies and whose magnitude ranks.
type Scorer = classify.Scorer

// CVResult summarizes one classifier's cross validation.
type CVResult = classify.CVResult

// BalancedSample pairs all positives with an equal-size deterministic
// negative sample (the §VI-D balanced-training construction).
func BalancedSample(pos, neg []*Graph, seed int64) ([]*Graph, []bool) {
	return classify.BalancedSample(pos, neg, seed)
}
