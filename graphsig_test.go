package graphsig

import (
	"strings"
	"testing"
)

// TestEndToEndMine exercises the full public pipeline: generate a screen,
// mine significant subgraphs from its actives, check provenance fields.
func TestEndToEndMine(t *testing.T) {
	ds := GenerateDatasetN(AIDSSpec(), 400)
	actives := ds.Actives()
	if len(actives) < 10 {
		t.Fatalf("only %d actives", len(actives))
	}
	cfg := DefaultConfig()
	cfg.CutoffRadius = 3
	res := Mine(actives, cfg)
	if len(res.Subgraphs) == 0 {
		t.Fatal("no significant subgraphs")
	}
	for _, sg := range res.Subgraphs {
		if sg.Graph == nil || sg.Graph.NumEdges() == 0 {
			t.Fatal("empty pattern")
		}
		if sg.VectorPValue > cfg.MaxPvalue+1e-9 {
			t.Errorf("pattern above p-value threshold: %g", sg.VectorPValue)
		}
		if sg.Support <= 0 {
			t.Error("unverified support")
		}
	}
}

func TestEndToEndClassification(t *testing.T) {
	ds := GenerateDatasetN(AIDSSpec(), 500)
	pos := ds.Actives()
	neg := ds.Inactives()[:len(pos)]
	split := len(pos) * 3 / 4
	opt := DefaultClassifierOptions()
	opt.Core.CutoffRadius = 3
	c := TrainClassifier(pos[:split], neg[:split], opt)

	var scores []float64
	var labels []bool
	for _, g := range pos[split:] {
		scores = append(scores, c.Score(g))
		labels = append(labels, true)
	}
	for _, g := range neg[split:] {
		scores = append(scores, c.Score(g))
		labels = append(labels, false)
	}
	if auc := AUC(scores, labels); auc < 0.7 {
		t.Errorf("AUC = %.2f; want >= 0.7", auc)
	}
}

func TestCodecRoundTripPublicAPI(t *testing.T) {
	alpha := NewAlphabet()
	g := NewGraph(2, 1)
	g.AddNode(alpha.Intern("C"))
	g.AddNode(alpha.Intern("O"))
	g.MustAddEdge(0, 1, 0)

	var sb strings.Builder
	if err := WriteDB(&sb, []*Graph{g}, alpha); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDB(strings.NewReader(sb.String()), alpha)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].NumNodes() != 2 || back[0].NumEdges() != 1 {
		t.Fatalf("round trip lost data: %v", back)
	}
}

func TestBaselineMinersAgreeOnPublicAPI(t *testing.T) {
	ds := GenerateDatasetN(AIDSSpec(), 30)
	minSup := 25
	a := MineGSpan(ds.Graphs, GSpanOptions{MinSupport: minSup, MaxEdges: 3})
	b := MineFSG(ds.Graphs, FSGOptions{MinSupport: minSup, MaxEdges: 3})
	if len(a.Patterns) != len(b.Patterns) {
		t.Errorf("gSpan found %d patterns, FSG %d", len(a.Patterns), len(b.Patterns))
	}
}

func TestCatalogPublicAPI(t *testing.T) {
	specs := Catalog()
	if len(specs) != 12 {
		t.Fatalf("catalog = %d specs", len(specs))
	}
	ds := GenerateDataset(specs[0], 0.001)
	if len(ds.Graphs) < 50 {
		t.Errorf("scaled dataset too small: %d", len(ds.Graphs))
	}
	if ChemAlphabet().Len() != 58 {
		t.Error("chem alphabet wrong size")
	}
}

func TestFacadeSMILES(t *testing.T) {
	g, err := ParseSMILES("c1ccccc1C(=O)O")
	if err != nil {
		t.Fatal(err)
	}
	s, err := WriteSMILES(g)
	if err != nil || s == "" {
		t.Fatalf("WriteSMILES: %q, %v", s, err)
	}
	var sb strings.Builder
	if err := WriteSMILESFile(&sb, []*Graph{g}, []string{"benzoic"}); err != nil {
		t.Fatal(err)
	}
	back, names, err := ReadSMILESFile(strings.NewReader(sb.String()))
	if err != nil || len(back) != 1 || names[0] != "benzoic" {
		t.Fatalf("ReadSMILESFile: %d graphs, %v, %v", len(back), names, err)
	}
}

func TestFacadeBaselineClassifiersAndCV(t *testing.T) {
	ds := GenerateDatasetN(AIDSSpec(), 400)
	pos := ds.Actives()
	balanced, labels := BalancedSample(pos, ds.Inactives(), 3)
	if len(balanced) != 2*len(pos) {
		t.Fatalf("balanced size %d", len(balanced))
	}
	res := CrossValidate(balanced, labels, 3, 3, func(p, n []*Graph) Scorer {
		return TrainLEAP(p, n, LEAPOptions{})
	})
	if len(res.AUCs) != 3 || res.Mean < 0.5 {
		t.Errorf("LEAP CV: %+v", res)
	}
	// OA on a small slice to keep this fast.
	oa := TrainOA(pos[:4], ds.Inactives()[:4], OAOptions{})
	_ = oa.Score(pos[0])
}

func TestFacadeSDFScreen(t *testing.T) {
	// Round trip a tiny screen through SDF and load it for mining.
	ds := GenerateDatasetN(AIDSSpec(), 20)
	var sb strings.Builder
	if err := WriteSDF(&sb, ds.Graphs, nil); err != nil {
		t.Fatal(err)
	}
	graphs, names, err := ReadSDF(strings.NewReader(sb.String()))
	if err != nil || len(graphs) != 20 || len(names) != 20 {
		t.Fatalf("ReadSDF: %d graphs, err %v", len(graphs), err)
	}
	loaded, err := LoadSDFScreen(strings.NewReader(sb.String()), "rt", "ACTIVITY", "CA")
	if err != nil || len(loaded.Graphs) != 20 {
		t.Fatalf("LoadSDFScreen: %v", err)
	}
	// No ACTIVITY fields were written, so nothing is active.
	if loaded.NumActive() != 0 {
		t.Errorf("actives = %d; want 0", loaded.NumActive())
	}
}

func TestFacadeLoadDataset(t *testing.T) {
	dir := t.TempDir()
	ds := GenerateDatasetN(AIDSSpec(), 30)
	if err := ds.WriteTo(dir); err != nil {
		t.Fatal(err)
	}
	back, err := LoadDataset(dir, "AIDS")
	if err != nil || len(back.Graphs) != 30 {
		t.Fatalf("LoadDataset: %v (%d graphs)", err, len(back.Graphs))
	}
	if back.NumActive() != ds.NumActive() {
		t.Errorf("actives changed: %d vs %d", back.NumActive(), ds.NumActive())
	}
}
