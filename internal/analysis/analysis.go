// Package analysis is graphsig's project-invariant static-analysis
// engine: a small, stdlib-only analogue of golang.org/x/tools/go/analysis
// plus the ~6 analyzers that encode invariants the compiler cannot see.
//
// GraphSig's correctness depends on properties that live outside the
// type system: canonical DFS codes, database fingerprints, and config
// cache keys must be byte-for-byte deterministic (result caching and
// request coalescing key on them), hot mining loops must observe runctl
// checkpoints so budgets and deadlines actually bind, and background
// goroutines must be panic-isolated so one pathological mine cannot
// take down a worker pool. Each analyzer turns one such convention into
// a machine-checked rule; `cmd/graphsiglint` and a meta-test run the
// suite over the whole repository so a new violation fails `make lint`
// and `make test`.
//
// The engine loads packages without golang.org/x/tools: `go list
// -export -deps -json` supplies file lists and compiled export data,
// the sources are parsed with go/parser and type-checked with go/types
// against the export data (see load.go).
//
// A diagnostic can be suppressed, with a mandatory justification, by a
// comment on the flagged line or the line above it:
//
//	//graphsiglint:ignore ctxfirst config structs carry the run context by design
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name is the analyzer's identifier, used in diagnostics, -run
	// filters, and //graphsiglint:ignore comments.
	Name string
	// Doc is a one-paragraph description of the invariant and why the
	// project needs it.
	Doc string
	// Run inspects one package and reports violations via pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one analyzer's view of one loaded package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// ImportPath is the package's import path as reported by the
	// loader ("graphsig/internal/dfscode"). Scope-restricted analyzers
	// match on its path segments.
	ImportPath string

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		MapOrder,
		WallClock,
		CtxFirst,
		SafeGo,
		CheckpointAnalyzer,
		ErrWrap,
		BoundedPool,
		FsyncClose,
		LockGuard,
		AtomicMix,
		SharedCapture,
		KeyTaint,
		ObsNames,
	}
}

// ByName resolves a comma-separated analyzer filter ("maporder,errwrap")
// against the full suite.
func ByName(filter string) ([]*Analyzer, error) {
	if strings.TrimSpace(filter) == "" {
		return All(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(filter, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// Run applies analyzers to pkgs and returns the surviving diagnostics
// sorted by position. Diagnostics matched by a //graphsiglint:ignore
// comment (same line or the line above, naming the analyzer, with a
// non-empty justification) are dropped.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		ignores := collectIgnores(pkg)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:   a,
				Fset:       pkg.Fset,
				Files:      pkg.Syntax,
				Pkg:        pkg.Types,
				TypesInfo:  pkg.TypesInfo,
				ImportPath: pkg.ImportPath,
				report: func(d Diagnostic) {
					d.File, d.Line, d.Col = d.Pos.Filename, d.Pos.Line, d.Pos.Column
					if !ignores.matches(d) {
						diags = append(diags, d)
					}
				},
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// ignoreSet indexes //graphsiglint:ignore comments: file -> line -> the
// analyzer names suppressed on that line.
type ignoreSet map[string]map[int]map[string]bool

const ignorePrefix = "graphsiglint:ignore"

func collectIgnores(pkg *Package) ignoreSet {
	set := ignoreSet{}
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
				fields := strings.Fields(rest)
				// A justification after the analyzer list is mandatory:
				// an unexplained suppression is itself a violation.
				if len(fields) < 2 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				lines := set[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					set[pos.Filename] = lines
				}
				for _, name := range strings.Split(fields[0], ",") {
					// The comment shields its own line and the next, so
					// it works both inline and as a standalone line above.
					for _, ln := range []int{pos.Line, pos.Line + 1} {
						if lines[ln] == nil {
							lines[ln] = map[string]bool{}
						}
						lines[ln][name] = true
					}
				}
			}
		}
	}
	return set
}

func (s ignoreSet) matches(d Diagnostic) bool {
	return s[d.Pos.Filename][d.Pos.Line][d.Analyzer]
}
