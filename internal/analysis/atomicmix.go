package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicMix reports variables and struct fields that are accessed both
// through sync/atomic and with plain reads or writes in the same
// package. Mixing the two silently downgrades every atomic access at
// that address: the plain side races, and on weakly-ordered hardware
// the atomic side stops publishing. The project's counters (jobs
// totals, shard verification tallies, runctl budgets) are all-atomic
// by convention; this analyzer pins the convention down.
//
// Accesses inside constructor functions on provably-unpublished locals
// are exempt — zeroing or presetting a counter before the struct
// escapes is not a race.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc: "A variable accessed via sync/atomic must never also be read " +
		"or written plainly; the plain access races with the atomic one.",
	Run: runAtomicMix,
}

// atomicOps are the sync/atomic package functions whose first argument
// is the address being operated on.
func isAtomicOpName(name string) bool {
	for _, prefix := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

func runAtomicMix(pass *Pass) error {
	// Pass 1: every object whose address is taken by an atomic op, with
	// the source ranges of those call arguments (accesses inside them
	// are the atomic accesses themselves, not violations).
	type span struct{ lo, hi token.Pos }
	atomicObjs := map[types.Object]token.Pos{} // object -> first atomic site
	var atomicArgSpans []span

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !isAtomicOpName(sel.Sel.Name) {
				return true
			}
			pkgID, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.objOf(pkgID).(*types.PkgName)
			if !ok || pn.Imported().Path() != "sync/atomic" {
				return true
			}
			addr, ok := call.Args[0].(*ast.UnaryExpr)
			if !ok || addr.Op != token.AND {
				return true
			}
			if obj := pass.addressedObj(addr.X); obj != nil {
				if _, seen := atomicObjs[obj]; !seen {
					atomicObjs[obj] = call.Pos()
				}
				atomicArgSpans = append(atomicArgSpans, span{call.Args[0].Pos(), call.Args[0].End()})
			}
			return true
		})
	}
	if len(atomicObjs) == 0 {
		return nil
	}
	inAtomicArg := func(pos token.Pos) bool {
		for _, s := range atomicArgSpans {
			if pos >= s.lo && pos < s.hi {
				return true
			}
		}
		return false
	}

	// Pass 2: plain accesses to the same objects.
	funcBodies(pass.Files, func(fd *ast.FuncDecl) {
		ctor := pass.constructorLocals(fd.Body)
		handled := map[*ast.Ident]bool{} // Sel idents consumed by their selector
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			var obj types.Object
			var pos token.Pos
			switch v := n.(type) {
			case *ast.SelectorExpr:
				sel, ok := pass.TypesInfo.Selections[v]
				if !ok || sel.Kind() != types.FieldVal {
					return true
				}
				handled[v.Sel] = true
				obj = sel.Obj()
				pos = v.Sel.Pos()
				if root := rootIdent(v.X); root != nil {
					if ro := pass.objOf(root); ro != nil && ctor[ro] {
						return true
					}
				}
			case *ast.Ident:
				if handled[v] {
					return true
				}
				obj = pass.objOf(v)
				pos = v.Pos()
			default:
				return true
			}
			if obj == nil {
				return true
			}
			if _, tracked := atomicObjs[obj]; !tracked {
				return true
			}
			if inAtomicArg(pos) {
				return true
			}
			pass.Reportf(pos, "%s is accessed with sync/atomic elsewhere in this package; this plain access races with it", obj.Name())
			return true
		})
	})
	return nil
}

// addressedObj resolves &x's operand to the variable or field object
// being addressed: a bare ident, or an ident-rooted field selector.
func (p *Pass) addressedObj(e ast.Expr) types.Object {
	switch v := e.(type) {
	case *ast.Ident:
		return p.objOf(v)
	case *ast.SelectorExpr:
		if sel, ok := p.TypesInfo.Selections[v]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
	case *ast.ParenExpr:
		return p.addressedObj(v.X)
	case *ast.IndexExpr:
		// &slice[i]: per-slot atomics index a shared array; the slot
		// has no stable object identity, skip.
		return nil
	}
	return nil
}
