package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Baseline is a recorded set of accepted diagnostics. It lets a new,
// stricter analyzer land without blocking CI on legacy findings: known
// violations are written once with -write-baseline, suppressed on
// later runs with -baseline, and burned down over time (this repo's
// own policy is stricter still — in-tree violations are fixed in the
// same PR, so the committed baseline stays empty).
//
// Matching is by (analyzer, file, message), never by line or column:
// unrelated edits move lines constantly, and a baseline that decays on
// every refactor is worse than none. File paths are stored relative to
// the module root so the file is stable across checkouts.
type Baseline struct {
	entries map[baselineKey]bool
}

type baselineKey struct {
	Analyzer string
	File     string
	Message  string
}

// baselineEntry is the on-disk form, a trimmed Diagnostic.
type baselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
}

// LoadBaseline reads a baseline file written by WriteBaseline.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []baselineEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("parse baseline %s: %w", path, err)
	}
	b := &Baseline{entries: map[baselineKey]bool{}}
	for _, e := range entries {
		b.entries[baselineKey{e.Analyzer, filepath.ToSlash(e.File), e.Message}] = true
	}
	return b, nil
}

// WriteBaseline records diags at path, with file paths relativized to
// root. Entries are sorted and deduplicated so the file diffs cleanly.
func WriteBaseline(path, root string, diags []Diagnostic) error {
	seen := map[baselineEntry]bool{}
	entries := []baselineEntry{}
	for _, d := range diags {
		e := baselineEntry{Analyzer: d.Analyzer, File: relToRoot(root, d.File), Message: d.Message}
		if !seen[e] {
			seen[e] = true
			entries = append(entries, e)
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Filter returns the diagnostics not covered by the baseline, plus the
// number suppressed.
func (b *Baseline) Filter(root string, diags []Diagnostic) (remaining []Diagnostic, suppressed int) {
	for _, d := range diags {
		key := baselineKey{d.Analyzer, relToRoot(root, d.File), d.Message}
		if b.entries[key] {
			suppressed++
			continue
		}
		remaining = append(remaining, d)
	}
	return remaining, suppressed
}

func relToRoot(root, file string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, file); err == nil && !filepath.IsAbs(rel) && rel != "" && rel[0] != '.' {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(file)
}
