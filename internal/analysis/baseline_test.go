package analysis

import (
	"os"
	"path/filepath"
	"testing"
)

func TestBaselineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	root := filepath.Join(dir, "mod")
	path := filepath.Join(dir, "baseline.json")

	legacy := []Diagnostic{
		{Analyzer: "lockguard", File: filepath.Join(root, "internal/jobs/jobs.go"), Line: 10, Message: "field Job.state is unguarded"},
		{Analyzer: "keytaint", File: filepath.Join(root, "internal/core/core.go"), Line: 5, Message: "tainted key"},
		// Duplicate key on another line collapses to one entry.
		{Analyzer: "keytaint", File: filepath.Join(root, "internal/core/core.go"), Line: 99, Message: "tainted key"},
	}
	if err := WriteBaseline(path, root, legacy); err != nil {
		t.Fatalf("WriteBaseline: %v", err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatalf("LoadBaseline: %v", err)
	}
	if len(b.entries) != 2 {
		t.Fatalf("expected 2 deduplicated entries, got %d", len(b.entries))
	}

	now := []Diagnostic{
		// Same finding, moved to a different line: still suppressed.
		{Analyzer: "lockguard", File: filepath.Join(root, "internal/jobs/jobs.go"), Line: 222, Message: "field Job.state is unguarded"},
		// Same file and analyzer, new message: reported.
		{Analyzer: "lockguard", File: filepath.Join(root, "internal/jobs/jobs.go"), Line: 11, Message: "brand new"},
		// Baselined message from a different file: reported.
		{Analyzer: "keytaint", File: filepath.Join(root, "internal/shard/shard.go"), Line: 5, Message: "tainted key"},
	}
	remaining, suppressed := b.Filter(root, now)
	if suppressed != 1 {
		t.Fatalf("expected 1 suppressed, got %d", suppressed)
	}
	if len(remaining) != 2 {
		t.Fatalf("expected 2 remaining, got %d: %v", len(remaining), remaining)
	}
	for _, d := range remaining {
		if d.Message == "field Job.state is unguarded" {
			t.Fatalf("baselined finding leaked through: %v", d)
		}
	}
}

func TestLoadBaselineRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(path); err == nil {
		t.Fatal("expected a parse error")
	}
	if _, err := LoadBaseline(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("expected a read error for a missing file")
	}
}
