package analysis

import (
	"go/ast"
)

// BoundedPool flags unbounded goroutine fan-out: a `go` statement
// inside a range loop with nothing in the loop body that can block the
// spawn rate. GraphSig fans out over databases, vector groups, and
// pattern lists whose sizes are input-controlled; a goroutine per
// element with no semaphore means thousands of concurrent miners on a
// large input, and the scheduler thrash defeats the parallelism the
// fan-out was meant to buy. The project convention is a channel
// semaphore acquired in the loop body *before* the spawn
// (`sem <- struct{}{}` then `go ...`), which every parallel stage in
// internal/core follows; worker pools spawned by a counted loop
// (`for w := 0; w < workers; w++`) are bounded by construction and not
// flagged.
//
// A channel send inside the spawned function literal does not count:
// the loop would still spawn every goroutine before any of them block,
// which bounds concurrency of the work but not the goroutine count.
var BoundedPool = &Analyzer{
	Name: "boundedpool",
	Doc: "a go statement in a range loop must be preceded by a blocking " +
		"acquire (channel-semaphore send) in the same loop body, so fan-out " +
		"is bounded by a pool instead of the input size",
	Run: runBoundedPool,
}

func runBoundedPool(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if rng, ok := n.(*ast.RangeStmt); ok {
				checkBoundedLoop(pass, rng.Body)
			}
			return true
		})
	}
	return nil
}

// checkBoundedLoop scans one range-loop body. Spawns are attributed to
// the innermost range loop: nested range loops are skipped here (the
// outer Inspect visits them separately), and function literals open a
// new scope whose loops are likewise their own problem.
func checkBoundedLoop(pass *Pass, body *ast.BlockStmt) {
	var goStmts []*ast.GoStmt
	bounded := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.RangeStmt:
			return false
		case *ast.GoStmt:
			goStmts = append(goStmts, s)
			// Sends inside the spawned function don't bound the spawn
			// rate — every iteration still launches before any blocks.
			return false
		case *ast.SendStmt:
			bounded = true
		}
		return true
	})
	if bounded {
		return
	}
	for _, g := range goStmts {
		pass.Reportf(g.Pos(),
			"unbounded goroutine fan-out over a range loop; acquire a semaphore slot (sem <- struct{}{}) before spawning so concurrency is bounded by a pool, not the input size")
	}
}
