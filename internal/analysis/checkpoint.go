package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path"
)

// CheckpointAnalyzer enforces the runctl contract from PR 1: a function
// that accepts a *runctl.Controller (or *runctl.Checkpoint) and contains
// a loop must actually observe the controller — otherwise budgets and
// deadlines silently stop binding in exactly the hot paths they exist
// for. A function complies when some loop in its body touches the
// controller or a checkpoint derived from it (cp.Step(), cp.Force(),
// ctl.Stopped(), ...), or when it delegates the controller onward by
// passing it (or a derived checkpoint) to another call, composite
// literal, or struct — the callee then carries the obligation.
var CheckpointAnalyzer = &Analyzer{
	Name: "checkpoint",
	Doc: "functions taking *runctl.Controller that contain loops must observe " +
		"a checkpoint inside a loop or delegate the controller onward",
	Run: runCheckpoint,
}

func runCheckpoint(pass *Pass) error {
	// runctl itself implements the primitive; its internal loops are
	// the mechanism, not users of it.
	if path.Base(pass.ImportPath) == "runctl" {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkCtlFunc(pass, fn.Name.Pos(), "function "+fn.Name.Name, fn.Type, fn.Body)
				}
			case *ast.FuncLit:
				checkCtlFunc(pass, fn.Pos(), "function literal", fn.Type, fn.Body)
			}
			return true
		})
	}
	return nil
}

func isRunctlParam(t types.Type) bool {
	return isNamedType(t, true, "runctl", "Controller") || isNamedType(t, true, "runctl", "Checkpoint")
}

func checkCtlFunc(pass *Pass, pos token.Pos, what string, ft *ast.FuncType, body *ast.BlockStmt) {
	// tracked holds the controller/checkpoint parameters plus every
	// local derived from them (cp := ctl.Checkpoint(stage)).
	tracked := map[types.Object]bool{}
	if ft.Params != nil {
		for _, field := range ft.Params.List {
			for _, name := range field.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil && isRunctlParam(obj.Type()) {
					tracked[obj] = true
				}
			}
		}
	}
	if len(tracked) == 0 {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil || !isRunctlParam(obj.Type()) {
				continue
			}
			rhs := as.Rhs[0]
			if len(as.Rhs) == len(as.Lhs) {
				rhs = as.Rhs[i]
			}
			if usesTracked(pass, tracked, rhs) {
				tracked[obj] = true
			}
		}
		return true
	})

	hasLoop := false
	observed := false
	delegated := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.ForStmt:
			hasLoop = true
			if usesTracked(pass, tracked, v.Body) {
				observed = true
			}
		case *ast.RangeStmt:
			hasLoop = true
			if usesTracked(pass, tracked, v.Body) {
				observed = true
			}
		case *ast.CallExpr:
			for _, arg := range v.Args {
				if usesTracked(pass, tracked, arg) {
					delegated = true
				}
			}
		case *ast.CompositeLit:
			for _, elt := range v.Elts {
				if usesTracked(pass, tracked, elt) {
					delegated = true
				}
			}
		}
		return true
	})
	if hasLoop && !observed && !delegated {
		pass.Reportf(pos,
			"%s takes a runctl controller but no loop observes it; call a checkpoint (cp.Step/Force) inside the loop or pass the controller to the code doing the work",
			what)
	}
}

// usesTracked reports whether the subtree mentions a tracked object.
func usesTracked(pass *Pass, tracked map[types.Object]bool, n ast.Node) bool {
	if n == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if id, ok := c.(*ast.Ident); ok {
			if obj := pass.objOf(id); obj != nil && tracked[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}
