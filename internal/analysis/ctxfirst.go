package analysis

import (
	"go/ast"
)

// CtxFirst enforces the standard context discipline: context.Context is
// the first parameter of any function that takes one, and is never
// stored in a struct field. A buried context parameter hides the fact
// that a call is cancelable; a stored context outlives the request it
// belongs to and silently decouples cancellation from the work it is
// supposed to stop. The two deliberate exceptions in this repo — the
// run-configuration structs that carry a context from API boundary to
// runctl.New — are annotated with //graphsiglint:ignore and a
// justification.
var CtxFirst = &Analyzer{
	Name: "ctxfirst",
	Doc: "context.Context must be the first parameter and must not be stored " +
		"in a struct field",
	Run: runCtxFirst,
}

func runCtxFirst(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.FuncType:
				checkCtxParams(pass, v)
			case *ast.StructType:
				checkCtxFields(pass, v)
			}
			return true
		})
	}
	return nil
}

func checkCtxParams(pass *Pass, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	paramIndex := 0
	for _, field := range ft.Params.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if ok && isContextType(tv.Type) && paramIndex > 0 {
			pass.Reportf(field.Pos(), "context.Context should be the first parameter")
			return
		}
		// An unnamed parameter group still occupies one slot.
		if len(field.Names) == 0 {
			paramIndex++
		} else {
			paramIndex += len(field.Names)
		}
	}
}

func checkCtxFields(pass *Pass, st *ast.StructType) {
	for _, field := range st.Fields.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if ok && isContextType(tv.Type) {
			pass.Reportf(field.Pos(),
				"context.Context stored in a struct field; pass it as a parameter so cancellation stays tied to the call")
		}
	}
}
