// dataflow.go is the shared core of graphsiglint's second analyzer
// tier. Where the first tier matches syntax (a `go` statement, a
// time.Now call), this tier reasons about values: which mutex guards
// are held at a program point, which expressions alias which declared
// objects, and how those facts flow through a function body. It is
// deliberately intra-procedural and conservative — a small, auditable
// model that the concurrency analyzers (lockguard, atomicmix,
// sharedcapture) and the taint analyzer (keytaint, see taint.go) build
// on, not a whole-program alias analysis.
//
// The guard model: a guard is a canonical path expression rooted at a
// declared object ("j.mu", "c.state.mu"), tracked through Lock/RLock/
// Unlock/RUnlock calls on sync.Mutex and sync.RWMutex values. The
// walker runs a statement-ordered abstract interpretation: branches
// and loop bodies are analyzed with a copy of the incoming state (a
// lock acquired inside a branch does not leak out), `defer x.Unlock()`
// marks the guard return-safe while keeping it held, and function
// literals are analyzed as fresh functions because they run at an
// unknown time under an unknown lock set.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// holdKind records how a guard is held.
type holdKind byte

const (
	holdRead  holdKind = 'r' // RLock
	holdWrite holdKind = 'w' // Lock
)

// guardState is the abstract lock state at one program point.
type guardState struct {
	// held maps canonical guard keys to how they are held.
	held map[string]holdKind
	// deferRelease marks guards with a pending `defer Unlock`: still
	// held for access-checking purposes, but safe to return with.
	deferRelease map[string]bool
}

func newGuardState() *guardState {
	return &guardState{held: map[string]holdKind{}, deferRelease: map[string]bool{}}
}

func (st *guardState) clone() *guardState {
	c := newGuardState()
	for k, v := range st.held {
		c.held[k] = v
	}
	for k := range st.deferRelease {
		c.deferRelease[k] = true
	}
	return c
}

// holds reports whether the guard is held strongly enough: a write
// access needs the write lock, a read is satisfied by either.
func (st *guardState) holds(key string, write bool) bool {
	k, ok := st.held[key]
	if !ok {
		return false
	}
	return !write || k == holdWrite
}

// leaked returns the guards held with no pending defer-release, in
// sorted order — what a return statement would abandon.
func (st *guardState) leaked() []string {
	var out []string
	for k := range st.held {
		if !st.deferRelease[k] {
			out = append(out, k)
		}
	}
	sortStrings(out)
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// mutexKind classifies a type as sync.Mutex, sync.RWMutex, or neither.
// Matching is by package name, so analyzer corpora with a stand-in
// sync package would also bind (in practice they import the real one).
func mutexKind(t types.Type) (rw bool, ok bool) {
	if isNamedType(t, true, "sync", "RWMutex") {
		return true, true
	}
	if isNamedType(t, true, "sync", "Mutex") {
		return false, true
	}
	return false, false
}

// guardKeyOf canonicalizes an ident-rooted selector path to a stable
// key: the root object's declaration position joined with the field
// path, so `m.mu` and a shadowed `m.mu` in another scope never
// collide. Non-ident-rooted expressions (call results, index
// expressions) have no stable identity and yield ok=false.
func (p *Pass) guardKeyOf(e ast.Expr) (string, bool) {
	var path []string
	for {
		switch v := e.(type) {
		case *ast.Ident:
			obj := p.objOf(v)
			if obj == nil {
				return "", false
			}
			key := strconv.Itoa(int(obj.Pos()))
			for i := len(path) - 1; i >= 0; i-- {
				key += "." + path[i]
			}
			return key, true
		case *ast.SelectorExpr:
			path = append(path, v.Sel.Name)
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return "", false
		}
	}
}

// lockMethod classifies a call as a mutex lock-state transition and
// returns the canonical key of the receiver guard.
type lockOp int

const (
	opNone lockOp = iota
	opLock
	opRLock
	opUnlock
	opRUnlock
)

func (p *Pass) lockCallOf(call *ast.CallExpr) (key string, op lockOp) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", opNone
	}
	var name string
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
		name = sel.Sel.Name
	default:
		return "", opNone
	}
	tv, ok := p.TypesInfo.Types[sel.X]
	if !ok || tv.Type == nil {
		return "", opNone
	}
	rw, isMutex := mutexKind(tv.Type)
	if !isMutex {
		return "", opNone
	}
	if !rw && (name == "RLock" || name == "RUnlock") {
		return "", opNone
	}
	k, ok := p.guardKeyOf(sel.X)
	if !ok {
		return "", opNone
	}
	switch name {
	case "Lock":
		return k, opLock
	case "RLock":
		return k, opRLock
	case "Unlock":
		return k, opUnlock
	default:
		return k, opRUnlock
	}
}

// assumesLockHeld reports whether a function declares, by project
// convention, that its caller already holds the relevant mutex: a name
// ending in "Locked", or a doc comment containing "aller holds"
// ("Caller holds mu"). Such functions are exempt from guarded-access
// and return-leak checking — their lock discipline is the caller's.
func assumesLockHeld(fd *ast.FuncDecl) bool {
	if strings.HasSuffix(fd.Name.Name, "Locked") {
		return true
	}
	if fd.Doc != nil && strings.Contains(fd.Doc.Text(), "aller holds") {
		return true
	}
	return false
}

// constructorLocals returns the objects of local variables that are
// provably unpublished in this function: assigned from a composite
// literal (&T{...} or T{...}) or from a constructor-shaped call (a
// function whose name starts with "New" or "new"). Accesses to such
// objects need no lock — no other goroutine can hold a reference yet.
// The moment such an object is handed to a channel, map, or another
// goroutine the exemption is unsound in principle; in practice the
// convention "initialize fully before publishing" is exactly what this
// models, and publication-then-mutation is still caught in every other
// function that receives the shared object.
func (p *Pass) constructorLocals(body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	mark := func(lhs, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		if !isConstructorExpr(rhs) {
			return
		}
		if obj := p.objOf(id); obj != nil {
			out[obj] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Rhs) == 1 && len(st.Lhs) >= 1 {
				mark(st.Lhs[0], st.Rhs[0])
			} else if len(st.Rhs) == len(st.Lhs) {
				for i := range st.Lhs {
					mark(st.Lhs[i], st.Rhs[i])
				}
			}
		case *ast.DeclStmt:
			if gd, ok := st.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) == len(vs.Names) {
						for i := range vs.Names {
							mark(vs.Names[i], vs.Values[i])
						}
					}
				}
			}
		}
		return true
	})
	return out
}

func isConstructorExpr(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			_, ok := v.X.(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		var name string
		switch f := v.Fun.(type) {
		case *ast.Ident:
			name = f.Name
		case *ast.SelectorExpr:
			name = f.Sel.Name
		}
		return strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new")
	}
	return false
}

// guardWalker runs the guard-state abstract interpretation over one
// function body, invoking the consumer callbacks with the state at
// each access. All callbacks are optional.
type guardWalker struct {
	pass *Pass
	// onRead is invoked for every ident-or-selector reference read in
	// an expression context, with the lock state at that point.
	onRead func(e ast.Expr, st *guardState)
	// onWrite is invoked for assignment targets. through=true means the
	// write mutates contents reached via e (index assign, delete) rather
	// than e itself.
	onWrite func(e ast.Expr, through bool, st *guardState)
	// onReturn is invoked at each return with the guards it would leak.
	onReturn func(ret *ast.ReturnStmt, leaked []string)
	// onFuncLit is invoked for each function literal encountered; the
	// walker does not descend into it (it runs under an unknown lock
	// set), the consumer decides whether to analyze it fresh.
	onFuncLit func(lit *ast.FuncLit)
	// onLock is invoked once per syntactic Lock/RLock/Unlock/RUnlock
	// call (including deferred ones), before the state transition.
	onLock func(call *ast.CallExpr, key string, op lockOp)
}

// walkBody analyzes one function body starting from the empty state.
func (w *guardWalker) walkBody(body *ast.BlockStmt) {
	st := newGuardState()
	for _, s := range body.List {
		w.walkStmt(s, st)
	}
}

func (w *guardWalker) walkStmt(s ast.Stmt, st *guardState) {
	switch v := s.(type) {
	case nil:
	case *ast.ExprStmt:
		if call, ok := v.X.(*ast.CallExpr); ok {
			if key, op := w.pass.lockCallOf(call); op != opNone {
				if w.onLock != nil {
					w.onLock(call, key, op)
				}
				w.applyLockOp(st, key, op)
				return
			}
		}
		w.visitExpr(v.X, st)
	case *ast.AssignStmt:
		for _, r := range v.Rhs {
			w.visitExpr(r, st)
		}
		for _, l := range v.Lhs {
			w.walkWriteTarget(l, st)
		}
	case *ast.IncDecStmt:
		w.walkWriteTarget(v.X, st)
	case *ast.DeferStmt:
		w.walkDefer(v, st)
	case *ast.GoStmt:
		w.visitExpr(v.Call, st)
	case *ast.ReturnStmt:
		for _, r := range v.Results {
			w.visitExpr(r, st)
		}
		if w.onReturn != nil {
			w.onReturn(v, st.leaked())
		}
	case *ast.IfStmt:
		w.walkStmt(v.Init, st)
		w.visitExpr(v.Cond, st)
		w.walkBlock(v.Body, st.clone())
		if v.Else != nil {
			w.walkStmt(v.Else, st.clone())
		}
	case *ast.ForStmt:
		w.walkStmt(v.Init, st)
		if v.Cond != nil {
			w.visitExpr(v.Cond, st)
		}
		body := st.clone()
		w.walkBlock(v.Body, body)
		w.walkStmt(v.Post, body)
	case *ast.RangeStmt:
		w.visitExpr(v.X, st)
		body := st.clone()
		if v.Key != nil {
			w.walkWriteTarget(v.Key, body)
		}
		if v.Value != nil {
			w.walkWriteTarget(v.Value, body)
		}
		w.walkBlock(v.Body, body)
	case *ast.SwitchStmt:
		w.walkStmt(v.Init, st)
		if v.Tag != nil {
			w.visitExpr(v.Tag, st)
		}
		for _, c := range v.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					w.visitExpr(e, st)
				}
				w.walkStmts(cc.Body, st.clone())
			}
		}
	case *ast.TypeSwitchStmt:
		w.walkStmt(v.Init, st)
		w.walkStmt(v.Assign, st)
		for _, c := range v.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, st.clone())
			}
		}
	case *ast.SelectStmt:
		for _, c := range v.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				branch := st.clone()
				w.walkStmt(cc.Comm, branch)
				w.walkStmts(cc.Body, branch)
			}
		}
	case *ast.BlockStmt:
		w.walkBlock(v, st)
	case *ast.LabeledStmt:
		w.walkStmt(v.Stmt, st)
	case *ast.SendStmt:
		w.visitExpr(v.Chan, st)
		w.visitExpr(v.Value, st)
	case *ast.DeclStmt:
		if gd, ok := v.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, val := range vs.Values {
						w.visitExpr(val, st)
					}
				}
			}
		}
	}
}

func (w *guardWalker) walkBlock(b *ast.BlockStmt, st *guardState) {
	w.walkStmts(b.List, st)
}

func (w *guardWalker) walkStmts(list []ast.Stmt, st *guardState) {
	for _, s := range list {
		w.walkStmt(s, st)
	}
}

func (w *guardWalker) applyLockOp(st *guardState, key string, op lockOp) {
	switch op {
	case opLock:
		st.held[key] = holdWrite
	case opRLock:
		st.held[key] = holdRead
	case opUnlock, opRUnlock:
		delete(st.held, key)
		delete(st.deferRelease, key)
	}
}

// walkDefer handles `defer x.Unlock()` (guard becomes return-safe) and
// deferred closures that contain an unlock (same effect, scanned
// shallowly). Other deferred calls just visit their arguments.
func (w *guardWalker) walkDefer(d *ast.DeferStmt, st *guardState) {
	if key, op := w.pass.lockCallOf(d.Call); op == opUnlock || op == opRUnlock {
		if w.onLock != nil {
			w.onLock(d.Call, key, op)
		}
		st.deferRelease[key] = true
		return
	}
	if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if key, op := w.pass.lockCallOf(call); op == opUnlock || op == opRUnlock {
					if w.onLock != nil {
						w.onLock(call, key, op)
					}
					st.deferRelease[key] = true
				}
			}
			return true
		})
		if w.onFuncLit != nil {
			w.onFuncLit(lit)
		}
		return
	}
	w.visitExpr(d.Call, st)
}

// walkWriteTarget classifies one assignment target and reports it.
func (w *guardWalker) walkWriteTarget(l ast.Expr, st *guardState) {
	switch t := l.(type) {
	case *ast.Ident:
		if t.Name == "_" {
			return
		}
		if w.onWrite != nil {
			w.onWrite(t, false, st)
		}
	case *ast.SelectorExpr:
		if w.onWrite != nil {
			w.onWrite(t, false, st)
		}
		w.visitExpr(t.X, st)
	case *ast.IndexExpr:
		// m[k] = v mutates the container reached through t.X.
		if w.onWrite != nil {
			w.onWrite(t.X, true, st)
		}
		w.visitExpr(t.Index, st)
	case *ast.StarExpr:
		if w.onWrite != nil {
			w.onWrite(t.X, true, st)
		}
	case *ast.ParenExpr:
		w.walkWriteTarget(t.X, st)
	default:
		w.visitExpr(l, st)
	}
}

// visitExpr reports reads within one expression, routing function
// literals to onFuncLit without descending and recognizing built-in
// container mutators (delete) as through-writes.
func (w *guardWalker) visitExpr(e ast.Expr, st *guardState) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			if w.onFuncLit != nil {
				w.onFuncLit(v)
			}
			return false
		case *ast.CallExpr:
			if id, ok := v.Fun.(*ast.Ident); ok {
				if b, isB := w.pass.objOf(id).(*types.Builtin); isB && b.Name() == "delete" && len(v.Args) == 2 {
					if w.onWrite != nil {
						w.onWrite(v.Args[0], true, st)
					}
					w.visitExpr(v.Args[1], st)
					return false
				}
			}
		case *ast.SelectorExpr:
			if w.onRead != nil {
				w.onRead(v, st)
			}
			// Keep descending: x in x.f is itself a read.
		case *ast.Ident:
			if w.onRead != nil {
				w.onRead(v, st)
			}
		}
		return true
	})
}

// structFieldOf resolves a selector to (named struct type, field)
// when it selects a struct field through an ident-rooted base; the
// base's canonical key prefix is returned so guard keys for sibling
// mutex fields can be formed.
func (p *Pass) structFieldOf(sel *ast.SelectorExpr) (named *types.Named, field *types.Var, baseKey string, ok bool) {
	selection, found := p.TypesInfo.Selections[sel]
	if !found || selection.Kind() != types.FieldVal {
		return nil, nil, "", false
	}
	f, isVar := selection.Obj().(*types.Var)
	if !isVar || !f.IsField() {
		return nil, nil, "", false
	}
	t := selection.Recv()
	if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	n, isNamed := t.(*types.Named)
	if !isNamed {
		return nil, nil, "", false
	}
	key, keyOK := p.guardKeyOf(sel.X)
	if !keyOK {
		return nil, nil, "", false
	}
	return n, f, key, true
}

// mutexFields lists the direct sync.Mutex / sync.RWMutex fields of a
// named struct type (embedded mutexes included by their type name).
func mutexFields(n *types.Named) []*types.Var {
	s, ok := n.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	var out []*types.Var
	for i := 0; i < s.NumFields(); i++ {
		f := s.Field(i)
		if _, isMutex := mutexKind(f.Type()); isMutex {
			out = append(out, f)
		}
	}
	return out
}

// structHasMutex reports whether a type is (or points to) a named
// struct with a direct or embedded-one-level mutex field — the types
// whose values must never be copied.
func structHasMutex(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		_ = ptr
		return false // a pointer copy shares the mutex; fine
	}
	s, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < s.NumFields(); i++ {
		f := s.Field(i)
		if _, isMutex := mutexKind(f.Type()); isMutex {
			return true
		}
		// One level of embedded/nested struct: a struct holding a
		// struct holding a mutex is equally uncopyable.
		if inner, ok := f.Type().Underlying().(*types.Struct); ok {
			for k := 0; k < inner.NumFields(); k++ {
				if _, isMutex := mutexKind(inner.Field(k).Type()); isMutex {
					return true
				}
			}
		}
	}
	return false
}

// funcBodies yields every function declaration and its body in the
// package, in file order. Function literals are not included — each
// consumer decides how to treat closures.
func funcBodies(files []*ast.File, visit func(fd *ast.FuncDecl)) {
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				visit(fd)
			}
		}
	}
}
