package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// ErrWrap requires fmt.Errorf to wrap error arguments with %w. A %v or
// %s flattens the error into text: errors.Is/As stop matching, runctl's
// AsStop stops classifying degradations, and HTTP handlers lose the
// ability to map sentinel errors to status codes. Wrapping costs nothing
// and preserves the chain.
var ErrWrap = &Analyzer{
	Name: "errwrap",
	Doc:  "fmt.Errorf with an error argument must use %w so the error chain survives",
	Run:  runErrWrap,
}

func runErrWrap(pass *Pass) error {
	errorType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) < 2 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Errorf" {
				return true
			}
			fn, ok := pass.objOf(sel.Sel).(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
				return true
			}
			format, ok := constantString(pass, call.Args[0])
			if !ok || strings.Contains(format, "%w") {
				return true
			}
			for _, arg := range call.Args[1:] {
				tv, ok := pass.TypesInfo.Types[arg]
				if !ok || tv.Type == nil {
					continue
				}
				if types.Implements(tv.Type, errorType) {
					pass.Reportf(arg.Pos(),
						"error argument formatted without %%w; use %%w so errors.Is/As keep working through the wrap")
				}
			}
			return true
		})
	}
	return nil
}

func constantString(pass *Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
