package analysis

import (
	"go/ast"
	"go/types"
)

// FsyncClose forbids discarding the error of (*os.File).Sync, and of
// (*os.File).Close on files opened for writing, in the durability
// packages (internal/journal and internal/store). The write-ahead
// journal's whole contract is "acknowledged means on disk", and the
// segment store's is "manifest-named means fully on disk": a Sync
// whose error vanishes turns an fsync failure into silent data loss,
// and on many filesystems Close is where a delayed write-back error
// finally surfaces. Read-only handles are exempt — closing them cannot
// lose data.
var FsyncClose = &Analyzer{
	Name: "fsyncclose",
	Doc: "Sync/Close errors on writable files in internal/journal and " +
		"internal/store must be handled, not discarded — a dropped fsync " +
		"error is silent data loss",
	Run: runFsyncClose,
}

// writableOpeners are the os functions that yield a file handle the
// process may have dirtied; Close errors on these matter.
var writableOpeners = map[string]bool{
	"Create":     true,
	"CreateTemp": true,
	"OpenFile":   true,
}

func runFsyncClose(pass *Pass) error {
	if !pass.inFsyncScope() {
		return nil
	}
	for _, file := range pass.Files {
		writable := collectWritableFiles(pass, file)
		check := func(call *ast.CallExpr, how string) {
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return
			}
			fn, ok := pass.objOf(sel.Sel).(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "os" {
				return
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() == nil || !isNamedType(sig.Recv().Type(), true, "os", "File") {
				return
			}
			switch fn.Name() {
			case "Sync":
				// Syncing a read-only handle is pointless, so any Sync
				// call is on a write path — no provenance check needed.
				pass.Reportf(call.Pos(),
					"%s (*os.File).Sync error; a failed fsync means the data never became durable", how)
			case "Close":
				id := rootIdent(sel.X)
				if id == nil || !writable[pass.objOf(id)] {
					return // read-only or unknown provenance: closing loses nothing
				}
				pass.Reportf(call.Pos(),
					"%s Close error on a writable file; Close is where delayed write-back failures surface", how)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok {
					check(call, "discarded")
				}
			case *ast.DeferStmt:
				check(st.Call, "defer discards the")
			case *ast.GoStmt:
				check(st.Call, "go statement discards the")
			case *ast.AssignStmt:
				for i, rhs := range st.Rhs {
					if i >= len(st.Lhs) {
						break
					}
					lhs, ok := st.Lhs[i].(*ast.Ident)
					if !ok || lhs.Name != "_" {
						continue
					}
					if call, ok := rhs.(*ast.CallExpr); ok {
						check(call, "blank-assigned")
					}
				}
			}
			return true
		})
	}
	return nil
}

// collectWritableFiles maps the objects of variables assigned directly
// from a writable os opener (os.Create, os.CreateTemp, os.OpenFile) —
// the handles whose Close error carries a durability signal.
func collectWritableFiles(pass *Pass, file *ast.File) map[types.Object]bool {
	writable := map[types.Object]bool{}
	mark := func(lhs ast.Expr, rhs ast.Expr) {
		call, ok := rhs.(*ast.CallExpr)
		if !ok {
			return
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		fn, ok := pass.objOf(sel.Sel).(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "os" || !writableOpeners[fn.Name()] {
			return
		}
		if id, ok := lhs.(*ast.Ident); ok {
			if obj := pass.objOf(id); obj != nil {
				writable[obj] = true
			}
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			// f, err := os.Create(...) — one multi-valued rhs.
			if len(st.Rhs) == 1 && len(st.Lhs) >= 1 {
				mark(st.Lhs[0], st.Rhs[0])
			}
		case *ast.ValueSpec:
			if len(st.Values) == 1 && len(st.Names) >= 1 {
				mark(st.Names[0], st.Values[0])
			}
		}
		return true
	})
	return writable
}
