package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// loadTestdata parses and type-checks testdata/src packages in the
// given order (dependencies first). Stdlib imports resolve through the
// same `go list -export` machinery the production loader uses; imports
// of earlier-listed testdata packages resolve locally.
func loadTestdata(t *testing.T, names ...string) map[string]*Package {
	t.Helper()
	fset := token.NewFileSet()

	type parsedPkg struct {
		name  string
		dir   string
		files []*ast.File
		paths []string
	}
	var parsed []*parsedPkg
	local := map[string]bool{}
	for _, name := range names {
		local[name] = true
	}
	stdlib := map[string]bool{}
	for _, name := range names {
		dir := filepath.Join("testdata", "src", name)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("read %s: %v", dir, err)
		}
		pp := &parsedPkg{name: name, dir: dir}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			path := filepath.Join(dir, e.Name())
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				t.Fatalf("parse %s: %v", path, err)
			}
			pp.files = append(pp.files, f)
			pp.paths = append(pp.paths, e.Name())
			for _, imp := range f.Imports {
				p, _ := strconv.Unquote(imp.Path.Value)
				if !local[p] {
					stdlib[p] = true
				}
			}
		}
		parsed = append(parsed, pp)
	}

	exports := map[string]string{}
	if len(stdlib) > 0 {
		var paths []string
		for p := range stdlib {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		listed, err := goList(".", paths)
		if err != nil {
			t.Fatalf("go list stdlib deps: %v", err)
		}
		for _, lp := range listed {
			if lp.Export != "" {
				exports[lp.ImportPath] = lp.Export
			}
		}
	}

	imp := newExportImporter(fset, exports)
	out := map[string]*Package{}
	for _, pp := range parsed {
		// Nested corpus dirs ("keytaint/core") keep the full path as
		// their import path — scope matching sees path.Base — while the
		// package name must be a bare identifier.
		pkg, err := checkPackage(fset, imp, pp.name, path.Base(pp.name), pp.dir, pp.paths)
		if err != nil {
			t.Fatalf("typecheck testdata package %s: %v", pp.name, err)
		}
		imp.local[pp.name] = pkg.Types
		out[pp.name] = pkg
	}
	return out
}

var wantStringRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// runGolden applies one analyzer to one corpus package and checks the
// diagnostics against the `// want "substring"` comments: every
// diagnostic must be wanted on its line, every want must be hit.
func runGolden(t *testing.T, a *Analyzer, pkg *Package) {
	t.Helper()
	diags, err := Run([]*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}

	wants := map[string][]string{} // "file:line" -> expected substrings
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, m := range wantStringRe.FindAllStringSubmatch(text, -1) {
					s, err := strconv.Unquote(`"` + m[1] + `"`)
					if err != nil {
						t.Fatalf("%s: bad want string %q: %v", key, m[1], err)
					}
					wants[key] = append(wants[key], s)
				}
			}
		}
	}

	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.File, d.Line)
		matched := false
		rest := wants[key][:0:0]
		for _, w := range wants[key] {
			if !matched && strings.Contains(d.Message, w) {
				matched = true
				continue
			}
			rest = append(rest, w)
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		if len(rest) == 0 {
			delete(wants, key)
		} else {
			wants[key] = rest
		}
	}
	for key, subs := range wants {
		for _, w := range subs {
			t.Errorf("%s: expected diagnostic containing %q, got none", key, w)
		}
	}
}

func TestMapOrderGolden(t *testing.T) {
	pkgs := loadTestdata(t, "dfscode")
	runGolden(t, MapOrder, pkgs["dfscode"])
}

func TestWallClockGolden(t *testing.T) {
	pkgs := loadTestdata(t, "fvmine")
	runGolden(t, WallClock, pkgs["fvmine"])
}

// TestWallClockFileScope checks the file-granular scope: in a package
// named core only confighash.go is a deterministic path.
func TestWallClockFileScope(t *testing.T) {
	pkgs := loadTestdata(t, "core")
	runGolden(t, WallClock, pkgs["core"])
}

// TestDeterministicScopeExcludesOtherPackages runs the deterministic-
// path analyzers over a corpus that is out of scope: the identical
// patterns must produce no diagnostics.
func TestDeterministicScopeExcludesOtherPackages(t *testing.T) {
	pkgs := loadTestdata(t, "outside")
	runGolden(t, MapOrder, pkgs["outside"])
	runGolden(t, WallClock, pkgs["outside"])
}

func TestCtxFirstGolden(t *testing.T) {
	pkgs := loadTestdata(t, "ctxfirst")
	runGolden(t, CtxFirst, pkgs["ctxfirst"])
}

func TestSafeGoGolden(t *testing.T) {
	pkgs := loadTestdata(t, "runctl", "jobs")
	runGolden(t, SafeGo, pkgs["jobs"])
	// The spawn helper's own package is outside the spawn scope: its
	// internal `go` statement is the mechanism, not a violation.
	runGolden(t, SafeGo, pkgs["runctl"])
}

func TestCheckpointGolden(t *testing.T) {
	pkgs := loadTestdata(t, "runctl", "checkpoint")
	runGolden(t, CheckpointAnalyzer, pkgs["checkpoint"])
}

func TestFsyncCloseGolden(t *testing.T) {
	pkgs := loadTestdata(t, "journal", "store")
	runGolden(t, FsyncClose, pkgs["journal"])
	runGolden(t, FsyncClose, pkgs["store"])
}

// TestFsyncCloseScopeExcludesOtherPackages: the identical discard
// patterns outside the durability scope produce no diagnostics.
func TestFsyncCloseScopeExcludesOtherPackages(t *testing.T) {
	pkgs := loadTestdata(t, "outside")
	runGolden(t, FsyncClose, pkgs["outside"])
}

func TestErrWrapGolden(t *testing.T) {
	pkgs := loadTestdata(t, "errwrap")
	runGolden(t, ErrWrap, pkgs["errwrap"])
}

func TestBoundedPoolGolden(t *testing.T) {
	pkgs := loadTestdata(t, "boundedpool")
	runGolden(t, BoundedPool, pkgs["boundedpool"])
}

// TestFsyncCloseShardScope: the shard package's vector-cache files are
// in the durability scope.
func TestFsyncCloseShardScope(t *testing.T) {
	pkgs := loadTestdata(t, "shard")
	runGolden(t, FsyncClose, pkgs["shard"])
}

func TestLockGuardGolden(t *testing.T) {
	pkgs := loadTestdata(t, "lockguard")
	runGolden(t, LockGuard, pkgs["lockguard"])
}

func TestAtomicMixGolden(t *testing.T) {
	pkgs := loadTestdata(t, "atomicmix")
	runGolden(t, AtomicMix, pkgs["atomicmix"])
}

func TestSharedCaptureGolden(t *testing.T) {
	pkgs := loadTestdata(t, "runctl", "sharedcapture")
	runGolden(t, SharedCapture, pkgs["sharedcapture"])
}

func TestKeyTaintGolden(t *testing.T) {
	pkgs := loadTestdata(t, "keytaint/journal", "keytaint/core", "keytaint/jobs")
	runGolden(t, KeyTaint, pkgs["keytaint/core"])
	runGolden(t, KeyTaint, pkgs["keytaint/jobs"])
}

// TestKeyTaintScopeExcludesOtherPackages: identical taint flows outside
// the determinism scope produce no diagnostics.
func TestKeyTaintScopeExcludesOtherPackages(t *testing.T) {
	pkgs := loadTestdata(t, "outside")
	runGolden(t, KeyTaint, pkgs["outside"])
}

func TestObsNamesGolden(t *testing.T) {
	pkgs := loadTestdata(t, "obs", "obsnames")
	runGolden(t, ObsNames, pkgs["obs"])
	runGolden(t, ObsNames, pkgs["obsnames"])
}

func TestByName(t *testing.T) {
	got, err := ByName("maporder, errwrap")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != MapOrder || got[1] != ErrWrap {
		t.Fatalf("ByName returned wrong analyzers: %v", got)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName accepted an unknown analyzer")
	}
	all, err := ByName("")
	if err != nil || len(all) != len(All()) {
		t.Fatalf("empty filter should return the full suite")
	}
}
