package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// KeyTaint generalizes maporder from a syntactic check into a small
// taint analysis: values derived from map iteration order or from the
// wall clock are tracked through assignments, appends, and package-
// local call chains, and reported when they reach a determinism-
// critical sink without passing a recognized barrier.
//
// Taint kinds: order (range over a map — key, value, and anything built
// from them) and clock (time.Now / time.Since / time.Until).
//
// Barriers clear order taint: calls into the sort or slices packages,
// and calls to functions whose name contains "Sort" or "Canonical" —
// the project's convention for canonicalization helpers.
//
// Sinks:
//   - arguments (and receivers) of calls whose name contains "Key" or
//     "Fingerprint" — cache keys, dedup keys, database fingerprints
//     (order and clock taint both break them);
//   - journal record construction — journal.Event composite literals
//     and Append calls on journal types (order taint only: replay must
//     fold identically, but AtMs timestamps are wall-clock by design);
//   - values stored or appended into a Subgraphs field, the answer set
//     that must be byte-identical across runs (order taint);
//   - return values of functions whose own name contains Key or
//     Fingerprint.
//
// The analysis is interprocedural within one package: functions whose
// returns are tainted from sources in their own body (a helper
// returning time.Now().UnixNano(), say) taint their call sites.
var KeyTaint = &Analyzer{
	Name: "keytaint",
	Doc: "Map-iteration-order- and wall-clock-derived values must not " +
		"reach cache keys, fingerprints, journal records, or emitted " +
		"Subgraphs without a sort/canonicalization barrier.",
	Run: runKeyTaint,
}

type taintKind uint8

const (
	taintOrder taintKind = 1 << iota
	taintClock
)

func (t taintKind) describe() string {
	switch {
	case t&taintOrder != 0 && t&taintClock != 0:
		return "map-iteration-order- and wall-clock-derived"
	case t&taintOrder != 0:
		return "map-iteration-order-derived"
	default:
		return "wall-clock-derived"
	}
}

func runKeyTaint(pass *Pass) error {
	if !pass.inKeyTaintScope() {
		return nil
	}
	// Fixpoint over package-local function summaries: which functions
	// return tainted values from sources in their own bodies.
	sums := map[types.Object]taintKind{}
	for round := 0; round < 3; round++ {
		changed := false
		funcBodies(pass.Files, func(fd *ast.FuncDecl) {
			tw := newTaintWalk(pass, sums, nil)
			tw.run(fd)
			if obj := pass.objOf(fd.Name); obj != nil && tw.returnTaint&^sums[obj] != 0 {
				sums[obj] |= tw.returnTaint
				changed = true
			}
		})
		if !changed {
			break
		}
	}
	funcBodies(pass.Files, func(fd *ast.FuncDecl) {
		newTaintWalk(pass, sums, pass).run(fd)
	})
	return nil
}

// taintWalk carries one in-order traversal of a function body. When
// report is nil the walk only computes taint (summary rounds).
type taintWalk struct {
	pass        *Pass
	sums        map[types.Object]taintKind
	report      *Pass // nil: collect only
	tainted     map[types.Object]taintKind
	returnTaint taintKind
	fnName      string
	// pendingAnswer records order-tainted stores into Subgraphs fields;
	// a later sort barrier on the field retracts the report, anything
	// still pending at function end is emitted.
	pendingAnswer map[types.Object]token.Pos
}

func newTaintWalk(pass *Pass, sums map[types.Object]taintKind, report *Pass) *taintWalk {
	return &taintWalk{pass: pass, sums: sums, report: report, tainted: map[types.Object]taintKind{}}
}

func (tw *taintWalk) run(fd *ast.FuncDecl) {
	tw.fnName = fd.Name.Name
	// Two silent passes let taint flow around loop back-edges; the
	// reporting pass runs on the stabilized state.
	reporting := tw.report
	tw.report = nil
	tw.pass1(fd.Body)
	tw.pass1(fd.Body)
	tw.report = reporting
	tw.returnTaint = 0
	tw.pendingAnswer = map[types.Object]token.Pos{}
	tw.pass1(fd.Body)
	if tw.report != nil {
		for _, pos := range tw.pendingAnswer {
			tw.report.Reportf(pos, "map-iteration-order-derived values accumulate in Subgraphs with no sort/canonicalization barrier before the function ends; the emitted answer set must be deterministic")
		}
	}
}

func (tw *taintWalk) pass1(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.RangeStmt:
			tw.rangeTaint(v)
		case *ast.AssignStmt:
			tw.assign(v)
		case *ast.ExprStmt:
			if call, ok := v.X.(*ast.CallExpr); ok {
				tw.applyBarrier(call)
			}
		case *ast.CallExpr:
			tw.checkCallSink(v)
		case *ast.CompositeLit:
			tw.checkJournalLit(v)
		case *ast.ReturnStmt:
			for _, r := range v.Results {
				t := tw.exprTaint(r)
				tw.returnTaint |= t
				if t != 0 && tw.report != nil && (strings.Contains(tw.fnName, "Key") || strings.Contains(tw.fnName, "Fingerprint")) {
					tw.report.Reportf(r.Pos(), "%s value returned from %s, which produces a determinism-critical key", t.describe(), tw.fnName)
				}
			}
		}
		return true
	})
}

// rangeTaint marks loop variables of a map range as order-tainted, and
// propagates the taint of the ranged value otherwise.
func (tw *taintWalk) rangeTaint(rng *ast.RangeStmt) {
	var t taintKind
	if tv, ok := tw.pass.TypesInfo.Types[rng.X]; ok && tv.Type != nil {
		if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
			t = taintOrder
		}
	}
	t |= tw.exprTaint(rng.X)
	if t == 0 {
		return
	}
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := tw.pass.objOf(id); obj != nil {
				tw.tainted[obj] |= t
			}
		}
	}
}

func (tw *taintWalk) assign(st *ast.AssignStmt) {
	var rhs taintKind
	for _, r := range st.Rhs {
		rhs |= tw.exprTaint(r)
	}
	if st.Tok != token.ASSIGN && st.Tok != token.DEFINE {
		// Compound assignment: the target keeps its own taint too.
		for _, l := range st.Lhs {
			rhs |= tw.exprTaint(l)
		}
	}
	for _, l := range st.Lhs {
		tw.assignTo(l, rhs)
	}
}

func (tw *taintWalk) assignTo(l ast.Expr, t taintKind) {
	switch v := l.(type) {
	case *ast.Ident:
		if v.Name == "_" {
			return
		}
		if obj := tw.pass.objOf(v); obj != nil {
			if t == 0 {
				delete(tw.tainted, obj)
			} else {
				tw.tainted[obj] |= t
			}
		}
	case *ast.SelectorExpr:
		tw.checkSubgraphsSink(v, t)
		if sel, ok := tw.pass.TypesInfo.Selections[v]; ok && sel.Kind() == types.FieldVal && t != 0 {
			tw.tainted[sel.Obj()] |= t
			// The enclosing struct now carries the taint too: passing
			// it whole to a sink passes the tainted field along.
			if root := rootIdent(v.X); root != nil {
				if obj := tw.pass.objOf(root); obj != nil {
					tw.tainted[obj] |= t
				}
			}
		}
	case *ast.IndexExpr:
		if tv, ok := tw.pass.TypesInfo.Types[v.X]; ok && tv.Type != nil {
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				// Storing under a tainted key into a map erases order
				// sensitivity: the map is unordered regardless.
				return
			}
		}
		if t != 0 {
			if root := rootIdent(v.X); root != nil {
				if obj := tw.pass.objOf(root); obj != nil {
					tw.tainted[obj] |= t
				}
			}
		}
	case *ast.ParenExpr:
		tw.assignTo(v.X, t)
	}
}

// exprTaint computes the taint of an expression from the idents it
// mentions and the calls it makes.
func (tw *taintWalk) exprTaint(e ast.Expr) taintKind {
	if e == nil {
		return 0
	}
	var t taintKind
	ast.Inspect(e, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.Ident:
			if obj := tw.pass.objOf(v); obj != nil {
				t |= tw.tainted[obj]
			}
		case *ast.CallExpr:
			t |= tw.callTaint(v)
			return false
		}
		return true
	})
	return t
}

// callTaint is the taint of a call expression's result.
func (tw *taintWalk) callTaint(call *ast.CallExpr) taintKind {
	var t taintKind
	// Argument (and receiver) taint flows through by default.
	for _, a := range call.Args {
		t |= tw.exprTaint(a)
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		t |= tw.exprTaint(sel.X)
	}
	name, obj := tw.calleeOf(call)
	if tw.isClockCall(call) {
		t |= taintClock
	}
	if obj != nil {
		t |= tw.sums[obj]
	}
	if isSortBarrierName(name) || tw.isSortPkgCall(call) {
		t &^= taintOrder
	}
	return t
}

func (tw *taintWalk) calleeOf(call *ast.CallExpr) (string, types.Object) {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name, tw.pass.objOf(f)
	case *ast.SelectorExpr:
		return f.Sel.Name, tw.pass.objOf(f.Sel)
	}
	return "", nil
}

func (tw *taintWalk) isClockCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Now", "Since", "Until":
	default:
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := tw.pass.objOf(id).(*types.PkgName)
	return ok && pn.Imported().Path() == "time"
}

// isSortPkgCall reports calls into the sort or slices packages.
func (tw *taintWalk) isSortPkgCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := tw.pass.objOf(id).(*types.PkgName)
	if !ok {
		return false
	}
	p := pn.Imported().Path()
	return p == "sort" || p == "slices"
}

func isSortBarrierName(name string) bool {
	return strings.Contains(name, "Sort") || strings.Contains(strings.ToLower(name), "canonical")
}

// applyBarrier clears order taint from the arguments of an in-place
// sorting statement: sort.Slice(keys, ...) leaves keys deterministic.
func (tw *taintWalk) applyBarrier(call *ast.CallExpr) {
	name, _ := tw.calleeOf(call)
	if !isSortBarrierName(name) && !tw.isSortPkgCall(call) {
		return
	}
	for _, a := range call.Args {
		if root := rootIdent(a); root != nil {
			if obj := tw.pass.objOf(root); obj != nil {
				tw.tainted[obj] &^= taintOrder
			}
		}
		// sort.Strings(r.Subgraphs): the field itself is now ordered.
		e := a
		if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
			e = u.X
		}
		if sel, ok := e.(*ast.SelectorExpr); ok {
			if s, ok := tw.pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.FieldVal {
				tw.tainted[s.Obj()] &^= taintOrder
				if tw.pendingAnswer != nil {
					delete(tw.pendingAnswer, s.Obj())
				}
			}
		}
	}
}

// checkCallSink reports tainted values flowing into key/fingerprint
// constructors and journal appends.
func (tw *taintWalk) checkCallSink(call *ast.CallExpr) {
	if tw.report == nil {
		return
	}
	name, _ := tw.calleeOf(call)
	if name == "" {
		return
	}
	keySink := (strings.Contains(name, "Key") || strings.Contains(name, "Fingerprint")) && !isSortBarrierName(name)
	journalSink := name == "Append" && tw.isJournalReceiver(call)
	if !keySink && !journalSink {
		return
	}
	mask := taintOrder | taintClock
	what := "key/fingerprint constructor " + name
	if journalSink {
		mask = taintOrder // timestamps in journal records are by design
		what = "journal append"
	}
	for _, a := range call.Args {
		if journalSink {
			if _, isLit := a.(*ast.CompositeLit); isLit {
				continue // checkJournalLit reports per field
			}
		}
		if t := tw.exprTaint(a) & mask; t != 0 {
			tw.report.Reportf(a.Pos(), "%s value reaches %s without a sort/canonicalization barrier", t.describe(), what)
		}
	}
	if keySink {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if t := tw.exprTaint(sel.X) & mask; t != 0 {
				tw.report.Reportf(sel.X.Pos(), "%s receiver reaches %s without a sort/canonicalization barrier", t.describe(), what)
			}
		}
	}
}

func (tw *taintWalk) isJournalReceiver(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	tv, ok := tw.pass.TypesInfo.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	return isNamed && named.Obj().Pkg() != nil && named.Obj().Pkg().Name() == "journal"
}

// checkJournalLit reports order-tainted fields in journal.Event-style
// composite literals.
func (tw *taintWalk) checkJournalLit(lit *ast.CompositeLit) {
	if tw.report == nil {
		return
	}
	tv, ok := tw.pass.TypesInfo.Types[lit]
	if !ok || tv.Type == nil {
		return
	}
	named, isNamed := tv.Type.(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil || named.Obj().Pkg().Name() != "journal" {
		return
	}
	for _, el := range lit.Elts {
		val := el
		if kv, isKV := el.(*ast.KeyValueExpr); isKV {
			val = kv.Value
		}
		if t := tw.exprTaint(val) & taintOrder; t != 0 {
			tw.report.Reportf(val.Pos(), "%s value stored in a journal record; replay order would not be reproducible", t.describe())
		}
	}
}

// checkSubgraphsSink records order-tainted values assigned or appended
// into a Subgraphs field — the emitted answer set. The report is
// deferred to function end so the assemble-then-sort idiom stays clean.
func (tw *taintWalk) checkSubgraphsSink(sel *ast.SelectorExpr, t taintKind) {
	if tw.report == nil || sel.Sel.Name != "Subgraphs" || t&taintOrder == 0 {
		return
	}
	s, ok := tw.pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return
	}
	if _, seen := tw.pendingAnswer[s.Obj()]; !seen {
		tw.pendingAnswer[s.Obj()] = sel.Sel.Pos()
	}
}
