package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
)

// Package is one type-checked package under analysis.
type Package struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string

	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load resolves patterns (e.g. "./...") in the module rooted at dir and
// returns the matched packages parsed and type-checked. It shells out to
// `go list -export -deps -json`, which yields both the file lists of the
// target packages and compiled export data for every dependency, so the
// type checker never needs golang.org/x/tools/go/packages.
//
// Only non-test files are analyzed: the invariants graphsiglint enforces
// are about production determinism and runtime safety; tests routinely
// (and legitimately) use wall clocks, naked goroutines, and fixtures.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	exports := map[string]string{}
	var targets []*listedPackage
	for _, lp := range listed {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly {
			targets = append(targets, lp)
		}
	}
	// `go list` reports an empty match with a warning and exit 0; an
	// analyzer run over zero packages would pass vacuously, so surface
	// it as an error instead.
	if len(targets) == 0 {
		return nil, fmt.Errorf("patterns %v matched no packages", patterns)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)
	var pkgs []*Package
	for _, lp := range targets {
		if lp.Name == "" && lp.Error != nil {
			return nil, fmt.Errorf("load %s: %s", lp.ImportPath, lp.Error.Err)
		}
		pkg, err := checkPackage(fset, imp, lp.ImportPath, lp.Name, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %w\n%s", patterns, err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	var out []*listedPackage
	for {
		lp := &listedPackage{}
		if err := dec.Decode(lp); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("decode go list output: %w", err)
		}
		out = append(out, lp)
	}
	return out, nil
}

// checkPackage parses and type-checks one package from source.
func checkPackage(fset *token.FileSet, imp types.Importer, importPath, name, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	var fileNames []string
	for _, f := range goFiles {
		path := f
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, f)
		}
		parsed, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", path, err)
		}
		files = append(files, parsed)
		fileNames = append(fileNames, path)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(importPath, fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("typecheck %s: %w", importPath, typeErrs[0])
	}
	return &Package{
		ImportPath: importPath,
		Name:       name,
		Dir:        dir,
		GoFiles:    fileNames,
		Fset:       fset,
		Syntax:     files,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}

// exportImporter resolves imports from the export-data files recorded by
// `go list -export`, with an optional overlay of already-checked local
// packages (used by the testdata loader).
type exportImporter struct {
	gc    types.Importer
	local map[string]*types.Package
}

func newExportImporter(fset *token.FileSet, exports map[string]string) *exportImporter {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return &exportImporter{
		gc:    importer.ForCompiler(fset, "gc", lookup),
		local: map[string]*types.Package{},
	}
}

func (ei *exportImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := ei.local[path]; ok {
		return p, nil
	}
	return ei.gc.Import(path)
}

// ModuleRoot walks up from dir (or the working directory when dir is
// empty) to the enclosing go.mod. The driver and the meta-test use it so
// `go list ./...` always resolves the whole module regardless of where
// the process started.
func ModuleRoot(dir string) (string, error) {
	if dir == "" {
		wd, err := os.Getwd()
		if err != nil {
			return "", err
		}
		dir = wd
	}
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
