package analysis

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module for loader error-path tests.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const loadTestGoMod = "module loadtest\n\ngo 1.22\n"

func TestLoadTypeErrorPackage(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":  loadTestGoMod,
		"main.go": "package main\n\nfunc main() { var x int = \"not an int\"; _ = x }\n",
	})
	pkgs, err := Load(dir, "./...")
	if err == nil {
		t.Fatalf("expected an error for a package with type errors, got %d packages", len(pkgs))
	}
}

func TestLoadEmptyPatternMatch(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": loadTestGoMod,
		// A module with no Go files at all: every pattern matches nothing.
		"README.md": "nothing to build here\n",
	})
	if pkgs, err := Load(dir, "./..."); err == nil {
		t.Fatalf("expected an error for a pattern matching no packages, got %d packages", len(pkgs))
	}
	if pkgs, err := Load(dir, "./no/such/dir"); err == nil {
		t.Fatalf("expected an error for a nonexistent directory pattern, got %d packages", len(pkgs))
	}
}

func TestLoadValidModule(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":  loadTestGoMod,
		"lib.go":  "package lib\n\nimport \"fmt\"\n\n// Hello greets.\nfunc Hello() string { return fmt.Sprintf(\"hi\") }\n",
	})
	pkgs, err := Load(dir, "./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 || pkgs[0].Types == nil || pkgs[0].TypesInfo == nil {
		t.Fatalf("expected one fully type-checked package, got %+v", pkgs)
	}
	if pkgs[0].ImportPath != "loadtest" {
		t.Fatalf("import path = %q, want loadtest", pkgs[0].ImportPath)
	}
}

// TestImporterMissingExportData exercises the "no export data" path:
// the gc importer must fail loudly when `go list -export` supplied no
// compiled archive for an import, instead of silently treating the
// package as empty.
func TestImporterMissingExportData(t *testing.T) {
	imp := newExportImporter(token.NewFileSet(), map[string]string{})
	if _, err := imp.Import("fmt"); err == nil {
		t.Fatal("expected an error importing with no export data")
	} else if !strings.Contains(err.Error(), "no export data") {
		t.Fatalf("error should name the missing export data, got: %v", err)
	}
}

func TestModuleRootWalksUp(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":              loadTestGoMod,
		"deep/nested/file.go": "package nested\n",
	})
	root, err := ModuleRoot(filepath.Join(dir, "deep", "nested"))
	if err != nil {
		t.Fatalf("ModuleRoot: %v", err)
	}
	// MacOS tempdirs resolve through symlinks; compare the go.mod
	// presence rather than the literal path.
	if _, statErr := os.Stat(filepath.Join(root, "go.mod")); statErr != nil {
		t.Fatalf("ModuleRoot returned %s with no go.mod: %v", root, statErr)
	}
}
