package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockGuard enforces the project's mutex discipline on the dataflow
// tier (dataflow.go): once any function in a package writes a struct
// field while holding a sibling mutex field of the same struct, that
// field is declared guarded, and every other access must hold the
// mutex too (writes need the write lock; reads accept RLock). The
// analyzer also reports return paths that abandon a held lock and
// mutex-bearing structs copied by value.
//
// Escape hatches mirror the codebase's conventions rather than adding
// new ones: functions named *Locked or doc-commented "Caller holds"
// assume the caller's lock; locals built by a composite literal or a
// New*/new* constructor are unpublished and need no lock yet.
var LockGuard = &Analyzer{
	Name: "lockguard",
	Doc: "Fields written under a struct's mutex must always be accessed " +
		"under it; locks must be released on every return path; " +
		"mutex-bearing structs must not be copied by value.",
	Run: runLockGuard,
}

func runLockGuard(pass *Pass) error {
	reportValueCopies(pass)

	guarded := inferGuardedFields(pass)
	if len(guarded) > 0 {
		checkGuardedAccesses(pass, guarded)
	}
	checkLockRelease(pass)
	return nil
}

// --- check 1: mutex-bearing structs copied by value -------------------

func reportValueCopies(pass *Pass) {
	flagType := func(pos token.Pos, t types.Type, what string) {
		if _, isMutex := mutexKind(t); isMutex {
			pass.Reportf(pos, "%s copies a mutex by value; pass *%s instead", what, t.String())
			return
		}
		if structHasMutex(t) {
			pass.Reportf(pos, "%s copies %s, which contains a mutex; the copy's lock guards nothing", what, t.String())
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.FuncDecl:
				if v.Recv != nil && len(v.Recv.List) == 1 {
					rt := pass.TypesInfo.Types[v.Recv.List[0].Type].Type
					if rt != nil {
						if _, isPtr := rt.Underlying().(*types.Pointer); !isPtr {
							flagType(v.Recv.List[0].Type.Pos(), rt, "value receiver of "+v.Name.Name)
						}
					}
				}
				if v.Type.Params != nil {
					for _, p := range v.Type.Params.List {
						pt := pass.TypesInfo.Types[p.Type].Type
						if pt != nil {
							flagType(p.Type.Pos(), pt, "parameter of "+v.Name.Name)
						}
					}
				}
			case *ast.AssignStmt:
				for _, r := range v.Rhs {
					if star, ok := r.(*ast.StarExpr); ok {
						if tv, ok := pass.TypesInfo.Types[star]; ok && tv.Type != nil {
							flagType(star.Pos(), tv.Type, "dereference")
						}
					}
				}
			}
			return true
		})
	}
}

// --- check 2: guarded-field consistency -------------------------------

// guardedFields maps a struct field object to the name of the sibling
// mutex field observed guarding its writes.
type guardedFields map[*types.Var]string

// inferGuardedFields runs the guard walker over every function body
// (closures included, each from an empty lock state) and records every
// field written while a same-struct mutex field is held.
func inferGuardedFields(pass *Pass) guardedFields {
	guarded := guardedFields{}
	var walkFrom func(body *ast.BlockStmt)
	walkFrom = func(body *ast.BlockStmt) {
		w := &guardWalker{
			pass: pass,
			onWrite: func(e ast.Expr, through bool, st *guardState) {
				sel, ok := e.(*ast.SelectorExpr)
				if !ok {
					return
				}
				named, field, baseKey, ok := pass.structFieldOf(sel)
				if !ok || field.Pkg() != pass.Pkg {
					return
				}
				for _, mf := range mutexFields(named) {
					if field == mf {
						continue
					}
					if st.holds(baseKey+"."+mf.Name(), true) {
						guarded[field] = mf.Name()
					}
				}
			},
			onFuncLit: func(lit *ast.FuncLit) { walkFrom(lit.Body) },
		}
		w.walkBody(body)
	}
	funcBodies(pass.Files, func(fd *ast.FuncDecl) { walkFrom(fd.Body) })
	return guarded
}

// checkGuardedAccesses re-walks every function and reports accesses to
// guarded fields made without holding the guarding mutex.
func checkGuardedAccesses(pass *Pass, guarded guardedFields) {
	funcBodies(pass.Files, func(fd *ast.FuncDecl) {
		if assumesLockHeld(fd) {
			return
		}
		ctor := pass.constructorLocals(fd.Body)

		check := func(sel *ast.SelectorExpr, write bool, st *guardState) {
			named, field, baseKey, ok := pass.structFieldOf(sel)
			if !ok {
				return
			}
			muName, isGuarded := guarded[field]
			if !isGuarded {
				return
			}
			if root := rootIdent(sel.X); root != nil {
				if obj := pass.objOf(root); obj != nil && ctor[obj] {
					return
				}
			}
			if st.holds(baseKey+"."+muName, write) {
				return
			}
			verb := "read"
			if write {
				verb = "written"
			}
			pass.Reportf(sel.Sel.Pos(), "field %s.%s is guarded by %s.%s elsewhere but %s here without holding it",
				named.Obj().Name(), field.Name(), named.Obj().Name(), muName, verb)
		}

		var walkFrom func(body *ast.BlockStmt)
		walkFrom = func(body *ast.BlockStmt) {
			w := &guardWalker{
				pass: pass,
				onWrite: func(e ast.Expr, through bool, st *guardState) {
					if sel, ok := e.(*ast.SelectorExpr); ok {
						check(sel, true, st)
					}
				},
				onRead: func(e ast.Expr, st *guardState) {
					if sel, ok := e.(*ast.SelectorExpr); ok {
						check(sel, false, st)
					}
				},
				onFuncLit: func(lit *ast.FuncLit) { walkFrom(lit.Body) },
			}
			w.walkBody(body)
		}
		walkFrom(fd.Body)
	})
}

// --- check 3: Lock without Unlock on a return path --------------------

func checkLockRelease(pass *Pass) {
	funcBodies(pass.Files, func(fd *ast.FuncDecl) {
		if assumesLockHeld(fd) {
			// *Locked helpers may also acquire nothing; the convention
			// says lock lifetime is the caller's business.
			return
		}
		var analyze func(body *ast.BlockStmt)
		analyze = func(body *ast.BlockStmt) {
			type leak struct {
				ret  *ast.ReturnStmt
				keys []string
			}
			var leaks []leak
			lockPos := map[string]token.Pos{} // first Lock site per key
			lockName := map[string]string{}   // key -> rendered guard expr
			releases := map[string]int{}      // Unlock/RUnlock count per key

			w := &guardWalker{
				pass: pass,
				onLock: func(call *ast.CallExpr, key string, op lockOp) {
					switch op {
					case opLock, opRLock:
						if _, seen := lockPos[key]; !seen {
							lockPos[key] = call.Pos()
						}
						if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
							lockName[key] = types.ExprString(sel.X)
						}
					case opUnlock, opRUnlock:
						releases[key]++
					}
				},
				onReturn: func(ret *ast.ReturnStmt, leaked []string) {
					if len(leaked) > 0 {
						leaks = append(leaks, leak{ret, leaked})
					}
				},
				onFuncLit: func(lit *ast.FuncLit) { analyze(lit.Body) },
			}
			w.walkBody(body)

			blatant := map[string]bool{}
			for key, pos := range lockPos {
				if releases[key] == 0 {
					blatant[key] = true
					pass.Reportf(pos, "%s is locked but never unlocked in this function", lockName[key])
				}
			}
			for _, l := range leaks {
				for _, key := range l.keys {
					if blatant[key] {
						continue
					}
					name := lockName[key]
					if name == "" {
						continue // lock acquired outside what we walked
					}
					pass.Reportf(l.ret.Pos(), "return while holding %s with no Unlock or defer on this path", name)
				}
			}
		}
		analyze(fd.Body)
	})
}
