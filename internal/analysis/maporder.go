package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags `range` over a map, inside a deterministic path, whose
// iteration feeds an order-sensitive sink: writes into a hasher or
// string builder, string concatenation, or appends to an outer slice
// that is never sorted afterwards. Go randomizes map iteration order on
// purpose, so any byte stream or slice assembled this way differs
// between runs — fatal for canonical DFS codes, database fingerprints,
// and config cache keys, which coalesce requests and key result caches.
//
// The accepted idiom — collect the keys, sort, then iterate the sorted
// slice — is recognized: an append whose slice is passed to a sort.* or
// slices.* call later in the same function is not reported.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "flags map iteration feeding hashes, string building, or unsorted " +
		"slice assembly in deterministic packages (dfscode, graph, feature, " +
		"fvmine, core/confighash.go)",
	Run: runMapOrder,
}

// writeMethods are the order-sensitive byte-sink methods shared by
// hash.Hash, strings.Builder, and bytes.Buffer.
var writeMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
}

var fmtWriterFuncs = map[string]bool{
	"Fprint":   true,
	"Fprintf":  true,
	"Fprintln": true,
}

func runMapOrder(pass *Pass) error {
	for _, file := range pass.Files {
		if !pass.inDeterministicScope(file) {
			continue
		}
		// Walk function by function so the "sorted afterwards"
		// suppression can scan the rest of the enclosing body.
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body == nil {
				return true
			}
			ast.Inspect(body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				pass.checkMapRange(rs, body)
				return true
			})
			return true
		})
	}
	return nil
}

func (p *Pass) checkMapRange(rs *ast.RangeStmt, enclosing *ast.BlockStmt) {
	tv, ok := p.TypesInfo.Types[rs.X]
	if !ok || tv.Type == nil {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	// `for range m {}` cannot observe iteration order.
	if rs.Key == nil {
		return
	}

	type appendSink struct {
		obj types.Object
		pos token.Pos
	}
	var appends []appendSink

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			if sel, ok := v.Fun.(*ast.SelectorExpr); ok {
				if writeMethods[sel.Sel.Name] && p.declaredOutside(sel.X, rs) {
					p.Reportf(v.Pos(),
						"map iteration feeds %s.%s; map order is nondeterministic — collect and sort the keys first",
						exprText(sel.X), sel.Sel.Name)
					return true
				}
				if obj := p.objOf(sel.Sel); obj != nil && obj.Pkg() != nil &&
					obj.Pkg().Path() == "fmt" && fmtWriterFuncs[sel.Sel.Name] &&
					len(v.Args) > 0 && p.declaredOutside(v.Args[0], rs) {
					p.Reportf(v.Pos(),
						"map iteration feeds fmt.%s into %s; map order is nondeterministic — collect and sort the keys first",
						sel.Sel.Name, exprText(v.Args[0]))
					return true
				}
			}
		case *ast.AssignStmt:
			if len(v.Lhs) != 1 || len(v.Rhs) != 1 {
				return true
			}
			lhs := rootIdent(v.Lhs[0])
			if lhs == nil || !p.declaredOutside(v.Lhs[0], rs) {
				return true
			}
			obj := p.objOf(lhs)
			if obj == nil {
				return true
			}
			if v.Tok == token.ADD_ASSIGN || (v.Tok == token.ASSIGN && isSelfConcat(v.Rhs[0], lhs)) {
				if basic, ok := obj.Type().Underlying().(*types.Basic); ok && basic.Info()&types.IsString != 0 {
					p.Reportf(v.Pos(),
						"map iteration concatenates onto string %s; map order is nondeterministic — collect and sort the keys first",
						lhs.Name)
				}
				return true
			}
			if call, ok := v.Rhs[0].(*ast.CallExpr); ok && p.isBuiltinAppend(call) {
				appends = append(appends, appendSink{obj: obj, pos: v.Pos()})
			}
		}
		return true
	})

	for _, a := range appends {
		if !p.sortedAfter(a.obj, rs, enclosing) {
			p.Reportf(a.pos,
				"map iteration appends to %s which is never sorted afterwards; map order is nondeterministic — sort %s before use",
				a.obj.Name(), a.obj.Name())
		}
	}
}

// declaredOutside reports whether the expression roots at an identifier
// declared outside the range statement (an outer accumulator rather than
// a per-iteration local).
func (p *Pass) declaredOutside(e ast.Expr, rs *ast.RangeStmt) bool {
	root := rootIdent(e)
	if root == nil {
		return false
	}
	obj := p.objOf(root)
	if obj == nil {
		return false
	}
	return obj.Pos() < rs.Pos() || obj.Pos() > rs.End()
}

// sortedAfter reports whether obj is mentioned in a sort.* or slices.*
// call after the range statement within the enclosing function body.
func (p *Pass) sortedAfter(obj types.Object, rs *ast.RangeStmt, enclosing *ast.BlockStmt) bool {
	found := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		if pn, ok := p.objOf(pkgID).(*types.PkgName); !ok ||
			(pn.Imported().Path() != "sort" && pn.Imported().Path() != "slices") {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && p.objOf(id) == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

func (p *Pass) isBuiltinAppend(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := p.objOf(id).(*types.Builtin)
	return ok && b.Name() == "append"
}

// isSelfConcat reports whether rhs is a `x + ...` chain mentioning lhs.
func isSelfConcat(rhs ast.Expr, lhs *ast.Ident) bool {
	bin, ok := rhs.(*ast.BinaryExpr)
	if !ok || bin.Op != token.ADD {
		return false
	}
	mentions := false
	ast.Inspect(bin, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == lhs.Name {
			mentions = true
		}
		return !mentions
	})
	return mentions
}

func exprText(e ast.Expr) string {
	if id := rootIdent(e); id != nil {
		return id.Name
	}
	return "writer"
}
