package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strings"
)

// ObsNames pins down the metric-name registry contract from both
// sides. Inside the obs package, every exported M* string constant
// must follow the naming scheme graphsig_<subsystem>_<what>[_<unit>]
// (lowercase, underscore-separated). Everywhere else, the name passed
// to Registry.Counter / Gauge / Histogram must BE one of those
// constants — a string literal or locally-built name would mint a
// metric the catalog doesn't know, silently splitting its time series
// from the documented one — and the constant's suffix must match the
// instrument: counters end in _total, histograms in _seconds, gauges
// in neither.
var ObsNames = &Analyzer{
	Name: "obsnames",
	Doc: "Metric names must be obs.M* catalog constants matching the " +
		"graphsig_* naming convention, with the suffix agreeing with " +
		"the instrument type.",
	Run: runObsNames,
}

var metricNameRe = regexp.MustCompile(`^graphsig(_[a-z0-9]+)+$`)

func runObsNames(pass *Pass) error {
	if pass.Pkg.Name() == "obs" {
		checkCatalog(pass)
		return nil
	}
	checkCallSites(pass)
	return nil
}

// checkCatalog validates the M* constants declared in the obs package
// itself.
func checkCatalog(pass *Pass) {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if !strings.HasPrefix(name.Name, "M") {
						continue
					}
					c, ok := pass.objOf(name).(*types.Const)
					if !ok || c.Val().Kind() != constant.String {
						continue
					}
					val := constant.StringVal(c.Val())
					if !metricNameRe.MatchString(val) {
						pass.Reportf(name.Pos(), "metric constant %s = %q does not match the naming convention graphsig_<subsystem>_<what>[_<unit>]", name.Name, val)
					}
				}
			}
		}
	}
}

// checkCallSites validates Registry.Counter/Gauge/Histogram arguments
// in every consuming package.
func checkCallSites(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			method := sel.Sel.Name
			switch method {
			case "Counter", "Gauge", "Histogram":
			default:
				return true
			}
			tv, ok := pass.TypesInfo.Types[sel.X]
			if !ok || tv.Type == nil || !isNamedType(tv.Type, true, "obs", "Registry") {
				return true
			}
			nameArg := call.Args[0]
			c := pass.constOf(nameArg)
			if c == nil || c.Pkg() == nil || c.Pkg().Name() != "obs" {
				pass.Reportf(nameArg.Pos(), "metric name passed to Registry.%s must be a named constant from the obs catalog (internal/obs/names.go), not a locally-built string", method)
				return true
			}
			if c.Val().Kind() != constant.String {
				return true
			}
			val := constant.StringVal(c.Val())
			switch method {
			case "Counter":
				if !strings.HasSuffix(val, "_total") {
					pass.Reportf(nameArg.Pos(), "counter name %s = %q must end in _total", c.Name(), val)
				}
			case "Histogram":
				if !strings.HasSuffix(val, "_seconds") {
					pass.Reportf(nameArg.Pos(), "histogram name %s = %q must end in _seconds", c.Name(), val)
				}
			case "Gauge":
				if strings.HasSuffix(val, "_total") || strings.HasSuffix(val, "_seconds") {
					pass.Reportf(nameArg.Pos(), "gauge name %s = %q must not carry a counter or histogram suffix", c.Name(), val)
				}
			}
			return true
		})
	}
}

// constOf resolves an expression to the constant object it names, if
// any: a bare ident or a pkg.Name selector.
func (p *Pass) constOf(e ast.Expr) *types.Const {
	switch v := e.(type) {
	case *ast.Ident:
		c, _ := p.objOf(v).(*types.Const)
		return c
	case *ast.SelectorExpr:
		c, _ := p.objOf(v.Sel).(*types.Const)
		return c
	case *ast.ParenExpr:
		return p.constOf(v.X)
	}
	return nil
}
