package analysis

import (
	"go/ast"
)

// SafeGo forbids naked `go` statements in the job-orchestration and
// HTTP-serving packages. Goroutines there are long-lived infrastructure
// — worker pools, janitors, shutdown waiters — and an unrecovered panic
// in one takes down the whole process (or silently shrinks a pool).
// Every spawn must route through runctl.Spawn, which wraps the function
// in a panic barrier and reports the recovery instead of crashing.
// Mining-pipeline packages are exempt: their workers install bespoke
// recover handlers that degrade a single stage via Controller.Recovered.
var SafeGo = &Analyzer{
	Name: "safego",
	Doc: "goroutines in internal/jobs and internal/server must be spawned via " +
		"runctl.Spawn's panic barrier, never a naked go statement",
	Run: runSafeGo,
}

func runSafeGo(pass *Pass) error {
	if !pass.inSpawnScope() {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Pos(),
					"naked goroutine; spawn through runctl.Spawn so a panic is isolated instead of killing the process")
			}
			return true
		})
	}
	return nil
}
