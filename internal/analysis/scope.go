package analysis

import (
	"go/ast"
	"go/types"
	"path"
	"path/filepath"
)

// deterministicScope lists the packages whose outputs must be
// byte-for-byte reproducible: canonical DFS codes (dfscode), database
// fingerprints and the graph text codec (graph), feature extraction
// (feature), closed-vector mining (fvmine), and the mining core whose
// answer-set assembly and config cache key feed result caching.
// maporder applies everywhere inside this scope; packages are matched
// by their final import path segment so the rule also binds the
// analyzer test corpora.
var deterministicScope = map[string][]string{
	"dfscode": nil, // nil = every file in the package
	"graph":   nil,
	"feature": nil,
	"fvmine":  nil,
	"core":    nil,
}

// wallClockScope is deterministicScope minus the files that
// legitimately read the clock: core outside confighash.go measures
// phase timings (Profile.RWR etc.), which never feed canonical output.
var wallClockScope = map[string][]string{
	"dfscode": nil,
	"graph":   nil,
	"feature": nil,
	"fvmine":  nil,
	"core":    {"confighash.go"},
}

// spawnScope lists the packages in which every goroutine must be
// launched through runctl.Spawn's panic barrier: the long-lived job
// orchestration and HTTP serving layers, where a stray panic kills a
// worker pool or the process instead of one request.
var spawnScope = map[string]bool{
	"jobs":   true,
	"server": true,
}

// fsyncScope lists the packages whose file handles carry durability
// guarantees: a Sync or Close error discarded there turns an fsync
// failure into silently lost acknowledged data. The journal is the
// write-ahead log; the store writes segment files and manifests whose
// crash-safety contract is "manifest-named means fully on disk".
var fsyncScope = map[string]bool{
	"journal": true,
	"store":   true,
	// The shard coordinator persists per-shard vectorization caches;
	// a dropped Sync/Close there silently invalidates the cache's
	// content-fingerprint contract.
	"shard": true,
}

// keytaintScope lists the packages where map-iteration-order or
// wall-clock taint can corrupt a determinism contract: the canonical-
// code and fingerprint producers, the mining pipeline that emits
// answer sets, and the caching/journaling layers keyed on them.
var keytaintScope = map[string]bool{
	"dfscode": true,
	"graph":   true,
	"feature": true,
	"fvmine":  true,
	"core":    true,
	"jobs":    true,
	"shard":   true,
	"store":   true,
	"journal": true,
}

// inDeterministicScope reports whether the file is part of a
// deterministic path for maporder.
func (p *Pass) inDeterministicScope(file *ast.File) bool {
	return p.inScope(deterministicScope, file)
}

// inWallClockScope reports whether the file is part of a deterministic
// path for wallclock.
func (p *Pass) inWallClockScope(file *ast.File) bool {
	return p.inScope(wallClockScope, file)
}

func (p *Pass) inScope(scope map[string][]string, file *ast.File) bool {
	files, ok := scope[path.Base(p.ImportPath)]
	if !ok {
		return false
	}
	if files == nil {
		return true
	}
	name := filepath.Base(p.Fset.Position(file.Pos()).Filename)
	for _, f := range files {
		if f == name {
			return true
		}
	}
	return false
}

func (p *Pass) inSpawnScope() bool {
	return spawnScope[path.Base(p.ImportPath)]
}

func (p *Pass) inFsyncScope() bool {
	return fsyncScope[path.Base(p.ImportPath)]
}

func (p *Pass) inKeyTaintScope() bool {
	return keytaintScope[path.Base(p.ImportPath)]
}

// isNamedType reports whether t (after pointer indirection when deref is
// set) is the named type pkgName.typeName. Packages are matched by name,
// not full import path, so the real graphsig/internal/runctl and the
// analyzer corpus's stand-in runctl both satisfy the rule.
func isNamedType(t types.Type, deref bool, pkgName, typeName string) bool {
	if deref {
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Name() == pkgName && obj.Name() == typeName
}

// isContextType reports whether t is context.Context (matched by full
// path: there is exactly one context package).
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// rootIdent unwraps selectors, index and call expressions to the
// left-most identifier: m, m.field, m[i].x all root at m.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.UnaryExpr:
			e = v.X
		case *ast.CallExpr:
			e = v.Fun
		default:
			return nil
		}
	}
}

// objOf resolves an identifier to its object (use or def).
func (p *Pass) objOf(id *ast.Ident) types.Object {
	if o := p.TypesInfo.Uses[id]; o != nil {
		return o
	}
	return p.TypesInfo.Defs[id]
}
