package analysis

import "testing"

// TestRepositoryIsClean runs the full analyzer suite over the whole
// module from inside `go test`: a new violation fails `make test` even
// when the dedicated CI lint step is skipped. This is the same
// invocation `make lint` performs via cmd/graphsiglint.
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping whole-module lint in -short mode")
	}
	root, err := ModuleRoot("")
	if err != nil {
		t.Fatalf("locate module root: %v", err)
	}
	pkgs, err := Load(root, "./...")
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loader matched no packages")
	}
	diags, err := Run(pkgs, All())
	if err != nil {
		t.Fatalf("run analyzers: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Errorf("graphsiglint found %d violation(s); fix them or add a justified //graphsiglint:ignore", len(diags))
	}
}
