package analysis

import (
	"go/ast"
	"go/types"
)

// SharedCapture inspects goroutines spawned inside loops — plain `go`
// statements, runctl.Spawn launches, and the bounded-pool pattern,
// which all fan one closure out per iteration — and reports unsynchronized
// shared state between the iterations:
//
//   - a write (assignment, ++/--, append-reassign, map store or delete)
//     to a variable declared outside the loop, unless it happens under
//     a held mutex inside the goroutine;
//   - a read of an outside-the-loop variable that the loop body itself
//     reassigns, so the goroutine observes whichever iteration ran last.
//
// Deliberate conventions stay clean: per-slot slice writes
// (`out[i] = r` where each iteration owns index i) are the project's
// standard way to collect results deterministically, loop iteration
// variables are per-iteration since Go 1.22, and sync/atomic calls are
// not plain writes.
var SharedCapture = &Analyzer{
	Name: "sharedcapture",
	Doc: "Goroutines spawned in loops must not write shared variables " +
		"or read loop-reassigned ones without synchronization.",
	Run: runSharedCapture,
}

func runSharedCapture(pass *Pass) error {
	funcBodies(pass.Files, func(fd *ast.FuncDecl) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch loop := n.(type) {
			case *ast.ForStmt:
				body = loop.Body
			case *ast.RangeStmt:
				body = loop.Body
			default:
				return true
			}
			for _, lit := range spawnedLits(pass, body) {
				checkSpawnedLit(pass, n, body, lit)
			}
			return true
		})
	})
	return nil
}

// spawnedLits finds the function literals launched as goroutines
// directly in a loop body: `go func(){...}()`, `go func(){...}` wrapped
// in a bounded-pool acquire, and `runctl.Spawn(name, onPanic, func(){...})`.
// Nested loops are handled by their own enclosing walk.
func spawnedLits(pass *Pass, body *ast.BlockStmt) []*ast.FuncLit {
	var lits []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.GoStmt:
			if lit, ok := v.Call.Fun.(*ast.FuncLit); ok {
				lits = append(lits, lit)
			}
		case *ast.CallExpr:
			if sel, ok := v.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Spawn" {
				if id, ok := sel.X.(*ast.Ident); ok {
					if pn, ok := pass.objOf(id).(*types.PkgName); ok && pn.Imported().Name() == "runctl" {
						for _, arg := range v.Args {
							if lit, ok := arg.(*ast.FuncLit); ok {
								lits = append(lits, lit)
							}
						}
					}
				}
			}
		}
		return true
	})
	return lits
}

// hasSliceIndexStep reports whether the access path of e steps through
// a slice or array index (out[i].field): the disjoint-slot collection
// pattern, where each iteration owns its index.
func hasSliceIndexStep(pass *Pass, e ast.Expr) bool {
	for {
		switch v := e.(type) {
		case *ast.SelectorExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.IndexExpr:
			if tv, ok := pass.TypesInfo.Types[v.X]; ok && tv.Type != nil {
				switch tv.Type.Underlying().(type) {
				case *types.Slice, *types.Array:
					return true
				}
			}
			e = v.X
		default:
			return false
		}
	}
}

func checkSpawnedLit(pass *Pass, loop ast.Node, body *ast.BlockStmt, lit *ast.FuncLit) {
	outside := func(obj types.Object) bool {
		if obj == nil || obj.Pkg() != pass.Pkg {
			return false
		}
		if _, isVar := obj.(*types.Var); !isVar {
			return false
		}
		return obj.Pos() < loop.Pos() || obj.Pos() >= loop.End()
	}

	// Variables the loop body reassigns outside the spawned literal:
	// reading one of those inside the goroutine is a race with the next
	// iteration.
	loopAssigned := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok && fl == lit {
			return false
		}
		recordTarget := func(e ast.Expr) {
			if id, ok := e.(*ast.Ident); ok {
				if obj := pass.objOf(id); outside(obj) {
					loopAssigned[obj] = true
				}
			}
		}
		switch v := n.(type) {
		case *ast.AssignStmt:
			for _, l := range v.Lhs {
				recordTarget(l)
			}
		case *ast.IncDecStmt:
			recordTarget(v.X)
		}
		return true
	})

	reported := map[types.Object]bool{}
	reportWrite := func(id *ast.Ident, obj types.Object) {
		if reported[obj] {
			return
		}
		reported[obj] = true
		pass.Reportf(id.Pos(), "goroutine spawned in a loop writes %s, which is shared across iterations, without synchronization", obj.Name())
	}

	var walkFrom func(b *ast.BlockStmt)
	walkFrom = func(b *ast.BlockStmt) {
		w := &guardWalker{
			pass: pass,
			onWrite: func(e ast.Expr, through bool, st *guardState) {
				if len(st.held) > 0 {
					return // locked inside the goroutine: synchronized
				}
				root := rootIdent(e)
				if root == nil {
					return
				}
				obj := pass.objOf(root)
				if !outside(obj) {
					return
				}
				if through {
					// Through-writes mutate the container: per-slot
					// slice/array writes are the sanctioned disjoint
					// pattern, map stores/deletes and pointer-target
					// writes are races.
					if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Type != nil {
						switch tv.Type.Underlying().(type) {
						case *types.Map, *types.Pointer:
							reportWrite(root, obj)
						}
					}
					return
				}
				if hasSliceIndexStep(pass, e) {
					// out[i].field = x — still the disjoint-slot shape.
					return
				}
				reportWrite(root, obj)
			},
			onRead: func(e ast.Expr, st *guardState) {
				id, ok := e.(*ast.Ident)
				if !ok {
					return
				}
				obj := pass.objOf(id)
				if !outside(obj) || !loopAssigned[obj] || reported[obj] {
					return
				}
				reported[obj] = true
				pass.Reportf(id.Pos(), "goroutine spawned in a loop reads %s, which the loop reassigns each iteration; pass it as a parameter", obj.Name())
			},
			onFuncLit: func(inner *ast.FuncLit) { walkFrom(inner.Body) },
		}
		w.walkBody(b)
	}
	walkFrom(lit.Body)
}
