// Corpus for the atomicmix analyzer: the same variable or field must
// not be accessed both through sync/atomic and plainly.
package atomicmix

import "sync/atomic"

type stats struct {
	hits  int64
	total int64 // never touched atomically
}

func newStats() *stats { return &stats{} }

func (s *stats) record() {
	atomic.AddInt64(&s.hits, 1)
}

// Positive: plain read of an atomically-updated field.
func (s *stats) snapshot() int64 {
	return s.hits // want "accessed with sync/atomic"
}

// Positive: plain write to an atomically-updated field.
func (s *stats) reset() {
	s.hits = 0 // want "accessed with sync/atomic"
}

// Negative: atomic accesses on both sides.
func (s *stats) load() int64 { return atomic.LoadInt64(&s.hits) }

// Negative: presetting an unpublished constructor-local.
func preset() *stats {
	s := &stats{}
	s.hits = 5
	return s
}

// Negative: presetting via a named constructor.
func presetNamed() *stats {
	s := newStats()
	s.hits = 7
	return s
}

// Negative: a field with no atomic accesses mixes nothing.
func (s *stats) bumpTotal() { s.total++ }

var gauge int64

func setGauge(v int64) { atomic.StoreInt64(&gauge, v) }

// Positive: plain access to an atomically-written package variable.
func readGauge() int64 {
	return gauge // want "accessed with sync/atomic"
}
