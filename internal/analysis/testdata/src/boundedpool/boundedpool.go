// Package boundedpool is the golden corpus for the boundedpool
// analyzer: goroutine fan-out over range loops, bounded and not.
package boundedpool

import "sync"

type item struct{ id int }

// unboundedFanOut spawns one goroutine per element with nothing
// holding the spawn rate back.
func unboundedFanOut(items []item) {
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func(it item) { // want "unbounded goroutine fan-out"
			defer wg.Done()
			_ = it.id
		}(it)
	}
	wg.Wait()
}

// acquireInsideGoroutine blocks the *work*, not the spawn: every
// goroutine is launched before any of them park on the semaphore, so
// the goroutine count is still the input size.
func acquireInsideGoroutine(items []item) {
	var wg sync.WaitGroup
	sem := make(chan struct{}, 4)
	for _, it := range items {
		wg.Add(1)
		go func(it item) { // want "unbounded goroutine fan-out"
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			_ = it.id
		}(it)
	}
	wg.Wait()
}

// semaphorePool is the project convention: acquire before spawn, so at
// most cap(sem) goroutines exist at once.
func semaphorePool(items []item) {
	var wg sync.WaitGroup
	sem := make(chan struct{}, 4)
	for _, it := range items {
		wg.Add(1)
		sem <- struct{}{}
		go func(it item) {
			defer wg.Done()
			defer func() { <-sem }()
			_ = it.id
		}(it)
	}
	wg.Wait()
}

// workerPool spawns a fixed number of workers from a counted loop and
// feeds them over a channel: bounded by construction, never flagged.
func workerPool(items []item) {
	var wg sync.WaitGroup
	work := make(chan item)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := range work {
				_ = it.id
			}
		}()
	}
	for _, it := range items {
		work <- it
	}
	close(work)
	wg.Wait()
}

// nestedScope: a range loop that only defines a function literal does
// not spawn anything itself; the literal's own range loop is analyzed
// independently and is bounded there.
func nestedScope(groups [][]item) []func() {
	var fns []func()
	sem := make(chan struct{}, 2)
	for _, g := range groups {
		g := g
		fns = append(fns, func() {
			for _, it := range g {
				sem <- struct{}{}
				go func(it item) {
					defer func() { <-sem }()
					_ = it.id
				}(it)
			}
		})
	}
	return fns
}

// suppressed shows the escape hatch for a fan-out that is known to be
// small and latency-critical.
func suppressed(items []item) {
	done := make(chan struct{})
	for _, it := range items {
		//graphsiglint:ignore boundedpool spawn set is the fixed stage list, never input-sized
		go func(it item) {
			_ = it.id
			done <- struct{}{}
		}(it)
	}
	for range items {
		<-done
	}
}
