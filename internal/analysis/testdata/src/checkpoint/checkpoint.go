// Package checkpoint is the checkpoint corpus.
package checkpoint

import "runctl"

// Positive: checks once before the loop, then loops unchecked — the
// exact failure mode the rule exists for.
func bad(ctl *runctl.Controller, xs []int) int { // want "no loop observes it"
	if ctl.Err() != nil {
		return 0
	}
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// Positive: derives a checkpoint but only consults it outside the loop.
func badDerived(ctl *runctl.Controller, xs []int) int { // want "no loop observes it"
	cp := ctl.Checkpoint("stage")
	if cp.Force() != nil {
		return 0
	}
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// Negative: steps the checkpoint inside the loop.
func good(ctl *runctl.Controller, xs []int) int {
	cp := ctl.Checkpoint("stage")
	total := 0
	for _, x := range xs {
		if cp.Step() != nil {
			break
		}
		total += x
	}
	return total
}

// Negative: a *runctl.Checkpoint parameter carries the same obligation
// and satisfies it the same way.
func goodCheckpointParam(cp *runctl.Checkpoint, xs []int) int {
	total := 0
	for _, x := range xs {
		if cp.Step() != nil {
			break
		}
		total += x
	}
	return total
}

// Negative: delegates the controller to the code doing the work.
func delegates(ctl *runctl.Controller, xs [][]int) int {
	total := 0
	for _, x := range xs {
		total += good(ctl, x)
	}
	return total
}

// Negative: stores a derived checkpoint for a callee to poll.
type miner struct{ cp *runctl.Checkpoint }

func build(ctl *runctl.Controller, xs []int) *miner {
	m := &miner{cp: ctl.Checkpoint("stage")}
	for range xs {
	}
	return m
}

// Negative: no loops, no obligation.
func noLoop(ctl *runctl.Controller) error {
	return ctl.Err()
}
