// Package core is the file-scoped wallclock corpus: only confighash.go
// is a deterministic path; the rest of the package may read the clock
// for phase timings.
package core

import "time"

func hashStamp() int64 {
	return time.Now().UnixNano() // want "time.Now in deterministic path"
}
