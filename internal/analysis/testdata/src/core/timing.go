package core

import "time"

// Negative: phase timing outside confighash.go is allowed.
func phase() time.Duration {
	t0 := time.Now()
	return time.Since(t0)
}
