// Package ctxfirst is the ctxfirst corpus.
package ctxfirst

import "context"

// Negative: context leads.
func good(ctx context.Context, n int) {}

// Positive: context buried behind another parameter.
func bad(n int, ctx context.Context) {} // want "context.Context should be the first parameter"

// Positive: interface methods obey the same rule.
type iface interface {
	Do(n int, ctx context.Context) error // want "context.Context should be the first parameter"
}

// Positive: a stored context outlives its request.
type holder struct {
	ctx context.Context // want "stored in a struct field"
}

// Negative: a justified suppression keeps the diagnostic out.
type options struct {
	//graphsiglint:ignore ctxfirst options structs hand the context straight to New
	Ctx context.Context
}

// Positive: a suppression without a justification does not count.
type badIgnore struct {
	//graphsiglint:ignore ctxfirst
	C context.Context // want "stored in a struct field"
}

// Negative: methods with a receiver still count the receiver separately.
type svc struct{}

func (s *svc) run(ctx context.Context, n int) {}
