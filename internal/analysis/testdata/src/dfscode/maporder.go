// Package dfscode is the maporder corpus: its base name places it in
// the deterministic scope, like the real canonical-code package.
package dfscode

import (
	"crypto/sha256"
	"fmt"
	"sort"
	"strings"
)

// Positive: hashing directly from map iteration order.
func hashCounts(counts map[string]int) []byte {
	h := sha256.New()
	for k, v := range counts {
		h.Write([]byte(k)) // want "map iteration feeds h.Write"
		_ = v
	}
	return h.Sum(nil)
}

// Positive: string building from map iteration order.
func describe(m map[string]int) string {
	var sb strings.Builder
	for k := range m {
		sb.WriteString(k) // want "map iteration feeds sb.WriteString"
	}
	return sb.String()
}

// Positive: string concatenation.
func concat(m map[string]int) string {
	out := ""
	for k := range m {
		out += k // want "concatenates onto string out"
	}
	return out
}

// Positive: formatted printing into an outer builder.
func fprint(m map[string]int) string {
	var sb strings.Builder
	for k, v := range m {
		fmt.Fprintf(&sb, "%s=%d;", k, v) // want "map iteration feeds fmt.Fprintf"
	}
	return sb.String()
}

// Positive: slice assembly that is never sorted.
func keysUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "appends to keys which is never sorted"
	}
	return keys
}

// Negative: the canonical collect-sort-iterate idiom.
func keysSorted(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		sb.WriteString(k)
	}
	return sb.String()
}

// Negative: sort.Slice with the slice buried in a closure-taking call.
func structsSorted(m map[string]int) []int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

// Negative: per-iteration local builder; each element is independent of
// iteration order.
func perElement(m map[string]int) map[string]string {
	out := map[string]string{}
	for k, v := range m {
		var sb strings.Builder
		fmt.Fprintf(&sb, "%d", v)
		out[k] = sb.String()
	}
	return out
}

// Negative: a bare `for range` cannot observe iteration order.
func count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}
