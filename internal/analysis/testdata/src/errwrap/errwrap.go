// Package errwrap is the errwrap corpus.
package errwrap

import (
	"errors"
	"fmt"
)

var errSentinel = errors.New("sentinel")

// Positive: %v flattens the chain.
func bad(err error) error {
	return fmt.Errorf("mine failed: %v", err) // want "use %w"
}

// Positive: %s does too, even mixed with other verbs.
func badMixed(n int, err error) error {
	return fmt.Errorf("graph %d: %s", n, err) // want "use %w"
}

// Positive: concrete error types are still errors.
type codeErr struct{ code int }

func (e *codeErr) Error() string { return "code" }

func badConcrete(e *codeErr) error {
	return fmt.Errorf("request: %v", e) // want "use %w"
}

// Negative: wrapped properly.
func good(err error) error {
	return fmt.Errorf("mine failed: %w", err)
}

// Negative: no error argument at all.
func goodNoErr(n int) error {
	return fmt.Errorf("bad count %d", n)
}

// Negative: a recovered value is `any`, not a typed error.
func goodRecover(rec any) error {
	return fmt.Errorf("panicked: %v", rec)
}

// Negative: err.Error() is a plain string.
func goodString(err error) error {
	return fmt.Errorf("mine failed: %s", err.Error())
}
