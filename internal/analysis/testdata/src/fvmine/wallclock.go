// Package fvmine is the wallclock corpus: its base name places it in
// the deterministic scope, like the real closed-vector miner.
package fvmine

import (
	"math/rand"
	"time"
)

// Positive: reads the wall clock in a deterministic path.
func stamp() time.Time {
	return time.Now() // want "time.Now in deterministic path"
}

// Positive: measures elapsed wall time.
func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want "time.Since in deterministic path"
}

// Positive: draws from the process-global, randomly seeded source.
func draw() int {
	return rand.Intn(10) // want "unseeded rand.Intn"
}

// Negative: an explicitly seeded generator is reproducible.
func seeded() int {
	r := rand.New(rand.NewSource(42))
	return r.Intn(10)
}

// Negative: time arithmetic never reads the clock.
func add(t time.Time) time.Time {
	return t.Add(time.Second)
}
