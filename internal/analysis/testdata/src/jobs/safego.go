// Package jobs is the safego corpus: its base name places it in the
// spawn scope, like the real job-orchestration package.
package jobs

import "runctl"

// Positive: a naked goroutine loses panics.
func bad(fn func()) {
	go fn() // want "naked goroutine"
}

// Positive: function literals too.
func badLit(done chan struct{}) {
	go func() { // want "naked goroutine"
		close(done)
	}()
}

// Negative: the sanctioned spawn path.
func good(fn func()) {
	runctl.Spawn("worker", nil, fn)
}
