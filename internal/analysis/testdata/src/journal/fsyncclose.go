// Package journal is the fsyncclose corpus: its base name places it in
// the durability scope, like the real write-ahead journal package.
package journal

import (
	"errors"
	"os"
)

// Positive: a bare Sync statement loses the fsync error.
func bareSync(path string) {
	f, _ := os.Create(path)
	f.Sync()      // want "discarded (*os.File).Sync error"
	_ = f.Close() // want "blank-assigned Close error on a writable file"
}

// Positive: blank-assigning Sync is the same loss, spelled louder.
func blankSync(f *os.File) {
	_ = f.Sync() // want "blank-assigned (*os.File).Sync error"
}

// Positive: Sync on a struct-held handle — provenance doesn't matter
// for Sync, only write paths ever call it.
type wal struct{ f *os.File }

func (w *wal) flush() {
	w.f.Sync() // want "discarded (*os.File).Sync error"
}

// Positive: a deferred Close on a writable file discards the final
// write-back error.
func deferClose(path string) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close() // want "defer discards the Close error on a writable file"
	_, err = f.Write([]byte("x"))
	return err
}

// Positive: bare and blank-assigned Close on writable files.
func looseClose(dir string) {
	f, _ := os.CreateTemp(dir, "tmp")
	f.Close() // want "discarded Close error on a writable file"
	g, _ := os.Create(dir + "/g")
	_ = g.Close() // want "blank-assigned Close error on a writable file"
}

// Negative: handled errors are the sanctioned pattern.
func handled(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return errors.Join(err, f.Close())
	}
	return f.Close()
}

// Negative: a read-only handle has nothing to lose on Close.
func readOnly(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, 16)
	n, err := f.Read(buf)
	return buf[:n], err
}

// Negative: the Close error riding along in errors.Join is used, not
// discarded.
func joined(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("x")); err != nil {
		return errors.Join(err, f.Close())
	}
	return f.Close()
}
