// Corpus for the keytaint analyzer, in a package named core so the
// determinism scope binds: map-iteration-order and wall-clock taint
// flowing into keys, fingerprints, and emitted Subgraphs.
package core

import (
	"fmt"
	"sort"
	"time"
)

// Result mirrors the mining result: Subgraphs is the emitted answer set.
type Result struct {
	Subgraphs []string
}

// cacheKeyOf is a key constructor (name contains "Key").
func cacheKeyOf(parts []string) string {
	out := ""
	for _, p := range parts {
		out += p + "|"
	}
	return out
}

// Positive: unsorted map keys reach a key constructor.
func assemble(m map[string]int) string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return cacheKeyOf(keys) // want "map-iteration-order-derived"
}

// Negative: sorting is the barrier.
func assembleSorted(m map[string]int) string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return cacheKeyOf(keys)
}

// Negative: a project canonicalization helper is a barrier too.
func canonicalize(parts []string) []string {
	sort.Strings(parts)
	return parts
}

func assembleCanonical(m map[string]int) string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return cacheKeyOf(canonicalize(keys))
}

// Positive: the wall clock reaches a key constructor.
func withStamp(base string) string {
	stamp := fmt.Sprintf("%d", time.Now().UnixNano())
	return cacheKeyOf([]string{base, stamp}) // want "wall-clock-derived"
}

// nowPart is a package-local helper whose return is clock-tainted; the
// summary fixpoint must carry that to its call sites.
func nowPart() string {
	return fmt.Sprintf("%d", time.Now().UnixNano())
}

// Positive: clock taint through an interprocedural summary.
func viaHelper(base string) string {
	return cacheKeyOf([]string{base, nowPart()}) // want "wall-clock-derived"
}

// Positive: a key-producing function returning a tainted value.
func FingerprintOf(m map[string]int) string {
	s := ""
	for k := range m {
		s += k
	}
	return s // want "returned from FingerprintOf"
}

// Positive: answer set accumulated in map order, never sorted.
func emit(m map[string]string) Result {
	var r Result
	for _, v := range m {
		r.Subgraphs = append(r.Subgraphs, v) // want "accumulate in Subgraphs"
	}
	return r
}

// Negative: assemble-then-sort is the sanctioned idiom.
func emitSorted(m map[string]string) Result {
	var r Result
	for _, v := range m {
		r.Subgraphs = append(r.Subgraphs, v)
	}
	sort.Strings(r.Subgraphs)
	return r
}

// Negative: values from a slice range carry no order taint.
func emitFromSlice(in []string) Result {
	var r Result
	for _, v := range in {
		r.Subgraphs = append(r.Subgraphs, v)
	}
	return r
}

// Negative: timing metrics that never reach a key are fine.
func timed() time.Duration {
	t0 := time.Now()
	return time.Since(t0)
}
