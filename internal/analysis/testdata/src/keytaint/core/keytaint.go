// Corpus for the keytaint analyzer, in a package named core so the
// determinism scope binds: map-iteration-order and wall-clock taint
// flowing into keys, fingerprints, and emitted Subgraphs.
package core

import (
	"fmt"
	"sort"
	"time"
)

// Result mirrors the mining result: Subgraphs is the emitted answer set.
type Result struct {
	Subgraphs []string
}

// cacheKeyOf is a key constructor (name contains "Key").
func cacheKeyOf(parts []string) string {
	out := ""
	for _, p := range parts {
		out += p + "|"
	}
	return out
}

// Positive: unsorted map keys reach a key constructor.
func assemble(m map[string]int) string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return cacheKeyOf(keys) // want "map-iteration-order-derived"
}

// Negative: sorting is the barrier.
func assembleSorted(m map[string]int) string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return cacheKeyOf(keys)
}

// Negative: a project canonicalization helper is a barrier too.
func canonicalize(parts []string) []string {
	sort.Strings(parts)
	return parts
}

func assembleCanonical(m map[string]int) string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return cacheKeyOf(canonicalize(keys))
}

// Positive: the wall clock reaches a key constructor.
func withStamp(base string) string {
	stamp := fmt.Sprintf("%d", time.Now().UnixNano())
	return cacheKeyOf([]string{base, stamp}) // want "wall-clock-derived"
}

// nowPart is a package-local helper whose return is clock-tainted; the
// summary fixpoint must carry that to its call sites.
func nowPart() string {
	return fmt.Sprintf("%d", time.Now().UnixNano())
}

// Positive: clock taint through an interprocedural summary.
func viaHelper(base string) string {
	return cacheKeyOf([]string{base, nowPart()}) // want "wall-clock-derived"
}

// Positive: a key-producing function returning a tainted value.
func FingerprintOf(m map[string]int) string {
	s := ""
	for k := range m {
		s += k
	}
	return s // want "returned from FingerprintOf"
}

// Positive: answer set accumulated in map order, never sorted.
func emit(m map[string]string) Result {
	var r Result
	for _, v := range m {
		r.Subgraphs = append(r.Subgraphs, v) // want "accumulate in Subgraphs"
	}
	return r
}

// Negative: assemble-then-sort is the sanctioned idiom.
func emitSorted(m map[string]string) Result {
	var r Result
	for _, v := range m {
		r.Subgraphs = append(r.Subgraphs, v)
	}
	sort.Strings(r.Subgraphs)
	return r
}

// Negative: values from a slice range carry no order taint.
func emitFromSlice(in []string) Result {
	var r Result
	for _, v := range in {
		r.Subgraphs = append(r.Subgraphs, v)
	}
	return r
}

// Negative: timing metrics that never reach a key are fine.
func timed() time.Duration {
	t0 := time.Now()
	return time.Since(t0)
}

// Positive: a fingerprint assembled while ranging an occurrence map —
// the per-pattern TID-list shape the closed miners track. Both sinks
// fire on one line: the tainted argument reaching cacheKeyOf, and the
// tainted return from a function whose own name marks it key-producing.
func occurrenceKey(occ map[string][]int) string {
	var parts []string
	for pat := range occ {
		parts = append(parts, fmt.Sprintf("%s:%d", pat, len(occ[pat])))
	}
	return cacheKeyOf(parts) // want "reaches key/fingerprint constructor cacheKeyOf" "returned from occurrenceKey"
}

// Negative: the same walk with a sort barrier before keying.
func occurrenceKeySorted(occ map[string][]int) string {
	var parts []string
	for pat := range occ {
		parts = append(parts, fmt.Sprintf("%s:%d", pat, len(occ[pat])))
	}
	sort.Strings(parts)
	return cacheKeyOf(parts)
}

// Negative: an existential closure check over the occurrence map — a
// bool cannot carry iteration order, which is exactly why the miners'
// non-closed flags are safe to compute this way.
func nonClosed(occ map[string][]int, support int) bool {
	for _, tids := range occ {
		if len(tids) == support {
			return true
		}
	}
	return false
}

// Positive: embedding lists flushed into the answer set in map order.
func emitEmbeddings(byPattern map[string][]string) Result {
	var r Result
	for _, embs := range byPattern {
		r.Subgraphs = append(r.Subgraphs, embs...) // want "accumulate in Subgraphs"
	}
	return r
}
