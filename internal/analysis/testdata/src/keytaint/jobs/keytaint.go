// Corpus for keytaint's journal-record sink, in a package named jobs
// like the real journal writer.
package jobs

import (
	"sort"
	"time"

	"keytaint/journal"
)

// Positive: map-ordered keys folded into a journal record would replay
// differently than they were written.
func record(j *journal.Journal, seen map[string]bool) {
	var keys []string
	for k := range seen {
		keys = append(keys, k)
	}
	j.Append(journal.Event{Type: "submitted", Keys: keys}) // want "journal record"
}

// Negative: sorted keys are deterministic.
func recordSorted(j *journal.Journal, seen map[string]bool) {
	var keys []string
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	j.Append(journal.Event{Type: "submitted", Keys: keys})
}

// Negative: timestamps in journal records are wall-clock by design.
func stamp(j *journal.Journal) {
	j.Append(journal.Event{Type: "started", AtMs: time.Now().UnixMilli()})
}

// Positive: a tainted variable passed to Append directly.
func recordVar(j *journal.Journal, seen map[string]bool) {
	var ev journal.Event
	for k := range seen {
		ev.Keys = append(ev.Keys, k)
	}
	j.Append(ev) // want "journal append"
}
