// Stand-in journal package for the keytaint corpus: matched by package
// name, like the real write-ahead log.
package journal

// Event mirrors the real journal record shape: Keys must fold
// deterministically on replay, AtMs is wall-clock by design.
type Event struct {
	Type string
	Keys []string
	AtMs int64
}

// Journal is the append sink.
type Journal struct{}

func (j *Journal) Append(ev Event) error { return nil }
