// Corpus for the lockguard analyzer: guarded-field consistency,
// lock-release on every return path, and mutex copies by value.
package lockguard

import (
	"sync"
	"sync/atomic"
)

type counter struct {
	mu   sync.Mutex
	n    int
	name string // never written under mu: unguarded
}

func newCounter() *counter { return &counter{} }

// inc establishes counter.n as guarded by counter.mu.
func (c *counter) inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// Positive: guarded field read without the lock.
func (c *counter) peek() int {
	return c.n // want "guarded by counter.mu"
}

// Positive: guarded field written without the lock.
func (c *counter) reset() {
	c.n = 0 // want "guarded by counter.mu"
}

// Negative: deferred unlock keeps the guard held through the return.
func (c *counter) get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Negative: a field never written under the mutex has no guard.
func (c *counter) label() string { return c.name }

// Negative: constructor-locals are unpublished, no lock needed.
func fresh() *counter {
	c := &counter{}
	c.n = 41
	d := newCounter()
	d.n = d.n + 1
	return d
}

// Negative: the Locked suffix means the caller holds the mutex.
func (c *counter) bumpLocked() { c.n++ }

// drain resets the counter. Caller holds mu.
func (c *counter) drain() { c.n = 0 }

type table struct {
	mu sync.RWMutex
	m  map[string]int
}

// set establishes table.m as guarded (map assignment is a write
// through the field).
func (t *table) set(k string, v int) {
	t.mu.Lock()
	t.m[k] = v
	t.mu.Unlock()
}

// Negative: reads are satisfied by the read lock.
func (t *table) get(k string) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.m[k]
}

// Positive: delete mutates the map under only the read lock.
func (t *table) del(k string) {
	t.mu.RLock()
	delete(t.m, k) // want "guarded by table.mu"
	t.mu.RUnlock()
}

// Positive: an early return abandons the held lock.
func (c *counter) tryBump(ok bool) bool {
	c.mu.Lock()
	if !ok {
		return false // want "return while holding c.mu"
	}
	c.n++
	c.mu.Unlock()
	return true
}

// Positive: locked, never unlocked.
func (c *counter) leak() {
	c.mu.Lock() // want "never unlocked"
	c.n++
}

// Negative: branch unlocks before its return, tail unlocks after.
func (c *counter) branchy(x bool) int {
	c.mu.Lock()
	if x {
		c.mu.Unlock()
		return 0
	}
	n := c.n
	c.mu.Unlock()
	return n
}

// Negative: unlock inside a deferred closure still releases.
func (c *counter) deferred() int {
	c.mu.Lock()
	defer func() {
		c.mu.Unlock()
	}()
	return c.n
}

// Positive: a value receiver copies the mutex (and the unlocked field
// read inside is flagged on its own line).
func (c counter) badValue() int { // want "value receiver of badValue copies"
	return c.n // want "guarded by counter.mu"
}

// Positive: a mutex-bearing struct parameter is a copy.
func consume(c counter) { _ = c.name } // want "parameter of consume copies"

// Positive: a bare mutex parameter is a copy.
func take(mu sync.Mutex) { _ = mu } // want "copies a mutex by value"

// Positive: dereferencing copies the struct and its mutex.
func snapshot(c *counter) counter {
	cp := *c // want "dereference copies"
	return cp
}

// Negative: pointers share the mutex; mutex-free structs copy freely.
type plain struct{ a, b int }

func (p plain) sum() int    { return p.a + p.b }
func borrow(c *counter) int { return c.get() }

// An arena recycles scratch buffers: the freelist is mutex-guarded,
// the sync.Pool overflow is internally synchronized and never written
// through the field, so no guard is inferred for it.
type arena struct {
	mu       sync.Mutex
	freelist [][]int32
	overflow sync.Pool
}

// put establishes arena.freelist as guarded by arena.mu.
func (a *arena) put(buf []int32) {
	a.mu.Lock()
	a.freelist = append(a.freelist, buf)
	a.mu.Unlock()
}

// Negative: pool method calls are not field writes; overflow stays
// unguarded and needs no lock.
func (a *arena) spill(buf []int32) {
	a.overflow.Put(&buf)
}

// Negative: the freelist is drained under a deferred unlock, and
// falling through to the pool is a plain method call.
func (a *arena) take() []int32 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if n := len(a.freelist); n > 0 {
		buf := a.freelist[n-1]
		a.freelist = a.freelist[:n-1]
		return buf
	}
	p, _ := a.overflow.Get().(*[]int32)
	if p != nil {
		return *p
	}
	return nil
}

// Positive: reading the guarded freelist without the lock.
func (a *arena) size() int {
	return len(a.freelist) // want "guarded by arena.mu"
}

// Positive: dropping the freelist without the lock.
func (a *arena) clear() {
	a.freelist = nil // want "guarded by arena.mu"
}

// A lazily frozen snapshot mirrors the CSR freeze pattern: the builder
// side is mutex-guarded; the snapshot is published through an
// atomic.Pointer and read lock-free.
type frozen struct {
	mu    sync.Mutex
	dirty []int
	snap  atomic.Pointer[[]int]
}

// add establishes frozen.dirty as guarded; Store is a method call,
// not a write through snap, so snap acquires no guard here.
func (f *frozen) add(v int) {
	f.mu.Lock()
	f.dirty = append(f.dirty, v)
	f.snap.Store(nil)
	f.mu.Unlock()
}

// Negative: the atomic fast path needs no lock; the slow path rebuilds
// under a deferred unlock.
func (f *frozen) view() []int {
	if p := f.snap.Load(); p != nil {
		return *p
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	s := append([]int(nil), f.dirty...)
	f.snap.Store(&s)
	return s
}

// Positive: appending to the builder side without the lock races with
// a concurrent freeze — both the write and the RHS read are flagged.
func (f *frozen) addFast(v int) {
	f.dirty = append(f.dirty, v) // want "guarded by frozen.mu" "guarded by frozen.mu"
}
