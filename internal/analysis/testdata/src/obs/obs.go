// Stand-in obs package for the obsnames corpus: the Registry API
// surface plus a metric catalog with deliberate convention violations.
// Matched by package name, like the real internal/obs.
package obs

type Registry struct{}
type Counter struct{}
type Gauge struct{}
type Histogram struct{}

func (r *Registry) Counter(name string, labels ...string) *Counter { return nil }
func (r *Registry) Gauge(name string, labels ...string) *Gauge     { return nil }
func (r *Registry) Histogram(name string, buckets []float64, labels ...string) *Histogram {
	return nil
}

const (
	// Negatives: well-formed catalog names.
	MGoodTotal   = "graphsig_jobs_done_total"
	MGoodSeconds = "graphsig_run_duration_seconds"
	MGoodGauge   = "graphsig_queue_depth"

	// Positives: convention violations in the catalog itself.
	MBadPrefix = "jobs_done_total"               // want "does not match the naming convention"
	MBadCase   = "graphsig_Jobs_total"           // want "does not match the naming convention"
	MBadSep    = "graphsig_jobs__double"         // want "does not match the naming convention"
	MBadDash   = "graphsig_jobs-done_total"      // want "does not match the naming convention"

	// Legal name, wrong instrument — caught at the call site, not here.
	MMisusedTotal = "graphsig_oops_total"

	// Not an M* metric constant: exempt from the catalog rule.
	version = "v1.0-RC"
)
