// Corpus for the obsnames call-site rules: every metric name handed to
// the Registry must be an obs catalog constant with the suffix
// matching the instrument.
package obsnames

import "obs"

const localName = "graphsig_local_total"

func register(r *obs.Registry) {
	// Negatives: catalog constants with the right suffixes.
	r.Counter(obs.MGoodTotal, "label")
	r.Gauge(obs.MGoodGauge)
	r.Histogram(obs.MGoodSeconds, []float64{0.1, 1, 10}, "stage")

	// Positive: ad-hoc literal mints an uncataloged time series.
	r.Counter("graphsig_adhoc_total") // want "must be a named constant"

	// Positive: a local constant is not the catalog.
	r.Counter(localName) // want "must be a named constant"

	// Positives: catalog constants used with the wrong instrument.
	r.Counter(obs.MGoodGauge)          // want "must end in _total"
	r.Histogram(obs.MGoodTotal, nil)   // want "must end in _seconds"
	r.Gauge(obs.MMisusedTotal)         // want "must not carry"
	r.Gauge(obs.MGoodSeconds)          // want "must not carry"
}

// Negative: methods named Counter on non-Registry types are unrelated.
type other struct{}

func (other) Counter(name string) {}

func unrelated(o other) { o.Counter("anything goes") }
