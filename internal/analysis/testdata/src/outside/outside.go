// Package outside holds the same patterns maporder and wallclock flag,
// but its base name is not in the deterministic scope: nothing here may
// be reported.
package outside

import (
	"crypto/sha256"
	"time"
)

func hashCounts(counts map[string]int) []byte {
	h := sha256.New()
	for k := range counts {
		h.Write([]byte(k))
	}
	return h.Sum(nil)
}

func stamp() time.Time {
	return time.Now()
}
