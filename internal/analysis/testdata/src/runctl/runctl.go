// Package runctl is a minimal stand-in for graphsig/internal/runctl so
// the analyzer corpus can exercise the checkpoint and safego rules:
// both rules match the controller types by package *name*, so this
// single-segment import works exactly like the real one.
package runctl

// Controller mirrors the real run controller's checkpoint surface.
type Controller struct{}

func (c *Controller) Checkpoint(stage string) *Checkpoint { return &Checkpoint{} }
func (c *Controller) Stopped() bool                       { return false }
func (c *Controller) Err() error                          { return nil }

// Checkpoint mirrors the real goroutine-local checkpoint.
type Checkpoint struct{}

func (cp *Checkpoint) Step() error  { return nil }
func (cp *Checkpoint) Force() error { return nil }

// Spawn mirrors the real panic-isolating spawn helper.
func Spawn(name string, onPanic func(name string, r any, stack []byte), fn func()) {
	go fn()
}
