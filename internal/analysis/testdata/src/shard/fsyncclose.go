// Corpus extending the fsyncclose durability scope to the shard
// package: the per-shard vectorization cache files carry the same
// "named means fully on disk" contract as segments and manifests.
package shard

import (
	"errors"
	"os"
)

// Positive: a vector-cache writer that drops its fsync — the cache
// fingerprint can name a file whose bytes never reached disk.
func writeVecCache(path string, payload []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	_, err = f.Write(payload)
	f.Sync()        // want "discarded (*os.File).Sync error"
	defer f.Close() // want "defer discards the Close error on a writable file"
	return err
}

// Positive: blanked Close on the cache temp file before rename.
func commitVecCache(dir string, payload []byte) error {
	f, err := os.CreateTemp(dir, "veccache-*")
	if err != nil {
		return err
	}
	if _, err := f.Write(payload); err != nil {
		f.Close() // want "discarded Close error on a writable file"
		return err
	}
	_ = f.Sync() // want "blank-assigned (*os.File).Sync error"
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(f.Name(), dir+"/veccache.bin")
}

// Negative: the sanctioned pattern propagates every error.
func writeVecCacheDurably(path string, payload []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(payload); err != nil {
		return errors.Join(err, f.Close())
	}
	if err := f.Sync(); err != nil {
		return errors.Join(err, f.Close())
	}
	return f.Close()
}

// Negative: read-only cache loads lose nothing on Close.
func readVecCache(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, 128)
	n, err := f.Read(buf)
	return buf[:n], err
}
