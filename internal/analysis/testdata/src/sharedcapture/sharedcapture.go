// Corpus for the sharedcapture analyzer: goroutines spawned in loops
// sharing state across iterations without synchronization.
package sharedcapture

import (
	"runctl"
	"sync"
	"sync/atomic"
)

func use(int) {}

// Positive: append-reassignment of a shared slice from each iteration.
func gather(items []int) []int {
	var out []int
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out = append(out, it*2) // want "writes out"
		}()
	}
	wg.Wait()
	return out
}

// Positive: concurrent map stores.
func index(keys []string) map[string]int {
	m := map[string]int{}
	for i, k := range keys {
		go func() {
			m[k] = i // want "writes m"
		}()
	}
	return m
}

// Positive: the loop reassigns cur; the goroutine reads a moving target.
func stale(items []int) {
	var cur int
	var wg sync.WaitGroup
	for _, it := range items {
		cur = it
		wg.Add(1)
		go func() {
			defer wg.Done()
			use(cur) // want "reads cur"
		}()
	}
	wg.Wait()
}

// Positive: runctl.Spawn is a spawn site like `go`.
func spawnLoop(items []int) {
	n := 0
	for range items {
		runctl.Spawn("worker", nil, func() {
			n++ // want "writes n"
		})
	}
	use(n)
}

// Negative: per-slot slice writes — each iteration owns its index.
func collect(items []int) []int {
	out := make([]int, len(items))
	var wg sync.WaitGroup
	for i, it := range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i] = it * 2
		}()
	}
	wg.Wait()
	return out
}

// Negative: writes under a mutex held inside the goroutine.
func guarded(items []int) int {
	var mu sync.Mutex
	sum := 0
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			sum += it
			mu.Unlock()
		}()
	}
	wg.Wait()
	return sum
}

// Negative: atomic adds are synchronization.
func counted(items []int) int64 {
	var n int64
	var wg sync.WaitGroup
	for range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			atomic.AddInt64(&n, 1)
		}()
	}
	wg.Wait()
	return n
}

// Negative: Go 1.22 loop variables are per-iteration.
func perIteration(items []int) {
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			use(it)
		}()
	}
	wg.Wait()
}

// Negative: a single goroutine outside any loop has no iteration race.
func single() int {
	n := 0
	done := make(chan struct{})
	go func() {
		n = 1
		close(done)
	}()
	<-done
	return n
}

// Positive: one scratch arena acquired outside the loop and appended to
// by every worker — the classic pooled-buffer misuse the CSR matcher's
// per-worker arenas exist to avoid.
func sharedArena(items []int) {
	pool := sync.Pool{New: func() any { return new([]int) }}
	scratch := pool.Get().(*[]int)
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			*scratch = append(*scratch, it) // want "writes scratch"
		}()
	}
	wg.Wait()
	pool.Put(scratch)
}

// embeddings is the miners' flat embedding-list shape: a parallel gid
// list plus one arena slice holding fixed-stride node tuples.
type embeddings struct {
	gids []int
	flat []int
}

// Positive: every worker extends one shared embedding list — the
// append-race the per-worker arenas in the CSR matcher exist to avoid.
func harvest(hosts [][]int) embeddings {
	var embs embeddings
	var wg sync.WaitGroup
	for gid, nodes := range hosts {
		wg.Add(1)
		go func() {
			defer wg.Done()
			embs.flat = append(embs.flat, nodes...) // want "writes embs"
		}()
		use(gid)
	}
	wg.Wait()
	return embs
}

// Negative: one embedding list per gid slot, each iteration owning its
// index; the lists are merged after the join.
func harvestPerSlot(hosts [][]int) []embeddings {
	lists := make([]embeddings, len(hosts))
	var wg sync.WaitGroup
	for gid, nodes := range hosts {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lists[gid] = embeddings{gids: []int{gid}, flat: nodes}
		}()
	}
	wg.Wait()
	return lists
}

// Positive: a shared occurrence map keyed by pattern, stored to from
// every worker without synchronization.
func occurrences(patterns []string) map[string][]int {
	occ := map[string][]int{}
	var wg sync.WaitGroup
	for i, p := range patterns {
		wg.Add(1)
		go func() {
			defer wg.Done()
			occ[p] = append(occ[p], i) // want "writes occ"
		}()
	}
	wg.Wait()
	return occ
}

// Negative: each worker draws its own arena from the pool and returns
// it; the pool itself is only read (method calls), never reassigned.
func pooledPerWorker(items []int) {
	pool := sync.Pool{New: func() any { return new([]int) }}
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := pool.Get().(*[]int)
			*buf = append((*buf)[:0], it)
			use((*buf)[0])
			pool.Put(buf)
		}()
	}
	wg.Wait()
}
