// Package store is the fsyncclose corpus for the segment-store scope:
// its base name places it in the durability scope, like the real
// persistent segment store. The idioms mirror segment and manifest
// writers — write, Sync, Close, Rename — where a dropped error breaks
// the "manifest-named means fully on disk" contract.
package store

import (
	"errors"
	"os"
)

// Positive: a segment writer that fires and forgets its fsync — the
// segment may be named by the manifest without ever reaching disk.
func writeSegment(path string, payload []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	_, err = f.Write(payload)
	f.Sync()        // want "discarded (*os.File).Sync error"
	defer f.Close() // want "defer discards the Close error on a writable file"
	return err
}

// Positive: a manifest temp file whose Close error is blanked — the
// delayed write-back error vanishes right before the Rename commits.
func replaceManifest(dir string, payload []byte) error {
	f, err := os.CreateTemp(dir, "manifest-*")
	if err != nil {
		return err
	}
	if _, err := f.Write(payload); err != nil {
		f.Close() // want "discarded Close error on a writable file"
		return err
	}
	_ = f.Sync()  // want "blank-assigned (*os.File).Sync error"
	_ = f.Close() // want "blank-assigned Close error on a writable file"
	return os.Rename(f.Name(), dir+"/manifest.json")
}

// Positive: Sync on a struct-held segment handle.
type segmentWriter struct{ f *os.File }

func (w *segmentWriter) flush() {
	w.f.Sync() // want "discarded (*os.File).Sync error"
}

// Negative: the sanctioned pattern — every Sync and Close error is
// propagated, with Close joined onto the failure path.
func writeSegmentDurably(path string, payload []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(payload); err != nil {
		return errors.Join(err, f.Close())
	}
	if err := f.Sync(); err != nil {
		return errors.Join(err, f.Close())
	}
	return f.Close()
}

// Negative: a read-only segment load has nothing to lose on Close.
func readSegment(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, 64)
	n, err := f.Read(buf)
	return buf[:n], err
}
