package analysis

import (
	"go/ast"
	"go/types"
)

// WallClock forbids wall-clock reads and unseeded global randomness in
// deterministic paths. A canonical code, fingerprint, or cache key that
// folds in time.Now (or draws from the shared math/rand source, which
// is seeded randomly at process start) differs between runs, silently
// breaking result caching, request coalescing, and the reproducibility
// of mined pattern sets. Deadline handling belongs in runctl, which owns
// the clock; code that genuinely needs randomness must thread an
// explicitly seeded *rand.Rand.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc: "forbids time.Now/Since/Until and unseeded math/rand in deterministic " +
		"packages (dfscode, graph, feature, fvmine, core/confighash.go)",
	Run: runWallClock,
}

var wallClockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// seededRandFuncs are the math/rand constructors that are fine anywhere:
// they build an explicitly seeded generator instead of drawing from the
// global source.
var seededRandFuncs = map[string]bool{
	"New":       true,
	"NewSource": true,
}

func runWallClock(pass *Pass) error {
	for _, file := range pass.Files {
		if !pass.inWallClockScope(file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.objOf(sel.Sel).(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			// Methods (e.g. (*rand.Rand).Intn) are allowed: only
			// package-level functions reach the global clock/source.
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if wallClockFuncs[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"time.%s in deterministic path; timing belongs in runctl, not in canonical output",
						fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if !seededRandFuncs[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"unseeded rand.%s in deterministic path; thread an explicit rand.New(rand.NewSource(seed))",
						fn.Name())
				}
			}
			return true
		})
	}
	return nil
}
