// Package assign implements the Hungarian (Kuhn-Munkres) algorithm for
// optimal assignment, the exact solver behind the optimal-assignment
// graph kernel baseline (Fröhlich et al., substitution 4 in DESIGN.md).
package assign

import "math"

// MaxSum solves the maximum-weight assignment problem for an n×m score
// matrix (rows to columns, injective): it returns the column assigned to
// each row (-1 when n > m leaves a row unassigned) and the total score.
// Complexity O(max(n,m)^3).
func MaxSum(score [][]float64) (assignment []int, total float64) {
	n := len(score)
	if n == 0 {
		return nil, 0
	}
	m := len(score[0])
	size := n
	if m > size {
		size = m
	}
	// Convert to a square min-cost matrix: cost = maxScore - score,
	// padding with maxScore (zero benefit).
	maxScore := math.Inf(-1)
	for i := range score {
		if len(score[i]) != m {
			panic("assign: ragged score matrix")
		}
		for _, s := range score[i] {
			if s > maxScore {
				maxScore = s
			}
		}
	}
	if math.IsInf(maxScore, -1) {
		maxScore = 0
	}
	cost := make([][]float64, size)
	for i := range cost {
		cost[i] = make([]float64, size)
		for j := range cost[i] {
			if i < n && j < m {
				cost[i][j] = maxScore - score[i][j]
			} else {
				cost[i][j] = maxScore
			}
		}
	}
	cols := minCostAssign(cost)
	assignment = make([]int, n)
	for i := range assignment {
		assignment[i] = -1
	}
	for i := 0; i < n; i++ {
		j := cols[i]
		if j < m {
			assignment[i] = j
			total += score[i][j]
		}
	}
	return assignment, total
}

// minCostAssign solves the square min-cost assignment with the O(n^3)
// shortest-augmenting-path formulation (Jonker-Volgenant style potentials).
// Returns, for each row, its assigned column.
func minCostAssign(a [][]float64) []int {
	n := len(a)
	const inf = math.MaxFloat64
	// 1-based potentials and matching arrays, classic formulation.
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	p := make([]int, n+1) // p[j] = row matched to column j
	way := make([]int, n+1)
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := 0; j <= n; j++ {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := a[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
			if j0 == 0 {
				break
			}
		}
	}
	rows := make([]int, n)
	for j := 1; j <= n; j++ {
		if p[j] > 0 {
			rows[p[j]-1] = j - 1
		}
	}
	return rows
}
