package assign

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMaxSumIdentity(t *testing.T) {
	score := [][]float64{
		{10, 1, 1},
		{1, 10, 1},
		{1, 1, 10},
	}
	asg, total := MaxSum(score)
	if total != 30 {
		t.Errorf("total = %f; want 30", total)
	}
	for i, j := range asg {
		if i != j {
			t.Errorf("row %d assigned %d; want %d", i, j, i)
		}
	}
}

func TestMaxSumAntiDiagonal(t *testing.T) {
	score := [][]float64{
		{1, 9},
		{9, 1},
	}
	asg, total := MaxSum(score)
	if total != 18 || asg[0] != 1 || asg[1] != 0 {
		t.Errorf("asg=%v total=%f; want cross assignment 18", asg, total)
	}
}

func TestMaxSumGreedyIsSuboptimal(t *testing.T) {
	// Greedy would take (0,0)=10 then (1,1)=1 for 11; optimal is
	// (0,1)+(1,0) = 9+9 = 18.
	score := [][]float64{
		{10, 9},
		{9, 1},
	}
	_, total := MaxSum(score)
	if total != 18 {
		t.Errorf("total = %f; want 18 (optimal beats greedy)", total)
	}
}

func TestMaxSumRectangular(t *testing.T) {
	// 2 rows, 3 columns: both rows assigned, one column unused.
	score := [][]float64{
		{1, 5, 3},
		{4, 6, 2},
	}
	asg, total := MaxSum(score)
	// Optimal: row0->col1 (5) + row1->col0 (4) = 9.
	if total != 9 {
		t.Errorf("total = %f; want 9", total)
	}
	if asg[0] == asg[1] {
		t.Error("two rows share a column")
	}
	// More rows than columns: one row left unassigned.
	tall := [][]float64{{5}, {7}, {3}}
	asgT, totalT := MaxSum(tall)
	if totalT != 7 {
		t.Errorf("tall total = %f; want 7", totalT)
	}
	assigned := 0
	for _, j := range asgT {
		if j >= 0 {
			assigned++
		}
	}
	if assigned != 1 {
		t.Errorf("%d rows assigned; want 1", assigned)
	}
}

func TestMaxSumEmpty(t *testing.T) {
	asg, total := MaxSum(nil)
	if asg != nil || total != 0 {
		t.Errorf("empty: asg=%v total=%f", asg, total)
	}
}

func TestMaxSumNegativeScores(t *testing.T) {
	score := [][]float64{
		{-1, -5},
		{-5, -2},
	}
	_, total := MaxSum(score)
	if total != -3 {
		t.Errorf("total = %f; want -3", total)
	}
}

// bruteMax enumerates all permutations for square matrices up to 7x7.
func bruteMax(score [][]float64) float64 {
	n := len(score)
	perm := make([]int, n)
	used := make([]bool, n)
	best := math.Inf(-1)
	var rec func(i int, sum float64)
	rec = func(i int, sum float64) {
		if i == n {
			if sum > best {
				best = sum
			}
			return
		}
		for j := 0; j < n; j++ {
			if !used[j] {
				used[j] = true
				perm[i] = j
				rec(i+1, sum+score[i][j])
				used[j] = false
			}
		}
	}
	rec(0, 0)
	return best
}

func TestPropertyMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(95))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(6)
		score := make([][]float64, n)
		for i := range score {
			score[i] = make([]float64, n)
			for j := range score[i] {
				score[i][j] = math.Round(rr.Float64()*20-5) / 2
			}
		}
		_, total := MaxSum(score)
		want := bruteMax(score)
		if math.Abs(total-want) > 1e-9 {
			t.Logf("total %f != brute %f for %v", total, want, score)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: r}); err != nil {
		t.Error(err)
	}
}

func TestAssignmentIsInjective(t *testing.T) {
	r := rand.New(rand.NewSource(96))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(8)
		m := 1 + rr.Intn(8)
		score := make([][]float64, n)
		for i := range score {
			score[i] = make([]float64, m)
			for j := range score[i] {
				score[i][j] = rr.Float64()
			}
		}
		asg, _ := MaxSum(score)
		seen := map[int]bool{}
		assigned := 0
		for _, j := range asg {
			if j < 0 {
				continue
			}
			if j >= m || seen[j] {
				return false
			}
			seen[j] = true
			assigned++
		}
		want := n
		if m < n {
			want = m
		}
		return assigned == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: r}); err != nil {
		t.Error(err)
	}
}
