// Package chem is the synthetic chemistry substrate standing in for the
// paper's NCI/NIH DTP-AIDS screen and eleven PubChem anti-cancer screens
// (see DESIGN.md, substitution 1). It provides a 58-symbol atom alphabet
// whose frequency profile matches the published statistics (top five
// atoms cover ~99% of atom mass, Fig 4), a random molecule generator
// calibrated to ~25 atoms and ~27 bonds per molecule with a ~70% benzene
// frequency, a library of planted "drug core" motifs analogous to the
// structures of Figs 13-15, and a catalog reproducing the twelve paper
// datasets at configurable scale.
package chem

import (
	"graphsig/internal/graph"
)

// Bond labels. Bonds are edge labels on molecule graphs.
const (
	BondSingle graph.Label = iota
	BondDouble
	BondTriple
	BondAromatic
)

// BondName returns a chemistry-style rendering of a bond label.
func BondName(l graph.Label) string {
	switch l {
	case BondSingle:
		return "-"
	case BondDouble:
		return "="
	case BondTriple:
		return "#"
	case BondAromatic:
		return ":"
	}
	return "?"
}

// atomTable lists the 58 atom symbols of the substrate with their
// sampling weights. The top five (C, O, N, S, Cl) carry ~99% of the mass,
// reproducing the cumulative-coverage shape of Fig 4; the long tail
// decays geometrically. Sb and Bi (the Fig 15 pair) appear in the tail
// and otherwise enter molecules only through planted motifs.
var atomTable = []struct {
	symbol string
	weight float64
}{
	{"C", 7400}, {"O", 1150}, {"N", 1050}, {"S", 200}, {"Cl", 100},
	{"F", 14}, {"Br", 12}, {"P", 10}, {"I", 8}, {"Si", 7},
	{"B", 6}, {"Se", 5}, {"Sn", 4.5}, {"Pt", 4}, {"As", 3.6},
	{"Hg", 3.2}, {"Fe", 2.9}, {"Zn", 2.6}, {"Cu", 2.3}, {"Mn", 2.1},
	{"Mg", 1.9}, {"Ca", 1.7}, {"Na", 1.5}, {"K", 1.4}, {"Li", 1.2},
	{"Al", 1.1}, {"Cr", 1.0}, {"Co", 0.9}, {"Ni", 0.85}, {"Pd", 0.8},
	{"Ag", 0.75}, {"Cd", 0.7}, {"Au", 0.65}, {"Pb", 0.6}, {"Ti", 0.55},
	{"Sb", 0.5}, {"Bi", 0.5}, {"V", 0.45}, {"Mo", 0.4}, {"W", 0.38},
	{"Ru", 0.35}, {"Rh", 0.32}, {"Os", 0.3}, {"Ir", 0.28}, {"Ga", 0.26},
	{"Ge", 0.24}, {"In", 0.22}, {"Tl", 0.2}, {"Te", 0.19}, {"Ba", 0.18},
	{"Sr", 0.17}, {"Zr", 0.16}, {"Nb", 0.15}, {"Ta", 0.14}, {"Re", 0.13},
	{"U", 0.12}, {"La", 0.11}, {"Ce", 0.1},
}

// NumAtomTypes is the size of the atom alphabet (58, as in the AIDS
// screen).
const NumAtomTypes = 58

// Alphabet returns a fresh atom alphabet with all 58 symbols interned in
// frequency-rank order, so atom labels are stable across runs.
func Alphabet() *graph.Alphabet {
	a := graph.NewAlphabet()
	for _, row := range atomTable {
		a.Intern(row.symbol)
	}
	return a
}

// Atom returns the label for an atom symbol in the standard alphabet
// ordering (panics on unknown symbols — the set is fixed).
func Atom(symbol string) graph.Label {
	for i, row := range atomTable {
		if row.symbol == symbol {
			return graph.Label(i)
		}
	}
	panic("chem: unknown atom symbol " + symbol)
}
