package chem

import (
	"sort"
	"testing"

	"graphsig/internal/feature"
	"graphsig/internal/graph"
	"graphsig/internal/isomorph"
)

func TestAlphabetHas58Atoms(t *testing.T) {
	a := Alphabet()
	if a.Len() != NumAtomTypes || a.Len() != 58 {
		t.Fatalf("alphabet has %d symbols; want 58", a.Len())
	}
	if a.Name(Atom("C")) != "C" || a.Name(Atom("Bi")) != "Bi" {
		t.Error("Atom/Name round trip failed")
	}
}

func TestAtomUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Atom("Xx")
}

func TestBondName(t *testing.T) {
	for l, want := range map[graph.Label]string{
		BondSingle: "-", BondDouble: "=", BondTriple: "#", BondAromatic: ":", 99: "?",
	} {
		if got := BondName(l); got != want {
			t.Errorf("BondName(%d) = %q; want %q", l, got, want)
		}
	}
}

func TestMotifLibrary(t *testing.T) {
	names := MotifNames()
	if len(names) != 10 {
		t.Fatalf("library has %d motifs; want 10", len(names))
	}
	for _, name := range names {
		m := MotifByName(name)
		g := m.Build()
		if g.NumNodes() < 4 {
			t.Errorf("%s: only %d nodes", name, g.NumNodes())
		}
		if !g.IsConnected() {
			t.Errorf("%s: not connected", name)
		}
		// Build returns fresh copies.
		g2 := m.Build()
		g2.AddNode(Atom("C"))
		if g.NumNodes() == g2.NumNodes() {
			t.Errorf("%s: Build aliases", name)
		}
	}
}

func TestSbBiCoresDifferOnlyInMetal(t *testing.T) {
	sb, bi := SbCore(), BiCore()
	if sb.NumNodes() != bi.NumNodes() || sb.NumEdges() != bi.NumEdges() {
		t.Fatal("Sb/Bi scaffolds differ structurally")
	}
	diff := 0
	for v := 0; v < sb.NumNodes(); v++ {
		if sb.NodeLabel(v) != bi.NodeLabel(v) {
			diff++
			if sb.NodeLabel(v) != Atom("Sb") || bi.NodeLabel(v) != Atom("Bi") {
				t.Errorf("node %d differs but is not the metal", v)
			}
		}
	}
	if diff != 1 {
		t.Errorf("%d differing nodes; want exactly 1 (the metal)", diff)
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	a := NewGenerator(42).Molecule()
	b := NewGenerator(42).Molecule()
	if a.String() != b.String() {
		t.Error("same seed produced different molecules")
	}
	c := NewGenerator(43).Molecule()
	if a.String() == c.String() {
		t.Error("different seeds produced identical molecules")
	}
}

func TestGeneratorCalibration(t *testing.T) {
	gen := NewGenerator(7)
	const n = 400
	atoms, bonds, benzenes := 0, 0, 0
	benzene := Benzene()
	for i := 0; i < n; i++ {
		m := gen.Molecule()
		if !m.IsConnected() {
			t.Fatalf("molecule %d disconnected", i)
		}
		atoms += m.NumNodes()
		bonds += m.NumEdges()
		if isomorph.SubgraphIsomorphic(benzene, m) {
			benzenes++
		}
	}
	meanAtoms := float64(atoms) / n
	meanBonds := float64(bonds) / n
	if meanAtoms < 20 || meanAtoms > 31 {
		t.Errorf("mean atoms = %.1f; want ~25", meanAtoms)
	}
	if meanBonds < meanAtoms-1 || meanBonds > meanAtoms+6 {
		t.Errorf("mean bonds = %.1f vs atoms %.1f; want slightly above", meanBonds, meanAtoms)
	}
	freq := float64(benzenes) / n
	if freq < 0.55 || freq > 0.92 {
		t.Errorf("benzene frequency = %.2f; want ~0.7", freq)
	}
}

func TestAtomDistributionTop5Coverage(t *testing.T) {
	gen := NewGenerator(8)
	var db []*graph.Graph
	for i := 0; i < 300; i++ {
		db = append(db, gen.Molecule())
	}
	profile := feature.AtomProfile(db, Alphabet())
	if len(profile) < 5 {
		t.Fatalf("only %d atom types in sample", len(profile))
	}
	// Fig 4's property: the top five atoms cover ~99% of atom mass.
	if profile[4].CumulativePct < 97 {
		t.Errorf("top-5 coverage = %.1f%%; want >= 97%%", profile[4].CumulativePct)
	}
	if profile[0].Name != "C" {
		t.Errorf("most frequent atom = %s; want C", profile[0].Name)
	}
}

func TestImplantPreservesMotif(t *testing.T) {
	gen := NewGenerator(9)
	for _, name := range MotifNames() {
		m := gen.Molecule()
		motif := MotifByName(name)
		before := m.NumNodes()
		gen.Implant(m, motif)
		core := motif.Build()
		if m.NumNodes() != before+core.NumNodes() {
			t.Errorf("%s: implant changed node count wrongly", name)
		}
		if !m.IsConnected() {
			t.Errorf("%s: implant disconnected molecule", name)
		}
		if !isomorph.SubgraphIsomorphic(core, m) {
			t.Errorf("%s: core not found after implant", name)
		}
	}
}

func TestGenerateDataset(t *testing.T) {
	spec := AIDSSpec()
	d := GenerateN(spec, 300)
	if len(d.Graphs) != 300 || len(d.Active) != 300 {
		t.Fatalf("got %d graphs, %d labels", len(d.Graphs), len(d.Active))
	}
	na := d.NumActive()
	if na < 3 || na > 45 {
		t.Errorf("actives = %d of 300; want ~5%%", na)
	}
	if len(d.Actives()) != na || len(d.Inactives()) != 300-na {
		t.Error("Actives/Inactives split inconsistent")
	}
	// Every active molecule carries at least one planted core.
	cores := []*graph.Graph{AZTCore(), FDTCore(), NitroPhenylCore()}
	for i, g := range d.Graphs {
		if !d.Active[i] {
			continue
		}
		found := false
		for _, c := range cores {
			if isomorph.SubgraphIsomorphic(c, g) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("active molecule %d carries no core", i)
		}
	}
	// Graph IDs are the dataset indices.
	for i, g := range d.Graphs {
		if g.ID != i {
			t.Fatalf("graph %d has ID %d", i, g.ID)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := GenerateN(AIDSSpec(), 50)
	b := GenerateN(AIDSSpec(), 50)
	for i := range a.Graphs {
		if a.Graphs[i].String() != b.Graphs[i].String() || a.Active[i] != b.Active[i] {
			t.Fatalf("generation not deterministic at %d", i)
		}
	}
}

func TestGenerateScale(t *testing.T) {
	spec := AIDSSpec()
	d := Generate(spec, 0.001) // 43905 * 0.001 ≈ 44 -> floor 50
	if len(d.Graphs) != 50 {
		t.Errorf("scaled size = %d; want 50 (floor)", len(d.Graphs))
	}
	d2 := Generate(spec, 0.01)
	if len(d2.Graphs) != 439 {
		t.Errorf("scaled size = %d; want 439", len(d2.Graphs))
	}
}

func TestCatalogMatchesTableV(t *testing.T) {
	specs := Catalog()
	if len(specs) != 12 {
		t.Fatalf("catalog has %d specs; want 12", len(specs))
	}
	wantSizes := map[string]int{
		"AIDS": 43905, "MCF-7": 28972, "MOLT-4": 41810, "NCI-H23": 42164,
		"OVCAR-8": 42386, "P388": 46440, "PC-3": 28679, "SF-295": 40350,
		"SN12C": 41855, "SW-620": 42405, "UACC-257": 41864, "Yeast": 83933,
	}
	var names []string
	for _, s := range specs {
		names = append(names, s.Name)
		if s.PaperSize != wantSizes[s.Name] {
			t.Errorf("%s paper size = %d; want %d", s.Name, s.PaperSize, wantSizes[s.Name])
		}
		if s.ActivePct <= 0 || s.ActivePct > 0.1 {
			t.Errorf("%s active pct = %f", s.Name, s.ActivePct)
		}
		if len(s.Motifs) == 0 {
			t.Errorf("%s has no motifs", s.Name)
		}
	}
	sort.Strings(names)
	if len(names) != 12 {
		t.Error("duplicate dataset names")
	}
}

func TestMOLT4CarriesRareMetalPair(t *testing.T) {
	// The Sb and Bi cores must both appear in MOLT-4 actives, and at
	// below 1% overall frequency (the Fig 15 scalability claim).
	var molt DatasetSpec
	for _, s := range CancerSpecs() {
		if s.Name == "MOLT-4" {
			molt = s
		}
	}
	d := GenerateN(molt, 2000)
	sb, bi := SbCore(), BiCore()
	sbCount, biCount := 0, 0
	for _, g := range d.Graphs {
		if isomorph.SubgraphIsomorphic(sb, g) {
			sbCount++
		}
		if isomorph.SubgraphIsomorphic(bi, g) {
			biCount++
		}
	}
	if sbCount == 0 || biCount == 0 {
		t.Fatalf("metal cores absent: Sb=%d Bi=%d", sbCount, biCount)
	}
	if float64(sbCount)/2000 >= 0.01 || float64(biCount)/2000 >= 0.01 {
		t.Errorf("metal core frequency not below 1%%: Sb=%d Bi=%d of 2000", sbCount, biCount)
	}
}

func TestStats(t *testing.T) {
	d := GenerateN(AIDSSpec(), 60)
	s := d.Stats()
	if s == "" || d.Spec.Name != "AIDS" {
		t.Errorf("Stats = %q", s)
	}
	empty := &Dataset{Spec: DatasetSpec{Name: "x"}}
	if empty.Stats() != "x: empty" {
		t.Errorf("empty stats = %q", empty.Stats())
	}
}

func TestFormula(t *testing.T) {
	b := Benzene()
	if got := Formula(b); got != "C6" {
		t.Errorf("benzene formula = %q; want C6", got)
	}
	azt := AZTCore()
	f := Formula(azt)
	if f == "" || f[0] != 'C' {
		t.Errorf("AZT formula = %q; want C-first Hill form", f)
	}
	// Sb core: benzene ring + C + 3 O + Sb = C7O3Sb... check elements.
	sb := Formula(SbCore())
	for _, sym := range []string{"C7", "O4", "Sb"} {
		if !contains(sb, sym) {
			t.Errorf("Sb core formula %q missing %q", sb, sym)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestDescribe(t *testing.T) {
	s := Describe(Benzene())
	if s.Atoms != 6 || s.Bonds != 6 || s.Rings != 1 || s.AromaticBonds != 6 {
		t.Errorf("benzene stats = %+v", s)
	}
	p := Describe(PhosphoniumCore())
	if p.Rings != 3 {
		t.Errorf("phosphonium rings = %d; want 3", p.Rings)
	}
}

func TestRespectValenceCapsDegrees(t *testing.T) {
	gen := NewGenerator(60)
	gen.RespectValence = true
	violations := 0
	for i := 0; i < 150; i++ {
		m := gen.Molecule()
		if !m.IsConnected() {
			t.Fatalf("molecule %d disconnected", i)
		}
		for v := 0; v < m.NumNodes(); v++ {
			// Interior chain growth and anchored fragments honor the
			// caps; the univalent-atom cap is a hard limit except where
			// a pre-placed halogen received a chain (resampled, so rare).
			if m.Degree(v) > maxDegree(m.NodeLabel(v)) {
				violations++
			}
		}
	}
	if violations > 0 {
		t.Errorf("%d valence violations with RespectValence", violations)
	}
}

func TestRespectValenceOffAllowsDenseNodes(t *testing.T) {
	// The default generator is NOT valence-constrained (documented);
	// this guard only asserts the flag actually changes behavior.
	on := NewGenerator(61)
	on.RespectValence = true
	off := NewGenerator(61)
	a, b := on.Molecule(), off.Molecule()
	if a.String() == b.String() {
		t.Skip("same structure for this seed; flag effect not observable here")
	}
}

func TestMaxDegreeTable(t *testing.T) {
	if maxDegree(Atom("C")) != 4 || maxDegree(Atom("O")) != 2 ||
		maxDegree(Atom("Cl")) != 1 || maxDegree(Atom("Sb")) != 5 {
		t.Error("degree caps wrong")
	}
	if maxDegree(graph.Label(999)) != 6 {
		t.Error("out-of-table default wrong")
	}
}
