package chem

import (
	"fmt"

	"graphsig/internal/graph"
)

// MotifPlan plants one motif into a dataset with class-conditional
// probabilities.
type MotifPlan struct {
	// Motif is the planted core by library name (see MotifByName).
	Motif string
	// ActiveProb is the probability an active molecule carries the core.
	ActiveProb float64
	// InactiveProb is the background rate in inactive molecules.
	InactiveProb float64
}

// DatasetSpec describes one synthetic screen.
type DatasetSpec struct {
	// Name matches the paper dataset it stands in for.
	Name string
	// Description mirrors Table V's tumor descriptions.
	Description string
	// PaperSize is the molecule count of the real screen (Table V).
	PaperSize int
	// ActivePct is the fraction of active molecules (~5% in the screens).
	ActivePct float64
	// Motifs are the planted active cores.
	Motifs []MotifPlan
	// Seed drives generation deterministically.
	Seed int64
}

// Dataset is a generated screen: molecules plus activity labels.
type Dataset struct {
	Spec   DatasetSpec
	Graphs []*graph.Graph
	// Active[i] reports whether Graphs[i] is an active compound.
	Active []bool
	// Alphabet names atom labels for reporting.
	Alphabet *graph.Alphabet
}

// Actives returns the active molecules (shared backing graphs).
func (d *Dataset) Actives() []*graph.Graph {
	var out []*graph.Graph
	for i, g := range d.Graphs {
		if d.Active[i] {
			out = append(out, g)
		}
	}
	return out
}

// Inactives returns the inactive molecules.
func (d *Dataset) Inactives() []*graph.Graph {
	var out []*graph.Graph
	for i, g := range d.Graphs {
		if !d.Active[i] {
			out = append(out, g)
		}
	}
	return out
}

// NumActive returns the number of active molecules.
func (d *Dataset) NumActive() int {
	n := 0
	for _, a := range d.Active {
		if a {
			n++
		}
	}
	return n
}

// Stats summarizes the dataset for reports.
func (d *Dataset) Stats() string {
	atoms, bonds := 0, 0
	for _, g := range d.Graphs {
		atoms += g.NumNodes()
		bonds += g.NumEdges()
	}
	n := len(d.Graphs)
	if n == 0 {
		return fmt.Sprintf("%s: empty", d.Spec.Name)
	}
	return fmt.Sprintf("%s: %d molecules (%d active), avg %.1f atoms / %.1f bonds",
		d.Spec.Name, n, d.NumActive(), float64(atoms)/float64(n), float64(bonds)/float64(n))
}

// Generate materializes the spec at the given scale: the molecule count
// is max(50, round(PaperSize·scale)). scale 1.0 reproduces paper-size
// screens; the experiment harness defaults to a laptop-friendly scale.
func Generate(spec DatasetSpec, scale float64) *Dataset {
	n := int(float64(spec.PaperSize)*scale + 0.5)
	if n < 50 {
		n = 50
	}
	return GenerateN(spec, n)
}

// GenerateN materializes the spec with exactly n molecules.
func GenerateN(spec DatasetSpec, n int) *Dataset {
	gen := NewGenerator(spec.Seed)
	d := &Dataset{
		Spec:     spec,
		Graphs:   make([]*graph.Graph, 0, n),
		Active:   make([]bool, 0, n),
		Alphabet: Alphabet(),
	}
	for i := 0; i < n; i++ {
		m := gen.Molecule()
		active := gen.rng.Float64() < spec.ActivePct
		planted := false
		for _, plan := range spec.Motifs {
			p := plan.InactiveProb
			if active {
				p = plan.ActiveProb
			}
			if gen.rng.Float64() < p {
				gen.Implant(m, MotifByName(plan.Motif))
				planted = true
			}
		}
		// Every active compound carries at least one core: plant the
		// first motif when the dice left it empty.
		if active && !planted && len(spec.Motifs) > 0 {
			gen.Implant(m, MotifByName(spec.Motifs[0].Motif))
		}
		m.ID = i
		d.Graphs = append(d.Graphs, m)
		d.Active = append(d.Active, active)
	}
	return d
}

// AIDSSpec returns the DTP-AIDS antiviral screen stand-in: azido-
// pyrimidine (AZT) and fluoro (FDT) cores in the active class, the
// structures GraphSig recovers in Fig 13.
func AIDSSpec() DatasetSpec {
	return DatasetSpec{
		Name:        "AIDS",
		Description: "DTP antiviral screen",
		PaperSize:   43905,
		ActivePct:   0.05,
		Motifs: []MotifPlan{
			{Motif: "azt", ActiveProb: 0.55, InactiveProb: 0.002},
			{Motif: "fdt", ActiveProb: 0.30, InactiveProb: 0.001},
			{Motif: "nitrophenyl", ActiveProb: 0.15, InactiveProb: 0.01},
		},
		Seed: 1,
	}
}

// CancerSpecs returns the eleven anti-cancer screen stand-ins of Table V.
// MOLT-4 carries the antimony/bismuth pair of Fig 15 (each below 1%
// overall frequency); UACC-257 carries the phosphonium salt of Fig 14.
func CancerSpecs() []DatasetSpec {
	return []DatasetSpec{
		{
			Name: "MCF-7", Description: "Breast", PaperSize: 28972, ActivePct: 0.05,
			Motifs: []MotifPlan{
				{Motif: "nitrophenyl", ActiveProb: 0.5, InactiveProb: 0.005},
				{Motif: "quinone", ActiveProb: 0.3, InactiveProb: 0.004},
			},
			Seed: 101,
		},
		{
			Name: "MOLT-4", Description: "Leukemia", PaperSize: 41810, ActivePct: 0.05,
			Motifs: []MotifPlan{
				{Motif: "sulfonamide", ActiveProb: 0.5, InactiveProb: 0.006},
				{Motif: "antimony", ActiveProb: 0.12, InactiveProb: 0.0005},
				{Motif: "bismuth", ActiveProb: 0.12, InactiveProb: 0.0005},
			},
			Seed: 102,
		},
		{
			Name: "NCI-H23", Description: "Non-Small Cell Lung", PaperSize: 42164, ActivePct: 0.05,
			Motifs: []MotifPlan{
				{Motif: "thiophene", ActiveProb: 0.55, InactiveProb: 0.006},
				{Motif: "chloropyridine", ActiveProb: 0.25, InactiveProb: 0.003},
			},
			Seed: 103,
		},
		{
			Name: "OVCAR-8", Description: "Ovarian", PaperSize: 42386, ActivePct: 0.05,
			Motifs: []MotifPlan{
				{Motif: "quinone", ActiveProb: 0.5, InactiveProb: 0.005},
				{Motif: "sulfonamide", ActiveProb: 0.25, InactiveProb: 0.004},
			},
			Seed: 104,
		},
		{
			Name: "P388", Description: "Leukemia", PaperSize: 46440, ActivePct: 0.05,
			Motifs: []MotifPlan{
				{Motif: "azt", ActiveProb: 0.5, InactiveProb: 0.002},
				{Motif: "nitrophenyl", ActiveProb: 0.3, InactiveProb: 0.008},
			},
			Seed: 105,
		},
		{
			Name: "PC-3", Description: "Prostate", PaperSize: 28679, ActivePct: 0.05,
			Motifs: []MotifPlan{
				{Motif: "chloropyridine", ActiveProb: 0.5, InactiveProb: 0.004},
				{Motif: "thiophene", ActiveProb: 0.25, InactiveProb: 0.006},
			},
			Seed: 106,
		},
		{
			Name: "SF-295", Description: "Central Nervous System", PaperSize: 40350, ActivePct: 0.05,
			Motifs: []MotifPlan{
				{Motif: "sulfonamide", ActiveProb: 0.55, InactiveProb: 0.005},
				{Motif: "quinone", ActiveProb: 0.2, InactiveProb: 0.004},
			},
			Seed: 107,
		},
		{
			Name: "SN12C", Description: "Renal", PaperSize: 41855, ActivePct: 0.05,
			Motifs: []MotifPlan{
				{Motif: "nitrophenyl", ActiveProb: 0.5, InactiveProb: 0.006},
				{Motif: "thiophene", ActiveProb: 0.3, InactiveProb: 0.005},
			},
			Seed: 108,
		},
		{
			Name: "SW-620", Description: "Colon", PaperSize: 42405, ActivePct: 0.05,
			Motifs: []MotifPlan{
				{Motif: "quinone", ActiveProb: 0.5, InactiveProb: 0.005},
				{Motif: "chloropyridine", ActiveProb: 0.25, InactiveProb: 0.003},
			},
			Seed: 109,
		},
		{
			Name: "UACC-257", Description: "Melanoma", PaperSize: 41864, ActivePct: 0.05,
			Motifs: []MotifPlan{
				{Motif: "phosphonium", ActiveProb: 0.45, InactiveProb: 0.001},
				{Motif: "sulfonamide", ActiveProb: 0.3, InactiveProb: 0.005},
			},
			Seed: 110,
		},
		{
			Name: "Yeast", Description: "Yeast anticancer", PaperSize: 83933, ActivePct: 0.05,
			Motifs: []MotifPlan{
				{Motif: "thiophene", ActiveProb: 0.5, InactiveProb: 0.006},
				{Motif: "nitrophenyl", ActiveProb: 0.25, InactiveProb: 0.007},
			},
			Seed: 111,
		},
	}
}

// Catalog returns all twelve dataset specs: AIDS first, then the eleven
// cancer screens in Table V order.
func Catalog() []DatasetSpec {
	return append([]DatasetSpec{AIDSSpec()}, CancerSpecs()...)
}
