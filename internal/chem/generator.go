package chem

import (
	"math"
	"math/rand"

	"graphsig/internal/graph"
)

// Generator produces random molecules calibrated to the published AIDS
// screen statistics: ~25 atoms and ~27 bonds per molecule, atom mass
// dominated by the top five symbols, and a benzene ring in roughly 70% of
// molecules. All randomness flows from the seed, so a Generator is fully
// reproducible.
type Generator struct {
	rng *rand.Rand
	// cumulative atom sampling distribution.
	cum []float64
	// MeanAtoms is the target mean molecule size (default 25).
	MeanAtoms float64
	// BenzeneProb is the probability a molecule gets a benzene ring
	// (default 0.7, matching the ~70% benzene frequency of Fig 16).
	BenzeneProb float64
	// RespectValence, when set, caps each atom's degree at its element's
	// typical valence (C:4, N:4, O:2, S:6, halogens:1, ...) during
	// growth, producing more chemically plausible skeletons. Off by
	// default: the calibrated statistics and all recorded experiment
	// outputs were produced without it.
	RespectValence bool
}

// maxDegreeTable caps each atom's degree under RespectValence, indexed
// by label (built once from the fixed atom table).
var maxDegreeTable = func() []int {
	caps := make([]int, len(atomTable))
	for i, row := range atomTable {
		switch row.symbol {
		case "C", "N", "Si", "B":
			caps[i] = 4
		case "O":
			caps[i] = 2
		case "S", "Se", "Te":
			caps[i] = 6
		case "P", "As", "Sb", "Bi":
			caps[i] = 5
		case "F", "Cl", "Br", "I":
			caps[i] = 1
		default:
			caps[i] = 6
		}
	}
	return caps
}()

// maxDegree returns the degree cap for an atom under RespectValence.
func maxDegree(l graph.Label) int {
	if int(l) < len(maxDegreeTable) {
		return maxDegreeTable[l]
	}
	return 6
}

// pickAnchor returns a random attachment node, honoring valence caps
// when enabled; -1 means no node can accept another bond.
func (g *Generator) pickAnchor(m *graph.Graph) int {
	if !g.RespectValence {
		return g.rng.Intn(m.NumNodes())
	}
	// Collect nodes with spare valence; sample uniformly among them.
	var open []int
	for v := 0; v < m.NumNodes(); v++ {
		if m.Degree(v) < maxDegree(m.NodeLabel(v)) {
			open = append(open, v)
		}
	}
	if len(open) == 0 {
		return -1
	}
	return open[g.rng.Intn(len(open))]
}

// NewGenerator returns a Generator seeded deterministically.
func NewGenerator(seed int64) *Generator {
	total := 0.0
	for _, row := range atomTable {
		total += row.weight
	}
	cum := make([]float64, len(atomTable))
	run := 0.0
	for i, row := range atomTable {
		run += row.weight / total
		cum[i] = run
	}
	return &Generator{
		rng:         rand.New(rand.NewSource(seed)),
		cum:         cum,
		MeanAtoms:   25,
		BenzeneProb: 0.7,
	}
}

// sampleAtom draws an atom label from the calibrated distribution.
func (g *Generator) sampleAtom() graph.Label {
	x := g.rng.Float64()
	for i, c := range g.cum {
		if x <= c {
			return graph.Label(i)
		}
	}
	return graph.Label(len(g.cum) - 1)
}

// sampleBond draws a chain bond label: mostly single, some double, rare
// triple.
func (g *Generator) sampleBond() graph.Label {
	switch x := g.rng.Float64(); {
	case x < 0.80:
		return BondSingle
	case x < 0.97:
		return BondDouble
	default:
		return BondTriple
	}
}

// Molecule generates one random molecule.
func (g *Generator) Molecule() *graph.Graph {
	// Size: clipped normal around the mean, matching the screen's 25.4
	// average with realistic spread.
	size := int(math.Round(g.MeanAtoms + 7*g.rng.NormFloat64()))
	if size < 8 {
		size = 8
	}
	if size > 3*int(g.MeanAtoms) {
		size = 3 * int(g.MeanAtoms)
	}
	m := graph.New(size+8, size+12)

	// Seed fragment: benzene with probability BenzeneProb, otherwise a
	// short chain.
	if g.rng.Float64() < g.BenzeneProb {
		g.attachBenzene(m, -1)
	} else {
		g.attachChain(m, -1, 2+g.rng.Intn(3))
	}

	// Grow fragments until the size target is met.
	for m.NumNodes() < size {
		anchor := g.pickAnchor(m)
		if anchor < 0 {
			break // every atom is at full valence
		}
		switch x := g.rng.Float64(); {
		case x < 0.05 && size-m.NumNodes() >= 6:
			g.attachBenzene(m, anchor)
		case x < 0.14 && size-m.NumNodes() >= 5:
			g.attachHeteroRing(m, anchor)
		default:
			g.attachChain(m, anchor, 1+g.rng.Intn(3))
		}
	}

	// Occasional extra ring-closing bond for cyclic variety.
	if m.NumNodes() >= 6 && g.rng.Float64() < 0.3 {
		u := g.pickAnchor(m)
		v := g.pickAnchor(m)
		if u >= 0 && v >= 0 && u != v && !m.HasEdge(u, v) {
			m.MustAddEdge(u, v, BondSingle)
		}
	}
	return m
}

// attachBenzene adds an aromatic six-carbon ring, bonded to anchor when
// anchor >= 0.
func (g *Generator) attachBenzene(m *graph.Graph, anchor int) {
	c := Atom("C")
	ids := make([]int, 6)
	for i := range ids {
		ids[i] = m.AddNode(c)
	}
	for i := range ids {
		m.MustAddEdge(ids[i], ids[(i+1)%6], BondAromatic)
	}
	if anchor >= 0 {
		m.MustAddEdge(anchor, ids[0], BondSingle)
	}
}

// attachHeteroRing adds a five- or six-membered ring with one heteroatom.
func (g *Generator) attachHeteroRing(m *graph.Graph, anchor int) {
	n := 5 + g.rng.Intn(2)
	hetero := []string{"N", "O", "S"}[g.rng.Intn(3)]
	ids := make([]int, n)
	for i := range ids {
		sym := "C"
		if i == 0 {
			sym = hetero
		}
		ids[i] = m.AddNode(Atom(sym))
	}
	bond := BondSingle
	if g.rng.Float64() < 0.5 {
		bond = BondAromatic
	}
	for i := range ids {
		m.MustAddEdge(ids[i], ids[(i+1)%n], bond)
	}
	if anchor >= 0 {
		m.MustAddEdge(anchor, ids[1], BondSingle)
	}
}

// attachChain adds a chain of length atoms sampled from the calibrated
// distribution, starting at anchor when anchor >= 0. Under
// RespectValence, interior chain positions avoid univalent atoms.
func (g *Generator) attachChain(m *graph.Graph, anchor, length int) {
	prev := anchor
	for i := 0; i < length; i++ {
		label := g.sampleAtom()
		if g.RespectValence && i < length-1 {
			for try := 0; try < 8 && maxDegree(label) < 2; try++ {
				label = g.sampleAtom()
			}
		}
		v := m.AddNode(label)
		if prev >= 0 {
			m.MustAddEdge(prev, v, g.sampleBond())
		}
		prev = v
	}
}

// Implant grafts a fresh copy of motif onto molecule m via a single bond
// between a random motif node and a random molecule node, in place.
func (g *Generator) Implant(m *graph.Graph, motif Motif) {
	core := motif.Build()
	base := m.NumNodes()
	for v := 0; v < core.NumNodes(); v++ {
		m.AddNode(core.NodeLabel(v))
	}
	for _, e := range core.Edges() {
		m.MustAddEdge(base+e.From, base+e.To, e.Label)
	}
	if base > 0 {
		anchor := g.rng.Intn(base)
		target := base + g.rng.Intn(core.NumNodes())
		m.MustAddEdge(anchor, target, BondSingle)
	}
}
