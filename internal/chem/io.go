package chem

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"graphsig/internal/graph"
)

// Dataset disk format: a gSpan transaction file (<name>.db) written with
// the chemistry alphabet plus a label file (<name>.labels) of
// "<index> <0|1>" lines, as produced by cmd/datagen.

// WriteTo writes the dataset's graph and label files into dir.
func (d *Dataset) WriteTo(dir string) error {
	dbFile, err := os.Create(filepath.Join(dir, d.Spec.Name+".db"))
	if err != nil {
		return err
	}
	defer dbFile.Close()
	if err := graph.WriteDB(dbFile, d.Graphs, d.Alphabet); err != nil {
		return err
	}
	labFile, err := os.Create(filepath.Join(dir, d.Spec.Name+".labels"))
	if err != nil {
		return err
	}
	defer labFile.Close()
	w := bufio.NewWriter(labFile)
	for i, active := range d.Active {
		v := 0
		if active {
			v = 1
		}
		fmt.Fprintf(w, "%d %d\n", i, v)
	}
	return w.Flush()
}

// Load reads a dataset written by WriteTo (or cmd/datagen) from dir.
// Labels are interned through the standard chemistry alphabet so atom
// identities stay stable.
func Load(dir, name string) (*Dataset, error) {
	dbFile, err := os.Open(filepath.Join(dir, name+".db"))
	if err != nil {
		return nil, err
	}
	defer dbFile.Close()
	alpha := Alphabet()
	graphs, err := graph.ReadDB(dbFile, alpha)
	if err != nil {
		return nil, fmt.Errorf("chem: reading %s.db: %w", name, err)
	}

	labFile, err := os.Open(filepath.Join(dir, name+".labels"))
	if err != nil {
		return nil, err
	}
	defer labFile.Close()
	active, err := readLabels(labFile, len(graphs))
	if err != nil {
		return nil, fmt.Errorf("chem: reading %s.labels: %w", name, err)
	}
	return &Dataset{
		Spec:     DatasetSpec{Name: name},
		Graphs:   graphs,
		Active:   active,
		Alphabet: alpha,
	}, nil
}

func readLabels(r io.Reader, n int) ([]bool, error) {
	active := make([]bool, n)
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("line %d: want '<index> <0|1>'", line)
		}
		idx, err1 := strconv.Atoi(fields[0])
		val, err2 := strconv.Atoi(fields[1])
		if err1 != nil || err2 != nil || idx < 0 || idx >= n || (val != 0 && val != 1) {
			return nil, fmt.Errorf("line %d: bad label record %q", line, text)
		}
		active[idx] = val == 1
	}
	return active, sc.Err()
}
