package chem

import (
	"strings"
	"testing"
)

func TestDatasetWriteLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d := GenerateN(AIDSSpec(), 40)
	if err := d.WriteTo(dir); err != nil {
		t.Fatal(err)
	}
	back, err := Load(dir, "AIDS")
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Graphs) != 40 {
		t.Fatalf("got %d graphs", len(back.Graphs))
	}
	for i, g := range d.Graphs {
		h := back.Graphs[i]
		if g.NumNodes() != h.NumNodes() || g.NumEdges() != h.NumEdges() {
			t.Fatalf("graph %d shape changed", i)
		}
		for v := 0; v < g.NumNodes(); v++ {
			if g.NodeLabel(v) != h.NodeLabel(v) {
				t.Fatalf("graph %d node %d label changed", i, v)
			}
		}
		if back.Active[i] != d.Active[i] {
			t.Fatalf("graph %d activity changed", i)
		}
	}
}

func TestLoadMissingFiles(t *testing.T) {
	if _, err := Load(t.TempDir(), "nope"); err == nil {
		t.Fatal("no error for missing dataset")
	}
}

func TestReadLabelsErrors(t *testing.T) {
	for _, tc := range []string{
		"0",    // one field
		"x 1",  // bad index
		"0 7",  // bad value
		"99 1", // out of range
		"-1 0", // negative
	} {
		if _, err := readLabels(strings.NewReader(tc), 3); err == nil {
			t.Errorf("no error for %q", tc)
		}
	}
	got, err := readLabels(strings.NewReader("0 1\n\n2 0\n"), 3)
	if err != nil {
		t.Fatal(err)
	}
	if !got[0] || got[1] || got[2] {
		t.Errorf("labels = %v", got)
	}
}
