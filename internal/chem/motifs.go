package chem

import (
	"graphsig/internal/graph"
)

// A Motif is a named "drug core" structure planted into active molecules,
// the synthetic analogue of the significant substructures of Figs 13-15.
type Motif struct {
	// Name identifies the motif in reports.
	Name string
	// Graph is the core structure (fresh copy per call to Build).
	build func() *graph.Graph
}

// Build returns a fresh copy of the motif structure.
func (m Motif) Build() *graph.Graph { return m.build() }

// mol is a small builder helper for hand-authored structures.
type mol struct{ g *graph.Graph }

func newMol() *mol { return &mol{g: graph.New(16, 18)} }

func (m *mol) atom(symbol string) int { return m.g.AddNode(Atom(symbol)) }

func (m *mol) bond(u, v int, b graph.Label) *mol {
	m.g.MustAddEdge(u, v, b)
	return m
}

// ring adds a simple ring of the given atom symbols joined by the given
// bond and returns the node ids.
func (m *mol) ring(bond graph.Label, symbols ...string) []int {
	ids := make([]int, len(symbols))
	for i, s := range symbols {
		ids[i] = m.atom(s)
	}
	for i := range ids {
		m.bond(ids[i], ids[(i+1)%len(ids)], bond)
	}
	return ids
}

// AZTCore is the azido-pyrimidine analogue of Fig 13(a): a pyrimidine
// ring (two N) with a keto oxygen, carrying an azide chain N-N-N via a
// linker carbon.
func AZTCore() *graph.Graph {
	m := newMol()
	ring := m.ring(BondAromatic, "C", "N", "C", "N", "C", "C")
	o := m.atom("O")
	m.bond(ring[0], o, BondDouble)
	link := m.atom("C")
	m.bond(ring[1], link, BondSingle)
	n1 := m.atom("N")
	n2 := m.atom("N")
	n3 := m.atom("N")
	m.bond(link, n1, BondSingle)
	m.bond(n1, n2, BondDouble)
	m.bond(n2, n3, BondDouble)
	return m.g
}

// FDTCore is the fluorinated analogue of Fig 13(b): the same pyrimidine
// scaffold carrying a fluorine on the linker carbon instead of the azide.
func FDTCore() *graph.Graph {
	m := newMol()
	ring := m.ring(BondAromatic, "C", "N", "C", "N", "C", "C")
	o := m.atom("O")
	m.bond(ring[0], o, BondDouble)
	link := m.atom("C")
	m.bond(ring[1], link, BondSingle)
	f := m.atom("F")
	m.bond(link, f, BondSingle)
	o2 := m.atom("O")
	m.bond(link, o2, BondSingle)
	return m.g
}

// PhosphoniumCore is methyltriphenylphosphonium (Fig 14): a phosphorus
// bonded to three benzene rings and one free methyl carbon.
func PhosphoniumCore() *graph.Graph {
	m := newMol()
	p := m.atom("P")
	for i := 0; i < 3; i++ {
		ring := m.ring(BondAromatic, "C", "C", "C", "C", "C", "C")
		m.bond(p, ring[0], BondSingle)
	}
	methyl := m.atom("C")
	m.bond(p, methyl, BondSingle)
	return m.g
}

// metalloidCore builds the shared scaffold of Fig 15: a carboxy-phenyl
// group whose oxygen binds a group-15 metal (Sb or Bi) carrying two more
// oxygens. The two motifs differ only in the metal, the phenomenon the
// paper highlights.
func metalloidCore(metal string) *graph.Graph {
	m := newMol()
	ring := m.ring(BondAromatic, "C", "C", "C", "C", "C", "C")
	carboxyl := m.atom("C")
	m.bond(ring[0], carboxyl, BondSingle)
	oKeto := m.atom("O")
	m.bond(carboxyl, oKeto, BondDouble)
	oLink := m.atom("O")
	m.bond(carboxyl, oLink, BondSingle)
	metalNode := m.atom(metal)
	m.bond(oLink, metalNode, BondSingle)
	o1 := m.atom("O")
	o2 := m.atom("O")
	m.bond(metalNode, o1, BondSingle)
	m.bond(metalNode, o2, BondSingle)
	return m.g
}

// SbCore is the antimony variant of the Fig 15 pair.
func SbCore() *graph.Graph { return metalloidCore("Sb") }

// BiCore is the bismuth variant of the Fig 15 pair.
func BiCore() *graph.Graph { return metalloidCore("Bi") }

// NitroPhenylCore is a generic active core: a benzene ring carrying a
// nitro group (N with two oxygens).
func NitroPhenylCore() *graph.Graph {
	m := newMol()
	ring := m.ring(BondAromatic, "C", "C", "C", "C", "C", "C")
	n := m.atom("N")
	m.bond(ring[0], n, BondSingle)
	o1 := m.atom("O")
	o2 := m.atom("O")
	m.bond(n, o1, BondDouble)
	m.bond(n, o2, BondSingle)
	return m.g
}

// SulfonamideCore is a generic active core: S(=O)(=O)-N attached to a
// carbon.
func SulfonamideCore() *graph.Graph {
	m := newMol()
	c := m.atom("C")
	s := m.atom("S")
	m.bond(c, s, BondSingle)
	o1 := m.atom("O")
	o2 := m.atom("O")
	n := m.atom("N")
	m.bond(s, o1, BondDouble)
	m.bond(s, o2, BondDouble)
	m.bond(s, n, BondSingle)
	c2 := m.atom("C")
	m.bond(n, c2, BondSingle)
	return m.g
}

// ChloroPyridineCore is a generic active core: a pyridine ring with two
// chlorine substituents.
func ChloroPyridineCore() *graph.Graph {
	m := newMol()
	ring := m.ring(BondAromatic, "C", "C", "N", "C", "C", "C")
	cl1 := m.atom("Cl")
	cl2 := m.atom("Cl")
	m.bond(ring[0], cl1, BondSingle)
	m.bond(ring[3], cl2, BondSingle)
	return m.g
}

// ThiopheneCore is a generic active core: a five-membered sulfur ring
// with a keto side chain.
func ThiopheneCore() *graph.Graph {
	m := newMol()
	ring := m.ring(BondAromatic, "S", "C", "C", "C", "C")
	c := m.atom("C")
	m.bond(ring[1], c, BondSingle)
	o := m.atom("O")
	m.bond(c, o, BondDouble)
	return m.g
}

// QuinoneCore is a generic active core: a six-ring with two keto oxygens
// on opposite carbons.
func QuinoneCore() *graph.Graph {
	m := newMol()
	ring := m.ring(BondSingle, "C", "C", "C", "C", "C", "C")
	o1 := m.atom("O")
	o2 := m.atom("O")
	m.bond(ring[0], o1, BondDouble)
	m.bond(ring[3], o2, BondDouble)
	return m.g
}

// Benzene returns a plain aromatic six-carbon ring — the ubiquitous,
// frequent-but-not-significant pattern of Fig 16.
func Benzene() *graph.Graph {
	m := newMol()
	m.ring(BondAromatic, "C", "C", "C", "C", "C", "C")
	return m.g
}

// Motifs exposes the motif library by name.
var motifLibrary = map[string]func() *graph.Graph{
	"azt":            AZTCore,
	"fdt":            FDTCore,
	"phosphonium":    PhosphoniumCore,
	"antimony":       SbCore,
	"bismuth":        BiCore,
	"nitrophenyl":    NitroPhenylCore,
	"sulfonamide":    SulfonamideCore,
	"chloropyridine": ChloroPyridineCore,
	"thiophene":      ThiopheneCore,
	"quinone":        QuinoneCore,
}

// MotifByName returns the named motif. It panics on unknown names; the
// library is fixed.
func MotifByName(name string) Motif {
	b, ok := motifLibrary[name]
	if !ok {
		panic("chem: unknown motif " + name)
	}
	return Motif{Name: name, build: b}
}

// MotifNames lists the motif library names (unordered use; sort before
// displaying).
func MotifNames() []string {
	names := make([]string, 0, len(motifLibrary))
	for n := range motifLibrary {
		names = append(names, n)
	}
	return names
}
