package chem

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"graphsig/internal/graph"
)

// An MDL SDF (V2000 molfile) subset — the format the real DTP-AIDS screen
// ships in. Each record is a molfile (3 header lines, a counts line, an
// atom block, a bond block) terminated by "M  END"; records are separated
// by "$$$$". Data fields between M END and $$$$ are skipped. Hydrogens
// appear as ordinary atoms when present; charges, isotopes and V3000 are
// out of scope. Bond types 1/2/3/4 map to single/double/triple/aromatic.

// SDFRecord is one parsed SDF entry: the molecule, its title line, and
// its data fields ("> <NAME>" blocks, first line of each value).
type SDFRecord struct {
	Graph *graph.Graph
	Name  string
	Data  map[string]string
}

// ReadSDF parses an SDF stream into molecules over the standard chemistry
// alphabet. The i-th molecule's ID is i; the returned names are the
// molfile title lines (often the compound id in NCI data).
func ReadSDF(r io.Reader) ([]*graph.Graph, []string, error) {
	records, err := ReadSDFRecords(r)
	if err != nil {
		return nil, nil, err
	}
	graphs := make([]*graph.Graph, len(records))
	names := make([]string, len(records))
	for i, rec := range records {
		graphs[i] = rec.Graph
		names[i] = rec.Name
	}
	return graphs, names, nil
}

// ReadSDFRecords parses an SDF stream keeping the data fields — the form
// real screens use to carry activity annotations (e.g. "> <ACTIVITY>").
func ReadSDFRecords(r io.Reader) ([]SDFRecord, error) {
	br := bufio.NewReader(r)
	var records []SDFRecord
	for {
		rec, err := readMolfile(br)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("sdf: record %d: %w", len(records)+1, err)
		}
		rec.Graph.ID = len(records)
		records = append(records, rec)
	}
	return records, nil
}

// LoadSDFScreen builds a Dataset from an SDF stream: molecules plus an
// activity flag taken from the named data field (a molecule is active
// when the field's value is in activeValues, e.g. field "ACTIVITY" with
// values {"CA", "CM"} for the NCI screens).
func LoadSDFScreen(r io.Reader, name, activityField string, activeValues ...string) (*Dataset, error) {
	records, err := ReadSDFRecords(r)
	if err != nil {
		return nil, err
	}
	active := map[string]bool{}
	for _, v := range activeValues {
		active[v] = true
	}
	d := &Dataset{
		Spec:     DatasetSpec{Name: name},
		Alphabet: Alphabet(),
	}
	for _, rec := range records {
		d.Graphs = append(d.Graphs, rec.Graph)
		d.Active = append(d.Active, active[rec.Data[activityField]])
	}
	return d, nil
}

// readMolfile parses one molfile record up to and including its "$$$$"
// separator (or EOF). It returns io.EOF when no record remains.
func readMolfile(br *bufio.Reader) (SDFRecord, error) {
	g, name, data, err := readMolfileParts(br)
	return SDFRecord{Graph: g, Name: name, Data: data}, err
}

func readMolfileParts(br *bufio.Reader) (*graph.Graph, string, map[string]string, error) {
	// Header: title, program, comment. Skip blank leading lines between
	// records.
	title, err := nextContentLine(br)
	if err != nil {
		return nil, "", nil, err
	}
	for _, expect := range []string{"program line", "comment line"} {
		if _, err := readLine(br); err != nil {
			return nil, "", nil, fmt.Errorf("truncated header (%s)", expect)
		}
	}
	counts, err := readLine(br)
	if err != nil {
		return nil, "", nil, fmt.Errorf("missing counts line")
	}
	nAtoms, nBonds, err := parseCounts(counts)
	if err != nil {
		return nil, "", nil, err
	}
	g := graph.New(nAtoms, nBonds)
	for i := 0; i < nAtoms; i++ {
		line, err := readLine(br)
		if err != nil {
			return nil, "", nil, fmt.Errorf("truncated atom block at atom %d", i+1)
		}
		symbol, err := parseAtomLine(line)
		if err != nil {
			return nil, "", nil, fmt.Errorf("atom %d: %w", i+1, err)
		}
		label, ok := lookupAtom(symbol)
		if !ok {
			return nil, "", nil, fmt.Errorf("atom %d: unknown element %q", i+1, symbol)
		}
		g.AddNode(label)
	}
	for i := 0; i < nBonds; i++ {
		line, err := readLine(br)
		if err != nil {
			return nil, "", nil, fmt.Errorf("truncated bond block at bond %d", i+1)
		}
		from, to, bond, err := parseBondLine(line)
		if err != nil {
			return nil, "", nil, fmt.Errorf("bond %d: %w", i+1, err)
		}
		if from < 1 || from > nAtoms || to < 1 || to > nAtoms || from == to {
			return nil, "", nil, fmt.Errorf("bond %d: endpoints (%d,%d) out of range", i+1, from, to)
		}
		if err := g.AddEdge(from-1, to-1, bond); err != nil {
			return nil, "", nil, fmt.Errorf("bond %d: %w", i+1, err)
		}
	}
	// Consume the properties block and data fields up to the separator.
	// Data fields look like "> <NAME>" followed by value lines and a
	// blank line; only the first value line is kept.
	data := map[string]string{}
	var pendingField string
	expectValue := false
	for {
		line, err := readLine(br)
		if err == io.EOF {
			return g, strings.TrimSpace(title), data, nil
		}
		if err != nil {
			return nil, "", nil, err
		}
		trimmed := strings.TrimSpace(line)
		switch {
		case trimmed == "$$$$":
			return g, strings.TrimSpace(title), data, nil
		case strings.HasPrefix(trimmed, ">"):
			if open := strings.Index(trimmed, "<"); open >= 0 {
				if close := strings.Index(trimmed[open:], ">"); close > 0 {
					pendingField = trimmed[open+1 : open+close]
					expectValue = true
				}
			}
		case expectValue && trimmed != "":
			data[pendingField] = trimmed
			expectValue = false
		case trimmed == "":
			expectValue = false
		}
	}
}

// nextContentLine returns the next line, skipping blank lines; io.EOF
// when the stream ends first.
func nextContentLine(br *bufio.Reader) (string, error) {
	for {
		line, err := readLine(br)
		if err != nil {
			return "", err
		}
		if strings.TrimSpace(line) != "" {
			return line, nil
		}
	}
}

func readLine(br *bufio.Reader) (string, error) {
	line, err := br.ReadString('\n')
	if err == io.EOF && line != "" {
		return strings.TrimRight(line, "\r\n"), nil
	}
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

// parseCounts reads the V2000 counts line: columns 1-3 atoms, 4-6 bonds.
func parseCounts(line string) (atoms, bonds int, err error) {
	if len(line) < 6 {
		return 0, 0, fmt.Errorf("counts line too short: %q", line)
	}
	atoms, err1 := strconv.Atoi(strings.TrimSpace(line[0:3]))
	bonds, err2 := strconv.Atoi(strings.TrimSpace(line[3:6]))
	if err1 != nil || err2 != nil || atoms < 0 || bonds < 0 {
		return 0, 0, fmt.Errorf("bad counts line: %q", line)
	}
	return atoms, bonds, nil
}

// parseAtomLine extracts the element symbol from a V2000 atom line
// (columns 32-34, after three 10-char coordinates and a space).
func parseAtomLine(line string) (string, error) {
	if len(line) < 34 {
		// Tolerate short lines by falling back to field splitting:
		// x y z symbol ...
		fields := strings.Fields(line)
		if len(fields) >= 4 {
			return fields[3], nil
		}
		return "", fmt.Errorf("atom line too short: %q", line)
	}
	sym := strings.TrimSpace(line[31:34])
	if sym == "" {
		return "", fmt.Errorf("missing element symbol: %q", line)
	}
	return sym, nil
}

// parseBondLine extracts from/to/type from a V2000 bond line (three
// 3-char columns).
func parseBondLine(line string) (from, to int, bond graph.Label, err error) {
	var kind int
	if len(line) >= 9 {
		f, e1 := strconv.Atoi(strings.TrimSpace(line[0:3]))
		t, e2 := strconv.Atoi(strings.TrimSpace(line[3:6]))
		k, e3 := strconv.Atoi(strings.TrimSpace(line[6:9]))
		if e1 == nil && e2 == nil && e3 == nil {
			from, to, kind = f, t, k
		} else {
			err = fmt.Errorf("bad bond line: %q", line)
			return
		}
	} else {
		fields := strings.Fields(line)
		if len(fields) < 3 {
			err = fmt.Errorf("bond line too short: %q", line)
			return
		}
		f, e1 := strconv.Atoi(fields[0])
		t, e2 := strconv.Atoi(fields[1])
		k, e3 := strconv.Atoi(fields[2])
		if e1 != nil || e2 != nil || e3 != nil {
			err = fmt.Errorf("bad bond line: %q", line)
			return
		}
		from, to, kind = f, t, k
	}
	switch kind {
	case 1:
		bond = BondSingle
	case 2:
		bond = BondDouble
	case 3:
		bond = BondTriple
	case 4:
		bond = BondAromatic
	default:
		err = fmt.Errorf("unsupported bond type %d", kind)
	}
	return
}

// WriteSDF writes molecules as an SDF stream (V2000, zero coordinates).
// names supplies the title lines ("" allowed).
func WriteSDF(w io.Writer, graphs []*graph.Graph, names []string) error {
	alpha := Alphabet()
	bw := bufio.NewWriter(w)
	for i, g := range graphs {
		name := ""
		if names != nil && i < len(names) {
			name = names[i]
		}
		if name == "" {
			// The reader skips blank lines between records, so an empty
			// title line would be swallowed; always emit one.
			name = fmt.Sprintf("mol%d", i)
		}
		fmt.Fprintf(bw, "%s\n  graphsig\n\n", name)
		fmt.Fprintf(bw, "%3d%3d  0  0  0  0  0  0  0  0999 V2000\n", g.NumNodes(), g.NumEdges())
		for v := 0; v < g.NumNodes(); v++ {
			fmt.Fprintf(bw, "%10.4f%10.4f%10.4f %-3s 0  0  0  0  0  0  0  0  0  0  0  0\n",
				0.0, 0.0, 0.0, alpha.Name(g.NodeLabel(v)))
		}
		for _, e := range g.Edges() {
			kind := 1
			switch e.Label {
			case BondDouble:
				kind = 2
			case BondTriple:
				kind = 3
			case BondAromatic:
				kind = 4
			}
			fmt.Fprintf(bw, "%3d%3d%3d  0  0  0  0\n", e.From+1, e.To+1, kind)
		}
		fmt.Fprintln(bw, "M  END")
		fmt.Fprintln(bw, "$$$$")
	}
	return bw.Flush()
}
