package chem

import (
	"strings"
	"testing"

	"graphsig/internal/graph"
	"graphsig/internal/isomorph"
)

func TestSDFRoundTripMotifs(t *testing.T) {
	for _, name := range MotifNames() {
		g := MotifByName(name).Build()
		var sb strings.Builder
		if err := WriteSDF(&sb, []*graph.Graph{g}, []string{name}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		back, names, err := ReadSDF(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(back) != 1 || names[0] != name {
			t.Fatalf("%s: got %d records, names %v", name, len(back), names)
		}
		if !isomorph.Isomorphic(g, back[0]) {
			t.Errorf("%s: round trip not isomorphic", name)
		}
	}
}

func TestSDFRoundTripGenerated(t *testing.T) {
	gen := NewGenerator(70)
	var mols []*graph.Graph
	var names []string
	for i := 0; i < 25; i++ {
		mols = append(mols, gen.Molecule())
		names = append(names, "")
	}
	var sb strings.Builder
	if err := WriteSDF(&sb, mols, names); err != nil {
		t.Fatal(err)
	}
	back, _, err := ReadSDF(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(mols) {
		t.Fatalf("got %d records; want %d", len(back), len(mols))
	}
	for i := range mols {
		if back[i].ID != i {
			t.Fatalf("record %d has ID %d", i, back[i].ID)
		}
		if !isomorph.Isomorphic(mols[i], back[i]) {
			t.Fatalf("record %d not isomorphic after round trip", i)
		}
	}
}

// TestReadSDFHandWritten parses a hand-authored V2000 record with data
// fields, as NCI downloads contain.
func TestReadSDFHandWritten(t *testing.T) {
	const sdf = `NSC1234
  SomeTool 3D

  3  2  0  0  0  0  0  0  0  0999 V2000
    0.0000    0.0000    0.0000 C   0  0  0  0  0  0  0  0  0  0  0  0
    1.0000    0.0000    0.0000 O   0  0  0  0  0  0  0  0  0  0  0  0
    2.0000    0.0000    0.0000 N   0  0  0  0  0  0  0  0  0  0  0  0
  1  2  2  0  0  0  0
  2  3  1  0  0  0  0
M  END
> <ACTIVITY>
CA

$$$$
`
	graphs, names, err := ReadSDF(strings.NewReader(sdf))
	if err != nil {
		t.Fatal(err)
	}
	if len(graphs) != 1 || names[0] != "NSC1234" {
		t.Fatalf("records=%d names=%v", len(graphs), names)
	}
	g := graphs[0]
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	if g.NodeLabel(1) != Atom("O") || g.EdgeLabel(0, 1) != BondDouble {
		t.Error("atom block or bond types wrong")
	}
	if g.EdgeLabel(1, 2) != BondSingle {
		t.Error("second bond wrong")
	}
}

func TestReadSDFErrors(t *testing.T) {
	bad := []string{
		"title\nprog\ncomment\n",                     // missing counts
		"title\nprog\ncomment\nxx\n",                 // short counts line
		"title\nprog\ncomment\n  1  0  0999 V2000\n", // truncated atom block
		"title\nprog\ncomment\n  1  1  0999 V2000\n    0.0000    0.0000    0.0000 C   0\n",                          // truncated bonds
		"title\nprog\ncomment\n  1  0  0999 V2000\n    0.0000    0.0000    0.0000 Xx  0\nM  END\n$$$$\n",            // unknown element
		"title\nprog\ncomment\n  2  1  0999 V2000\n    0.0 0.0 0.0 C\n    0.0 0.0 0.0 C\n  1  5  1\nM  END\n$$$$\n", // bond out of range
		"title\nprog\ncomment\n  2  1  0999 V2000\n    0.0 0.0 0.0 C\n    0.0 0.0 0.0 C\n  1  2  9\nM  END\n$$$$\n", // bad bond type
	}
	for i, s := range bad {
		if _, _, err := ReadSDF(strings.NewReader(s)); err == nil {
			t.Errorf("case %d: no error", i)
		}
	}
}

func TestReadSDFEmpty(t *testing.T) {
	graphs, names, err := ReadSDF(strings.NewReader(""))
	if err != nil || len(graphs) != 0 || len(names) != 0 {
		t.Errorf("empty stream: %d graphs, err %v", len(graphs), err)
	}
}

func TestReadSDFMissingSeparatorAtEOF(t *testing.T) {
	// A final record without the $$$$ separator still parses.
	var sb strings.Builder
	g := Benzene()
	if err := WriteSDF(&sb, []*graph.Graph{g}, []string{"benzene"}); err != nil {
		t.Fatal(err)
	}
	body := strings.TrimSuffix(sb.String(), "$$$$\n")
	graphs, _, err := ReadSDF(strings.NewReader(body))
	if err != nil || len(graphs) != 1 {
		t.Fatalf("got %d graphs, err %v", len(graphs), err)
	}
}

func TestReadSDFRecordsDataFields(t *testing.T) {
	const sdf = `NSC1
  tool

  1  0  0  0  0  0  0  0  0  0999 V2000
    0.0 0.0 0.0 C
M  END
> <ACTIVITY>
CA

> <NSC>
1

$$$$
NSC2
  tool

  1  0  0  0  0  0  0  0  0  0999 V2000
    0.0 0.0 0.0 O
M  END
> <ACTIVITY>
CI

$$$$
`
	records, err := ReadSDFRecords(strings.NewReader(sdf))
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 {
		t.Fatalf("got %d records", len(records))
	}
	if records[0].Data["ACTIVITY"] != "CA" || records[0].Data["NSC"] != "1" {
		t.Errorf("record 0 data = %v", records[0].Data)
	}
	if records[1].Data["ACTIVITY"] != "CI" {
		t.Errorf("record 1 data = %v", records[1].Data)
	}
}

func TestLoadSDFScreen(t *testing.T) {
	// Synthesize a small screen: 10 molecules, 3 flagged active via the
	// NCI-style ACTIVITY field (CA = confirmed active, CM = moderate).
	gen := NewGenerator(80)
	var sb strings.Builder
	for i := 0; i < 10; i++ {
		m := gen.Molecule()
		if err := WriteSDF(&sb, []*graph.Graph{m}, []string{"NSC" + string(rune('0'+i))}); err != nil {
			t.Fatal(err)
		}
		// Re-open the record: splice the activity field before $$$$.
		s := sb.String()
		idx := strings.LastIndex(s, "$$$$\n")
		act := "CI"
		if i < 2 {
			act = "CA"
		} else if i == 2 {
			act = "CM"
		}
		sb.Reset()
		sb.WriteString(s[:idx])
		sb.WriteString("> <ACTIVITY>\n" + act + "\n\n$$$$\n")
	}
	d, err := LoadSDFScreen(strings.NewReader(sb.String()), "toy", "ACTIVITY", "CA", "CM")
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Graphs) != 10 || d.NumActive() != 3 {
		t.Fatalf("graphs=%d actives=%d; want 10,3", len(d.Graphs), d.NumActive())
	}
	if !d.Active[0] || !d.Active[2] || d.Active[5] {
		t.Errorf("activity flags wrong: %v", d.Active)
	}
	if d.Spec.Name != "toy" {
		t.Errorf("name = %q", d.Spec.Name)
	}
}
