package chem

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"graphsig/internal/graph"
)

// A practical SMILES subset for interop with real screen data (the NCI
// and PubChem datasets the paper uses ship as SMILES):
//
//   - organic-subset atoms written bare (B, C, N, O, P, S, F, Cl, Br, I)
//     and any element of the 58-atom alphabet in brackets, e.g. [Sb];
//     bracket atoms may carry an ignored hydrogen count and charge
//     ([NH2], [O-], [N+]).
//   - aromatic lowercase atoms (b, c, n, o, p, s); bonds between two
//     aromatic atoms default to the aromatic bond.
//   - bonds: - (single, default), = (double), # (triple), : (aromatic);
//     / and \ parse as single (stereochemistry is out of scope).
//   - branches in parentheses, ring closures with digits and %nn, and
//     '.' separating disconnected components.
//
// The writer emits uppercase atoms with explicit =, #, : bond symbols,
// which reads back identically; ParseSMILES(WriteSMILES(g)) reproduces g
// up to isomorphism.

// organicSubset atoms may be written without brackets.
var organicSubset = map[string]bool{
	"B": true, "C": true, "N": true, "O": true, "P": true,
	"S": true, "F": true, "Cl": true, "Br": true, "I": true,
}

// ReadSMILESFile reads a .smi file: one molecule per line as
// "SMILES[ name]", with blank lines and '#' comments skipped. It returns
// the molecules and their names ("" when absent); the i-th graph's ID is
// its line-order index.
func ReadSMILESFile(r io.Reader) ([]*graph.Graph, []string, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var graphs []*graph.Graph
	var names []string
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.SplitN(line, " ", 2)
		g, err := ParseSMILES(fields[0])
		if err != nil {
			return nil, nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		g.ID = len(graphs)
		name := ""
		if len(fields) == 2 {
			name = strings.TrimSpace(fields[1])
		}
		graphs = append(graphs, g)
		names = append(names, name)
	}
	return graphs, names, sc.Err()
}

// WriteSMILESFile writes molecules as a .smi file, one per line with the
// optional parallel names.
func WriteSMILESFile(w io.Writer, graphs []*graph.Graph, names []string) error {
	bw := bufio.NewWriter(w)
	for i, g := range graphs {
		s, err := WriteSMILES(g)
		if err != nil {
			return fmt.Errorf("molecule %d: %w", i, err)
		}
		if names != nil && i < len(names) && names[i] != "" {
			fmt.Fprintf(bw, "%s %s\n", s, names[i])
		} else {
			fmt.Fprintln(bw, s)
		}
	}
	return bw.Flush()
}

// ParseSMILES parses a SMILES string into a molecule graph over the
// standard chemistry alphabet.
func ParseSMILES(s string) (*graph.Graph, error) {
	p := &smilesParser{
		input: s,
		g:     graph.New(16, 16),
		rings: map[string]ringBond{},
	}
	if err := p.run(); err != nil {
		return nil, fmt.Errorf("smiles %q: %w", s, err)
	}
	return p.g, nil
}

type ringBond struct {
	node     int
	bond     graph.Label
	aromatic bool
	explicit bool
}

type smilesParser struct {
	input string
	pos   int
	g     *graph.Graph
	// prev is the attachment node (-1 before the first atom or after '.')
	prev int
	// prevAromatic marks prev as a lowercase aromatic atom.
	prevAromatic bool
	// pendingBond is the explicit bond before the next atom (-1 = none).
	pendingBond graph.Label
	hasPending  bool
	stack       []savedState
	rings       map[string]ringBond
}

type savedState struct {
	prev     int
	aromatic bool
}

func (p *smilesParser) run() error {
	p.prev = -1
	for p.pos < len(p.input) {
		c := p.input[p.pos]
		switch {
		case c == '(':
			if p.prev < 0 {
				return fmt.Errorf("pos %d: branch before any atom", p.pos)
			}
			p.stack = append(p.stack, savedState{p.prev, p.prevAromatic})
			p.pos++
		case c == ')':
			if len(p.stack) == 0 {
				return fmt.Errorf("pos %d: unmatched ')'", p.pos)
			}
			top := p.stack[len(p.stack)-1]
			p.stack = p.stack[:len(p.stack)-1]
			p.prev, p.prevAromatic = top.prev, top.aromatic
			p.pos++
		case c == '.':
			p.prev = -1
			p.prevAromatic = false
			p.pos++
		case c == '-' || c == '=' || c == '#' || c == ':' || c == '/' || c == '\\':
			if p.hasPending {
				return fmt.Errorf("pos %d: consecutive bond symbols", p.pos)
			}
			p.pendingBond = bondFromSymbol(c)
			p.hasPending = true
			p.pos++
		case c >= '0' && c <= '9':
			if err := p.ringClosure(string(c)); err != nil {
				return err
			}
			p.pos++
		case c == '%':
			if p.pos+2 >= len(p.input) {
				return fmt.Errorf("pos %d: truncated %%nn ring bond", p.pos)
			}
			if err := p.ringClosure(p.input[p.pos+1 : p.pos+3]); err != nil {
				return err
			}
			p.pos += 3
		case c == '[':
			if err := p.bracketAtom(); err != nil {
				return err
			}
		default:
			if err := p.bareAtom(); err != nil {
				return err
			}
		}
	}
	if len(p.stack) != 0 {
		return fmt.Errorf("unclosed branch")
	}
	if p.hasPending {
		return fmt.Errorf("dangling bond symbol")
	}
	for key := range p.rings {
		return fmt.Errorf("unclosed ring bond %s", key)
	}
	return nil
}

func bondFromSymbol(c byte) graph.Label {
	switch c {
	case '=':
		return BondDouble
	case '#':
		return BondTriple
	case ':':
		return BondAromatic
	default: // '-', '/', '\\'
		return BondSingle
	}
}

// takeBond consumes the pending bond, defaulting by aromaticity.
func (p *smilesParser) takeBond(bothAromatic bool) graph.Label {
	if p.hasPending {
		p.hasPending = false
		return p.pendingBond
	}
	if bothAromatic {
		return BondAromatic
	}
	return BondSingle
}

func (p *smilesParser) addAtom(symbol string, aromatic bool) error {
	label, ok := lookupAtom(symbol)
	if !ok {
		return fmt.Errorf("pos %d: unknown element %q", p.pos, symbol)
	}
	v := p.g.AddNode(label)
	if p.prev >= 0 {
		bond := p.takeBond(aromatic && p.prevAromatic)
		if err := p.g.AddEdge(p.prev, v, bond); err != nil {
			return fmt.Errorf("pos %d: %w", p.pos, err)
		}
	} else if p.hasPending {
		return fmt.Errorf("pos %d: bond with no preceding atom", p.pos)
	}
	p.prev = v
	p.prevAromatic = aromatic
	return nil
}

func lookupAtom(symbol string) (graph.Label, bool) {
	for i, row := range atomTable {
		if row.symbol == symbol {
			return graph.Label(i), true
		}
	}
	return graph.NoLabel, false
}

func (p *smilesParser) bareAtom() error {
	c := p.input[p.pos]
	aromatic := c >= 'a' && c <= 'z'
	symbol := strings.ToUpper(string(c))
	// Two-letter organic atoms: Cl, Br.
	if !aromatic && p.pos+1 < len(p.input) {
		two := p.input[p.pos : p.pos+2]
		if two == "Cl" || two == "Br" {
			symbol = two
			p.pos++
		}
	}
	if !organicSubset[symbol] {
		return fmt.Errorf("pos %d: atom %q must be bracketed", p.pos, symbol)
	}
	p.pos++
	return p.addAtom(symbol, aromatic)
}

func (p *smilesParser) bracketAtom() error {
	end := strings.IndexByte(p.input[p.pos:], ']')
	if end < 0 {
		return fmt.Errorf("pos %d: unclosed bracket", p.pos)
	}
	body := p.input[p.pos+1 : p.pos+end]
	p.pos += end + 1
	if body == "" {
		return fmt.Errorf("empty bracket atom")
	}
	// Element symbol: leading upper + optional lower letters; lowercase
	// first letter marks aromatic.
	i := 0
	aromatic := body[0] >= 'a' && body[0] <= 'z'
	i++
	for i < len(body) && body[i] >= 'a' && body[i] <= 'z' {
		i++
	}
	symbol := body[:i]
	if aromatic {
		symbol = strings.ToUpper(symbol[:1]) + symbol[1:]
	}
	// Ignore hydrogen counts and charges: H, H2, +, -, +2 ...
	rest := body[i:]
	for j := 0; j < len(rest); j++ {
		switch {
		case rest[j] == 'H', rest[j] == '+', rest[j] == '-':
		case rest[j] >= '0' && rest[j] <= '9':
		default:
			return fmt.Errorf("unsupported bracket content %q", body)
		}
	}
	return p.addAtom(symbol, aromatic)
}

func (p *smilesParser) ringClosure(key string) error {
	if p.prev < 0 {
		return fmt.Errorf("pos %d: ring bond before any atom", p.pos)
	}
	if open, ok := p.rings[key]; ok {
		delete(p.rings, key)
		if open.node == p.prev {
			return fmt.Errorf("pos %d: ring bond %s closes onto its own atom", p.pos, key)
		}
		var bond graph.Label
		switch {
		case p.hasPending:
			bond = p.pendingBond
			p.hasPending = false
		case open.explicit:
			bond = open.bond
		case open.aromatic && p.prevAromatic:
			bond = BondAromatic
		default:
			bond = BondSingle
		}
		if err := p.g.AddEdge(open.node, p.prev, bond); err != nil {
			return fmt.Errorf("pos %d: %w", p.pos, err)
		}
		return nil
	}
	rb := ringBond{node: p.prev, aromatic: p.prevAromatic}
	if p.hasPending {
		rb.bond = p.pendingBond
		rb.explicit = true
		p.hasPending = false
	}
	p.rings[key] = rb
	return nil
}

// WriteSMILES renders a molecule as SMILES (uppercase atoms, explicit
// bond symbols). Multiple connected components are joined with '.'.
// Graphs needing more than 99 simultaneously open ring bonds are
// rejected.
func WriteSMILES(g *graph.Graph) (string, error) {
	alpha := Alphabet()
	var sb strings.Builder
	visited := make([]bool, g.NumNodes())
	// Ring-closure numbers are assigned to DFS back edges in a first
	// pass, then the tree is emitted with closures attached to both
	// endpoints.
	type closure struct {
		num  int
		bond graph.Label
	}
	nextRing := 1
	first := true
	for start := 0; start < g.NumNodes(); start++ {
		if visited[start] {
			continue
		}
		if !first {
			sb.WriteByte('.')
		}
		first = false
		// DFS pass 1: tree edges and back edges.
		type edgeRef struct{ u, v int }
		parent := map[int]int{start: -1}
		order := []int{}
		var backEdges []edgeRef
		seenBack := map[[2]int]bool{}
		var dfs func(v int)
		dfs = func(v int) {
			visited[v] = true
			order = append(order, v)
			g.Neighbors(v, func(u int, _ graph.Label) {
				if !visited[u] {
					parent[u] = v
					dfs(u)
				} else if u != parent[v] {
					key := [2]int{min(u, v), max(u, v)}
					if !seenBack[key] {
						seenBack[key] = true
						backEdges = append(backEdges, edgeRef{u, v})
					}
				}
			})
		}
		dfs(start)
		if nextRing+len(backEdges) > 100 {
			return "", fmt.Errorf("smiles: too many ring closures")
		}
		closuresByNode := map[int][]closure{}
		for _, be := range backEdges {
			num := nextRing
			nextRing++
			bond := g.EdgeLabel(be.u, be.v)
			closuresByNode[be.u] = append(closuresByNode[be.u], closure{num, bond})
			closuresByNode[be.v] = append(closuresByNode[be.v], closure{num, bond})
		}
		// DFS pass 2: emit.
		childrenOf := map[int][]int{}
		for _, v := range order {
			if p := parent[v]; p >= 0 {
				childrenOf[p] = append(childrenOf[p], v)
			}
		}
		var emit func(v int)
		emit = func(v int) {
			sb.WriteString(atomToken(g.NodeLabel(v), alpha))
			for _, c := range closuresByNode[v] {
				writeBond(&sb, c.bond)
				writeRingNum(&sb, c.num)
			}
			kids := childrenOf[v]
			for i, u := range kids {
				branch := i < len(kids)-1
				if branch {
					sb.WriteByte('(')
				}
				writeBond(&sb, g.EdgeLabel(v, u))
				emit(u)
				if branch {
					sb.WriteByte(')')
				}
			}
		}
		emit(start)
	}
	return sb.String(), nil
}

func atomToken(l graph.Label, alpha *graph.Alphabet) string {
	sym := alpha.Name(l)
	if organicSubset[sym] {
		return sym
	}
	return "[" + sym + "]"
}

func writeBond(sb *strings.Builder, bond graph.Label) {
	switch bond {
	case BondDouble:
		sb.WriteByte('=')
	case BondTriple:
		sb.WriteByte('#')
	case BondAromatic:
		sb.WriteByte(':')
	}
}

func writeRingNum(sb *strings.Builder, num int) {
	if num < 10 {
		fmt.Fprintf(sb, "%d", num)
	} else {
		fmt.Fprintf(sb, "%%%02d", num)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
