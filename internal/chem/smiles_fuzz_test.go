package chem

import (
	"testing"

	"graphsig/internal/isomorph"
)

// FuzzParseSMILES: arbitrary input must never panic, and accepted input
// must survive a write/parse round trip up to isomorphism.
func FuzzParseSMILES(f *testing.F) {
	f.Add("CCO")
	f.Add("c1ccccc1")
	f.Add("CC(=O)O")
	f.Add("[Sb](O)(O)O")
	f.Add("C%12CCCCC%12")
	f.Add("CC.O")
	f.Add("C1:C:C:C:C:C:1")
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 200 {
			return
		}
		g, err := ParseSMILES(input)
		if err != nil {
			return
		}
		s, err := WriteSMILES(g)
		if err != nil {
			return // very ring-dense inputs may exceed closure numbering
		}
		back, err := ParseSMILES(s)
		if err != nil {
			t.Fatalf("own output %q rejected: %v", s, err)
		}
		if g.NumNodes() != back.NumNodes() || g.NumEdges() != back.NumEdges() {
			t.Fatalf("round trip changed shape: %q -> %q", input, s)
		}
		if g.NumNodes() <= 12 && !isomorph.Isomorphic(g, back) {
			t.Fatalf("round trip not isomorphic: %q -> %q", input, s)
		}
	})
}
