package chem

import (
	"strings"
	"testing"

	"graphsig/internal/graph"
	"graphsig/internal/isomorph"
)

func TestParseSMILESLinear(t *testing.T) {
	g, err := ParseSMILES("CCO")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("CCO: n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	if g.NodeLabel(2) != Atom("O") {
		t.Error("third atom not O")
	}
	if g.EdgeLabel(0, 1) != BondSingle {
		t.Error("default bond not single")
	}
}

func TestParseSMILESBondsAndBranches(t *testing.T) {
	// Acetic acid without hydrogens: CC(=O)O
	g, err := ParseSMILES("CC(=O)O")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 4 || g.NumEdges() != 3 {
		t.Fatalf("n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	if g.EdgeLabel(1, 2) != BondDouble {
		t.Error("C=O not double")
	}
	if g.EdgeLabel(1, 3) != BondSingle {
		t.Error("C-O not single")
	}
	if g.Degree(1) != 3 {
		t.Error("branch point degree wrong")
	}
}

func TestParseSMILESBenzeneForms(t *testing.T) {
	aromatic, err := ParseSMILES("c1ccccc1")
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := ParseSMILES("C1:C:C:C:C:C:1")
	if err != nil {
		t.Fatal(err)
	}
	want := Benzene()
	if !isomorph.Isomorphic(aromatic, want) {
		t.Errorf("lowercase benzene wrong: %s", aromatic)
	}
	if !isomorph.Isomorphic(explicit, want) {
		t.Errorf("explicit benzene wrong: %s", explicit)
	}
}

func TestParseSMILESBrackets(t *testing.T) {
	g, err := ParseSMILES("[Sb](O)(O)O")
	if err != nil {
		t.Fatal(err)
	}
	if g.NodeLabel(0) != Atom("Sb") || g.Degree(0) != 3 {
		t.Fatalf("Sb center wrong: %s", g)
	}
	// Hydrogen counts and charges are ignored.
	g2, err := ParseSMILES("C[NH2]")
	if err != nil {
		t.Fatal(err)
	}
	if g2.NodeLabel(1) != Atom("N") {
		t.Error("[NH2] not parsed as N")
	}
	if _, err := ParseSMILES("[O-]C"); err != nil {
		t.Errorf("charge rejected: %v", err)
	}
}

func TestParseSMILESDisconnected(t *testing.T) {
	g, err := ParseSMILES("CC.O")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 1 {
		t.Fatalf("n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	if g.IsConnected() {
		t.Error("dot-separated components connected")
	}
}

func TestParseSMILESPercentRing(t *testing.T) {
	a, err := ParseSMILES("C%12CCCCC%12")
	if err != nil {
		t.Fatal(err)
	}
	if !isomorph.Isomorphic(a, mustParse(t, "C1CCCCC1")) {
		t.Error("%nn ring differs from digit ring")
	}
}

func mustParse(t *testing.T, s string) *graph.Graph {
	t.Helper()
	g, err := ParseSMILES(s)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestParseSMILESErrors(t *testing.T) {
	bad := []string{
		"C(",    // unclosed branch
		"C)",    // unmatched close
		"(C)",   // branch before atom
		"C1CC",  // unclosed ring
		"1CC",   // ring before atom
		"C==C",  // double bond symbol
		"C-",    // dangling bond
		"Xx",    // unknown bare atom
		"[Xx]",  // unknown element
		"[",     // unclosed bracket
		"[]",    // empty bracket
		"[C@H]", // stereo unsupported
		"C%1",   // truncated %nn
		"C11",   // self ring bond (duplicate edge/self loop)
		"=C",    // leading bond
	}
	for _, s := range bad {
		if _, err := ParseSMILES(s); err == nil {
			t.Errorf("no error for %q", s)
		}
	}
}

func TestWriteSMILESRoundTripMotifs(t *testing.T) {
	for _, name := range MotifNames() {
		g := MotifByName(name).Build()
		s, err := WriteSMILES(g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		back, err := ParseSMILES(s)
		if err != nil {
			t.Fatalf("%s: re-parse %q: %v", name, s, err)
		}
		if !isomorph.Isomorphic(g, back) {
			t.Errorf("%s: round trip %q not isomorphic", name, s)
		}
	}
}

func TestWriteSMILESRoundTripGenerated(t *testing.T) {
	gen := NewGenerator(14)
	for i := 0; i < 60; i++ {
		g := gen.Molecule()
		s, err := WriteSMILES(g)
		if err != nil {
			t.Fatalf("molecule %d: %v", i, err)
		}
		back, err := ParseSMILES(s)
		if err != nil {
			t.Fatalf("molecule %d: re-parse %q: %v", i, s, err)
		}
		if !isomorph.Isomorphic(g, back) {
			t.Fatalf("molecule %d: round trip not isomorphic (%s)", i, s)
		}
	}
}

func TestWriteSMILESDisconnected(t *testing.T) {
	g := graph.New(3, 1)
	g.AddNode(Atom("C"))
	g.AddNode(Atom("C"))
	g.AddNode(Atom("O"))
	g.MustAddEdge(0, 1, BondSingle)
	s, err := WriteSMILES(g)
	if err != nil {
		t.Fatal(err)
	}
	back := mustParse(t, s)
	if back.NumNodes() != 3 || back.NumEdges() != 1 {
		t.Errorf("round trip %q changed shape", s)
	}
}

func TestParseSMILESKnownDrugCore(t *testing.T) {
	// The AZT azide chain: C-N=N=N.
	g := mustParse(t, "CN=N=N")
	if g.NumNodes() != 4 {
		t.Fatal("wrong size")
	}
	if g.EdgeLabel(1, 2) != BondDouble || g.EdgeLabel(2, 3) != BondDouble {
		t.Error("azide bonds wrong")
	}
}

func TestSMILESFileRoundTrip(t *testing.T) {
	gen := NewGenerator(15)
	var mols []*graph.Graph
	names := []string{"mol-a", "", "mol-c"}
	for i := 0; i < 3; i++ {
		mols = append(mols, gen.Molecule())
	}
	var sb strings.Builder
	if err := WriteSMILESFile(&sb, mols, names); err != nil {
		t.Fatal(err)
	}
	back, backNames, err := ReadSMILESFile(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 {
		t.Fatalf("got %d molecules", len(back))
	}
	for i := range mols {
		if !isomorph.Isomorphic(mols[i], back[i]) {
			t.Errorf("molecule %d not isomorphic after round trip", i)
		}
		if back[i].ID != i {
			t.Errorf("molecule %d has ID %d", i, back[i].ID)
		}
	}
	if backNames[0] != "mol-a" || backNames[1] != "" || backNames[2] != "mol-c" {
		t.Errorf("names = %v", backNames)
	}
}

func TestReadSMILESFileCommentsAndErrors(t *testing.T) {
	in := "# header comment\nCCO ethanol\n\nc1ccccc1 benzene\n"
	graphs, names, err := ReadSMILESFile(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(graphs) != 2 || names[0] != "ethanol" || names[1] != "benzene" {
		t.Fatalf("graphs=%d names=%v", len(graphs), names)
	}
	if _, _, err := ReadSMILESFile(strings.NewReader("C(\n")); err == nil {
		t.Error("bad SMILES accepted")
	}
}
