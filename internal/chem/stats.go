package chem

import (
	"fmt"
	"sort"
	"strings"

	"graphsig/internal/graph"
)

// Formula returns a Hill-convention molecular formula for a molecule
// (carbon first, then other elements alphabetically), e.g. "C6N2O".
// Hydrogens are implicit in the screens and never appear.
func Formula(g *graph.Graph) string {
	alpha := Alphabet()
	counts := map[string]int{}
	for _, l := range g.Labels() {
		counts[alpha.Name(l)]++
	}
	var rest []string
	for sym := range counts {
		if sym != "C" {
			rest = append(rest, sym)
		}
	}
	sort.Strings(rest)
	var b strings.Builder
	writeTerm := func(sym string) {
		b.WriteString(sym)
		if counts[sym] > 1 {
			fmt.Fprintf(&b, "%d", counts[sym])
		}
	}
	if counts["C"] > 0 {
		writeTerm("C")
	}
	for _, sym := range rest {
		writeTerm(sym)
	}
	return b.String()
}

// MoleculeStats summarizes one molecule for reports.
type MoleculeStats struct {
	Atoms, Bonds int
	Rings        int
	Formula      string
	// AromaticBonds counts bonds with the aromatic label.
	AromaticBonds int
}

// Describe computes MoleculeStats for a molecule.
func Describe(g *graph.Graph) MoleculeStats {
	s := MoleculeStats{
		Atoms:   g.NumNodes(),
		Bonds:   g.NumEdges(),
		Rings:   g.CycleRank(),
		Formula: Formula(g),
	}
	for _, e := range g.Edges() {
		if e.Label == BondAromatic {
			s.AromaticBonds++
		}
	}
	return s
}
