package classify

import (
	"graphsig/internal/graph"
	"graphsig/internal/kernel"
	"graphsig/internal/leap"
	"graphsig/internal/svm"
)

// Scorer is the uniform interface of the three §VI-D classifiers: a
// decision score whose sign classifies and whose magnitude ranks (AUC).
type Scorer interface {
	Score(g *graph.Graph) float64
}

// LEAPClassifier is the pattern-based baseline: discriminative patterns
// mined by the leap substitute, binary occurrence features, linear SVM.
type LEAPClassifier struct {
	Patterns []leap.Pattern
	model    *svm.Linear
}

// LEAPOptions configures the baseline.
type LEAPOptions struct {
	Mine leap.Options
	SVM  svm.LinearOptions
}

// TrainLEAP mines discriminative patterns from the labeled training set
// and fits the linear SVM on the pattern features.
func TrainLEAP(pos, neg []*graph.Graph, opt LEAPOptions) *LEAPClassifier {
	patterns := leap.Mine(pos, neg, opt.Mine)
	all := make([]*graph.Graph, 0, len(pos)+len(neg))
	all = append(all, pos...)
	all = append(all, neg...)
	labels := make([]bool, len(all))
	for i := range pos {
		labels[i] = true
	}
	feats := leap.Featurize(all, patterns)
	return &LEAPClassifier{
		Patterns: patterns,
		model:    svm.TrainLinear(feats, labels, opt.SVM),
	}
}

// Score returns the SVM decision value on the query's pattern features.
func (c *LEAPClassifier) Score(g *graph.Graph) float64 {
	feats := leap.Featurize([]*graph.Graph{g}, c.Patterns)
	return c.model.Decision(feats[0])
}

// OAClassifier is the kernel baseline: optimal-assignment kernel matrix
// plus an SMO-trained SVM.
type OAClassifier struct {
	kern   kernel.OA
	train  []*graph.Graph
	labels []bool
	model  *svm.Kernel
}

// OAOptions configures the kernel baseline.
type OAOptions struct {
	Kernel kernel.OA
	SVM    svm.KernelOptions
}

// TrainOA computes the training kernel matrix (the baseline's dominant,
// intrinsically O(n²·m³) cost) and fits the SVM.
func TrainOA(pos, neg []*graph.Graph, opt OAOptions) *OAClassifier {
	all := make([]*graph.Graph, 0, len(pos)+len(neg))
	all = append(all, pos...)
	all = append(all, neg...)
	labels := make([]bool, len(all))
	for i := range pos {
		labels[i] = true
	}
	k := opt.Kernel
	if k.Depth == 0 && k.Decay == 0 {
		k = kernel.DefaultOA()
	}
	matrix := k.Matrix(all)
	return &OAClassifier{
		kern:   k,
		train:  all,
		labels: labels,
		model:  svm.TrainKernel(matrix, labels, opt.SVM),
	}
}

// Score returns the kernel SVM decision value for the query.
func (c *OAClassifier) Score(g *graph.Graph) float64 {
	row := c.kern.Row(g, c.train)
	return c.model.Decision(row, c.labels)
}
