package classify

import (
	"math"
	"testing"

	"graphsig/internal/chem"
	"graphsig/internal/core"
	"graphsig/internal/feature"
	"graphsig/internal/graph"
	"graphsig/internal/metrics"
)

// plantedClasses builds positives carrying a core and negatives without.
func plantedClasses(core *graph.Graph, seed int64, nPos, nNeg int) (pos, neg []*graph.Graph) {
	gen := chem.NewGenerator(seed)
	for i := 0; i < nPos; i++ {
		m := gen.Molecule()
		base := m.NumNodes()
		for v := 0; v < core.NumNodes(); v++ {
			m.AddNode(core.NodeLabel(v))
		}
		for _, e := range core.Edges() {
			m.MustAddEdge(base+e.From, base+e.To, e.Label)
		}
		m.MustAddEdge(0, base, chem.BondSingle)
		pos = append(pos, m)
	}
	for i := 0; i < nNeg; i++ {
		neg = append(neg, gen.Molecule())
	}
	return pos, neg
}

func TestMinDist(t *testing.T) {
	// Paper's classifier example (Tables I and III): for v1 = [1 0 0 2],
	// N1-N3 and P1 are not sub-vectors; P2 = [1 0 0 0] and P3 = [0 0 0 1]
	// are both at distance 2.
	v1 := feature.Vector{1, 0, 0, 2}
	negs := []feature.Vector{{0, 0, 1, 1}, {0, 1, 0, 0}, {1, 1, 0, 1}}
	poss := []feature.Vector{{2, 0, 1, 3}, {1, 0, 0, 0}, {0, 0, 0, 1}}
	if d := MinDist(v1, negs); !math.IsInf(d, 1) {
		t.Errorf("negDist = %f; want +Inf", d)
	}
	if d := MinDist(v1, poss); d != 2 {
		t.Errorf("posDist = %f; want 2", d)
	}
}

func TestMinDistEmptySet(t *testing.T) {
	if d := MinDist(feature.Vector{1}, nil); !math.IsInf(d, 1) {
		t.Errorf("MinDist(empty) = %f; want +Inf", d)
	}
}

func testOptions() GraphSigOptions {
	opt := DefaultGraphSigOptions()
	opt.Core.CutoffRadius = 3
	opt.Core.MinSupportFloor = 3
	return opt
}

func TestGraphSigClassifierSeparatesPlantedClasses(t *testing.T) {
	coreGraph := chem.SbCore()
	trainPos, trainNeg := plantedClasses(coreGraph, 31, 25, 25)
	testPos, testNeg := plantedClasses(coreGraph, 32, 15, 15)

	c := TrainGraphSig(trainPos, trainNeg, testOptions())
	nPos, _ := c.NumVectors()
	if nPos == 0 {
		t.Fatal("no positive significant vectors mined")
	}

	var scores []float64
	var labels []bool
	for _, g := range testPos {
		scores = append(scores, c.Score(g))
		labels = append(labels, true)
	}
	for _, g := range testNeg {
		scores = append(scores, c.Score(g))
		labels = append(labels, false)
	}
	auc := metrics.AUC(scores, labels)
	if auc < 0.8 {
		t.Errorf("GraphSig classifier AUC = %f; want >= 0.8 on planted classes", auc)
	}
}

func TestGraphSigClassifierDeterministic(t *testing.T) {
	coreGraph := chem.QuinoneCore()
	pos, neg := plantedClasses(coreGraph, 33, 15, 15)
	a := TrainGraphSig(pos, neg, testOptions())
	b := TrainGraphSig(pos, neg, testOptions())
	q := pos[0]
	if a.Score(q) != b.Score(q) {
		t.Error("classifier not deterministic")
	}
}

func TestLEAPClassifierSeparates(t *testing.T) {
	coreGraph := chem.SbCore()
	trainPos, trainNeg := plantedClasses(coreGraph, 34, 20, 20)
	testPos, testNeg := plantedClasses(coreGraph, 35, 10, 10)
	c := TrainLEAP(trainPos, trainNeg, LEAPOptions{})
	if len(c.Patterns) == 0 {
		t.Fatal("no patterns mined")
	}
	var scores []float64
	var labels []bool
	for _, g := range testPos {
		scores = append(scores, c.Score(g))
		labels = append(labels, true)
	}
	for _, g := range testNeg {
		scores = append(scores, c.Score(g))
		labels = append(labels, false)
	}
	if auc := metrics.AUC(scores, labels); auc < 0.8 {
		t.Errorf("LEAP AUC = %f; want >= 0.8", auc)
	}
}

func TestOAClassifierSeparates(t *testing.T) {
	coreGraph := chem.PhosphoniumCore()
	trainPos, trainNeg := plantedClasses(coreGraph, 36, 12, 12)
	testPos, testNeg := plantedClasses(coreGraph, 37, 6, 6)
	c := TrainOA(trainPos, trainNeg, OAOptions{})
	var scores []float64
	var labels []bool
	for _, g := range testPos {
		scores = append(scores, c.Score(g))
		labels = append(labels, true)
	}
	for _, g := range testNeg {
		scores = append(scores, c.Score(g))
		labels = append(labels, false)
	}
	if auc := metrics.AUC(scores, labels); auc < 0.65 {
		t.Errorf("OA AUC = %f; want >= 0.65", auc)
	}
}

func TestScorerInterfaceSatisfied(t *testing.T) {
	var _ Scorer = (*GraphSigClassifier)(nil)
	var _ Scorer = (*LEAPClassifier)(nil)
	var _ Scorer = (*OAClassifier)(nil)
}

func TestGraphSigScoreSignMatchesClassify(t *testing.T) {
	coreGraph := chem.ThiopheneCore()
	pos, neg := plantedClasses(coreGraph, 38, 12, 12)
	c := TrainGraphSig(pos, neg, testOptions())
	for _, g := range append(append([]*graph.Graph{}, pos[:3]...), neg[:3]...) {
		if (c.Score(g) > 0) != c.Classify(g) {
			t.Error("Classify disagrees with Score sign")
		}
	}
}

func TestTrainGraphSigKDefaulting(t *testing.T) {
	coreGraph := chem.QuinoneCore()
	pos, neg := plantedClasses(coreGraph, 39, 8, 8)
	opt := GraphSigOptions{Core: core.Defaults()} // K, Delta zero
	opt.Core.CutoffRadius = 3
	c := TrainGraphSig(pos, neg, opt)
	if c.opt.K != 9 || c.opt.Delta != 1 {
		t.Errorf("defaults not applied: K=%d Delta=%f", c.opt.K, c.opt.Delta)
	}
}

func TestGraphSigClassifierEmptyTraining(t *testing.T) {
	// No training graphs at all: every score must be 0 (no vote).
	c := TrainGraphSig(nil, nil, testOptions())
	g := chem.NewGenerator(40).Molecule()
	if got := c.Score(g); got != 0 {
		t.Errorf("score = %f; want 0 with empty training", got)
	}
	if c.Classify(g) {
		t.Error("empty-training classifier must default negative")
	}
}

func TestLEAPClassifierNoPatterns(t *testing.T) {
	// Positives with nothing in common at the required frequency.
	gen := chem.NewGenerator(41)
	pos := []*graph.Graph{gen.Molecule()}
	neg := []*graph.Graph{gen.Molecule()}
	c := TrainLEAP(pos, neg, LEAPOptions{})
	// Whatever patterns exist, scoring must not panic.
	_ = c.Score(gen.Molecule())
}

func TestCrossValidate(t *testing.T) {
	coreGraph := chem.SbCore()
	pos, neg := plantedClasses(coreGraph, 42, 20, 20)
	graphs, labels := BalancedSample(pos, neg, 7)
	if len(graphs) != 40 {
		t.Fatalf("balanced sample size %d", len(graphs))
	}
	res := CrossValidate(graphs, labels, 4, 7, func(p, n []*graph.Graph) Scorer {
		return TrainGraphSig(p, n, testOptions())
	})
	if len(res.AUCs) != 4 {
		t.Fatalf("got %d folds", len(res.AUCs))
	}
	if res.Mean < 0.7 {
		t.Errorf("mean AUC = %.2f on planted classes", res.Mean)
	}
	if res.Total <= 0 {
		t.Error("no time recorded")
	}
}

func TestBalancedSampleSubsamplesNegatives(t *testing.T) {
	coreGraph := chem.QuinoneCore()
	pos, neg := plantedClasses(coreGraph, 43, 5, 30)
	graphs, labels := BalancedSample(pos, neg, 3)
	if len(graphs) != 10 {
		t.Fatalf("size = %d; want 10", len(graphs))
	}
	npos := 0
	for _, l := range labels {
		if l {
			npos++
		}
	}
	if npos != 5 {
		t.Errorf("positives = %d; want 5", npos)
	}
	// Deterministic.
	g2, _ := BalancedSample(pos, neg, 3)
	for i := range graphs {
		if graphs[i] != g2[i] {
			t.Fatal("not deterministic")
		}
	}
}

func TestExplainConsistentWithScore(t *testing.T) {
	coreGraph := chem.SbCore()
	pos, neg := plantedClasses(coreGraph, 44, 20, 20)
	c := TrainGraphSig(pos, neg, testOptions())
	q := pos[0]
	evidence := c.Explain(q)
	if len(evidence) == 0 {
		t.Fatal("no evidence for a planted active")
	}
	sum := 0.0
	for i, ev := range evidence {
		sum += ev.Weight
		if i > 0 && evidence[i-1].Distance > ev.Distance {
			t.Fatal("evidence not ordered by distance")
		}
		if ev.Positive != (ev.Weight > 0) {
			t.Fatal("weight sign disagrees with class")
		}
		if ev.Node < 0 || ev.Node >= q.NumNodes() {
			t.Fatal("evidence node out of range")
		}
	}
	// The summed evidence weights ARE the score.
	if got := c.Score(q); math.Abs(got-sum) > 1e-12 {
		t.Errorf("score %f != evidence sum %f", got, sum)
	}
}
