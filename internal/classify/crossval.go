package classify

import (
	"time"

	"graphsig/internal/graph"
	"graphsig/internal/metrics"
)

// CVResult is the outcome of one classifier's cross validation.
type CVResult struct {
	// AUCs holds one value per fold; Mean/Std summarize them.
	AUCs []float64
	Mean float64
	Std  float64
	// Total is the summed train+score wall time across folds.
	Total time.Duration
}

// CrossValidate runs stratified k-fold cross validation of a classifier
// over a labeled graph set. train builds a Scorer from the training
// split of each fold; scoring the test split and computing AUC is
// handled here. Folds are deterministic given the seed.
func CrossValidate(graphs []*graph.Graph, labels []bool, k int, seed int64,
	train func(pos, neg []*graph.Graph) Scorer) CVResult {
	var res CVResult
	for _, fold := range metrics.StratifiedKFold(labels, k, seed) {
		var pos, neg []*graph.Graph
		for _, i := range fold.Train {
			if labels[i] {
				pos = append(pos, graphs[i])
			} else {
				neg = append(neg, graphs[i])
			}
		}
		t0 := time.Now()
		model := train(pos, neg)
		scores := make([]float64, len(fold.Test))
		testLabels := make([]bool, len(fold.Test))
		for i, idx := range fold.Test {
			scores[i] = model.Score(graphs[idx])
			testLabels[i] = labels[idx]
		}
		res.Total += time.Since(t0)
		res.AUCs = append(res.AUCs, metrics.AUC(scores, testLabels))
	}
	res.Mean = metrics.Mean(res.AUCs)
	res.Std = metrics.StdDev(res.AUCs)
	return res
}

// BalancedSample pairs all positives with an equal-size deterministic
// sample of negatives (the balanced-training construction of §VI-D),
// returning the combined set and labels.
func BalancedSample(pos, neg []*graph.Graph, seed int64) ([]*graph.Graph, []bool) {
	if len(neg) > len(pos) {
		// Deterministic spread sample without mutating the input.
		sampled := make([]*graph.Graph, 0, len(pos))
		step := float64(len(neg)) / float64(len(pos))
		offset := int(seed) % len(neg)
		if offset < 0 {
			offset += len(neg)
		}
		for i := 0; i < len(pos); i++ {
			sampled = append(sampled, neg[(offset+int(float64(i)*step))%len(neg)])
		}
		neg = sampled
	}
	combined := make([]*graph.Graph, 0, len(pos)+len(neg))
	combined = append(combined, pos...)
	combined = append(combined, neg...)
	labels := make([]bool, len(combined))
	for i := range pos {
		labels[i] = true
	}
	return combined, labels
}
