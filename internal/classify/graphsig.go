// Package classify implements the graph classification application of §V:
// the GraphSig significant-pattern classifier (Algorithms 3 and 4) and
// uniform pipelines around the two §VI-D baselines, the LEAP-style
// pattern classifier and the optimal-assignment kernel SVM.
package classify

import (
	"math"
	"sort"

	"graphsig/internal/core"
	"graphsig/internal/feature"
	"graphsig/internal/graph"
	"graphsig/internal/rwr"
)

// GraphSigOptions configures the significant-pattern classifier.
type GraphSigOptions struct {
	// K is the number of nearest significant vectors voting (paper: 9).
	K int
	// Delta is the small constant added to distances before inversion
	// (Algorithm 3 line 11).
	Delta float64
	// Core configures the underlying significant-vector mining; zero
	// values fall back to Table IV defaults.
	Core core.Config
}

// DefaultGraphSigOptions returns the paper's classification setup (k=9).
func DefaultGraphSigOptions() GraphSigOptions {
	return GraphSigOptions{K: 9, Delta: 1, Core: core.Defaults()}
}

// GraphSigClassifier scores query graphs by the distance-weighted vote of
// their k closest significant sub-feature vectors from the positive and
// negative training sets.
type GraphSigClassifier struct {
	opt GraphSigOptions
	fs  *feature.Set
	// pos and neg are the significant sub-feature vectors mined from the
	// positive and negative training graphs (ℙ and ℕ of Algorithm 3).
	pos, neg []feature.Vector
}

// TrainGraphSig mines significant sub-feature vectors from the positive
// and negative training graphs. The feature set is built over the whole
// training set so both classes share one vector space.
func TrainGraphSig(pos, neg []*graph.Graph, opt GraphSigOptions) *GraphSigClassifier {
	if opt.K <= 0 {
		opt.K = 9
	}
	if opt.Delta <= 0 {
		opt.Delta = 1
	}
	all := make([]*graph.Graph, 0, len(pos)+len(neg))
	all = append(all, pos...)
	all = append(all, neg...)
	cfg := opt.Core
	cfg.FeatureSet = core.BuildFeatureSet(all, cfg)

	c := &GraphSigClassifier{opt: opt, fs: cfg.FeatureSet}
	posGroups, _, _ := core.SignificantVectors(pos, cfg)
	for _, g := range posGroups {
		c.pos = append(c.pos, g.Sig.Vec)
	}
	negGroups, _, _ := core.SignificantVectors(neg, cfg)
	for _, g := range negGroups {
		c.neg = append(c.neg, g.Sig.Vec)
	}
	return c
}

// NumVectors returns the sizes of the mined positive and negative
// significant vector sets.
func (c *GraphSigClassifier) NumVectors() (pos, neg int) {
	return len(c.pos), len(c.neg)
}

// MinDist implements Algorithm 4: the least L1 gap between x and any
// sub-vector of x in vs, or +Inf when no vector in vs is a sub-vector.
func MinDist(x feature.Vector, vs []feature.Vector) float64 {
	min := math.Inf(1)
	for _, v := range vs {
		if !v.SubVectorOf(x) {
			continue
		}
		if d := float64(v.L1DistanceFrom(x)); d < min {
			min = d
		}
	}
	return min
}

// Score implements Algorithm 3: it returns the distance-weighted vote of
// the k closest significant training vectors over the query's node
// vectors. Positive scores classify positive; the magnitude serves as
// the ranking score for AUC.
func (c *GraphSigClassifier) Score(g *graph.Graph) float64 {
	vecs := rwr.GraphVectors(g, c.fs, rwr.Config{Alpha: c.opt.Core.Alpha, Bins: c.opt.Core.Bins})
	type entry struct {
		dist float64
		vote float64
	}
	var entries []entry
	for _, x := range vecs {
		posDist := MinDist(x, c.pos)
		negDist := MinDist(x, c.neg)
		if math.IsInf(posDist, 1) && math.IsInf(negDist, 1) {
			continue // no significant vector describes this region
		}
		if negDist < posDist {
			entries = append(entries, entry{negDist, -1})
		} else {
			entries = append(entries, entry{posDist, +1})
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].dist < entries[j].dist })
	if len(entries) > c.opt.K {
		entries = entries[:c.opt.K]
	}
	score := 0.0
	for _, e := range entries {
		score += e.vote / (e.dist + c.opt.Delta)
	}
	return score
}

// Classify returns true (positive) when Score(g) > 0.
func (c *GraphSigClassifier) Classify(g *graph.Graph) bool {
	return c.Score(g) > 0
}

// Evidence is one voting entry of the classifier's decision: a query
// node, its distance to the closest significant training vector, and the
// class of that vector.
type Evidence struct {
	// Node is the query-graph node whose region matched.
	Node int
	// Distance is the minDist to the closest significant vector.
	Distance float64
	// Positive reports the matched vector's class.
	Positive bool
	// Weight is the vote contribution 1/(Distance+delta), signed.
	Weight float64
}

// Explain returns the k voting entries behind Score(g), strongest match
// first — the interpretability view of Algorithm 3: which regions of the
// query looked like which class's significant patterns.
func (c *GraphSigClassifier) Explain(g *graph.Graph) []Evidence {
	vecs := rwr.GraphVectors(g, c.fs, rwr.Config{Alpha: c.opt.Core.Alpha, Bins: c.opt.Core.Bins})
	var out []Evidence
	for node, x := range vecs {
		posDist := MinDist(x, c.pos)
		negDist := MinDist(x, c.neg)
		if math.IsInf(posDist, 1) && math.IsInf(negDist, 1) {
			continue
		}
		ev := Evidence{Node: node}
		if negDist < posDist {
			ev.Distance = negDist
			ev.Positive = false
			ev.Weight = -1 / (negDist + c.opt.Delta)
		} else {
			ev.Distance = posDist
			ev.Positive = true
			ev.Weight = 1 / (posDist + c.opt.Delta)
		}
		out = append(out, ev)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Distance < out[j].Distance })
	if len(out) > c.opt.K {
		out = out[:c.opt.K]
	}
	return out
}
