package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
)

// CacheKey returns a canonical hex hash of the mining parameters of the
// config — exactly the fields that determine Mine's output over a fixed
// database. Two configs with equal mining parameters hash equal even
// when one spells out the defaults and the other leaves them zero:
// the config is normalized through the same fillConfig that Mine itself
// applies before hashing.
//
// Runtime controls are deliberately excluded: Ctx, Ctl, Deadline,
// Budgets, and Parallelism shape *when* a run is cut short or how many
// workers it spreads over, not what a complete run computes, and
// result caches refuse to store truncated runs. Callers that vary
// budgets per request must not share a cache across those requests.
//
// The Alphabet and FeatureSet are hashed by content (interned symbol
// list; feature names), so two structurally identical sets produce the
// same key across processes.
func (cfg Config) CacheKey() string {
	fillConfig(&cfg)
	h := sha256.New()
	var buf [8]byte
	writeInt := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	writeFloat := func(v float64) { writeInt(int64(math.Float64bits(v))) }
	writeBool := func(v bool) {
		if v {
			writeInt(1)
		} else {
			writeInt(0)
		}
	}
	writeString := func(s string) {
		writeInt(int64(len(s)))
		h.Write([]byte(s))
	}

	// Version tag: bump when the key schema changes so stale persisted
	// keys can never collide with new ones.
	writeString("graphsig-config-v1")

	writeFloat(cfg.Alpha)
	writeInt(int64(cfg.Bins))
	writeFloat(cfg.MaxPvalue)
	writeFloat(cfg.MinFreqPct)
	writeInt(int64(cfg.MinSupportFloor))
	writeInt(int64(cfg.CutoffRadius))
	writeFloat(cfg.FSMFreqPct)
	writeInt(int64(cfg.TopAtoms))
	writeInt(int64(cfg.Miner))
	writeInt(int64(cfg.MaxVectorsPerLabel))
	writeInt(int64(cfg.TopKPerLabel))
	writeInt(int64(cfg.MaxGroupSize))
	writeInt(int64(cfg.MaxPatternEdges))
	writeBool(cfg.SkipVerify)
	writeInt(int64(cfg.Vectorizer))

	if cfg.Alphabet == nil {
		writeInt(-1)
	} else {
		names := cfg.Alphabet.Names()
		writeInt(int64(len(names)))
		for _, n := range names {
			writeString(n)
		}
	}
	if cfg.FeatureSet == nil {
		writeInt(-1)
	} else {
		writeInt(int64(cfg.FeatureSet.Len()))
		for i := 0; i < cfg.FeatureSet.Len(); i++ {
			writeString(cfg.FeatureSet.Name(i))
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// MineKey scopes a config key to one database: it is the canonical
// identity of a mine request, the key under which identical requests
// coalesce and completed results are cached. dbFingerprint is
// graph.Fingerprint of the database being mined.
func MineKey(dbFingerprint string, cfg Config) string {
	return fmt.Sprintf("%s:%s", dbFingerprint, cfg.CacheKey())
}
