package core

import (
	"context"
	"testing"
	"time"

	"graphsig/internal/graph"
	"graphsig/internal/runctl"
)

// TestCacheKeyStable: hashing is deterministic and normalization is
// the same fillConfig Mine applies — fields it fills hash onto the
// default, fields where zero means "unbounded" keep their meaning.
func TestCacheKeyStable(t *testing.T) {
	a, b := Defaults(), Defaults()
	if a.CacheKey() != b.CacheKey() {
		t.Fatal("identical configs hash differently")
	}
	if a.CacheKey() != a.CacheKey() {
		t.Error("CacheKey not deterministic across calls")
	}
	// fillConfig fills these, so spelling the default and leaving it
	// zero is the same mine and must be the same key.
	filled := Defaults()
	filled.Alpha, filled.Bins, filled.MaxPvalue = 0, 0, 0
	if filled.CacheKey() != a.CacheKey() {
		t.Error("fillConfig-normalized fields not folded before hashing")
	}
	// But zero MaxVectorsPerLabel means unbounded — a different mine
	// than the default 50 — so the zero config must NOT collide with
	// Defaults.
	if (Config{}).CacheKey() == a.CacheKey() {
		t.Error("zero config (unbounded vectors/groups, nil alphabet) collides with Defaults")
	}
}

// TestCacheKeyDistinguishesEveryMiningField: flipping any field that
// shapes the mined output must change the key.
func TestCacheKeyDistinguishesEveryMiningField(t *testing.T) {
	base := Defaults().CacheKey()
	muts := map[string]func(*Config){
		"Alpha":              func(c *Config) { c.Alpha = 0.5 },
		"Bins":               func(c *Config) { c.Bins = 7 },
		"MaxPvalue":          func(c *Config) { c.MaxPvalue = 0.05 },
		"MinFreqPct":         func(c *Config) { c.MinFreqPct = 1.5 },
		"MinSupportFloor":    func(c *Config) { c.MinSupportFloor = 5 },
		"CutoffRadius":       func(c *Config) { c.CutoffRadius = 3 },
		"FSMFreqPct":         func(c *Config) { c.FSMFreqPct = 60 },
		"TopAtoms":           func(c *Config) { c.TopAtoms = 4 },
		"Miner":              func(c *Config) { c.Miner = MinerGSpan },
		"MaxVectorsPerLabel": func(c *Config) { c.MaxVectorsPerLabel = 10 },
		"TopKPerLabel":       func(c *Config) { c.TopKPerLabel = 5 },
		"MaxGroupSize":       func(c *Config) { c.MaxGroupSize = 20 },
		"MaxPatternEdges":    func(c *Config) { c.MaxPatternEdges = 6 },
		"SkipVerify":         func(c *Config) { c.SkipVerify = true },
		"Vectorizer":         func(c *Config) { c.Vectorizer = VectorizerWindowCounts },
	}
	seen := map[string]string{base: "base"}
	for name, mutate := range muts {
		cfg := Defaults()
		mutate(&cfg)
		key := cfg.CacheKey()
		if prev, dup := seen[key]; dup {
			t.Errorf("changing %s collides with %s", name, prev)
		}
		seen[key] = name
	}
}

// TestCacheKeyIgnoresRuntimeControls: how a run is bounded must not
// change what it is.
func TestCacheKeyIgnoresRuntimeControls(t *testing.T) {
	base := Defaults().CacheKey()
	cfg := Defaults()
	cfg.Deadline = time.Now().Add(time.Hour)
	cfg.Ctx = context.Background()
	cfg.Budgets = runctl.Budgets{FVMineStates: 10, MinerSteps: 20, VF2Nodes: 30}
	cfg.Ctl = runctl.New(runctl.Options{})
	if cfg.CacheKey() != base {
		t.Error("runtime controls leaked into the cache key")
	}
}

// TestCacheKeyAlphabetContent: the alphabet is hashed by content, not
// pointer identity, and a different alphabet means a different key.
func TestCacheKeyAlphabetContent(t *testing.T) {
	mk := func(names ...string) *graph.Alphabet {
		a := graph.NewAlphabet()
		for _, n := range names {
			a.Intern(n)
		}
		return a
	}
	c1, c2 := Defaults(), Defaults()
	c1.Alphabet = mk("C", "N", "O")
	c2.Alphabet = mk("C", "N", "O")
	if c1.CacheKey() != c2.CacheKey() {
		t.Error("structurally identical alphabets hash differently")
	}
	c2.Alphabet = mk("C", "N", "S")
	if c1.CacheKey() == c2.CacheKey() {
		t.Error("different alphabets hash equal")
	}
	c2.Alphabet = nil
	if c1.CacheKey() == c2.CacheKey() {
		t.Error("nil vs non-nil alphabet hash equal")
	}
}

// TestMineKeyScopesToDatabase: the same config over two databases
// yields distinct mine keys.
func TestMineKeyScopesToDatabase(t *testing.T) {
	cfg := Defaults()
	k1 := MineKey("fp-one", cfg)
	k2 := MineKey("fp-two", cfg)
	if k1 == k2 {
		t.Error("mine key ignores the database fingerprint")
	}
	if MineKey("fp-one", cfg) != k1 {
		t.Error("mine key not deterministic")
	}
}
