package core

// Fault-injection suite for the unified run controller: every pipeline
// stage must unwind cleanly when the controller trips at an arbitrary
// checkpoint, return a structurally valid partial result, and populate
// the degradation report. The injection vehicle is runctl's Hook, which
// cancels the run at the k-th shared-state consultation; CheckInterval 1
// removes amortization so the trip point is deterministic.

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"graphsig/internal/chem"
	"graphsig/internal/feature"
	"graphsig/internal/fsg"
	"graphsig/internal/fvmine"
	"graphsig/internal/graph"
	"graphsig/internal/gspan"
	"graphsig/internal/isomorph"
	"graphsig/internal/leap"
	"graphsig/internal/obs"
	"graphsig/internal/runctl"
	"graphsig/internal/rwr"
)

// hookCtl returns a controller that cancels at the k-th checkpoint.
func hookCtl(k int64) *runctl.Controller {
	return runctl.New(runctl.Options{
		CheckInterval: 1,
		Hook:          func(check int64) bool { return check >= k },
	})
}

// faultVectors builds a feature-vector database diverse enough that
// FVMine explores well past the deepest injection point (k=25).
func faultVectors(n int) []feature.Vector {
	out := make([]feature.Vector, n)
	for i := range out {
		v := make(feature.Vector, 8)
		for j := range v {
			v[j] = uint8(((i*7 + j*13) ^ (i >> 2)) % 6)
		}
		out[i] = v
	}
	return out
}

// TestStageFaultInjection drives each stage with a controller that trips
// at the k-th checkpoint and asserts the stage unwinds with a valid
// partial result and a cancel verdict on the controller.
func TestStageFaultInjection(t *testing.T) {
	mols := plantedDB(24, 6, chem.SbCore())
	stages := []struct {
		name string
		// run executes the stage under ctl and verifies its partial
		// result is structurally valid, returning an error string ("" ok).
		run func(t *testing.T, ctl *runctl.Controller)
	}{
		{"fvmine", func(t *testing.T, ctl *runctl.Controller) {
			res := fvmine.Mine(faultVectors(40), fvmine.Options{
				MinSupport: 2, MaxPvalue: 0.9, Ctl: ctl,
			})
			if !res.Truncated {
				t.Error("fvmine: not flagged truncated")
			}
			if res.StopReason != runctl.ReasonCancel {
				t.Errorf("fvmine: StopReason = %q", res.StopReason)
			}
			for _, s := range res.Vectors {
				if s.Support != len(s.SupportIdx) || s.Support < 2 {
					t.Errorf("fvmine: inconsistent partial vector %+v", s)
				}
			}
		}},
		{"gspan", func(t *testing.T, ctl *runctl.Controller) {
			res := gspan.Mine(mols, gspan.Options{MinSupport: 6, MaxEdges: 6, Ctl: ctl})
			if !res.Truncated {
				t.Error("gspan: not flagged truncated")
			}
			if res.StopReason != runctl.ReasonCancel {
				t.Errorf("gspan: StopReason = %q", res.StopReason)
			}
			for _, p := range res.Patterns {
				if p.Support < 6 || p.Graph == nil {
					t.Errorf("gspan: invalid partial pattern %+v", p)
				}
			}
		}},
		{"fsg", func(t *testing.T, ctl *runctl.Controller) {
			res := fsg.Mine(mols, fsg.Options{MinSupport: 6, MaxEdges: 5, Ctl: ctl})
			if !res.Truncated {
				t.Error("fsg: not flagged truncated")
			}
			if res.StopReason != runctl.ReasonCancel {
				t.Errorf("fsg: StopReason = %q", res.StopReason)
			}
			for _, p := range res.Patterns {
				// Partial results must only contain exactly counted patterns.
				if want := isomorph.Support(p.Graph, mols); p.Support != want {
					t.Errorf("fsg: pattern support %d; exact %d", p.Support, want)
				}
			}
		}},
		{"leap", func(t *testing.T, ctl *runctl.Controller) {
			pos, neg := mols[:12], mols[12:]
			patterns := leap.Mine(pos, neg, leap.Options{TopK: 5, MaxEdges: 5, Ctl: ctl})
			if !ctl.Stopped() {
				t.Error("leap: controller not stopped")
			}
			for _, p := range patterns {
				if p.Graph == nil || p.PosFreq < 0 || p.PosFreq > 1 {
					t.Errorf("leap: invalid partial pattern %+v", p)
				}
			}
		}},
		{"vf2", func(t *testing.T, ctl *runctl.Controller) {
			cp := ctl.Checkpoint(runctl.StageVF2)
			pattern := chem.Benzene()
			var hits int
			for _, g := range mols {
				ok, err := isomorph.SubgraphIsomorphicCtl(pattern, g, cp)
				if err != nil {
					if runctl.ReasonOf(err) != runctl.ReasonCancel {
						t.Errorf("vf2: reason = %q", runctl.ReasonOf(err))
					}
					break
				}
				if ok {
					hits++
				}
			}
			if !ctl.Stopped() {
				t.Error("vf2: controller not stopped")
			}
		}},
		{"core.Mine", func(t *testing.T, ctl *runctl.Controller) {
			cfg := testConfig()
			cfg.Ctl = ctl
			res := Mine(mols, cfg)
			if !res.Truncated {
				t.Error("core: not flagged truncated")
			}
			d := res.Degradation
			if !d.Truncated || d.Reason != runctl.ReasonCancel {
				t.Errorf("core: degradation = %+v", d)
			}
			for _, sg := range res.Subgraphs {
				if sg.Graph == nil || sg.Graph.NumEdges() == 0 {
					t.Errorf("core: invalid partial subgraph %+v", sg)
				}
			}
		}},
	}
	for _, st := range stages {
		for _, k := range []int64{1, 3, 25} {
			t.Run(st.name, func(t *testing.T) {
				ctl := hookCtl(k)
				st.run(t, ctl)
				if err := ctl.Err(); err == nil {
					t.Fatalf("k=%d: controller has no stop cause", k)
				} else if runctl.ReasonOf(err) != runctl.ReasonCancel {
					t.Errorf("k=%d: reason = %q; want cancel", k, runctl.ReasonOf(err))
				}
			})
		}
	}
}

// TestMineDeadlineOvershootBounded asserts the full pipeline observes a
// mid-run deadline promptly: with amortized checkpoints every 64 cheap
// steps, overshoot must stay well inside 250ms.
func TestMineDeadlineOvershootBounded(t *testing.T) {
	db := plantedDB(80, 12, chem.SbCore())
	cfg := testConfig()
	const budget = 60 * time.Millisecond
	slack := 250 * time.Millisecond
	if raceEnabled {
		slack *= 10 // the race detector slows every step ~10x
	}
	cfg.Deadline = time.Now().Add(budget)
	t0 := time.Now()
	res := Mine(db, cfg)
	elapsed := time.Since(t0)
	if elapsed > budget+slack {
		t.Errorf("mine returned %s after a %s deadline; overshoot too large", elapsed, budget)
	}
	// A 60ms budget cannot complete this database; the run must say so.
	if !res.Truncated {
		t.Skip("mine completed inside the deadline on this machine")
	}
	if res.Degradation.Reason != runctl.ReasonDeadline {
		t.Errorf("degradation reason = %q; want deadline", res.Degradation.Reason)
	}
	if len(res.Degradation.Stages) == 0 {
		t.Error("no stage reports on a truncated run")
	}
}

// TestStageBudgetsTruncate asserts each budget pool cuts the run with a
// budget verdict.
func TestStageBudgetsTruncate(t *testing.T) {
	db := plantedDB(40, 8, chem.SbCore())
	cases := []struct {
		name    string
		budgets runctl.Budgets
	}{
		{"fvmine-states", runctl.Budgets{FVMineStates: 10}},
		{"miner-steps", runctl.Budgets{MinerSteps: 10}},
		{"vf2-nodes", runctl.Budgets{VF2Nodes: 10}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig()
			cfg.Budgets = tc.budgets
			res := Mine(db, cfg)
			if !res.Truncated {
				t.Skip("run fit inside the budget on this configuration")
			}
			if res.Degradation.Reason != runctl.ReasonBudget {
				t.Errorf("reason = %q; want budget (%s)", res.Degradation.Reason, res.Degradation)
			}
		})
	}
}

// TestGroupWorkerPanicIsolated injects a panic into the group-mining FSM
// worker via the checkpoint hook and asserts it degrades into a
// per-group error instead of crashing the process.
func TestGroupWorkerPanicIsolated(t *testing.T) {
	db := plantedDB(24, 6, chem.SbCore())
	ctl := runctl.New(runctl.Options{
		CheckInterval: 1,
		Hook:          func(check int64) bool { panic("injected FSM fault") },
	})
	out, panicked := mineMaximalIsolated(db, 3, testConfig(), ctl, graph.Label(1))
	if !panicked {
		t.Fatal("injected panic not reported")
	}
	if out != nil {
		t.Errorf("panicked group returned patterns: %v", out)
	}
	d := ctl.Report()
	if !d.Truncated || d.Reason != runctl.ReasonPanic {
		t.Fatalf("degradation = %+v; want panic verdict", d)
	}
	found := false
	for _, st := range d.Stages {
		if st.Reason == runctl.ReasonPanic && strings.Contains(st.Err, "injected FSM fault") {
			found = true
			if !strings.Contains(st.Err, "goroutine") {
				t.Error("panic report carries no stack")
			}
		}
	}
	if !found {
		t.Error("no stage report names the injected panic")
	}
}

// TestVerifyWorkerPanicIsolated injects a panic into the support
// verification phase: nil graphs make isomorph panic inside the verify
// workers, which must recover and keep the process alive.
func TestVerifyWorkerPanicIsolated(t *testing.T) {
	ctl := runctl.New(runctl.Options{})
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("panic escaped the verify barrier: %v", r)
		}
	}()
	ctl.Recovered(runctl.StageVerify, "synthetic verify fault", "boom")
	d := ctl.Report()
	if !d.Truncated || d.Reason != runctl.ReasonPanic || d.Stage != runctl.StageVerify {
		t.Errorf("degradation = %+v", d)
	}
}

// TestMineContextCancelPartialResult runs the full pipeline against an
// already-canceled context and requires an immediate, valid, empty-ish
// result with a cancel verdict.
func TestMineContextCancelPartialResult(t *testing.T) {
	db := plantedDB(40, 8, chem.SbCore())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := testConfig()
	cfg.Ctx = ctx
	limit := 250 * time.Millisecond
	if raceEnabled {
		limit *= 10
	}
	t0 := time.Now()
	res := Mine(db, cfg)
	if el := time.Since(t0); el > limit {
		t.Errorf("canceled mine took %s", el)
	}
	if !res.Truncated || res.Degradation.Reason != runctl.ReasonCancel {
		t.Errorf("degradation = %+v; want cancel", res.Degradation)
	}
}

// assertStageBalance checks the per-stage span accounting invariant on
// a finished run: for every stage that reported at all,
// started == completed + degraded, and the duration histogram saw
// exactly one observation per span.
func assertStageBalance(t *testing.T, snap obs.Snapshot) (totalDegraded int64) {
	t.Helper()
	stages := snap.LabelValues(obs.MStageStarted, "stage")
	if len(stages) == 0 {
		t.Fatal("no stage spans recorded")
	}
	for _, st := range stages {
		started := snap.CounterValue(obs.MStageStarted, "stage", st)
		completed := snap.CounterValue(obs.MStageCompleted, "stage", st)
		degraded := snap.CounterValue(obs.MStageDegraded, "stage", st)
		if started != completed+degraded {
			t.Errorf("stage %s unbalanced: started %d != completed %d + degraded %d",
				st, started, completed, degraded)
		}
		if h, ok := snap.HistogramValue(obs.MStageDuration, "stage", st); !ok || h.Count != started {
			t.Errorf("stage %s duration count = %d, want %d", st, h.Count, started)
		}
		totalDegraded += degraded
	}
	return totalDegraded
}

// degradationTotal sums the MDegradations counter across all reasons.
func degradationTotal(snap obs.Snapshot) int64 {
	var total int64
	for _, reason := range snap.LabelValues(obs.MDegradations, "reason") {
		total += snap.CounterValue(obs.MDegradations, "reason", reason)
	}
	return total
}

// TestMineMetricsBalanceOnTrip trips the full pipeline at arbitrary
// checkpoints and asserts the books still balance: every started stage
// span ends exactly once (completed or degraded), at least one stage
// is booked degraded on a truncated run, and the run-level degradation
// counter moves exactly once — by the checkpoint that won the
// first-cause CAS, under its reason.
func TestMineMetricsBalanceOnTrip(t *testing.T) {
	db := plantedDB(40, 8, chem.SbCore())
	for _, k := range []int64{1, 3, 25} {
		t.Run(fmt.Sprintf("cancel-at-%d", k), func(t *testing.T) {
			reg := obs.NewRegistry()
			ctl := runctl.New(runctl.Options{
				CheckInterval: 1,
				Hook:          func(check int64) bool { return check >= k },
				Metrics:       reg,
			})
			cfg := testConfig()
			cfg.Ctl = ctl
			res := Mine(db, cfg)
			if !res.Truncated {
				t.Fatal("hooked mine not truncated")
			}
			snap := reg.Snapshot()
			if deg := assertStageBalance(t, snap); deg == 0 {
				t.Error("truncated run booked no degraded stage span")
			}
			if got := degradationTotal(snap); got != 1 {
				t.Errorf("degradations counted %d times, want exactly once", got)
			}
			if got := snap.CounterValue(obs.MDegradations, "reason", string(runctl.ReasonCancel)); got != 1 {
				t.Errorf("degradations{cancel} = %d, want 1", got)
			}
		})
	}
}

// TestMineMetricsBalanceOnBudget is the budget-pool variant: however
// far the run got before the pool drained, the span books balance and
// the degradation counter moved once, under reason budget.
func TestMineMetricsBalanceOnBudget(t *testing.T) {
	db := plantedDB(40, 8, chem.SbCore())
	reg := obs.NewRegistry()
	cfg := testConfig()
	cfg.Metrics = reg
	cfg.Budgets = runctl.Budgets{MinerSteps: 10}
	res := Mine(db, cfg)
	snap := reg.Snapshot()
	degradedStages := assertStageBalance(t, snap)
	if !res.Truncated {
		t.Skip("run fit inside the budget on this configuration")
	}
	if degradedStages == 0 {
		t.Error("truncated run booked no degraded stage span")
	}
	if got := degradationTotal(snap); got != 1 {
		t.Errorf("degradations counted %d times, want exactly once", got)
	}
	if got := snap.CounterValue(obs.MDegradations, "reason", string(runctl.ReasonBudget)); got != 1 {
		t.Errorf("degradations{budget} = %d, want 1", got)
	}
}

// TestMineMetricsCleanRun is the control: an untripped mine completes
// every span, books zero degradations, and reports all six stages.
func TestMineMetricsCleanRun(t *testing.T) {
	db := plantedDB(24, 6, chem.SbCore())
	reg := obs.NewRegistry()
	cfg := testConfig()
	cfg.Metrics = reg
	res := Mine(db, cfg)
	if res.Truncated {
		t.Fatalf("clean run truncated: %+v", res.Degradation)
	}
	snap := reg.Snapshot()
	if deg := assertStageBalance(t, snap); deg != 0 {
		t.Errorf("clean run booked %d degraded spans", deg)
	}
	if got := degradationTotal(snap); got != 0 {
		t.Errorf("clean run counted %d degradations", got)
	}
	for _, st := range []string{"features", "rwr", "fvmine", "group", "group-mine", "verify"} {
		if snap.CounterValue(obs.MStageStarted, "stage", st) < 1 {
			t.Errorf("stage %s never reported", st)
		}
	}
}

// TestPanicMetricsExactlyOnce reuses the injected-FSM-fault setup and
// asserts the isolated panic is visible in the registry exactly once —
// under the panic counter, not the degradation counter, which tracks
// run-level stops only (an isolated worker panic does not cut the run,
// so booking it there would double-count against the CAS invariant).
func TestPanicMetricsExactlyOnce(t *testing.T) {
	db := plantedDB(24, 6, chem.SbCore())
	reg := obs.NewRegistry()
	ctl := runctl.New(runctl.Options{
		CheckInterval: 1,
		Hook:          func(check int64) bool { panic("injected FSM fault") },
		Metrics:       reg,
	})
	if _, panicked := mineMaximalIsolated(db, 3, testConfig(), ctl, graph.Label(1)); !panicked {
		t.Fatal("injected panic not reported")
	}
	snap := reg.Snapshot()
	if got := snap.CounterValue(obs.MPanics, "stage", string(runctl.StageGroupMine)); got != 1 {
		t.Errorf("panics{group-mine} = %d, want 1", got)
	}
	if got := degradationTotal(snap); got != 0 {
		t.Errorf("isolated panic booked %d run-level degradations, want 0", got)
	}
}

// TestSignificantVectorGroupsSurvivesTrip checks the FVMine fan-out
// records an aggregate stage report when tripped mid-flight.
func TestSignificantVectorGroupsSurvivesTrip(t *testing.T) {
	db := plantedDB(40, 8, chem.SbCore())
	cfg := testConfig()
	fs := BuildFeatureSet(db, cfg)
	vectors := rwr.DatabaseVectors(db, fs, rwr.Config{Alpha: cfg.Alpha, Bins: cfg.Bins})
	ctl := hookCtl(5)
	groups := significantVectorGroups(vectors, cfg, ctl)
	if !ctl.Stopped() {
		t.Fatal("controller not stopped")
	}
	for _, g := range groups {
		if len(g.Nodes) == 0 || g.Sig.Support != len(g.Sig.SupportIdx) {
			t.Errorf("inconsistent partial group for label %d", g.Label)
		}
	}
	var aggregate bool
	for _, st := range ctl.Report().Stages {
		if st.Stage == runctl.StageFVMine {
			aggregate = true
		}
	}
	if !aggregate {
		t.Error("no FVMine stage report after trip")
	}
}
