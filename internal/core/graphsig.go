// Package core implements the GraphSig algorithm (Algorithm 2 of the
// paper): convert every graph region to a feature vector by RWR, mine
// significant closed sub-feature vectors per source-node label with
// FVMine, group the regions supporting each significant vector, cut
// radius-bounded subgraphs around them, and run maximal frequent-subgraph
// mining with a high threshold on each group. Groups without a common
// subgraph produce nothing and vanish — the false-positive pruning of
// §IV-B — and every reported subgraph is re-validated by isomorphism-
// based support counting in graph space.
package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"graphsig/internal/chem"
	"graphsig/internal/feature"
	"graphsig/internal/fsg"
	"graphsig/internal/fvmine"
	"graphsig/internal/graph"
	"graphsig/internal/gspan"
	"graphsig/internal/isomorph"
	"graphsig/internal/obs"
	"graphsig/internal/runctl"
	"graphsig/internal/rwr"
	"graphsig/internal/sigmodel"
)

// MinerKind selects the frequent-subgraph miner used on region groups.
type MinerKind int

const (
	// MinerFSG uses the apriori-style miner, as the paper does.
	MinerFSG MinerKind = iota
	// MinerGSpan uses the pattern-growth miner instead (ablation).
	MinerGSpan
)

// Config carries the GraphSig parameters. Defaults() reproduces Table IV.
type Config struct {
	// Alpha is the RWR restart probability (Table IV: 0.25).
	Alpha float64
	// Bins is the RWR discretization bin count (paper: 10).
	Bins int
	// MaxPvalue is the FVMine p-value threshold (Table IV: 0.1).
	MaxPvalue float64
	// MinFreqPct is the FVMine support threshold as a percentage of the
	// per-label vector set (Table IV: 0.1%).
	MinFreqPct float64
	// MinSupportFloor is the absolute lower bound on the FVMine support
	// threshold, guarding tiny inputs (default 3).
	MinSupportFloor int
	// CutoffRadius bounds the subgraph cut around each supporting node
	// (Table IV: 8).
	CutoffRadius int
	// FSMFreqPct is the frequency threshold for maximal FSM on each
	// group, in percent (Table IV: 80).
	FSMFreqPct float64
	// TopAtoms is the number of most frequent atoms whose pairwise edge
	// types become features (§II-B: 5).
	TopAtoms int
	// Miner selects the group FSM implementation (paper: FSG).
	Miner MinerKind
	// MaxVectorsPerLabel bounds how many significant vectors per source
	// label proceed to group mining, most significant first (0 =
	// unbounded; default 50). Bounds work on very dense inputs.
	MaxVectorsPerLabel int
	// TopKPerLabel, when > 0, switches FVMine to threshold-free top-k
	// mining: the k most significant closed vectors per label are kept
	// regardless of MaxPvalue, with the search bound tightening to the
	// running k-th best. Useful when no sensible p-value threshold is
	// known in advance.
	TopKPerLabel int
	// MaxGroupSize caps the number of region windows per group fed to
	// maximal FSM; larger supports are subsampled deterministically
	// (0 = unbounded; default 100).
	MaxGroupSize int
	// MaxPatternEdges bounds mined pattern size (0 = unbounded).
	MaxPatternEdges int
	// Parallelism bounds worker fan-out in the parallel stages — RWR,
	// per-label FVMine, Phase-3 group mining, and support verification
	// (0 or negative = GOMAXPROCS). Results are identical at any
	// setting; only wall-clock changes. A jobs server running several
	// mines at once sets this to its per-job share so job-level times
	// mine-level parallelism does not oversubscribe the host. Excluded
	// from CacheKey: it is a runtime control, not part of the answer.
	Parallelism int
	// Resume, when non-nil, is a Phase-3 snapshot emitted by a previous
	// run of the same (database, config): Mine skips re-mining the
	// committed group prefix and replays its recorded outcomes, so the
	// final Result is byte-identical to an uninterrupted run. A snapshot
	// that does not match this run's identity (MineKey or group-list
	// hash) is rejected — counted on obs.MResumeRejected — and the mine
	// starts from scratch. Excluded from CacheKey: resuming is a
	// runtime control, not part of the answer.
	Resume *ResumeState
	// CheckpointEvery sets the snapshot granularity when the controller
	// carries a checkpoint sink (runctl.Options.CheckpointSink): one
	// resumable snapshot per CheckpointEvery groups committed in order
	// (0 = DefaultCheckpointEvery). Without a sink no snapshots are
	// built and Phase 3 pays nothing. Excluded from CacheKey.
	CheckpointEvery int
	// Deadline aborts the mine when exceeded (zero = none); the result
	// is flagged Truncated with a Degradation report. Ignored when Ctl
	// is set.
	Deadline time.Time
	// Ctx cancels the mine when done (nil = background). Ignored when
	// Ctl is set.
	//graphsiglint:ignore ctxfirst Config is the API boundary; Mine hands Ctx straight to runctl.New
	Ctx context.Context
	// Budgets bounds per-stage work (FVMine states, miner steps, VF2
	// nodes); zero fields are unbounded. Ignored when Ctl is set.
	Budgets runctl.Budgets
	// Ctl, when non-nil, is the run controller the mine observes —
	// supply one to share cancellation and budgets with a caller (e.g.
	// an HTTP handler). When nil, Mine builds one from Ctx, Deadline,
	// Budgets and Metrics.
	Ctl *runctl.Controller
	// Metrics, when non-nil, receives per-stage operational metrics
	// (span counters, work units, duration histograms — see
	// internal/obs). Ignored when Ctl is set: the controller's registry
	// wins, so a job-owned mine reports into its owner's registry.
	Metrics *obs.Registry
	// DBFingerprint, when non-empty, is graph.Fingerprint of the
	// database being mined, precomputed by the caller — a jobs manager
	// that hashed the corpus once at startup, or a store manifest that
	// carries it on disk. Mine uses it as the checkpoint/resume identity
	// instead of rehashing the whole database per run. Excluded from
	// CacheKey: it names the database, not the parameters; MineKey
	// composes the two explicitly.
	DBFingerprint string
	// Alphabet names atom labels in reports (optional).
	Alphabet *graph.Alphabet
	// FeatureSet overrides the feature set (nil = chemistry set built
	// from the database).
	FeatureSet *feature.Set
	// SkipVerify skips the final graph-space support verification
	// (ablation/profiling only; verified support is part of the paper's
	// method).
	SkipVerify bool
	// Vectorizer selects how regions become feature vectors. The paper
	// uses RWR; plain window counting is the §II-C ablation that loses
	// proximity information.
	Vectorizer VectorizerKind
}

// VectorizerKind selects the region-to-vector transform.
type VectorizerKind int

const (
	// VectorizerRWR is the paper's random walk with restart (§II-C).
	VectorizerRWR VectorizerKind = iota
	// VectorizerWindowCounts counts feature occurrences in the radius
	// window without proximity weighting (ablation).
	VectorizerWindowCounts
)

// Defaults returns the paper's Table IV configuration.
func Defaults() Config {
	return Config{
		Alpha:              0.25,
		Bins:               10,
		MaxPvalue:          0.1,
		MinFreqPct:         0.1,
		MinSupportFloor:    3,
		CutoffRadius:       8,
		FSMFreqPct:         80,
		TopAtoms:           5,
		Miner:              MinerFSG,
		MaxVectorsPerLabel: 50,
		MaxGroupSize:       100,
		Alphabet:           chem.Alphabet(),
	}
}

// Subgraph is one mined significant subgraph with its provenance.
type Subgraph struct {
	// Graph is the pattern.
	Graph *graph.Graph
	// Canonical is the pattern's canonical DFS-code key.
	Canonical string
	// SourceLabel is the node label whose vector group produced it.
	SourceLabel graph.Label
	// VectorPValue and VectorLogPValue carry the significance of the
	// describing sub-feature vector (the paper's significance measure).
	VectorPValue    float64
	VectorLogPValue float64
	// VectorSupport is the supporting-region count of the vector.
	VectorSupport int
	// GroupSize is the number of region windows mined for the pattern.
	GroupSize int
	// GroupSupport is the pattern's frequency within its group.
	GroupSupport int
	// Support is the verified graph-space support across the database.
	// Meaningful only when Unverified is false.
	Support int
	// Frequency is Support / |DB|; meaningful only when Unverified is
	// false.
	Frequency float64
	// Unverified reports that graph-space verification did not run for
	// this pattern — SkipVerify was set, the verification stage was cut
	// short (deadline, budget, cancellation), or a verify worker
	// panicked. It distinguishes "support unknown" from a true support
	// of zero.
	Unverified bool
}

// Profile records where GraphSig's time went (Fig 10's three phases).
type Profile struct {
	RWR             time.Duration
	FeatureAnalysis time.Duration
	FSM             time.Duration
	Verify          time.Duration
}

// Total returns the summed phase time.
func (p Profile) Total() time.Duration {
	return p.RWR + p.FeatureAnalysis + p.FSM + p.Verify
}

// Result is the outcome of a GraphSig mine.
type Result struct {
	Subgraphs []Subgraph
	Profile   Profile
	// VectorsMined counts significant sub-feature vectors across labels.
	VectorsMined int
	// GroupsMined counts region groups that went through maximal FSM.
	GroupsMined int
	// GroupsPruned counts groups dropped as false positives (no frequent
	// subgraph at the FSM threshold).
	GroupsPruned int
	// GroupErrors counts groups whose mining worker panicked; each is
	// isolated into a Degradation stage report instead of crashing the
	// process.
	GroupErrors int
	// Truncated reports that the mine was cut short — see Degradation
	// for which stage, why, and how much work completed.
	Truncated bool
	// Degradation is the trust contract of a partial result: stage,
	// reason and per-stage completion counts. Zero value (Truncated
	// false) means the result is complete.
	Degradation runctl.Degradation
}

// BuildFeatureSet returns the feature set Mine uses for db under cfg:
// cfg.FeatureSet when supplied, otherwise the chemistry set (§II-B) built
// from the database.
func BuildFeatureSet(db []*graph.Graph, cfg Config) *feature.Set {
	fillConfig(&cfg)
	if cfg.FeatureSet != nil {
		return cfg.FeatureSet
	}
	return feature.ChemistrySet(db, cfg.Alphabet, cfg.TopAtoms)
}

// VectorGroup is one significant sub-feature vector with its provenance:
// the source-node label whose group produced it and the exact supporting
// regions.
type VectorGroup struct {
	Label graph.Label
	Sig   fvmine.Significant
	// Nodes are the (graph, node) regions supporting the vector.
	Nodes []rwr.NodeVector
}

// SignificantVectors runs only the feature-space half of GraphSig
// (Alg 2 lines 3-7): RWR over the database and FVMine per source label
// under global empirical priors. The classifier of §V trains on its
// output. It returns the groups, the feature set used, and whether the
// search was truncated (deadline, cancellation, or budget).
func SignificantVectors(db []*graph.Graph, cfg Config) ([]VectorGroup, *feature.Set, bool) {
	fillConfig(&cfg)
	ctl := controllerFor(cfg)
	fs := cfg.FeatureSet
	if fs == nil {
		fs = feature.ChemistrySet(db, cfg.Alphabet, cfg.TopAtoms)
	}
	vectors := computeVectors(db, fs, cfg, ctl)
	groups := significantVectorGroups(vectors, cfg, ctl)
	return groups, fs, ctl.Report().Truncated
}

// controllerFor returns the run controller a mine observes: the
// caller's when supplied, else one built from the config's context,
// deadline and budgets.
func controllerFor(cfg Config) *runctl.Controller {
	if cfg.Ctl != nil {
		return cfg.Ctl
	}
	return runctl.New(runctl.Options{Context: cfg.Ctx, Deadline: cfg.Deadline, Budgets: cfg.Budgets, Metrics: cfg.Metrics})
}

// rwrChunk is how many graphs the RWR phase vectorizes between
// controller checks; overshoot past a deadline is bounded by one
// chunk's worth of random walks.
const rwrChunk = 32

// computeVectors turns every node of every graph into a feature vector
// with the configured vectorizer. On truncation it returns the vectors
// of the database prefix processed so far and records the partial
// completion on the controller.
func computeVectors(db []*graph.Graph, fs *feature.Set, cfg Config, ctl *runctl.Controller) []rwr.NodeVector {
	cp := ctl.Checkpoint(runctl.StageRWR)
	if cfg.Vectorizer == VectorizerWindowCounts {
		var out []rwr.NodeVector
		for gid, g := range db {
			if err := cp.Force(); err != nil {
				ctl.RecordStop(runctl.StageRWR, int64(gid), int64(len(db)), "graphs vectorized (window counts)")
				return out
			}
			for v := 0; v < g.NumNodes(); v++ {
				out = append(out, rwr.NodeVector{
					GraphID: gid,
					NodeID:  v,
					Label:   g.NodeLabel(v),
					Vec:     rwr.WindowCounts(g, v, cfg.CutoffRadius, fs, cfg.Bins),
				})
			}
		}
		return out
	}
	var out []rwr.NodeVector
	for base := 0; base < len(db); base += rwrChunk {
		if err := cp.Force(); err != nil {
			ctl.RecordStop(runctl.StageRWR, int64(base), int64(len(db)), "graphs vectorized")
			return out
		}
		end := base + rwrChunk
		if end > len(db) {
			end = len(db)
		}
		vecs := rwr.DatabaseVectors(db[base:end], fs, rwr.Config{Alpha: cfg.Alpha, Bins: cfg.Bins, Workers: cfg.Parallelism})
		for i := range vecs {
			vecs[i].GraphID += base
		}
		out = append(out, vecs...)
	}
	return out
}

// significantVectorGroups mines significant closed sub-feature vectors
// per source label. Priors are empirical over the *whole* vector database
// (§III): a region vector's significance is judged against random
// vectors drawn from all of D, not just its own label group — a rare
// atom's homogeneous contexts must not look "expected" among themselves.
func significantVectorGroups(vectors []rwr.NodeVector, cfg Config, ctl *runctl.Controller) []VectorGroup {
	allVecs := make([]feature.Vector, len(vectors))
	for i, nv := range vectors {
		allVecs[i] = nv.Vec
	}
	globalModel := sigmodel.New(allVecs)
	byLabel := map[graph.Label][]int{}
	for i, nv := range vectors {
		byLabel[nv.Label] = append(byLabel[nv.Label], i)
	}
	labels := make([]graph.Label, 0, len(byLabel))
	for l := range byLabel {
		labels = append(labels, l)
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })

	// Label groups are independent: mine them in parallel, then assemble
	// in sorted label order so the output stays deterministic. A panic
	// in one worker degrades only that label's group (recorded on the
	// controller); the rest of the mine proceeds.
	perLabel := make([][]VectorGroup, len(labels))
	var statesMined, labelsTrunc atomic.Int64
	var wg sync.WaitGroup
	workers := cfg.Parallelism
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, workers)
	spawned := 0
	for li, label := range labels {
		if ctl.Stopped() {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		spawned++
		go func(li int, label graph.Label) {
			defer wg.Done()
			defer func() { <-sem }()
			defer func() {
				if r := recover(); r != nil {
					ctl.Recovered(runctl.StageFVMine, fmt.Sprintf("label %d group worker", label), r)
				}
			}()
			idxs := byLabel[label]
			vecs := make([]feature.Vector, len(idxs))
			for i, idx := range idxs {
				vecs[i] = vectors[idx].Vec
			}
			minSup := supportThreshold(cfg, len(vecs))
			var sig []fvmine.Significant
			if cfg.TopKPerLabel > 0 {
				sig = fvmine.MineTopKCtl(vecs, cfg.TopKPerLabel, minSup, globalModel, ctl)
			} else {
				mres := fvmine.Mine(vecs, fvmine.Options{
					MinSupport:    minSup,
					MaxPvalue:     cfg.MaxPvalue,
					Model:         globalModel,
					SkipZeroFloor: true,
					Ctl:           ctl,
				})
				statesMined.Add(int64(mres.StatesExplored))
				if mres.Truncated {
					labelsTrunc.Add(1)
				}
				sig = mres.Vectors
				fvmine.SortBySignificance(sig)
				if cfg.MaxVectorsPerLabel > 0 && len(sig) > cfg.MaxVectorsPerLabel {
					sig = sig[:cfg.MaxVectorsPerLabel]
				}
			}
			out := make([]VectorGroup, 0, len(sig))
			for _, s := range sig {
				g := VectorGroup{Label: label, Sig: s}
				for _, vi := range s.SupportIdx {
					g.Nodes = append(g.Nodes, vectors[idxs[vi]])
				}
				out = append(out, g)
			}
			perLabel[li] = out
		}(li, label)
	}
	wg.Wait()
	var groups []VectorGroup
	for li := range perLabel {
		groups = append(groups, perLabel[li]...)
	}
	if ctl.Stopped() || labelsTrunc.Load() > 0 {
		ctl.RecordStop(runctl.StageFVMine, statesMined.Load(), 0,
			fmt.Sprintf("%d of %d label groups truncated, %d not started",
				labelsTrunc.Load(), len(labels), len(labels)-spawned))
	}
	return groups
}

// Mine runs GraphSig over db.
func Mine(db []*graph.Graph, cfg Config) Result {
	fillConfig(&cfg)
	var res Result
	if len(db) == 0 {
		return res
	}
	ctl := controllerFor(cfg)

	// Phase 1: RWR over every node of every graph (Alg 2 lines 3-4).
	t0 := time.Now()
	featSpan := ctl.StartStage(runctl.StageFeatures)
	fs := cfg.FeatureSet
	if fs == nil {
		fs = feature.ChemistrySet(db, cfg.Alphabet, cfg.TopAtoms)
	}
	featSpan.End(int64(fs.Len()))
	rwrSpan := ctl.StartStage(runctl.StageRWR)
	vectors := computeVectors(db, fs, cfg, ctl)
	rwrSpan.End(int64(len(vectors)))
	res.Profile.RWR = time.Since(t0)

	// Phase 2: group by source label, FVMine per group (lines 5-7).
	t1 := time.Now()
	fvSpan := ctl.StartStage(runctl.StageFVMine)
	groups := significantVectorGroups(vectors, cfg, ctl)
	fvSpan.End(int64(len(groups)))
	res.VectorsMined = len(groups)
	res.Profile.FeatureAnalysis = time.Since(t1)

	// Phase 3: cut regions and run maximal FSM per group (lines 8-13),
	// fanned out over a bounded worker pool. Groups are independent, so
	// only wall-clock depends on cfg.Parallelism: outcomes are merged
	// into `best` serially in group order, reproducing the serial
	// iteration exactly. A panicking group worker is isolated into a
	// per-group error; the remaining groups still mine.
	t2 := time.Now()
	// The checkpoint/resume identity needs the database fingerprint;
	// trust a caller-supplied one (jobs manager, store manifest) and
	// hash the corpus only when nobody did it already.
	dbFP := cfg.DBFingerprint
	if dbFP == "" && (cfg.Resume != nil || ctl.WantsCheckpoints()) {
		dbFP = graph.Fingerprint(db)
	}
	ordered, stats := minePatterns(func(i int) *graph.Graph { return db[i] }, dbFP, groups, cfg, ctl)
	res.GroupsMined = stats.GroupsMined
	res.GroupsPruned = stats.GroupsPruned
	res.GroupErrors = stats.GroupErrors
	res.Profile.FSM = time.Since(t2)

	// Final: verify support in graph space (in parallel across patterns;
	// counting is read-only on the database) and order the answer set.
	// Each worker draws from the shared VF2 node budget, so one
	// pathological pattern/target pair cannot stall verification.
	t3 := time.Now()
	if !cfg.SkipVerify {
		verifySpan := ctl.StartStage(runctl.StageVerify)
		// One summary pass over the database lets every worker reject
		// graphs that provably cannot contain a pattern before VF2.
		pf := isomorph.NewPrefilter(db).Meter(ctl.Metrics(), "verify")
		var wg sync.WaitGroup
		var verified atomic.Int64
		work := make(chan *Subgraph)
		workers := cfg.Parallelism
		if workers > len(ordered) {
			workers = len(ordered)
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil {
						ctl.Recovered(runctl.StageVerify, "support verification worker", r)
						for range work {
							// Drain so the feeder never blocks; the drained
							// patterns simply stay Unverified.
						}
					}
				}()
				cp := ctl.Checkpoint(runctl.StageVerify)
				for sg := range work {
					if ctl.Stopped() {
						continue // drain; remaining patterns stay Unverified
					}
					sup, err := pf.SupportCtl(sg.Graph, cp)
					if err != nil {
						continue // partial count is a lower bound: discard
					}
					sg.Support = sup
					sg.Frequency = float64(sup) / float64(len(db))
					sg.Unverified = false
					verified.Add(1)
				}
			}()
		}
		for _, sg := range ordered {
			work <- sg
		}
		close(work)
		wg.Wait()
		if ctl.Stopped() {
			// All-or-nothing: under a shared VF2 budget, *which* patterns
			// finished before the trip depends on worker scheduling. A
			// partial verification would make Result.Subgraphs differ
			// between runs (and parallelism levels); voiding it keeps the
			// answer deterministic — the patterns are all still reported,
			// just uniformly Unverified.
			for _, sg := range ordered {
				sg.Support, sg.Frequency, sg.Unverified = 0, 0, true
			}
			verifySpan.End(0)
			if len(ordered) > 0 {
				ctl.RecordStop(runctl.StageVerify, 0, int64(len(ordered)), "patterns support-verified")
			}
		} else {
			verifySpan.End(verified.Load())
			if n := int(verified.Load()); n < len(ordered) {
				ctl.RecordStop(runctl.StageVerify, int64(n), int64(len(ordered)), "patterns support-verified")
			}
		}
	}
	for _, sg := range ordered {
		res.Subgraphs = append(res.Subgraphs, *sg)
	}
	SortSubgraphs(res.Subgraphs)
	res.Profile.Verify = time.Since(t3)
	res.Degradation = ctl.Report()
	res.Truncated = res.Degradation.Truncated
	return res
}

func fillConfig(cfg *Config) {
	d := Defaults()
	if cfg.Alpha <= 0 || cfg.Alpha >= 1 {
		cfg.Alpha = d.Alpha
	}
	if cfg.Bins <= 0 {
		cfg.Bins = d.Bins
	}
	if cfg.MaxPvalue <= 0 {
		cfg.MaxPvalue = d.MaxPvalue
	}
	if cfg.MinFreqPct <= 0 {
		cfg.MinFreqPct = d.MinFreqPct
	}
	if cfg.MinSupportFloor <= 0 {
		cfg.MinSupportFloor = d.MinSupportFloor
	}
	if cfg.CutoffRadius <= 0 {
		cfg.CutoffRadius = d.CutoffRadius
	}
	if cfg.FSMFreqPct <= 0 {
		cfg.FSMFreqPct = d.FSMFreqPct
	}
	if cfg.TopAtoms <= 0 {
		cfg.TopAtoms = d.TopAtoms
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = runtime.GOMAXPROCS(0)
	}
}

func supportThreshold(cfg Config, setSize int) int {
	s := int(math.Ceil(cfg.MinFreqPct / 100 * float64(setSize)))
	if s < cfg.MinSupportFloor {
		s = cfg.MinSupportFloor
	}
	return s
}

// subsample deterministically picks k evenly spaced elements.
func subsample(nodes []rwr.NodeVector, k int) []rwr.NodeVector {
	out := make([]rwr.NodeVector, 0, k)
	step := float64(len(nodes)) / float64(k)
	for i := 0; i < k; i++ {
		out = append(out, nodes[int(float64(i)*step)])
	}
	return out
}

// groupPattern is the common shape of the two miners' outputs.
type groupPattern struct {
	Graph   *graph.Graph
	Support int
}

// groupOutcome is one group's Phase-3 result, produced by a pool worker
// and folded into Result serially so counters and the best-pattern
// merge stay in group order regardless of completion order.
type groupOutcome struct {
	// windows is the region-window count after subsampling.
	windows int
	// mined: the group passed the size check and entered maximal FSM
	// (counts toward GroupsMined even when it then panicked or mined
	// nothing, matching the serial accounting).
	mined bool
	// pruned: too few windows for the FSM threshold, or FSM found no
	// common subgraph (the paper's false-positive pruning).
	pruned bool
	// panicked: the group's worker or miner panicked; recorded on the
	// controller, surfaces as a GroupError.
	panicked bool
	patterns []groupPattern
}

// DefaultCheckpointEvery is the resumable-snapshot granularity when
// Config.CheckpointEvery is zero: one snapshot per 8 committed groups.
// Groups are the unit of lost work on a crash, so this bounds re-mining
// after restart to at most 8 groups plus whatever was in flight.
const DefaultCheckpointEvery = 8

// checkpointer tracks the in-order commit frontier of Phase-3 group
// outcomes and emits a resumable snapshot each time the frontier
// advances by `every` groups. Workers finish out of order; the frontier
// only covers the contiguous committed prefix, which is exactly what a
// resumed run can safely replay. All state is guarded by mu, so a
// worker's outcome write (made before its commit call) happens-before
// any snapshot read of that slot.
type checkpointer struct {
	mu       sync.Mutex
	done     []bool
	frontier int
	lastEmit int
	every    int
	emit     func(done int, outcomes []groupOutcome)
	outcomes []groupOutcome
}

func newCheckpointer(n, start, every int, emit func(int, []groupOutcome)) *checkpointer {
	c := &checkpointer{done: make([]bool, n), frontier: start, lastEmit: start, every: every, emit: emit}
	for i := 0; i < start; i++ {
		c.done[i] = true
	}
	return c
}

// attach hands the checkpointer the live outcome slice before workers
// start; snapshots read only outcomes[:frontier].
func (c *checkpointer) attach(outcomes []groupOutcome) {
	if c != nil {
		c.outcomes = outcomes
	}
}

// commit marks group gi complete and emits a snapshot when the
// contiguous frontier has advanced far enough. The emit callback runs
// under the lock: serialization plus one journal fsync every `every`
// groups, a deliberate trade of a short worker stall for a bounded
// re-mining window after a crash.
func (c *checkpointer) commit(gi int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.done[gi] = true
	for c.frontier < len(c.done) && c.done[c.frontier] {
		c.frontier++
	}
	if c.frontier-c.lastEmit >= c.every {
		c.lastEmit = c.frontier
		c.emit(c.frontier, c.outcomes[:c.frontier])
	}
}

// mineGroups fans Phase 3 out over a pool of cfg.Parallelism workers
// sharing one window cache. It returns one outcome per launched group
// (launch stops, in group order, once the controller trips) plus the
// launch count; outcomes[launched:] are untouched zero values. A
// resumed prefix is copied in verbatim and never re-mined — its groups
// count as launched — and each newly finished group is committed to the
// checkpointer (nil = no snapshots).
func mineGroups(fetch func(int) *graph.Graph, groups []VectorGroup, cfg Config, ctl *runctl.Controller, resumed []groupOutcome, ckpt *checkpointer) ([]groupOutcome, int) {
	wc := newWindowCache(fetch, cfg.CutoffRadius, ctl.Metrics())
	outcomes := make([]groupOutcome, len(groups))
	start := copy(outcomes, resumed)
	ckpt.attach(outcomes)
	workers := cfg.Parallelism
	if workers > len(groups)-start {
		workers = len(groups) - start
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	launched := start
	for gi := start; gi < len(groups); gi++ {
		if ctl.Stopped() {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		launched++
		go func(gi int) {
			defer wg.Done()
			defer func() { <-sem }()
			outcomes[gi] = mineOneGroup(groups[gi], cfg, ctl, wc)
			ckpt.commit(gi)
		}(gi)
	}
	wg.Wait()
	return outcomes, launched
}

// mineOneGroup cuts one group's region windows and runs maximal FSM on
// them, keeping the per-group stage spans balanced: every span this
// worker starts is ended or failed here, even on panic, so the
// started == completed + degraded invariant survives fan-out.
func mineOneGroup(grp VectorGroup, cfg Config, ctl *runctl.Controller, wc *windowCache) (out groupOutcome) {
	groupSpan := ctl.StartStage(runctl.StageGroup)
	var fsmSpan *runctl.StageSpan
	defer func() {
		if r := recover(); r != nil {
			// mineMaximalIsolated catches miner panics; this barrier
			// catches the rest (cutting, subsampling) so one bad group
			// cannot bring the pool down. Fail is idempotent: spans
			// already closed on the normal path are left as booked.
			ctl.Recovered(runctl.StageGroup, fmt.Sprintf("group worker for label %d (%d regions)", grp.Label, len(grp.Nodes)), r)
			groupSpan.Fail(runctl.ReasonPanic, 0)
			if fsmSpan != nil {
				fsmSpan.Fail(runctl.ReasonPanic, 0)
			}
			out.panicked = true
		}
	}()
	nodes := grp.Nodes
	if cfg.MaxGroupSize > 0 && len(nodes) > cfg.MaxGroupSize {
		nodes = subsample(nodes, cfg.MaxGroupSize)
	}
	windows := make([]*graph.Graph, len(nodes))
	for i, nv := range nodes {
		windows[i] = wc.window(nv.GraphID, nv.NodeID)
	}
	groupSpan.End(int64(len(windows)))
	out.windows = len(windows)
	minSup := int(math.Ceil(cfg.FSMFreqPct / 100 * float64(len(windows))))
	if minSup < 2 {
		minSup = 2
	}
	if len(windows) < minSup {
		out.pruned = true
		return out
	}
	out.mined = true
	fsmSpan = ctl.StartStage(runctl.StageGroupMine)
	maximal, panicked := mineMaximalIsolated(windows, minSup, cfg, ctl, grp.Label)
	if panicked {
		fsmSpan.Fail(runctl.ReasonPanic, 0)
		out.panicked = true
		return out
	}
	fsmSpan.End(int64(len(maximal)))
	if len(maximal) == 0 {
		out.pruned = true
		return out
	}
	out.patterns = maximal
	return out
}

// mineMaximalIsolated runs one group's maximal FSM behind a panic
// barrier: a crash in the miner becomes a structured per-group error on
// the controller instead of killing the process.
func mineMaximalIsolated(windows []*graph.Graph, minSup int, cfg Config, ctl *runctl.Controller, label graph.Label) (out []groupPattern, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			ctl.Recovered(runctl.StageGroupMine, fmt.Sprintf("FSM worker for label %d group (%d windows)", label, len(windows)), r)
			out, panicked = nil, true
		}
	}()
	return mineMaximal(windows, minSup, cfg, ctl), false
}

func mineMaximal(windows []*graph.Graph, minSup int, cfg Config, ctl *runctl.Controller) []groupPattern {
	// Only maximal patterns survive this stage, and a non-closed pattern
	// is never maximal (its closure witness is an equal-support — hence
	// frequent — strict super-pattern), so both miners run in closed-only
	// mode: non-closed patterns are suppressed at emission and whole DFS
	// subtrees prune on equivalent occurrences, leaving the O(n²)
	// containment sweep a near-trivial filter over an already-closed
	// list. The final maximal set is byte-identical to mining everything
	// first. Pruned subtrees charge nothing: the miner-step budget is
	// drawn once per explored state, and pruning deterministically
	// removes states, so budget trips stay reproducible at a fixed
	// configuration.
	switch cfg.Miner {
	case MinerGSpan:
		r := gspan.Mine(windows, gspan.Options{
			MinSupport: minSup,
			MaxEdges:   cfg.MaxPatternEdges,
			Ctl:        ctl,
			ClosedOnly: true,
		})
		// The maximality filter observes the controller too: after a trip
		// it returns only the prefix already decided maximal instead of
		// finishing an O(n²) containment pass over the partial list.
		maximal, _ := gspan.MaximalCtl(r.Patterns, ctl.Checkpoint(runctl.StageGSpan))
		var out []groupPattern
		for _, p := range maximal {
			out = append(out, groupPattern{Graph: p.Graph, Support: p.Support})
		}
		return out
	default:
		r := fsg.MaximalMine(windows, fsg.Options{
			MinSupport: minSup,
			MaxEdges:   cfg.MaxPatternEdges,
			Ctl:        ctl,
			ClosedOnly: true,
		})
		var out []groupPattern
		for _, p := range r.Patterns {
			out = append(out, groupPattern{Graph: p.Graph, Support: p.Support})
		}
		return out
	}
}
