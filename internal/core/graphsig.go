// Package core implements the GraphSig algorithm (Algorithm 2 of the
// paper): convert every graph region to a feature vector by RWR, mine
// significant closed sub-feature vectors per source-node label with
// FVMine, group the regions supporting each significant vector, cut
// radius-bounded subgraphs around them, and run maximal frequent-subgraph
// mining with a high threshold on each group. Groups without a common
// subgraph produce nothing and vanish — the false-positive pruning of
// §IV-B — and every reported subgraph is re-validated by isomorphism-
// based support counting in graph space.
package core

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"graphsig/internal/chem"
	"graphsig/internal/dfscode"
	"graphsig/internal/feature"
	"graphsig/internal/fsg"
	"graphsig/internal/fvmine"
	"graphsig/internal/graph"
	"graphsig/internal/gspan"
	"graphsig/internal/isomorph"
	"graphsig/internal/rwr"
	"graphsig/internal/sigmodel"
)

// MinerKind selects the frequent-subgraph miner used on region groups.
type MinerKind int

const (
	// MinerFSG uses the apriori-style miner, as the paper does.
	MinerFSG MinerKind = iota
	// MinerGSpan uses the pattern-growth miner instead (ablation).
	MinerGSpan
)

// Config carries the GraphSig parameters. Defaults() reproduces Table IV.
type Config struct {
	// Alpha is the RWR restart probability (Table IV: 0.25).
	Alpha float64
	// Bins is the RWR discretization bin count (paper: 10).
	Bins int
	// MaxPvalue is the FVMine p-value threshold (Table IV: 0.1).
	MaxPvalue float64
	// MinFreqPct is the FVMine support threshold as a percentage of the
	// per-label vector set (Table IV: 0.1%).
	MinFreqPct float64
	// MinSupportFloor is the absolute lower bound on the FVMine support
	// threshold, guarding tiny inputs (default 3).
	MinSupportFloor int
	// CutoffRadius bounds the subgraph cut around each supporting node
	// (Table IV: 8).
	CutoffRadius int
	// FSMFreqPct is the frequency threshold for maximal FSM on each
	// group, in percent (Table IV: 80).
	FSMFreqPct float64
	// TopAtoms is the number of most frequent atoms whose pairwise edge
	// types become features (§II-B: 5).
	TopAtoms int
	// Miner selects the group FSM implementation (paper: FSG).
	Miner MinerKind
	// MaxVectorsPerLabel bounds how many significant vectors per source
	// label proceed to group mining, most significant first (0 =
	// unbounded; default 50). Bounds work on very dense inputs.
	MaxVectorsPerLabel int
	// TopKPerLabel, when > 0, switches FVMine to threshold-free top-k
	// mining: the k most significant closed vectors per label are kept
	// regardless of MaxPvalue, with the search bound tightening to the
	// running k-th best. Useful when no sensible p-value threshold is
	// known in advance.
	TopKPerLabel int
	// MaxGroupSize caps the number of region windows per group fed to
	// maximal FSM; larger supports are subsampled deterministically
	// (0 = unbounded; default 100).
	MaxGroupSize int
	// MaxPatternEdges bounds mined pattern size (0 = unbounded).
	MaxPatternEdges int
	// Deadline aborts the mine when exceeded (zero = none); the result
	// is flagged Truncated.
	Deadline time.Time
	// Alphabet names atom labels in reports (optional).
	Alphabet *graph.Alphabet
	// FeatureSet overrides the feature set (nil = chemistry set built
	// from the database).
	FeatureSet *feature.Set
	// SkipVerify skips the final graph-space support verification
	// (ablation/profiling only; verified support is part of the paper's
	// method).
	SkipVerify bool
	// Vectorizer selects how regions become feature vectors. The paper
	// uses RWR; plain window counting is the §II-C ablation that loses
	// proximity information.
	Vectorizer VectorizerKind
}

// VectorizerKind selects the region-to-vector transform.
type VectorizerKind int

const (
	// VectorizerRWR is the paper's random walk with restart (§II-C).
	VectorizerRWR VectorizerKind = iota
	// VectorizerWindowCounts counts feature occurrences in the radius
	// window without proximity weighting (ablation).
	VectorizerWindowCounts
)

// Defaults returns the paper's Table IV configuration.
func Defaults() Config {
	return Config{
		Alpha:              0.25,
		Bins:               10,
		MaxPvalue:          0.1,
		MinFreqPct:         0.1,
		MinSupportFloor:    3,
		CutoffRadius:       8,
		FSMFreqPct:         80,
		TopAtoms:           5,
		Miner:              MinerFSG,
		MaxVectorsPerLabel: 50,
		MaxGroupSize:       100,
		Alphabet:           chem.Alphabet(),
	}
}

// Subgraph is one mined significant subgraph with its provenance.
type Subgraph struct {
	// Graph is the pattern.
	Graph *graph.Graph
	// Canonical is the pattern's canonical DFS-code key.
	Canonical string
	// SourceLabel is the node label whose vector group produced it.
	SourceLabel graph.Label
	// VectorPValue and VectorLogPValue carry the significance of the
	// describing sub-feature vector (the paper's significance measure).
	VectorPValue    float64
	VectorLogPValue float64
	// VectorSupport is the supporting-region count of the vector.
	VectorSupport int
	// GroupSize is the number of region windows mined for the pattern.
	GroupSize int
	// GroupSupport is the pattern's frequency within its group.
	GroupSupport int
	// Support is the verified graph-space support across the database
	// (0 when SkipVerify).
	Support int
	// Frequency is Support / |DB| (0 when SkipVerify).
	Frequency float64
}

// Profile records where GraphSig's time went (Fig 10's three phases).
type Profile struct {
	RWR             time.Duration
	FeatureAnalysis time.Duration
	FSM             time.Duration
	Verify          time.Duration
}

// Total returns the summed phase time.
func (p Profile) Total() time.Duration {
	return p.RWR + p.FeatureAnalysis + p.FSM + p.Verify
}

// Result is the outcome of a GraphSig mine.
type Result struct {
	Subgraphs []Subgraph
	Profile   Profile
	// VectorsMined counts significant sub-feature vectors across labels.
	VectorsMined int
	// GroupsMined counts region groups that went through maximal FSM.
	GroupsMined int
	// GroupsPruned counts groups dropped as false positives (no frequent
	// subgraph at the FSM threshold).
	GroupsPruned int
	Truncated    bool
}

// BuildFeatureSet returns the feature set Mine uses for db under cfg:
// cfg.FeatureSet when supplied, otherwise the chemistry set (§II-B) built
// from the database.
func BuildFeatureSet(db []*graph.Graph, cfg Config) *feature.Set {
	fillConfig(&cfg)
	if cfg.FeatureSet != nil {
		return cfg.FeatureSet
	}
	return feature.ChemistrySet(db, cfg.Alphabet, cfg.TopAtoms)
}

// VectorGroup is one significant sub-feature vector with its provenance:
// the source-node label whose group produced it and the exact supporting
// regions.
type VectorGroup struct {
	Label graph.Label
	Sig   fvmine.Significant
	// Nodes are the (graph, node) regions supporting the vector.
	Nodes []rwr.NodeVector
}

// SignificantVectors runs only the feature-space half of GraphSig
// (Alg 2 lines 3-7): RWR over the database and FVMine per source label
// under global empirical priors. The classifier of §V trains on its
// output. It returns the groups, the feature set used, and whether the
// search was truncated by the deadline.
func SignificantVectors(db []*graph.Graph, cfg Config) ([]VectorGroup, *feature.Set, bool) {
	fillConfig(&cfg)
	fs := cfg.FeatureSet
	if fs == nil {
		fs = feature.ChemistrySet(db, cfg.Alphabet, cfg.TopAtoms)
	}
	vectors := computeVectors(db, fs, cfg)
	groups, trunc := significantVectorGroups(vectors, cfg)
	return groups, fs, trunc
}

// computeVectors turns every node of every graph into a feature vector
// with the configured vectorizer.
func computeVectors(db []*graph.Graph, fs *feature.Set, cfg Config) []rwr.NodeVector {
	if cfg.Vectorizer == VectorizerWindowCounts {
		var out []rwr.NodeVector
		for gid, g := range db {
			for v := 0; v < g.NumNodes(); v++ {
				out = append(out, rwr.NodeVector{
					GraphID: gid,
					NodeID:  v,
					Label:   g.NodeLabel(v),
					Vec:     rwr.WindowCounts(g, v, cfg.CutoffRadius, fs, cfg.Bins),
				})
			}
		}
		return out
	}
	return rwr.DatabaseVectors(db, fs, rwr.Config{Alpha: cfg.Alpha, Bins: cfg.Bins})
}

// significantVectorGroups mines significant closed sub-feature vectors
// per source label. Priors are empirical over the *whole* vector database
// (§III): a region vector's significance is judged against random
// vectors drawn from all of D, not just its own label group — a rare
// atom's homogeneous contexts must not look "expected" among themselves.
func significantVectorGroups(vectors []rwr.NodeVector, cfg Config) ([]VectorGroup, bool) {
	truncatedRun := false
	allVecs := make([]feature.Vector, len(vectors))
	for i, nv := range vectors {
		allVecs[i] = nv.Vec
	}
	globalModel := sigmodel.New(allVecs)
	byLabel := map[graph.Label][]int{}
	for i, nv := range vectors {
		byLabel[nv.Label] = append(byLabel[nv.Label], i)
	}
	labels := make([]graph.Label, 0, len(byLabel))
	for l := range byLabel {
		labels = append(labels, l)
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })

	// Label groups are independent: mine them in parallel, then assemble
	// in sorted label order so the output stays deterministic.
	perLabel := make([][]VectorGroup, len(labels))
	truncFlags := make([]bool, len(labels))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for li, label := range labels {
		if truncated(cfg) {
			truncatedRun = true
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(li int, label graph.Label) {
			defer wg.Done()
			defer func() { <-sem }()
			idxs := byLabel[label]
			vecs := make([]feature.Vector, len(idxs))
			for i, idx := range idxs {
				vecs[i] = vectors[idx].Vec
			}
			minSup := supportThreshold(cfg, len(vecs))
			var sig []fvmine.Significant
			if cfg.TopKPerLabel > 0 {
				sig = fvmine.MineTopK(vecs, cfg.TopKPerLabel, minSup, globalModel)
			} else {
				mres := fvmine.Mine(vecs, fvmine.Options{
					MinSupport:    minSup,
					MaxPvalue:     cfg.MaxPvalue,
					Model:         globalModel,
					SkipZeroFloor: true,
					Deadline:      cfg.Deadline,
				})
				if mres.Truncated {
					truncFlags[li] = true
				}
				sig = mres.Vectors
				fvmine.SortBySignificance(sig)
				if cfg.MaxVectorsPerLabel > 0 && len(sig) > cfg.MaxVectorsPerLabel {
					sig = sig[:cfg.MaxVectorsPerLabel]
				}
			}
			out := make([]VectorGroup, 0, len(sig))
			for _, s := range sig {
				g := VectorGroup{Label: label, Sig: s}
				for _, vi := range s.SupportIdx {
					g.Nodes = append(g.Nodes, vectors[idxs[vi]])
				}
				out = append(out, g)
			}
			perLabel[li] = out
		}(li, label)
	}
	wg.Wait()
	var groups []VectorGroup
	for li := range perLabel {
		groups = append(groups, perLabel[li]...)
		truncatedRun = truncatedRun || truncFlags[li]
	}
	return groups, truncatedRun
}

// Mine runs GraphSig over db.
func Mine(db []*graph.Graph, cfg Config) Result {
	fillConfig(&cfg)
	var res Result
	if len(db) == 0 {
		return res
	}

	// Phase 1: RWR over every node of every graph (Alg 2 lines 3-4).
	t0 := time.Now()
	fs := cfg.FeatureSet
	if fs == nil {
		fs = feature.ChemistrySet(db, cfg.Alphabet, cfg.TopAtoms)
	}
	vectors := computeVectors(db, fs, cfg)
	res.Profile.RWR = time.Since(t0)

	// Phase 2: group by source label, FVMine per group (lines 5-7).
	t1 := time.Now()
	groups, trunc := significantVectorGroups(vectors, cfg)
	res.Truncated = res.Truncated || trunc
	res.VectorsMined = len(groups)
	res.Profile.FeatureAnalysis = time.Since(t1)

	// Phase 3: cut regions and run maximal FSM per group (lines 8-13).
	t2 := time.Now()
	best := map[string]*Subgraph{}
	for _, grp := range groups {
		if truncated(cfg) {
			res.Truncated = true
			break
		}
		nodes := grp.Nodes
		if cfg.MaxGroupSize > 0 && len(nodes) > cfg.MaxGroupSize {
			nodes = subsample(nodes, cfg.MaxGroupSize)
		}
		windows := make([]*graph.Graph, len(nodes))
		for i, nv := range nodes {
			windows[i] = db[nv.GraphID].CutGraph(nv.NodeID, cfg.CutoffRadius)
		}
		minSup := int(math.Ceil(cfg.FSMFreqPct / 100 * float64(len(windows))))
		if minSup < 2 {
			minSup = 2
		}
		if len(windows) < minSup {
			res.GroupsPruned++
			continue
		}
		res.GroupsMined++
		maximal := mineMaximal(windows, minSup, cfg)
		if len(maximal) == 0 {
			res.GroupsPruned++
			continue
		}
		for _, p := range maximal {
			if p.Graph.NumEdges() == 0 {
				continue
			}
			key := dfscode.Canonical(p.Graph)
			cur, ok := best[key]
			if !ok || grp.Sig.LogPValue < cur.VectorLogPValue {
				best[key] = &Subgraph{
					Graph:           p.Graph,
					Canonical:       key,
					SourceLabel:     grp.Label,
					VectorPValue:    grp.Sig.PValue,
					VectorLogPValue: grp.Sig.LogPValue,
					VectorSupport:   grp.Sig.Support,
					GroupSize:       len(windows),
					GroupSupport:    p.Support,
				}
			}
		}
	}
	res.Profile.FSM = time.Since(t2)

	// Final: verify support in graph space (in parallel across patterns;
	// counting is read-only on the database) and order the answer set.
	t3 := time.Now()
	ordered := make([]*Subgraph, 0, len(best))
	for _, sg := range best {
		ordered = append(ordered, sg)
	}
	if !cfg.SkipVerify {
		var wg sync.WaitGroup
		work := make(chan *Subgraph)
		workers := runtime.GOMAXPROCS(0)
		if workers > len(ordered) {
			workers = len(ordered)
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for sg := range work {
					sg.Support = isomorph.Support(sg.Graph, db)
					sg.Frequency = float64(sg.Support) / float64(len(db))
				}
			}()
		}
		for _, sg := range ordered {
			work <- sg
		}
		close(work)
		wg.Wait()
	}
	for _, sg := range ordered {
		res.Subgraphs = append(res.Subgraphs, *sg)
	}
	sort.Slice(res.Subgraphs, func(i, j int) bool {
		a, b := res.Subgraphs[i], res.Subgraphs[j]
		if a.VectorLogPValue != b.VectorLogPValue {
			return a.VectorLogPValue < b.VectorLogPValue
		}
		if a.Graph.NumEdges() != b.Graph.NumEdges() {
			return a.Graph.NumEdges() > b.Graph.NumEdges()
		}
		return a.Canonical < b.Canonical
	})
	res.Profile.Verify = time.Since(t3)
	return res
}

func fillConfig(cfg *Config) {
	d := Defaults()
	if cfg.Alpha <= 0 || cfg.Alpha >= 1 {
		cfg.Alpha = d.Alpha
	}
	if cfg.Bins <= 0 {
		cfg.Bins = d.Bins
	}
	if cfg.MaxPvalue <= 0 {
		cfg.MaxPvalue = d.MaxPvalue
	}
	if cfg.MinFreqPct <= 0 {
		cfg.MinFreqPct = d.MinFreqPct
	}
	if cfg.MinSupportFloor <= 0 {
		cfg.MinSupportFloor = d.MinSupportFloor
	}
	if cfg.CutoffRadius <= 0 {
		cfg.CutoffRadius = d.CutoffRadius
	}
	if cfg.FSMFreqPct <= 0 {
		cfg.FSMFreqPct = d.FSMFreqPct
	}
	if cfg.TopAtoms <= 0 {
		cfg.TopAtoms = d.TopAtoms
	}
}

func supportThreshold(cfg Config, setSize int) int {
	s := int(math.Ceil(cfg.MinFreqPct / 100 * float64(setSize)))
	if s < cfg.MinSupportFloor {
		s = cfg.MinSupportFloor
	}
	return s
}

func truncated(cfg Config) bool {
	return !cfg.Deadline.IsZero() && time.Now().After(cfg.Deadline)
}

// subsample deterministically picks k evenly spaced elements.
func subsample(nodes []rwr.NodeVector, k int) []rwr.NodeVector {
	out := make([]rwr.NodeVector, 0, k)
	step := float64(len(nodes)) / float64(k)
	for i := 0; i < k; i++ {
		out = append(out, nodes[int(float64(i)*step)])
	}
	return out
}

// groupPattern is the common shape of the two miners' outputs.
type groupPattern struct {
	Graph   *graph.Graph
	Support int
}

func mineMaximal(windows []*graph.Graph, minSup int, cfg Config) []groupPattern {
	switch cfg.Miner {
	case MinerGSpan:
		r := gspan.Mine(windows, gspan.Options{
			MinSupport: minSup,
			MaxEdges:   cfg.MaxPatternEdges,
			Deadline:   cfg.Deadline,
		})
		var out []groupPattern
		for _, p := range gspan.Maximal(r.Patterns) {
			out = append(out, groupPattern{Graph: p.Graph, Support: p.Support})
		}
		return out
	default:
		r := fsg.MaximalMine(windows, fsg.Options{
			MinSupport: minSup,
			MaxEdges:   cfg.MaxPatternEdges,
			Deadline:   cfg.Deadline,
		})
		var out []groupPattern
		for _, p := range r.Patterns {
			out = append(out, groupPattern{Graph: p.Graph, Support: p.Support})
		}
		return out
	}
}
