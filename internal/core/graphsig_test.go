package core

import (
	"testing"
	"time"

	"graphsig/internal/chem"
	"graphsig/internal/graph"
	"graphsig/internal/isomorph"
	"graphsig/internal/rwr"
)

// plantedDB builds a controlled database: `total` random carbon-skeleton
// molecules, the first `planted` of which carry an identical rare core.
func plantedDB(total, planted int, core *graph.Graph) []*graph.Graph {
	gen := chem.NewGenerator(99)
	db := make([]*graph.Graph, total)
	for i := range db {
		m := gen.Molecule()
		if i < planted {
			// Graft the core onto the molecule via one single bond.
			base := m.NumNodes()
			for v := 0; v < core.NumNodes(); v++ {
				m.AddNode(core.NodeLabel(v))
			}
			for _, e := range core.Edges() {
				m.MustAddEdge(base+e.From, base+e.To, e.Label)
			}
			m.MustAddEdge(0, base, chem.BondSingle)
		}
		m.ID = i
		db[i] = m
	}
	return db
}

func testConfig() Config {
	cfg := Defaults()
	cfg.CutoffRadius = 3
	cfg.MaxPvalue = 0.1
	cfg.MinSupportFloor = 3
	cfg.MaxGroupSize = 40
	return cfg
}

func TestDefaultsMatchTableIV(t *testing.T) {
	d := Defaults()
	if d.Alpha != 0.25 {
		t.Errorf("Alpha = %v; want 0.25", d.Alpha)
	}
	if d.MaxPvalue != 0.1 {
		t.Errorf("MaxPvalue = %v; want 0.1", d.MaxPvalue)
	}
	if d.MinFreqPct != 0.1 {
		t.Errorf("MinFreqPct = %v; want 0.1", d.MinFreqPct)
	}
	if d.CutoffRadius != 8 {
		t.Errorf("CutoffRadius = %v; want 8", d.CutoffRadius)
	}
	if d.FSMFreqPct != 80 {
		t.Errorf("FSMFreqPct = %v; want 80", d.FSMFreqPct)
	}
	if d.TopAtoms != 5 || d.Miner != MinerFSG {
		t.Errorf("TopAtoms=%d Miner=%d", d.TopAtoms, d.Miner)
	}
}

func TestMineRecoversPlantedCore(t *testing.T) {
	core := chem.SbCore()
	db := plantedDB(60, 9, core)
	res := Mine(db, testConfig())
	if len(res.Subgraphs) == 0 {
		t.Fatal("no significant subgraphs mined")
	}
	// Some mined subgraph must overlap the planted core substantially:
	// either it embeds in the core or the core embeds in it.
	found := false
	for _, sg := range res.Subgraphs {
		if sg.Graph.NumEdges() >= 3 &&
			(isomorph.SubgraphIsomorphic(sg.Graph, core) || isomorph.SubgraphIsomorphic(core, sg.Graph)) {
			found = true
			// The verified support must cover the planted graphs.
			if sg.Support < 5 {
				t.Errorf("core pattern support = %d; want >= 5", sg.Support)
			}
			break
		}
	}
	if !found {
		for _, sg := range res.Subgraphs {
			t.Logf("mined: %s (vecP=%g sup=%d)", sg.Graph, sg.VectorPValue, sg.Support)
		}
		t.Error("no mined subgraph overlaps the planted core")
	}
}

func TestMineVerifiedSupportMatchesIsomorphism(t *testing.T) {
	core := chem.QuinoneCore()
	db := plantedDB(40, 8, core)
	res := Mine(db, testConfig())
	for _, sg := range res.Subgraphs {
		want := isomorph.Support(sg.Graph, db)
		if sg.Support != want {
			t.Errorf("pattern %s: Support=%d; isomorphism says %d", sg.Graph, sg.Support, want)
		}
		if sg.Frequency != float64(want)/float64(len(db)) {
			t.Errorf("pattern %s: Frequency=%f", sg.Graph, sg.Frequency)
		}
	}
}

func TestMineDeterministic(t *testing.T) {
	core := chem.ThiopheneCore()
	db := plantedDB(40, 8, core)
	cfg := testConfig()
	a := Mine(db, cfg)
	b := Mine(db, cfg)
	if len(a.Subgraphs) != len(b.Subgraphs) {
		t.Fatalf("runs differ: %d vs %d subgraphs", len(a.Subgraphs), len(b.Subgraphs))
	}
	for i := range a.Subgraphs {
		if a.Subgraphs[i].Canonical != b.Subgraphs[i].Canonical {
			t.Fatalf("subgraph %d differs", i)
		}
	}
}

func TestMineEmptyDatabase(t *testing.T) {
	res := Mine(nil, testConfig())
	if len(res.Subgraphs) != 0 || res.Truncated {
		t.Errorf("unexpected result: %+v", res)
	}
}

func TestMineDeadline(t *testing.T) {
	core := chem.SbCore()
	db := plantedDB(60, 9, core)
	cfg := testConfig()
	cfg.Deadline = time.Now().Add(-time.Second)
	res := Mine(db, cfg)
	if !res.Truncated {
		t.Error("expected truncation")
	}
}

func TestMineNoDuplicateCanonicals(t *testing.T) {
	core := chem.NitroPhenylCore()
	db := plantedDB(50, 10, core)
	res := Mine(db, testConfig())
	seen := map[string]bool{}
	for _, sg := range res.Subgraphs {
		if seen[sg.Canonical] {
			t.Errorf("duplicate pattern %s", sg.Graph)
		}
		seen[sg.Canonical] = true
	}
}

func TestMineOrderedBySignificance(t *testing.T) {
	core := chem.SbCore()
	db := plantedDB(60, 9, core)
	res := Mine(db, testConfig())
	for i := 1; i < len(res.Subgraphs); i++ {
		if res.Subgraphs[i-1].VectorLogPValue > res.Subgraphs[i].VectorLogPValue {
			t.Fatal("subgraphs not ordered by significance")
		}
	}
}

func TestMineProfileCoversPhases(t *testing.T) {
	core := chem.SbCore()
	db := plantedDB(40, 8, core)
	res := Mine(db, testConfig())
	p := res.Profile
	if p.RWR <= 0 || p.FeatureAnalysis <= 0 {
		t.Errorf("profile phases empty: %+v", p)
	}
	if p.Total() < p.RWR {
		t.Error("Total < RWR")
	}
}

func TestMinerGSpanAgreesWithFSG(t *testing.T) {
	core := chem.QuinoneCore()
	db := plantedDB(40, 8, core)
	cfgFSG := testConfig()
	cfgG := testConfig()
	cfgG.Miner = MinerGSpan
	a := Mine(db, cfgFSG)
	b := Mine(db, cfgG)
	keys := func(r Result) map[string]bool {
		m := map[string]bool{}
		for _, sg := range r.Subgraphs {
			m[sg.Canonical] = true
		}
		return m
	}
	ka, kb := keys(a), keys(b)
	if len(ka) != len(kb) {
		t.Fatalf("miners disagree: fsg %d patterns, gspan %d", len(ka), len(kb))
	}
	for k := range ka {
		if !kb[k] {
			t.Errorf("pattern %q missing from gspan run", k)
		}
	}
}

func TestEvaluateSubgraphRareVsFrequent(t *testing.T) {
	core := chem.SbCore()
	db := plantedDB(80, 8, core)
	cfg := testConfig()
	fsSet := BuildFeatureSet(db, cfg)
	vectors := rwr.DatabaseVectors(db, fsSet, rwr.Config{Alpha: cfg.Alpha, Bins: cfg.Bins})

	rare := EvaluateSubgraph(db, vectors, core, cfg)
	benzene := EvaluateSubgraph(db, vectors, chem.Benzene(), cfg)

	if rare.Support != 8 {
		t.Errorf("core support = %d; want 8", rare.Support)
	}
	if benzene.Frequency < 0.4 {
		t.Errorf("benzene frequency = %f; want ubiquitous", benzene.Frequency)
	}
	// The rare planted core must be far more significant than benzene
	// (Fig 16's headline: benzene at ~70%% frequency is non-significant).
	if !(rare.LogPValue < benzene.LogPValue) {
		t.Errorf("rare logP=%f benzene logP=%f; want rare << benzene", rare.LogPValue, benzene.LogPValue)
	}
}

func TestEvaluateSubgraphAbsentPattern(t *testing.T) {
	db := plantedDB(20, 0, chem.SbCore())
	cfg := testConfig()
	fsSet := BuildFeatureSet(db, cfg)
	vectors := rwr.DatabaseVectors(db, fsSet, rwr.Config{Alpha: cfg.Alpha, Bins: cfg.Bins})
	stats := EvaluateSubgraph(db, vectors, chem.BiCore(), cfg)
	if stats.Support != 0 || stats.PValue != 1 {
		t.Errorf("absent pattern stats = %+v; want support 0, p-value 1", stats)
	}
}

func TestMineDegenerateInputs(t *testing.T) {
	cfg := testConfig()
	// Single-node graphs: no edges anywhere, nothing to mine, no panic.
	single := graph.New(1, 0)
	single.AddNode(chem.Atom("C"))
	db := []*graph.Graph{single, single.Clone(), single.Clone()}
	res := Mine(db, cfg)
	if len(res.Subgraphs) != 0 {
		t.Errorf("mined %d subgraphs from edgeless graphs", len(res.Subgraphs))
	}

	// Graphs with isolated nodes mixed in.
	g := chem.NewGenerator(1).Molecule()
	g.AddNode(chem.Atom("U")) // isolated exotic atom
	res = Mine([]*graph.Graph{g, g.Clone(), g.Clone(), g.Clone()}, cfg)
	for _, sg := range res.Subgraphs {
		if !sg.Graph.IsConnected() {
			t.Errorf("disconnected pattern mined: %s", sg.Graph)
		}
	}
}

func TestMineWindowCountsVectorizer(t *testing.T) {
	core := chem.SbCore()
	db := plantedDB(60, 9, core)
	cfg := testConfig()
	cfg.Vectorizer = VectorizerWindowCounts
	res := Mine(db, cfg)
	// The ablation vectorizer must still produce a well-formed result.
	for _, sg := range res.Subgraphs {
		if sg.Support != isomorph.Support(sg.Graph, db) {
			t.Errorf("support mismatch under window counts")
		}
	}
}

func TestSignificantVectorsExactSupportRegions(t *testing.T) {
	core := chem.BiCore()
	db := plantedDB(50, 8, core)
	cfg := testConfig()
	groups, fs, _ := SignificantVectors(db, cfg)
	if len(groups) == 0 {
		t.Fatal("no vector groups")
	}
	if fs == nil || fs.Len() == 0 {
		t.Fatal("no feature set")
	}
	for _, grp := range groups {
		if len(grp.Nodes) != grp.Sig.Support {
			t.Fatalf("group nodes %d != support %d", len(grp.Nodes), grp.Sig.Support)
		}
		for _, nv := range grp.Nodes {
			if nv.Label != grp.Label {
				t.Fatal("region label mismatch")
			}
			if !grp.Sig.Vec.SubVectorOf(nv.Vec) {
				t.Fatal("significant vector not a sub-vector of its region")
			}
		}
	}
}

func TestMineTopKMode(t *testing.T) {
	core := chem.SbCore()
	db := plantedDB(60, 9, core)
	cfg := testConfig()
	cfg.TopKPerLabel = 5
	cfg.MaxPvalue = 1e-300 // would kill everything in threshold mode
	res := Mine(db, cfg)
	if len(res.Subgraphs) == 0 {
		t.Fatal("top-k mode mined nothing despite impossible threshold")
	}
	// The planted core must still surface.
	found := false
	for _, sg := range res.Subgraphs {
		if sg.Graph.NumEdges() >= 3 &&
			(isomorph.SubgraphIsomorphic(sg.Graph, core) || isomorph.SubgraphIsomorphic(core, sg.Graph)) {
			found = true
		}
	}
	if !found {
		t.Error("planted core not recovered in top-k mode")
	}
}

// TestUniformRegionsYieldNothingSignificant checks the statistical
// soundness of the model at its fixed point: when every region vector in
// a label group is identical, the floor's per-feature priors are all 1,
// the expected support equals the database size, and nothing deviates
// from expectation — the answer set is empty. (Identical *multi-region*
// graphs, by contrast, are legitimately significant: their features
// co-occur perfectly, which the independence model correctly flags as
// deviation; the paper's model behaves the same way.)
func TestUniformRegionsYieldNothingSignificant(t *testing.T) {
	db := make([]*graph.Graph, 30)
	for i := range db {
		g := graph.New(2, 1)
		g.AddNode(chem.Atom("C"))
		g.AddNode(chem.Atom("C"))
		g.MustAddEdge(0, 1, chem.BondSingle)
		g.ID = i
		db[i] = g
	}
	cfg := testConfig()
	res := Mine(db, cfg)
	if len(res.Subgraphs) != 0 {
		for _, sg := range res.Subgraphs {
			t.Logf("unexpected: %s p=%g", sg.Graph, sg.VectorPValue)
		}
		t.Errorf("uniform regions produced %d 'significant' subgraphs", len(res.Subgraphs))
	}
}
