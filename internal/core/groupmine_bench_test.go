package core

import (
	"fmt"
	"runtime"
	"testing"

	"graphsig/internal/chem"
	"graphsig/internal/feature"
	"graphsig/internal/graph"
	"graphsig/internal/runctl"
)

// BenchmarkGroupMine times Phase 3 alone — window cutting plus maximal
// FSM over the vector groups — at Parallelism 1 versus GOMAXPROCS.
// Phases 1–2 run once outside the timer so the comparison isolates the
// group-mining pool; each iteration still builds its own window cache,
// as a real mine does. On a multi-core runner the parallel variant
// should run ≥ 2× faster; TestMineParallelismInvariance separately
// proves the answer set is identical.
func BenchmarkGroupMine(b *testing.B) {
	db := plantedDB(60, 12, chem.SbCore())
	cfg := testConfig()
	fillConfig(&cfg)
	setup := runctl.New(runctl.Options{})
	fs := cfg.FeatureSet
	if fs == nil {
		fs = feature.ChemistrySet(db, cfg.Alphabet, cfg.TopAtoms)
	}
	vectors := computeVectors(db, fs, cfg, setup)
	groups := significantVectorGroups(vectors, cfg, setup)
	if setup.Stopped() || len(groups) == 0 {
		b.Fatalf("setup produced %d groups (stopped=%v)", len(groups), setup.Stopped())
	}
	for _, p := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("parallelism-%d", p), func(b *testing.B) {
			run := cfg
			run.Parallelism = p
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, launched := mineGroups(func(i int) *graph.Graph { return db[i] }, groups, run, runctl.New(runctl.Options{}), nil, nil)
				if launched != len(groups) {
					b.Fatalf("launched %d of %d groups", launched, len(groups))
				}
			}
		})
	}
}
