package core

// Determinism and fault-injection suite for the parallel Phase-3
// pipeline: Result.Subgraphs must be byte-identical across parallelism
// levels and repeated runs — including when a shared VF2 budget trips
// mid-verification — and a trip mid-pool must leave the stage-span
// books balanced.

import (
	"fmt"
	"testing"

	"graphsig/internal/chem"
	"graphsig/internal/isomorph"
	"graphsig/internal/obs"
	"graphsig/internal/runctl"
)

// mineFingerprint flattens every observable field of the answer set so
// two runs can be compared for exact equality.
func mineFingerprint(res Result) []string {
	out := make([]string, 0, len(res.Subgraphs))
	for _, sg := range res.Subgraphs {
		out = append(out, fmt.Sprintf("%s|%d|%v|%v|%d|%d|%d|%d|%v|%v",
			sg.Canonical, sg.SourceLabel, sg.VectorPValue, sg.VectorLogPValue,
			sg.VectorSupport, sg.GroupSize, sg.GroupSupport, sg.Support,
			sg.Frequency, sg.Unverified))
	}
	return out
}

func assertSameMine(t *testing.T, label string, a, b Result) {
	t.Helper()
	if a.VectorsMined != b.VectorsMined || a.GroupsMined != b.GroupsMined ||
		a.GroupsPruned != b.GroupsPruned || a.GroupErrors != b.GroupErrors {
		t.Errorf("%s: counters differ: %d/%d/%d/%d vs %d/%d/%d/%d", label,
			a.VectorsMined, a.GroupsMined, a.GroupsPruned, a.GroupErrors,
			b.VectorsMined, b.GroupsMined, b.GroupsPruned, b.GroupErrors)
	}
	fa, fb := mineFingerprint(a), mineFingerprint(b)
	if len(fa) != len(fb) {
		t.Fatalf("%s: %d vs %d subgraphs", label, len(fa), len(fb))
	}
	for i := range fa {
		if fa[i] != fb[i] {
			t.Errorf("%s: subgraph %d differs:\n  %s\n  %s", label, i, fa[i], fb[i])
		}
	}
}

// TestMineParallelismInvariance mines the same database serially
// (Parallelism 1), at a forced fan-out, and twice at the same setting:
// every answer set must be identical, field for field.
func TestMineParallelismInvariance(t *testing.T) {
	db := plantedDB(40, 8, chem.SbCore())
	mineAt := func(p int) Result {
		cfg := testConfig()
		cfg.Parallelism = p
		return Mine(db, cfg)
	}
	serial := mineAt(1)
	if len(serial.Subgraphs) == 0 {
		t.Fatal("serial mine found nothing; the comparison is vacuous")
	}
	if serial.Truncated {
		t.Fatalf("serial mine truncated: %s", serial.Degradation.String())
	}
	for _, sg := range serial.Subgraphs {
		if sg.Unverified {
			t.Errorf("complete verified run left %s Unverified", sg.Canonical)
		}
	}
	assertSameMine(t, "parallelism 1 vs 4", serial, mineAt(4))
	assertSameMine(t, "parallelism 4 repeated", mineAt(4), mineAt(4))
}

// TestMineDeterministicUnderVF2Budget is the hard determinism case: a
// tight VF2 budget. The VF2 pool is charged only by graph-space
// verification (mining-internal isomorphism draws MinerSteps), so the
// trip always lands in the verify phase; which patterns got verified
// before it depends on worker scheduling, so the verify phase voids
// itself all-or-nothing. The answer set must be identical across
// parallelism levels, uniformly Unverified.
func TestMineDeterministicUnderVF2Budget(t *testing.T) {
	db := plantedDB(40, 8, chem.SbCore())
	probe := runctl.New(runctl.Options{CheckInterval: 1})
	pcfg := testConfig()
	pcfg.Ctl = probe
	if res := Mine(db, pcfg); res.Truncated {
		t.Fatalf("probe mine truncated: %s", res.Degradation.String())
	}
	verifySpend := probe.Spent().VF2Nodes
	if verifySpend < 64 {
		t.Fatalf("verification consumed only %d VF2 nodes; workload too small for a mid-verify trip", verifySpend)
	}
	mineAt := func(p int) Result {
		cfg := testConfig()
		cfg.Parallelism = p
		cfg.Ctl = runctl.New(runctl.Options{
			CheckInterval: 1,
			Budgets:       runctl.Budgets{VF2Nodes: verifySpend / 2},
		})
		return Mine(db, cfg)
	}
	serial := mineAt(1)
	if len(serial.Subgraphs) == 0 {
		t.Fatal("budgeted mine found nothing; the comparison is vacuous")
	}
	if !serial.Truncated {
		t.Fatal("VF2 budget at half the verification spend did not trip")
	}
	if serial.Degradation.Reason != runctl.ReasonBudget {
		t.Fatalf("degradation = %+v; want budget", serial.Degradation)
	}
	if serial.Degradation.Stage != runctl.StageVerify {
		t.Fatalf("VF2 budget tripped in stage %q; must land in verify", serial.Degradation.Stage)
	}
	for _, sg := range serial.Subgraphs {
		if !sg.Unverified || sg.Support != 0 || sg.Frequency != 0 {
			t.Errorf("tripped verification left partial support on %s: support=%d unverified=%v",
				sg.Canonical, sg.Support, sg.Unverified)
		}
	}
	assertSameMine(t, "budgeted parallelism 1 vs 4", serial, mineAt(4))
	assertSameMine(t, "budgeted parallelism 4 repeated", mineAt(4), mineAt(4))
}

// TestMineParallelPhase3Balance trips a Parallelism-4 mine at check
// counts spread across the pipeline (fractions of a probed total) and
// asserts the stage-span books balance — started == completed +
// degraded per stage — with exactly one run-level degradation.
func TestMineParallelPhase3Balance(t *testing.T) {
	db := plantedDB(40, 8, chem.SbCore())
	probe := runctl.New(runctl.Options{CheckInterval: 1})
	pcfg := testConfig()
	pcfg.Parallelism = 4
	pcfg.Ctl = probe
	if res := Mine(db, pcfg); res.Truncated {
		t.Fatalf("probe mine truncated: %s", res.Degradation.String())
	}
	total := probe.Spent().Checks
	if total < 16 {
		t.Fatalf("probe consumed only %d checks; workload too small to inject mid-run", total)
	}
	// Check totals are not exactly reproducible (VF2 search-tree sizes
	// depend on incidental orderings), so the last injection point stays
	// a comfortable fraction below the probed total.
	for _, k := range []int64{2, total / 2, 3 * total / 4, 7 * total / 8} {
		t.Run(fmt.Sprintf("cancel-at-%d", k), func(t *testing.T) {
			reg := obs.NewRegistry()
			cfg := testConfig()
			cfg.Parallelism = 4
			cfg.Ctl = runctl.New(runctl.Options{
				CheckInterval: 1,
				Hook:          func(check int64) bool { return check >= k },
				Metrics:       reg,
			})
			res := Mine(db, cfg)
			if !res.Truncated {
				t.Fatal("hooked mine not truncated")
			}
			snap := reg.Snapshot()
			if deg := assertStageBalance(t, snap); deg == 0 {
				t.Error("truncated run booked no degraded stage span")
			}
			if got := degradationTotal(snap); got != 1 {
				t.Errorf("degradations counted %d times, want exactly once", got)
			}
		})
	}
}

// TestMineParallelMinerBudgetBalance is the budget variant: a miner
// budget drains mid-pool while several group workers are in flight;
// the books must balance and the degradation must name the budget.
func TestMineParallelMinerBudgetBalance(t *testing.T) {
	db := plantedDB(40, 8, chem.SbCore())
	reg := obs.NewRegistry()
	cfg := testConfig()
	cfg.Parallelism = 4
	cfg.Metrics = reg
	cfg.Budgets = runctl.Budgets{MinerSteps: 40}
	res := Mine(db, cfg)
	if !res.Truncated {
		t.Fatal("miner budget of 40 steps did not trip")
	}
	if res.Degradation.Reason != runctl.ReasonBudget {
		t.Errorf("degradation = %+v; want budget", res.Degradation)
	}
	snap := reg.Snapshot()
	if deg := assertStageBalance(t, snap); deg == 0 {
		t.Error("truncated run booked no degraded stage span")
	}
	if got := degradationTotal(snap); got != 1 {
		t.Errorf("degradations counted %d times, want exactly once", got)
	}
}

// TestVerifyPanicMarksUnverified injects panics into the verification
// workers and asserts the affected patterns are distinguishable from
// true zero-support. Only verification draws the VF2 pool, so a hook
// that panics once any VF2 node is spent detonates inside a verify
// worker. A panic — unlike a budget trip — does not void the phase:
// patterns the surviving work produced keep their exact support, and
// everything the dead workers drained stays Unverified.
func TestVerifyPanicMarksUnverified(t *testing.T) {
	db := plantedDB(40, 8, chem.SbCore())
	var ctl *runctl.Controller
	ctl = runctl.New(runctl.Options{
		CheckInterval: 1,
		Hook: func(int64) bool {
			if ctl.Spent().VF2Nodes > 0 {
				panic("injected verify fault")
			}
			return false
		},
	})
	cfg := testConfig()
	cfg.Ctl = ctl
	res := Mine(db, cfg)
	if len(res.Subgraphs) == 0 {
		t.Fatal("mine found nothing; the panic never had a target")
	}
	if !res.Truncated || res.Degradation.Reason != runctl.ReasonPanic {
		t.Fatalf("degradation = %+v; want panic", res.Degradation)
	}
	unverified := 0
	for _, sg := range res.Subgraphs {
		if sg.Unverified {
			unverified++
			if sg.Support != 0 || sg.Frequency != 0 {
				t.Errorf("unverified pattern %s carries support %d", sg.Canonical, sg.Support)
			}
			continue
		}
		// A pattern the panic spared must carry its exact graph-space
		// support, not a partial count.
		if want := isomorph.Support(sg.Graph, db); sg.Support != want {
			t.Errorf("verified pattern %s has support %d; exact %d", sg.Canonical, sg.Support, want)
		}
	}
	if unverified == 0 {
		t.Error("panicking verify workers left no pattern Unverified")
	}
}

// TestMineWindowCacheAndPrefilterCounters checks the new obs series
// move: a complete verified mine must account one prefilter decision
// per (pattern, database graph) pair, and the window cache must have
// cut every distinct region exactly once.
func TestMineWindowCacheAndPrefilterCounters(t *testing.T) {
	db := plantedDB(40, 8, chem.SbCore())
	reg := obs.NewRegistry()
	cfg := testConfig()
	cfg.Metrics = reg
	res := Mine(db, cfg)
	if res.Truncated {
		t.Fatalf("mine truncated: %s", res.Degradation.String())
	}
	if len(res.Subgraphs) == 0 {
		t.Fatal("mine found nothing")
	}
	snap := reg.Snapshot()
	misses := snap.CounterValue(obs.MWindowCacheMisses)
	hits := snap.CounterValue(obs.MWindowCacheHits)
	if misses == 0 {
		t.Error("window cache cut no windows")
	}
	if hits == 0 {
		t.Error("no region was shared between groups; cache never hit")
	}
	rejects := snap.CounterValue(obs.MPrefilterRejects, "site", "verify")
	passes := snap.CounterValue(obs.MPrefilterPasses, "site", "verify")
	if got, want := rejects+passes, int64(len(res.Subgraphs)*len(db)); got != want {
		t.Errorf("verify prefilter decisions = %d, want %d (patterns × graphs)", got, want)
	}
}
