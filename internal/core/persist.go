package core

// persist.go serializes the durable artifacts of a mine: the
// persistable mining parameters, resumable Phase-3 snapshots, and
// completed results. The jobs layer journals these byte payloads in its
// write-ahead log (internal/journal) so a crashed process can re-enqueue
// incomplete jobs — resuming Phase 3 from the last snapshot — and
// surface finished results after restart. All encodings are
// deterministic: JSON over structs (fixed field order) with graphs in
// the integer-label transaction text format, which round-trips node
// order, edge order, and labels exactly.

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"time"

	"graphsig/internal/graph"
	"graphsig/internal/obs"
)

// persistedConfig is the wire form of a Config's mining parameters —
// exactly the CacheKey fields. The Alphabet travels as its ordered name
// list (label values are intern order, so the list rebuilds an
// identical alphabet); a custom FeatureSet is not carried — the serving
// path always derives the feature set from the database — and the
// embedded Key lets DecodeConfig prove the reconstruction is
// identity-preserving.
type persistedConfig struct {
	V   int    `json:"v"`
	Key string `json:"key"`

	Alphabet []string `json:"alphabet,omitempty"`

	Alpha              float64 `json:"alpha"`
	Bins               int     `json:"bins"`
	MaxPvalue          float64 `json:"maxPvalue"`
	MinFreqPct         float64 `json:"minFreqPct"`
	MinSupportFloor    int     `json:"minSupportFloor"`
	CutoffRadius       int     `json:"cutoffRadius"`
	FSMFreqPct         float64 `json:"fsmFreqPct"`
	TopAtoms           int     `json:"topAtoms"`
	Miner              int     `json:"miner"`
	MaxVectorsPerLabel int     `json:"maxVectorsPerLabel"`
	TopKPerLabel       int     `json:"topKPerLabel"`
	MaxGroupSize       int     `json:"maxGroupSize"`
	MaxPatternEdges    int     `json:"maxPatternEdges"`
	SkipVerify         bool    `json:"skipVerify"`
	Vectorizer         int     `json:"vectorizer"`
}

// persistVersion tags every persisted payload; bump on schema change so
// a journal written by an older build is rejected instead of misread.
const persistVersion = 1

// EncodeConfig serializes cfg's mining parameters for the job journal.
// It fails when the config is not round-trippable — a custom Alphabet
// or FeatureSet whose identity the wire form cannot carry — so callers
// learn at submit time that such a job cannot be made durable, rather
// than replaying it into a different mine after a crash.
func EncodeConfig(cfg Config) ([]byte, error) {
	fillConfig(&cfg)
	pc := persistedConfig{
		V:                  persistVersion,
		Key:                cfg.CacheKey(),
		Alpha:              cfg.Alpha,
		Bins:               cfg.Bins,
		MaxPvalue:          cfg.MaxPvalue,
		MinFreqPct:         cfg.MinFreqPct,
		MinSupportFloor:    cfg.MinSupportFloor,
		CutoffRadius:       cfg.CutoffRadius,
		FSMFreqPct:         cfg.FSMFreqPct,
		TopAtoms:           cfg.TopAtoms,
		Miner:              int(cfg.Miner),
		MaxVectorsPerLabel: cfg.MaxVectorsPerLabel,
		TopKPerLabel:       cfg.TopKPerLabel,
		MaxGroupSize:       cfg.MaxGroupSize,
		MaxPatternEdges:    cfg.MaxPatternEdges,
		SkipVerify:         cfg.SkipVerify,
		Vectorizer:         int(cfg.Vectorizer),
	}
	if cfg.Alphabet != nil {
		pc.Alphabet = cfg.Alphabet.Names()
	}
	buf, err := json.Marshal(pc)
	if err != nil {
		return nil, fmt.Errorf("core: encode config: %w", err)
	}
	if rt, err := DecodeConfig(buf); err != nil || rt.CacheKey() != pc.Key {
		return nil, fmt.Errorf("core: config is not persistable (custom alphabet or feature set); journal replay would mine a different request")
	}
	return buf, nil
}

// DecodeConfig reconstructs a journaled config. The restored config's
// CacheKey must equal the recorded one; a mismatch means the schema or
// defaults drifted since the journal was written, and the record is
// rejected rather than silently replayed as a different mine.
func DecodeConfig(data []byte) (Config, error) {
	var pc persistedConfig
	if err := json.Unmarshal(data, &pc); err != nil {
		return Config{}, fmt.Errorf("core: decode config: %w", err)
	}
	if pc.V != persistVersion {
		return Config{}, fmt.Errorf("core: persisted config version %d, want %d", pc.V, persistVersion)
	}
	cfg := Config{
		Alpha:              pc.Alpha,
		Bins:               pc.Bins,
		MaxPvalue:          pc.MaxPvalue,
		MinFreqPct:         pc.MinFreqPct,
		MinSupportFloor:    pc.MinSupportFloor,
		CutoffRadius:       pc.CutoffRadius,
		FSMFreqPct:         pc.FSMFreqPct,
		TopAtoms:           pc.TopAtoms,
		Miner:              MinerKind(pc.Miner),
		MaxVectorsPerLabel: pc.MaxVectorsPerLabel,
		TopKPerLabel:       pc.TopKPerLabel,
		MaxGroupSize:       pc.MaxGroupSize,
		MaxPatternEdges:    pc.MaxPatternEdges,
		SkipVerify:         pc.SkipVerify,
		Vectorizer:         VectorizerKind(pc.Vectorizer),
	}
	if len(pc.Alphabet) > 0 {
		a := graph.NewAlphabet()
		for _, name := range pc.Alphabet {
			a.Intern(name)
		}
		cfg.Alphabet = a
	}
	fillConfig(&cfg)
	if got := cfg.CacheKey(); got != pc.Key {
		return Config{}, fmt.Errorf("core: persisted config key %s restores to %s; defaults drifted", pc.Key[:12], got[:12])
	}
	return cfg, nil
}

// PersistedPattern is one mined pattern in wire form.
type PersistedPattern struct {
	// Graph is the pattern in integer-label transaction text.
	Graph string `json:"graph"`
	// Support is the pattern's frequency within its group.
	Support int `json:"support"`
}

// PersistedOutcome is one group's Phase-3 outcome in wire form — enough
// to replay the group-merge without re-mining the group.
type PersistedOutcome struct {
	Windows  int                `json:"windows"`
	Mined    bool               `json:"mined,omitempty"`
	Pruned   bool               `json:"pruned,omitempty"`
	Panicked bool               `json:"panicked,omitempty"`
	Patterns []PersistedPattern `json:"patterns,omitempty"`
}

// ResumeState is a resumable snapshot of Phase-3 progress: the outcomes
// of the first Done vector groups, committed in group order. A mine
// handed a valid ResumeState skips re-mining that prefix and produces a
// final Result byte-identical to an uninterrupted run — the merge
// replays recorded outcomes in the same serial group order, and the
// graph text codec round-trips patterns exactly.
type ResumeState struct {
	// V is the snapshot schema version.
	V int `json:"v"`
	// Key binds the snapshot to one (database fingerprint, config)
	// identity — core.MineKey of the run that emitted it.
	Key string `json:"key"`
	// GroupsHash fingerprints the Phase-2 vector-group list the
	// snapshot indexes into. Phases 1–2 are deterministic, so a resumed
	// run recomputes the same list; the hash proves it before the
	// prefix is trusted.
	GroupsHash string `json:"groupsHash"`
	// Done is the committed group-prefix length.
	Done int `json:"done"`
	// Outcomes are the committed outcomes, Outcomes[i] for group i.
	Outcomes []PersistedOutcome `json:"outcomes"`
}

// EncodeResumeState serializes a snapshot for the journal.
func EncodeResumeState(rs *ResumeState) ([]byte, error) {
	buf, err := json.Marshal(rs)
	if err != nil {
		return nil, fmt.Errorf("core: encode resume state: %w", err)
	}
	return buf, nil
}

// DecodeResumeState parses a journaled snapshot.
func DecodeResumeState(data []byte) (*ResumeState, error) {
	var rs ResumeState
	if err := json.Unmarshal(data, &rs); err != nil {
		return nil, fmt.Errorf("core: decode resume state: %w", err)
	}
	if rs.V != persistVersion {
		return nil, fmt.Errorf("core: resume state version %d, want %d", rs.V, persistVersion)
	}
	if rs.Done != len(rs.Outcomes) {
		return nil, fmt.Errorf("core: resume state claims %d committed groups but carries %d outcomes", rs.Done, len(rs.Outcomes))
	}
	return &rs, nil
}

// encodeGraphText renders g in integer-label transaction text.
func encodeGraphText(g *graph.Graph) (string, error) {
	var b strings.Builder
	if err := graph.WriteDB(&b, []*graph.Graph{g}, nil); err != nil {
		return "", err
	}
	return b.String(), nil
}

// decodeGraphText parses exactly one graph from transaction text.
func decodeGraphText(s string) (*graph.Graph, error) {
	gs, err := graph.ReadDB(strings.NewReader(s), nil)
	if err != nil {
		return nil, err
	}
	if len(gs) != 1 {
		return nil, fmt.Errorf("core: pattern text holds %d graphs, want 1", len(gs))
	}
	return gs[0], nil
}

// persistOutcomes converts a committed outcome prefix to wire form.
func persistOutcomes(outcomes []groupOutcome) ([]PersistedOutcome, error) {
	out := make([]PersistedOutcome, len(outcomes))
	for i, o := range outcomes {
		po := PersistedOutcome{Windows: o.windows, Mined: o.mined, Pruned: o.pruned, Panicked: o.panicked}
		for _, p := range o.patterns {
			text, err := encodeGraphText(p.Graph)
			if err != nil {
				return nil, fmt.Errorf("core: persist group %d pattern: %w", i, err)
			}
			po.Patterns = append(po.Patterns, PersistedPattern{Graph: text, Support: p.Support})
		}
		out[i] = po
	}
	return out, nil
}

// restoreOutcomes converts wire-form outcomes back to the merge's
// internal shape, reparsing pattern graphs.
func restoreOutcomes(persisted []PersistedOutcome) ([]groupOutcome, error) {
	out := make([]groupOutcome, len(persisted))
	for i, po := range persisted {
		o := groupOutcome{windows: po.Windows, mined: po.Mined, pruned: po.Pruned, panicked: po.Panicked}
		for _, p := range po.Patterns {
			g, err := decodeGraphText(p.Graph)
			if err != nil {
				return nil, fmt.Errorf("core: restore group %d pattern: %w", i, err)
			}
			o.patterns = append(o.patterns, groupPattern{Graph: g, Support: p.Support})
		}
		out[i] = o
	}
	return out, nil
}

// groupsHash fingerprints the Phase-2 group list: count, per-group
// label, significance, support, and the exact supporting regions. Two
// runs over the same database and config produce the same hash, so a
// match proves a snapshot's outcome indices address the same groups.
func groupsHash(groups []VectorGroup) string {
	h := sha256.New()
	var buf [8]byte
	writeInt := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	writeInt(int64(len(groups)))
	for _, g := range groups {
		writeInt(int64(g.Label))
		writeInt(int64(math.Float64bits(g.Sig.LogPValue)))
		writeInt(int64(g.Sig.Support))
		writeInt(int64(len(g.Nodes)))
		for _, nv := range g.Nodes {
			writeInt(int64(nv.GraphID))
			writeInt(int64(nv.NodeID))
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// validResumePrefix vets cfg.Resume against the run's identity and
// restores the committed prefix. Any mismatch — wrong database/config
// key, diverged group list, impossible prefix length, undecodable
// pattern — rejects the snapshot (counted on MResumeRejected) and the
// mine starts from scratch: resuming wrong is strictly worse than
// resuming slow.
func validResumePrefix(rs *ResumeState, key, gh string, nGroups int, reg *obs.Registry) []groupOutcome {
	if rs == nil {
		return nil
	}
	reject := func() []groupOutcome {
		reg.Counter(obs.MResumeRejected).Inc()
		return nil
	}
	if rs.Key != key || rs.GroupsHash != gh || rs.Done < 0 || rs.Done > nGroups {
		return reject()
	}
	restored, err := restoreOutcomes(rs.Outcomes)
	if err != nil {
		return reject()
	}
	return restored
}

// PersistedSubgraph is one result pattern in wire form.
type PersistedSubgraph struct {
	Graph           string  `json:"graph"`
	Canonical       string  `json:"canonical"`
	SourceLabel     int     `json:"sourceLabel"`
	VectorPValue    float64 `json:"vectorPValue"`
	VectorLogPValue float64 `json:"vectorLogPValue"`
	VectorSupport   int     `json:"vectorSupport"`
	GroupSize       int     `json:"groupSize"`
	GroupSupport    int     `json:"groupSupport"`
	Support         int     `json:"support"`
	Frequency       float64 `json:"frequency"`
	Unverified      bool    `json:"unverified,omitempty"`
}

// persistedResult is the wire form of a completed Result. Profile
// timings are carried as nanoseconds.
type persistedResult struct {
	V            int                 `json:"v"`
	Subgraphs    []PersistedSubgraph `json:"subgraphs"`
	VectorsMined int                 `json:"vectorsMined"`
	GroupsMined  int                 `json:"groupsMined"`
	GroupsPruned int                 `json:"groupsPruned"`
	GroupErrors  int                 `json:"groupErrors"`
	Truncated    bool                `json:"truncated"`
	Degradation  json.RawMessage     `json:"degradation,omitempty"`
	ProfileNs    [4]int64            `json:"profileNs"`
}

// EncodeResult serializes a finished mine for the journal, so a
// restarted process can surface completed jobs' results without
// re-mining. Float fields survive exactly (Go's JSON encoder emits
// shortest round-trip representations).
func EncodeResult(res Result) ([]byte, error) {
	pr := persistedResult{
		V:            persistVersion,
		VectorsMined: res.VectorsMined,
		GroupsMined:  res.GroupsMined,
		GroupsPruned: res.GroupsPruned,
		GroupErrors:  res.GroupErrors,
		Truncated:    res.Truncated,
		ProfileNs: [4]int64{
			int64(res.Profile.RWR), int64(res.Profile.FeatureAnalysis),
			int64(res.Profile.FSM), int64(res.Profile.Verify),
		},
	}
	deg, err := json.Marshal(res.Degradation)
	if err != nil {
		return nil, fmt.Errorf("core: encode degradation: %w", err)
	}
	pr.Degradation = deg
	for _, sg := range res.Subgraphs {
		text, err := encodeGraphText(sg.Graph)
		if err != nil {
			return nil, fmt.Errorf("core: encode result pattern %s: %w", sg.Canonical, err)
		}
		pr.Subgraphs = append(pr.Subgraphs, PersistedSubgraph{
			Graph:           text,
			Canonical:       sg.Canonical,
			SourceLabel:     int(sg.SourceLabel),
			VectorPValue:    sg.VectorPValue,
			VectorLogPValue: sg.VectorLogPValue,
			VectorSupport:   sg.VectorSupport,
			GroupSize:       sg.GroupSize,
			GroupSupport:    sg.GroupSupport,
			Support:         sg.Support,
			Frequency:       sg.Frequency,
			Unverified:      sg.Unverified,
		})
	}
	return json.Marshal(pr)
}

// DecodeResult reconstructs a journaled Result.
func DecodeResult(data []byte) (Result, error) {
	var pr persistedResult
	if err := json.Unmarshal(data, &pr); err != nil {
		return Result{}, fmt.Errorf("core: decode result: %w", err)
	}
	if pr.V != persistVersion {
		return Result{}, fmt.Errorf("core: persisted result version %d, want %d", pr.V, persistVersion)
	}
	res := Result{
		VectorsMined: pr.VectorsMined,
		GroupsMined:  pr.GroupsMined,
		GroupsPruned: pr.GroupsPruned,
		GroupErrors:  pr.GroupErrors,
		Truncated:    pr.Truncated,
	}
	res.Profile.RWR = time.Duration(pr.ProfileNs[0])
	res.Profile.FeatureAnalysis = time.Duration(pr.ProfileNs[1])
	res.Profile.FSM = time.Duration(pr.ProfileNs[2])
	res.Profile.Verify = time.Duration(pr.ProfileNs[3])
	if len(pr.Degradation) > 0 {
		if err := json.Unmarshal(pr.Degradation, &res.Degradation); err != nil {
			return Result{}, fmt.Errorf("core: decode degradation: %w", err)
		}
	}
	for _, psg := range pr.Subgraphs {
		g, err := decodeGraphText(psg.Graph)
		if err != nil {
			return Result{}, fmt.Errorf("core: decode result pattern %s: %w", psg.Canonical, err)
		}
		res.Subgraphs = append(res.Subgraphs, Subgraph{
			Graph:           g,
			Canonical:       psg.Canonical,
			SourceLabel:     graph.Label(psg.SourceLabel),
			VectorPValue:    psg.VectorPValue,
			VectorLogPValue: psg.VectorLogPValue,
			VectorSupport:   psg.VectorSupport,
			GroupSize:       psg.GroupSize,
			GroupSupport:    psg.GroupSupport,
			Support:         psg.Support,
			Frequency:       psg.Frequency,
			Unverified:      psg.Unverified,
		})
	}
	return res, nil
}
