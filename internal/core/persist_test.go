package core

// Durability suite: resumable Phase-3 snapshots must restart a mine
// with byte-identical output (reusing the parallelism-invariance
// fingerprint harness), invalid snapshots must be rejected into a
// from-scratch run, and the persisted config/result codecs must
// round-trip exactly.

import (
	"strings"
	"testing"

	"graphsig/internal/chem"
	"graphsig/internal/feature"
	"graphsig/internal/graph"
	"graphsig/internal/obs"
	"graphsig/internal/runctl"
)

// checkpointedMine runs Mine with a checkpoint sink installed and
// returns the result plus every snapshot emitted, in order.
func checkpointedMine(t *testing.T, db []*graph.Graph, cfg Config, reg *obs.Registry) (Result, [][]byte) {
	t.Helper()
	var snaps [][]byte
	cfg.Ctl = runctl.New(runctl.Options{
		Metrics: reg,
		CheckpointSink: func(payload []byte) {
			cp := make([]byte, len(payload))
			copy(cp, payload)
			snaps = append(snaps, cp)
		},
	})
	res := Mine(db, cfg)
	return res, snaps
}

func TestResumeByteIdentical(t *testing.T) {
	db := plantedDB(60, 18, chem.SbCore())
	cfg := testConfig()
	cfg.Parallelism = 4
	cfg.CheckpointEvery = 1 // snapshot at every commit: maximal coverage

	base, snaps := checkpointedMine(t, db, cfg, nil)
	if len(snaps) == 0 {
		t.Fatalf("no snapshots emitted (VectorsMined=%d)", base.VectorsMined)
	}

	// Resume from the first, a middle, and the last snapshot: every
	// prefix must replay into the identical final answer.
	picks := map[string]int{"first": 0, "middle": len(snaps) / 2, "last": len(snaps) - 1}
	for name, i := range picks {
		rs, err := DecodeResumeState(snaps[i])
		if err != nil {
			t.Fatalf("%s snapshot: %v", name, err)
		}
		if rs.Done == 0 {
			t.Fatalf("%s snapshot committed no groups", name)
		}
		rcfg := cfg
		rcfg.Ctl = nil
		rcfg.Resume = rs
		reg := obs.NewRegistry()
		rcfg.Metrics = reg
		got := Mine(db, rcfg)
		assertSameMine(t, "resume/"+name, base, got)
		if n := reg.Counter(obs.MResumeRejected).Value(); n != 0 {
			t.Errorf("resume/%s: %d snapshots rejected, want 0", name, n)
		}
	}
}

func TestResumeAcrossParallelism(t *testing.T) {
	// A snapshot taken at one parallelism level must resume correctly
	// at another: the commit frontier is in group order regardless of
	// worker scheduling.
	db := plantedDB(50, 15, chem.SbCore())
	cfg := testConfig()
	cfg.Parallelism = 1
	base, snaps := checkpointedMine(t, db, cfg, nil)
	if len(snaps) == 0 {
		t.Skip("mine too small to checkpoint at default granularity")
	}
	rs, err := DecodeResumeState(snaps[len(snaps)-1])
	if err != nil {
		t.Fatal(err)
	}
	rcfg := cfg
	rcfg.Ctl = nil
	rcfg.Resume = rs
	rcfg.Parallelism = 6
	assertSameMine(t, "resume across parallelism", base, Mine(db, rcfg))
}

func TestResumeRejectsForeignSnapshot(t *testing.T) {
	db := plantedDB(50, 15, chem.SbCore())
	cfg := testConfig()
	cfg.CheckpointEvery = 1
	base, snaps := checkpointedMine(t, db, cfg, nil)
	if len(snaps) == 0 {
		t.Fatal("no snapshots emitted")
	}
	rs, err := DecodeResumeState(snaps[len(snaps)-1])
	if err != nil {
		t.Fatal(err)
	}

	tamper := []struct {
		name string
		mut  func(*ResumeState)
	}{
		{"wrong key", func(r *ResumeState) { r.Key = "not-this-mine" }},
		{"wrong groups hash", func(r *ResumeState) { r.GroupsHash = "diverged" }},
		{"impossible prefix", func(r *ResumeState) {
			r.Done += 1000
			r.Outcomes = append([]PersistedOutcome{}, r.Outcomes...)
			for len(r.Outcomes) < r.Done {
				r.Outcomes = append(r.Outcomes, PersistedOutcome{})
			}
		}},
		{"undecodable pattern", func(r *ResumeState) {
			r.Outcomes = append([]PersistedOutcome{}, r.Outcomes...)
			for i := range r.Outcomes {
				if len(r.Outcomes[i].Patterns) > 0 {
					ps := append([]PersistedPattern{}, r.Outcomes[i].Patterns...)
					ps[0].Graph = "t # 0\nv 0 notanint\n"
					r.Outcomes[i].Patterns = ps
					return
				}
			}
		}},
	}
	for _, tc := range tamper {
		bad := *rs
		tc.mut(&bad)
		rcfg := cfg
		rcfg.Resume = &bad
		reg := obs.NewRegistry()
		rcfg.Metrics = reg
		got := Mine(db, rcfg)
		// Rejected snapshot → from-scratch mine → identical answer.
		assertSameMine(t, "reject/"+tc.name, base, got)
		if n := reg.Counter(obs.MResumeRejected).Value(); n != 1 {
			t.Errorf("reject/%s: MResumeRejected = %d, want 1", tc.name, n)
		}
	}
}

func TestResumeStateRoundTrip(t *testing.T) {
	db := plantedDB(50, 15, chem.SbCore())
	cfg := testConfig()
	cfg.CheckpointEvery = 1
	_, snaps := checkpointedMine(t, db, cfg, nil)
	if len(snaps) == 0 {
		t.Fatal("no snapshots emitted")
	}
	for i, buf := range snaps {
		rs, err := DecodeResumeState(buf)
		if err != nil {
			t.Fatalf("snapshot %d: %v", i, err)
		}
		re, err := EncodeResumeState(rs)
		if err != nil {
			t.Fatalf("snapshot %d re-encode: %v", i, err)
		}
		if string(re) != string(buf) {
			t.Fatalf("snapshot %d did not round-trip byte-identically", i)
		}
	}
}

func TestConfigPersistRoundTrip(t *testing.T) {
	cfg := testConfig()
	cfg.TopKPerLabel = 7
	cfg.Miner = MinerGSpan
	cfg.SkipVerify = true
	buf, err := EncodeConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeConfig(buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.CacheKey() != cfg.CacheKey() {
		t.Fatal("decoded config has a different CacheKey")
	}
	if back.Miner != MinerGSpan || back.TopKPerLabel != 7 || !back.SkipVerify {
		t.Fatalf("decoded config lost fields: %+v", back)
	}
}

func TestConfigPersistRejectsCustomFeatureSet(t *testing.T) {
	cfg := testConfig()
	cfg.FeatureSet = feature.NewCustomSet(nil, []graph.Label{0}, []string{"only-this"})
	if _, err := EncodeConfig(cfg); err == nil {
		t.Fatal("config with a custom feature set must not encode")
	}
}

func TestConfigPersistRejectsVersionSkew(t *testing.T) {
	buf, err := EncodeConfig(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	skew := strings.Replace(string(buf), `"v":1`, `"v":99`, 1)
	if _, err := DecodeConfig([]byte(skew)); err == nil {
		t.Fatal("version-skewed config must not decode")
	}
}

func TestResultPersistRoundTrip(t *testing.T) {
	db := plantedDB(50, 15, chem.SbCore())
	res := Mine(db, testConfig())
	if len(res.Subgraphs) == 0 {
		t.Fatal("mine found nothing to persist")
	}
	buf, err := EncodeResult(res)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeResult(buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSameMine(t, "result round-trip", res, back)
	if back.Truncated != res.Truncated || back.GroupErrors != res.GroupErrors {
		t.Fatal("result flags did not survive the round-trip")
	}
	if back.Profile.RWR != res.Profile.RWR || back.Profile.Verify != res.Profile.Verify {
		t.Fatal("profile timings did not survive the round-trip")
	}
}
