//go:build race

package core

// raceEnabled reports whether the race detector is compiled in; timing
// assertions widen their slack under its ~10x slowdown.
const raceEnabled = true
