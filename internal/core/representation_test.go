package core

// Representation-invariance suite: the CSR graph core must be
// observationally identical to the frozen pre-CSR implementation kept in
// internal/graph/reference. Databases are round-tripped through the
// reference representation (replaying the construction sequence) and
// mined end to end; every observable of the answer set — canonical
// patterns, supports, p-values, counters — must be byte-identical. The
// mined supports are additionally recounted with the reference VF2 as an
// independent oracle.

import (
	"fmt"
	"testing"

	"graphsig/internal/chem"
	"graphsig/internal/graph"
	"graphsig/internal/graph/reference"
)

// referenceRoundTrip replays every graph through the old adjacency
// representation and back. The result must be indistinguishable from the
// original database under mining.
func referenceRoundTrip(db []*graph.Graph) []*graph.Graph {
	out := make([]*graph.Graph, len(db))
	for i, g := range db {
		out[i] = reference.FromGraph(g).ToGraph()
	}
	return out
}

// randomizedDB builds a corpus with no planted structure: pure generator
// molecules across a seed range, so the miner exercises sparse-support
// paths the planted corpora never hit.
func randomizedDB(seed int64, total int) []*graph.Graph {
	gen := chem.NewGenerator(seed)
	db := make([]*graph.Graph, total)
	for i := range db {
		m := gen.Molecule()
		m.ID = i
		db[i] = m
	}
	return db
}

func TestRepresentationInvariance(t *testing.T) {
	cases := []struct {
		name string
		db   []*graph.Graph
	}{
		{"fig10-planted-40x8", plantedDB(40, 8, chem.SbCore())},
		{"fig10-planted-60x12", plantedDB(60, 12, chem.SbCore())},
		{"randomized-seed7", randomizedDB(7, 30)},
		{"randomized-seed1234", randomizedDB(1234, 30)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			direct := Mine(tc.db, testConfig())
			roundTripped := Mine(referenceRoundTrip(tc.db), testConfig())
			assertSameMine(t, "csr vs reference round-trip", direct, roundTripped)
			if direct.Truncated {
				t.Fatalf("mine truncated: %s", direct.Degradation.String())
			}

			// Independent support oracle: recount every verified pattern
			// with the frozen reference VF2 over reference graphs.
			refDB := make([]*reference.Graph, len(tc.db))
			for i, g := range tc.db {
				refDB[i] = reference.FromGraph(g)
			}
			for _, sg := range direct.Subgraphs {
				if sg.Unverified {
					continue
				}
				if got := reference.Support(reference.FromGraph(sg.Graph), refDB); got != sg.Support {
					t.Errorf("pattern %s: CSR support %d, reference oracle %d",
						sg.Canonical, sg.Support, got)
				}
			}
		})
	}
}

// TestRepresentationInvarianceParallel crosses representations with the
// parallel pipeline: a reference round-trip mined at fan-out 4 must
// still equal the direct serial mine.
func TestRepresentationInvarianceParallel(t *testing.T) {
	db := plantedDB(40, 8, chem.SbCore())
	serial := Mine(db, testConfig())
	if len(serial.Subgraphs) == 0 {
		t.Fatal("serial mine found nothing; the comparison is vacuous")
	}
	cfg := testConfig()
	cfg.Parallelism = 4
	parallel := Mine(referenceRoundTrip(db), cfg)
	assertSameMine(t, "direct serial vs round-tripped parallel", serial, parallel)
}

// TestReferenceConversionFidelity pins the conversion itself: node
// labels, edge lists, adjacency iteration order, and cut windows must
// agree between a graph and its reference image, graph by graph.
func TestReferenceConversionFidelity(t *testing.T) {
	db := plantedDB(12, 4, chem.SbCore())
	for _, g := range db {
		r := reference.FromGraph(g)
		if r.NumNodes() != g.NumNodes() || r.NumEdges() != g.NumEdges() {
			t.Fatalf("graph %d: size mismatch %d/%d vs %d/%d",
				g.ID, r.NumNodes(), r.NumEdges(), g.NumNodes(), g.NumEdges())
		}
		for v := 0; v < g.NumNodes(); v++ {
			var want, got []string
			g.Neighbors(v, func(u int, l graph.Label) {
				want = append(want, fmt.Sprintf("%d:%d", u, l))
			})
			r.Neighbors(v, func(u int, l graph.Label) {
				got = append(got, fmt.Sprintf("%d:%d", u, l))
			})
			if len(want) != len(got) {
				t.Fatalf("graph %d node %d: degree %d vs %d", g.ID, v, len(want), len(got))
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("graph %d node %d: adjacency order diverges at %d: %s vs %s",
						g.ID, v, i, want[i], got[i])
				}
			}
		}
		for radius := 0; radius <= 3; radius++ {
			a := graph.Fingerprint([]*graph.Graph{g.CutGraph(0, radius)})
			b := graph.Fingerprint([]*graph.Graph{r.CutGraph(0, radius).ToGraph()})
			if a != b {
				t.Fatalf("graph %d: CutGraph(0,%d) fingerprints differ", g.ID, radius)
			}
		}
	}
}
