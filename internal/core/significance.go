package core

import (
	"math"

	"graphsig/internal/feature"
	"graphsig/internal/graph"
	"graphsig/internal/isomorph"
	"graphsig/internal/rwr"
	"graphsig/internal/sigmodel"
)

// SubgraphStats evaluates an arbitrary pattern against a database through
// the paper's feature-space model — the machinery behind the Fig 16
// p-value-vs-frequency analysis and the benzene non-significance result.
type SubgraphStats struct {
	// Support and Frequency are the graph-space transaction support.
	Support   int
	Frequency float64
	// Regions is the number of center nodes examined (the images of
	// pattern node 0 under one embedding per supporting graph).
	Regions int
	// PValue / LogPValue evaluate the floor of the region vectors under
	// the priors of the pattern's source-label vector group.
	PValue    float64
	LogPValue float64
}

// EvaluateSubgraph measures the significance of pattern over db: it
// locates the pattern's occurrences, takes the RWR vectors of the
// occurrence centers (the nodes playing pattern node 0), floors them into
// the pattern's describing sub-feature vector, and computes that vector's
// binomial p-value against the empirical priors of all same-label
// vectors, exactly as GraphSig's feature-space model prescribes.
//
// vectors must be the output of rwr.DatabaseVectors over db with the same
// feature set and RWR configuration.
func EvaluateSubgraph(db []*graph.Graph, vectors []rwr.NodeVector, pattern *graph.Graph, cfg Config) SubgraphStats {
	fillConfig(&cfg)
	var stats SubgraphStats
	if pattern.NumNodes() == 0 || len(db) == 0 {
		stats.PValue = 1
		return stats
	}
	// Index vectors by (graph, node); the prior population is the whole
	// vector database, matching Mine's global model.
	index := map[[2]int]feature.Vector{}
	population := make([]feature.Vector, len(vectors))
	labelCounts := map[graph.Label]int{}
	for i, nv := range vectors {
		index[[2]int{nv.GraphID, nv.NodeID}] = nv.Vec
		population[i] = nv.Vec
		labelCounts[nv.Label]++
	}

	// Anchor the region windows on the pattern's most distinctive node:
	// the one whose label is rarest in the database. (GraphSig's own
	// mining anchors on whichever label group surfaced the vector; for
	// an arbitrary query pattern the rarest label is the analogue.)
	center := 0
	for v := 1; v < pattern.NumNodes(); v++ {
		if labelCounts[pattern.NodeLabel(v)] < labelCounts[pattern.NodeLabel(center)] {
			center = v
		}
	}

	var regionVecs []feature.Vector
	for gid, g := range db {
		m := isomorph.FindEmbedding(pattern, g)
		if m == nil {
			continue
		}
		stats.Support++
		if v, ok := index[[2]int{gid, m[center]}]; ok {
			regionVecs = append(regionVecs, v)
		}
	}
	stats.Frequency = float64(stats.Support) / float64(len(db))
	stats.Regions = len(regionVecs)
	if len(regionVecs) == 0 || len(population) == 0 {
		stats.PValue = 1
		return stats
	}

	describing := feature.Floor(regionVecs)
	model := sigmodel.New(population)
	// The describing vector's exact support within the population.
	support := 0
	for _, v := range population {
		if describing.SubVectorOf(v) {
			support++
		}
	}
	stats.LogPValue = model.LogPValue(describing, support)
	stats.PValue = math.Exp(stats.LogPValue)
	return stats
}
