package core

import (
	"sort"

	"graphsig/internal/dfscode"
	"graphsig/internal/feature"
	"graphsig/internal/graph"
	"graphsig/internal/runctl"
	"graphsig/internal/rwr"
)

// This file is the stage-level surface of the miner: the pieces of Mine
// that a scatter-gather coordinator (internal/shard) recomposes. The
// decomposition follows from what must be global for results to be
// byte-identical at any shard count: per-graph work (feature stats, RWR
// vectorization, support counting) scatters, while every decision that
// reads the whole distribution — the significance model's empirical
// priors, FVMine thresholds, group assembly, pattern dedup — must run
// once over pooled inputs. Each exported stage therefore takes plain
// data in and returns plain data out, observes cfg.Ctl when set, and
// leaves all cross-shard pooling to the caller.

// Normalized returns cfg with the same defaulting Mine itself applies
// (Table IV values for zero fields, GOMAXPROCS parallelism). A
// coordinator normalizes once so every shard and the gather phase see
// the exact same parameters.
func Normalized(cfg Config) Config {
	fillConfig(&cfg)
	return cfg
}

// ControllerFor returns the run controller a mine under cfg observes:
// cfg.Ctl when supplied, else a fresh one from the config's context,
// deadline, budgets and metrics. Callers that split a mine across
// stages must pin one controller into cfg.Ctl so cancellation, budgets
// and degradation reports stay shared.
func ControllerFor(cfg Config) *runctl.Controller {
	return controllerFor(cfg)
}

// ComputeVectors runs the RWR phase over db: one feature vector per
// node of every graph, under a StageRWR span. GraphIDs in the result
// index into db; a coordinator vectorizing a shard remaps them to
// database positions before pooling. Per-graph vectors depend only on
// that graph's content, which is what makes this stage scatterable.
func ComputeVectors(db []*graph.Graph, fs *feature.Set, cfg Config) []rwr.NodeVector {
	fillConfig(&cfg)
	ctl := controllerFor(cfg)
	span := ctl.StartStage(runctl.StageRWR)
	vecs := computeVectors(db, fs, cfg, ctl)
	span.End(int64(len(vecs)))
	return vecs
}

// SignificantGroups mines significant closed sub-feature vectors per
// source label, under a StageFVMine span. The significance model's
// priors are empirical over ALL the vectors given — this is the stage
// that must see the pooled database, never one shard's slice: a vector
// judged against a shard-local background gets a shard-dependent
// p-value, and the paper's significance measure is defined against the
// whole of D.
func SignificantGroups(vectors []rwr.NodeVector, cfg Config) []VectorGroup {
	fillConfig(&cfg)
	ctl := controllerFor(cfg)
	span := ctl.StartStage(runctl.StageFVMine)
	groups := significantVectorGroups(vectors, cfg, ctl)
	span.End(int64(len(groups)))
	return groups
}

// PatternStats carries Phase-3 accounting out of MinePatterns.
type PatternStats struct {
	// GroupsMined counts groups that entered maximal FSM.
	GroupsMined int
	// GroupsPruned counts groups dropped as false positives.
	GroupsPruned int
	// GroupErrors counts isolated group-worker panics.
	GroupErrors int
}

// MinePatterns runs Phase 3: cut region windows around each group's
// supporting nodes (through fetch, so the database may live behind a
// lazy store reader), run maximal FSM per group, and dedup patterns by
// minimum DFS code keeping the most significant provenance. Patterns
// return sorted by canonical code, all marked Unverified — graph-space
// support verification is the caller's (schedulable, shardable) step.
// Checkpoint/resume (cfg.Resume, a controller checkpoint sink) needs a
// database identity and therefore requires cfg.DBFingerprint; with an
// empty fingerprint both are disabled rather than mis-keyed.
func MinePatterns(fetch func(int) *graph.Graph, groups []VectorGroup, cfg Config) ([]*Subgraph, PatternStats) {
	fillConfig(&cfg)
	ctl := controllerFor(cfg)
	return minePatterns(fetch, cfg.DBFingerprint, groups, cfg, ctl)
}

// SortSubgraphs orders an answer set the way Mine reports it: most
// significant vector first, then larger patterns, then canonical code.
// The key is a pure function of each subgraph, so sorting a merged
// multi-shard set reproduces the single-process order.
func SortSubgraphs(subs []Subgraph) {
	sort.Slice(subs, func(i, j int) bool {
		a, b := subs[i], subs[j]
		if a.VectorLogPValue != b.VectorLogPValue {
			return a.VectorLogPValue < b.VectorLogPValue
		}
		if a.Graph.NumEdges() != b.Graph.NumEdges() {
			return a.Graph.NumEdges() > b.Graph.NumEdges()
		}
		return a.Canonical < b.Canonical
	})
}

// minePatterns is Phase 3 plus the best-pattern merge. Outcomes are
// folded in group order regardless of worker completion order, so the
// dedup tie-break (lowest vector log-p wins, first group wins ties) is
// deterministic at any parallelism.
func minePatterns(fetch func(int) *graph.Graph, dbFP string, groups []VectorGroup, cfg Config, ctl *runctl.Controller) ([]*Subgraph, PatternStats) {
	var stats PatternStats
	// Durability hooks: when the caller installed a checkpoint sink or
	// handed us a snapshot, bind this run's identity (database + config
	// + group list) so snapshots can only resume the exact same mine.
	var resumed []groupOutcome
	var ckpt *checkpointer
	if (cfg.Resume != nil || ctl.WantsCheckpoints()) && dbFP != "" {
		key := MineKey(dbFP, cfg)
		gh := groupsHash(groups)
		resumed = validResumePrefix(cfg.Resume, key, gh, len(groups), ctl.Metrics())
		if ctl.WantsCheckpoints() {
			every := cfg.CheckpointEvery
			if every <= 0 {
				every = DefaultCheckpointEvery
			}
			ckpt = newCheckpointer(len(groups), len(resumed), every, func(done int, outcomes []groupOutcome) {
				persisted, err := persistOutcomes(outcomes)
				if err != nil {
					return // unserializable snapshot: skip, never block mining
				}
				buf, err := EncodeResumeState(&ResumeState{
					V: persistVersion, Key: key, GroupsHash: gh,
					Done: done, Outcomes: persisted,
				})
				if err != nil {
					return
				}
				ctl.EmitCheckpoint(buf)
			})
		}
	}
	outcomes, launched := mineGroups(fetch, groups, cfg, ctl, resumed, ckpt)
	if launched < len(groups) {
		ctl.RecordStop(runctl.StageGroupMine, int64(launched), int64(len(groups)), "vector groups mined")
	}
	best := map[string]*Subgraph{}
	for gi := 0; gi < launched; gi++ {
		o := &outcomes[gi]
		grp := groups[gi]
		if o.mined {
			stats.GroupsMined++
		}
		if o.panicked {
			stats.GroupErrors++
			continue
		}
		if o.pruned {
			stats.GroupsPruned++
			continue
		}
		for _, p := range o.patterns {
			if p.Graph.NumEdges() == 0 {
				continue
			}
			// Group miners number pattern vertices in discovery order,
			// which varies between processes; rematerializing from the
			// minimum DFS code makes the reported graph canonical, so the
			// answer set is byte-stable across runs and across a
			// crash/resume boundary (cmd/serve's crash test relies on it).
			code := dfscode.MinimumCode(p.Graph)
			key := code.String()
			cur, ok := best[key]
			if !ok || grp.Sig.LogPValue < cur.VectorLogPValue {
				best[key] = &Subgraph{
					Graph:           code.Graph(),
					Canonical:       key,
					SourceLabel:     grp.Label,
					VectorPValue:    grp.Sig.PValue,
					VectorLogPValue: grp.Sig.LogPValue,
					VectorSupport:   grp.Sig.Support,
					GroupSize:       o.windows,
					GroupSupport:    p.Support,
				}
			}
		}
	}
	ordered := make([]*Subgraph, 0, len(best))
	for _, sg := range best {
		ordered = append(ordered, sg)
	}
	// Map iteration order is random; sort by canonical code so the
	// verification feed order is reproducible. Under a VF2 budget the
	// feed order decides *which* patterns get verified before the budget
	// trips — unsorted, two identical runs could verify different
	// subsets.
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Canonical < ordered[j].Canonical })
	// Every pattern starts unverified; a verifier clears the flag only
	// on a completed support count, so a drained (worker panic) or
	// cut-off pattern is distinguishable from one whose true support is
	// zero.
	for _, sg := range ordered {
		sg.Unverified = true
	}
	return ordered, stats
}
