package core

import (
	"sync"

	"graphsig/internal/graph"
	"graphsig/internal/obs"
)

// windowKey identifies one cut region. The radius is part of the key
// even though a single mine cuts at one radius only, so a cache can
// never serve a window cut at the wrong radius if it outlives a config.
type windowKey struct {
	graphID, nodeID, radius int
}

// windowEntry is one cache slot. The Once guarantees the cut runs
// exactly once even when several group workers miss on the same key
// concurrently; losers block until the winner's cut is ready.
type windowEntry struct {
	once sync.Once
	g    *graph.Graph
}

// windowCache shares CutGraph results across vector groups. Regions
// supporting many significant vectors appear in many groups; without
// the cache each appearance pays a BFS cut of the same ball. Cached
// windows are shared read-only between groups — the miners never
// mutate their input graphs.
type windowCache struct {
	// fetch resolves a database position to its graph — a slice index
	// for an in-memory mine, a lazy segment load for a store-backed one.
	fetch  func(int) *graph.Graph
	radius int

	mu sync.Mutex
	m  map[windowKey]*windowEntry

	hits   *obs.Counter
	misses *obs.Counter
}

func newWindowCache(fetch func(int) *graph.Graph, radius int, reg *obs.Registry) *windowCache {
	return &windowCache{
		fetch:  fetch,
		radius: radius,
		m:      make(map[windowKey]*windowEntry),
		hits:   reg.Counter(obs.MWindowCacheHits),
		misses: reg.Counter(obs.MWindowCacheMisses),
	}
}

// window returns the radius-bounded cut around (graphID, nodeID),
// cutting on first use. Safe for concurrent use; the returned graph is
// shared and must be treated as read-only.
func (c *windowCache) window(graphID, nodeID int) *graph.Graph {
	k := windowKey{graphID: graphID, nodeID: nodeID, radius: c.radius}
	c.mu.Lock()
	e, ok := c.m[k]
	if !ok {
		e = &windowEntry{}
		c.m[k] = e
	}
	c.mu.Unlock()
	if ok {
		c.hits.Inc()
	} else {
		c.misses.Inc()
	}
	e.once.Do(func() { e.g = c.fetch(graphID).CutGraph(nodeID, c.radius) })
	return e.g
}
