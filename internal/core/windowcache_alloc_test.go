package core

// Allocation contract of the window cache's hit path: once a region is
// cut, re-requesting it is a map probe plus two no-op counter bumps —
// no heap traffic. Groups share regions heavily, so a hit path that
// allocated would charge every group after the first for nothing.

import (
	"testing"

	"graphsig/internal/chem"
	"graphsig/internal/graph"
	"graphsig/internal/obs"
)

func TestWindowCacheHitPathZeroAllocs(t *testing.T) {
	db := plantedDB(8, 2, chem.SbCore())
	cache := newWindowCache(func(i int) *graph.Graph { return db[i] }, 3, obs.NewRegistry())
	// Populate: every key below is a miss exactly once.
	for gid := range db {
		for node := 0; node < db[gid].NumNodes(); node += 3 {
			cache.window(gid, node)
		}
	}
	if allocs := testing.AllocsPerRun(100, func() {
		for gid := range db {
			for node := 0; node < db[gid].NumNodes(); node += 3 {
				cache.window(gid, node)
			}
		}
	}); allocs != 0 {
		t.Errorf("window cache hit path: %v allocs per run; want 0", allocs)
	}
}
