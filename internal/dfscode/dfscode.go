// Package dfscode implements gSpan-style DFS codes for connected labeled
// graphs: the edge-tuple encoding, the total order on codes, minimum
// (canonical) code construction, and the minimality check used by gSpan's
// duplicate pruning. The minimum code doubles as the canonical label used
// across the repository to deduplicate mined patterns.
//
// A DFS code is a sequence of edge tuples (i, j, li, le, lj) where i and j
// are DFS discovery indices: a forward edge has j = i's frontier + 1 and
// discovers vertex j, a backward edge has j < i and closes a cycle. The
// minimum code over all DFS traversals is a canonical form: two connected
// labeled graphs are isomorphic iff their minimum codes are equal.
package dfscode

import (
	"fmt"
	"strings"

	"graphsig/internal/graph"
)

// EdgeCode is one DFS code entry: edge between discovery indices I and J
// with node labels LI, LJ and edge label LE.
type EdgeCode struct {
	I, J   int
	LI, LE graph.Label
	LJ     graph.Label
}

// Forward reports whether the entry is a forward (vertex-discovering) edge.
func (e EdgeCode) Forward() bool { return e.I < e.J }

// Code is a DFS code: an ordered list of edge entries.
type Code []EdgeCode

// CompareEdges orders two code entries by gSpan's DFS lexicographic order
// (structure first, then labels). It returns -1, 0 or +1.
func CompareEdges(a, b EdgeCode) int {
	if a.I == b.I && a.J == b.J {
		return compareLabels(a, b)
	}
	if edgeLess(a, b) {
		return -1
	}
	return 1
}

func compareLabels(a, b EdgeCode) int {
	switch {
	case a.LI != b.LI:
		return cmpLabel(a.LI, b.LI)
	case a.LE != b.LE:
		return cmpLabel(a.LE, b.LE)
	case a.LJ != b.LJ:
		return cmpLabel(a.LJ, b.LJ)
	}
	return 0
}

func cmpLabel(a, b graph.Label) int {
	if a < b {
		return -1
	}
	if a > b {
		return 1
	}
	return 0
}

// edgeLess implements the structural part of gSpan's edge order for
// entries with distinct (I, J).
func edgeLess(a, b EdgeCode) bool {
	af, bf := a.Forward(), b.Forward()
	switch {
	case af && bf:
		return a.J < b.J || (a.J == b.J && a.I > b.I)
	case !af && !bf:
		return a.I < b.I || (a.I == b.I && a.J < b.J)
	case !af && bf: // a backward, b forward
		return a.I < b.J
	default: // a forward, b backward
		return a.J <= b.I
	}
}

// Compare orders codes lexicographically entry by entry; a strict prefix
// precedes its extensions.
func Compare(a, b Code) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := CompareEdges(a[i], b[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// NumNodes returns the number of vertices the code describes.
func (c Code) NumNodes() int {
	max := -1
	for _, e := range c {
		if e.I > max {
			max = e.I
		}
		if e.J > max {
			max = e.J
		}
	}
	return max + 1
}

// Graph materializes the code as a graph. It panics on malformed codes
// (an entry referencing an undiscovered vertex).
func (c Code) Graph() *graph.Graph {
	g := graph.New(c.NumNodes(), len(c))
	for _, e := range c {
		if e.Forward() {
			if g.NumNodes() == 0 {
				if e.I != 0 || e.J != 1 {
					panic("dfscode: first entry must be forward edge (0,1)")
				}
				g.AddNode(e.LI)
			}
			if e.I >= g.NumNodes() {
				panic("dfscode: forward edge from undiscovered vertex")
			}
			if e.J != g.NumNodes() {
				panic(fmt.Sprintf("dfscode: forward edge discovers vertex %d, frontier is %d", e.J, g.NumNodes()))
			}
			g.AddNode(e.LJ)
			g.MustAddEdge(e.I, e.J, e.LE)
		} else {
			g.MustAddEdge(e.I, e.J, e.LE)
		}
	}
	return g
}

// RightmostPath returns the DFS indices on the rightmost path, from the
// root (index 0) to the rightmost (most recently discovered) vertex.
func (c Code) RightmostPath() []int {
	if len(c) == 0 {
		return nil
	}
	// Walk forward edges backwards from the rightmost vertex.
	rm := -1
	parent := map[int]int{}
	for _, e := range c {
		if e.Forward() {
			parent[e.J] = e.I
			if e.J > rm {
				rm = e.J
			}
		}
	}
	var rev []int
	for v := rm; ; {
		rev = append(rev, v)
		p, ok := parent[v]
		if !ok {
			break
		}
		v = p
	}
	// Reverse into root-first order.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// String renders the code compactly, e.g. "(0,1,C,-,O)(1,2,O,=,C)" with
// numeric labels.
func (c Code) String() string {
	var b strings.Builder
	for _, e := range c {
		fmt.Fprintf(&b, "(%d,%d,%d,%d,%d)", e.I, e.J, int(e.LI), int(e.LE), int(e.LJ))
	}
	return b.String()
}

// embedding maps DFS indices of a partial code to nodes of a host graph.
type embedding struct {
	nodes []int // DFS index -> host node
	used  []bool
	// inverse: host node -> DFS index + 1 (0 = unmapped)
	inverse []int
}

func (e *embedding) extend(hostFrom, hostTo int, discovers bool, g *graph.Graph, edgeID int) *embedding {
	ne := &embedding{
		nodes:   append(append([]int(nil), e.nodes...), nil...),
		used:    append([]bool(nil), e.used...),
		inverse: append([]int(nil), e.inverse...),
	}
	if discovers {
		ne.nodes = append(ne.nodes, hostTo)
		ne.inverse[hostTo] = len(ne.nodes)
	}
	ne.used[edgeID] = true
	return ne
}

// edgeIndex gives each undirected host edge a dense id for used-edge sets.
type edgeIndex struct {
	ids map[[2]int]int
}

func newEdgeIndex(g *graph.Graph) *edgeIndex {
	idx := &edgeIndex{ids: make(map[[2]int]int, g.NumEdges())}
	for i, e := range g.Edges() {
		idx.ids[[2]int{e.From, e.To}] = i
	}
	return idx
}

func (idx *edgeIndex) id(u, v int) int {
	if u > v {
		u, v = v, u
	}
	return idx.ids[[2]int{u, v}]
}

// MinimumCode computes the canonical minimum DFS code of a connected
// labeled graph by greedy minimal extension over all partial embeddings
// (the construction behind gSpan's isMin test). It panics on empty or
// disconnected graphs, for which the code is undefined.
func MinimumCode(g *graph.Graph) Code {
	code, _ := buildMinimum(g, nil)
	return code
}

// IsMinimal reports whether c is the minimum DFS code of the graph it
// describes. gSpan uses this to discard duplicate pattern-growth states.
func IsMinimal(c Code) bool {
	if len(c) == 0 {
		return true
	}
	_, minimal := buildMinimum(c.Graph(), c)
	return minimal
}

// buildMinimum constructs the minimum DFS code of g. When reference is
// non-nil, construction stops early as soon as the minimum is known to
// differ from reference, returning (nil, false); if it matches the whole
// way, returns (reference, true).
func buildMinimum(g *graph.Graph, reference Code) (Code, bool) {
	if g.NumNodes() == 0 || !g.IsConnected() {
		panic("dfscode: minimum code requires a nonempty connected graph")
	}
	if g.NumEdges() == 0 {
		// Single vertex: represent as empty code. Callers treat
		// single-node patterns specially.
		return Code{}, len(reference) == 0
	}
	idx := newEdgeIndex(g)
	var code Code
	var embs []*embedding

	// Seed: minimal first entry over all directed edge instances.
	var best EdgeCode
	haveBest := false
	for _, e := range g.Edges() {
		for _, dir := range [2][2]int{{e.From, e.To}, {e.To, e.From}} {
			cand := EdgeCode{I: 0, J: 1, LI: g.NodeLabel(dir[0]), LE: e.Label, LJ: g.NodeLabel(dir[1])}
			if !haveBest || CompareEdges(cand, best) < 0 {
				best = cand
				haveBest = true
			}
		}
	}
	if reference != nil {
		if c := CompareEdges(best, reference[0]); c != 0 {
			return nil, false
		}
	}
	code = append(code, best)
	for _, e := range g.Edges() {
		for _, dir := range [2][2]int{{e.From, e.To}, {e.To, e.From}} {
			if g.NodeLabel(dir[0]) == best.LI && e.Label == best.LE && g.NodeLabel(dir[1]) == best.LJ {
				emb := &embedding{
					nodes:   []int{dir[0], dir[1]},
					used:    make([]bool, g.NumEdges()),
					inverse: make([]int, g.NumNodes()),
				}
				emb.inverse[dir[0]] = 1
				emb.inverse[dir[1]] = 2
				emb.used[idx.id(dir[0], dir[1])] = true
				embs = append(embs, emb)
			}
		}
	}

	for len(code) < g.NumEdges() {
		rmPath := code.RightmostPath()
		rmv := rmPath[len(rmPath)-1]
		type ext struct {
			ec        EdgeCode
			discovers bool
		}
		var bestExt *ext
		consider := func(e ext) {
			if bestExt == nil || CompareEdges(e.ec, bestExt.ec) < 0 {
				cp := e
				bestExt = &cp
			}
		}
		// Enumerate candidate extensions across all embeddings.
		for _, emb := range embs {
			// Backward: from rightmost vertex to rightmost-path vertices.
			hostRM := emb.nodes[rmv]
			g.Neighbors(hostRM, func(u int, l graph.Label) {
				if emb.used[idx.id(hostRM, u)] {
					return
				}
				pi := emb.inverse[u]
				if pi == 0 {
					return
				}
				pIdx := pi - 1
				if !onPath(rmPath, pIdx) {
					return
				}
				consider(ext{ec: EdgeCode{I: rmv, J: pIdx, LI: g.NodeLabel(hostRM), LE: l, LJ: g.NodeLabel(u)}})
			})
			// Forward: from rightmost-path vertices to undiscovered nodes.
			for _, pv := range rmPath {
				hostV := emb.nodes[pv]
				g.Neighbors(hostV, func(u int, l graph.Label) {
					if emb.inverse[u] != 0 {
						return
					}
					consider(ext{
						ec:        EdgeCode{I: pv, J: len(emb.nodes), LI: g.NodeLabel(hostV), LE: l, LJ: g.NodeLabel(u)},
						discovers: true,
					})
				})
			}
		}
		if bestExt == nil {
			panic("dfscode: no extension for connected graph")
		}
		if reference != nil {
			if c := CompareEdges(bestExt.ec, reference[len(code)]); c != 0 {
				return nil, false
			}
		}
		code = append(code, bestExt.ec)
		// Keep only embeddings realizing the chosen extension, extended.
		var next []*embedding
		for _, emb := range embs {
			if bestExt.ec.Forward() {
				hostV := emb.nodes[bestExt.ec.I]
				g.Neighbors(hostV, func(u int, l graph.Label) {
					if emb.inverse[u] != 0 || l != bestExt.ec.LE || g.NodeLabel(u) != bestExt.ec.LJ {
						return
					}
					next = append(next, emb.extend(hostV, u, true, g, idx.id(hostV, u)))
				})
			} else {
				hostV := emb.nodes[bestExt.ec.I]
				hostU := emb.nodes[bestExt.ec.J]
				if !emb.used[idx.id(hostV, hostU)] && g.EdgeLabel(hostV, hostU) == bestExt.ec.LE {
					next = append(next, emb.extend(hostV, hostU, false, g, idx.id(hostV, hostU)))
				}
			}
		}
		embs = next
	}
	if reference != nil {
		return reference, true
	}
	return code, true
}

func onPath(path []int, v int) bool {
	for _, p := range path {
		if p == v {
			return true
		}
	}
	return false
}

// Canonical returns a canonical string key for a connected labeled graph:
// equal strings iff isomorphic graphs. Single-vertex graphs are encoded
// by their node label.
func Canonical(g *graph.Graph) string {
	if g.NumNodes() == 1 {
		return fmt.Sprintf("v(%d)", int(g.NodeLabel(0)))
	}
	return MinimumCode(g).String()
}
