// Package dfscode implements gSpan-style DFS codes for connected labeled
// graphs: the edge-tuple encoding, the total order on codes, minimum
// (canonical) code construction, and the minimality check used by gSpan's
// duplicate pruning. The minimum code doubles as the canonical label used
// across the repository to deduplicate mined patterns.
//
// A DFS code is a sequence of edge tuples (i, j, li, le, lj) where i and j
// are DFS discovery indices: a forward edge has j = i's frontier + 1 and
// discovers vertex j, a backward edge has j < i and closes a cycle. The
// minimum code over all DFS traversals is a canonical form: two connected
// labeled graphs are isomorphic iff their minimum codes are equal.
package dfscode

import (
	"fmt"
	"strconv"
	"sync"

	"graphsig/internal/graph"
)

// EdgeCode is one DFS code entry: edge between discovery indices I and J
// with node labels LI, LJ and edge label LE.
type EdgeCode struct {
	I, J   int
	LI, LE graph.Label
	LJ     graph.Label
}

// Forward reports whether the entry is a forward (vertex-discovering) edge.
func (e EdgeCode) Forward() bool { return e.I < e.J }

// Code is a DFS code: an ordered list of edge entries.
type Code []EdgeCode

// CompareEdges orders two code entries by gSpan's DFS lexicographic order
// (structure first, then labels). It returns -1, 0 or +1.
func CompareEdges(a, b EdgeCode) int {
	if a.I == b.I && a.J == b.J {
		return compareLabels(a, b)
	}
	if edgeLess(a, b) {
		return -1
	}
	return 1
}

func compareLabels(a, b EdgeCode) int {
	switch {
	case a.LI != b.LI:
		return cmpLabel(a.LI, b.LI)
	case a.LE != b.LE:
		return cmpLabel(a.LE, b.LE)
	case a.LJ != b.LJ:
		return cmpLabel(a.LJ, b.LJ)
	}
	return 0
}

func cmpLabel(a, b graph.Label) int {
	if a < b {
		return -1
	}
	if a > b {
		return 1
	}
	return 0
}

// edgeLess implements the structural part of gSpan's edge order for
// entries with distinct (I, J).
func edgeLess(a, b EdgeCode) bool {
	af, bf := a.Forward(), b.Forward()
	switch {
	case af && bf:
		return a.J < b.J || (a.J == b.J && a.I > b.I)
	case !af && !bf:
		return a.I < b.I || (a.I == b.I && a.J < b.J)
	case !af && bf: // a backward, b forward
		return a.I < b.J
	default: // a forward, b backward
		return a.J <= b.I
	}
}

// Compare orders codes lexicographically entry by entry; a strict prefix
// precedes its extensions.
func Compare(a, b Code) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := CompareEdges(a[i], b[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// NumNodes returns the number of vertices the code describes.
func (c Code) NumNodes() int {
	max := -1
	for _, e := range c {
		if e.I > max {
			max = e.I
		}
		if e.J > max {
			max = e.J
		}
	}
	return max + 1
}

// Graph materializes the code as a graph. It panics on malformed codes
// (an entry referencing an undiscovered vertex).
func (c Code) Graph() *graph.Graph {
	g := graph.New(c.NumNodes(), len(c))
	for _, e := range c {
		if e.Forward() {
			if g.NumNodes() == 0 {
				if e.I != 0 || e.J != 1 {
					panic("dfscode: first entry must be forward edge (0,1)")
				}
				g.AddNode(e.LI)
			}
			if e.I >= g.NumNodes() {
				panic("dfscode: forward edge from undiscovered vertex")
			}
			if e.J != g.NumNodes() {
				panic(fmt.Sprintf("dfscode: forward edge discovers vertex %d, frontier is %d", e.J, g.NumNodes()))
			}
			g.AddNode(e.LJ)
			g.MustAddEdge(e.I, e.J, e.LE)
		} else {
			g.MustAddEdge(e.I, e.J, e.LE)
		}
	}
	return g
}

// RightmostVertex returns the DFS index of the rightmost vertex — the
// most recently discovered one — without materializing the rightmost
// path. Forward edges discover vertices in index order, so this is
// always NumNodes()-1 (-1 for the empty code). The closed miner's
// early-termination rule needs exactly this index: backward extensions
// anywhere in a pattern's DFS subtree can only attach at the current
// rightmost vertex, which is either this vertex or one not yet
// discovered, so an internal edge avoiding it can never be added by a
// descendant.
func (c Code) RightmostVertex() int {
	return c.NumNodes() - 1
}

// HasEdge reports whether the code contains an edge between DFS indices
// i and j, in either orientation. It is the pattern-adjacency oracle
// for closure checks that walk host CSR rows without materializing the
// pattern graph; codes are small, so the linear scan is the fast path.
func (c Code) HasEdge(i, j int) bool {
	for _, e := range c {
		if (e.I == i && e.J == j) || (e.I == j && e.J == i) {
			return true
		}
	}
	return false
}

// RightmostPath returns the DFS indices on the rightmost path, from the
// root (index 0) to the rightmost (most recently discovered) vertex.
func (c Code) RightmostPath() []int {
	if len(c) == 0 {
		return nil
	}
	// Walk forward edges backwards from the rightmost vertex. Parents
	// live in a dense slice indexed by DFS index (-1 = root).
	rm := -1
	for _, e := range c {
		if e.Forward() && e.J > rm {
			rm = e.J
		}
	}
	parent := make([]int, rm+1)
	for i := range parent {
		parent[i] = -1
	}
	for _, e := range c {
		if e.Forward() {
			parent[e.J] = e.I
		}
	}
	rev := make([]int, 0, rm+1)
	for v := rm; v >= 0; v = parent[v] {
		rev = append(rev, v)
	}
	// Reverse into root-first order.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// String renders the code compactly, e.g. "(0,1,C,-,O)(1,2,O,=,C)" with
// numeric labels. The rendering doubles as the canonical pattern key, so
// it is built with strconv appends rather than fmt — canonicalization
// sits on the miners' candidate-dedup hot path.
func (c Code) String() string {
	buf := make([]byte, 0, 20*len(c))
	for _, e := range c {
		buf = append(buf, '(')
		buf = strconv.AppendInt(buf, int64(e.I), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(e.J), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(e.LI), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(e.LE), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(e.LJ), 10)
		buf = append(buf, ')')
	}
	return string(buf)
}

// embedding maps DFS indices of a partial code to nodes of a host graph.
type embedding struct {
	nodes []int // DFS index -> host node
	used  []bool
	// inverse: host node -> DFS index + 1 (0 = unmapped)
	inverse []int
}

// embArena bump-allocates embedding buffers in large chunks. One
// generation of embeddings dies wholesale when the next replaces it, so
// buildMinimum keeps two arenas and swap-resets the dead one — the
// canonicalizer sits on the miners' candidate-dedup hot path, and
// per-embedding make calls dominated its allocation profile.
type embArena struct {
	structs []embedding
	ints    []int
	bools   []bool
}

func (a *embArena) emb() *embedding {
	if len(a.structs) == cap(a.structs) {
		a.structs = make([]embedding, 0, grown(cap(a.structs), 1, 16))
	}
	a.structs = a.structs[:len(a.structs)+1]
	return &a.structs[len(a.structs)-1]
}

func (a *embArena) intSlice(n int) []int {
	if len(a.ints)+n > cap(a.ints) {
		a.ints = make([]int, 0, grown(cap(a.ints), n, 128))
	}
	s := a.ints[len(a.ints) : len(a.ints)+n : len(a.ints)+n]
	a.ints = a.ints[:len(a.ints)+n]
	return s
}

func (a *embArena) boolSlice(n int) []bool {
	if len(a.bools)+n > cap(a.bools) {
		a.bools = make([]bool, 0, grown(cap(a.bools), n, 128))
	}
	s := a.bools[len(a.bools) : len(a.bools)+n : len(a.bools)+n]
	a.bools = a.bools[:len(a.bools)+n]
	return s
}

// reset abandons the arena's contents; chunks superseded by growth are
// left to the collector, the newest one is reused.
func (a *embArena) reset() {
	a.structs = a.structs[:0]
	a.ints = a.ints[:0]
	a.bools = a.bools[:0]
}

// grown doubles a chunk capacity, bounded below by the requested count
// and a type-specific floor sized for typical pattern graphs.
func grown(c, n, floor int) int {
	c *= 2
	if c < n {
		c = n
	}
	if c < floor {
		c = floor
	}
	return c
}

// minState carries buildMinimum's working set — the two embedding
// arenas and the generation slices — across calls via a pool, so
// canonicalizing a stream of candidates (the miners' dedup loop)
// settles into zero steady-state allocation.
type minState struct {
	curA, nextA embArena
	embs, next  []*embedding
}

var minPool = sync.Pool{New: func() any { return new(minState) }}

// extend clones e into arena a with hostTo appended when the chosen
// extension discovers a new vertex, and edgeID marked used. Every
// buffer is fully overwritten by the copies, so stale arena contents
// never leak through.
func (e *embedding) extend(hostTo int, discovers bool, edgeID int, a *embArena) *embedding {
	nn := len(e.nodes)
	if discovers {
		nn++
	}
	buf := a.intSlice(nn + len(e.inverse))
	ne := a.emb()
	ne.nodes = buf[:nn:nn]
	ne.used = a.boolSlice(len(e.used))
	ne.inverse = buf[nn:]
	copy(ne.nodes, e.nodes)
	copy(ne.inverse, e.inverse)
	copy(ne.used, e.used)
	if discovers {
		ne.nodes[nn-1] = hostTo
		ne.inverse[hostTo] = nn
	}
	ne.used[edgeID] = true
	return ne
}

// MinimumCode computes the canonical minimum DFS code of a connected
// labeled graph by greedy minimal extension over all partial embeddings
// (the construction behind gSpan's isMin test). It panics on empty or
// disconnected graphs, for which the code is undefined.
func MinimumCode(g *graph.Graph) Code {
	code, _ := buildMinimum(g, nil)
	return code
}

// IsMinimal reports whether c is the minimum DFS code of the graph it
// describes. gSpan uses this to discard duplicate pattern-growth states.
func IsMinimal(c Code) bool {
	if len(c) == 0 {
		return true
	}
	_, minimal := buildMinimum(c.Graph(), c)
	return minimal
}

// buildMinimum constructs the minimum DFS code of g. When reference is
// non-nil, construction stops early as soon as the minimum is known to
// differ from reference, returning (nil, false); if it matches the whole
// way, returns (reference, true).
func buildMinimum(g *graph.Graph, reference Code) (Code, bool) {
	if g.NumNodes() == 0 || !g.IsConnected() {
		panic("dfscode: minimum code requires a nonempty connected graph")
	}
	if g.NumEdges() == 0 {
		// Single vertex: represent as empty code. Callers treat
		// single-node patterns specially.
		return Code{}, len(reference) == 0
	}
	// All adjacency below runs on the frozen CSR view: row slices for
	// neighbor walks, the parallel EdgeIDs array for used-edge sets
	// (replacing the old per-call (u,v)->id map).
	gc := g.CSR()
	var code Code
	// Pooled working set. Two arenas, swapped each round: curA holds the
	// live generation, nextA receives its extensions, then the dead
	// generation's arena is reset and reused.
	st := minPool.Get().(*minState)
	embs, nextEmbs := st.embs[:0], st.next[:0]
	curA, nextA := &st.curA, &st.nextA
	defer func() {
		curA.reset()
		nextA.reset()
		st.embs, st.next = embs[:0], nextEmbs[:0]
		minPool.Put(st)
	}()

	// Seed: minimal first entry over all directed edge instances.
	var best EdgeCode
	haveBest := false
	for _, e := range g.Edges() {
		for _, dir := range [2][2]int{{e.From, e.To}, {e.To, e.From}} {
			cand := EdgeCode{I: 0, J: 1, LI: g.NodeLabel(dir[0]), LE: e.Label, LJ: g.NodeLabel(dir[1])}
			if !haveBest || CompareEdges(cand, best) < 0 {
				best = cand
				haveBest = true
			}
		}
	}
	if reference != nil {
		if c := CompareEdges(best, reference[0]); c != 0 {
			return nil, false
		}
	}
	code = append(code, best)
	for ei, e := range g.Edges() {
		for _, dir := range [2][2]int{{e.From, e.To}, {e.To, e.From}} {
			if g.NodeLabel(dir[0]) == best.LI && e.Label == best.LE && g.NodeLabel(dir[1]) == best.LJ {
				buf := curA.intSlice(2 + g.NumNodes())
				emb := curA.emb()
				emb.nodes = buf[:2:2]
				emb.used = curA.boolSlice(g.NumEdges())
				emb.inverse = buf[2:]
				emb.nodes[0], emb.nodes[1] = dir[0], dir[1]
				clear(emb.inverse)
				clear(emb.used)
				emb.inverse[dir[0]] = 1
				emb.inverse[dir[1]] = 2
				emb.used[ei] = true
				embs = append(embs, emb)
			}
		}
	}

	for len(code) < g.NumEdges() {
		rmPath := code.RightmostPath()
		rmv := rmPath[len(rmPath)-1]
		type ext struct {
			ec        EdgeCode
			discovers bool
		}
		var bestExt *ext
		consider := func(e ext) {
			if bestExt == nil || CompareEdges(e.ec, bestExt.ec) < 0 {
				cp := e
				bestExt = &cp
			}
		}
		// Enumerate candidate extensions across all embeddings.
		for _, emb := range embs {
			// Backward: from rightmost vertex to rightmost-path vertices.
			hostRM := emb.nodes[rmv]
			for i := gc.RowStart[hostRM]; i < gc.RowStart[hostRM+1]; i++ {
				u, l := int(gc.Nbr[i]), gc.EdgeLabels[i]
				if emb.used[gc.EdgeIDs[i]] {
					continue
				}
				pi := emb.inverse[u]
				if pi == 0 {
					continue
				}
				pIdx := pi - 1
				if !onPath(rmPath, pIdx) {
					continue
				}
				consider(ext{ec: EdgeCode{I: rmv, J: pIdx, LI: gc.NodeLabels[hostRM], LE: l, LJ: gc.NodeLabels[u]}})
			}
			// Forward: from rightmost-path vertices to undiscovered nodes.
			for _, pv := range rmPath {
				hostV := emb.nodes[pv]
				for i := gc.RowStart[hostV]; i < gc.RowStart[hostV+1]; i++ {
					u, l := int(gc.Nbr[i]), gc.EdgeLabels[i]
					if emb.inverse[u] != 0 {
						continue
					}
					consider(ext{
						ec:        EdgeCode{I: pv, J: len(emb.nodes), LI: gc.NodeLabels[hostV], LE: l, LJ: gc.NodeLabels[u]},
						discovers: true,
					})
				}
			}
		}
		if bestExt == nil {
			panic("dfscode: no extension for connected graph")
		}
		if reference != nil {
			if c := CompareEdges(bestExt.ec, reference[len(code)]); c != 0 {
				return nil, false
			}
		}
		code = append(code, bestExt.ec)
		// Keep only embeddings realizing the chosen extension, extended
		// into the spare arena; the dead generation is then reset and the
		// arenas swap roles.
		next := nextEmbs[:0]
		for _, emb := range embs {
			if bestExt.ec.Forward() {
				hostV := emb.nodes[bestExt.ec.I]
				for i := gc.RowStart[hostV]; i < gc.RowStart[hostV+1]; i++ {
					u, l := int(gc.Nbr[i]), gc.EdgeLabels[i]
					if emb.inverse[u] != 0 || l != bestExt.ec.LE || gc.NodeLabels[u] != bestExt.ec.LJ {
						continue
					}
					next = append(next, emb.extend(u, true, int(gc.EdgeIDs[i]), nextA))
				}
			} else {
				hostV := emb.nodes[bestExt.ec.I]
				hostU := emb.nodes[bestExt.ec.J]
				// One row scan yields the connecting edge's label and id.
				for i := gc.RowStart[hostV]; i < gc.RowStart[hostV+1]; i++ {
					if int(gc.Nbr[i]) != hostU {
						continue
					}
					if !emb.used[gc.EdgeIDs[i]] && gc.EdgeLabels[i] == bestExt.ec.LE {
						next = append(next, emb.extend(hostU, false, int(gc.EdgeIDs[i]), nextA))
					}
					break
				}
			}
		}
		embs, nextEmbs = next, embs
		curA.reset()
		curA, nextA = nextA, curA
	}
	if reference != nil {
		return reference, true
	}
	return code, true
}

func onPath(path []int, v int) bool {
	for _, p := range path {
		if p == v {
			return true
		}
	}
	return false
}

// Canonical returns a canonical string key for a connected labeled graph:
// equal strings iff isomorphic graphs. Single-vertex graphs are encoded
// by their node label.
func Canonical(g *graph.Graph) string {
	if g.NumNodes() == 1 {
		return fmt.Sprintf("v(%d)", int(g.NodeLabel(0)))
	}
	return MinimumCode(g).String()
}
