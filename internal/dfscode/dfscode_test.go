package dfscode

import (
	"math/rand"
	"testing"
	"testing/quick"

	"graphsig/internal/graph"
	"graphsig/internal/isomorph"
)

func build(labels []graph.Label, edges [][3]int) *graph.Graph {
	g := graph.New(len(labels), len(edges))
	for _, l := range labels {
		g.AddNode(l)
	}
	for _, e := range edges {
		g.MustAddEdge(e[0], e[1], graph.Label(e[2]))
	}
	return g
}

func TestCompareEdgesStructuralOrder(t *testing.T) {
	fwd := func(i, j int) EdgeCode { return EdgeCode{I: i, J: j, LI: 0, LE: 0, LJ: 0} }
	tests := []struct {
		name string
		a, b EdgeCode
		want int
	}{
		{"forward earlier discovery first", fwd(0, 1), fwd(1, 2), -1},
		{"same target deeper source first", fwd(1, 2), fwd(0, 2), -1},
		{"backward before forward from same vertex", fwd(2, 0), fwd(2, 3), -1},
		{"forward discovering v before backward from v", fwd(1, 3), fwd(3, 0), -1},
		{"backward by source index", fwd(1, 0), fwd(2, 0), -1},
		{"backward same source by target", fwd(2, 0), fwd(2, 1), -1},
	}
	for _, tc := range tests {
		if got := CompareEdges(tc.a, tc.b); got != tc.want {
			t.Errorf("%s: Compare = %d; want %d", tc.name, got, tc.want)
		}
		if got := CompareEdges(tc.b, tc.a); got != -tc.want {
			t.Errorf("%s (reversed): Compare = %d; want %d", tc.name, got, -tc.want)
		}
	}
}

func TestCompareEdgesLabels(t *testing.T) {
	a := EdgeCode{I: 0, J: 1, LI: 1, LE: 0, LJ: 2}
	b := EdgeCode{I: 0, J: 1, LI: 1, LE: 0, LJ: 3}
	if CompareEdges(a, b) != -1 || CompareEdges(b, a) != 1 || CompareEdges(a, a) != 0 {
		t.Error("label tie-break wrong")
	}
}

func TestCodeGraphRoundTrip(t *testing.T) {
	c := Code{
		{I: 0, J: 1, LI: 5, LE: 0, LJ: 6},
		{I: 1, J: 2, LI: 6, LE: 1, LJ: 7},
		{I: 2, J: 0, LI: 7, LE: 2, LJ: 5}, // backward, closes triangle
	}
	g := c.Graph()
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("n=%d m=%d; want 3,3", g.NumNodes(), g.NumEdges())
	}
	if g.NodeLabel(2) != 7 || g.EdgeLabel(2, 0) != 2 {
		t.Fatalf("wrong reconstruction: %s", g)
	}
}

func TestRightmostPath(t *testing.T) {
	// 0-1-2 path then backward 2-0 then forward from 1 to 3.
	c := Code{
		{I: 0, J: 1},
		{I: 1, J: 2},
		{I: 2, J: 0},
		{I: 1, J: 3},
	}
	got := c.RightmostPath()
	want := []int{0, 1, 3}
	if len(got) != len(want) {
		t.Fatalf("path = %v; want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("path = %v; want %v", got, want)
		}
	}
}

func TestMinimumCodeTriangleInvariant(t *testing.T) {
	// All vertex orderings of the same labeled triangle must give the
	// same minimum code.
	base := build([]graph.Label{1, 2, 3}, [][3]int{{0, 1, 0}, {1, 2, 0}, {0, 2, 0}})
	want := MinimumCode(base).String()
	perms := [][]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	for _, p := range perms {
		got := MinimumCode(base.Relabel(p)).String()
		if got != want {
			t.Errorf("perm %v: code %s; want %s", p, got, want)
		}
	}
}

func TestMinimumCodeDistinguishesStructures(t *testing.T) {
	path4 := build([]graph.Label{1, 1, 1, 1}, [][3]int{{0, 1, 0}, {1, 2, 0}, {2, 3, 0}})
	star4 := build([]graph.Label{1, 1, 1, 1}, [][3]int{{0, 1, 0}, {0, 2, 0}, {0, 3, 0}})
	if Canonical(path4) == Canonical(star4) {
		t.Error("path4 and star4 share a canonical code")
	}
}

func TestMinimumCodeFirstEdgeIsSmallest(t *testing.T) {
	g := build([]graph.Label{3, 1, 2}, [][3]int{{0, 1, 1}, {1, 2, 0}})
	c := MinimumCode(g)
	if c[0].LI != 1 {
		t.Errorf("first code entry starts at label %d; want 1 (smallest)", c[0].LI)
	}
}

func TestIsMinimal(t *testing.T) {
	g := build([]graph.Label{1, 2, 3}, [][3]int{{0, 1, 0}, {1, 2, 0}, {0, 2, 0}})
	min := MinimumCode(g)
	if !IsMinimal(min) {
		t.Fatal("minimum code reported non-minimal")
	}
	// A valid but non-minimal code of the same triangle: start from the
	// largest label.
	nonMin := Code{
		{I: 0, J: 1, LI: 3, LE: 0, LJ: 1},
		{I: 1, J: 2, LI: 1, LE: 0, LJ: 2},
		{I: 2, J: 0, LI: 2, LE: 0, LJ: 3},
	}
	if IsMinimal(nonMin) {
		t.Error("non-minimal code reported minimal")
	}
}

func TestCanonicalSingleVertex(t *testing.T) {
	a := build([]graph.Label{4}, nil)
	b := build([]graph.Label{4}, nil)
	c := build([]graph.Label{5}, nil)
	if Canonical(a) != Canonical(b) {
		t.Error("equal single vertices differ")
	}
	if Canonical(a) == Canonical(c) {
		t.Error("different single vertices collide")
	}
}

func randConnected(r *rand.Rand, n, extra, nl, el int) *graph.Graph {
	g := graph.New(n, n-1+extra)
	for i := 0; i < n; i++ {
		g.AddNode(graph.Label(r.Intn(nl)))
	}
	for i := 1; i < n; i++ {
		g.MustAddEdge(r.Intn(i), i, graph.Label(r.Intn(el)))
	}
	for e := 0; e < extra; e++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			g.MustAddEdge(u, v, graph.Label(r.Intn(el)))
		}
	}
	return g
}

func TestPropertyCanonicalInvariantUnderRelabel(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		g := randConnected(rr, 2+rr.Intn(7), rr.Intn(4), 2, 2)
		h := g.Relabel(rr.Perm(g.NumNodes()))
		return Canonical(g) == Canonical(h)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: r}); err != nil {
		t.Error(err)
	}
}

func TestPropertyCanonicalSeparatesNonIsomorphic(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		a := randConnected(rr, 2+rr.Intn(6), rr.Intn(4), 2, 2)
		b := randConnected(rr, 2+rr.Intn(6), rr.Intn(4), 2, 2)
		// Canonical equality must coincide with isomorphism.
		return (Canonical(a) == Canonical(b)) == isomorph.Isomorphic(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: r}); err != nil {
		t.Error(err)
	}
}

func TestPropertyMinCodeGraphIsomorphicToOriginal(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		g := randConnected(rr, 2+rr.Intn(7), rr.Intn(4), 3, 2)
		back := MinimumCode(g).Graph()
		return isomorph.Isomorphic(g, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: r}); err != nil {
		t.Error(err)
	}
}

func TestPropertyMinimumCodeIsMinimal(t *testing.T) {
	r := rand.New(rand.NewSource(24))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		g := randConnected(rr, 2+rr.Intn(6), rr.Intn(4), 2, 2)
		return IsMinimal(MinimumCode(g))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: r}); err != nil {
		t.Error(err)
	}
}

func TestMinimumCodePanicsOnDisconnected(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for disconnected graph")
		}
	}()
	g := build([]graph.Label{1, 2}, nil)
	MinimumCode(g)
}

func TestCompareCodesPrefix(t *testing.T) {
	a := Code{{I: 0, J: 1, LI: 1, LE: 0, LJ: 2}}
	b := Code{{I: 0, J: 1, LI: 1, LE: 0, LJ: 2}, {I: 1, J: 2, LI: 2, LE: 0, LJ: 3}}
	if Compare(a, b) != -1 || Compare(b, a) != 1 || Compare(a, a) != 0 {
		t.Error("prefix ordering wrong")
	}
	c := Code{{I: 0, J: 1, LI: 0, LE: 0, LJ: 0}}
	if Compare(c, a) != -1 {
		t.Error("label ordering wrong")
	}
}

func TestCodeString(t *testing.T) {
	c := Code{{I: 0, J: 1, LI: 5, LE: 2, LJ: 7}}
	if got := c.String(); got != "(0,1,5,2,7)" {
		t.Errorf("String = %q", got)
	}
}

func TestCodeGraphPanicsOnMalformed(t *testing.T) {
	cases := []Code{
		{{I: 1, J: 2, LI: 0, LE: 0, LJ: 0}},                                    // first entry not (0,1)
		{{I: 0, J: 1, LI: 0, LE: 0, LJ: 0}, {I: 0, J: 3, LI: 0, LE: 0, LJ: 0}}, // skips vertex 2
	}
	for i, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			c.Graph()
		}()
	}
}

func TestMinimumCodeSingleEdgeOrientation(t *testing.T) {
	// Edge with asymmetric labels: min code starts from the smaller.
	g := build([]graph.Label{9, 2}, [][3]int{{0, 1, 4}})
	c := MinimumCode(g)
	if len(c) != 1 || c[0].LI != 2 || c[0].LJ != 9 || c[0].LE != 4 {
		t.Errorf("code = %v", c)
	}
}

func TestRightmostPathEmptyCode(t *testing.T) {
	if got := (Code{}).RightmostPath(); got != nil {
		t.Errorf("empty code path = %v", got)
	}
}
