package dfscode

import "testing"

// The rightmost-path extension metadata the closed miner consumes:
// RightmostVertex is the last-discovered DFS index, HasEdge the
// pattern-adjacency oracle over code entries.
func TestRightmostVertexAndHasEdge(t *testing.T) {
	// 0-1-2 path plus backward edge (2,0): a triangle.
	code := Code{
		{I: 0, J: 1, LI: 1, LE: 0, LJ: 2},
		{I: 1, J: 2, LI: 2, LE: 0, LJ: 3},
		{I: 2, J: 0, LI: 3, LE: 0, LJ: 1},
	}
	if got := code.RightmostVertex(); got != 2 {
		t.Fatalf("RightmostVertex = %d, want 2", got)
	}
	rm := code.RightmostPath()
	if rm[len(rm)-1] != code.RightmostVertex() {
		t.Fatalf("RightmostVertex %d disagrees with RightmostPath tail %d", code.RightmostVertex(), rm[len(rm)-1])
	}
	for _, tc := range []struct {
		i, j int
		want bool
	}{
		{0, 1, true}, {1, 0, true}, // forward edge, both orientations
		{2, 0, true}, {0, 2, true}, // backward edge, both orientations
		{1, 2, true},
		{0, 3, false}, {1, 3, false},
	} {
		if got := code.HasEdge(tc.i, tc.j); got != tc.want {
			t.Errorf("HasEdge(%d,%d) = %v, want %v", tc.i, tc.j, got, tc.want)
		}
	}
	if Code(nil).RightmostVertex() != -1 {
		t.Errorf("empty code RightmostVertex = %d, want -1", Code(nil).RightmostVertex())
	}
	if Code(nil).HasEdge(0, 1) {
		t.Errorf("empty code HasEdge(0,1) = true")
	}
}
