package dfscode

import (
	"math/rand"
	"testing"

	"graphsig/internal/graph"
	"graphsig/internal/isomorph"
)

// FuzzCanonicalInvariance decodes a byte string into a random connected
// labeled graph and checks the canonical-code contract: invariance under
// node permutation and round-trip isomorphism.
func FuzzCanonicalInvariance(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5}, int64(1))
	f.Add([]byte{0}, int64(2))
	f.Add([]byte{9, 9, 9, 9, 9, 9, 9, 9}, int64(3))
	f.Fuzz(func(t *testing.T, data []byte, seed int64) {
		if len(data) == 0 || len(data) > 10 {
			return
		}
		g := graph.New(len(data), len(data))
		for _, b := range data {
			g.AddNode(graph.Label(b % 3))
		}
		r := rand.New(rand.NewSource(seed))
		for i := 1; i < g.NumNodes(); i++ {
			g.MustAddEdge(r.Intn(i), i, graph.Label(int(data[i])%2))
		}
		// A couple of extra edges for cycles.
		for e := 0; e < len(data)/3; e++ {
			u, v := r.Intn(g.NumNodes()), r.Intn(g.NumNodes())
			if u != v && !g.HasEdge(u, v) {
				g.MustAddEdge(u, v, 0)
			}
		}
		canon := Canonical(g)
		perm := r.Perm(g.NumNodes())
		if got := Canonical(g.Relabel(perm)); got != canon {
			t.Fatalf("canonical changed under relabel: %q vs %q", canon, got)
		}
		if g.NumEdges() > 0 {
			back := MinimumCode(g).Graph()
			if !isomorph.Isomorphic(g, back) {
				t.Fatal("min-code graph not isomorphic to original")
			}
		}
	})
}

// FuzzMinCodeEdgeOrder checks that the minimum DFS code is invariant
// under the order edges were inserted: the same graph rebuilt with its
// edge list shuffled must produce an identical canonical code. Result
// caching keys on this string, so any edge-order sensitivity would make
// cache hits depend on database file layout.
func FuzzMinCodeEdgeOrder(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5}, int64(1))
	f.Add([]byte{0, 1}, int64(2))
	f.Add([]byte{7, 7, 7, 7, 7, 7}, int64(3))
	f.Add([]byte{2, 4, 6, 8, 1, 3, 5, 7, 9}, int64(4))
	f.Fuzz(func(t *testing.T, data []byte, seed int64) {
		if len(data) == 0 || len(data) > 10 {
			return
		}
		g := graph.New(len(data), len(data))
		for _, b := range data {
			g.AddNode(graph.Label(b % 3))
		}
		r := rand.New(rand.NewSource(seed))
		for i := 1; i < g.NumNodes(); i++ {
			g.MustAddEdge(r.Intn(i), i, graph.Label(int(data[i])%2))
		}
		for e := 0; e < len(data)/3; e++ {
			u, v := r.Intn(g.NumNodes()), r.Intn(g.NumNodes())
			if u != v && !g.HasEdge(u, v) {
				g.MustAddEdge(u, v, 0)
			}
		}
		canon := Canonical(g)

		// Rebuild the identical graph with the edge list shuffled.
		edges := g.Edges()
		perm := r.Perm(len(edges))
		h := graph.New(g.NumNodes(), len(edges))
		for v := 0; v < g.NumNodes(); v++ {
			h.AddNode(g.NodeLabel(v))
		}
		for _, i := range perm {
			h.MustAddEdge(edges[i].From, edges[i].To, edges[i].Label)
		}
		if got := Canonical(h); got != canon {
			t.Fatalf("canonical code depends on edge insertion order: %q vs %q", got, canon)
		}
	})
}
