package experiments

import (
	"sort"

	"graphsig/internal/chem"
	"graphsig/internal/core"
)

// AblationRow compares the two vectorizers on one dataset: how many of
// the planted drug cores each recovers (§II-C's argument that RWR's
// proximity weighting preserves structure that plain counting loses).
type AblationRow struct {
	Dataset         string
	RWRRecovered    int
	CountsRecovered int
	TotalCores      int
	RWRSubgraphs    int
	CountsSubgraphs int
}

// AblationVectorizer runs the motif-recovery experiment under both
// vectorizers on the three qualitative datasets.
func AblationVectorizer(cfg Config) []AblationRow {
	cfg.fill()
	specs := []chem.DatasetSpec{chem.AIDSSpec()}
	for _, s := range chem.CancerSpecs() {
		if s.Name == "MOLT-4" || s.Name == "UACC-257" {
			specs = append(specs, s)
		}
	}
	cfg.printf("Ablation — planted-core recovery: RWR vs window counts\n")
	cfg.printf("%-10s %-14s %-14s\n", "dataset", "RWR", "window-counts")
	var rows []AblationRow
	for _, spec := range specs {
		if !cfg.wantDataset(spec.Name) {
			continue
		}
		row := AblationRow{Dataset: spec.Name, TotalCores: len(spec.Motifs)}

		run := func(vec core.VectorizerKind) (recovered, mined int) {
			d := chem.GenerateN(spec, cfg.MiningN*4)
			gcfg := miningConfig()
			gcfg.SkipVerify = false
			gcfg.Vectorizer = vec
			gcfg.FeatureSet = core.BuildFeatureSet(d.Graphs, gcfg)
			res := core.Mine(d.Actives(), gcfg)
			for _, plan := range spec.Motifs {
				coreGraph := chem.MotifByName(plan.Motif).Build()
				for _, sg := range res.Subgraphs {
					if patternCoversCore(sg.Graph, coreGraph) {
						recovered++
						break
					}
				}
			}
			return recovered, len(res.Subgraphs)
		}
		row.RWRRecovered, row.RWRSubgraphs = run(core.VectorizerRWR)
		row.CountsRecovered, row.CountsSubgraphs = run(core.VectorizerWindowCounts)
		cfg.printf("%-10s %d/%-12d %d/%-12d\n", row.Dataset,
			row.RWRRecovered, row.TotalCores, row.CountsRecovered, row.TotalCores)
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Dataset < rows[j].Dataset })
	return rows
}
