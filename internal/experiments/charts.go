package experiments

import (
	"time"

	"graphsig/internal/textchart"
)

// chart renders a series set to cfg.Out when charts are enabled.
func (c *Config) chart(title string, series []textchart.Series, opt textchart.Options) {
	if !c.Charts || c.Out == nil {
		return
	}
	textchart.Render(c.Out, title, series, opt)
}

func secs(d time.Duration) float64 { return d.Seconds() }

// ChartFig2 renders the Fig 2 runtime curves.
func ChartFig2(cfg Config, rows []Fig2Row) {
	gspan := textchart.Series{Name: "gSpan"}
	fsgS := textchart.Series{Name: "FSG"}
	for _, r := range rows {
		gspan.Points = append(gspan.Points, textchart.Point{X: r.FreqPct, Y: secs(r.GSpan), DNF: r.GSpanDNF})
		fsgS.Points = append(fsgS.Points, textchart.Point{X: r.FreqPct, Y: secs(r.FSG), DNF: r.FSGDNF})
	}
	cfg.chart("Fig 2 — runtime vs frequency (log y)", []textchart.Series{gspan, fsgS},
		textchart.Options{LogY: true, XLabel: "freq %", YLabel: "seconds"})
}

// ChartFig9 renders the Fig 9 curves.
func ChartFig9(cfg Config, rows []Fig9Row) {
	var gs, gsf, gsp, fs textchart.Series
	gs.Name, gsf.Name, gsp.Name, fs.Name = "GraphSig", "GraphSig+FSG", "gSpan", "FSG"
	for _, r := range rows {
		gs.Points = append(gs.Points, textchart.Point{X: r.FreqPct, Y: secs(r.GraphSig)})
		gsf.Points = append(gsf.Points, textchart.Point{X: r.FreqPct, Y: secs(r.GraphSigFSG)})
		gsp.Points = append(gsp.Points, textchart.Point{X: r.FreqPct, Y: secs(r.GSpan), DNF: r.GSpanDNF})
		fs.Points = append(fs.Points, textchart.Point{X: r.FreqPct, Y: secs(r.FSG), DNF: r.FSGDNF})
	}
	cfg.chart("Fig 9 — time vs frequency (log x, log y)", []textchart.Series{gs, gsf, gsp, fs},
		textchart.Options{LogX: true, LogY: true, XLabel: "freq %", YLabel: "seconds"})
}

// ChartFig11 renders the Fig 11 curves.
func ChartFig11(cfg Config, rows []Fig11Row) {
	var gs, gsf, gsp, fs textchart.Series
	gs.Name, gsf.Name, gsp.Name, fs.Name = "GraphSig", "GraphSig+FSG", "gSpan", "FSG"
	for _, r := range rows {
		x := float64(r.Size)
		gs.Points = append(gs.Points, textchart.Point{X: x, Y: secs(r.GraphSig)})
		gsf.Points = append(gsf.Points, textchart.Point{X: x, Y: secs(r.GraphSigFSG)})
		gsp.Points = append(gsp.Points, textchart.Point{X: x, Y: secs(r.GSpan), DNF: r.GSpanDNF})
		fs.Points = append(fs.Points, textchart.Point{X: x, Y: secs(r.FSG), DNF: r.FSGDNF})
	}
	cfg.chart("Fig 11 — time vs dataset size (log y)", []textchart.Series{gs, gsf, gsp, fs},
		textchart.Options{LogY: true, XLabel: "molecules", YLabel: "seconds"})
}

// ChartFig12 renders the Fig 12 curves.
func ChartFig12(cfg Config, rows []Fig12Row) {
	var gs, gsf textchart.Series
	gs.Name, gsf.Name = "GraphSig", "GraphSig+FSG"
	for _, r := range rows {
		gs.Points = append(gs.Points, textchart.Point{X: r.MaxPvalue, Y: secs(r.GraphSig)})
		gsf.Points = append(gsf.Points, textchart.Point{X: r.MaxPvalue, Y: secs(r.GraphSigFSG)})
	}
	cfg.chart("Fig 12 — time vs p-value threshold", []textchart.Series{gs, gsf},
		textchart.Options{XLabel: "maxPvalue", YLabel: "seconds"})
}

// ChartFig16 renders the p-value/frequency scatter with the benzene
// reference point.
func ChartFig16(cfg Config, res Fig16Result) {
	sig := textchart.Series{Name: "significant subgraphs"}
	for _, p := range res.Points {
		y := p.PValue
		if y <= 0 {
			y = 1e-18
		}
		sig.Points = append(sig.Points, textchart.Point{X: 100 * p.Frequency, Y: y})
	}
	benzene := textchart.Series{Name: "benzene", Points: []textchart.Point{
		{X: 100 * res.Benzene.Frequency, Y: res.Benzene.PValue},
	}}
	cfg.chart("Fig 16 — p-value vs frequency (log x, log y)", []textchart.Series{sig, benzene},
		textchart.Options{LogX: true, LogY: true, XLabel: "freq %", YLabel: "p-value"})
}
