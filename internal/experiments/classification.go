package experiments

import (
	"math/rand"
	"time"

	"graphsig/internal/chem"
	"graphsig/internal/classify"
	"graphsig/internal/graph"
	"graphsig/internal/leap"
	"graphsig/internal/metrics"
	"graphsig/internal/svm"
)

// Table6Row is one dataset's Table VI / Fig 17 outcome: mean AUC ± std
// over the folds and the total runtime per classifier. OA3X is OA
// trained on the full fold training set (the paper's OA(3X)); OA uses a
// third of it (the paper's downsampled OA).
type Table6Row struct {
	Dataset string

	OAAUC, LeapAUC, GraphSigAUC float64
	OAStd, LeapStd, GraphSigStd float64

	OATime, OA3XTime, LeapTime, GraphSigTime time.Duration
}

// Table6 reproduces the AUC comparison (Table VI) and the classifier
// runtimes (Fig 17) in one pass of 5-fold stratified cross validation
// over a balanced sample (all actives plus an equal number of
// inactives) of each cancer screen.
//
// Adaptation note (EXPERIMENTS.md): the paper samples 30% of actives for
// the balanced training set and downsamples OA to 10% for tractability —
// a 3:1 training-size ratio between OA(3X) and OA. Here the fold training
// set plays the 30% role and OA trains on a third of it, preserving the
// ratio at laptop scale.
func Table6(cfg Config) []Table6Row {
	cfg.fill()
	cfg.printf("Table VI / Fig 17 — classification (5-fold CV, balanced sets, n=%d per screen)\n", cfg.ClassifyN)
	cfg.printf("%-10s %-14s %-14s %-14s %-10s %-10s %-10s %-10s\n",
		"dataset", "OA", "LEAP", "GraphSig", "tOA", "tOA3X", "tLEAP", "tGSig")
	var rows []Table6Row
	for _, spec := range chem.CancerSpecs() {
		if !cfg.wantDataset(spec.Name) {
			continue
		}
		rows = append(rows, classifyDataset(cfg, spec))
		r := rows[len(rows)-1]
		cfg.printf("%-10s %.2f±%-8.2f %.2f±%-8.2f %.2f±%-8.2f %-10s %-10s %-10s %-10s\n",
			r.Dataset, r.OAAUC, r.OAStd, r.LeapAUC, r.LeapStd, r.GraphSigAUC, r.GraphSigStd,
			r.OATime.Round(time.Millisecond), r.OA3XTime.Round(time.Millisecond),
			r.LeapTime.Round(time.Millisecond), r.GraphSigTime.Round(time.Millisecond))
	}
	if len(rows) > 1 {
		var oa, lp, gs []float64
		for _, r := range rows {
			oa = append(oa, r.OAAUC)
			lp = append(lp, r.LeapAUC)
			gs = append(gs, r.GraphSigAUC)
		}
		cfg.printf("%-10s %.3f          %.3f          %.3f\n", "average",
			metrics.Mean(oa), metrics.Mean(lp), metrics.Mean(gs))
	}
	CSVTable6(cfg, rows)
	return rows
}

func classifyDataset(cfg Config, spec chem.DatasetSpec) Table6Row {
	d := chem.GenerateN(spec, cfg.ClassifyN)
	pos := d.Actives()
	negAll := d.Inactives()
	rng := rand.New(rand.NewSource(cfg.Seed + int64(spec.PaperSize)))
	rng.Shuffle(len(negAll), func(i, j int) { negAll[i], negAll[j] = negAll[j], negAll[i] })
	neg := negAll
	if len(neg) > len(pos) {
		neg = neg[:len(pos)]
	}
	balanced := append(append([]*graph.Graph{}, pos...), neg...)
	labels := make([]bool, len(balanced))
	for i := range pos {
		labels[i] = true
	}

	folds := metrics.StratifiedKFold(labels, 5, cfg.Seed)
	row := Table6Row{Dataset: spec.Name}
	var oaAUC, leapAUC, gsAUC []float64
	for _, fold := range folds {
		trainPos, trainNeg := splitClasses(balanced, labels, fold.Train)
		testG, testL := subset(balanced, labels, fold.Test)

		// GraphSig classifier.
		t0 := time.Now()
		gsOpt := classify.DefaultGraphSigOptions()
		gsOpt.Core.CutoffRadius = 3
		gsModel := classify.TrainGraphSig(trainPos, trainNeg, gsOpt)
		gsScores := scoreAll(gsModel, testG)
		row.GraphSigTime += time.Since(t0)
		gsAUC = append(gsAUC, metrics.AUC(gsScores, testL))

		// LEAP-style classifier.
		t1 := time.Now()
		leapModel := classify.TrainLEAP(trainPos, trainNeg, classify.LEAPOptions{
			Mine: leap.Options{MinPosFreq: 0.3, TopK: 20, MaxEdges: 8, Deadline: time.Now().Add(cfg.RunBudget)},
			SVM:  svm.LinearOptions{Seed: cfg.Seed},
		})
		leapScores := scoreAll(leapModel, testG)
		row.LeapTime += time.Since(t1)
		leapAUC = append(leapAUC, metrics.AUC(leapScores, testL))

		// OA kernel classifier, trained on a third of the fold (the
		// paper's downsampled OA)...
		t2 := time.Now()
		oaPos := trainPos[:max(1, len(trainPos)/3)]
		oaNeg := trainNeg[:max(1, len(trainNeg)/3)]
		oaModel := classify.TrainOA(oaPos, oaNeg, classify.OAOptions{SVM: svm.KernelOptions{Seed: cfg.Seed}})
		oaScores := scoreAll(oaModel, testG)
		row.OATime += time.Since(t2)
		oaAUC = append(oaAUC, metrics.AUC(oaScores, testL))

		// ...and OA(3X) on the full fold, timing only (Fig 17 shows it
		// cannot scale; the paper likewise reports a single fold).
		if row.OA3XTime == 0 {
			t3 := time.Now()
			oa3x := classify.TrainOA(trainPos, trainNeg, classify.OAOptions{SVM: svm.KernelOptions{Seed: cfg.Seed}})
			_ = scoreAll(oa3x, testG)
			row.OA3XTime = 5 * time.Since(t3) // extrapolated to 5 folds
		}
	}
	row.OAAUC, row.OAStd = metrics.Mean(oaAUC), metrics.StdDev(oaAUC)
	row.LeapAUC, row.LeapStd = metrics.Mean(leapAUC), metrics.StdDev(leapAUC)
	row.GraphSigAUC, row.GraphSigStd = metrics.Mean(gsAUC), metrics.StdDev(gsAUC)
	return row
}

func splitClasses(graphs []*graph.Graph, labels []bool, idxs []int) (pos, neg []*graph.Graph) {
	for _, i := range idxs {
		if labels[i] {
			pos = append(pos, graphs[i])
		} else {
			neg = append(neg, graphs[i])
		}
	}
	return pos, neg
}

func subset(graphs []*graph.Graph, labels []bool, idxs []int) ([]*graph.Graph, []bool) {
	var g []*graph.Graph
	var l []bool
	for _, i := range idxs {
		g = append(g, graphs[i])
		l = append(l, labels[i])
	}
	return g, l
}

func scoreAll(m classify.Scorer, graphs []*graph.Graph) []float64 {
	out := make([]float64, len(graphs))
	for i, g := range graphs {
		out[i] = m.Score(g)
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
