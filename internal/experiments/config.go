// Package experiments regenerates every table and figure of the paper's
// evaluation (§VI) plus the motivating Figs 2 and 4, on the synthetic
// screens of internal/chem. Each experiment returns structured rows and
// optionally prints a paper-style table; cmd/experiments is the CLI and
// bench_test.go wraps each row in a testing.B benchmark. Absolute times
// are hardware-bound; the assertions of EXPERIMENTS.md are about shape
// (growth order, ratios, crossovers).
package experiments

import (
	"fmt"
	"io"
	"time"
)

// Config controls workload sizes so the full suite finishes on a laptop.
type Config struct {
	// MiningN is the molecule count for the mining experiments
	// (Figs 2, 9, 11, 12, 16; default 300).
	MiningN int
	// ProfileN is the per-dataset molecule count for the Fig 10 profile
	// (default 200).
	ProfileN int
	// ClassifyN is the per-dataset molecule count for Table VI / Fig 17
	// (default 600).
	ClassifyN int
	// RunBudget bounds each baseline miner run; runs exceeding it are
	// reported as DNF, mirroring the paper's ">10 hours" entries
	// (default 15s).
	RunBudget time.Duration
	// Seed drives dataset generation.
	Seed int64
	// Datasets filters the multi-dataset experiments to these names
	// (nil = all).
	Datasets []string
	// Out receives the printed tables (nil = discard).
	Out io.Writer
	// Charts also renders a text chart of each series to Out.
	Charts bool
	// CSVDir, when set, receives one CSV file per experiment for
	// external plotting.
	CSVDir string
}

// Defaults returns the laptop-scale configuration.
func Defaults() Config {
	return Config{
		MiningN:   300,
		ProfileN:  200,
		ClassifyN: 600,
		RunBudget: 15 * time.Second,
		Seed:      1,
	}
}

func (c *Config) fill() {
	d := Defaults()
	if c.MiningN <= 0 {
		c.MiningN = d.MiningN
	}
	if c.ProfileN <= 0 {
		c.ProfileN = d.ProfileN
	}
	if c.ClassifyN <= 0 {
		c.ClassifyN = d.ClassifyN
	}
	if c.RunBudget <= 0 {
		c.RunBudget = d.RunBudget
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
}

func (c *Config) printf(format string, args ...any) {
	if c.Out != nil {
		fmt.Fprintf(c.Out, format, args...)
	}
}

func (c *Config) wantDataset(name string) bool {
	if len(c.Datasets) == 0 {
		return true
	}
	for _, d := range c.Datasets {
		if d == name {
			return true
		}
	}
	return false
}

// fmtDuration renders a duration or DNF for truncated runs.
func fmtDuration(d time.Duration, dnf bool) string {
	if dnf {
		return "DNF"
	}
	return d.Round(time.Millisecond).String()
}
