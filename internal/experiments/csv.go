package experiments

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// writeCSV writes rows (with a header) to <cfg.CSVDir>/<name>.csv when a
// CSV directory is configured. Errors are reported on cfg.Out rather
// than failing the experiment.
func (c *Config) writeCSV(name string, header []string, rows [][]string) {
	if c.CSVDir == "" {
		return
	}
	if err := os.MkdirAll(c.CSVDir, 0o755); err != nil {
		c.printf("csv: %v\n", err)
		return
	}
	path := filepath.Join(c.CSVDir, name+".csv")
	f, err := os.Create(path)
	if err != nil {
		c.printf("csv: %v\n", err)
		return
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		c.printf("csv: %v\n", err)
		return
	}
	for _, row := range rows {
		if err := w.Write(row); err != nil {
			c.printf("csv: %v\n", err)
			return
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		c.printf("csv: %v\n", err)
		return
	}
	c.printf("wrote %s\n", path)
}

func csvSeconds(d time.Duration, dnf bool) string {
	if dnf {
		return "DNF"
	}
	return fmt.Sprintf("%.4f", d.Seconds())
}

// CSVFig2 exports Fig 2 rows.
func CSVFig2(cfg Config, rows []Fig2Row) {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprintf("%g", r.FreqPct),
			csvSeconds(r.GSpan, r.GSpanDNF),
			csvSeconds(r.FSG, r.FSGDNF),
		})
	}
	cfg.writeCSV("fig2", []string{"freq_pct", "gspan_s", "fsg_s"}, out)
}

// CSVFig9 exports Fig 9 rows.
func CSVFig9(cfg Config, rows []Fig9Row) {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprintf("%g", r.FreqPct),
			csvSeconds(r.GraphSig, false),
			csvSeconds(r.GraphSigFSG, false),
			csvSeconds(r.GSpan, r.GSpanDNF),
			csvSeconds(r.FSG, r.FSGDNF),
		})
	}
	cfg.writeCSV("fig9", []string{"freq_pct", "graphsig_s", "graphsig_fsg_s", "gspan_s", "fsg_s"}, out)
}

// CSVFig11 exports Fig 11 rows.
func CSVFig11(cfg Config, rows []Fig11Row) {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprintf("%d", r.Size),
			csvSeconds(r.GraphSig, false),
			csvSeconds(r.GraphSigFSG, false),
			csvSeconds(r.GSpan, r.GSpanDNF),
			csvSeconds(r.FSG, r.FSGDNF),
		})
	}
	cfg.writeCSV("fig11", []string{"size", "graphsig_s", "graphsig_fsg_s", "gspan_s", "fsg_s"}, out)
}

// CSVFig16 exports the scatter plus the benzene reference row.
func CSVFig16(cfg Config, res Fig16Result) {
	out := make([][]string, 0, len(res.Points)+1)
	for _, p := range res.Points {
		out = append(out, []string{
			fmt.Sprintf("%.6f", p.Frequency),
			fmt.Sprintf("%.6g", p.PValue),
			"significant",
		})
	}
	out = append(out, []string{
		fmt.Sprintf("%.6f", res.Benzene.Frequency),
		fmt.Sprintf("%.6g", res.Benzene.PValue),
		"benzene",
	})
	cfg.writeCSV("fig16", []string{"frequency", "p_value", "kind"}, out)
}

// CSVTable6 exports Table VI / Fig 17 rows.
func CSVTable6(cfg Config, rows []Table6Row) {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Dataset,
			fmt.Sprintf("%.4f", r.OAAUC), fmt.Sprintf("%.4f", r.OAStd),
			fmt.Sprintf("%.4f", r.LeapAUC), fmt.Sprintf("%.4f", r.LeapStd),
			fmt.Sprintf("%.4f", r.GraphSigAUC), fmt.Sprintf("%.4f", r.GraphSigStd),
			csvSeconds(r.OATime, false), csvSeconds(r.OA3XTime, false),
			csvSeconds(r.LeapTime, false), csvSeconds(r.GraphSigTime, false),
		})
	}
	cfg.writeCSV("table6", []string{
		"dataset", "oa_auc", "oa_std", "leap_auc", "leap_std",
		"graphsig_auc", "graphsig_std", "t_oa_s", "t_oa3x_s", "t_leap_s", "t_graphsig_s",
	}, out)
}
