package experiments

import (
	"bytes"
	"os"
	"strings"
	"testing"
	"time"
)

// testConfig is a fast configuration for shape assertions.
func testConfig() Config {
	return Config{
		MiningN:   80,
		ProfileN:  60,
		ClassifyN: 200,
		RunBudget: 4 * time.Second,
		Seed:      1,
	}
}

func TestFig2BaselinesSlowDownAtLowFrequency(t *testing.T) {
	cfg := testConfig()
	rows := Fig2(cfg)
	if len(rows) != 6 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Frequencies descend; runtime (or DNF) must not improve as the
	// threshold drops: the last point must be at least as expensive as
	// the first for each baseline.
	first, last := rows[0], rows[len(rows)-1]
	if !last.GSpanDNF && last.GSpan < first.GSpan {
		t.Errorf("gSpan got faster at low frequency: %v -> %v", first.GSpan, last.GSpan)
	}
	if !last.FSGDNF && last.FSG < first.FSG {
		t.Errorf("FSG got faster at low frequency: %v -> %v", first.FSG, last.FSG)
	}
	// At the lowest frequencies the baselines blow past the budget
	// (the paper's '>10 hours' behavior) or at minimum cost much more.
	if !(last.GSpanDNF || last.GSpan > 4*first.GSpan) {
		t.Errorf("gSpan did not explode: first=%v last=%v", first.GSpan, last.GSpan)
	}
}

func TestFig4TopFiveCoverage(t *testing.T) {
	profile := Fig4(testConfig())
	if len(profile) < 5 {
		t.Fatalf("only %d atoms", len(profile))
	}
	if profile[4].CumulativePct < 97 {
		t.Errorf("top-5 coverage = %.1f%%; want ~99%%", profile[4].CumulativePct)
	}
	if profile[0].Name != "C" {
		t.Errorf("top atom = %s", profile[0].Name)
	}
}

func TestFig9GraphSigScalesWhereBaselinesExplode(t *testing.T) {
	cfg := testConfig()
	rows := Fig9(cfg)
	if len(rows) != 6 {
		t.Fatalf("got %d rows", len(rows))
	}
	// GraphSig completes at the lowest frequency (0.1%) within a small
	// multiple of its high-frequency cost.
	low, high := rows[0], rows[len(rows)-1]
	if low.FreqPct != 0.1 {
		t.Fatalf("first row freq = %v", low.FreqPct)
	}
	if low.GraphSigFSG > 60*high.GraphSigFSG {
		t.Errorf("GraphSig not scalable: %v at 0.1%% vs %v at 10%%", low.GraphSigFSG, high.GraphSigFSG)
	}
	// The baselines fail (DNF) or are far slower than GraphSig at 0.1%.
	if !low.GSpanDNF && low.GSpan < low.GraphSigFSG {
		t.Error("gSpan beat GraphSig at 0.1% — shape inverted")
	}
	if !low.FSGDNF && low.FSG < low.GraphSigFSG {
		t.Error("FSG beat GraphSig at 0.1% — shape inverted")
	}
}

func TestFig10ProfileSumsToHundred(t *testing.T) {
	cfg := testConfig()
	cfg.Datasets = []string{"MOLT-4", "MCF-7"}
	rows := Fig10(cfg)
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		total := r.RWRPct + r.FeaturePct + r.FSMPct
		if total < 99.9 || total > 100.1 {
			t.Errorf("%s: profile sums to %.2f", r.Dataset, total)
		}
		if r.RWRPct <= 0 {
			t.Errorf("%s: RWR share = %.2f", r.Dataset, r.RWRPct)
		}
	}
}

func TestFig11GraphSigGrowsLinearly(t *testing.T) {
	cfg := testConfig()
	cfg.MiningN = 60
	rows := Fig11(cfg)
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	// 4x data should cost GraphSig no more than ~12x (linear with
	// noise), while FSG grows faster than GraphSig in absolute terms.
	first, last := rows[0], rows[len(rows)-1]
	if last.GraphSig > 12*first.GraphSig+50*time.Millisecond {
		t.Errorf("GraphSig growth superlinear: %v -> %v", first.GraphSig, last.GraphSig)
	}
	if !last.FSGDNF && last.FSG < last.GraphSigFSG {
		t.Error("FSG cheaper than GraphSig at largest size — shape inverted")
	}
}

func TestFig12PvalueSweep(t *testing.T) {
	cfg := testConfig()
	rows := Fig12(cfg)
	if len(rows) != 6 {
		t.Fatalf("got %d rows", len(rows))
	}
	// More permissive thresholds cannot yield fewer significant vectors.
	for i := 1; i < len(rows); i++ {
		if rows[i].Vectors < rows[i-1].Vectors {
			t.Errorf("vectors decreased: %d @%v -> %d @%v",
				rows[i-1].Vectors, rows[i-1].MaxPvalue, rows[i].Vectors, rows[i].MaxPvalue)
		}
	}
}

func TestFig13to15RecoversAllCores(t *testing.T) {
	cfg := testConfig()
	// The rare-metal cores (Fig 15) sit below 1% frequency; the active
	// pool must be large enough for them to clear the support floor.
	cfg.MiningN = 200
	recs := Fig13to15(cfg)
	if len(recs) != 3 {
		t.Fatalf("got %d datasets", len(recs))
	}
	for _, rec := range recs {
		for motif, ok := range rec.Recovered {
			if !ok {
				t.Errorf("%s: core %s not recovered", rec.Dataset, motif)
			}
		}
		if len(rec.Mined) == 0 {
			t.Errorf("%s: nothing mined", rec.Dataset)
		}
	}
}

func TestFig16BenzeneNotSignificantButRarePatternsAre(t *testing.T) {
	cfg := testConfig()
	res := Fig16(cfg)
	if len(res.Points) == 0 {
		t.Fatal("no significant subgraphs")
	}
	if res.Benzene.Frequency < 0.4 {
		t.Errorf("benzene frequency = %f; generator should make it ubiquitous", res.Benzene.Frequency)
	}
	if res.Benzene.PValue <= 0.1 {
		t.Errorf("benzene p-value = %f; must not be significant", res.Benzene.PValue)
	}
	if res.BelowOnePct == 0 {
		t.Error("no significant subgraph below 1% frequency — the paper's headline claim")
	}
	for _, p := range res.Points {
		if p.PValue > 0.1+1e-9 {
			t.Errorf("reported subgraph with p=%f above threshold", p.PValue)
		}
	}
}

func TestTable6GraphSigCompetitiveAndFast(t *testing.T) {
	cfg := testConfig()
	// Balanced training needs a reasonable active pool (~5% of n).
	cfg.ClassifyN = 400
	cfg.Datasets = []string{"MOLT-4", "NCI-H23"}
	rows := Table6(cfg)
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.GraphSigAUC < 0.6 {
			t.Errorf("%s: GraphSig AUC = %.2f", r.Dataset, r.GraphSigAUC)
		}
		// GraphSig must not lose badly to either baseline (paper: best
		// or tied on every screen).
		if r.GraphSigAUC < r.OAAUC-0.15 || r.GraphSigAUC < r.LeapAUC-0.15 {
			t.Errorf("%s: GraphSig %.2f far below OA %.2f / LEAP %.2f",
				r.Dataset, r.GraphSigAUC, r.OAAUC, r.LeapAUC)
		}
		// Fig 17 shape: OA(3X) is the slowest pipeline by a wide margin.
		if r.OA3XTime < r.GraphSigTime {
			t.Errorf("%s: OA(3X) %v faster than GraphSig %v — shape inverted",
				r.Dataset, r.OA3XTime, r.GraphSigTime)
		}
	}
}

func TestPrintingGoesToWriter(t *testing.T) {
	var buf bytes.Buffer
	cfg := testConfig()
	cfg.Out = &buf
	Fig4(cfg)
	if !strings.Contains(buf.String(), "cumulative") {
		t.Error("no table printed")
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	c.fill()
	d := Defaults()
	if c.MiningN != d.MiningN || c.ClassifyN != d.ClassifyN || c.RunBudget != d.RunBudget {
		t.Errorf("fill gave %+v", c)
	}
	if !c.wantDataset("anything") {
		t.Error("empty filter should accept all")
	}
	c.Datasets = []string{"A"}
	if c.wantDataset("B") || !c.wantDataset("A") {
		t.Error("filter wrong")
	}
}

func TestAblationVectorizerRWRAtLeastAsGood(t *testing.T) {
	cfg := testConfig()
	cfg.MiningN = 150
	rows := AblationVectorizer(cfg)
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	rwrTotal, countsTotal := 0, 0
	for _, r := range rows {
		rwrTotal += r.RWRRecovered
		countsTotal += r.CountsRecovered
		if r.RWRSubgraphs == 0 {
			t.Errorf("%s: RWR mined nothing", r.Dataset)
		}
	}
	// RWR must not recover fewer planted cores overall than plain
	// counting (§II-C: proximity weighting preserves structure).
	if rwrTotal < countsTotal {
		t.Errorf("RWR recovered %d cores, window counts %d", rwrTotal, countsTotal)
	}
}

func TestCSVExport(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	cfg.CSVDir = dir
	Fig4(cfg) // no CSV, should not create anything extra
	CSVFig2(cfg, []Fig2Row{{FreqPct: 5, GSpan: time.Second, FSG: 2 * time.Second, FSGDNF: true}})
	data, err := os.ReadFile(dir + "/fig2.csv")
	if err != nil {
		t.Fatal(err)
	}
	got := string(data)
	if !strings.Contains(got, "freq_pct,gspan_s,fsg_s") {
		t.Errorf("header missing: %q", got)
	}
	if !strings.Contains(got, "5,1.0000,DNF") {
		t.Errorf("row missing: %q", got)
	}
}

func TestTable5(t *testing.T) {
	cfg := testConfig()
	cfg.ProfileN = 80
	rows := Table5(cfg)
	if len(rows) != 12 {
		t.Fatalf("got %d rows; want 12", len(rows))
	}
	for _, r := range rows {
		if r.Generated != 80 {
			t.Errorf("%s generated %d", r.Dataset, r.Generated)
		}
		if r.AvgAtoms < 18 || r.AvgAtoms > 35 {
			t.Errorf("%s avg atoms %.1f; want ~25", r.Dataset, r.AvgAtoms)
		}
		if r.AvgBonds < r.AvgAtoms-2 {
			t.Errorf("%s avg bonds %.1f below atoms", r.Dataset, r.AvgBonds)
		}
		if r.PaperSize < 28000 {
			t.Errorf("%s paper size %d", r.Dataset, r.PaperSize)
		}
	}
}

func TestChartsRenderToOutput(t *testing.T) {
	var buf bytes.Buffer
	cfg := testConfig()
	cfg.Out = &buf
	cfg.Charts = true
	ChartFig2(cfg, []Fig2Row{
		{FreqPct: 10, GSpan: time.Second, FSG: 2 * time.Second},
		{FreqPct: 1, GSpanDNF: true, FSGDNF: true},
	})
	out := buf.String()
	if !strings.Contains(out, "Fig 2") || !strings.Contains(out, "^") {
		t.Errorf("chart output wrong:\n%s", out)
	}
	buf.Reset()
	ChartFig9(cfg, []Fig9Row{{FreqPct: 1, GraphSig: time.Millisecond, GraphSigFSG: 2 * time.Millisecond, GSpan: time.Second, FSG: time.Second}})
	if !strings.Contains(buf.String(), "GraphSig+FSG") {
		t.Error("Fig 9 chart missing series")
	}
	buf.Reset()
	ChartFig11(cfg, []Fig11Row{{Size: 100, GraphSig: time.Millisecond, GraphSigFSG: time.Millisecond, GSpan: time.Second, FSG: time.Second}})
	ChartFig12(cfg, []Fig12Row{{MaxPvalue: 0.1, GraphSig: time.Millisecond, GraphSigFSG: time.Millisecond}})
	ChartFig16(cfg, Fig16Result{Points: []Fig16Row{{Frequency: 0.01, PValue: 1e-5}}})
	if buf.Len() == 0 {
		t.Error("no chart output")
	}
	// Disabled charts must write nothing.
	buf.Reset()
	cfg.Charts = false
	ChartFig2(cfg, []Fig2Row{{FreqPct: 10, GSpan: time.Second}})
	if buf.Len() != 0 {
		t.Error("chart rendered while disabled")
	}
}
