package experiments

import (
	"time"

	"graphsig/internal/chem"
	"graphsig/internal/core"
	"graphsig/internal/fsg"
	"graphsig/internal/graph"
	"graphsig/internal/gspan"
)

// aidsSample generates an AIDS-like dataset of n molecules.
func aidsSample(n int, seed int64) []*graph.Graph {
	spec := chem.AIDSSpec()
	spec.Seed = seed
	return chem.GenerateN(spec, n).Graphs
}

// miningConfig is the GraphSig setup used by the runtime experiments:
// Table IV parameters with a molecule-scale cutoff radius.
func miningConfig() core.Config {
	cfg := core.Defaults()
	cfg.CutoffRadius = 3
	cfg.SkipVerify = true // runtime experiments measure the mining phases
	return cfg
}

// Fig2Row is one point of Fig 2: baseline miner runtimes at a frequency
// threshold.
type Fig2Row struct {
	FreqPct      float64
	GSpan, FSG   time.Duration
	GSpanDNF     bool
	FSGDNF       bool
	GSpanResults int
	FSGResults   int
}

// Fig2 reproduces the motivating figure: gSpan and FSG runtime explodes
// as the frequency threshold drops.
func Fig2(cfg Config) []Fig2Row {
	cfg.fill()
	db := aidsSample(cfg.MiningN, cfg.Seed)
	freqs := []float64{10, 8, 6, 4, 2, 1}
	cfg.printf("Fig 2 — baseline runtime vs frequency (n=%d molecules)\n", len(db))
	cfg.printf("%-8s %-14s %-14s\n", "freq%", "gSpan", "FSG")
	var rows []Fig2Row
	for _, f := range freqs {
		row := Fig2Row{FreqPct: f}
		minSup := gspan.FromPercent(f, len(db))

		t0 := time.Now()
		gr := gspan.Mine(db, gspan.Options{MinSupport: minSup, Deadline: time.Now().Add(cfg.RunBudget)})
		row.GSpan = time.Since(t0)
		row.GSpanDNF = gr.Truncated
		row.GSpanResults = len(gr.Patterns)

		t1 := time.Now()
		fr := fsg.Mine(db, fsg.Options{MinSupport: minSup, Deadline: time.Now().Add(cfg.RunBudget)})
		row.FSG = time.Since(t1)
		row.FSGDNF = fr.Truncated
		row.FSGResults = len(fr.Patterns)

		cfg.printf("%-8.1f %-14s %-14s\n", f,
			fmtDuration(row.GSpan, row.GSpanDNF), fmtDuration(row.FSG, row.FSGDNF))
		rows = append(rows, row)
	}
	ChartFig2(cfg, rows)
	CSVFig2(cfg, rows)
	return rows
}

// Fig9Row is one point of Fig 9: GraphSig vs baselines at a frequency
// threshold. GraphSig is the set-construction time (RWR + feature
// analysis); GraphSigFSG adds the maximal FSM on the constructed sets.
type Fig9Row struct {
	FreqPct     float64
	GraphSig    time.Duration
	GraphSigFSG time.Duration
	GSpan, FSG  time.Duration
	GSpanDNF    bool
	FSGDNF      bool
	Subgraphs   int
}

// Fig9 reproduces Time-vs-Frequency: GraphSig grows mildly while the
// baselines explode; GraphSig+FSG converges to GraphSig at high
// frequency.
func Fig9(cfg Config) []Fig9Row {
	cfg.fill()
	db := aidsSample(cfg.MiningN, cfg.Seed)
	freqs := []float64{0.1, 0.5, 1, 2, 5, 10}
	cfg.printf("Fig 9 — time vs frequency (n=%d molecules)\n", len(db))
	cfg.printf("%-8s %-12s %-14s %-14s %-14s\n", "freq%", "GraphSig", "GraphSig+FSG", "gSpan", "FSG")
	var rows []Fig9Row
	for _, f := range freqs {
		row := Fig9Row{FreqPct: f}

		gcfg := miningConfig()
		gcfg.MinFreqPct = f
		res := core.Mine(db, gcfg)
		row.GraphSig = res.Profile.RWR + res.Profile.FeatureAnalysis
		row.GraphSigFSG = row.GraphSig + res.Profile.FSM
		row.Subgraphs = len(res.Subgraphs)

		minSup := gspan.FromPercent(f, len(db))
		t0 := time.Now()
		gr := gspan.Mine(db, gspan.Options{MinSupport: minSup, Deadline: time.Now().Add(cfg.RunBudget)})
		row.GSpan = time.Since(t0)
		row.GSpanDNF = gr.Truncated

		t1 := time.Now()
		fr := fsg.Mine(db, fsg.Options{MinSupport: minSup, Deadline: time.Now().Add(cfg.RunBudget)})
		row.FSG = time.Since(t1)
		row.FSGDNF = fr.Truncated

		cfg.printf("%-8.1f %-12s %-14s %-14s %-14s\n", f,
			fmtDuration(row.GraphSig, false), fmtDuration(row.GraphSigFSG, false),
			fmtDuration(row.GSpan, row.GSpanDNF), fmtDuration(row.FSG, row.FSGDNF))
		rows = append(rows, row)
	}
	ChartFig9(cfg, rows)
	CSVFig9(cfg, rows)
	return rows
}

// Fig11Row is one point of Fig 11: runtime vs dataset size.
type Fig11Row struct {
	Size        int
	GraphSig    time.Duration
	GraphSigFSG time.Duration
	GSpan, FSG  time.Duration
	GSpanDNF    bool
	FSGDNF      bool
}

// Fig11 reproduces Time-vs-Dataset-Size: GraphSig linear (p-value and
// frequency thresholds 0.1), baselines growing much faster. The paper
// runs the baselines at 1% frequency "due to enormous execution times";
// at laptop scale even 1% exceeds any budget, so the baselines run at 5%
// here — the growth-rate contrast, not the absolute threshold, is the
// figure's claim (see EXPERIMENTS.md).
const fig11BaselineFreqPct = 5.0

func Fig11(cfg Config) []Fig11Row {
	cfg.fill()
	sizes := []int{cfg.MiningN, 2 * cfg.MiningN, 3 * cfg.MiningN, 4 * cfg.MiningN}
	cfg.printf("Fig 11 — time vs dataset size\n")
	cfg.printf("%-8s %-12s %-14s %-14s %-14s\n", "size", "GraphSig", "GraphSig+FSG", "gSpan", "FSG")
	var rows []Fig11Row
	for _, n := range sizes {
		db := aidsSample(n, cfg.Seed)
		row := Fig11Row{Size: n}

		gcfg := miningConfig()
		gcfg.MinFreqPct = 0.1
		gcfg.MaxPvalue = 0.1
		res := core.Mine(db, gcfg)
		row.GraphSig = res.Profile.RWR + res.Profile.FeatureAnalysis
		row.GraphSigFSG = row.GraphSig + res.Profile.FSM

		minSup := gspan.FromPercent(fig11BaselineFreqPct, len(db))
		t0 := time.Now()
		gr := gspan.Mine(db, gspan.Options{MinSupport: minSup, Deadline: time.Now().Add(cfg.RunBudget)})
		row.GSpan = time.Since(t0)
		row.GSpanDNF = gr.Truncated

		t1 := time.Now()
		fr := fsg.Mine(db, fsg.Options{MinSupport: minSup, Deadline: time.Now().Add(cfg.RunBudget)})
		row.FSG = time.Since(t1)
		row.FSGDNF = fr.Truncated

		cfg.printf("%-8d %-12s %-14s %-14s %-14s\n", n,
			fmtDuration(row.GraphSig, false), fmtDuration(row.GraphSigFSG, false),
			fmtDuration(row.GSpan, row.GSpanDNF), fmtDuration(row.FSG, row.FSGDNF))
		rows = append(rows, row)
	}
	ChartFig11(cfg, rows)
	CSVFig11(cfg, rows)
	return rows
}

// Fig12Row is one point of Fig 12: runtime vs p-value threshold.
type Fig12Row struct {
	MaxPvalue   float64
	GraphSig    time.Duration
	GraphSigFSG time.Duration
	Vectors     int
}

// Fig12 reproduces Time-vs-p-value-threshold: slow growth, since most
// pruning comes from the support threshold.
func Fig12(cfg Config) []Fig12Row {
	cfg.fill()
	db := aidsSample(cfg.MiningN, cfg.Seed)
	thresholds := []float64{0.01, 0.05, 0.1, 0.2, 0.3, 0.5}
	cfg.printf("Fig 12 — time vs p-value threshold (n=%d molecules)\n", len(db))
	cfg.printf("%-10s %-12s %-14s %-8s\n", "maxPvalue", "GraphSig", "GraphSig+FSG", "vectors")
	var rows []Fig12Row
	for _, p := range thresholds {
		gcfg := miningConfig()
		gcfg.MaxVectorsPerLabel = 500 // let the vector count grow naturally
		gcfg.MaxPvalue = p
		res := core.Mine(db, gcfg)
		row := Fig12Row{
			MaxPvalue:   p,
			GraphSig:    res.Profile.RWR + res.Profile.FeatureAnalysis,
			GraphSigFSG: res.Profile.RWR + res.Profile.FeatureAnalysis + res.Profile.FSM,
			Vectors:     res.VectorsMined,
		}
		cfg.printf("%-10.2f %-12s %-14s %-8d\n", p,
			fmtDuration(row.GraphSig, false), fmtDuration(row.GraphSigFSG, false), row.Vectors)
		rows = append(rows, row)
	}
	ChartFig12(cfg, rows)
	return rows
}
