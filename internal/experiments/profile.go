package experiments

import (
	"graphsig/internal/chem"
	"graphsig/internal/core"
)

// Fig10Row is one bar of Fig 10: GraphSig's cost split on a dataset.
type Fig10Row struct {
	Dataset    string
	RWRPct     float64
	FeaturePct float64
	FSMPct     float64
}

// Fig10 reproduces the computation-cost profile over the eleven cancer
// screens: RWR around a fifth of the cost, the rest split between
// feature-space analysis and frequent-subgraph mining.
func Fig10(cfg Config) []Fig10Row {
	cfg.fill()
	cfg.printf("Fig 10 — GraphSig cost profile per dataset (n=%d each)\n", cfg.ProfileN)
	cfg.printf("%-10s %-8s %-10s %-8s\n", "dataset", "RWR%", "feature%", "FSM%")
	var rows []Fig10Row
	for _, spec := range chem.CancerSpecs() {
		if !cfg.wantDataset(spec.Name) {
			continue
		}
		db := chem.GenerateN(spec, cfg.ProfileN).Graphs
		gcfg := miningConfig()
		res := core.Mine(db, gcfg)
		total := res.Profile.RWR + res.Profile.FeatureAnalysis + res.Profile.FSM
		row := Fig10Row{Dataset: spec.Name}
		if total > 0 {
			row.RWRPct = 100 * float64(res.Profile.RWR) / float64(total)
			row.FeaturePct = 100 * float64(res.Profile.FeatureAnalysis) / float64(total)
			row.FSMPct = 100 * float64(res.Profile.FSM) / float64(total)
		}
		cfg.printf("%-10s %-8.1f %-10.1f %-8.1f\n", row.Dataset, row.RWRPct, row.FeaturePct, row.FSMPct)
		rows = append(rows, row)
	}
	return rows
}
