package experiments

import (
	"math"
	"sort"

	"graphsig/internal/chem"
	"graphsig/internal/core"
	"graphsig/internal/feature"
	"graphsig/internal/graph"
	"graphsig/internal/isomorph"
	"graphsig/internal/rwr"
)

// Fig4 reproduces the cumulative atom coverage plot: the top five atoms
// of the AIDS-like screen cover ~99% of atom occurrences.
func Fig4(cfg Config) []feature.AtomFrequency {
	cfg.fill()
	db := aidsSample(cfg.MiningN, cfg.Seed)
	profile := feature.AtomProfile(db, chem.Alphabet())
	cfg.printf("Fig 4 — cumulative atom coverage (n=%d molecules)\n", len(db))
	cfg.printf("%-6s %-6s %-10s %-12s\n", "rank", "atom", "count", "cumulative%")
	for i, p := range profile {
		if i < 10 || i == len(profile)-1 {
			cfg.printf("%-6d %-6s %-10d %-12.2f\n", i+1, p.Name, p.Count, p.CumulativePct)
		}
	}
	return profile
}

// MotifRecovery is the Fig 13-15 outcome for one dataset: the top mined
// subgraphs from the active class and whether each planted drug core was
// recovered (some mined pattern overlaps it substantially).
type MotifRecovery struct {
	Dataset string
	// Mined are the significant subgraphs from the active compounds,
	// most significant first.
	Mined []core.Subgraph
	// Recovered maps each planted motif name to whether a mined pattern
	// covers at least half of its edges.
	Recovered map[string]bool
}

// motifExperiment mines the active class of one dataset and checks
// planted-core recovery. The feature set is built from the whole screen
// (as the paper's §II-B does with the full AIDS database): top-5 atoms
// must reflect the global frequency profile, so that a rare heteroatom
// in the actives stays an atom feature with a small global prior.
func motifExperiment(cfg Config, spec chem.DatasetSpec, n int) MotifRecovery {
	d := chem.GenerateN(spec, n)
	actives := d.Actives()
	gcfg := miningConfig()
	gcfg.SkipVerify = false
	gcfg.MinSupportFloor = 3
	gcfg.FeatureSet = core.BuildFeatureSet(d.Graphs, gcfg)
	res := core.Mine(actives, gcfg)

	out := MotifRecovery{Dataset: spec.Name, Mined: res.Subgraphs, Recovered: map[string]bool{}}
	for _, plan := range spec.Motifs {
		coreGraph := chem.MotifByName(plan.Motif).Build()
		for _, sg := range res.Subgraphs {
			if patternCoversCore(sg.Graph, coreGraph) {
				out.Recovered[plan.Motif] = true
				break
			}
		}
		if _, ok := out.Recovered[plan.Motif]; !ok {
			out.Recovered[plan.Motif] = false
		}
	}
	return out
}

// patternCoversCore reports whether a mined pattern recovers a planted
// core: either the core embeds in the pattern, or the pattern embeds in
// the core and spans at least half of the core's edges.
func patternCoversCore(pattern, core *graph.Graph) bool {
	if isomorph.SubgraphIsomorphic(core, pattern) {
		return true
	}
	return pattern.NumEdges()*2 >= core.NumEdges() && isomorph.SubgraphIsomorphic(pattern, core)
}

// Fig13to15 reproduces the qualitative drug-core recovery: AZT/FDT from
// the AIDS-like actives (Fig 13), the phosphonium salt from UACC-257
// (Fig 14) and the antimony/bismuth pair from MOLT-4 (Fig 15).
func Fig13to15(cfg Config) []MotifRecovery {
	cfg.fill()
	specs := []chem.DatasetSpec{chem.AIDSSpec()}
	for _, s := range chem.CancerSpecs() {
		if s.Name == "MOLT-4" || s.Name == "UACC-257" {
			specs = append(specs, s)
		}
	}
	var out []MotifRecovery
	for _, spec := range specs {
		if !cfg.wantDataset(spec.Name) {
			continue
		}
		n := cfg.MiningN * 4 // actives are ~5%, so mine from a larger pool
		rec := motifExperiment(cfg, spec, n)
		cfg.printf("Fig 13-15 — %s actives: %d significant subgraphs\n", rec.Dataset, len(rec.Mined))
		names := make([]string, 0, len(rec.Recovered))
		for name := range rec.Recovered {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			status := "MISSED"
			if rec.Recovered[name] {
				status = "recovered"
			}
			cfg.printf("  core %-14s %s\n", name, status)
		}
		for i, sg := range rec.Mined {
			if i >= 3 {
				break
			}
			cfg.printf("  top-%d: %d nodes / %d edges, vector p=%.3g, freq=%.2f%%\n",
				i+1, sg.Graph.NumNodes(), sg.Graph.NumEdges(), sg.VectorPValue, 100*sg.Frequency)
		}
		out = append(out, rec)
	}
	return out
}

// Fig16Row is one point of the p-value vs frequency scatter.
type Fig16Row struct {
	Canonical string
	Frequency float64
	PValue    float64
	LogPValue float64
}

// Fig16Result carries the scatter plus the benzene reference point.
type Fig16Result struct {
	Points []Fig16Row
	// Benzene is the evaluation of the ubiquitous benzene ring: high
	// frequency, not significant.
	Benzene core.SubgraphStats
	// BelowOnePct counts significant subgraphs with frequency < 1%.
	BelowOnePct int
}

// Fig16 reproduces the frequency/p-value relationship: significant
// subgraphs exist at all frequencies — many below 1% — while benzene
// (~70% frequency) is not significant.
func Fig16(cfg Config) Fig16Result {
	cfg.fill()
	spec := chem.AIDSSpec()
	spec.Seed = cfg.Seed
	d := chem.GenerateN(spec, cfg.MiningN*4)
	actives := d.Actives()
	gcfg := miningConfig()
	gcfg.SkipVerify = false
	gcfg.FeatureSet = core.BuildFeatureSet(d.Graphs, gcfg)
	res := core.Mine(actives, gcfg)

	var out Fig16Result
	for _, sg := range res.Subgraphs {
		// Frequency over the whole screen, as in the paper's x-axis.
		sup := isomorph.Support(sg.Graph, d.Graphs)
		freq := float64(sup) / float64(len(d.Graphs))
		out.Points = append(out.Points, Fig16Row{
			Canonical: sg.Canonical,
			Frequency: freq,
			PValue:    sg.VectorPValue,
			LogPValue: sg.VectorLogPValue,
		})
		if freq < 0.01 {
			out.BelowOnePct++
		}
	}

	fs := core.BuildFeatureSet(d.Graphs, gcfg)
	vectors := rwr.DatabaseVectors(d.Graphs, fs, rwr.Config{Alpha: gcfg.Alpha, Bins: gcfg.Bins})
	out.Benzene = core.EvaluateSubgraph(d.Graphs, vectors, chem.Benzene(), gcfg)

	cfg.printf("Fig 16 — p-value vs frequency (%d significant subgraphs)\n", len(out.Points))
	cfg.printf("%-12s %-14s\n", "freq%", "p-value")
	sort.Slice(out.Points, func(i, j int) bool { return out.Points[i].Frequency < out.Points[j].Frequency })
	for _, p := range out.Points {
		cfg.printf("%-12.3f %-14.3g\n", 100*p.Frequency, math.Max(p.PValue, 1e-300))
	}
	cfg.printf("subgraphs below 1%% frequency: %d\n", out.BelowOnePct)
	cfg.printf("benzene: freq=%.1f%% p-value=%.3f (not significant at 0.1)\n",
		100*out.Benzene.Frequency, out.Benzene.PValue)
	ChartFig16(cfg, out)
	CSVFig16(cfg, out)
	return out
}
