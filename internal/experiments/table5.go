package experiments

import (
	"graphsig/internal/chem"
)

// Table5Row summarizes one generated screen against its paper
// counterpart (Table V plus the AIDS screen statistics of §VI-A).
type Table5Row struct {
	Dataset     string
	Description string
	PaperSize   int
	Generated   int
	Actives     int
	AvgAtoms    float64
	AvgBonds    float64
	AtomTypes   int
}

// Table5 generates every catalog screen at the profile scale and prints
// its statistics next to the paper's sizes — the dataset inventory the
// evaluation runs on.
func Table5(cfg Config) []Table5Row {
	cfg.fill()
	cfg.printf("Table V — datasets (generated at n=%d each; paper sizes for reference)\n", cfg.ProfileN)
	cfg.printf("%-10s %-24s %-10s %-9s %-8s %-9s %-9s %-6s\n",
		"dataset", "description", "paper", "generated", "actives", "avgAtoms", "avgBonds", "atoms")
	var rows []Table5Row
	for _, spec := range chem.Catalog() {
		if !cfg.wantDataset(spec.Name) {
			continue
		}
		d := chem.GenerateN(spec, cfg.ProfileN)
		atoms, bonds := 0, 0
		types := map[int]bool{}
		for _, g := range d.Graphs {
			atoms += g.NumNodes()
			bonds += g.NumEdges()
			for _, l := range g.Labels() {
				types[int(l)] = true
			}
		}
		row := Table5Row{
			Dataset:     spec.Name,
			Description: spec.Description,
			PaperSize:   spec.PaperSize,
			Generated:   len(d.Graphs),
			Actives:     d.NumActive(),
			AvgAtoms:    float64(atoms) / float64(len(d.Graphs)),
			AvgBonds:    float64(bonds) / float64(len(d.Graphs)),
			AtomTypes:   len(types),
		}
		cfg.printf("%-10s %-24s %-10d %-9d %-8d %-9.1f %-9.1f %-6d\n",
			row.Dataset, row.Description, row.PaperSize, row.Generated,
			row.Actives, row.AvgAtoms, row.AvgBonds, row.AtomTypes)
		rows = append(rows, row)
	}
	return rows
}
