package feature

import (
	"math/rand"
	"testing"
	"testing/quick"

	"graphsig/internal/graph"
)

func TestSubVectorOf(t *testing.T) {
	tests := []struct {
		name string
		v, w Vector
		want bool
	}{
		{"table I example v4 ⊆ v3", Vector{1, 0, 1, 0}, Vector{2, 0, 1, 2}, true},
		{"table I example v2 ⊄ v3", Vector{1, 1, 0, 2}, Vector{2, 0, 1, 2}, false},
		{"equal", Vector{1, 2}, Vector{1, 2}, true},
		{"zero ⊆ anything", Vector{0, 0}, Vector{5, 9}, true},
		{"length mismatch", Vector{1}, Vector{1, 2}, false},
	}
	for _, tc := range tests {
		if got := tc.v.SubVectorOf(tc.w); got != tc.want {
			t.Errorf("%s: got %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestFloorCeiling(t *testing.T) {
	vs := []Vector{
		{2, 0, 3, 1},
		{4, 0, 0, 2},
		{3, 1, 0, 1},
	}
	floor := Floor(vs)
	want := Vector{2, 0, 0, 1}
	if !floor.Equal(want) {
		t.Errorf("Floor = %v; want %v", floor, want)
	}
	ceil := Ceiling(vs)
	wantC := Vector{4, 1, 3, 2}
	if !ceil.Equal(wantC) {
		t.Errorf("Ceiling = %v; want %v", ceil, wantC)
	}
}

func TestFloorOfEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Floor(nil)
}

func TestL1DistanceFrom(t *testing.T) {
	// Paper's classifier example: distance from P2=[1 0 0 0] to
	// v1=[1 0 0 2] is 2.
	v := Vector{1, 0, 0, 0}
	w := Vector{1, 0, 0, 2}
	if got := v.L1DistanceFrom(w); got != 2 {
		t.Errorf("distance = %d; want 2", got)
	}
}

func TestL1DistancePanicsOnNonSub(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Vector{3, 0}.L1DistanceFrom(Vector{1, 0})
}

func TestVectorHelpers(t *testing.T) {
	v := Vector{0, 2, 0, 3}
	if v.IsZero() || !(Vector{0, 0}).IsZero() {
		t.Error("IsZero wrong")
	}
	if v.NonZero() != 2 || v.Sum() != 5 {
		t.Errorf("NonZero=%d Sum=%d; want 2,5", v.NonZero(), v.Sum())
	}
	if v.String() != "[0 2 0 3]" {
		t.Errorf("String = %q", v.String())
	}
	c := v.Clone()
	c[0] = 9
	if v[0] != 0 {
		t.Error("Clone aliases")
	}
	if v.Key() == c.Key() {
		t.Error("Key collision after mutation")
	}
}

func randVectors(r *rand.Rand, count, dim int) []Vector {
	vs := make([]Vector, count)
	for i := range vs {
		v := make(Vector, dim)
		for j := range v {
			v[j] = uint8(r.Intn(10))
		}
		vs[i] = v
	}
	return vs
}

func TestPropertyFloorIsLowerBound(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		vs := randVectors(rr, 1+rr.Intn(6), 1+rr.Intn(8))
		floor := Floor(vs)
		ceil := Ceiling(vs)
		for _, v := range vs {
			if !floor.SubVectorOf(v) || !v.SubVectorOf(ceil) {
				return false
			}
		}
		// Floor is the greatest lower bound: floor of {floor ∪ vs} = floor.
		again := Floor(append([]Vector{floor}, vs...))
		return again.Equal(floor)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: r}); err != nil {
		t.Error(err)
	}
}

func TestPropertySubVectorPartialOrder(t *testing.T) {
	r := rand.New(rand.NewSource(52))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		dim := 1 + rr.Intn(6)
		vs := randVectors(rr, 3, dim)
		a, b, c := vs[0], vs[1], vs[2]
		// Reflexivity.
		if !a.SubVectorOf(a) {
			return false
		}
		// Antisymmetry.
		if a.SubVectorOf(b) && b.SubVectorOf(a) && !a.Equal(b) {
			return false
		}
		// Transitivity.
		if a.SubVectorOf(b) && b.SubVectorOf(c) && !a.SubVectorOf(c) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: r}); err != nil {
		t.Error(err)
	}
}

func moleculeDB(alpha *graph.Alphabet) []*graph.Graph {
	c := alpha.Intern("C")
	o := alpha.Intern("O")
	n := alpha.Intern("N")
	rare := alpha.Intern("Sb")
	g1 := graph.New(4, 3)
	for _, l := range []graph.Label{c, c, o, n} {
		g1.AddNode(l)
	}
	g1.MustAddEdge(0, 1, 0)
	g1.MustAddEdge(1, 2, 0)
	g1.MustAddEdge(2, 3, 0)
	g2 := graph.New(3, 2)
	for _, l := range []graph.Label{c, c, rare} {
		g2.AddNode(l)
	}
	g2.MustAddEdge(0, 1, 0)
	g2.MustAddEdge(1, 2, 0)
	return []*graph.Graph{g1, g2}
}

func TestAtomProfile(t *testing.T) {
	alpha := graph.NewAlphabet()
	db := moleculeDB(alpha)
	profile := AtomProfile(db, alpha)
	if len(profile) != 4 {
		t.Fatalf("got %d atom types; want 4", len(profile))
	}
	if profile[0].Name != "C" || profile[0].Count != 4 {
		t.Errorf("top atom = %+v; want C x4", profile[0])
	}
	last := profile[len(profile)-1]
	if last.CumulativePct < 99.999 {
		t.Errorf("final cumulative = %f; want 100", last.CumulativePct)
	}
	for i := 1; i < len(profile); i++ {
		if profile[i].CumulativePct < profile[i-1].CumulativePct {
			t.Error("cumulative not monotone")
		}
		if profile[i].Count > profile[i-1].Count {
			t.Error("profile not sorted by count")
		}
	}
}

func TestChemistrySet(t *testing.T) {
	alpha := graph.NewAlphabet()
	db := moleculeDB(alpha)
	fs := ChemistrySet(db, alpha, 2)
	// Top-2 atoms are C and O (C:4, O:1... N:1, Sb:1 — tie broken by label
	// order, O interned before N). Observed edge types among the top 2:
	// C-C and C-O, both single-bonded = 2 edge features; plus 4 atom
	// features.
	if fs.Len() != 6 {
		t.Fatalf("Len = %d; want 6 (%v)", fs.Len(), fs.Names())
	}
	cL, _ := alpha.Lookup("C")
	oL, _ := alpha.Lookup("O")
	sbL, _ := alpha.Lookup("Sb")
	if _, ok := fs.EdgeFeature(cL, oL, 0); !ok {
		t.Error("C-O edge feature missing")
	}
	if _, ok := fs.EdgeFeature(oL, cL, 0); !ok {
		t.Error("edge feature not symmetric")
	}
	if _, ok := fs.EdgeFeature(cL, sbL, 0); ok {
		t.Error("C-Sb should not be an edge feature")
	}
	if _, ok := fs.AtomFeature(sbL); !ok {
		t.Error("Sb atom feature missing")
	}
	if len(fs.TopAtoms()) != 2 || fs.TopAtoms()[0] != cL {
		t.Errorf("TopAtoms = %v", fs.TopAtoms())
	}
	if fs.TopAtomCoverage() < 0.5 {
		t.Errorf("coverage = %f", fs.TopAtomCoverage())
	}
}

func TestAllEdgeTypesSet(t *testing.T) {
	alpha := graph.NewAlphabet()
	db := moleculeDB(alpha)
	fs := AllEdgeTypesSet(db, alpha)
	// Edge pairs present: C-C, C-O, O-N, C-Sb = 4.
	if fs.Len() != 4 {
		t.Fatalf("Len = %d; want 4 (%v)", fs.Len(), fs.Names())
	}
	cL, _ := alpha.Lookup("C")
	if _, ok := fs.AtomFeature(cL); ok {
		t.Error("AllEdgeTypesSet should have no atom features")
	}
}

func TestGreedySelect(t *testing.T) {
	// Three candidates: two near-duplicates with high importance, one
	// independent with lower importance. With a strong similarity
	// penalty, greedy should pick one duplicate then the independent one.
	cands := []Candidate{
		{Name: "dup1", Importance: 1.0},
		{Name: "dup2", Importance: 0.99},
		{Name: "indep", Importance: 0.5},
	}
	sim := func(i, j int) float64 {
		if (i == 0 && j == 1) || (i == 1 && j == 0) {
			return 1.0
		}
		return 0.0
	}
	got := GreedySelect(cands, 2, 1.0, 1.0, sim)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("selected %v; want [0 2]", got)
	}
}

func TestGreedySelectKLargerThanCandidates(t *testing.T) {
	got := GreedySelect([]Candidate{{Importance: 1}}, 5, 1, 1, func(i, j int) float64 { return 0 })
	if len(got) != 1 {
		t.Errorf("selected %v; want single candidate", got)
	}
}

func TestNewCustomSet(t *testing.T) {
	edges := []EdgeType{
		{A: 2, B: 1, Bond: 0, Name: "friend"},
		{A: 1, B: 2, Bond: 0, Name: "dup"}, // same unordered type: dropped
		{A: 1, B: 1, Bond: 1},
	}
	fs := NewCustomSet(edges, []graph.Label{5, 5, 7}, []string{"user", "", "bot"})
	// 2 distinct edge features + 2 distinct atom features.
	if fs.Len() != 4 {
		t.Fatalf("Len = %d; want 4 (%v)", fs.Len(), fs.Names())
	}
	if i, ok := fs.EdgeFeature(1, 2, 0); !ok || fs.Name(i) != "friend" {
		t.Error("named edge feature lost")
	}
	if _, ok := fs.EdgeFeature(1, 1, 1); !ok {
		t.Error("auto-named edge feature lost")
	}
	if _, ok := fs.EdgeFeature(1, 1, 0); ok {
		t.Error("wrong bond matched")
	}
	if i, ok := fs.AtomFeature(5); !ok || fs.Name(i) != "node:user" {
		t.Error("atom feature naming wrong")
	}
	if _, ok := fs.AtomFeature(7); !ok {
		t.Error("third atom missing")
	}
}
