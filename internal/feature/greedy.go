package feature

// Candidate is a feature candidate for greedy selection (§II-A, Eqn 2):
// anything with an importance score and pairwise similarity to other
// candidates.
type Candidate struct {
	// Name identifies the candidate (for reporting).
	Name string
	// Importance is imp(f) in Eqn 2, e.g. frequency or size.
	Importance float64
}

// GreedySelect picks k candidates one at a time, maximizing
//
//	w1·imp(f) - (w2/(k-1))·Σ sim(f, already selected)
//
// per Eqn 2. sim(i, j) returns the similarity between candidates i and j.
// It returns the selected candidate indices in selection order. Ties are
// broken by candidate index for determinism.
func GreedySelect(candidates []Candidate, k int, w1, w2 float64, sim func(i, j int) float64) []int {
	if k > len(candidates) {
		k = len(candidates)
	}
	selected := make([]int, 0, k)
	taken := make([]bool, len(candidates))
	for len(selected) < k {
		bestIdx := -1
		bestScore := 0.0
		for i, c := range candidates {
			if taken[i] {
				continue
			}
			score := w1 * c.Importance
			if len(selected) > 0 {
				sum := 0.0
				for _, j := range selected {
					sum += sim(i, j)
				}
				score -= w2 / float64(len(selected)) * sum
			}
			if bestIdx == -1 || score > bestScore {
				bestIdx, bestScore = i, score
			}
		}
		if bestIdx == -1 {
			break
		}
		taken[bestIdx] = true
		selected = append(selected, bestIdx)
	}
	return selected
}
