package feature

import (
	"fmt"
	"sort"

	"graphsig/internal/graph"
)

// Set maps graph elements (atoms and bonds) to feature indices. Per §II-B
// of the paper, the chemistry feature set contains one feature per atom
// type plus one feature per edge type among the top-k most frequent
// atoms ("edge types between top 5 atoms") — an edge type being the
// unordered atom pair together with the bond label, since "bond types
// are preserved as edge labels". During a walk, an edge whose type is in
// the set updates its edge feature; otherwise the atom feature of the
// node stepped onto is updated.
type Set struct {
	names        []string
	atomFeature  map[graph.Label]int
	edgeFeature  map[[3]graph.Label]int
	topAtoms     []graph.Label
	atomCoverage float64
}

// Len returns the number of features (the vector dimensionality).
func (s *Set) Len() int { return len(s.names) }

// Name returns a human-readable feature name for index i.
func (s *Set) Name(i int) string { return s.names[i] }

// Names returns all feature names in index order.
func (s *Set) Names() []string { return s.names }

// TopAtoms returns the atom labels whose pairwise edge types are features,
// most frequent first.
func (s *Set) TopAtoms() []graph.Label { return s.topAtoms }

// TopAtomCoverage returns the fraction of all atom occurrences covered by
// the top atoms (the ~99% property of Fig 4).
func (s *Set) TopAtomCoverage() float64 { return s.atomCoverage }

// AtomFeature returns the feature index for atom label l.
func (s *Set) AtomFeature(l graph.Label) (int, bool) {
	i, ok := s.atomFeature[l]
	return i, ok
}

// EdgeFeature returns the feature index for the edge type: the unordered
// atom pair (l1, l2) bonded by bond. Present only when both atoms are
// top atoms and the combination was seen when the set was built.
func (s *Set) EdgeFeature(l1, l2, bond graph.Label) (int, bool) {
	if l1 > l2 {
		l1, l2 = l2, l1
	}
	i, ok := s.edgeFeature[[3]graph.Label{l1, l2, bond}]
	return i, ok
}

// AtomFrequency is one row of the atom frequency profile of a database.
type AtomFrequency struct {
	Label graph.Label
	Name  string
	Count int
	// CumulativePct is the cumulative percentage of all atom occurrences
	// covered by this atom and every more frequent one (Fig 4's y-axis).
	CumulativePct float64
}

// AtomProfile computes the atom frequency distribution of db, most
// frequent first, with cumulative coverage percentages. alpha may be nil
// (names fall back to numeric placeholders).
func AtomProfile(db []*graph.Graph, alpha *graph.Alphabet) []AtomFrequency {
	counts := map[graph.Label]int{}
	for _, g := range db {
		for _, l := range g.Labels() {
			counts[l]++
		}
	}
	return profileFromCounts(counts, alpha)
}

// ChemistrySet builds the paper's chemistry feature set from a database:
// all atom types seen in db plus the edge types (atom pair × bond label)
// among the topK most frequent atoms that actually occur in db. alpha
// may be nil. It is defined as ChemistrySetFromStats over a one-pass
// accumulation, so a shard coordinator that merges per-shard Stats
// rebuilds an identical set.
func ChemistrySet(db []*graph.Graph, alpha *graph.Alphabet, topK int) *Set {
	st := NewStats()
	for _, g := range db {
		st.Add(g)
	}
	return ChemistrySetFromStats(st, alpha, topK)
}

// edgeKey normalizes an edge type to (min atom, max atom, bond).
func edgeKey(a, b, bond graph.Label) [3]graph.Label {
	if a > b {
		a, b = b, a
	}
	return [3]graph.Label{a, b, bond}
}

// EdgeType names one edge-type feature for NewCustomSet: the unordered
// node-label pair (A, B) joined by edge label Bond.
type EdgeType struct {
	A, B, Bond graph.Label
	// Name is the display name (optional; a numeric form is derived
	// when empty).
	Name string
}

// NewCustomSet builds a feature set from explicit edge types and node
// labels — the general, non-chemistry path of §II-A, typically fed by
// GreedySelect over candidate features. Edge features come first in the
// given order, then atom features.
func NewCustomSet(edges []EdgeType, atoms []graph.Label, atomNames []string) *Set {
	s := &Set{
		atomFeature: map[graph.Label]int{},
		edgeFeature: map[[3]graph.Label]int{},
	}
	for _, e := range edges {
		key := edgeKey(e.A, e.B, e.Bond)
		if _, dup := s.edgeFeature[key]; dup {
			continue
		}
		name := e.Name
		if name == "" {
			name = fmt.Sprintf("#%d-#%d/%d", int(key[0]), int(key[1]), int(key[2]))
		}
		s.edgeFeature[key] = len(s.names)
		s.names = append(s.names, name)
	}
	for i, a := range atoms {
		if _, dup := s.atomFeature[a]; dup {
			continue
		}
		name := fmt.Sprintf("node:#%d", int(a))
		if atomNames != nil && i < len(atomNames) && atomNames[i] != "" {
			name = "node:" + atomNames[i]
		}
		s.atomFeature[a] = len(s.names)
		s.names = append(s.names, name)
	}
	return s
}

// AllEdgeTypesSet builds a feature set with one feature per edge type
// (node-label pair × edge label) occurring in db and no atom features.
// This mirrors the simplified feature set of the paper's running example
// (Fig 6 / Table II, "assume our feature set consists of all edges").
func AllEdgeTypesSet(db []*graph.Graph, alpha *graph.Alphabet) *Set {
	s := &Set{
		atomFeature: map[graph.Label]int{},
		edgeFeature: map[[3]graph.Label]int{},
	}
	type named struct {
		key  [3]graph.Label
		name string
	}
	var pairs []named
	seen := map[[3]graph.Label]bool{}
	for _, g := range db {
		for _, e := range g.Edges() {
			a, b := g.NodeLabel(e.From), g.NodeLabel(e.To)
			key := edgeKey(a, b, e.Label)
			if seen[key] {
				continue
			}
			seen[key] = true
			na, nb := fmt.Sprintf("#%d", int(key[0])), fmt.Sprintf("#%d", int(key[1]))
			if alpha != nil {
				na, nb = alpha.Name(key[0]), alpha.Name(key[1])
			}
			name := na + "-" + nb
			if key[2] != 0 {
				name = fmt.Sprintf("%s/%d", name, int(key[2]))
			}
			pairs = append(pairs, named{key: key, name: name})
		}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].name < pairs[j].name })
	for _, p := range pairs {
		s.edgeFeature[p.key] = len(s.names)
		s.names = append(s.names, p.name)
	}
	return s
}
