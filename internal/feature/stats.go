package feature

import (
	"fmt"
	"sort"

	"graphsig/internal/graph"
)

// Stats is the mergeable raw material of a chemistry feature set: atom
// occurrence counts and the set of edge types (unordered atom pair ×
// bond label) seen. A shard coordinator accumulates one Stats per
// shard in parallel, merges them, and builds the feature set from the
// merged whole — ChemistrySet over the full database and
// ChemistrySetFromStats over merged per-shard stats produce identical
// sets, because the set depends only on these totals, never on scan
// order.
type Stats struct {
	atomCounts map[graph.Label]int
	edgeTypes  map[[3]graph.Label]bool
}

// NewStats returns an empty accumulator.
func NewStats() *Stats {
	return &Stats{
		atomCounts: map[graph.Label]int{},
		edgeTypes:  map[[3]graph.Label]bool{},
	}
}

// Add folds one graph's atoms and edge types into the stats.
func (s *Stats) Add(g *graph.Graph) {
	for _, l := range g.Labels() {
		s.atomCounts[l]++
	}
	for _, e := range g.Edges() {
		s.edgeTypes[edgeKey(g.NodeLabel(e.From), g.NodeLabel(e.To), e.Label)] = true
	}
}

// Merge folds another accumulator into s. Counts add and edge-type
// sets union, so merging is commutative and associative — shard order
// cannot change the result.
func (s *Stats) Merge(o *Stats) {
	for l, c := range o.atomCounts {
		s.atomCounts[l] += c
	}
	for k := range o.edgeTypes {
		s.edgeTypes[k] = true
	}
}

// Graphs-independent profile assembly shared by AtomProfile and the
// stats path: most frequent first, ties broken by label, cumulative
// coverage in percent.
func profileFromCounts(counts map[graph.Label]int, alpha *graph.Alphabet) []AtomFrequency {
	total := 0
	for _, c := range counts {
		total += c
	}
	profile := make([]AtomFrequency, 0, len(counts))
	for l, c := range counts {
		name := fmt.Sprintf("#%d", int(l))
		if alpha != nil {
			name = alpha.Name(l)
		}
		profile = append(profile, AtomFrequency{Label: l, Name: name, Count: c})
	}
	sort.Slice(profile, func(i, j int) bool {
		if profile[i].Count != profile[j].Count {
			return profile[i].Count > profile[j].Count
		}
		return profile[i].Label < profile[j].Label
	})
	cum := 0
	for i := range profile {
		cum += profile[i].Count
		if total > 0 {
			profile[i].CumulativePct = 100 * float64(cum) / float64(total)
		}
	}
	return profile
}

// ChemistrySetFromStats builds the paper's chemistry feature set from
// accumulated (possibly merged) stats — the scatter-gather twin of
// ChemistrySet, which is defined as ChemistrySetFromStats over a
// single-pass accumulation.
func ChemistrySetFromStats(st *Stats, alpha *graph.Alphabet, topK int) *Set {
	profile := profileFromCounts(st.atomCounts, alpha)
	s := &Set{
		atomFeature: map[graph.Label]int{},
		edgeFeature: map[[3]graph.Label]int{},
	}
	if topK > len(profile) {
		topK = len(profile)
	}
	covered, total := 0, 0
	for _, p := range profile {
		total += p.Count
	}
	rank := map[graph.Label]int{}
	names := map[graph.Label]string{}
	for i, p := range profile {
		rank[p.Label] = i
		names[p.Label] = p.Name
	}
	top := map[graph.Label]bool{}
	for i := 0; i < topK; i++ {
		s.topAtoms = append(s.topAtoms, profile[i].Label)
		top[profile[i].Label] = true
		covered += profile[i].Count
	}
	if total > 0 {
		s.atomCoverage = float64(covered) / float64(total)
	}
	// Edge features: every (top atom, top atom, bond) combination seen,
	// ordered by atom ranks then bond for stability.
	var types [][3]graph.Label
	for key := range st.edgeTypes {
		if !top[key[0]] || !top[key[1]] {
			continue
		}
		types = append(types, key)
	}
	sort.Slice(types, func(i, j int) bool {
		a, b := types[i], types[j]
		ra, rb := [2]int{rank[a[0]], rank[a[1]]}, [2]int{rank[b[0]], rank[b[1]]}
		if ra[0] != rb[0] {
			return ra[0] < rb[0]
		}
		if ra[1] != rb[1] {
			return ra[1] < rb[1]
		}
		return a[2] < b[2]
	})
	for _, key := range types {
		s.edgeFeature[key] = len(s.names)
		s.names = append(s.names, fmt.Sprintf("%s-%s/%d", names[key[0]], names[key[1]], int(key[2])))
	}
	// Then one feature per atom type.
	for _, p := range profile {
		s.atomFeature[p.Label] = len(s.names)
		s.names = append(s.names, "atom:"+p.Name)
	}
	return s
}
