package feature

import (
	"reflect"
	"testing"

	"graphsig/internal/chem"
	"graphsig/internal/graph"
)

// TestStatsMergeMatchesWholeDatabase: accumulating per-partition stats
// and merging them builds a feature set identical to the one built from
// the whole database in one pass — for any partition and merge order.
func TestStatsMergeMatchesWholeDatabase(t *testing.T) {
	gen := chem.NewGenerator(7)
	var db []*graph.Graph
	for i := 0; i < 30; i++ {
		db = append(db, gen.Molecule())
	}
	want := ChemistrySet(db, chem.Alphabet(), 5)

	for _, parts := range [][]int{{30}, {1, 29}, {10, 10, 10}, {7, 3, 11, 9}} {
		shards := make([]*Stats, len(parts))
		off := 0
		for i, n := range parts {
			shards[i] = NewStats()
			for _, g := range db[off : off+n] {
				shards[i].Add(g)
			}
			off += n
		}
		// Merge back-to-front so a non-trivial merge order is exercised.
		merged := NewStats()
		for i := len(shards) - 1; i >= 0; i-- {
			merged.Merge(shards[i])
		}
		got := ChemistrySetFromStats(merged, chem.Alphabet(), 5)
		if !reflect.DeepEqual(got.Names(), want.Names()) {
			t.Fatalf("partition %v: feature names differ\n got: %v\nwant: %v", parts, got.Names(), want.Names())
		}
		if !reflect.DeepEqual(got.TopAtoms(), want.TopAtoms()) {
			t.Fatalf("partition %v: top atoms differ: %v vs %v", parts, got.TopAtoms(), want.TopAtoms())
		}
		if got.TopAtomCoverage() != want.TopAtomCoverage() {
			t.Fatalf("partition %v: coverage differs: %v vs %v", parts, got.TopAtomCoverage(), want.TopAtomCoverage())
		}
	}
}
