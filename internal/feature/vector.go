// Package feature implements GraphSig's feature space (§II of the paper):
// domain feature sets (atom types plus edge types between the top-k most
// frequent atoms for chemistry, and a greedy general selector), and the
// discretized feature vectors with the sub-vector partial order and
// floor/ceiling operations that FVMine works over.
package feature

import (
	"fmt"
	"strings"
)

// Vector is a discretized feature vector. Each entry is a bin in [0, 255]
// (RWR discretization uses 0..10). Vectors compared or combined together
// must have equal length.
type Vector []uint8

// Clone returns a copy of v.
func (v Vector) Clone() Vector { return append(Vector(nil), v...) }

// Equal reports whether v and w are identical.
func (v Vector) Equal(w Vector) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if v[i] != w[i] {
			return false
		}
	}
	return true
}

// SubVectorOf reports whether v is a sub-feature vector of w (Def 3):
// v_i <= w_i for all i.
func (v Vector) SubVectorOf(w Vector) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if v[i] > w[i] {
			return false
		}
	}
	return true
}

// IsZero reports whether every entry is zero.
func (v Vector) IsZero() bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

// NonZero returns the number of non-zero entries.
func (v Vector) NonZero() int {
	n := 0
	for _, x := range v {
		if x != 0 {
			n++
		}
	}
	return n
}

// Sum returns the total of all entries.
func (v Vector) Sum() int {
	s := 0
	for _, x := range v {
		s += int(x)
	}
	return s
}

// L1DistanceFrom returns sum_i (w_i - v_i), the distance used by the
// classifier's minDist (Algorithm 4) for a sub-vector v of w. It panics
// if v is not a sub-vector of w.
func (v Vector) L1DistanceFrom(w Vector) int {
	if len(v) != len(w) {
		panic("feature: length mismatch")
	}
	d := 0
	for i := range v {
		if v[i] > w[i] {
			panic("feature: L1DistanceFrom requires v ⊆ w")
		}
		d += int(w[i]) - int(v[i])
	}
	return d
}

// String renders the vector compactly, e.g. "[1 0 0 2]".
func (v Vector) String() string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprintf("%d", x)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// Key returns the raw bytes as a string, usable as a map key.
func (v Vector) Key() string { return string(v) }

// Floor returns the component-wise minimum of vs (Def 5). It panics on an
// empty input or mismatched lengths.
func Floor(vs []Vector) Vector {
	if len(vs) == 0 {
		panic("feature: Floor of empty set")
	}
	out := vs[0].Clone()
	for _, v := range vs[1:] {
		if len(v) != len(out) {
			panic("feature: length mismatch")
		}
		for i := range out {
			if v[i] < out[i] {
				out[i] = v[i]
			}
		}
	}
	return out
}

// Ceiling returns the component-wise maximum of vs. It panics on an empty
// input or mismatched lengths.
func Ceiling(vs []Vector) Vector {
	if len(vs) == 0 {
		panic("feature: Ceiling of empty set")
	}
	out := vs[0].Clone()
	for _, v := range vs[1:] {
		if len(v) != len(out) {
			panic("feature: length mismatch")
		}
		for i := range out {
			if v[i] > out[i] {
				out[i] = v[i]
			}
		}
	}
	return out
}
