package fsg

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"graphsig/internal/dfscode"
	"graphsig/internal/graph"
	"graphsig/internal/isomorph"
)

func fsgSig(p Pattern) string {
	return fmt.Sprintf("%s|%d|%v", dfscode.Canonical(p.Graph), p.Support, p.GraphIDs)
}

// oracleClosed filters a pattern list down to the closed ones by brute
// force: a pattern survives unless some strictly larger pattern in the
// list has identical support and contains it (VF2). The production
// closure check never runs VF2, so this is a genuinely independent
// oracle.
func oracleClosed(patterns []Pattern) []Pattern {
	var out []Pattern
	for _, p := range patterns {
		closed := true
		for _, q := range patterns {
			if q.Support != p.Support || q.Graph.NumEdges() <= p.Graph.NumEdges() {
				continue
			}
			if isomorph.SubgraphIsomorphic(p.Graph, q.Graph) {
				closed = false
				break
			}
		}
		if closed {
			out = append(out, p)
		}
	}
	return out
}

// TestClosedOnlyMatchesOracleFSG checks fsg's ClosedOnly contract
// differentially against the VF2 oracle over random databases: same
// graphs, supports, TID lists, and order as filtering the full mine.
func TestClosedOnlyMatchesOracleFSG(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		r := rand.New(rand.NewSource(seed))
		db := randDB(r, 3+r.Intn(4), 6, 2, 2)
		full := Mine(db, Options{MinSupport: 2})
		closed := Mine(db, Options{MinSupport: 2, ClosedOnly: true})
		if full.Truncated || closed.Truncated {
			t.Fatalf("seed %d: unexpected truncation", seed)
		}
		want := oracleClosed(full.Patterns)
		if len(closed.Patterns) != len(want) {
			t.Fatalf("seed %d: %d closed patterns, oracle says %d", seed, len(closed.Patterns), len(want))
		}
		for i := range want {
			if g, w := fsgSig(closed.Patterns[i]), fsgSig(want[i]); g != w {
				t.Fatalf("seed %d: pattern %d = %s, oracle %s", seed, i, g, w)
			}
		}
		// The pipeline's load-bearing property: maximality over the
		// closed output is byte-identical to maximality over everything.
		mc, mf := Maximal(closed.Patterns), Maximal(full.Patterns)
		if len(mc) != len(mf) {
			t.Fatalf("seed %d: maximal(closed) has %d patterns, maximal(full) %d", seed, len(mc), len(mf))
		}
		for i := range mf {
			if fsgSig(mc[i]) != fsgSig(mf[i]) {
				t.Fatalf("seed %d: maximal sets diverge at %d", seed, i)
			}
		}
	}
}

// TestFrequentEdgeEmbeddings pins the level-1 embedding lists the
// incremental grower builds on: a same-label edge is realized by both
// orientations, a distinct-label edge by exactly the label-matching
// one, and entries stay grouped by gid in ascending order.
func TestFrequentEdgeEmbeddings(t *testing.T) {
	db := []*graph.Graph{
		build([]graph.Label{1, 1, 2}, [][3]int{{0, 1, 0}, {1, 2, 0}}),
		build([]graph.Label{1, 2}, [][3]int{{0, 1, 0}}),
	}
	level, embs := frequentEdges(db, 1)
	if len(level) != len(embs) {
		t.Fatalf("got %d patterns but %d embedding lists", len(level), len(embs))
	}
	byCanon := map[string]*embList{}
	for i, p := range level {
		byCanon[dfscode.Canonical(p.Graph)] = embs[i]
	}
	for canon, el := range byCanon {
		if !sort.IntsAreSorted(el.gids) {
			t.Errorf("%s: gids %v not ascending", canon, el.gids)
		}
		if len(el.flat) != el.len()*el.stride {
			t.Errorf("%s: flat length %d, want %d", canon, len(el.flat), el.len()*el.stride)
		}
	}
	// Edge 1(a)-1(a): one host edge in graph 0, both orientations.
	same := byCanon[dfscode.Canonical(build([]graph.Label{1, 1}, [][3]int{{0, 1, 0}}))]
	if same == nil || same.len() != 2 {
		t.Fatalf("same-label edge: embeddings %+v, want both orientations", same)
	}
	if n0, n1 := same.nodes(0), same.nodes(1); n0[0] != n1[1] || n0[1] != n1[0] {
		t.Errorf("same-label orientations %v and %v are not mirrored", n0, n1)
	}
	// Edge 1(a)-2(b): one orientation each in graphs 0 and 1, a-side first.
	mixed := byCanon[dfscode.Canonical(build([]graph.Label{1, 2}, [][3]int{{0, 1, 0}}))]
	if mixed == nil || mixed.len() != 2 {
		t.Fatalf("mixed-label edge: embeddings %+v, want one per graph", mixed)
	}
	for i := 0; i < mixed.len(); i++ {
		gid, n := mixed.gids[i], mixed.nodes(i)
		if db[gid].NodeLabel(n[0]) != 1 || db[gid].NodeLabel(n[1]) != 2 {
			t.Errorf("mixed-label embedding %d maps labels (%d,%d), want (1,2)",
				i, db[gid].NodeLabel(n[0]), db[gid].NodeLabel(n[1]))
		}
	}
}
