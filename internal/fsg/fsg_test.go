package fsg

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"graphsig/internal/dfscode"
	"graphsig/internal/graph"
	"graphsig/internal/gspan"
)

func build(labels []graph.Label, edges [][3]int) *graph.Graph {
	g := graph.New(len(labels), len(edges))
	for _, l := range labels {
		g.AddNode(l)
	}
	for _, e := range edges {
		g.MustAddEdge(e[0], e[1], graph.Label(e[2]))
	}
	return g
}

func TestFrequentEdgesLevel(t *testing.T) {
	db := []*graph.Graph{
		build([]graph.Label{1, 2, 3}, [][3]int{{0, 1, 0}, {1, 2, 0}}),
		build([]graph.Label{1, 2}, [][3]int{{0, 1, 0}}),
	}
	res := Mine(db, Options{MinSupport: 2, MaxEdges: 1})
	if len(res.Patterns) != 1 {
		t.Fatalf("got %d patterns; want 1", len(res.Patterns))
	}
	p := res.Patterns[0]
	if p.Support != 2 || p.Graph.NumEdges() != 1 {
		t.Errorf("pattern = %+v", p)
	}
	if len(res.Levels) != 1 || res.Levels[0] != 1 {
		t.Errorf("levels = %v; want [1]", res.Levels)
	}
}

func TestMineGrowsLevels(t *testing.T) {
	path := build([]graph.Label{1, 2, 3}, [][3]int{{0, 1, 0}, {1, 2, 0}})
	db := []*graph.Graph{path, path.Clone(), path.Clone()}
	res := Mine(db, Options{MinSupport: 3})
	// Patterns: edges 1-2, 2-3, and the path; all with support 3.
	if len(res.Patterns) != 3 {
		for _, p := range res.Patterns {
			t.Logf("%s sup=%d", p.Graph, p.Support)
		}
		t.Fatalf("got %d patterns; want 3", len(res.Patterns))
	}
	if len(res.Levels) != 2 || res.Levels[0] != 2 || res.Levels[1] != 1 {
		t.Errorf("levels = %v; want [2 1]", res.Levels)
	}
}

func TestMineTIDListsAreExact(t *testing.T) {
	db := []*graph.Graph{
		build([]graph.Label{1, 2, 3}, [][3]int{{0, 1, 0}, {1, 2, 0}}),
		build([]graph.Label{1, 2}, [][3]int{{0, 1, 0}}),
		build([]graph.Label{2, 3}, [][3]int{{0, 1, 0}}),
	}
	res := Mine(db, Options{MinSupport: 1})
	for _, p := range res.Patterns {
		if p.Graph.NumEdges() == 2 {
			if len(p.GraphIDs) != 1 || p.GraphIDs[0] != 0 {
				t.Errorf("path TID list = %v; want [0]", p.GraphIDs)
			}
		}
	}
}

func randDB(r *rand.Rand, count, maxNodes, nl, el int) []*graph.Graph {
	db := make([]*graph.Graph, count)
	for i := range db {
		n := 2 + r.Intn(maxNodes-1)
		g := graph.New(n, n)
		for v := 0; v < n; v++ {
			g.AddNode(graph.Label(r.Intn(nl)))
		}
		for v := 1; v < n; v++ {
			g.MustAddEdge(r.Intn(v), v, graph.Label(r.Intn(el)))
		}
		for e := 0; e < r.Intn(3); e++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v && !g.HasEdge(u, v) {
				g.MustAddEdge(u, v, graph.Label(r.Intn(el)))
			}
		}
		g.ID = i
		db[i] = g
	}
	return db
}

// TestPropertyFSGMatchesGSpan: both miners must produce the same set of
// frequent patterns with the same supports.
func TestPropertyFSGMatchesGSpan(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		db := randDB(rr, 3+rr.Intn(4), 5, 2, 2)
		minSup := 1 + rr.Intn(3)
		const maxEdges = 4
		fsgRes := Mine(db, Options{MinSupport: minSup, MaxEdges: maxEdges})
		gspanRes := gspan.Mine(db, gspan.Options{MinSupport: minSup, MaxEdges: maxEdges})
		a := map[string]int{}
		for _, p := range fsgRes.Patterns {
			a[dfscode.Canonical(p.Graph)] = p.Support
		}
		b := map[string]int{}
		for _, p := range gspanRes.Patterns {
			b[dfscode.Canonical(p.Graph)] = p.Support
		}
		if len(a) != len(b) {
			t.Logf("fsg %d patterns, gspan %d (minSup=%d)", len(a), len(b), minSup)
			return false
		}
		for k, v := range a {
			if b[k] != v {
				t.Logf("mismatch %s: fsg %d gspan %d", k, v, b[k])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: r}); err != nil {
		t.Error(err)
	}
}

func TestMaximalMine(t *testing.T) {
	path := build([]graph.Label{1, 2, 3}, [][3]int{{0, 1, 0}, {1, 2, 0}})
	db := []*graph.Graph{path, path.Clone(), path.Clone()}
	res := MaximalMine(db, Options{MinSupport: 3})
	if len(res.Patterns) != 1 {
		t.Fatalf("got %d maximal patterns; want 1", len(res.Patterns))
	}
	if res.Patterns[0].Graph.NumEdges() != 2 {
		t.Errorf("maximal = %s; want full path", res.Patterns[0].Graph)
	}
}

func TestMaximalMineHighThresholdFiltersNoise(t *testing.T) {
	// Three graphs share a triangle; one has extra noise. At 100%
	// support the maximal pattern is exactly the triangle.
	tri := [][3]int{{0, 1, 0}, {1, 2, 0}, {0, 2, 0}}
	g1 := build([]graph.Label{1, 2, 3}, tri)
	g2 := build([]graph.Label{1, 2, 3, 9}, append(append([][3]int{}, tri...), [3]int{2, 3, 1}))
	g3 := build([]graph.Label{1, 2, 3, 8}, append(append([][3]int{}, tri...), [3]int{0, 3, 1}))
	res := MaximalMine([]*graph.Graph{g1, g2, g3}, Options{MinSupport: 3})
	if len(res.Patterns) != 1 {
		for _, p := range res.Patterns {
			t.Logf("%s sup=%d", p.Graph, p.Support)
		}
		t.Fatalf("got %d maximal; want 1", len(res.Patterns))
	}
	if res.Patterns[0].Graph.NumEdges() != 3 || res.Patterns[0].Support != 3 {
		t.Errorf("maximal = %+v", res.Patterns[0])
	}
}

func TestDeadlineTruncates(t *testing.T) {
	g := build([]graph.Label{1, 1, 1, 1}, [][3]int{{0, 1, 0}, {1, 2, 0}, {2, 3, 0}})
	db := []*graph.Graph{g, g.Clone()}
	res := Mine(db, Options{MinSupport: 2, Deadline: time.Now().Add(-time.Second)})
	if !res.Truncated {
		t.Error("expected truncation")
	}
}

func TestEmptyDatabase(t *testing.T) {
	res := Mine(nil, Options{MinSupport: 1})
	if len(res.Patterns) != 0 || res.Truncated {
		t.Errorf("unexpected result: %+v", res)
	}
}

func TestCandidatesGeneratedCounted(t *testing.T) {
	path := build([]graph.Label{1, 2, 3}, [][3]int{{0, 1, 0}, {1, 2, 0}})
	db := []*graph.Graph{path, path.Clone(), path.Clone()}
	res := Mine(db, Options{MinSupport: 3})
	if res.CandidatesGenerated == 0 {
		t.Error("no candidates counted")
	}
	// Candidates are at least the surviving level-2+ patterns.
	survivors := 0
	for _, p := range res.Patterns {
		if p.Graph.NumEdges() >= 2 {
			survivors++
		}
	}
	if res.CandidatesGenerated < survivors {
		t.Errorf("candidates %d < survivors %d", res.CandidatesGenerated, survivors)
	}
}
