package fsg

import (
	"math/rand"
	"testing"

	"graphsig/internal/graph"
	"graphsig/internal/obs"
	"graphsig/internal/runctl"
)

// BenchmarkMaximalFilter isolates the O(n²) containment sweep the
// miners run after pattern generation, on the full frequent set versus
// the closed set the ClosedOnly mine now hands it. pairs/op is the
// number of candidate containment pairs surviving the size screen,
// vf2/op how many of those reached VF2 search — the two costs the
// closed-pattern mine exists to shrink.
// motifDB plants one labeled ring-with-chord motif in every graph plus
// per-graph noise — the GraphSig workload shape, where every frequent
// subpattern of the motif shares its full support and only the motif
// itself (and noise survivors) is closed.
func motifDB(r *rand.Rand, count int) []*graph.Graph {
	db := make([]*graph.Graph, count)
	for i := range db {
		g := build([]graph.Label{1, 2, 3, 4, 5, 6},
			[][3]int{{0, 1, 0}, {1, 2, 0}, {2, 3, 0}, {3, 4, 0}, {4, 5, 0}, {5, 0, 0}, {0, 3, 1}})
		for n := 0; n < 3; n++ {
			v := g.AddNode(graph.Label(7 + r.Intn(2)))
			g.MustAddEdge(r.Intn(v), v, 0)
		}
		g.ID = i
		db[i] = g
	}
	return db
}

func BenchmarkMaximalFilter(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	db := motifDB(r, 30)
	for _, mode := range []struct {
		name   string
		closed bool
	}{{"full", false}, {"closed", true}} {
		res := Mine(db, Options{MinSupport: 24, ClosedOnly: mode.closed})
		if res.Truncated {
			b.Fatal("unexpected truncation")
		}
		b.Run(mode.name, func(b *testing.B) {
			reg := obs.NewRegistry()
			ctl := runctl.New(runctl.Options{Metrics: reg})
			b.ReportMetric(float64(len(res.Patterns)), "patterns")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := MaximalCtl(res.Patterns, ctl.Checkpoint(runctl.StageFSG)); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			snap := reg.Snapshot()
			b.ReportMetric(float64(snap.CounterValue(obs.MMaximalPairs, "site", "fsg"))/float64(b.N), "pairs/op")
			b.ReportMetric(float64(snap.CounterValue(obs.MPrefilterPasses, "site", "maximal"))/float64(b.N), "vf2/op")
		})
	}
}
