// Package fvmine implements FVMine (Algorithm 1 of the paper): a
// bottom-up, depth-first search over closed sub-feature vectors of a
// vector database, reporting every closed vector whose binomial p-value
// is at most a threshold and whose support is at least a threshold.
//
// The search state is a pair (x, S) where S is the exact supporting set
// of the closed vector x = floor(S). Branching on feature position i
// refines S to the vectors exceeding x_i; three prunes bound the search:
// support (anti-monotone), duplicate states (a raised floor left of the
// branch position means another branch owns the state), and the
// ceiling-based p-value lower bound (the most significant any descendant
// could be).
package fvmine

import (
	"math"
	"sort"
	"time"

	"graphsig/internal/feature"
	"graphsig/internal/runctl"
	"graphsig/internal/sigmodel"
)

// Options configures a mine. MinSupport and MaxPvalue correspond to the
// paper's minSup and maxPvalue parameters.
type Options struct {
	// MinSupport is the minimum supporting-set size (>= 1).
	MinSupport int
	// MaxPvalue is the p-value threshold (paper default 0.1).
	MaxPvalue float64
	// Model supplies feature priors. When nil, a model is built from the
	// input vectors themselves (the paper's empirical priors).
	Model *sigmodel.Model
	// MaxResults stops the search after this many significant vectors
	// (0 = unbounded); the result is flagged Truncated.
	MaxResults int
	// Deadline aborts the search when exceeded (zero = none). Ignored
	// when Ctl is set; kept for standalone runs.
	Deadline time.Time
	// Ctl is the shared run controller carrying cancellation, deadline
	// and the FVMine state budget. The search checkpoints every
	// runctl.DefaultCheckInterval recursion states, so overshoot past a
	// deadline is bounded by one interval of state expansions rather
	// than one arbitrary subtree.
	Ctl *runctl.Controller
	// SkipZeroFloor drops reported vectors that are all-zero (an all-zero
	// floor carries no structural information). GraphSig enables this.
	SkipZeroFloor bool
}

// Significant is one mined closed sub-feature vector.
type Significant struct {
	// Vec is the closed vector: the floor of its supporting set.
	Vec feature.Vector
	// Support is the exact supporting-set size.
	Support int
	// SupportIdx are indices into the input vector slice of the
	// supporting vectors, ascending.
	SupportIdx []int
	// PValue is the binomial-tail p-value (may underflow to 0; use
	// LogPValue for ranking).
	PValue float64
	// LogPValue is log(PValue), finite ordering even in deep underflow.
	LogPValue float64
}

// Result is the outcome of a mine.
type Result struct {
	Vectors   []Significant
	Truncated bool
	// StopReason classifies why a truncated mine stopped ("" when the
	// mine completed or was cut by MaxResults).
	StopReason runctl.Reason
	// StatesExplored counts recursion states, exposing pruning behavior.
	StatesExplored int
}

// vectorSet provides floor/ceiling over subsets of a vector database,
// shared by the threshold and top-k miners.
type vectorSet []feature.Vector

func (vs vectorSet) floor(set []int) feature.Vector {
	out := vs[set[0]].Clone()
	for _, idx := range set[1:] {
		v := vs[idx]
		for i := range out {
			if v[i] < out[i] {
				out[i] = v[i]
			}
		}
	}
	return out
}

func (vs vectorSet) ceiling(set []int) feature.Vector {
	out := vs[set[0]].Clone()
	for _, idx := range set[1:] {
		v := vs[idx]
		for i := range out {
			if v[i] > out[i] {
				out[i] = v[i]
			}
		}
	}
	return out
}

type miner struct {
	vectors  vectorSet
	model    *sigmodel.Model
	opt      Options
	cp       *runctl.Checkpoint
	logMaxP  float64
	out      []Significant
	states   int
	stopping bool
	stopWhy  runctl.Reason
}

// Mine runs FVMine over vectors. All vectors must share one length.
func Mine(vectors []feature.Vector, opt Options) Result {
	if opt.MinSupport < 1 {
		opt.MinSupport = 1
	}
	if len(vectors) == 0 || len(vectors) < opt.MinSupport {
		return Result{}
	}
	model := opt.Model
	if model == nil {
		model = sigmodel.New(vectors)
	}
	ctl := opt.Ctl
	if ctl == nil {
		ctl = runctl.FromDeadline(opt.Deadline)
	}
	m := &miner{
		vectors: vectors,
		model:   model,
		opt:     opt,
		cp:      ctl.Checkpoint(runctl.StageFVMine),
		logMaxP: math.Log(opt.MaxPvalue),
	}
	// Un-amortized check up front so an already-expired deadline or
	// canceled context truncates before any work.
	if err := m.cp.Force(); err != nil {
		return Result{Truncated: true, StopReason: runctl.ReasonOf(err)}
	}
	all := make([]int, len(vectors))
	for i := range all {
		all[i] = i
	}
	m.search(m.vectors.floor(all), all, 0)
	return Result{Vectors: m.out, Truncated: m.stopping, StopReason: m.stopWhy, StatesExplored: m.states}
}

// search is FVMine(x, S, b): x is the current closed vector, set its
// supporting indices, b the current starting feature position.
func (m *miner) search(x feature.Vector, set []int, b int) {
	if m.stopping {
		return
	}
	m.states++
	if err := m.cp.Step(); err != nil {
		m.stopping = true
		if se, ok := runctl.AsStop(err); ok {
			m.stopWhy = se.Reason
		}
		return
	}
	// Line 1-2: report x when significant.
	logP := m.model.LogPValue(x, len(set))
	if logP <= m.logMaxP && (!m.opt.SkipZeroFloor || !x.IsZero()) {
		m.out = append(m.out, Significant{
			Vec:        x.Clone(),
			Support:    len(set),
			SupportIdx: append([]int(nil), set...),
			PValue:     math.Exp(logP),
			LogPValue:  logP,
		})
		if m.opt.MaxResults > 0 && len(m.out) >= m.opt.MaxResults {
			m.stopping = true
			return
		}
	}
	// Lines 3-12: branch on each feature position from b.
	dim := len(x)
	for i := b; i < dim; i++ {
		// S' = {y in S : y_i > x_i}.
		var sub []int
		for _, idx := range set {
			if m.vectors[idx][i] > x[i] {
				sub = append(sub, idx)
			}
		}
		if len(sub) < m.opt.MinSupport {
			continue
		}
		xp := m.vectors.floor(sub)
		// Duplicate state: the refined floor raised a feature left of i,
		// so the state is owned by an earlier branch.
		dup := false
		for j := 0; j < i; j++ {
			if xp[j] > x[j] {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		// Ceiling prune: the most significant any descendant can get is
		// p-value(ceiling(S'), |S'|); if even that misses the threshold,
		// the whole branch is fruitless.
		if m.model.LogPValue(m.vectors.ceiling(sub), len(sub)) > m.logMaxP {
			continue
		}
		m.search(xp, sub, i)
		if m.stopping {
			return
		}
	}
}

// SortBySignificance orders significant vectors most significant first
// (ascending log p-value, ties by descending support then vector bytes).
func SortBySignificance(vs []Significant) {
	sort.Slice(vs, func(i, j int) bool {
		if vs[i].LogPValue != vs[j].LogPValue {
			return vs[i].LogPValue < vs[j].LogPValue
		}
		if vs[i].Support != vs[j].Support {
			return vs[i].Support > vs[j].Support
		}
		return vs[i].Vec.Key() < vs[j].Vec.Key()
	})
}
