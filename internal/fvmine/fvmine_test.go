package fvmine

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"graphsig/internal/feature"
	"graphsig/internal/sigmodel"
)

func tableI() []feature.Vector {
	return []feature.Vector{
		{1, 0, 0, 2}, // v1
		{1, 1, 0, 2}, // v2
		{2, 0, 1, 2}, // v3
		{1, 0, 1, 0}, // v4
	}
}

func TestMineTableIAllClosedVectors(t *testing.T) {
	// With support and p-value thresholds of 1 (the Fig 8 running
	// example), FVMine reports every closed vector exactly once.
	res := Mine(tableI(), Options{MinSupport: 1, MaxPvalue: 1})
	if res.Truncated {
		t.Fatal("unexpected truncation")
	}
	seen := map[string]bool{}
	for _, s := range res.Vectors {
		if seen[s.Vec.Key()] {
			t.Errorf("duplicate closed vector %v", s.Vec)
		}
		seen[s.Vec.Key()] = true
	}
	// The floor of the full database [1 0 0 0] must be reported with
	// support 4.
	foundRoot := false
	for _, s := range res.Vectors {
		if s.Vec.Equal(feature.Vector{1, 0, 0, 0}) {
			foundRoot = true
			if s.Support != 4 {
				t.Errorf("root support = %d; want 4", s.Support)
			}
		}
	}
	if !foundRoot {
		t.Error("floor of database not reported")
	}
	// Each input vector is itself closed (it is the floor of its own
	// exact-support set).
	for i, v := range tableI() {
		if !seen[v.Key()] {
			t.Errorf("input vector v%d %v not reported as closed", i+1, v)
		}
	}
}

func TestSupportSetsAreExact(t *testing.T) {
	vectors := tableI()
	res := Mine(vectors, Options{MinSupport: 1, MaxPvalue: 1})
	for _, s := range res.Vectors {
		// Recompute the exact support of s.Vec.
		var want []int
		for i, v := range vectors {
			if s.Vec.SubVectorOf(v) {
				want = append(want, i)
			}
		}
		if len(want) != len(s.SupportIdx) {
			t.Errorf("vector %v: support %v; want %v", s.Vec, s.SupportIdx, want)
			continue
		}
		for i := range want {
			if want[i] != s.SupportIdx[i] {
				t.Errorf("vector %v: support %v; want %v", s.Vec, s.SupportIdx, want)
				break
			}
		}
		if s.Support != len(want) {
			t.Errorf("vector %v: Support=%d; want %d", s.Vec, s.Support, len(want))
		}
	}
}

func TestMinSupportPrunes(t *testing.T) {
	res := Mine(tableI(), Options{MinSupport: 3, MaxPvalue: 1})
	for _, s := range res.Vectors {
		if s.Support < 3 {
			t.Errorf("vector %v has support %d < 3", s.Vec, s.Support)
		}
	}
}

func TestPValueThresholdFilters(t *testing.T) {
	vectors := tableI()
	all := Mine(vectors, Options{MinSupport: 1, MaxPvalue: 1})
	strict := Mine(vectors, Options{MinSupport: 1, MaxPvalue: 0.3})
	if len(strict.Vectors) >= len(all.Vectors) {
		t.Errorf("strict threshold kept %d of %d", len(strict.Vectors), len(all.Vectors))
	}
	for _, s := range strict.Vectors {
		if s.PValue > 0.3+1e-12 {
			t.Errorf("vector %v has p-value %g > 0.3", s.Vec, s.PValue)
		}
	}
}

func TestSkipZeroFloor(t *testing.T) {
	vectors := []feature.Vector{{0, 0}, {0, 1}, {1, 0}}
	res := Mine(vectors, Options{MinSupport: 1, MaxPvalue: 1, SkipZeroFloor: true})
	for _, s := range res.Vectors {
		if s.Vec.IsZero() {
			t.Errorf("zero floor reported despite SkipZeroFloor")
		}
	}
}

func TestMaxResultsTruncates(t *testing.T) {
	res := Mine(tableI(), Options{MinSupport: 1, MaxPvalue: 1, MaxResults: 2})
	if !res.Truncated || len(res.Vectors) != 2 {
		t.Errorf("truncated=%v count=%d; want true,2", res.Truncated, len(res.Vectors))
	}
}

func TestDeadline(t *testing.T) {
	// A generous vector set with an already-expired deadline must stop
	// early (the check fires every 64 states, so allow some slack).
	r := rand.New(rand.NewSource(81))
	vectors := randVectors(r, 200, 8, 4)
	res := Mine(vectors, Options{MinSupport: 1, MaxPvalue: 1, Deadline: time.Now().Add(-time.Second)})
	if !res.Truncated {
		t.Skip("mine finished before first deadline check; nothing to assert")
	}
}

func randVectors(r *rand.Rand, count, dim, maxBin int) []feature.Vector {
	vs := make([]feature.Vector, count)
	for i := range vs {
		v := make(feature.Vector, dim)
		for j := range v {
			v[j] = uint8(r.Intn(maxBin + 1))
		}
		vs[i] = v
	}
	return vs
}

// bruteClosed enumerates every vector in the bounded product space,
// keeps those with support >= minSup that are closed (equal to the floor
// of their exact support set) and significant.
func bruteClosed(vectors []feature.Vector, minSup int, maxPvalue float64) map[string]int {
	model := sigmodel.New(vectors)
	dim := len(vectors[0])
	maxBin := 0
	for _, v := range vectors {
		for _, x := range v {
			if int(x) > maxBin {
				maxBin = int(x)
			}
		}
	}
	out := map[string]int{}
	cur := make(feature.Vector, dim)
	var rec func(i int)
	rec = func(i int) {
		if i == dim {
			var support []feature.Vector
			count := 0
			for _, v := range vectors {
				if cur.SubVectorOf(v) {
					support = append(support, v)
					count++
				}
			}
			if count < minSup {
				return
			}
			if !feature.Floor(support).Equal(cur) {
				return // not closed
			}
			if model.LogPValue(cur, count) <= math.Log(maxPvalue) {
				out[cur.Key()] = count
			}
			return
		}
		for v := 0; v <= maxBin; v++ {
			cur[i] = uint8(v)
			rec(i + 1)
		}
		cur[i] = 0
	}
	rec(0)
	return out
}

// TestPropertyMineMatchesBruteForce verifies completeness and soundness
// of FVMine against exhaustive enumeration on small instances.
func TestPropertyMineMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(82))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		vectors := randVectors(rr, 3+rr.Intn(8), 1+rr.Intn(3), 2)
		minSup := 1 + rr.Intn(2)
		maxP := []float64{0.2, 0.5, 1}[rr.Intn(3)]
		want := bruteClosed(vectors, minSup, maxP)
		res := Mine(vectors, Options{MinSupport: minSup, MaxPvalue: maxP})
		got := map[string]int{}
		for _, s := range res.Vectors {
			if _, dup := got[s.Vec.Key()]; dup {
				t.Logf("duplicate output %v", s.Vec)
				return false
			}
			got[s.Vec.Key()] = s.Support
		}
		if len(got) != len(want) {
			t.Logf("count %d != %d (minSup=%d maxP=%g, db=%v)", len(got), len(want), minSup, maxP, vectors)
			return false
		}
		for k, sup := range want {
			if got[k] != sup {
				t.Logf("support mismatch for %v: got %d want %d", feature.Vector(k), got[k], sup)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80, Rand: r}); err != nil {
		t.Error(err)
	}
}

func TestSortBySignificance(t *testing.T) {
	vs := []Significant{
		{Vec: feature.Vector{1}, LogPValue: -1, Support: 5},
		{Vec: feature.Vector{2}, LogPValue: -10, Support: 2},
		{Vec: feature.Vector{3}, LogPValue: -1, Support: 9},
	}
	SortBySignificance(vs)
	if !vs[0].Vec.Equal(feature.Vector{2}) {
		t.Errorf("most significant first: got %v", vs[0].Vec)
	}
	if !vs[1].Vec.Equal(feature.Vector{3}) {
		t.Errorf("tie broken by support: got %v", vs[1].Vec)
	}
}

func TestEmptyInput(t *testing.T) {
	res := Mine(nil, Options{MinSupport: 1, MaxPvalue: 1})
	if len(res.Vectors) != 0 || res.Truncated {
		t.Errorf("unexpected result %+v", res)
	}
}

func TestStatesExploredExposesPruning(t *testing.T) {
	r := rand.New(rand.NewSource(83))
	vectors := randVectors(r, 40, 5, 3)
	loose := Mine(vectors, Options{MinSupport: 1, MaxPvalue: 1})
	tight := Mine(vectors, Options{MinSupport: 8, MaxPvalue: 1})
	if tight.StatesExplored >= loose.StatesExplored {
		t.Errorf("support pruning did not reduce states: %d >= %d",
			tight.StatesExplored, loose.StatesExplored)
	}
}
