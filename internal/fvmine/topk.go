package fvmine

import (
	"container/heap"
	"math"

	"graphsig/internal/feature"
	"graphsig/internal/runctl"
	"graphsig/internal/sigmodel"
)

// MineTopK returns the k most significant closed sub-feature vectors,
// without requiring a p-value threshold: the search keeps the best k
// found so far and dynamically tightens the pruning threshold to the
// current k-th best p-value, so branches that cannot break into the top
// k are cut. MinSupport still applies. Results come back most
// significant first.
func MineTopK(vectors []feature.Vector, k int, minSupport int, model *sigmodel.Model) []Significant {
	return MineTopKCtl(vectors, k, minSupport, model, nil)
}

// MineTopKCtl is MineTopK observing a shared run controller: the search
// checkpoints per recursion state and unwinds with the best k found so
// far when the controller trips — a valid (if shallower) top-k set.
func MineTopKCtl(vectors []feature.Vector, k int, minSupport int, model *sigmodel.Model, ctl *runctl.Controller) []Significant {
	if k <= 0 || len(vectors) == 0 {
		return nil
	}
	if minSupport < 1 {
		minSupport = 1
	}
	if len(vectors) < minSupport {
		return nil
	}
	if model == nil {
		model = sigmodel.New(vectors)
	}
	m := &topKMiner{
		vectors: vectors,
		model:   model,
		minSup:  minSupport,
		k:       k,
		cp:      ctl.Checkpoint(runctl.StageFVMine),
	}
	all := make([]int, len(vectors))
	for i := range all {
		all[i] = i
	}
	m.search(m.vectors.floor(all), all, 0)

	out := make([]Significant, len(m.best))
	for i := len(m.best) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&m.best).(Significant)
	}
	return out
}

type topKMiner struct {
	vectors vectorSet
	model   *sigmodel.Model
	minSup  int
	k       int
	cp      *runctl.Checkpoint
	stopped bool
	// best is a max-heap on log p-value: the root is the *worst* of the
	// current top k, ready for eviction.
	best significantHeap
}

// bound returns the current pruning threshold: +Inf until the heap
// fills, then the k-th best log p-value.
func (m *topKMiner) bound() float64 {
	if len(m.best) < m.k {
		return math.Inf(1)
	}
	return m.best[0].LogPValue
}

func (m *topKMiner) search(x feature.Vector, set []int, b int) {
	if m.stopped {
		return
	}
	if err := m.cp.Step(); err != nil {
		m.stopped = true
		return
	}
	logP := m.model.LogPValue(x, len(set))
	if !x.IsZero() && logP < m.bound() {
		heap.Push(&m.best, Significant{
			Vec:        x.Clone(),
			Support:    len(set),
			SupportIdx: append([]int(nil), set...),
			PValue:     math.Exp(logP),
			LogPValue:  logP,
		})
		if len(m.best) > m.k {
			heap.Pop(&m.best)
		}
	}
	dim := len(x)
	for i := b; i < dim; i++ {
		var sub []int
		for _, idx := range set {
			if m.vectors[idx][i] > x[i] {
				sub = append(sub, idx)
			}
		}
		if len(sub) < m.minSup {
			continue
		}
		xp := m.vectors.floor(sub)
		dup := false
		for j := 0; j < i; j++ {
			if xp[j] > x[j] {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		// Tightening prune: the most significant any descendant can be.
		if m.model.LogPValue(m.vectors.ceiling(sub), len(sub)) >= m.bound() {
			continue
		}
		m.search(xp, sub, i)
		if m.stopped {
			return
		}
	}
}

// significantHeap is a max-heap by log p-value (worst at the root).
type significantHeap []Significant

func (h significantHeap) Len() int { return len(h) }
func (h significantHeap) Less(i, j int) bool {
	if h[i].LogPValue != h[j].LogPValue {
		return h[i].LogPValue > h[j].LogPValue
	}
	return h[i].Support < h[j].Support
}
func (h significantHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *significantHeap) Push(x any)   { *h = append(*h, x.(Significant)) }
func (h *significantHeap) Pop() any {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}
