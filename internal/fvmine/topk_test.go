package fvmine

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"graphsig/internal/sigmodel"
)

// TestMineTopKMatchesThresholdMine: the top-k results must be exactly
// the k most significant vectors that an unthresholded Mine finds.
func TestMineTopKMatchesThresholdMine(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		vectors := randVectors(rr, 5+rr.Intn(25), 1+rr.Intn(4), 3)
		minSup := 1 + rr.Intn(2)
		k := 1 + rr.Intn(6)
		model := sigmodel.New(vectors)

		full := Mine(vectors, Options{MinSupport: minSup, MaxPvalue: 1, Model: model, SkipZeroFloor: true})
		SortBySignificance(full.Vectors)
		want := full.Vectors
		if len(want) > k {
			want = want[:k]
		}

		got := MineTopK(vectors, k, minSup, model)
		if len(got) != len(want) {
			t.Logf("got %d, want %d (k=%d)", len(got), len(want), k)
			return false
		}
		for i := range got {
			// Compare by p-value; tied p-values may order differently.
			if math.Abs(got[i].LogPValue-want[i].LogPValue) > 1e-9 {
				t.Logf("rank %d: got logP %f want %f", i, got[i].LogPValue, want[i].LogPValue)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120, Rand: r}); err != nil {
		t.Error(err)
	}
}

func TestMineTopKOrdering(t *testing.T) {
	r := rand.New(rand.NewSource(102))
	vectors := randVectors(r, 40, 4, 3)
	got := MineTopK(vectors, 10, 2, nil)
	for i := 1; i < len(got); i++ {
		if got[i-1].LogPValue > got[i].LogPValue {
			t.Fatal("top-k not ordered most significant first")
		}
	}
}

func TestMineTopKEdgeCases(t *testing.T) {
	if got := MineTopK(nil, 5, 1, nil); got != nil {
		t.Error("empty input should yield nil")
	}
	vectors := randVectors(rand.New(rand.NewSource(103)), 10, 3, 2)
	if got := MineTopK(vectors, 0, 1, nil); got != nil {
		t.Error("k=0 should yield nil")
	}
	if got := MineTopK(vectors, 5, 100, nil); got != nil {
		t.Error("minSupport beyond input should yield nil")
	}
}

func TestMineTopKRespectsSupport(t *testing.T) {
	vectors := randVectors(rand.New(rand.NewSource(104)), 30, 4, 3)
	for _, s := range MineTopK(vectors, 8, 5, nil) {
		if s.Support < 5 {
			t.Errorf("vector with support %d below minimum 5", s.Support)
		}
	}
}
