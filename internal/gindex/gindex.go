// Package gindex is a pattern-based graph index in the spirit of GIndex
// (Yan, Yu & Han, SIGMOD 2004) — the application area the paper's §VII
// highlights for mined patterns. A dictionary of subgraph patterns
// (frequent patterns, significant patterns from GraphSig, or both) is
// used as a filter: a query graph's dictionary patterns must occur in
// every answer graph, so intersecting their posting lists yields a small
// candidate set that a final VF2 verification pass confirms.
package gindex

import (
	"sort"

	"graphsig/internal/dfscode"
	"graphsig/internal/graph"
	"graphsig/internal/gspan"
	"graphsig/internal/isomorph"
)

// Index answers subgraph containment queries ("which database graphs
// contain this query subgraph?") with pattern-filtered verification.
type Index struct {
	db       []*graph.Graph
	patterns []*graph.Graph
	postings [][]int // patterns[i] occurs in db graphs postings[i]
	// pf summarizes db once so dictionary builds and query verification
	// skip VF2 on graphs that provably cannot contain the pattern.
	pf *isomorph.Prefilter
}

// Stats summarizes an index.
type Stats struct {
	Graphs   int
	Patterns int
	// AvgPostingLen is the mean posting-list length: lower means more
	// selective filters.
	AvgPostingLen float64
}

// Build constructs an index over db from a caller-supplied pattern
// dictionary (e.g. GraphSig's significant subgraphs). Duplicate patterns
// (by canonical code) are dropped; patterns with empty posting lists are
// kept (they prune any query that contains them to zero candidates).
func Build(db []*graph.Graph, dictionary []*graph.Graph) *Index {
	ix := &Index{db: db, pf: isomorph.NewPrefilter(db)}
	seen := map[string]bool{}
	for _, p := range dictionary {
		if p.NumEdges() == 0 {
			continue
		}
		key := dfscode.Canonical(p)
		if seen[key] {
			continue
		}
		seen[key] = true
		ix.patterns = append(ix.patterns, p)
		ix.postings = append(ix.postings, ix.pf.SupportingIDs(p))
	}
	return ix
}

// FrequentOptions configures BuildFrequent's dictionary mining.
type FrequentOptions struct {
	// MinSupportPct is the gSpan frequency threshold in percent
	// (default 10).
	MinSupportPct float64
	// MaxPatternEdges bounds dictionary pattern size (default 4).
	MaxPatternEdges int
	// MaxPatterns bounds the dictionary size (default 256), keeping the
	// most size-discriminative (largest) patterns.
	MaxPatterns int
	// DiscriminativeRatio, when in (0, 1), applies GIndex's
	// discriminative-pattern pruning: a pattern enters the dictionary
	// only if its support is at most ratio × the support of every
	// already-admitted sub-pattern — a pattern that barely filters
	// beyond its own fragments is a redundant index entry.
	DiscriminativeRatio float64
}

// BuildFrequent mines a frequent-pattern dictionary with gSpan and
// builds the index, reusing the miner's TID lists as posting lists.
func BuildFrequent(db []*graph.Graph, opt FrequentOptions) *Index {
	if opt.MinSupportPct <= 0 {
		opt.MinSupportPct = 10
	}
	if opt.MaxPatternEdges <= 0 {
		opt.MaxPatternEdges = 4
	}
	if opt.MaxPatterns <= 0 {
		opt.MaxPatterns = 256
	}
	res := gspan.Mine(db, gspan.Options{
		MinSupport: gspan.FromPercent(opt.MinSupportPct, len(db)),
		MaxEdges:   opt.MaxPatternEdges,
	})
	pf := isomorph.NewPrefilter(db)
	patterns := res.Patterns
	if opt.DiscriminativeRatio > 0 && opt.DiscriminativeRatio < 1 {
		patterns = discriminative(patterns, opt.DiscriminativeRatio)
	}
	// Prefer larger patterns: they are the more selective filters.
	sort.Slice(patterns, func(i, j int) bool {
		if patterns[i].Graph.NumEdges() != patterns[j].Graph.NumEdges() {
			return patterns[i].Graph.NumEdges() > patterns[j].Graph.NumEdges()
		}
		return patterns[i].Support < patterns[j].Support
	})
	if len(patterns) > opt.MaxPatterns {
		patterns = patterns[:opt.MaxPatterns]
	}
	ix := &Index{db: db, pf: pf}
	for _, p := range patterns {
		ix.patterns = append(ix.patterns, p.Graph)
		ix.postings = append(ix.postings, p.GraphIDs)
	}
	return ix
}

// discriminative applies GIndex's size-increasing redundancy pruning:
// walking patterns smallest-first, a pattern is admitted only when its
// support is at most ratio times the support of every admitted
// sub-pattern — otherwise its posting list filters barely better than
// the fragments it contains, and it wastes dictionary space.
func discriminative(patterns []gspan.Pattern, ratio float64) []gspan.Pattern {
	sort.Slice(patterns, func(i, j int) bool {
		if patterns[i].Graph.NumEdges() != patterns[j].Graph.NumEdges() {
			return patterns[i].Graph.NumEdges() < patterns[j].Graph.NumEdges()
		}
		return patterns[i].Support > patterns[j].Support
	})
	var kept []gspan.Pattern
	for _, p := range patterns {
		admit := true
		for _, q := range kept {
			if q.Graph.NumEdges() >= p.Graph.NumEdges() {
				continue
			}
			if isomorph.SubgraphIsomorphic(q.Graph, p.Graph) &&
				float64(p.Support) > ratio*float64(q.Support) {
				admit = false
				break
			}
		}
		if admit {
			kept = append(kept, p)
		}
	}
	return kept
}

// Stats returns index summary statistics.
func (ix *Index) Stats() Stats {
	s := Stats{Graphs: len(ix.db), Patterns: len(ix.patterns)}
	total := 0
	for _, post := range ix.postings {
		total += len(post)
	}
	if len(ix.postings) > 0 {
		s.AvgPostingLen = float64(total) / float64(len(ix.postings))
	}
	return s
}

// Candidates returns the filtered candidate ids for a query without the
// verification pass: the intersection of the posting lists of every
// dictionary pattern contained in the query. With no matching dictionary
// pattern, every graph is a candidate.
func (ix *Index) Candidates(q *graph.Graph) []int {
	var cand []int
	first := true
	for i, p := range ix.patterns {
		if p.NumNodes() > q.NumNodes() || p.NumEdges() > q.NumEdges() {
			continue
		}
		if !isomorph.SubgraphIsomorphic(p, q) {
			continue
		}
		if first {
			cand = append(cand, ix.postings[i]...)
			first = false
		} else {
			cand = intersectSorted(cand, ix.postings[i])
		}
		if len(cand) == 0 && !first {
			return nil
		}
	}
	if first {
		cand = make([]int, len(ix.db))
		for i := range cand {
			cand[i] = i
		}
	}
	return cand
}

// Query returns, in ascending order, the ids of database graphs
// containing q, verified by subgraph isomorphism. Candidates surviving
// the posting-list intersection still pass through the summary
// prefilter before VF2: a candidate that slipped past the dictionary
// (no selective pattern matched the query) can often be dismissed on
// label histograms alone.
func (ix *Index) Query(q *graph.Graph) []int {
	qs := isomorph.Summarize(q)
	var out []int
	for _, id := range ix.Candidates(q) {
		if ix.pf != nil && !ix.pf.Summary(id).CanContain(qs) {
			continue
		}
		if isomorph.SubgraphIsomorphic(q, ix.db[id]) {
			out = append(out, id)
		}
	}
	return out
}

// ScanQuery answers the same question by brute-force scan; it is the
// correctness oracle and the baseline the index is measured against.
func ScanQuery(db []*graph.Graph, q *graph.Graph) []int {
	return isomorph.SupportingIDs(q, db)
}

func intersectSorted(a, b []int) []int {
	var out []int
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}
