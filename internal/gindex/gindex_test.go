package gindex

import (
	"math/rand"
	"testing"
	"testing/quick"

	"graphsig/internal/chem"
	"graphsig/internal/graph"
)

func moleculeDB(n int, seed int64) []*graph.Graph {
	gen := chem.NewGenerator(seed)
	db := make([]*graph.Graph, n)
	for i := range db {
		m := gen.Molecule()
		m.ID = i
		db[i] = m
	}
	return db
}

// randomQuery cuts a random connected piece out of a database graph so
// queries always have at least one answer.
func randomQuery(r *rand.Rand, db []*graph.Graph) *graph.Graph {
	g := db[r.Intn(len(db))]
	center := r.Intn(g.NumNodes())
	return g.CutGraph(center, 1+r.Intn(2))
}

func TestQueryMatchesScan(t *testing.T) {
	db := moleculeDB(40, 1)
	ix := BuildFrequent(db, FrequentOptions{MinSupportPct: 20, MaxPatternEdges: 3})
	r := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		q := randomQuery(rr, db)
		got := ix.Query(q)
		want := ScanQuery(db, q)
		if len(got) != len(want) {
			t.Logf("query %s: got %v want %v", q, got, want)
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: r}); err != nil {
		t.Error(err)
	}
}

func TestCandidatesAreFilteredButComplete(t *testing.T) {
	db := moleculeDB(60, 3)
	ix := BuildFrequent(db, FrequentOptions{MinSupportPct: 15, MaxPatternEdges: 3})
	r := rand.New(rand.NewSource(4))
	totalCand, totalAns, queries := 0, 0, 0
	for i := 0; i < 25; i++ {
		q := randomQuery(r, db)
		cand := ix.Candidates(q)
		answers := ScanQuery(db, q)
		// Completeness: every answer is a candidate.
		inCand := map[int]bool{}
		for _, id := range cand {
			inCand[id] = true
		}
		for _, id := range answers {
			if !inCand[id] {
				t.Fatalf("answer %d missing from candidates for %s", id, q)
			}
		}
		totalCand += len(cand)
		totalAns += len(answers)
		queries++
	}
	if totalCand >= queries*len(db) {
		t.Errorf("index never filtered: %d candidates over %d queries on %d graphs",
			totalCand, queries, len(db))
	}
	t.Logf("avg candidates %.1f vs avg answers %.1f (db %d)",
		float64(totalCand)/float64(queries), float64(totalAns)/float64(queries), len(db))
}

func TestBuildWithExplicitDictionary(t *testing.T) {
	db := moleculeDB(30, 5)
	dict := []*graph.Graph{chem.Benzene(), chem.Benzene(), graph.New(1, 0)}
	dict[2].AddNode(chem.Atom("C")) // zero-edge pattern must be ignored
	ix := Build(db, dict)
	s := ix.Stats()
	if s.Patterns != 1 {
		t.Fatalf("patterns = %d; want 1 (dedup + drop edgeless)", s.Patterns)
	}
	if s.Graphs != 30 {
		t.Errorf("graphs = %d", s.Graphs)
	}
	if s.AvgPostingLen <= 0 {
		t.Errorf("benzene posting empty: %+v", s)
	}
}

func TestQueryWithNoDictionaryHit(t *testing.T) {
	db := moleculeDB(20, 6)
	// A dictionary that cannot match anything keeps queries correct via
	// the full-scan fallback.
	exotic := graph.New(2, 1)
	exotic.AddNode(chem.Atom("U"))
	exotic.AddNode(chem.Atom("U"))
	exotic.MustAddEdge(0, 1, 0)
	ix := Build(db, []*graph.Graph{exotic})
	q := db[0].CutGraph(0, 1)
	got := ix.Query(q)
	want := ScanQuery(db, q)
	if len(got) != len(want) {
		t.Fatalf("fallback broken: got %d answers, want %d", len(got), len(want))
	}
}

func TestQueryContainingRarePatternPrunesHard(t *testing.T) {
	db := moleculeDB(30, 7)
	// Plant one Sb core into a single graph and index with it.
	gen := chem.NewGenerator(8)
	gen.Implant(db[4], chem.MotifByName("antimony"))
	core := chem.SbCore()
	ix := Build(db, []*graph.Graph{core})
	cand := ix.Candidates(core)
	if len(cand) != 1 || cand[0] != 4 {
		t.Fatalf("candidates = %v; want [4]", cand)
	}
	ans := ix.Query(core)
	if len(ans) != 1 || ans[0] != 4 {
		t.Fatalf("answers = %v; want [4]", ans)
	}
}

func TestStatsEmptyIndex(t *testing.T) {
	ix := Build(nil, nil)
	s := ix.Stats()
	if s.Graphs != 0 || s.Patterns != 0 || s.AvgPostingLen != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestIntersectSorted(t *testing.T) {
	tests := []struct {
		a, b, want []int
	}{
		{[]int{1, 3, 5}, []int{3, 5, 7}, []int{3, 5}},
		{[]int{1, 2}, []int{3, 4}, nil},
		{nil, []int{1}, nil},
		{[]int{1, 2, 3}, []int{1, 2, 3}, []int{1, 2, 3}},
	}
	for _, tc := range tests {
		got := intersectSorted(tc.a, tc.b)
		if len(got) != len(tc.want) {
			t.Errorf("intersect(%v,%v) = %v; want %v", tc.a, tc.b, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("intersect(%v,%v) = %v; want %v", tc.a, tc.b, got, tc.want)
			}
		}
	}
}

func TestDiscriminativePruningShrinksDictionary(t *testing.T) {
	db := moleculeDB(50, 9)
	full := BuildFrequent(db, FrequentOptions{MinSupportPct: 15, MaxPatternEdges: 3})
	pruned := BuildFrequent(db, FrequentOptions{
		MinSupportPct: 15, MaxPatternEdges: 3, DiscriminativeRatio: 0.8,
	})
	sf, sp := full.Stats(), pruned.Stats()
	if sp.Patterns >= sf.Patterns {
		t.Errorf("pruning did not shrink dictionary: %d -> %d", sf.Patterns, sp.Patterns)
	}
	if sp.Patterns == 0 {
		t.Fatal("pruning removed everything")
	}
	// Query correctness is unaffected.
	r := rand.New(rand.NewSource(10))
	for i := 0; i < 15; i++ {
		q := randomQuery(r, db)
		got := pruned.Query(q)
		want := ScanQuery(db, q)
		if len(got) != len(want) {
			t.Fatalf("pruned index wrong on query %d", i)
		}
	}
}
