package graph

import "fmt"

// Alphabet maps human-readable symbol strings (atom names, bond names) to
// dense Label values and back. It is append-only; Labels are assigned in
// first-seen order, making datasets deterministic given insertion order.
type Alphabet struct {
	byName map[string]Label
	names  []string
}

// NewAlphabet returns an empty alphabet.
func NewAlphabet() *Alphabet {
	return &Alphabet{byName: make(map[string]Label)}
}

// Intern returns the Label for name, assigning a fresh one if unseen.
func (a *Alphabet) Intern(name string) Label {
	if l, ok := a.byName[name]; ok {
		return l
	}
	l := Label(len(a.names))
	a.byName[name] = l
	a.names = append(a.names, name)
	return l
}

// Lookup returns the Label for name and whether it exists.
func (a *Alphabet) Lookup(name string) (Label, bool) {
	l, ok := a.byName[name]
	return l, ok
}

// Name returns the symbol string for l, or a numeric placeholder if l was
// never interned (e.g. labels from a foreign alphabet).
func (a *Alphabet) Name(l Label) string {
	if l >= 0 && int(l) < len(a.names) {
		return a.names[l]
	}
	return fmt.Sprintf("#%d", int(l))
}

// Len returns the number of interned symbols.
func (a *Alphabet) Len() int { return len(a.names) }

// Names returns all interned symbols in Label order. The caller must not
// mutate the returned slice.
func (a *Alphabet) Names() []string { return a.names }
