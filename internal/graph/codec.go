package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The codec reads and writes the line-oriented graph transaction format
// used by gSpan/FSG tooling:
//
//	t # <graph-id>
//	v <node-id> <label>
//	e <from> <to> <label>
//
// Labels may be integers (raw Label values) or symbol strings resolved
// through an Alphabet. Blank lines and lines starting with '%' or '//'
// are ignored.

// WriteDB writes graphs in transaction format. If alpha is non-nil, node
// and edge labels are written as symbol names; otherwise as integers.
func WriteDB(w io.Writer, graphs []*Graph, alpha *Alphabet) error {
	bw := bufio.NewWriter(w)
	for _, g := range graphs {
		if _, err := fmt.Fprintf(bw, "t # %d\n", g.ID); err != nil {
			return err
		}
		for v := 0; v < g.NumNodes(); v++ {
			if _, err := fmt.Fprintf(bw, "v %d %s\n", v, labelString(g.NodeLabel(v), alpha)); err != nil {
				return err
			}
		}
		for _, e := range g.Edges() {
			if _, err := fmt.Fprintf(bw, "e %d %d %s\n", e.From, e.To, labelString(e.Label, alpha)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

func labelString(l Label, alpha *Alphabet) string {
	if alpha != nil {
		return alpha.Name(l)
	}
	return strconv.Itoa(int(l))
}

// ReadDBFunc parses graphs in transaction format, streaming each
// completed graph to fn instead of accumulating a slice — the right
// entry point for paper-scale files (tens of thousands of molecules).
// fn returning false stops the scan early without error.
func ReadDBFunc(r io.Reader, alpha *Alphabet, fn func(*Graph) bool) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var cur *Graph
	count := 0
	lineNo := 0
	flush := func() bool {
		if cur == nil {
			return true
		}
		g := cur
		cur = nil
		return fn(g)
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") || strings.HasPrefix(line, "//") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "t":
			if !flush() {
				return nil
			}
			id := count
			if len(fields) >= 3 {
				if v, err := strconv.Atoi(fields[2]); err == nil {
					id = v
				}
			}
			cur = New(0, 0)
			cur.ID = id
			count++
		case "v", "e":
			if cur == nil {
				return fmt.Errorf("graph codec: line %d: record before transaction header", lineNo)
			}
			if err := parseRecord(cur, fields, alpha, lineNo); err != nil {
				return err
			}
		default:
			return fmt.Errorf("graph codec: line %d: unknown record %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	flush()
	return nil
}

// parseRecord applies one "v" or "e" line to the graph under
// construction.
func parseRecord(cur *Graph, fields []string, alpha *Alphabet, lineNo int) error {
	switch fields[0] {
	case "v":
		if len(fields) != 3 {
			return fmt.Errorf("graph codec: line %d: want 'v id label'", lineNo)
		}
		id, err := strconv.Atoi(fields[1])
		if err != nil {
			return fmt.Errorf("graph codec: line %d: bad vertex id %q", lineNo, fields[1])
		}
		l, err := parseLabel(fields[2], alpha)
		if err != nil {
			return fmt.Errorf("graph codec: line %d: %w", lineNo, err)
		}
		if got := cur.AddNode(l); got != id {
			return fmt.Errorf("graph codec: line %d: vertex ids must be dense and ordered (got %d, want %d)", lineNo, id, got)
		}
	case "e":
		if len(fields) != 4 {
			return fmt.Errorf("graph codec: line %d: want 'e from to label'", lineNo)
		}
		from, err1 := strconv.Atoi(fields[1])
		to, err2 := strconv.Atoi(fields[2])
		if err1 != nil || err2 != nil {
			return fmt.Errorf("graph codec: line %d: bad edge endpoints", lineNo)
		}
		l, err := parseLabel(fields[3], alpha)
		if err != nil {
			return fmt.Errorf("graph codec: line %d: %w", lineNo, err)
		}
		if from < 0 || from >= cur.NumNodes() || to < 0 || to >= cur.NumNodes() || from == to {
			return fmt.Errorf("graph codec: line %d: edge (%d,%d) out of range", lineNo, from, to)
		}
		if err := cur.AddEdge(from, to, l); err != nil {
			return fmt.Errorf("graph codec: line %d: %w", lineNo, err)
		}
	}
	return nil
}

// ReadDB parses graphs in transaction format. If alpha is non-nil, labels
// are interned through it (integers are also accepted and interned by
// their decimal spelling); otherwise labels must be integers.
func ReadDB(r io.Reader, alpha *Alphabet) ([]*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var graphs []*Graph
	var cur *Graph
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") || strings.HasPrefix(line, "//") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "t":
			id := len(graphs)
			if len(fields) >= 3 {
				if v, err := strconv.Atoi(fields[2]); err == nil {
					id = v
				}
			}
			cur = New(0, 0)
			cur.ID = id
			graphs = append(graphs, cur)
		case "v":
			if cur == nil {
				return nil, fmt.Errorf("graph codec: line %d: vertex before transaction header", lineNo)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph codec: line %d: want 'v id label'", lineNo)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("graph codec: line %d: bad vertex id %q", lineNo, fields[1])
			}
			l, err := parseLabel(fields[2], alpha)
			if err != nil {
				return nil, fmt.Errorf("graph codec: line %d: %w", lineNo, err)
			}
			if got := cur.AddNode(l); got != id {
				return nil, fmt.Errorf("graph codec: line %d: vertex ids must be dense and ordered (got %d, want %d)", lineNo, id, got)
			}
		case "e":
			if cur == nil {
				return nil, fmt.Errorf("graph codec: line %d: edge before transaction header", lineNo)
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("graph codec: line %d: want 'e from to label'", lineNo)
			}
			from, err1 := strconv.Atoi(fields[1])
			to, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("graph codec: line %d: bad edge endpoints", lineNo)
			}
			l, err := parseLabel(fields[3], alpha)
			if err != nil {
				return nil, fmt.Errorf("graph codec: line %d: %w", lineNo, err)
			}
			if from < 0 || from >= cur.NumNodes() || to < 0 || to >= cur.NumNodes() || from == to {
				return nil, fmt.Errorf("graph codec: line %d: edge (%d,%d) out of range", lineNo, from, to)
			}
			if err := cur.AddEdge(from, to, l); err != nil {
				return nil, fmt.Errorf("graph codec: line %d: %w", lineNo, err)
			}
		default:
			return nil, fmt.Errorf("graph codec: line %d: unknown record %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return graphs, nil
}

func parseLabel(s string, alpha *Alphabet) (Label, error) {
	if alpha != nil {
		return alpha.Intern(s), nil
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return NoLabel, fmt.Errorf("non-integer label %q without alphabet", s)
	}
	return Label(v), nil
}
