package graph

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestReadDBBasic(t *testing.T) {
	const in = `
% comment
t # 0
v 0 C
v 1 O
e 0 1 double
t # 7
v 0 N
`
	alpha := NewAlphabet()
	graphs, err := ReadDB(strings.NewReader(in), alpha)
	if err != nil {
		t.Fatal(err)
	}
	if len(graphs) != 2 {
		t.Fatalf("got %d graphs; want 2", len(graphs))
	}
	g := graphs[0]
	if g.ID != 0 || g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Fatalf("graph 0: %s", g)
	}
	if alpha.Name(g.NodeLabel(1)) != "O" {
		t.Errorf("node 1 label = %q; want O", alpha.Name(g.NodeLabel(1)))
	}
	if graphs[1].ID != 7 {
		t.Errorf("graph 1 id = %d; want 7", graphs[1].ID)
	}
}

func TestReadDBErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{"vertex before header", "v 0 C\n"},
		{"edge before header", "e 0 1 0\n"},
		{"sparse vertex ids", "t # 0\nv 1 C\n"},
		{"edge out of range", "t # 0\nv 0 C\ne 0 5 0\n"},
		{"self loop", "t # 0\nv 0 C\ne 0 0 0\n"},
		{"duplicate edge", "t # 0\nv 0 C\nv 1 C\ne 0 1 0\ne 1 0 0\n"},
		{"bad record", "t # 0\nx 1 2\n"},
		{"non-integer label without alphabet", "t # 0\nv 0 C\n"},
		{"short edge line", "t # 0\nv 0 0\nv 1 0\ne 0 1\n"},
	}
	for _, tc := range tests {
		var alpha *Alphabet
		if !strings.Contains(tc.name, "alphabet") {
			alpha = NewAlphabet()
		}
		if _, err := ReadDB(strings.NewReader(tc.in), alpha); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		var graphs []*Graph
		for i := 0; i < 1+rr.Intn(4); i++ {
			g := randomConnectedGraph(rr, 1+rr.Intn(12), rr.Intn(6), 5, 3)
			g.ID = i
			graphs = append(graphs, g)
		}
		var sb strings.Builder
		if err := WriteDB(&sb, graphs, nil); err != nil {
			return false
		}
		back, err := ReadDB(strings.NewReader(sb.String()), nil)
		if err != nil || len(back) != len(graphs) {
			return false
		}
		for i, g := range graphs {
			h := back[i]
			if h.ID != g.ID || h.NumNodes() != g.NumNodes() || h.NumEdges() != g.NumEdges() {
				return false
			}
			for v := 0; v < g.NumNodes(); v++ {
				if h.NodeLabel(v) != g.NodeLabel(v) {
					return false
				}
			}
			for _, e := range g.Edges() {
				if h.EdgeLabel(e.From, e.To) != e.Label {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: r}); err != nil {
		t.Error(err)
	}
}

func TestAlphabet(t *testing.T) {
	a := NewAlphabet()
	c := a.Intern("C")
	o := a.Intern("O")
	if a.Intern("C") != c {
		t.Error("Intern not idempotent")
	}
	if c == o {
		t.Error("distinct symbols share a label")
	}
	if a.Name(c) != "C" || a.Name(o) != "O" {
		t.Error("Name round trip failed")
	}
	if _, ok := a.Lookup("N"); ok {
		t.Error("Lookup found missing symbol")
	}
	if a.Len() != 2 {
		t.Errorf("Len = %d; want 2", a.Len())
	}
	if got := a.Name(Label(99)); got != "#99" {
		t.Errorf("Name(99) = %q; want #99", got)
	}
}

func TestWriteDOT(t *testing.T) {
	alpha := NewAlphabet()
	g := New(3, 2)
	g.AddNode(alpha.Intern("C"))
	g.AddNode(alpha.Intern("O"))
	g.AddNode(alpha.Intern("N"))
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 0)
	var sb strings.Builder
	if err := WriteDOT(&sb, g, "mol", alpha, func(l Label) string {
		if l == 1 {
			return "="
		}
		return "-"
	}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`graph "mol" {`, `n0 [label="C"]`, `n1 -- n2 [label="-"]`, `n0 -- n1 [label="="]`} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	// Determinism.
	var sb2 strings.Builder
	WriteDOT(&sb2, g, "mol", alpha, nil)
	var sb3 strings.Builder
	WriteDOT(&sb3, g, "mol", alpha, nil)
	if sb2.String() != sb3.String() {
		t.Error("DOT output not deterministic")
	}
}

func TestReadDBFuncStreaming(t *testing.T) {
	const in = "t # 0\nv 0 1\nt # 1\nv 0 2\nt # 2\nv 0 3\n"
	var ids []int
	if err := ReadDBFunc(strings.NewReader(in), nil, func(g *Graph) bool {
		ids = append(ids, g.ID)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 || ids[0] != 0 || ids[2] != 2 {
		t.Fatalf("ids = %v", ids)
	}
}

func TestReadDBFuncEarlyStop(t *testing.T) {
	const in = "t # 0\nv 0 1\nt # 1\nv 0 2\nt # 2\nv 0 3\n"
	calls := 0
	if err := ReadDBFunc(strings.NewReader(in), nil, func(g *Graph) bool {
		calls++
		return calls < 2
	}); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("calls = %d; want 2 (early stop)", calls)
	}
}

func TestReadDBFuncMatchesReadDB(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	var db []*Graph
	for i := 0; i < 5; i++ {
		g := randomConnectedGraph(r, 2+r.Intn(8), r.Intn(4), 3, 2)
		g.ID = i
		db = append(db, g)
	}
	var sb strings.Builder
	if err := WriteDB(&sb, db, nil); err != nil {
		t.Fatal(err)
	}
	batch, err := ReadDB(strings.NewReader(sb.String()), nil)
	if err != nil {
		t.Fatal(err)
	}
	var streamed []*Graph
	if err := ReadDBFunc(strings.NewReader(sb.String()), nil, func(g *Graph) bool {
		streamed = append(streamed, g)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(streamed) {
		t.Fatalf("batch %d vs streamed %d", len(batch), len(streamed))
	}
	for i := range batch {
		if batch[i].String() != streamed[i].String() {
			t.Fatalf("graph %d differs between readers", i)
		}
	}
}

func TestReadDBFuncErrors(t *testing.T) {
	for _, in := range []string{"v 0 1\n", "t # 0\nx\n", "t # 0\nv 1 1\n"} {
		if err := ReadDBFunc(strings.NewReader(in), nil, func(*Graph) bool { return true }); err == nil {
			t.Errorf("no error for %q", in)
		}
	}
}
