package graph_test

// Differential fuzzing of the CSR graph core against the frozen
// adjacency-list implementation in internal/graph/reference. The fuzzer
// interprets the input bytes as a construction script (add node / add
// edge), replays it against both representations, and requires identical
// observations: adjacency iteration order, degrees, edge labels,
// connectivity, BFS cut windows, and codec + fingerprint round-trips.
// Iteration order is part of the Graph contract — CutGraph node order,
// DFS codes, and therefore the mining answer set all depend on it — so
// the comparisons below check order, not just set equality.

import (
	"bytes"
	"fmt"
	"testing"

	"graphsig/internal/graph"
	"graphsig/internal/graph/reference"
)

const (
	fuzzMaxNodes = 24
	fuzzMaxEdges = 64
)

// buildPair replays the byte script against both representations.
// Scripts are interpreted 3 bytes at a time: opcode, then operands.
func buildPair(data []byte) (*graph.Graph, *reference.Graph) {
	g := graph.New(0, 0)
	r := reference.New(0, 0)
	for i := 0; i+2 < len(data); i += 3 {
		op, a, b := data[i], data[i+1], data[i+2]
		n := g.NumNodes()
		switch {
		case op%3 == 0 && n < fuzzMaxNodes:
			l := graph.Label(a % 7)
			g.AddNode(l)
			r.AddNode(l)
		case n >= 2 && g.NumEdges() < fuzzMaxEdges:
			u, v := int(a)%n, int(b)%n
			if u == v {
				continue
			}
			l := graph.Label(op % 5)
			errG := g.AddEdge(u, v, l)
			errR := r.AddEdge(u, v, l)
			if (errG == nil) != (errR == nil) {
				panic(fmt.Sprintf("AddEdge(%d,%d) disagreement: csr=%v reference=%v", u, v, errG, errR))
			}
		}
	}
	return g, r
}

func fingerprintOne(g *graph.Graph) string {
	return graph.Fingerprint([]*graph.Graph{g})
}

func FuzzCSRRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 0, 0, 2, 0, 1, 0, 1})
	// A small molecule-ish script: several nodes, then a mix of edges.
	f.Add([]byte{
		0, 1, 0, 0, 2, 0, 0, 3, 0, 0, 1, 0, 0, 2, 0,
		1, 0, 1, 1, 1, 2, 4, 2, 3, 1, 3, 4, 2, 0, 4,
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, r := buildPair(data)
		if g.NumNodes() != r.NumNodes() || g.NumEdges() != r.NumEdges() {
			t.Fatalf("size mismatch: %d/%d vs %d/%d", g.NumNodes(), g.NumEdges(), r.NumNodes(), r.NumEdges())
		}

		// Adjacency iteration order, degree, and per-pair edge labels.
		for v := 0; v < g.NumNodes(); v++ {
			if g.NodeLabel(v) != r.NodeLabel(v) {
				t.Fatalf("node %d label %d vs %d", v, g.NodeLabel(v), r.NodeLabel(v))
			}
			if g.Degree(v) != r.Degree(v) {
				t.Fatalf("node %d degree %d vs %d", v, g.Degree(v), r.Degree(v))
			}
			var got, want []int64
			g.Neighbors(v, func(u int, l graph.Label) { got = append(got, int64(u)<<32|int64(uint32(l))) })
			r.Neighbors(v, func(u int, l graph.Label) { want = append(want, int64(u)<<32|int64(uint32(l))) })
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("node %d adjacency order diverges at slot %d", v, i)
				}
			}
			for u := 0; u < g.NumNodes(); u++ {
				if g.EdgeLabel(v, u) != r.EdgeLabel(v, u) {
					t.Fatalf("EdgeLabel(%d,%d): %d vs %d", v, u, g.EdgeLabel(v, u), r.EdgeLabel(v, u))
				}
			}
		}
		if g.IsConnected() != r.IsConnected() {
			t.Fatalf("IsConnected: %v vs %v", g.IsConnected(), r.IsConnected())
		}

		// BFS cut windows share node visit order across representations.
		for center := 0; center < g.NumNodes(); center += 5 {
			for radius := 0; radius <= 2; radius++ {
				a := fingerprintOne(g.CutGraph(center, radius))
				b := fingerprintOne(r.CutGraph(center, radius).ToGraph())
				if a != b {
					t.Fatalf("CutGraph(%d,%d) fingerprint %s vs %s", center, radius, a, b)
				}
			}
		}

		// Codec round-trip preserves the fingerprint, and freezing (CSR
		// build) does not disturb it.
		fp := fingerprintOne(g)
		if got := fingerprintOne(g.Freeze()); got != fp {
			t.Fatalf("Freeze changed fingerprint: %s vs %s", got, fp)
		}
		var buf bytes.Buffer
		if err := graph.WriteDB(&buf, []*graph.Graph{g}, nil); err != nil {
			t.Fatalf("WriteDB: %v", err)
		}
		decoded, err := graph.ReadDB(bytes.NewReader(buf.Bytes()), nil)
		if err != nil {
			t.Fatalf("ReadDB: %v", err)
		}
		if len(decoded) != 1 {
			t.Fatalf("decoded %d graphs, want 1", len(decoded))
		}
		decoded[0].ID = g.ID
		if got := fingerprintOne(decoded[0]); got != fp {
			t.Fatalf("codec round-trip fingerprint %s vs %s", got, fp)
		}
		// Round-trip through the reference representation is also exact.
		if got := fingerprintOne(reference.FromGraph(g).ToGraph()); got != fp {
			t.Fatalf("reference round-trip fingerprint %s vs %s", got, fp)
		}
	})
}
