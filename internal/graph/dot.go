package graph

import (
	"fmt"
	"io"
)

// WriteDOT renders g in GraphViz DOT format for visualization of mined
// patterns. Node labels are resolved through alpha when non-nil;
// edgeName, when non-nil, maps edge labels to display strings (e.g. bond
// glyphs). The output is deterministic.
func WriteDOT(w io.Writer, g *Graph, name string, alpha *Alphabet, edgeName func(Label) string) error {
	if name == "" {
		name = "g"
	}
	if _, err := fmt.Fprintf(w, "graph %q {\n", name); err != nil {
		return err
	}
	for v := 0; v < g.NumNodes(); v++ {
		label := fmt.Sprintf("%d", int(g.NodeLabel(v)))
		if alpha != nil {
			label = alpha.Name(g.NodeLabel(v))
		}
		if _, err := fmt.Fprintf(w, "  n%d [label=%q];\n", v, label); err != nil {
			return err
		}
	}
	for _, e := range g.Edges() {
		label := fmt.Sprintf("%d", int(e.Label))
		if edgeName != nil {
			label = edgeName(e.Label)
		}
		if _, err := fmt.Fprintf(w, "  n%d -- n%d [label=%q];\n", e.From, e.To, label); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
