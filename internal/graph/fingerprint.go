package graph

import (
	"crypto/sha256"
	"encoding"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
)

// Fingerprinter folds graphs into a stable content hash of a database,
// one graph at a time. Two sequences of structurally identical graphs
// added in the same order hash equal; any change to a label, an edge,
// an ordering, or the count changes the hash. Unlike a one-shot hash,
// the fold's mid-state is persistable (MarshalState), so an on-disk
// store can extend its database fingerprint on append without
// re-scanning every graph already written.
//
// Node identity matters: the fingerprint detects byte-level database
// changes, it does not canonicalize isomorphic relabelings (two
// isomorphic but differently-numbered databases hash differently,
// which is the safe direction for a cache key).
type Fingerprinter struct {
	h hash.Hash
	n int64
}

// NewFingerprinter returns an empty fold.
func NewFingerprinter() *Fingerprinter {
	return &Fingerprinter{h: sha256.New()}
}

// Add folds one graph: its node count, every node label in node order,
// its edge count, and every edge as (u, v, label) in the graph's own
// edge order. A nil graph folds as a distinct marker.
func (f *Fingerprinter) Add(g *Graph) {
	var buf [8]byte
	writeInt := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		f.h.Write(buf[:])
	}
	fingerprintGraph(writeInt, g)
	f.n++
}

// Count returns how many graphs have been added.
func (f *Fingerprinter) Count() int64 { return f.n }

// Sum returns the fingerprint of the graphs added so far, without
// consuming the fold: the graph count is appended as a trailer to a
// copy of the digest state, so Add can continue afterwards. The
// per-graph encoding is self-delimiting, which keeps the trailing
// count unambiguous.
func (f *Fingerprinter) Sum() string {
	state, err := f.h.(encoding.BinaryMarshaler).MarshalBinary()
	if err != nil {
		// The stdlib sha256 marshaler cannot fail; guard anyway.
		panic(fmt.Sprintf("graph: fingerprint state marshal: %v", err))
	}
	h := sha256.New()
	if err := h.(encoding.BinaryUnmarshaler).UnmarshalBinary(state); err != nil {
		panic(fmt.Sprintf("graph: fingerprint state unmarshal: %v", err))
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(f.n))
	h.Write(buf[:])
	return hex.EncodeToString(h.Sum(nil))
}

// MarshalState serializes the fold's mid-state — the digest internals
// plus the graph count — so a later process can resume the fold with
// UnmarshalFingerprinter.
func (f *Fingerprinter) MarshalState() ([]byte, error) {
	state, err := f.h.(encoding.BinaryMarshaler).MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("graph: fingerprint state marshal: %w", err)
	}
	out := make([]byte, 8, 8+len(state))
	binary.LittleEndian.PutUint64(out, uint64(f.n))
	return append(out, state...), nil
}

// UnmarshalFingerprinter resumes a fold from MarshalState output.
func UnmarshalFingerprinter(data []byte) (*Fingerprinter, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("graph: fingerprint state too short (%d bytes)", len(data))
	}
	f := NewFingerprinter()
	f.n = int64(binary.LittleEndian.Uint64(data))
	if err := f.h.(encoding.BinaryUnmarshaler).UnmarshalBinary(data[8:]); err != nil {
		return nil, fmt.Errorf("graph: fingerprint state unmarshal: %w", err)
	}
	return f, nil
}

// Fingerprint returns a stable content hash of a graph database: the
// one-shot form of Fingerprinter. Job result caches and the on-disk
// store use it to scope cached mines to the exact database they were
// mined from.
func Fingerprint(db []*Graph) string {
	f := NewFingerprinter()
	for _, g := range db {
		f.Add(g)
	}
	return f.Sum()
}

func fingerprintGraph(writeInt func(int64), g *Graph) {
	if g == nil {
		writeInt(-1)
		return
	}
	writeInt(int64(g.NumNodes()))
	for _, l := range g.Labels() {
		writeInt(int64(l))
	}
	writeInt(int64(g.NumEdges()))
	for _, e := range g.Edges() {
		writeInt(int64(e.From))
		writeInt(int64(e.To))
		writeInt(int64(e.Label))
	}
}
