package graph

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// Fingerprint returns a stable content hash of a graph database: two
// slices holding structurally identical graphs in the same order hash
// equal, any change to a label, edge, or ordering changes the hash.
// Job result caches use it to scope cached mines to the exact database
// they were mined from.
//
// The hash folds in, per graph, the node count, every node label in
// node order, the edge count, and every edge as (u, v, label) in the
// graph's own edge order. Node identity matters: Fingerprint detects
// byte-level database changes, it does not canonicalize isomorphic
// relabelings (two isomorphic but differently-numbered databases hash
// differently, which is the safe direction for a cache key).
func Fingerprint(db []*Graph) string {
	h := sha256.New()
	var buf [8]byte
	writeInt := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	writeInt(int64(len(db)))
	for _, g := range db {
		fingerprintGraph(writeInt, g)
	}
	return hex.EncodeToString(h.Sum(nil))
}

func fingerprintGraph(writeInt func(int64), g *Graph) {
	if g == nil {
		writeInt(-1)
		return
	}
	writeInt(int64(g.NumNodes()))
	for _, l := range g.Labels() {
		writeInt(int64(l))
	}
	writeInt(int64(g.NumEdges()))
	for _, e := range g.Edges() {
		writeInt(int64(e.From))
		writeInt(int64(e.To))
		writeInt(int64(e.Label))
	}
}
