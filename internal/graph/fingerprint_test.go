package graph

import "testing"

func fpChain(labels []Label, edgeLabel Label) *Graph {
	g := New(len(labels), len(labels)-1)
	for _, l := range labels {
		g.AddNode(l)
	}
	for i := 0; i+1 < len(labels); i++ {
		g.MustAddEdge(i, i+1, edgeLabel)
	}
	return g
}

func TestFingerprintStable(t *testing.T) {
	a := []*Graph{fpChain([]Label{0, 1, 2}, 0), fpChain([]Label{3, 3}, 1)}
	b := []*Graph{fpChain([]Label{0, 1, 2}, 0), fpChain([]Label{3, 3}, 1)}
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatal("structurally identical databases hash differently")
	}
	if Fingerprint(a) != Fingerprint(a) {
		t.Fatal("fingerprint not deterministic")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := Fingerprint([]*Graph{fpChain([]Label{0, 1, 2}, 0)})
	cases := map[string][]*Graph{
		"node label changed": {fpChain([]Label{0, 1, 3}, 0)},
		"edge label changed": {fpChain([]Label{0, 1, 2}, 1)},
		"node added":         {fpChain([]Label{0, 1, 2, 2}, 0)},
		"graph added":        {fpChain([]Label{0, 1, 2}, 0), fpChain([]Label{0}, 0)},
		"empty database":     {},
	}
	seen := map[string]string{base: "base"}
	for name, db := range cases {
		fp := Fingerprint(db)
		if prev, dup := seen[fp]; dup {
			t.Errorf("%s collides with %s", name, prev)
		}
		seen[fp] = name
	}
}

// TestFingerprintOrderMatters: the fingerprint is positional — graph
// ids are part of a database's identity (query results name them).
func TestFingerprintOrderMatters(t *testing.T) {
	g1 := fpChain([]Label{0, 1}, 0)
	g2 := fpChain([]Label{2, 3}, 0)
	if Fingerprint([]*Graph{g1, g2}) == Fingerprint([]*Graph{g2, g1}) {
		t.Error("reordered database hashes equal")
	}
}

func TestFingerprintNilGraph(t *testing.T) {
	// Must not panic, and must differ from an empty graph.
	withNil := Fingerprint([]*Graph{nil})
	withEmpty := Fingerprint([]*Graph{New(0, 0)})
	if withNil == withEmpty {
		t.Error("nil graph indistinguishable from empty graph")
	}
}

// TestFingerprinterMatchesOneShot: folding graph by graph equals the
// one-shot database fingerprint, and Sum is a non-consuming read.
func TestFingerprinterMatchesOneShot(t *testing.T) {
	db := []*Graph{fpChain([]Label{0, 1, 2}, 0), nil, fpChain([]Label{3, 3}, 1)}
	f := NewFingerprinter()
	for i, g := range db {
		f.Add(g)
		if got, want := f.Sum(), Fingerprint(db[:i+1]); got != want {
			t.Fatalf("prefix %d: fold %s != one-shot %s", i+1, got, want)
		}
	}
	if f.Count() != int64(len(db)) {
		t.Fatalf("Count = %d, want %d", f.Count(), len(db))
	}
}

// TestFingerprinterResume: a fold persisted mid-way and resumed in a
// "new process" continues to the same hash — the property the store's
// incremental append relies on.
func TestFingerprinterResume(t *testing.T) {
	db := []*Graph{
		fpChain([]Label{0, 1}, 0),
		fpChain([]Label{2, 2, 2}, 1),
		fpChain([]Label{4}, 0),
	}
	f := NewFingerprinter()
	f.Add(db[0])
	f.Add(db[1])
	state, err := f.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	g, err := UnmarshalFingerprinter(state)
	if err != nil {
		t.Fatal(err)
	}
	if g.Count() != 2 {
		t.Fatalf("resumed Count = %d, want 2", g.Count())
	}
	g.Add(db[2])
	if got, want := g.Sum(), Fingerprint(db); got != want {
		t.Fatalf("resumed fold %s != one-shot %s", got, want)
	}
	if _, err := UnmarshalFingerprinter([]byte("short")); err == nil {
		t.Fatal("truncated state accepted")
	}
	if _, err := UnmarshalFingerprinter(make([]byte, 32)); err == nil {
		t.Fatal("garbage digest state accepted")
	}
}
