package graph

import "testing"

func fpChain(labels []Label, edgeLabel Label) *Graph {
	g := New(len(labels), len(labels)-1)
	for _, l := range labels {
		g.AddNode(l)
	}
	for i := 0; i+1 < len(labels); i++ {
		g.MustAddEdge(i, i+1, edgeLabel)
	}
	return g
}

func TestFingerprintStable(t *testing.T) {
	a := []*Graph{fpChain([]Label{0, 1, 2}, 0), fpChain([]Label{3, 3}, 1)}
	b := []*Graph{fpChain([]Label{0, 1, 2}, 0), fpChain([]Label{3, 3}, 1)}
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatal("structurally identical databases hash differently")
	}
	if Fingerprint(a) != Fingerprint(a) {
		t.Fatal("fingerprint not deterministic")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := Fingerprint([]*Graph{fpChain([]Label{0, 1, 2}, 0)})
	cases := map[string][]*Graph{
		"node label changed": {fpChain([]Label{0, 1, 3}, 0)},
		"edge label changed": {fpChain([]Label{0, 1, 2}, 1)},
		"node added":         {fpChain([]Label{0, 1, 2, 2}, 0)},
		"graph added":        {fpChain([]Label{0, 1, 2}, 0), fpChain([]Label{0}, 0)},
		"empty database":     {},
	}
	seen := map[string]string{base: "base"}
	for name, db := range cases {
		fp := Fingerprint(db)
		if prev, dup := seen[fp]; dup {
			t.Errorf("%s collides with %s", name, prev)
		}
		seen[fp] = name
	}
}

// TestFingerprintOrderMatters: the fingerprint is positional — graph
// ids are part of a database's identity (query results name them).
func TestFingerprintOrderMatters(t *testing.T) {
	g1 := fpChain([]Label{0, 1}, 0)
	g2 := fpChain([]Label{2, 3}, 0)
	if Fingerprint([]*Graph{g1, g2}) == Fingerprint([]*Graph{g2, g1}) {
		t.Error("reordered database hashes equal")
	}
}

func TestFingerprintNilGraph(t *testing.T) {
	// Must not panic, and must differ from an empty graph.
	withNil := Fingerprint([]*Graph{nil})
	withEmpty := Fingerprint([]*Graph{New(0, 0)})
	if withNil == withEmpty {
		t.Error("nil graph indistinguishable from empty graph")
	}
}
