package graph

import (
	"strings"
	"testing"
)

// FuzzReadDB feeds arbitrary text to the codec: it must never panic, and
// anything it accepts must survive a write/read round trip.
func FuzzReadDB(f *testing.F) {
	f.Add("t # 0\nv 0 C\nv 1 O\ne 0 1 -\n")
	f.Add("t # 0\nv 0 1\n")
	f.Add("")
	f.Add("% comment only\n")
	f.Add("t # 0\nv 0 C\ne 0 0 -\n")
	f.Add("t # 5\nv 0 A\nv 1 B\nv 2 C\ne 0 1 x\ne 1 2 y\ne 0 2 z\n")
	f.Add("garbage\nlines\n")
	f.Fuzz(func(t *testing.T, input string) {
		alpha := NewAlphabet()
		graphs, err := ReadDB(strings.NewReader(input), alpha)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		// Accepted input must round-trip.
		var sb strings.Builder
		if err := WriteDB(&sb, graphs, alpha); err != nil {
			t.Fatalf("write after successful read: %v", err)
		}
		back, err := ReadDB(strings.NewReader(sb.String()), alpha)
		if err != nil {
			t.Fatalf("re-read of own output: %v", err)
		}
		if len(back) != len(graphs) {
			t.Fatalf("round trip changed graph count: %d -> %d", len(graphs), len(back))
		}
		for i := range graphs {
			if back[i].NumNodes() != graphs[i].NumNodes() || back[i].NumEdges() != graphs[i].NumEdges() {
				t.Fatalf("round trip changed graph %d shape", i)
			}
		}
	})
}
