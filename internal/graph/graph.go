// Package graph provides the labeled undirected graph type that the whole
// repository is built on: molecules in the chemistry substrate, patterns in
// the miners, and windows cut around nodes by GraphSig.
//
// Graphs are node- and edge-labeled, undirected, and simple (at most one
// edge between a pair of nodes). Node identifiers are dense ints in
// [0, NumNodes). The zero Graph is empty and ready to use.
//
// Internally a graph has two representations. Construction maintains a
// compact half-edge list (per-node singly linked chains through one flat
// array) that makes AddEdge O(degree). Reads go through a frozen
// compressed-sparse-row (CSR) view — flat rowStart/neighbor/edge-label
// arrays — built lazily on first read after a mutation and shared by all
// subsequent readers. The CSR preserves the historical adjacency
// iteration contract exactly: the neighbors of v appear in the order the
// edges incident to v were added. Mining output (CutGraph BFS order, DFS
// codes, window contents) depends on that order, so it is part of the
// representation's correctness contract, enforced by the differential
// tests against internal/graph/reference.
package graph

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// Label identifies a node label (e.g. an atom type) or an edge label
// (e.g. a bond type). Labels are small dense ints managed by an Alphabet.
type Label int

// NoLabel marks an absent label.
const NoLabel Label = -1

// Edge is an undirected labeled edge between nodes From and To.
// Invariant maintained by AddEdge: From < To.
type Edge struct {
	From, To int
	Label    Label
}

// halfRec is one construction-side adjacency entry: the neighbor, the
// edge label, and the index of the node's next half-edge in the shared
// halves array (-1 ends the chain). Chains are push-front: they exist
// only so AddEdge's duplicate check and pre-freeze EdgeLabel lookups
// stay O(degree); ordered iteration always goes through the CSR.
type halfRec struct {
	to    int32
	next  int32
	label Label
}

// Graph is a labeled undirected simple graph. Create with New or the zero
// value; mutate with AddNode/AddEdge.
//
// A Graph is safe for concurrent readers once construction is done;
// mutating concurrently with any other access is not supported. Freeze
// may be called after construction to build the CSR eagerly so that
// concurrent first readers never contend on the lazy build.
type Graph struct {
	// ID is an optional database identifier (index of the graph in its
	// dataset). It is carried through mining so that supports can be
	// reported as graph ID sets.
	ID int

	labels []Label
	edges  []Edge
	deg    []int32
	head   []int32
	halves []halfRec

	// csr holds the frozen read view; nil until the first read after a
	// mutation. Stored through an atomic so concurrent readers can
	// publish/observe the built view without locks: losing a benign
	// build race just stores an identical view twice.
	csr atomic.Pointer[csr]
}

// csr is the frozen compressed-sparse-row adjacency: the half-edges of
// node v occupy rows [rowStart[v], rowStart[v+1]) of the packed arrays,
// in edge-insertion order. eid holds the index into the edge list of
// the edge realizing each half, so miners can map a traversed half back
// to its undirected edge without a hash lookup.
type csr struct {
	rowStart []int32
	nbr      []int32
	lab      []Label
	eid      []int32
}

// CSRView is the exported read-only window onto a graph's frozen CSR
// arrays plus its node labels. All slices are owned by the graph and
// must not be mutated. The half-edges of node v are
// Nbr[RowStart[v]:RowStart[v+1]] with parallel EdgeLabels and EdgeIDs
// (indices into Edges()).
type CSRView struct {
	NodeLabels []Label
	RowStart   []int32
	Nbr        []int32
	EdgeLabels []Label
	EdgeIDs    []int32
}

// Row returns node v's packed neighbor and edge-label rows.
func (c CSRView) Row(v int) ([]int32, []Label) {
	lo, hi := c.RowStart[v], c.RowStart[v+1]
	return c.Nbr[lo:hi], c.EdgeLabels[lo:hi]
}

// Degree returns the degree of node v in the view.
func (c CSRView) Degree(v int) int {
	return int(c.RowStart[v+1] - c.RowStart[v])
}

// NumNodes returns the node count of the view.
func (c CSRView) NumNodes() int { return len(c.NodeLabels) }

// New returns an empty graph with capacity hints for n nodes and m edges.
func New(n, m int) *Graph {
	return &Graph{
		labels: make([]Label, 0, n),
		edges:  make([]Edge, 0, m),
		deg:    make([]int32, 0, n),
		head:   make([]int32, 0, n),
		halves: make([]halfRec, 0, 2*m),
	}
}

// Clone returns a deep copy of g. The frozen CSR, when present, is
// shared: it is immutable, and a later mutation of the clone replaces
// only the clone's own view.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		ID:     g.ID,
		labels: append([]Label(nil), g.labels...),
		edges:  append([]Edge(nil), g.edges...),
		deg:    append([]int32(nil), g.deg...),
		head:   append([]int32(nil), g.head...),
		halves: append([]halfRec(nil), g.halves...),
	}
	c.csr.Store(g.csr.Load())
	return c
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.labels) }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// AddNode appends a node with the given label and returns its id.
func (g *Graph) AddNode(l Label) int {
	g.labels = append(g.labels, l)
	g.deg = append(g.deg, 0)
	g.head = append(g.head, -1)
	g.csr.Store(nil)
	return len(g.labels) - 1
}

// NodeLabel returns the label of node v.
func (g *Graph) NodeLabel(v int) Label { return g.labels[v] }

// AddEdge inserts an undirected edge (u, v) with label l. It panics if u
// or v is out of range or u == v, and reports an error if the edge already
// exists (graphs are simple).
func (g *Graph) AddEdge(u, v int, l Label) error {
	if u == v {
		panic("graph: self loop")
	}
	if u < 0 || u >= len(g.labels) || v < 0 || v >= len(g.labels) {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, len(g.labels)))
	}
	if g.scanHalf(u, v) != nil {
		return fmt.Errorf("graph: duplicate edge (%d,%d)", u, v)
	}
	if u > v {
		u, v = v, u
	}
	g.halves = append(g.halves, halfRec{to: int32(v), next: g.head[u], label: l})
	g.head[u] = int32(len(g.halves) - 1)
	g.halves = append(g.halves, halfRec{to: int32(u), next: g.head[v], label: l})
	g.head[v] = int32(len(g.halves) - 1)
	g.deg[u]++
	g.deg[v]++
	g.edges = append(g.edges, Edge{From: u, To: v, Label: l})
	g.csr.Store(nil)
	return nil
}

// MustAddEdge is AddEdge that panics on duplicates; used by construction
// code where duplicates indicate a programming error.
func (g *Graph) MustAddEdge(u, v int, l Label) {
	if err := g.AddEdge(u, v, l); err != nil {
		panic(err)
	}
}

// scanHalf walks u's half-edge chain for the entry to v, or nil.
func (g *Graph) scanHalf(u, v int) *halfRec {
	for i := g.head[u]; i >= 0; i = g.halves[i].next {
		if int(g.halves[i].to) == v {
			return &g.halves[i]
		}
	}
	return nil
}

// HasEdge reports whether an edge between u and v exists.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= len(g.labels) {
		return false
	}
	return g.scanHalf(u, v) != nil
}

// EdgeLabel returns the label of edge (u, v), or NoLabel if absent.
func (g *Graph) EdgeLabel(u, v int) Label {
	if u < 0 || u >= len(g.labels) {
		return NoLabel
	}
	if h := g.scanHalf(u, v); h != nil {
		return h.label
	}
	return NoLabel
}

// Degree returns the degree of node v.
func (g *Graph) Degree(v int) int { return int(g.deg[v]) }

// CSR returns the graph's frozen compressed-sparse-row view, building
// it on first use after a mutation. The view's slices are immutable and
// safe to share across goroutines; hot loops should grab the view once
// and index the flat arrays directly instead of going through the
// callback accessors.
func (g *Graph) CSR() CSRView {
	c := g.freeze()
	return CSRView{
		NodeLabels: g.labels,
		RowStart:   c.rowStart,
		Nbr:        c.nbr,
		EdgeLabels: c.lab,
		EdgeIDs:    c.eid,
	}
}

// Freeze builds the CSR view eagerly (a no-op when already frozen) and
// returns g. Decoders and generators call it after construction so
// concurrent first readers of a shared graph never race on the lazy
// build; correctness does not depend on it — a benign double build
// publishes identical views.
func (g *Graph) Freeze() *Graph {
	g.freeze()
	return g
}

func (g *Graph) freeze() *csr {
	if c := g.csr.Load(); c != nil {
		return c
	}
	c := g.buildCSR()
	g.csr.Store(c)
	return c
}

// buildCSR packs the adjacency into flat rows via one counting pass.
// Replaying the edge list in insertion order and appending each half to
// its endpoint's cursor reproduces the historical per-node adjacency
// order exactly: the old slice-of-slices representation appended both
// halves of an edge at AddEdge time, so per-node order was also
// edge-insertion order.
func (g *Graph) buildCSR() *csr {
	n := len(g.labels)
	m := len(g.edges)
	c := &csr{
		rowStart: make([]int32, n+1),
		nbr:      make([]int32, 2*m),
		lab:      make([]Label, 2*m),
		eid:      make([]int32, 2*m),
	}
	for v := 0; v < n; v++ {
		c.rowStart[v+1] = c.rowStart[v] + g.deg[v]
	}
	cursor := make([]int32, n)
	copy(cursor, c.rowStart[:n])
	for i, e := range g.edges {
		pu, pv := cursor[e.From], cursor[e.To]
		c.nbr[pu], c.lab[pu], c.eid[pu] = int32(e.To), e.Label, int32(i)
		cursor[e.From] = pu + 1
		c.nbr[pv], c.lab[pv], c.eid[pv] = int32(e.From), e.Label, int32(i)
		cursor[e.To] = pv + 1
	}
	return c
}

// Neighbors calls fn for each neighbor of v with the neighbor id and the
// connecting edge label. Iteration order is insertion order.
func (g *Graph) Neighbors(v int, fn func(u int, l Label)) {
	c := g.freeze()
	lo, hi := c.rowStart[v], c.rowStart[v+1]
	for i := lo; i < hi; i++ {
		fn(int(c.nbr[i]), c.lab[i])
	}
}

// NeighborIDs returns the neighbor ids of v in insertion order.
func (g *Graph) NeighborIDs(v int) []int {
	c := g.freeze()
	lo, hi := c.rowStart[v], c.rowStart[v+1]
	out := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, int(c.nbr[i]))
	}
	return out
}

// Edges returns the edge list. The caller must not mutate it.
func (g *Graph) Edges() []Edge { return g.edges }

// Labels returns the node label slice. The caller must not mutate it.
func (g *Graph) Labels() []Label { return g.labels }

// IsConnected reports whether g is connected (the empty graph counts as
// connected).
func (g *Graph) IsConnected() bool {
	n := g.NumNodes()
	if n <= 1 {
		return true
	}
	c := g.freeze()
	seen := make([]bool, n)
	stack := []int32{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for i := c.rowStart[v]; i < c.rowStart[v+1]; i++ {
			u := c.nbr[i]
			if !seen[u] {
				seen[u] = true
				count++
				stack = append(stack, u)
			}
		}
	}
	return count == n
}

// InducedSubgraph returns the subgraph induced by the given node ids, in
// the given order (node i of the result corresponds to nodes[i]). Edges
// between selected nodes are preserved. The result's ID is copied from g.
func (g *Graph) InducedSubgraph(nodes []int) *Graph {
	index := make(map[int]int, len(nodes))
	sub := New(len(nodes), 0)
	sub.ID = g.ID
	for i, v := range nodes {
		index[v] = i
		sub.AddNode(g.labels[v])
	}
	for _, e := range g.edges {
		fi, okF := index[e.From]
		ti, okT := index[e.To]
		if okF && okT {
			sub.MustAddEdge(fi, ti, e.Label)
		}
	}
	return sub
}

// CutGraph returns the ball of the given radius (in hops) around center,
// as an induced subgraph. Node 0 of the result is the center. This is the
// CutGraph(n, radius) primitive of Algorithm 2, line 12.
func (g *Graph) CutGraph(center, radius int) *Graph {
	c := g.freeze()
	seen := make([]bool, len(g.labels))
	seen[center] = true
	order := []int{center}
	// order doubles as the BFS queue; depth tracks hop counts via the
	// frontier boundary, preserving the historical visit order.
	type frontier struct{ end, depth int }
	fr := frontier{end: 1, depth: 0}
	for qi := 0; qi < len(order); qi++ {
		if qi == fr.end {
			fr = frontier{end: len(order), depth: fr.depth + 1}
		}
		if fr.depth == radius {
			continue
		}
		v := order[qi]
		for i := c.rowStart[v]; i < c.rowStart[v+1]; i++ {
			u := int(c.nbr[i])
			if !seen[u] {
				seen[u] = true
				order = append(order, u)
			}
		}
	}
	return g.InducedSubgraph(order).Freeze()
}

// Relabel returns a copy of g with nodes permuted by perm: node v of g
// becomes node perm[v] of the result. perm must be a permutation of
// [0, NumNodes). Useful for isomorphism-invariance tests.
func (g *Graph) Relabel(perm []int) *Graph {
	if len(perm) != g.NumNodes() {
		panic("graph: bad permutation length")
	}
	out := New(g.NumNodes(), g.NumEdges())
	out.ID = g.ID
	newLabels := make([]Label, g.NumNodes())
	for v, p := range perm {
		newLabels[p] = g.labels[v]
	}
	for _, l := range newLabels {
		out.AddNode(l)
	}
	for _, e := range g.edges {
		out.MustAddEdge(perm[e.From], perm[e.To], e.Label)
	}
	return out
}

// LabelCounts returns a map from node label to its count in g.
func (g *Graph) LabelCounts() map[Label]int {
	m := make(map[Label]int)
	for _, l := range g.labels {
		m[l]++
	}
	return m
}

// String renders a compact human-readable form, stable across runs.
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph(id=%d, n=%d, m=%d; ", g.ID, g.NumNodes(), g.NumEdges())
	for v, l := range g.labels {
		if v > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "v%d:%d", v, l)
	}
	b.WriteString("; ")
	edges := append([]Edge(nil), g.edges...)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	for i, e := range edges {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d-%d:%d", e.From, e.To, e.Label)
	}
	b.WriteByte(')')
	return b.String()
}
