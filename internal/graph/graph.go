// Package graph provides the labeled undirected graph type that the whole
// repository is built on: molecules in the chemistry substrate, patterns in
// the miners, and windows cut around nodes by GraphSig.
//
// Graphs are node- and edge-labeled, undirected, and simple (at most one
// edge between a pair of nodes). Node identifiers are dense ints in
// [0, NumNodes). The zero Graph is empty and ready to use.
package graph

import (
	"fmt"
	"sort"
	"strings"
)

// Label identifies a node label (e.g. an atom type) or an edge label
// (e.g. a bond type). Labels are small dense ints managed by an Alphabet.
type Label int

// NoLabel marks an absent label.
const NoLabel Label = -1

// Edge is an undirected labeled edge between nodes From and To.
// Invariant maintained by AddEdge: From < To.
type Edge struct {
	From, To int
	Label    Label
}

// halfEdge is an adjacency entry: the neighbor and the edge label.
type halfEdge struct {
	to    int
	label Label
}

// Graph is a labeled undirected simple graph. Create with New or the zero
// value; mutate with AddNode/AddEdge.
type Graph struct {
	// ID is an optional database identifier (index of the graph in its
	// dataset). It is carried through mining so that supports can be
	// reported as graph ID sets.
	ID int

	labels []Label
	adj    [][]halfEdge
	edges  []Edge
}

// New returns an empty graph with capacity hints for n nodes and m edges.
func New(n, m int) *Graph {
	return &Graph{
		labels: make([]Label, 0, n),
		adj:    make([][]halfEdge, 0, n),
		edges:  make([]Edge, 0, m),
	}
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		ID:     g.ID,
		labels: append([]Label(nil), g.labels...),
		adj:    make([][]halfEdge, len(g.adj)),
		edges:  append([]Edge(nil), g.edges...),
	}
	for i, a := range g.adj {
		c.adj[i] = append([]halfEdge(nil), a...)
	}
	return c
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.labels) }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// AddNode appends a node with the given label and returns its id.
func (g *Graph) AddNode(l Label) int {
	g.labels = append(g.labels, l)
	g.adj = append(g.adj, nil)
	return len(g.labels) - 1
}

// NodeLabel returns the label of node v.
func (g *Graph) NodeLabel(v int) Label { return g.labels[v] }

// AddEdge inserts an undirected edge (u, v) with label l. It panics if u
// or v is out of range or u == v, and reports an error if the edge already
// exists (graphs are simple).
func (g *Graph) AddEdge(u, v int, l Label) error {
	if u == v {
		panic("graph: self loop")
	}
	if u < 0 || u >= len(g.labels) || v < 0 || v >= len(g.labels) {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, len(g.labels)))
	}
	if g.HasEdge(u, v) {
		return fmt.Errorf("graph: duplicate edge (%d,%d)", u, v)
	}
	if u > v {
		u, v = v, u
	}
	g.adj[u] = append(g.adj[u], halfEdge{to: v, label: l})
	g.adj[v] = append(g.adj[v], halfEdge{to: u, label: l})
	g.edges = append(g.edges, Edge{From: u, To: v, Label: l})
	return nil
}

// MustAddEdge is AddEdge that panics on duplicates; used by construction
// code where duplicates indicate a programming error.
func (g *Graph) MustAddEdge(u, v int, l Label) {
	if err := g.AddEdge(u, v, l); err != nil {
		panic(err)
	}
}

// HasEdge reports whether an edge between u and v exists.
func (g *Graph) HasEdge(u, v int) bool {
	return g.EdgeLabel(u, v) != NoLabel || g.hasEdgeNoLabel(u, v)
}

func (g *Graph) hasEdgeNoLabel(u, v int) bool {
	for _, h := range g.adj[u] {
		if h.to == v {
			return true
		}
	}
	return false
}

// EdgeLabel returns the label of edge (u, v), or NoLabel if absent.
func (g *Graph) EdgeLabel(u, v int) Label {
	if u < 0 || u >= len(g.adj) {
		return NoLabel
	}
	for _, h := range g.adj[u] {
		if h.to == v {
			return h.label
		}
	}
	return NoLabel
}

// Degree returns the degree of node v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Neighbors calls fn for each neighbor of v with the neighbor id and the
// connecting edge label. Iteration order is insertion order.
func (g *Graph) Neighbors(v int, fn func(u int, l Label)) {
	for _, h := range g.adj[v] {
		fn(h.to, h.label)
	}
}

// NeighborIDs returns the neighbor ids of v in insertion order.
func (g *Graph) NeighborIDs(v int) []int {
	out := make([]int, len(g.adj[v]))
	for i, h := range g.adj[v] {
		out[i] = h.to
	}
	return out
}

// Edges returns the edge list. The caller must not mutate it.
func (g *Graph) Edges() []Edge { return g.edges }

// Labels returns the node label slice. The caller must not mutate it.
func (g *Graph) Labels() []Label { return g.labels }

// IsConnected reports whether g is connected (the empty graph counts as
// connected).
func (g *Graph) IsConnected() bool {
	n := g.NumNodes()
	if n <= 1 {
		return true
	}
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, h := range g.adj[v] {
			if !seen[h.to] {
				seen[h.to] = true
				count++
				stack = append(stack, h.to)
			}
		}
	}
	return count == n
}

// InducedSubgraph returns the subgraph induced by the given node ids, in
// the given order (node i of the result corresponds to nodes[i]). Edges
// between selected nodes are preserved. The result's ID is copied from g.
func (g *Graph) InducedSubgraph(nodes []int) *Graph {
	index := make(map[int]int, len(nodes))
	sub := New(len(nodes), 0)
	sub.ID = g.ID
	for i, v := range nodes {
		index[v] = i
		sub.AddNode(g.labels[v])
	}
	for _, e := range g.edges {
		fi, okF := index[e.From]
		ti, okT := index[e.To]
		if okF && okT {
			sub.MustAddEdge(fi, ti, e.Label)
		}
	}
	return sub
}

// CutGraph returns the ball of the given radius (in hops) around center,
// as an induced subgraph. Node 0 of the result is the center. This is the
// CutGraph(n, radius) primitive of Algorithm 2, line 12.
func (g *Graph) CutGraph(center, radius int) *Graph {
	type qe struct{ v, d int }
	seen := map[int]bool{center: true}
	order := []int{center}
	queue := []qe{{center, 0}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.d == radius {
			continue
		}
		for _, h := range g.adj[cur.v] {
			if !seen[h.to] {
				seen[h.to] = true
				order = append(order, h.to)
				queue = append(queue, qe{h.to, cur.d + 1})
			}
		}
	}
	return g.InducedSubgraph(order)
}

// Relabel returns a copy of g with nodes permuted by perm: node v of g
// becomes node perm[v] of the result. perm must be a permutation of
// [0, NumNodes). Useful for isomorphism-invariance tests.
func (g *Graph) Relabel(perm []int) *Graph {
	if len(perm) != g.NumNodes() {
		panic("graph: bad permutation length")
	}
	out := New(g.NumNodes(), g.NumEdges())
	out.ID = g.ID
	newLabels := make([]Label, g.NumNodes())
	for v, p := range perm {
		newLabels[p] = g.labels[v]
	}
	for _, l := range newLabels {
		out.AddNode(l)
	}
	for _, e := range g.edges {
		out.MustAddEdge(perm[e.From], perm[e.To], e.Label)
	}
	return out
}

// LabelCounts returns a map from node label to its count in g.
func (g *Graph) LabelCounts() map[Label]int {
	m := make(map[Label]int)
	for _, l := range g.labels {
		m[l]++
	}
	return m
}

// String renders a compact human-readable form, stable across runs.
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph(id=%d, n=%d, m=%d; ", g.ID, g.NumNodes(), g.NumEdges())
	for v, l := range g.labels {
		if v > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "v%d:%d", v, l)
	}
	b.WriteString("; ")
	edges := append([]Edge(nil), g.edges...)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	for i, e := range edges {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d-%d:%d", e.From, e.To, e.Label)
	}
	b.WriteByte(')')
	return b.String()
}
