package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// path returns a labeled path graph a-b-c-... with edge label 0.
func path(labels ...Label) *Graph {
	g := New(len(labels), len(labels)-1)
	for _, l := range labels {
		g.AddNode(l)
	}
	for i := 1; i < len(labels); i++ {
		g.MustAddEdge(i-1, i, 0)
	}
	return g
}

func TestAddNodeAndEdge(t *testing.T) {
	g := New(0, 0)
	a := g.AddNode(1)
	b := g.AddNode(2)
	c := g.AddNode(1)
	if a != 0 || b != 1 || c != 2 {
		t.Fatalf("node ids = %d,%d,%d; want 0,1,2", a, b, c)
	}
	g.MustAddEdge(a, b, 7)
	g.MustAddEdge(c, b, 8)
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("n=%d m=%d; want 3,2", g.NumNodes(), g.NumEdges())
	}
	if got := g.EdgeLabel(b, a); got != 7 {
		t.Errorf("EdgeLabel(b,a) = %d; want 7 (undirected)", got)
	}
	if got := g.EdgeLabel(a, c); got != NoLabel {
		t.Errorf("EdgeLabel(a,c) = %d; want NoLabel", got)
	}
	if g.Degree(b) != 2 || g.Degree(a) != 1 {
		t.Errorf("degrees = %d,%d; want 2,1", g.Degree(b), g.Degree(a))
	}
}

func TestAddEdgeRejectsDuplicate(t *testing.T) {
	g := path(1, 2)
	if err := g.AddEdge(1, 0, 5); err == nil {
		t.Fatal("duplicate edge accepted")
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d after rejected duplicate; want 1", g.NumEdges())
	}
}

func TestAddEdgeNormalizesEndpoints(t *testing.T) {
	g := path(1, 2)
	g2 := New(2, 1)
	g2.AddNode(1)
	g2.AddNode(2)
	g2.MustAddEdge(1, 0, 0)
	e := g2.Edges()[0]
	if e.From != 0 || e.To != 1 {
		t.Errorf("edge stored as (%d,%d); want normalized (0,1)", e.From, e.To)
	}
	_ = g
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("self loop did not panic")
		}
	}()
	g := path(1, 2)
	g.MustAddEdge(0, 0, 0)
}

func TestIsConnected(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want bool
	}{
		{"empty", New(0, 0), true},
		{"single", path(1), true},
		{"path", path(1, 2, 3), true},
	}
	disc := path(1, 2)
	disc.AddNode(3) // isolated node
	tests = append(tests, struct {
		name string
		g    *Graph
		want bool
	}{"disconnected", disc, false})

	for _, tc := range tests {
		if got := tc.g.IsConnected(); got != tc.want {
			t.Errorf("%s: IsConnected = %v; want %v", tc.name, got, tc.want)
		}
	}
}

func TestInducedSubgraph(t *testing.T) {
	// Triangle 0-1-2 plus pendant 3 on node 2.
	g := New(4, 4)
	for i := 0; i < 4; i++ {
		g.AddNode(Label(i))
	}
	g.MustAddEdge(0, 1, 10)
	g.MustAddEdge(1, 2, 11)
	g.MustAddEdge(0, 2, 12)
	g.MustAddEdge(2, 3, 13)

	sub := g.InducedSubgraph([]int{2, 0, 1})
	if sub.NumNodes() != 3 || sub.NumEdges() != 3 {
		t.Fatalf("sub n=%d m=%d; want 3,3", sub.NumNodes(), sub.NumEdges())
	}
	// Node order preserved: sub node 0 is original node 2.
	if sub.NodeLabel(0) != 2 || sub.NodeLabel(1) != 0 {
		t.Errorf("labels = %d,%d; want 2,0", sub.NodeLabel(0), sub.NodeLabel(1))
	}
	if sub.EdgeLabel(0, 1) != 12 { // original edge (0,2)
		t.Errorf("edge (2,0) label = %d; want 12", sub.EdgeLabel(0, 1))
	}
}

func TestCutGraph(t *testing.T) {
	// Path 0-1-2-3-4; ball of radius 2 around node 2 is the whole path,
	// radius 1 is {1,2,3}, radius 0 is {2}.
	g := path(0, 1, 2, 3, 4)
	for radius, wantN := range map[int]int{0: 1, 1: 3, 2: 5, 10: 5} {
		ball := g.CutGraph(2, radius)
		if ball.NumNodes() != wantN {
			t.Errorf("radius %d: %d nodes; want %d", radius, ball.NumNodes(), wantN)
		}
		if ball.NodeLabel(0) != 2 {
			t.Errorf("radius %d: center label %d; want 2", radius, ball.NodeLabel(0))
		}
		if !ball.IsConnected() {
			t.Errorf("radius %d: ball not connected", radius)
		}
	}
}

func TestRelabelPreservesStructure(t *testing.T) {
	g := New(3, 2)
	g.AddNode(5)
	g.AddNode(6)
	g.AddNode(7)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 2)
	perm := []int{2, 0, 1}
	h := g.Relabel(perm)
	if h.NodeLabel(2) != 5 || h.NodeLabel(0) != 6 || h.NodeLabel(1) != 7 {
		t.Fatalf("relabel moved labels incorrectly: %v", h.Labels())
	}
	if h.EdgeLabel(2, 0) != 1 || h.EdgeLabel(0, 1) != 2 {
		t.Fatalf("relabel moved edges incorrectly: %s", h)
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := path(1, 2, 3)
	c := g.Clone()
	c.AddNode(9)
	c.MustAddEdge(0, 3, 5)
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatal("mutating clone changed original")
	}
}

func TestLabelCounts(t *testing.T) {
	g := path(1, 2, 1, 1)
	counts := g.LabelCounts()
	if counts[1] != 3 || counts[2] != 1 {
		t.Fatalf("counts = %v; want 1:3 2:1", counts)
	}
}

// randomConnectedGraph builds a random connected labeled graph for
// property tests: a random spanning tree plus extra edges.
func randomConnectedGraph(r *rand.Rand, n, extraEdges, nodeLabels, edgeLabels int) *Graph {
	g := New(n, n-1+extraEdges)
	for i := 0; i < n; i++ {
		g.AddNode(Label(r.Intn(nodeLabels)))
	}
	for i := 1; i < n; i++ {
		g.MustAddEdge(r.Intn(i), i, Label(r.Intn(edgeLabels)))
	}
	for e := 0; e < extraEdges; e++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			g.MustAddEdge(u, v, Label(r.Intn(edgeLabels)))
		}
	}
	return g
}

func TestPropertyCutGraphWithinRadius(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		g := randomConnectedGraph(rr, 2+rr.Intn(20), rr.Intn(10), 3, 2)
		center := rr.Intn(g.NumNodes())
		radius := rr.Intn(4)
		ball := g.CutGraph(center, radius)
		// Every node of the ball must be within `radius` hops of its
		// center (node 0) inside the ball itself.
		dist := bfsDistances(ball, 0)
		for v, d := range dist {
			if d > radius {
				t.Logf("node %d at distance %d > radius %d", v, d, radius)
				return false
			}
		}
		return ball.IsConnected()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: r}); err != nil {
		t.Error(err)
	}
}

func bfsDistances(g *Graph, src int) []int {
	dist := make([]int, g.NumNodes())
	for i := range dist {
		dist[i] = 1 << 30
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		g.Neighbors(v, func(u int, _ Label) {
			if dist[u] > dist[v]+1 {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		})
	}
	return dist
}

func TestPropertyRelabelRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		g := randomConnectedGraph(rr, 2+rr.Intn(15), rr.Intn(8), 4, 3)
		n := g.NumNodes()
		perm := rr.Perm(n)
		inv := make([]int, n)
		for i, p := range perm {
			inv[p] = i
		}
		back := g.Relabel(perm).Relabel(inv)
		if back.NumNodes() != n || back.NumEdges() != g.NumEdges() {
			return false
		}
		for v := 0; v < n; v++ {
			if back.NodeLabel(v) != g.NodeLabel(v) {
				return false
			}
		}
		for _, e := range g.Edges() {
			if back.EdgeLabel(e.From, e.To) != e.Label {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: r}); err != nil {
		t.Error(err)
	}
}

func TestNeighborIDsAndLabels(t *testing.T) {
	g := path(7, 8, 9)
	ids := g.NeighborIDs(1)
	if len(ids) != 2 || ids[0] != 0 || ids[1] != 2 {
		t.Errorf("NeighborIDs = %v", ids)
	}
	labels := g.Labels()
	if len(labels) != 3 || labels[0] != 7 || labels[2] != 9 {
		t.Errorf("Labels = %v", labels)
	}
}

func TestMustAddEdgePanicsOnDuplicate(t *testing.T) {
	g := path(1, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on duplicate via MustAddEdge")
		}
	}()
	g.MustAddEdge(0, 1, 0)
}

func TestEdgeLabelOutOfRange(t *testing.T) {
	g := path(1, 2)
	if g.EdgeLabel(-1, 0) != NoLabel || g.EdgeLabel(5, 0) != NoLabel {
		t.Error("out-of-range EdgeLabel should be NoLabel")
	}
}

func TestAlphabetNames(t *testing.T) {
	a := NewAlphabet()
	a.Intern("x")
	a.Intern("y")
	names := a.Names()
	if len(names) != 2 || names[0] != "x" || names[1] != "y" {
		t.Errorf("Names = %v", names)
	}
}

// failingWriter errors after n bytes, to exercise codec error paths.
type failingWriter struct{ n int }

func (w *failingWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errFail
	}
	if len(p) > w.n {
		n := w.n
		w.n = 0
		return n, errFail
	}
	w.n -= len(p)
	return len(p), nil
}

var errFail = &failError{}

type failError struct{}

func (*failError) Error() string { return "synthetic write failure" }

func TestWriteDBPropagatesErrors(t *testing.T) {
	g := path(1, 2, 3)
	g.ID = 0
	for _, budget := range []int{0, 3, 10, 16} {
		if err := WriteDB(&failingWriter{n: budget}, []*Graph{g}, nil); err == nil {
			t.Errorf("budget %d: no error", budget)
		}
	}
}

func TestWriteDOTPropagatesErrors(t *testing.T) {
	g := path(1, 2)
	for _, budget := range []int{0, 12, 30} {
		if err := WriteDOT(&failingWriter{n: budget}, g, "x", nil, nil); err == nil {
			t.Errorf("budget %d: no error", budget)
		}
	}
}
