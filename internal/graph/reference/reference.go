// Package reference preserves the pre-CSR graph representation — the
// pointer-rich slice-of-slices adjacency that internal/graph used before
// the flat compressed-sparse-row refactor — as a differential-testing
// oracle. It is imported only by tests and fuzz harnesses: the
// representation-invariance suite drives this implementation and the CSR
// one with identical inputs and requires identical observations
// (adjacency iteration order, VF2 verdicts and embedding counts, and
// byte-identical end-to-end mining answers).
//
// The code is deliberately a frozen copy, not a shim over the live
// package: sharing helpers with the implementation under test would
// let a representation bug cancel itself out.
package reference

import (
	"fmt"

	"graphsig/internal/graph"
)

// halfEdge is an adjacency entry: the neighbor and the edge label.
type halfEdge struct {
	to    int
	label graph.Label
}

// Graph is the old adjacency-list representation of a labeled
// undirected simple graph.
type Graph struct {
	ID int

	labels []graph.Label
	adj    [][]halfEdge
	edges  []graph.Edge
}

// New returns an empty graph with capacity hints for n nodes and m edges.
func New(n, m int) *Graph {
	return &Graph{
		labels: make([]graph.Label, 0, n),
		adj:    make([][]halfEdge, 0, n),
		edges:  make([]graph.Edge, 0, m),
	}
}

// FromGraph converts a CSR graph by replaying its nodes and edges in
// insertion order, reproducing the old representation's adjacency state
// for the same construction sequence.
func FromGraph(g *graph.Graph) *Graph {
	r := New(g.NumNodes(), g.NumEdges())
	r.ID = g.ID
	for _, l := range g.Labels() {
		r.AddNode(l)
	}
	for _, e := range g.Edges() {
		r.MustAddEdge(e.From, e.To, e.Label)
	}
	return r
}

// ToGraph converts back to the live representation by the same replay.
func (g *Graph) ToGraph() *graph.Graph {
	out := graph.New(g.NumNodes(), g.NumEdges())
	out.ID = g.ID
	for _, l := range g.labels {
		out.AddNode(l)
	}
	for _, e := range g.edges {
		out.MustAddEdge(e.From, e.To, e.Label)
	}
	return out
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.labels) }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// AddNode appends a node with the given label and returns its id.
func (g *Graph) AddNode(l graph.Label) int {
	g.labels = append(g.labels, l)
	g.adj = append(g.adj, nil)
	return len(g.labels) - 1
}

// NodeLabel returns the label of node v.
func (g *Graph) NodeLabel(v int) graph.Label { return g.labels[v] }

// AddEdge inserts an undirected edge (u, v) with label l, as the old
// implementation did: panic on out-of-range or self loops, error on
// duplicates.
func (g *Graph) AddEdge(u, v int, l graph.Label) error {
	if u == v {
		panic("reference: self loop")
	}
	if u < 0 || u >= len(g.labels) || v < 0 || v >= len(g.labels) {
		panic(fmt.Sprintf("reference: edge (%d,%d) out of range [0,%d)", u, v, len(g.labels)))
	}
	if g.HasEdge(u, v) {
		return fmt.Errorf("reference: duplicate edge (%d,%d)", u, v)
	}
	if u > v {
		u, v = v, u
	}
	g.adj[u] = append(g.adj[u], halfEdge{to: v, label: l})
	g.adj[v] = append(g.adj[v], halfEdge{to: u, label: l})
	g.edges = append(g.edges, graph.Edge{From: u, To: v, Label: l})
	return nil
}

// MustAddEdge is AddEdge that panics on duplicates.
func (g *Graph) MustAddEdge(u, v int, l graph.Label) {
	if err := g.AddEdge(u, v, l); err != nil {
		panic(err)
	}
}

// HasEdge reports whether an edge between u and v exists.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= len(g.adj) {
		return false
	}
	for _, h := range g.adj[u] {
		if h.to == v {
			return true
		}
	}
	return false
}

// EdgeLabel returns the label of edge (u, v), or NoLabel if absent.
func (g *Graph) EdgeLabel(u, v int) graph.Label {
	if u < 0 || u >= len(g.adj) {
		return graph.NoLabel
	}
	for _, h := range g.adj[u] {
		if h.to == v {
			return h.label
		}
	}
	return graph.NoLabel
}

// Degree returns the degree of node v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Neighbors calls fn for each neighbor of v with the neighbor id and the
// connecting edge label. Iteration order is insertion order.
func (g *Graph) Neighbors(v int, fn func(u int, l graph.Label)) {
	for _, h := range g.adj[v] {
		fn(h.to, h.label)
	}
}

// Edges returns the edge list. The caller must not mutate it.
func (g *Graph) Edges() []graph.Edge { return g.edges }

// Labels returns the node label slice. The caller must not mutate it.
func (g *Graph) Labels() []graph.Label { return g.labels }

// IsConnected reports whether g is connected.
func (g *Graph) IsConnected() bool {
	n := g.NumNodes()
	if n <= 1 {
		return true
	}
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, h := range g.adj[v] {
			if !seen[h.to] {
				seen[h.to] = true
				count++
				stack = append(stack, h.to)
			}
		}
	}
	return count == n
}

// InducedSubgraph returns the subgraph induced by the given node ids, in
// the given order.
func (g *Graph) InducedSubgraph(nodes []int) *Graph {
	index := make(map[int]int, len(nodes))
	sub := New(len(nodes), 0)
	sub.ID = g.ID
	for i, v := range nodes {
		index[v] = i
		sub.AddNode(g.labels[v])
	}
	for _, e := range g.edges {
		fi, okF := index[e.From]
		ti, okT := index[e.To]
		if okF && okT {
			sub.MustAddEdge(fi, ti, e.Label)
		}
	}
	return sub
}

// CutGraph returns the ball of the given radius around center, exactly
// as the old implementation cut it (FIFO queue with per-entry depths).
func (g *Graph) CutGraph(center, radius int) *Graph {
	type qe struct{ v, d int }
	seen := map[int]bool{center: true}
	order := []int{center}
	queue := []qe{{center, 0}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.d == radius {
			continue
		}
		for _, h := range g.adj[cur.v] {
			if !seen[h.to] {
				seen[h.to] = true
				order = append(order, h.to)
				queue = append(queue, qe{h.to, cur.d + 1})
			}
		}
	}
	return g.InducedSubgraph(order)
}
