// The pre-arena VF2 implementation, frozen as the matching oracle: the
// allocation-per-call recursive search over the adjacency-list Graph,
// exactly as internal/isomorph ran it before the CSR rewrite (minus the
// run-controller plumbing, which the oracle does not need). The
// differential fuzz harness requires verdict and embedding-count
// agreement between this code and the rewritten matcher on arbitrary
// pattern/target pairs.
package reference

import "graphsig/internal/graph"

// state carries the mutable search state of one VF2 run.
type state struct {
	pattern, target *Graph
	core            []int
	used            []bool
	order           []int
	limit           int
	count           int
	emit            func(mapping []int) bool
}

// SubgraphIsomorphic reports whether pattern occurs in target (labeled
// subgraph monomorphism with injective node mapping).
func SubgraphIsomorphic(pattern, target *Graph) bool {
	found := false
	enumerate(pattern, target, 1, func([]int) bool {
		found = true
		return false
	})
	return found
}

// CountEmbeddings returns the number of distinct embeddings of pattern
// in target, up to max (0 = unbounded).
func CountEmbeddings(pattern, target *Graph, max int) int {
	n := 0
	enumerate(pattern, target, max, func([]int) bool {
		n++
		return max == 0 || n < max
	})
	return n
}

// ForEachEmbedding calls fn with every embedding of pattern in target
// until fn returns false. The mapping slice is reused across calls.
func ForEachEmbedding(pattern, target *Graph, fn func(mapping []int) bool) {
	enumerate(pattern, target, 0, fn)
}

// Support counts the number of graphs in db that contain pattern.
func Support(pattern *Graph, db []*Graph) int {
	n := 0
	for _, g := range db {
		if SubgraphIsomorphic(pattern, g) {
			n++
		}
	}
	return n
}

func enumerate(pattern, target *Graph, limit int, emit func([]int) bool) {
	np := pattern.NumNodes()
	if np == 0 {
		emit(nil)
		return
	}
	if np > target.NumNodes() || pattern.NumEdges() > target.NumEdges() {
		return
	}
	s := &state{
		pattern: pattern,
		target:  target,
		core:    make([]int, np),
		used:    make([]bool, target.NumNodes()),
		order:   connectedOrder(pattern),
		limit:   limit,
		emit:    emit,
	}
	for i := range s.core {
		s.core[i] = -1
	}
	s.match(0)
}

// connectedOrder returns pattern nodes in BFS-over-components order.
func connectedOrder(g *Graph) []int {
	n := g.NumNodes()
	order := make([]int, 0, n)
	seen := make([]bool, n)
	for start := 0; start < n; start++ {
		if seen[start] {
			continue
		}
		seen[start] = true
		queue := []int{start}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			g.Neighbors(v, func(u int, _ graph.Label) {
				if !seen[u] {
					seen[u] = true
					queue = append(queue, u)
				}
			})
		}
	}
	return order
}

// match extends the mapping with the depth-th pattern node in order.
func (s *state) match(depth int) bool {
	if depth == len(s.order) {
		s.count++
		if !s.emit(s.core) {
			return false
		}
		return s.limit == 0 || s.count < s.limit
	}
	pv := s.order[depth]
	pl := s.pattern.NodeLabel(pv)

	var candidates []int
	anchored := false
	s.pattern.Neighbors(pv, func(pu int, _ graph.Label) {
		if anchored {
			return
		}
		if tv := s.core[pu]; tv >= 0 {
			anchored = true
			candidates = candidates[:0]
			s.target.Neighbors(tv, func(tu int, _ graph.Label) {
				candidates = append(candidates, tu)
			})
		}
	})
	if !anchored {
		for tv := 0; tv < s.target.NumNodes(); tv++ {
			candidates = append(candidates, tv)
		}
	}

	for _, tv := range candidates {
		if s.used[tv] || s.target.NodeLabel(tv) != pl {
			continue
		}
		if s.target.Degree(tv) < s.pattern.Degree(pv) {
			continue
		}
		if !s.feasible(pv, tv) {
			continue
		}
		s.core[pv] = tv
		s.used[tv] = true
		ok := s.match(depth + 1)
		s.core[pv] = -1
		s.used[tv] = false
		if !ok {
			return false
		}
	}
	return true
}

// feasible checks that mapping pv -> tv preserves every pattern edge to
// an already-mapped neighbor, with matching edge labels.
func (s *state) feasible(pv, tv int) bool {
	ok := true
	s.pattern.Neighbors(pv, func(pu int, l graph.Label) {
		if !ok {
			return
		}
		tu := s.core[pu]
		if tu < 0 {
			return
		}
		if s.target.EdgeLabel(tv, tu) != l {
			ok = false
		}
	})
	return ok
}
