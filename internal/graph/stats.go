package graph

import "sort"

// ConnectedComponents returns the node sets of g's connected components,
// each sorted ascending, ordered by their smallest node.
func (g *Graph) ConnectedComponents() [][]int {
	n := g.NumNodes()
	seen := make([]bool, n)
	var comps [][]int
	for start := 0; start < n; start++ {
		if seen[start] {
			continue
		}
		var comp []int
		stack := []int{start}
		seen[start] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, v)
			g.Neighbors(v, func(u int, _ Label) {
				if !seen[u] {
					seen[u] = true
					stack = append(stack, u)
				}
			})
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// DegreeHistogram returns counts[d] = number of nodes with degree d.
func (g *Graph) DegreeHistogram() []int {
	maxDeg := 0
	for v := 0; v < g.NumNodes(); v++ {
		if d := g.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	counts := make([]int, maxDeg+1)
	for v := 0; v < g.NumNodes(); v++ {
		counts[g.Degree(v)]++
	}
	return counts
}

// CycleRank returns the cycle space dimension m - n + c (number of
// independent cycles); for molecules this is the ring count.
func (g *Graph) CycleRank() int {
	return g.NumEdges() - g.NumNodes() + len(g.ConnectedComponents())
}

// Diameter returns the longest shortest-path distance within g's largest
// connected component (0 for empty or single-node graphs). It runs BFS
// from every node: O(n·(n+m)), intended for molecule-scale graphs.
func (g *Graph) Diameter() int {
	n := g.NumNodes()
	best := 0
	dist := make([]int, n)
	queue := make([]int, 0, n)
	for src := 0; src < n; src++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[src] = 0
		queue = queue[:0]
		queue = append(queue, src)
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			g.Neighbors(v, func(u int, _ Label) {
				if dist[u] < 0 {
					dist[u] = dist[v] + 1
					if dist[u] > best {
						best = dist[u]
					}
					queue = append(queue, u)
				}
			})
		}
	}
	return best
}
