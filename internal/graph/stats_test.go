package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConnectedComponents(t *testing.T) {
	g := New(6, 3)
	for i := 0; i < 6; i++ {
		g.AddNode(0)
	}
	g.MustAddEdge(0, 1, 0)
	g.MustAddEdge(1, 2, 0)
	g.MustAddEdge(4, 5, 0)
	comps := g.ConnectedComponents()
	if len(comps) != 3 {
		t.Fatalf("got %d components; want 3", len(comps))
	}
	if len(comps[0]) != 3 || comps[0][0] != 0 {
		t.Errorf("comp0 = %v", comps[0])
	}
	if len(comps[1]) != 1 || comps[1][0] != 3 {
		t.Errorf("comp1 = %v", comps[1])
	}
	if len(comps[2]) != 2 || comps[2][0] != 4 {
		t.Errorf("comp2 = %v", comps[2])
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := path(0, 0, 0, 0) // degrees 1,2,2,1
	h := g.DegreeHistogram()
	if len(h) != 3 || h[0] != 0 || h[1] != 2 || h[2] != 2 {
		t.Errorf("histogram = %v", h)
	}
	empty := New(0, 0)
	if len(empty.DegreeHistogram()) != 1 {
		t.Error("empty histogram should have one zero bucket")
	}
}

func TestCycleRank(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want int
	}{
		{"path", path(0, 0, 0), 0},
		{"single", path(0), 0},
	}
	tri := path(0, 0, 0)
	tri.MustAddEdge(0, 2, 0)
	tests = append(tests, struct {
		name string
		g    *Graph
		want int
	}{"triangle", tri, 1})
	two := tri.Clone()
	two.AddNode(0)
	two.AddNode(0)
	two.MustAddEdge(3, 4, 0)
	tests = append(tests, struct {
		name string
		g    *Graph
		want int
	}{"triangle + edge component", two, 1})

	for _, tc := range tests {
		if got := tc.g.CycleRank(); got != tc.want {
			t.Errorf("%s: CycleRank = %d; want %d", tc.name, got, tc.want)
		}
	}
}

func TestDiameter(t *testing.T) {
	if got := path(0, 0, 0, 0, 0).Diameter(); got != 4 {
		t.Errorf("path diameter = %d; want 4", got)
	}
	tri := path(0, 0, 0)
	tri.MustAddEdge(0, 2, 0)
	if got := tri.Diameter(); got != 1 {
		t.Errorf("triangle diameter = %d; want 1", got)
	}
	if got := New(0, 0).Diameter(); got != 0 {
		t.Errorf("empty diameter = %d", got)
	}
}

func TestPropertyComponentsPartitionNodes(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(15)
		g := New(n, n)
		for i := 0; i < n; i++ {
			g.AddNode(0)
		}
		for e := 0; e < rr.Intn(2*n); e++ {
			u, v := rr.Intn(n), rr.Intn(n)
			if u != v && !g.HasEdge(u, v) {
				g.MustAddEdge(u, v, 0)
			}
		}
		seen := map[int]int{}
		for _, comp := range g.ConnectedComponents() {
			for _, v := range comp {
				seen[v]++
			}
		}
		if len(seen) != n {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		// Connectivity consistency.
		return g.IsConnected() == (len(g.ConnectedComponents()) <= 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: r}); err != nil {
		t.Error(err)
	}
}
