package gspan

import "graphsig/internal/dfscode"

// Closed filters patterns down to the closed ones: patterns with no
// super-pattern of identical support in the list (the CloseGraph output
// condition, Yan & Han KDD 2003). Mining all frequent patterns and
// filtering is exponentially worse than CloseGraph's native pruning, but
// the output set is identical, which is what the library's consumers
// (deduplication, indexing dictionaries) need.
func Closed(patterns []Pattern) []Pattern {
	// Group by support first: a closed-ness witness must have equal
	// support, so only same-support patterns need isomorphism checks.
	bySupport := map[int][]int{}
	for i, p := range patterns {
		bySupport[p.Support] = append(bySupport[p.Support], i)
	}
	var out []Pattern
	for _, p := range patterns {
		closed := true
		for _, j := range bySupport[p.Support] {
			q := patterns[j]
			if q.Graph.NumEdges() <= p.Graph.NumEdges() {
				continue
			}
			if isoSubgraph(p.Graph, q.Graph) {
				closed = false
				break
			}
		}
		if closed {
			out = append(out, p)
		}
	}
	return out
}

// Dedup removes isomorphic duplicates from a pattern list, keeping the
// first occurrence (useful when merging pattern sets from several runs).
func Dedup(patterns []Pattern) []Pattern {
	seen := map[string]bool{}
	var out []Pattern
	for _, p := range patterns {
		key := dfscode.Canonical(p.Graph)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, p)
	}
	return out
}
