package gspan

import (
	"math/rand"
	"testing"

	"graphsig/internal/graph"
)

func TestClosedFiltersSubsumedPatterns(t *testing.T) {
	// Path a-b-c in every graph: the edges a-b and b-c have the same
	// support as the full path, so only the path is closed.
	path := build([]graph.Label{1, 2, 3}, [][3]int{{0, 1, 0}, {1, 2, 0}})
	db := []*graph.Graph{path, path.Clone(), path.Clone()}
	res := Mine(db, Options{MinSupport: 3})
	closed := Closed(res.Patterns)
	if len(closed) != 1 {
		for _, p := range closed {
			t.Logf("closed: %s sup=%d", p.Graph, p.Support)
		}
		t.Fatalf("got %d closed patterns; want 1", len(closed))
	}
	if closed[0].Graph.NumEdges() != 2 {
		t.Errorf("closed pattern = %s; want the full path", closed[0].Graph)
	}
}

func TestClosedKeepsSupportDrops(t *testing.T) {
	// Edge 1-2 appears in 3 graphs; the extension 1-2-3 only in 2. Both
	// are closed (different supports).
	path := build([]graph.Label{1, 2, 3}, [][3]int{{0, 1, 0}, {1, 2, 0}})
	edge := build([]graph.Label{1, 2}, [][3]int{{0, 1, 0}})
	db := []*graph.Graph{path, path.Clone(), edge}
	res := Mine(db, Options{MinSupport: 2})
	closed := Closed(res.Patterns)
	var sizes []int
	for _, p := range closed {
		sizes = append(sizes, p.Graph.NumEdges())
	}
	if len(closed) != 2 {
		t.Fatalf("closed sizes = %v; want one 1-edge and one 2-edge", sizes)
	}
}

func TestClosedSubsetOfAll(t *testing.T) {
	db := randDB(rand.New(rand.NewSource(12)), 10, 6, 2, 2, 2)
	res := Mine(db, Options{MinSupport: 2, MaxEdges: 4})
	closed := Closed(res.Patterns)
	if len(closed) > len(res.Patterns) {
		t.Fatal("closed set larger than full set")
	}
	// Every frequent pattern must be represented by a closed super-
	// pattern of equal support.
	for _, p := range res.Patterns {
		found := false
		for _, c := range closed {
			if c.Support == p.Support && isoSubgraph(p.Graph, c.Graph) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("pattern %s (sup %d) has no closed representative", p.Graph, p.Support)
		}
	}
}

func TestDedup(t *testing.T) {
	a := build([]graph.Label{1, 2}, [][3]int{{0, 1, 0}})
	b := build([]graph.Label{2, 1}, [][3]int{{0, 1, 0}}) // isomorphic to a
	c := build([]graph.Label{1, 3}, [][3]int{{0, 1, 0}})
	out := Dedup([]Pattern{{Graph: a}, {Graph: b}, {Graph: c}})
	if len(out) != 2 {
		t.Fatalf("got %d patterns; want 2", len(out))
	}
}
