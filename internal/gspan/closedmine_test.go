package gspan

import (
	"fmt"
	"math/rand"
	"testing"

	"graphsig/internal/dfscode"
	"graphsig/internal/graph"
	"graphsig/internal/obs"
	"graphsig/internal/runctl"
)

// patternSig renders a pattern byte-comparably: canonical graph key,
// support, and TID list.
func patternSig(p Pattern) string {
	return fmt.Sprintf("%s|%d|%v", dfscode.Canonical(p.Graph), p.Support, p.GraphIDs)
}

func diffPatternLists(t *testing.T, label string, got, want []Pattern) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d patterns, want %d", label, len(got), len(want))
	}
	for i := range want {
		if g, w := patternSig(got[i]), patternSig(want[i]); g != w {
			t.Fatalf("%s: pattern %d = %s, want %s", label, i, g, w)
		}
	}
}

// TestClosedOnlyMatchesOracle checks the ClosedOnly contract
// differentially: the closed mine's output must be byte-identical —
// graphs, supports, TID lists, order — to the oracle sweep Closed()
// over the unfiltered mine, across random databases. MaxEdges-capped
// runs are included: at-cap patterns have no in-universe witness (a
// witness needs more edges than the cap), so the contract holds there
// too even though the miner emits the boundary unconditionally.
func TestClosedOnlyMatchesOracle(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		r := rand.New(rand.NewSource(seed))
		db := randDB(r, 3+r.Intn(4), 6, 2, 2, 2)
		for _, maxEdges := range []int{0, 3} {
			opt := Options{MinSupport: 2, MaxEdges: maxEdges}
			full := Mine(db, opt)
			opt.ClosedOnly = true
			closed := Mine(db, opt)
			if full.Truncated || closed.Truncated {
				t.Fatalf("seed %d: unexpected truncation", seed)
			}
			label := fmt.Sprintf("seed %d maxEdges %d", seed, maxEdges)
			diffPatternLists(t, label, closed.Patterns, Closed(full.Patterns))
			if closed.Stats.StatesExplored > full.Stats.StatesExplored {
				t.Fatalf("%s: closed mine explored %d states, full mine only %d",
					label, closed.Stats.StatesExplored, full.Stats.StatesExplored)
			}
		}
	}
}

// TestClosedOnlyPreservesMaximal is the property the pipeline rests on:
// the closed output contains every maximal pattern, the maximality
// sweep over it is byte-identical to the sweep over the full output,
// and the oracle closure sweep over the closed output is a no-op.
func TestClosedOnlyPreservesMaximal(t *testing.T) {
	for seed := int64(100); seed < 120; seed++ {
		r := rand.New(rand.NewSource(seed))
		db := randDB(r, 3+r.Intn(4), 6, 2, 2, 2)
		full := Mine(db, Options{MinSupport: 2})
		closed := Mine(db, Options{MinSupport: 2, ClosedOnly: true})

		label := fmt.Sprintf("seed %d", seed)
		diffPatternLists(t, label+" maximal", Maximal(closed.Patterns), Maximal(full.Patterns))
		diffPatternLists(t, label+" closure no-op", Closed(closed.Patterns), closed.Patterns)

		inClosed := map[string]bool{}
		for _, p := range closed.Patterns {
			inClosed[patternSig(p)] = true
		}
		for _, p := range Maximal(full.Patterns) {
			if !inClosed[patternSig(p)] {
				t.Fatalf("%s: maximal pattern %s missing from closed output", label, patternSig(p))
			}
		}
	}
}

// TestEquivalentOccurrencePruning feeds the miner a database where a
// non-rightmost internal extension (the diamond chord) is realized by
// every occurrence of its parent state, so the DFS subtree must be cut:
// strictly fewer states explored than the full mine, with the prune and
// equivalent-occurrence counters visibly nonzero — while the output
// still matches the oracle.
func TestEquivalentOccurrencePruning(t *testing.T) {
	diamond := func() *graph.Graph {
		// Square 0-1-2-3 with chord 0-2 and a pendant tail off node 3.
		return build([]graph.Label{1, 2, 3, 4, 5},
			[][3]int{{0, 1, 0}, {1, 2, 0}, {2, 3, 0}, {3, 0, 0}, {0, 2, 0}, {3, 4, 0}})
	}
	db := []*graph.Graph{diamond(), diamond(), diamond()}

	full := Mine(db, Options{MinSupport: 3})
	reg := obs.NewRegistry()
	ctl := runctl.New(runctl.Options{Metrics: reg})
	closed := Mine(db, Options{MinSupport: 3, ClosedOnly: true, Ctl: ctl})

	diffPatternLists(t, "diamond", closed.Patterns, Closed(full.Patterns))
	if closed.Stats.StatesExplored >= full.Stats.StatesExplored {
		t.Errorf("closed mine explored %d states, want fewer than full mine's %d",
			closed.Stats.StatesExplored, full.Stats.StatesExplored)
	}
	snap := reg.Snapshot()
	if n := snap.CounterValue(obs.MClosedPrunes, "miner", "gspan"); n == 0 {
		t.Error("closed-prune counter is zero")
	}
	if n := snap.CounterValue(obs.MEquivOccurrences, "miner", "gspan"); n == 0 {
		t.Error("equivalent-occurrence counter is zero")
	}
}

// dbFromBytes decodes a fuzz payload into a small graph database: a
// graph count, then per graph a node count with labels and edge triples
// drawn from the remaining bytes. Invalid edges (self-loops,
// duplicates) are skipped, so every byte string decodes.
func dbFromBytes(data []byte) []*graph.Graph {
	if len(data) < 2 {
		return nil
	}
	next := func() byte {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return b
	}
	count := 2 + int(next())%3
	var db []*graph.Graph
	for gi := 0; gi < count; gi++ {
		n := 2 + int(next())%5
		g := graph.New(n, 2*n)
		for v := 0; v < n; v++ {
			g.AddNode(graph.Label(int(next()) % 3))
		}
		edges := 1 + int(next())%(2*n)
		for e := 0; e < edges; e++ {
			b := next()
			u, v := int(b)%n, int(b>>3)%n
			if u == v {
				continue
			}
			g.AddEdge(u, v, graph.Label(int(next())%2)) //nolint:errcheck // duplicate edges are skipped by design
		}
		db = append(db, g)
	}
	return db
}

// FuzzClosedEquivalence fuzzes the differential contract: on arbitrary
// small databases, ClosedOnly mining must equal the oracle closure
// sweep over the unfiltered mine, byte for byte.
func FuzzClosedEquivalence(f *testing.F) {
	f.Add([]byte{2, 3, 1, 0, 2, 4, 5, 1, 9, 3, 0, 1, 2, 7, 7})
	f.Add([]byte{0, 4, 0, 0, 0, 0, 8, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Fuzz(func(t *testing.T, data []byte) {
		db := dbFromBytes(data)
		if db == nil {
			t.Skip()
		}
		minSup := 1 + int(data[0])%len(db)
		// MaxEdges bounds the pattern lattice so adversarial inputs
		// (dense same-label graphs) stay cheap.
		full := Mine(db, Options{MinSupport: minSup, MaxEdges: 4})
		closed := Mine(db, Options{MinSupport: minSup, MaxEdges: 4, ClosedOnly: true})
		diffPatternLists(t, "fuzz", closed.Patterns, Closed(full.Patterns))
	})
}
