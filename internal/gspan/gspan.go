// Package gspan implements the gSpan frequent-subgraph miner (Yan & Han,
// ICDM 2002): DFS-code pattern growth with rightmost-path extension,
// projected embedding lists for support counting, and minimum-code
// duplicate pruning. It serves two roles in this repository: the
// exponential baseline of Figs 2, 9 and 11, and (with the maximal filter)
// the frequent-subgraph step GraphSig runs on each candidate set.
//
// Projections use the classical linked PDFS representation: each
// projection stores only the host edge realizing the newest code entry
// plus a pointer to its parent projection, so extending costs O(1) memory
// and the full embedding is reconstructed on demand in O(|code|).
package gspan

import (
	"sort"
	"time"

	"graphsig/internal/dfscode"
	"graphsig/internal/graph"
	"graphsig/internal/isomorph"
	"graphsig/internal/obs"
	"graphsig/internal/runctl"
)

// Options configures a mining run. MinSupport is an absolute graph count
// (use FromPercent for a percentage threshold).
type Options struct {
	// MinSupport is the minimum number of database graphs a pattern must
	// occur in. Values < 1 are treated as 1.
	MinSupport int
	// MaxEdges bounds the pattern size in edges (0 = unbounded).
	MaxEdges int
	// MaxPatterns stops the mine after this many patterns (0 = unbounded).
	// The result is flagged Truncated when the cap is hit.
	MaxPatterns int
	// Deadline aborts the mine when exceeded (zero = none). The result is
	// flagged Truncated. This mirrors the paper's ">10 hours, did not
	// finish" handling for low-frequency baseline runs. Ignored when Ctl
	// is set.
	Deadline time.Time
	// Ctl is the shared run controller: cancellation, deadline, and the
	// miner-step budget (one step per search state). The mine checkpoints
	// once per grow() call.
	Ctl *runctl.Controller
	// IncludeSingleNodes also reports frequent single-node patterns.
	IncludeSingleNodes bool
	// ClosedOnly emits only closed patterns: frequent patterns with no
	// one-edge extension preserving their full support set (CloseGraph,
	// Yan & Han KDD 2003). The emitted list equals Closed() applied to
	// the full mine's output, in the same order, so Maximal() over it is
	// byte-identical to Maximal() over the full list — closure filtering
	// can only drop patterns that already had an equal-support (hence
	// frequent) strict super-pattern. With MaxEdges == 0 the miner also
	// prunes whole DFS subtrees on equivalent occurrences (see grow).
	// Single-node patterns (IncludeSingleNodes) are always reported;
	// closure filtering applies to edge patterns.
	ClosedOnly bool
}

// FromPercent converts a percentage frequency threshold (e.g. 5.0 for 5%)
// into an absolute support for a database of n graphs, with a floor of 1.
func FromPercent(pct float64, n int) int {
	s := int(pct * float64(n) / 100.0)
	if s < 1 {
		return 1
	}
	return s
}

// Pattern is a mined frequent subgraph.
type Pattern struct {
	// Graph is the pattern structure (node 0 is the DFS root).
	Graph *graph.Graph
	// Code is the pattern's minimum DFS code (empty for single nodes).
	Code dfscode.Code
	// Support is the number of database graphs containing the pattern.
	Support int
	// GraphIDs lists the supporting database indices in ascending order.
	GraphIDs []int
}

// Result is the outcome of a mining run.
type Result struct {
	Patterns []Pattern
	// Truncated reports that MaxPatterns, the deadline, a budget, or
	// cancellation cut the run short.
	Truncated bool
	// StopReason classifies a controller-driven stop ("" when the run
	// completed or only MaxPatterns tripped).
	StopReason runctl.Reason
	// Stats exposes the search effort behind the run.
	Stats Stats
}

// Stats counts the work a mining run performed.
type Stats struct {
	// StatesExplored is the number of grow() calls (pattern states).
	StatesExplored int
	// ExtensionsTried is the number of distinct rightmost extensions
	// evaluated across all states.
	ExtensionsTried int
	// MinimalityRejected counts extensions discarded as non-minimal
	// DFS codes (duplicate search states).
	MinimalityRejected int
}

// projection is one embedding of the current DFS code into a database
// graph, as a linked chain: the host edge realizing the newest code
// entry plus the parent projection for the code prefix.
type projection struct {
	gid int
	// hostFrom -> hostTo is the directed host edge of the newest entry.
	hostFrom, hostTo int
	eid              int
	prev             *projection
}

// embeddingState is a projection unrolled against its code: the host
// node of every DFS index and the set of consumed host edge ids.
type embeddingState struct {
	nodes []int
	used  []int // host edge ids, parallel to code entries
}

// unroll reconstructs the embedding of code realized by p. Buffers are
// reused via the passed state.
func unroll(code dfscode.Code, p *projection, st *embeddingState) {
	n := len(code)
	st.used = st.used[:0]
	st.nodes = st.nodes[:0]
	// Collect the chain newest-first, then walk code order.
	chain := make([]*projection, n)
	for i := n - 1; i >= 0; i-- {
		chain[i] = p
		p = p.prev
	}
	numNodes := code.NumNodes()
	for len(st.nodes) < numNodes {
		st.nodes = append(st.nodes, -1)
	}
	for i, e := range code {
		pr := chain[i]
		st.used = append(st.used, pr.eid)
		if e.Forward() {
			st.nodes[e.I] = pr.hostFrom
			st.nodes[e.J] = pr.hostTo
		}
	}
}

func (st *embeddingState) usedEdge(eid int) bool {
	for _, e := range st.used {
		if e == eid {
			return true
		}
	}
	return false
}

func (st *embeddingState) hostIndex(host int) int {
	for i, n := range st.nodes {
		if n == host {
			return i
		}
	}
	return -1
}

// occAcc accumulates one extension key's occurrences across the current
// state's projection list. Projections arrive grouped by graph id (seeds
// are appended per-gid contiguously and children inherit the grouping),
// so distinct-gid counting needs only the last gid seen; the projection
// ordinal dedups multiple realizations of the same key inside one
// embedding (e.g. two same-labeled pendant neighbors).
type occAcc struct {
	lastGid, gidCount   int
	lastProj, projCount int
}

type miner struct {
	db       []*graph.Graph
	opt      Options
	cp       *runctl.Checkpoint
	patterns []Pattern
	stats    Stats
	stop     bool
	stopWhy  runctl.Reason

	// Closed-only mode scratch, reused across grow() calls: per-key
	// occurrence accounting and the host-node -> pattern-index inverse
	// map for CSR-row extension walks.
	extAcc       map[isomorph.ExtKey]occAcc
	inv          []int32
	closedPrunes *obs.Counter
	equivHits    *obs.Counter
}

// Mine runs gSpan over db and returns all frequent connected subgraph
// patterns with at least opt.MinSupport supporting graphs.
func Mine(db []*graph.Graph, opt Options) Result {
	if opt.MinSupport < 1 {
		opt.MinSupport = 1
	}
	ctl := opt.Ctl
	if ctl == nil {
		ctl = runctl.FromDeadline(opt.Deadline)
	}
	m := &miner{db: db, opt: opt, cp: ctl.Checkpoint(runctl.StageGSpan)}
	if opt.ClosedOnly {
		reg := m.cp.Metrics()
		m.closedPrunes = reg.Counter(obs.MClosedPrunes, "miner", "gspan")
		m.equivHits = reg.Counter(obs.MEquivOccurrences, "miner", "gspan")
	}
	// Un-amortized check up front so an already-expired deadline or
	// canceled context truncates before any work.
	if err := m.cp.Force(); err != nil {
		return Result{Truncated: true, StopReason: runctl.ReasonOf(err)}
	}

	if opt.IncludeSingleNodes {
		m.mineSingleNodes()
	}

	// Frequent seed edges, in DFS-code order.
	type seed struct {
		code dfscode.EdgeCode
		gids map[int]bool
	}
	seeds := make(map[dfscode.EdgeCode]*seed)
	for gid, g := range db {
		for _, e := range g.Edges() {
			lu, lv := g.NodeLabel(e.From), g.NodeLabel(e.To)
			if lu > lv {
				lu, lv = lv, lu
			}
			ec := dfscode.EdgeCode{I: 0, J: 1, LI: lu, LE: e.Label, LJ: lv}
			s, ok := seeds[ec]
			if !ok {
				s = &seed{code: ec, gids: make(map[int]bool)}
				seeds[ec] = s
			}
			s.gids[gid] = true
		}
	}
	var ordered []*seed
	for _, s := range seeds {
		if len(s.gids) >= opt.MinSupport {
			ordered = append(ordered, s)
		}
	}
	sort.Slice(ordered, func(i, j int) bool {
		return dfscode.CompareEdges(ordered[i].code, ordered[j].code) < 0
	})

	for _, s := range ordered {
		if m.stop {
			break
		}
		var projs []*projection
		for gid := range s.gids {
			g := db[gid]
			for eid, e := range g.Edges() {
				for _, dir := range [2][2]int{{e.From, e.To}, {e.To, e.From}} {
					if g.NodeLabel(dir[0]) != s.code.LI || e.Label != s.code.LE || g.NodeLabel(dir[1]) != s.code.LJ {
						continue
					}
					projs = append(projs, &projection{
						gid:      gid,
						hostFrom: dir[0],
						hostTo:   dir[1],
						eid:      eid,
					})
				}
			}
		}
		m.grow(dfscode.Code{s.code}, projs)
	}

	return Result{Patterns: m.patterns, Truncated: m.stop, StopReason: m.stopWhy, Stats: m.stats}
}

func (m *miner) mineSingleNodes() {
	counts := make(map[graph.Label]map[int]bool)
	for gid, g := range m.db {
		for _, l := range g.Labels() {
			if counts[l] == nil {
				counts[l] = make(map[int]bool)
			}
			counts[l][gid] = true
		}
	}
	var labels []graph.Label
	for l, gids := range counts {
		if len(gids) >= m.opt.MinSupport {
			labels = append(labels, l)
		}
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })
	for _, l := range labels {
		g := graph.New(1, 0)
		g.AddNode(l)
		m.record(Pattern{Graph: g, Support: len(counts[l]), GraphIDs: sortedIDs(counts[l])})
	}
}

func sortedIDs(set map[int]bool) []int {
	ids := make([]int, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

func (m *miner) record(p Pattern) {
	m.patterns = append(m.patterns, p)
	if m.opt.MaxPatterns > 0 && len(m.patterns) >= m.opt.MaxPatterns {
		m.stop = true
	}
}

// checkpoint consults the shared controller; it flips the stop flag and
// records the reason when the run is cut short.
func (m *miner) checkpoint() bool {
	if err := m.cp.Step(); err != nil {
		m.stop = true
		if se, ok := runctl.AsStop(err); ok {
			m.stopWhy = se.Reason
		}
		return false
	}
	return true
}

// grow records the pattern for code (already minimal) and recursively
// explores its rightmost-path extensions.
//
// In closed-only mode the same projection walk additionally accounts
// every one-edge extension key over all pattern positions (not just the
// rightmost path): a key realized in all supporting graphs witnesses
// the pattern as non-closed, so emission is suppressed. When moreover
// every single embedding extends by the same internal key whose
// endpoints both avoid the rightmost vertex — an equivalent occurrence
// — the whole DFS subtree is abandoned: descendants only ever attach
// backward edges at their current rightmost vertex, which is either
// this state's rightmost vertex or a later-discovered one, so no
// descendant can absorb that key's edge and every descendant inherits
// an equal-support strict super-pattern. Early termination is disabled
// under a MaxEdges cap, where a descendant's witness could lie beyond
// the cap and pruning would change the downstream maximal set.
func (m *miner) grow(code dfscode.Code, projs []*projection) {
	if m.stop {
		return
	}
	m.stats.StatesExplored++
	if !m.checkpoint() {
		return
	}
	gids := make(map[int]bool)
	for _, p := range projs {
		gids[p.gid] = true
	}
	support := len(gids)
	atCap := m.opt.MaxEdges > 0 && len(code) >= m.opt.MaxEdges
	// Patterns at the cap are emitted unconditionally even in closed-only
	// mode: their closure witnesses may lie beyond the cap, and the
	// contract is that closure filtering drops only patterns whose
	// witness is itself in the (capped) output.
	doClosure := m.opt.ClosedOnly && !atCap
	if !doClosure {
		m.record(Pattern{Graph: code.Graph(), Code: append(dfscode.Code(nil), code...), Support: support, GraphIDs: sortedIDs(gids)})
		if m.stop || atCap {
			return
		}
	}

	rmPath := code.RightmostPath()
	rmv := rmPath[len(rmPath)-1]

	if doClosure {
		if m.extAcc == nil {
			m.extAcc = make(map[isomorph.ExtKey]occAcc)
		} else {
			clear(m.extAcc)
		}
	}

	// Collect extensions: code entry -> projections realizing it.
	exts := make(map[dfscode.EdgeCode][]*projection)
	var st embeddingState
	for pi, p := range projs {
		gc := m.db[p.gid].CSR()
		unroll(code, p, &st)
		hostRM := st.nodes[rmv]
		// Backward extensions from the rightmost vertex. Host adjacency
		// is walked as raw CSR rows, whose per-entry edge ids replace
		// the old per-graph (u,v)->eid lookup maps.
		for i := gc.RowStart[hostRM]; i < gc.RowStart[hostRM+1]; i++ {
			u, l, eid := int(gc.Nbr[i]), gc.EdgeLabels[i], int(gc.EdgeIDs[i])
			if st.usedEdge(eid) {
				continue
			}
			pIdx := st.hostIndex(u)
			if pIdx < 0 || !onPath(rmPath, pIdx) || pIdx == rmv {
				continue
			}
			ec := dfscode.EdgeCode{I: rmv, J: pIdx, LI: gc.NodeLabels[hostRM], LE: l, LJ: gc.NodeLabels[u]}
			exts[ec] = append(exts[ec], &projection{gid: p.gid, hostFrom: hostRM, hostTo: u, eid: eid, prev: p})
		}
		// Forward extensions from rightmost-path vertices.
		for _, pv := range rmPath {
			hostV := st.nodes[pv]
			for i := gc.RowStart[hostV]; i < gc.RowStart[hostV+1]; i++ {
				u, l, eid := int(gc.Nbr[i]), gc.EdgeLabels[i], int(gc.EdgeIDs[i])
				if st.hostIndex(u) >= 0 {
					continue
				}
				ec := dfscode.EdgeCode{I: pv, J: len(st.nodes), LI: gc.NodeLabels[hostV], LE: l, LJ: gc.NodeLabels[u]}
				exts[ec] = append(exts[ec], &projection{gid: p.gid, hostFrom: hostV, hostTo: u, eid: eid, prev: p})
			}
		}
		if doClosure {
			m.accountOccurrences(gc, code, &st, pi, p.gid)
		}
	}

	if doClosure {
		closed, prune := m.closureDecide(support, len(projs), rmv)
		if closed {
			m.record(Pattern{Graph: code.Graph(), Code: append(dfscode.Code(nil), code...), Support: support, GraphIDs: sortedIDs(gids)})
		} else {
			m.closedPrunes.Inc()
		}
		if m.stop {
			return
		}
		if prune {
			m.equivHits.Inc()
			return
		}
	}

	// Recurse over frequent, minimal extensions in DFS-code order.
	var order []dfscode.EdgeCode
	for ec := range exts {
		order = append(order, ec)
	}
	sort.Slice(order, func(i, j int) bool { return dfscode.CompareEdges(order[i], order[j]) < 0 })
	for _, ec := range order {
		if m.stop {
			return
		}
		m.stats.ExtensionsTried++
		childProjs := exts[ec]
		sup := make(map[int]bool)
		for _, p := range childProjs {
			sup[p.gid] = true
		}
		if len(sup) < m.opt.MinSupport {
			continue
		}
		child := append(append(dfscode.Code(nil), code...), ec)
		if !dfscode.IsMinimal(child) {
			m.stats.MinimalityRejected++
			continue
		}
		m.grow(child, childProjs)
	}
}

// accountOccurrences folds one projection's extension keys into the
// per-state accumulator. The CSR walk covers every pattern position, so
// a key exists for each distinct one-edge super-pattern realized by
// this embedding; dedup against the projection ordinal collapses
// multiple realizations inside the same embedding, dedup against the
// gid relies on projs being gid-grouped.
func (m *miner) accountOccurrences(gc graph.CSRView, code dfscode.Code, st *embeddingState, pi, gid int) {
	if n := len(gc.NodeLabels); cap(m.inv) < n {
		m.inv = make([]int32, n)
	}
	inv := m.inv[:len(gc.NodeLabels)]
	isomorph.ForEachExtension(gc, st.nodes, inv, code.HasEdge, func(k isomorph.ExtKey, _ int32) {
		a, ok := m.extAcc[k]
		if !ok {
			m.extAcc[k] = occAcc{lastGid: gid, gidCount: 1, lastProj: pi, projCount: 1}
			return
		}
		if a.lastGid != gid {
			a.lastGid = gid
			a.gidCount++
		}
		if a.lastProj != pi {
			a.lastProj = pi
			a.projCount++
		}
		m.extAcc[k] = a
	})
}

// closureDecide evaluates the accumulated keys: the pattern is closed
// iff no key is realized in all supporting graphs (an equal-support
// one-edge super-pattern exists exactly then, and any larger
// equal-support super-pattern implies a one-edge one by monotonicity
// along an edge-addition chain). prune reports an equivalent
// occurrence justifying subtree termination: an internal key realized
// by every projection whose endpoints both avoid the rightmost vertex,
// sound only without a MaxEdges cap. Both predicates are existential,
// so the random map order cannot change the outcome.
func (m *miner) closureDecide(support, numProjs, rmv int) (closed, prune bool) {
	closed = true
	for k, a := range m.extAcc {
		if a.gidCount != support {
			continue
		}
		closed = false
		if m.opt.MaxEdges == 0 && k.Internal() &&
			int(k.From) != rmv && int(k.To) != rmv && a.projCount == numProjs {
			return false, true
		}
	}
	return closed, false
}

func onPath(path []int, v int) bool {
	for _, p := range path {
		if p == v {
			return true
		}
	}
	return false
}

// Maximal filters patterns down to the maximal ones: those not strictly
// contained (as a subgraph) in any other pattern of the list. This is the
// MaximalFSM primitive of Algorithm 2, line 13.
func Maximal(patterns []Pattern) []Pattern {
	out, _ := MaximalCtl(patterns, nil)
	return out
}

// MaximalCtl is Maximal under a run-controller checkpoint: each
// containment test draws VF2 search nodes from cp, so the O(n²)
// pairwise filter cannot overshoot a deadline on a large (e.g.
// truncated mid-mine) pattern list. Once the run is stopped it returns
// the patterns already decided maximal plus the stop cause; the
// undecided tail is dropped, keeping every returned pattern genuinely
// maximal within the input list.
func MaximalCtl(patterns []Pattern, cp *runctl.Checkpoint) ([]Pattern, error) {
	// Summaries reject impossible containments on label histograms and
	// degree sequences before the quadratic pass reaches VF2; before
	// even that, containment requires the container's TID list to be a
	// subset of the containee's, an integer-compare screen over the
	// already-sorted GraphIDs (skipped when either side lacks a list).
	sums := make([]*isomorph.Summary, len(patterns))
	for i, p := range patterns {
		sums[i] = isomorph.Summarize(p.Graph)
	}
	reg := cp.Metrics()
	pairs := reg.Counter(obs.MMaximalPairs, "site", "gspan")
	rejects := reg.Counter(obs.MPrefilterRejects, "site", "maximal")
	passes := reg.Counter(obs.MPrefilterPasses, "site", "maximal")
	var out []Pattern
	for i, p := range patterns {
		maximal := true
		for j, q := range patterns {
			if i == j {
				continue
			}
			if q.Graph.NumEdges() < p.Graph.NumEdges() ||
				(q.Graph.NumEdges() == p.Graph.NumEdges() && q.Graph.NumNodes() <= p.Graph.NumNodes()) {
				continue
			}
			pairs.Inc()
			if len(p.GraphIDs) > 0 && len(q.GraphIDs) > 0 && !isomorph.SortedSubset(q.GraphIDs, p.GraphIDs) {
				rejects.Inc()
				continue
			}
			if !sums[j].CanContain(sums[i]) {
				rejects.Inc()
				continue
			}
			passes.Inc()
			hit, err := isoSubgraphCtl(p.Graph, q.Graph, cp)
			if err != nil {
				return out, err
			}
			if hit {
				maximal = false
				break
			}
		}
		if maximal {
			out = append(out, p)
		}
	}
	return out, nil
}

// contains reports whether pattern small occurs inside big.
func contains(big, small *graph.Graph) bool {
	return isoSubgraph(small, big)
}
