package gspan

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"graphsig/internal/dfscode"
	"graphsig/internal/graph"
)

func build(labels []graph.Label, edges [][3]int) *graph.Graph {
	g := graph.New(len(labels), len(edges))
	for _, l := range labels {
		g.AddNode(l)
	}
	for _, e := range edges {
		g.MustAddEdge(e[0], e[1], graph.Label(e[2]))
	}
	return g
}

func TestFromPercent(t *testing.T) {
	tests := []struct {
		pct  float64
		n    int
		want int
	}{
		{10, 100, 10},
		{0.1, 100, 1}, // floor of 1
		{50, 7, 3},
		{100, 7, 7},
	}
	for _, tc := range tests {
		if got := FromPercent(tc.pct, tc.n); got != tc.want {
			t.Errorf("FromPercent(%g,%d) = %d; want %d", tc.pct, tc.n, got, tc.want)
		}
	}
}

func TestMineSingleEdgeDatabase(t *testing.T) {
	db := []*graph.Graph{
		build([]graph.Label{1, 2}, [][3]int{{0, 1, 0}}),
		build([]graph.Label{1, 2}, [][3]int{{0, 1, 0}}),
		build([]graph.Label{1, 3}, [][3]int{{0, 1, 0}}),
	}
	res := Mine(db, Options{MinSupport: 2})
	if res.Truncated {
		t.Fatal("unexpected truncation")
	}
	if len(res.Patterns) != 1 {
		t.Fatalf("got %d patterns; want 1: %v", len(res.Patterns), res.Patterns)
	}
	p := res.Patterns[0]
	if p.Support != 2 || p.Graph.NumEdges() != 1 {
		t.Errorf("pattern = %+v", p)
	}
	if len(p.GraphIDs) != 2 || p.GraphIDs[0] != 0 || p.GraphIDs[1] != 1 {
		t.Errorf("GraphIDs = %v; want [0 1]", p.GraphIDs)
	}
}

func TestMineCommonTriangle(t *testing.T) {
	tri := func(extraLabel graph.Label) *graph.Graph {
		g := build([]graph.Label{1, 2, 3, extraLabel},
			[][3]int{{0, 1, 0}, {1, 2, 0}, {0, 2, 0}, {2, 3, 0}})
		return g
	}
	db := []*graph.Graph{tri(7), tri(8), tri(9)}
	res := Mine(db, Options{MinSupport: 3})
	// Expect every connected subgraph of the triangle: 3 single edges,
	// 3 two-edge paths... with labels 1,2,3 distinct: edges 1-2, 2-3,
	// 1-3 (3 patterns), paths of 2 edges (3 patterns), triangle (1).
	want := 7
	if len(res.Patterns) != want {
		for _, p := range res.Patterns {
			t.Logf("pattern: %s support=%d", p.Graph, p.Support)
		}
		t.Fatalf("got %d patterns; want %d", len(res.Patterns), want)
	}
	// The triangle itself must be among them with support 3.
	foundTriangle := false
	for _, p := range res.Patterns {
		if p.Graph.NumEdges() == 3 && p.Support == 3 {
			foundTriangle = true
		}
	}
	if !foundTriangle {
		t.Error("triangle not mined")
	}
}

func TestMineNoDuplicates(t *testing.T) {
	db := []*graph.Graph{
		build([]graph.Label{1, 1, 1, 1}, [][3]int{{0, 1, 0}, {1, 2, 0}, {2, 3, 0}, {3, 0, 0}}),
		build([]graph.Label{1, 1, 1, 1}, [][3]int{{0, 1, 0}, {1, 2, 0}, {2, 3, 0}, {3, 0, 0}}),
	}
	res := Mine(db, Options{MinSupport: 2})
	seen := map[string]bool{}
	for _, p := range res.Patterns {
		key := dfscode.Canonical(p.Graph)
		if seen[key] {
			t.Errorf("duplicate pattern %s", p.Graph)
		}
		seen[key] = true
	}
}

func TestMineIncludeSingleNodes(t *testing.T) {
	db := []*graph.Graph{
		build([]graph.Label{5}, nil),
		build([]graph.Label{5, 6}, [][3]int{{0, 1, 0}}),
	}
	res := Mine(db, Options{MinSupport: 2, IncludeSingleNodes: true})
	if len(res.Patterns) != 1 {
		t.Fatalf("got %d patterns; want 1 (single node 5)", len(res.Patterns))
	}
	p := res.Patterns[0]
	if p.Graph.NumNodes() != 1 || p.Graph.NodeLabel(0) != 5 || p.Support != 2 {
		t.Errorf("pattern = %+v", p)
	}
}

func TestMineMaxEdges(t *testing.T) {
	g := build([]graph.Label{1, 1, 1, 1}, [][3]int{{0, 1, 0}, {1, 2, 0}, {2, 3, 0}})
	db := []*graph.Graph{g, g.Clone()}
	res := Mine(db, Options{MinSupport: 2, MaxEdges: 2})
	for _, p := range res.Patterns {
		if p.Graph.NumEdges() > 2 {
			t.Errorf("pattern exceeds MaxEdges: %s", p.Graph)
		}
	}
}

func TestMineMaxPatternsTruncates(t *testing.T) {
	g := build([]graph.Label{1, 1, 1, 1, 1}, [][3]int{{0, 1, 0}, {1, 2, 0}, {2, 3, 0}, {3, 4, 0}})
	db := []*graph.Graph{g, g.Clone()}
	res := Mine(db, Options{MinSupport: 2, MaxPatterns: 3})
	if !res.Truncated {
		t.Error("expected truncation")
	}
	if len(res.Patterns) != 3 {
		t.Errorf("got %d patterns; want 3", len(res.Patterns))
	}
}

func TestMineDeadlineTruncates(t *testing.T) {
	g := build([]graph.Label{1, 1, 1, 1, 1}, [][3]int{{0, 1, 0}, {1, 2, 0}, {2, 3, 0}, {3, 4, 0}})
	db := []*graph.Graph{g, g.Clone()}
	res := Mine(db, Options{MinSupport: 2, Deadline: time.Now().Add(-time.Second)})
	if !res.Truncated {
		t.Error("expected truncation for past deadline")
	}
}

func TestSupportIsAntiMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	db := randDB(r, 12, 6, 2, 2, 2)
	res := Mine(db, Options{MinSupport: 2})
	bySize := map[string]Pattern{}
	for _, p := range res.Patterns {
		bySize[dfscode.Canonical(p.Graph)] = p
	}
	// Every pattern's support must be <= the support of each of its
	// single-edge sub-patterns (spot check via first edge).
	for _, p := range res.Patterns {
		if p.Graph.NumEdges() < 2 {
			continue
		}
		e := p.Graph.Edges()[0]
		sub := graph.New(2, 1)
		sub.AddNode(p.Graph.NodeLabel(e.From))
		sub.AddNode(p.Graph.NodeLabel(e.To))
		sub.MustAddEdge(0, 1, e.Label)
		parent, ok := bySize[dfscode.Canonical(sub)]
		if !ok {
			t.Errorf("sub-edge of %s not mined", p.Graph)
			continue
		}
		if p.Support > parent.Support {
			t.Errorf("anti-monotonicity violated: %s sup %d > edge sup %d", p.Graph, p.Support, parent.Support)
		}
	}
}

// bruteFrequent enumerates all connected subgraphs (>=1 edge, <= maxEdges)
// of every database graph by edge-subset enumeration and returns
// canonical -> support.
func bruteFrequent(db []*graph.Graph, minSup, maxEdges int) map[string]int {
	perGraph := make([]map[string]bool, len(db))
	for gi, g := range db {
		set := make(map[string]bool)
		edges := g.Edges()
		n := len(edges)
		for mask := 1; mask < (1 << n); mask++ {
			cnt := 0
			for b := 0; b < n; b++ {
				if mask&(1<<b) != 0 {
					cnt++
				}
			}
			if cnt > maxEdges {
				continue
			}
			nodes := map[int]bool{}
			sub := graph.New(0, cnt)
			idx := map[int]int{}
			for b := 0; b < n; b++ {
				if mask&(1<<b) == 0 {
					continue
				}
				e := edges[b]
				for _, v := range []int{e.From, e.To} {
					if !nodes[v] {
						nodes[v] = true
						idx[v] = sub.AddNode(g.NodeLabel(v))
					}
				}
				sub.MustAddEdge(idx[e.From], idx[e.To], e.Label)
			}
			if !sub.IsConnected() {
				continue
			}
			set[dfscode.Canonical(sub)] = true
		}
		perGraph[gi] = set
	}
	counts := map[string]int{}
	for _, set := range perGraph {
		for k := range set {
			counts[k]++
		}
	}
	for k, c := range counts {
		if c < minSup {
			delete(counts, k)
		}
	}
	return counts
}

func randDB(r *rand.Rand, count, maxNodes, maxExtra, nl, el int) []*graph.Graph {
	db := make([]*graph.Graph, count)
	for i := range db {
		n := 2 + r.Intn(maxNodes-1)
		g := graph.New(n, n)
		for v := 0; v < n; v++ {
			g.AddNode(graph.Label(r.Intn(nl)))
		}
		for v := 1; v < n; v++ {
			g.MustAddEdge(r.Intn(v), v, graph.Label(r.Intn(el)))
		}
		for e := 0; e < r.Intn(maxExtra+1); e++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v && !g.HasEdge(u, v) {
				g.MustAddEdge(u, v, graph.Label(r.Intn(el)))
			}
		}
		g.ID = i
		db[i] = g
	}
	return db
}

func TestPropertyMineMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		db := randDB(rr, 3+rr.Intn(4), 5, 2, 2, 2)
		minSup := 1 + rr.Intn(3)
		const maxEdges = 4
		want := bruteFrequent(db, minSup, maxEdges)
		res := Mine(db, Options{MinSupport: minSup, MaxEdges: maxEdges})
		got := map[string]int{}
		for _, p := range res.Patterns {
			got[dfscode.Canonical(p.Graph)] = p.Support
		}
		if len(got) != len(want) {
			t.Logf("pattern count %d != %d (minSup=%d)", len(got), len(want), minSup)
			return false
		}
		for k, sup := range want {
			if got[k] != sup {
				t.Logf("support mismatch for %s: got %d want %d", k, got[k], sup)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: r}); err != nil {
		t.Error(err)
	}
}

func TestMaximal(t *testing.T) {
	db := []*graph.Graph{
		build([]graph.Label{1, 2, 3}, [][3]int{{0, 1, 0}, {1, 2, 0}}),
		build([]graph.Label{1, 2, 3}, [][3]int{{0, 1, 0}, {1, 2, 0}}),
	}
	res := Mine(db, Options{MinSupport: 2})
	max := Maximal(res.Patterns)
	if len(max) != 1 {
		for _, p := range max {
			t.Logf("maximal: %s", p.Graph)
		}
		t.Fatalf("got %d maximal patterns; want 1", len(max))
	}
	if max[0].Graph.NumEdges() != 2 {
		t.Errorf("maximal pattern = %s; want the full path", max[0].Graph)
	}
}

func TestMaximalKeepsIncomparable(t *testing.T) {
	// Two graphs share edge 1-2 and edge 3-4 but never together, so both
	// single edges are maximal at support 2.
	db := []*graph.Graph{
		build([]graph.Label{1, 2, 3, 4}, [][3]int{{0, 1, 0}, {2, 3, 0}}),
		build([]graph.Label{1, 2, 3, 4}, [][3]int{{0, 1, 0}, {2, 3, 0}}),
	}
	res := Mine(db, Options{MinSupport: 2})
	max := Maximal(res.Patterns)
	if len(max) != 2 {
		t.Fatalf("got %d maximal; want 2", len(max))
	}
}

func TestMineStats(t *testing.T) {
	g := build([]graph.Label{1, 1, 1, 1}, [][3]int{{0, 1, 0}, {1, 2, 0}, {2, 3, 0}, {3, 0, 0}})
	db := []*graph.Graph{g, g.Clone()}
	res := Mine(db, Options{MinSupport: 2})
	if res.Stats.StatesExplored == 0 {
		t.Error("no states counted")
	}
	if res.Stats.StatesExplored < len(res.Patterns) {
		t.Error("fewer states than patterns")
	}
	// The symmetric 4-cycle forces duplicate DFS-code states.
	if res.Stats.MinimalityRejected == 0 {
		t.Error("expected minimality rejections on a symmetric cycle")
	}
	if res.Stats.ExtensionsTried < res.Stats.StatesExplored-1 {
		t.Errorf("stats inconsistent: %+v", res.Stats)
	}
}
