package gspan

import (
	"graphsig/internal/graph"
	"graphsig/internal/isomorph"
	"graphsig/internal/runctl"
)

// isoSubgraph wraps the isomorph package so that the maximality filter
// stays testable in isolation.
func isoSubgraph(pattern, target *graph.Graph) bool {
	return isomorph.SubgraphIsomorphic(pattern, target)
}

// isoSubgraphCtl is isoSubgraph drawing VF2 search nodes from cp.
func isoSubgraphCtl(pattern, target *graph.Graph, cp *runctl.Checkpoint) (bool, error) {
	return isomorph.SubgraphIsomorphicCtl(pattern, target, cp)
}
