package gspan

import (
	"graphsig/internal/graph"
	"graphsig/internal/isomorph"
)

// isoSubgraph wraps the isomorph package so that the maximality filter
// stays testable in isolation.
func isoSubgraph(pattern, target *graph.Graph) bool {
	return isomorph.SubgraphIsomorphic(pattern, target)
}
