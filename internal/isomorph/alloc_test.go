package isomorph_test

// Steady-state allocation contract of the arena'd VF2: once the pooled
// match state is warm and the graphs are frozen, the existence and
// count entry points must not touch the heap. This is what makes the
// group-mine support loops scale — the pre-CSR matcher allocated its
// full search state on every call.

import (
	"testing"

	"graphsig/internal/chem"
	"graphsig/internal/graph"
	"graphsig/internal/isomorph"
)

func TestVF2SteadyStateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation defeats sync.Pool; alloc counts are meaningless under -race")
	}
	gen := chem.NewGenerator(11)
	pattern := chem.SbCore().Freeze()
	targets := make([]*graph.Graph, 8)
	for i := range targets {
		targets[i] = gen.Molecule().Freeze()
	}
	// Warm the pool and force the lazy CSR builds outside the
	// measurement window.
	for _, tg := range targets {
		isomorph.SubgraphIsomorphic(pattern, tg)
		isomorph.CountEmbeddings(pattern, tg, 0)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		for _, tg := range targets {
			isomorph.SubgraphIsomorphic(pattern, tg)
		}
	}); allocs != 0 {
		t.Errorf("SubgraphIsomorphic: %v allocs per run over %d frozen targets; want 0", allocs, len(targets))
	}
	if allocs := testing.AllocsPerRun(200, func() {
		for _, tg := range targets {
			isomorph.CountEmbeddings(pattern, tg, 0)
		}
	}); allocs != 0 {
		t.Errorf("CountEmbeddings: %v allocs per run over %d frozen targets; want 0", allocs, len(targets))
	}
}
