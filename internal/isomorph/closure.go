package isomorph

import "graphsig/internal/graph"

// This file holds the closure-check fast paths shared by the closed-
// pattern miners (internal/gspan, internal/fsg): enumeration of the
// one-edge extensions an embedding realizes, walked directly over the
// host's CSR rows, and the sorted TID-subset screen the maximality
// sweeps use to reject containment pairs before VF2.

// ExtKey identifies a one-edge growth of an embedded pattern,
// independent of the host edge realizing it: either an internal edge
// between existing pattern nodes From < To, or a pendant edge to a
// fresh node, encoded as To = -1 - nodeLabel (so To < 0 never collides
// with a node index). Equal keys on the same pattern describe the same
// super-pattern, which is what makes per-key occurrence accounting a
// closure test: a pattern is non-closed exactly when some key is
// realized in every supporting graph (CloseGraph, Yan & Han KDD 2003).
type ExtKey struct {
	From  int32
	To    int32
	Label graph.Label
}

// Internal reports whether the key adds an edge between two existing
// pattern nodes (as opposed to a pendant edge to a fresh node).
func (k ExtKey) Internal() bool { return k.To >= 0 }

// PendantLabel returns the fresh node's label encoded in a pendant key.
func (k ExtKey) PendantLabel() graph.Label { return graph.Label(-1 - k.To) }

// PendantTo encodes a fresh-node label into ExtKey.To.
func PendantTo(l graph.Label) int32 { return -1 - int32(l) }

// ForEachExtension reports every one-edge growth of a pattern realized
// inside a host graph by the given embedding: an edge between two
// mapped host nodes whose pattern nodes are not yet adjacent, or an
// edge from a mapped host node to an unmapped neighbor. nodes maps
// pattern node -> host node. inv is caller-owned scratch with at least
// gc.NumNodes() entries, all zero on entry; it is restored to all zero
// before returning (the helper stores pattern index + 1, so zero means
// unmapped). hasPatternEdge reports pattern adjacency; it is consulted
// only for mapped pairs pv < pu, and an internal key is emitted exactly
// once per realizing host edge. emit receives the key plus the host
// node realizing its far end — for a pendant key the fresh neighbor
// (which extends the embedding to one of the candidate), for an
// internal key the mapped node of To. Host adjacency is walked as raw
// CSR rows — this is the per-embedding hot loop of both closure checks
// and fsg candidate generation.
func ForEachExtension(gc graph.CSRView, nodes []int, inv []int32, hasPatternEdge func(pv, pu int) bool, emit func(k ExtKey, hostTo int32)) {
	for pv, hv := range nodes {
		inv[hv] = int32(pv) + 1
	}
	for pv, hv := range nodes {
		for i := gc.RowStart[hv]; i < gc.RowStart[hv+1]; i++ {
			hu, l := gc.Nbr[i], gc.EdgeLabels[i]
			if pu := inv[hu] - 1; pu >= 0 {
				// Internal edge between mapped nodes, if absent in the
				// pattern; each undirected host edge is visited from both
				// endpoints, so the pv < pu orientation dedups it.
				if int32(pv) > pu || hasPatternEdge(pv, int(pu)) {
					continue
				}
				emit(ExtKey{From: int32(pv), To: pu, Label: l}, hu)
			} else {
				emit(ExtKey{From: int32(pv), To: PendantTo(gc.NodeLabels[hu]), Label: l}, hu)
			}
		}
	}
	for _, hv := range nodes {
		inv[hv] = 0
	}
}

// SortedSubset reports whether every element of sub occurs in super;
// both must be sorted ascending. The maximality sweeps use it as a
// necessary-condition screen: pattern p contained in pattern q forces
// support(q) ⊆ support(p), so q's TID list not being a subset of p's
// refutes containment without touching VF2.
func SortedSubset(sub, super []int) bool {
	if len(sub) > len(super) {
		return false
	}
	j := 0
	for _, v := range sub {
		for j < len(super) && super[j] < v {
			j++
		}
		if j >= len(super) || super[j] != v {
			return false
		}
		j++
	}
	return true
}
