package isomorph

import (
	"sort"
	"testing"

	"graphsig/internal/graph"
)

func TestSortedSubset(t *testing.T) {
	cases := []struct {
		name       string
		sub, super []int
		want       bool
	}{
		{"empty sub of empty", nil, nil, true},
		{"empty sub of any", nil, []int{1, 2}, true},
		{"nonempty sub of empty", []int{1}, nil, false},
		{"equal", []int{1, 3, 5}, []int{1, 3, 5}, true},
		{"strict subset", []int{3, 5}, []int{1, 3, 5, 9}, true},
		{"missing head", []int{0, 3}, []int{1, 3, 5}, false},
		{"missing tail", []int{3, 9}, []int{1, 3, 5}, false},
		{"missing middle", []int{1, 4, 5}, []int{1, 3, 5}, false},
		{"longer than super", []int{1, 2, 3}, []int{1, 2}, false},
	}
	for _, tc := range cases {
		if got := SortedSubset(tc.sub, tc.super); got != tc.want {
			t.Errorf("%s: SortedSubset(%v, %v) = %v, want %v", tc.name, tc.sub, tc.super, tc.want, got)
		}
	}
}

// TestForEachExtension embeds a 2-edge path pattern into a labeled host
// and checks the exact extension-key set: internal edges emitted once
// with From < To, pendant edges carrying the fresh node's label, and
// pattern edges and their images never reported.
func TestForEachExtension(t *testing.T) {
	// Pattern: 0(a)-1(b)-2(a), a path.
	pattern := build([]graph.Label{0, 1, 0}, [][3]int{{0, 1, 5}, {1, 2, 5}})
	// Host: same path 0-1-2, plus closing edge 2-0 (internal candidate)
	// and a pendant node 3(c) off host node 1.
	host := build([]graph.Label{0, 1, 0, 2}, [][3]int{{0, 1, 5}, {1, 2, 5}, {2, 0, 7}, {1, 3, 9}})

	nodes := []int{0, 1, 2} // identity embedding
	inv := make([]int32, host.NumNodes())
	var got []ExtKey
	hostTo := map[ExtKey]int32{}
	ForEachExtension(host.CSR(), nodes, inv, func(pv, pu int) bool {
		return pattern.EdgeLabel(pv, pu) != graph.NoLabel
	}, func(k ExtKey, hu int32) {
		got = append(got, k)
		hostTo[k] = hu
	})

	want := []ExtKey{
		{From: 0, To: 2, Label: 7},            // closing the triangle, once
		{From: 1, To: PendantTo(2), Label: 9}, // pendant c off pattern node 1
	}
	sortKeys := func(ks []ExtKey) {
		sort.Slice(ks, func(i, j int) bool {
			a, b := ks[i], ks[j]
			if a.From != b.From {
				return a.From < b.From
			}
			if a.To != b.To {
				return a.To < b.To
			}
			return a.Label < b.Label
		})
	}
	sortKeys(got)
	sortKeys(want)
	if len(got) != len(want) {
		t.Fatalf("keys = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("keys = %v, want %v", got, want)
		}
	}
	for i, v := range inv {
		if v != 0 {
			t.Fatalf("inv[%d] = %d after return, want 0 (scratch must be restored)", i, v)
		}
	}
	if k := want[1]; k.Internal() || k.PendantLabel() != 2 {
		t.Fatalf("pendant key %+v: Internal()=%v PendantLabel()=%d", k, k.Internal(), k.PendantLabel())
	}
	if k := want[0]; !k.Internal() {
		t.Fatalf("internal key %+v reported as pendant", k)
	}
	// The realizing host nodes: internal key lands on the mapped image
	// of To, the pendant key on the fresh neighbor.
	if hu := hostTo[want[0]]; hu != 2 {
		t.Fatalf("internal key hostTo = %d, want 2", hu)
	}
	if hu := hostTo[want[1]]; hu != 3 {
		t.Fatalf("pendant key hostTo = %d, want 3", hu)
	}
}

// TestForEachExtensionMatchesEmbeddings cross-checks the CSR walk on a
// random-ish corpus: for every embedding of a pattern, each emitted
// internal key must correspond to a host edge between mapped nodes that
// the pattern lacks, and each pendant key to an unmapped neighbor.
func TestForEachExtensionMatchesEmbeddings(t *testing.T) {
	pattern := build([]graph.Label{1, 1}, [][3]int{{0, 1, 0}})
	host := build([]graph.Label{1, 1, 1, 2}, [][3]int{{0, 1, 0}, {1, 2, 0}, {2, 0, 3}, {2, 3, 1}})
	inv := make([]int32, host.NumNodes())
	hc := host.CSR()
	total := 0
	ForEachEmbedding(pattern, host, func(mapping []int) bool {
		ForEachExtension(hc, mapping, inv, func(pv, pu int) bool {
			return pattern.EdgeLabel(pv, pu) != graph.NoLabel
		}, func(k ExtKey, hu int32) {
			total++
			if k.Internal() {
				if int(hu) != mapping[k.To] {
					t.Fatalf("internal key %+v hostTo = %d, want mapped image %d", k, hu, mapping[k.To])
				}
				hu, hv := mapping[k.From], mapping[k.To]
				if host.EdgeLabel(hu, hv) != k.Label {
					t.Fatalf("internal key %+v has no realizing host edge %d-%d", k, hu, hv)
				}
				if pattern.EdgeLabel(int(k.From), int(k.To)) != graph.NoLabel {
					t.Fatalf("internal key %+v duplicates a pattern edge", k)
				}
				if k.From >= k.To {
					t.Fatalf("internal key %+v not oriented From < To", k)
				}
			} else if k.PendantLabel() < 0 {
				t.Fatalf("pendant key %+v decodes to a negative label", k)
			}
		})
		return true
	})
	if total == 0 {
		t.Fatal("no extension keys emitted over any embedding")
	}
}
