package isomorph

import (
	"sort"

	"graphsig/internal/graph"
	"graphsig/internal/obs"
	"graphsig/internal/runctl"
)

// Summary is a cheap structural digest of a labeled graph: node and
// edge counts, per-node-label descending degree sequences, and
// per-(sorted node labels, edge label) edge counts. Comparing two
// summaries yields a necessary condition for subgraph monomorphism, so
// a Summary mismatch rejects a VF2 candidate without any search.
type Summary struct {
	numNodes int
	numEdges int
	// degrees maps a node label to that label class's degree sequence,
	// sorted descending.
	degrees map[graph.Label][]int
	// edges counts edges per (min node label, max node label, edge
	// label) triple — the same key edgeKey produces.
	edges map[[3]int]int
}

// Summarize computes g's Summary from its frozen CSR view: degrees are
// rowStart deltas and labels come straight from the flat label arrays.
// Cost is O(nodes + edges) plus the per-label sorts; summaries are
// immutable afterwards and safe to share across goroutines.
func Summarize(g *graph.Graph) *Summary {
	c := g.CSR()
	s := &Summary{
		numNodes: len(c.NodeLabels),
		numEdges: g.NumEdges(),
		degrees:  make(map[graph.Label][]int),
		edges:    make(map[[3]int]int),
	}
	for v, l := range c.NodeLabels {
		s.degrees[l] = append(s.degrees[l], int(c.RowStart[v+1]-c.RowStart[v]))
	}
	for _, seq := range s.degrees {
		sort.Sort(sort.Reverse(sort.IntSlice(seq)))
	}
	for _, e := range g.Edges() {
		la, lb := int(c.NodeLabels[e.From]), int(c.NodeLabels[e.To])
		if la > lb {
			la, lb = lb, la
		}
		s.edges[[3]int{la, lb, int(e.Label)}]++
	}
	return s
}

// CanContain reports whether a graph with target summary t could
// contain a graph with pattern summary p as a subgraph monomorphism.
// False means provably impossible; true means VF2 must decide.
//
// Soundness: every check is a consequence of an embedding existing. An
// injective label-preserving node map that preserves edges (with
// labels) implies (1) the target has at least as many nodes and edges;
// (2) for each node label ℓ, each pattern node of label ℓ maps to a
// distinct target node of label ℓ whose degree is at least the pattern
// node's degree (every pattern edge at that node maps to a distinct
// target edge), so the i-th largest ℓ-degree in the pattern is bounded
// by the i-th largest ℓ-degree in the target; (3) each pattern edge
// maps to a distinct target edge with the same (node labels, edge
// label) triple, so per-triple counts are dominated. None of these can
// fail while an embedding exists, so a reject never drops a true match.
func (t *Summary) CanContain(p *Summary) bool {
	if p.numNodes > t.numNodes || p.numEdges > t.numEdges {
		return false
	}
	for l, pd := range p.degrees {
		td := t.degrees[l]
		if len(pd) > len(td) {
			return false
		}
		for i, d := range pd {
			if d > td[i] {
				return false
			}
		}
	}
	for k, n := range p.edges {
		if n > t.edges[k] {
			return false
		}
	}
	return true
}

// Prefilter holds one Summary per graph of a database, computed once,
// so repeated support queries against the same database pay the digest
// cost a single time. The zero value is unusable; construct with
// NewPrefilter. A Prefilter is safe for concurrent use.
type Prefilter struct {
	db   []*graph.Graph
	sums []*Summary

	// rejects/passes count prefilter outcomes; nil (no-op) until Meter.
	rejects *obs.Counter
	passes  *obs.Counter
}

// NewPrefilter summarizes every graph in db. The Prefilter keeps the
// slice (not copies of the graphs); the database must not be mutated
// while the Prefilter is in use.
func NewPrefilter(db []*graph.Graph) *Prefilter {
	pf := &Prefilter{db: db, sums: make([]*Summary, len(db))}
	for i, g := range db {
		pf.sums[i] = Summarize(g)
	}
	return pf
}

// Meter attaches obs counters for prefilter outcomes under the given
// site label (e.g. "verify", "maximal", "gindex"). Nil-safe on both
// receiver and registry; returns the receiver for chaining.
func (pf *Prefilter) Meter(reg *obs.Registry, site string) *Prefilter {
	if pf == nil || reg == nil {
		return pf
	}
	pf.rejects = reg.Counter(obs.MPrefilterRejects, "site", site)
	pf.passes = reg.Counter(obs.MPrefilterPasses, "site", site)
	return pf
}

func (pf *Prefilter) record(passed bool) {
	if passed {
		pf.passes.Inc()
	} else {
		pf.rejects.Inc()
	}
}

// Summary returns the precomputed summary of database graph i.
func (pf *Prefilter) Summary(i int) *Summary { return pf.sums[i] }

// SupportCtl counts the graphs containing pattern, as
// isomorph.SupportCtl, but rejects impossible targets on summaries
// before entering VF2. On a non-nil error the count is the lower bound
// over the prefix examined.
func (pf *Prefilter) SupportCtl(pattern *graph.Graph, cp *runctl.Checkpoint) (int, error) {
	ps := Summarize(pattern)
	n := 0
	for i, g := range pf.db {
		if !pf.sums[i].CanContain(ps) {
			pf.record(false)
			continue
		}
		pf.record(true)
		found, err := SubgraphIsomorphicCtl(pattern, g, cp)
		if err != nil {
			return n, err
		}
		if found {
			n++
		}
	}
	return n, nil
}

// Support is SupportCtl without a checkpoint.
func (pf *Prefilter) Support(pattern *graph.Graph) int {
	n, _ := pf.SupportCtl(pattern, nil)
	return n
}

// SupportingIDs returns, in database order, the indices of graphs
// containing pattern, as isomorph.SupportingIDs with the summary
// reject applied first.
func (pf *Prefilter) SupportingIDs(pattern *graph.Graph) []int {
	ps := Summarize(pattern)
	var ids []int
	for i, g := range pf.db {
		if !pf.sums[i].CanContain(ps) {
			pf.record(false)
			continue
		}
		pf.record(true)
		if SubgraphIsomorphic(pattern, g) {
			ids = append(ids, i)
		}
	}
	return ids
}
