package isomorph_test

// Property tests for the summary prefilter over the CSR core.
// Soundness — a summary reject implies VF2 would also say no — is the
// load-bearing property: an unsound prefilter silently drops supporting
// graphs and corrupts p-values. The rejection-rate floor keeps the
// prefilter useful: a regression that makes CanContain vacuously true
// stays sound but would send every pair back into exponential search.

import (
	"math/rand"
	"testing"

	"graphsig/internal/chem"
	"graphsig/internal/graph"
	"graphsig/internal/isomorph"
)

// randomLabeledGraph grows a connected random graph: a spanning tree
// plus extra edges, labels drawn from a small alphabet so collisions
// (and therefore real containments) actually happen.
func randomLabeledGraph(rng *rand.Rand, nodes, extraEdges int) *graph.Graph {
	g := graph.New(nodes, nodes-1+extraEdges)
	for v := 0; v < nodes; v++ {
		g.AddNode(graph.Label(rng.Intn(3)))
	}
	for v := 1; v < nodes; v++ {
		g.MustAddEdge(rng.Intn(v), v, graph.Label(rng.Intn(2)))
	}
	for i := 0; i < extraEdges; i++ {
		u, v := rng.Intn(nodes), rng.Intn(nodes)
		if u != v {
			_ = g.AddEdge(u, v, graph.Label(rng.Intn(2)))
		}
	}
	return g
}

// TestPrefilterSoundness checks CanContain never rejects a pair VF2
// accepts, over a randomized pattern/target corpus plus guaranteed-
// positive pairs (a graph against its own supergraph).
func TestPrefilterSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	accepted := 0
	for trial := 0; trial < 2000; trial++ {
		pattern := randomLabeledGraph(rng, 2+rng.Intn(4), rng.Intn(2))
		target := randomLabeledGraph(rng, 3+rng.Intn(8), rng.Intn(4))
		if trial%4 == 0 {
			// Force positives: embed the pattern verbatim in the target.
			base := target.NumNodes()
			for v := 0; v < pattern.NumNodes(); v++ {
				target.AddNode(pattern.NodeLabel(v))
			}
			for _, e := range pattern.Edges() {
				target.MustAddEdge(base+e.From, base+e.To, e.Label)
			}
			target.MustAddEdge(0, base, 0)
		}
		match := isomorph.SubgraphIsomorphic(pattern, target)
		pass := isomorph.Summarize(target).CanContain(isomorph.Summarize(pattern))
		if match && !pass {
			t.Fatalf("unsound reject: VF2 accepts but summary rejects\npattern %s\ntarget %s", pattern, target)
		}
		if match {
			accepted++
		}
	}
	if accepted < 100 {
		t.Fatalf("only %d VF2-positive pairs in 2000 trials; soundness check is near-vacuous", accepted)
	}
}

// TestPrefilterRejectionFloor pins the prefilter's selectivity on a
// Fig-10-shaped workload: planted-core patterns and cut windows screened
// against generator molecules. At least half of the true negatives must
// be rejected on summaries alone — the measured rate is far higher, so
// the floor only catches wholesale regressions.
func TestPrefilterRejectionFloor(t *testing.T) {
	gen := chem.NewGenerator(5)
	db := make([]*graph.Graph, 60)
	for i := range db {
		db[i] = gen.Molecule()
	}
	var patterns []*graph.Graph
	patterns = append(patterns, chem.SbCore())
	other := chem.NewGenerator(6)
	for i := 0; i < 12; i++ {
		m := other.Molecule()
		patterns = append(patterns, m.CutGraph(i%m.NumNodes(), 2))
	}

	sums := make([]*isomorph.Summary, len(db))
	for i, g := range db {
		sums[i] = isomorph.Summarize(g)
	}
	negatives, rejected := 0, 0
	for _, p := range patterns {
		ps := isomorph.Summarize(p)
		for i, g := range db {
			if isomorph.SubgraphIsomorphic(p, g) {
				continue
			}
			negatives++
			if !sums[i].CanContain(ps) {
				rejected++
			}
		}
	}
	if negatives == 0 {
		t.Fatal("every pattern matched every molecule; rejection rate undefined")
	}
	rate := float64(rejected) / float64(negatives)
	t.Logf("prefilter rejected %d of %d true negatives (%.1f%%)", rejected, negatives, 100*rate)
	if rate < 0.5 {
		t.Errorf("rejection rate %.2f below floor 0.50: prefilter lost its selectivity", rate)
	}
}
