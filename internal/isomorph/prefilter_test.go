package isomorph

import (
	"math/rand"
	"testing"

	"graphsig/internal/graph"
	"graphsig/internal/obs"
)

// TestCanContainNeverRejectsTrueEmbedding is the soundness property:
// whenever VF2 finds pattern in target, the summary check must pass.
func TestCanContainNeverRejectsTrueEmbedding(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 400; trial++ {
		target := randGraph(rng, 4+rng.Intn(8), rng.Intn(6), 3, 2)
		pattern := randGraph(rng, 2+rng.Intn(5), rng.Intn(3), 3, 2)
		embeds := SubgraphIsomorphic(pattern, target)
		canContain := Summarize(target).CanContain(Summarize(pattern))
		if embeds && !canContain {
			t.Fatalf("trial %d: summary rejected a pattern VF2 embeds (pattern %d nodes/%d edges, target %d/%d)",
				trial, pattern.NumNodes(), pattern.NumEdges(), target.NumNodes(), target.NumEdges())
		}
	}
}

// TestPrefilterSupportMatchesPlain checks the filtered support paths
// agree exactly with the unfiltered ones over random databases.
func TestPrefilterSupportMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		db := make([]*graph.Graph, 12)
		for i := range db {
			db[i] = randGraph(rng, 3+rng.Intn(8), rng.Intn(5), 3, 2)
		}
		pf := NewPrefilter(db)
		pattern := randGraph(rng, 2+rng.Intn(5), rng.Intn(3), 3, 2)

		if got, want := pf.Support(pattern), Support(pattern, db); got != want {
			t.Fatalf("trial %d: prefiltered support %d, plain %d", trial, got, want)
		}
		got, want := pf.SupportingIDs(pattern), SupportingIDs(pattern, db)
		if len(got) != len(want) {
			t.Fatalf("trial %d: supporting ids %v vs %v", trial, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: supporting ids %v vs %v", trial, got, want)
			}
		}
	}
}

// TestCanContainRejects pins down each reject axis with a hand-built
// case: degree dominance, edge-triple counts, and true containment.
func TestCanContainRejects(t *testing.T) {
	// Target: path A-B-A (labels 0,1,0), edges labeled 0.
	target := graph.New(3, 2)
	target.AddNode(0)
	target.AddNode(1)
	target.AddNode(0)
	target.MustAddEdge(0, 1, 0)
	target.MustAddEdge(1, 2, 0)
	ts := Summarize(target)

	// Same path with nodes listed in a different order: containment is
	// order-independent, so it must pass.
	hub := graph.New(3, 2)
	hub.AddNode(0)
	hub.AddNode(0)
	hub.AddNode(1)
	hub.MustAddEdge(0, 2, 0)
	hub.MustAddEdge(1, 2, 0)
	if !ts.CanContain(Summarize(hub)) {
		t.Fatal("the path itself (relabeled order) must pass")
	}
	// Degree-2 node of label 0 — target's label-0 degrees are [1,1].
	wedge := graph.New(3, 2)
	wedge.AddNode(1)
	wedge.AddNode(1)
	wedge.AddNode(0)
	wedge.MustAddEdge(0, 2, 0)
	wedge.MustAddEdge(1, 2, 0)
	if ts.CanContain(Summarize(wedge)) {
		t.Fatal("degree dominance should reject a degree-2 label-0 hub against A-B-A")
	}

	// Edge labeled 1 where the target only has label-0 edges.
	relabeled := graph.New(2, 1)
	relabeled.AddNode(0)
	relabeled.AddNode(1)
	relabeled.MustAddEdge(0, 1, 1)
	if ts.CanContain(Summarize(relabeled)) {
		t.Fatal("edge-triple counts should reject an edge label absent from the target")
	}

	// The target trivially contains itself.
	if !ts.CanContain(ts) {
		t.Fatal("a summary must contain itself")
	}

	// Single A-B edge: genuinely contained, must pass.
	sub := graph.New(2, 1)
	sub.AddNode(0)
	sub.AddNode(1)
	sub.MustAddEdge(0, 1, 0)
	if !ts.CanContain(Summarize(sub)) {
		t.Fatal("a true subgraph's summary must pass")
	}
}

// TestPrefilterMeter checks reject/pass counters land in the registry
// under the site label.
func TestPrefilterMeter(t *testing.T) {
	target := graph.New(2, 1)
	target.AddNode(0)
	target.AddNode(1)
	target.MustAddEdge(0, 1, 0)

	big := graph.New(3, 3) // triangle: cannot fit in a single edge
	big.AddNode(0)
	big.AddNode(1)
	big.AddNode(2)
	big.MustAddEdge(0, 1, 0)
	big.MustAddEdge(1, 2, 0)
	big.MustAddEdge(2, 0, 0)

	reg := obs.NewRegistry()
	pf := NewPrefilter([]*graph.Graph{target}).Meter(reg, "test")
	if n := pf.Support(big); n != 0 {
		t.Fatalf("support of triangle in edge = %d, want 0", n)
	}
	if n := pf.Support(target); n != 1 {
		t.Fatalf("support of edge in itself = %d, want 1", n)
	}
	snap := reg.Snapshot()
	if got := snap.CounterValue(obs.MPrefilterRejects, "site", "test"); got != 1 {
		t.Fatalf("rejects = %d, want 1", got)
	}
	if got := snap.CounterValue(obs.MPrefilterPasses, "site", "test"); got != 1 {
		t.Fatalf("passes = %d, want 1", got)
	}
}
