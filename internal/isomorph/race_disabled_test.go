//go:build !race

package isomorph_test

const raceEnabled = false
