//go:build race

package isomorph_test

// The race detector instruments sync.Pool and every allocation site,
// so AllocsPerRun counts are meaningless under -race; the zero-alloc
// contract tests skip themselves.
const raceEnabled = true
