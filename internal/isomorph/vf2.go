// Package isomorph implements labeled (sub)graph isomorphism testing in
// the style of the VF2 algorithm. It is the correctness workhorse behind
// support counting in the miners, pattern containment in the classifiers,
// and maximality filtering in GraphSig's last phase.
//
// All matching is label-aware: a pattern node may only map to a target
// node with an identical label, and a pattern edge to a target edge with
// an identical label. Subgraph isomorphism here means *subgraph
// monomorphism onto a general (not necessarily induced) subgraph*, the
// semantics used by gSpan/FSG support counting: every pattern edge must be
// present in the target, but the target may have extra edges between
// mapped nodes.
//
// The matcher runs directly on the graphs' frozen CSR views: the hot
// loops index flat rowStart/neighbor/edge-label arrays, candidate "used"
// sets are bitsets, and all mutable search state lives in a
// sync.Pool-backed scratch arena reused across calls, so steady-state
// matching performs zero heap allocations. The search-tree shape —
// matching order, anchor choice, candidate iteration order, and the
// per-node checkpoint charge — is byte-identical to the pre-CSR
// implementation preserved in internal/graph/reference, which the
// differential fuzz harness enforces.
package isomorph

import (
	"sync"

	"graphsig/internal/graph"
	"graphsig/internal/runctl"
)

// matchState is one VF2 run's scratch arena: the CSR views of both
// graphs plus every mutable array the search needs. States are pooled
// and fully reset (sized to the current pair, contents reinitialized)
// on acquisition, so a recycled state never leaks a previous search's
// mapping.
type matchState struct {
	p, t graph.CSRView
	// core maps pattern node -> target node (-1 when unmapped). It is
	// also the mapping slice handed to emit, so its element type stays
	// int for API compatibility.
	core []int
	// used marks target nodes already claimed by the mapping, one bit
	// per node.
	used bitset
	// order is the matching order of pattern nodes (connected order).
	// orderKey remembers which pattern it was computed for — the first
	// element of the pattern CSR's RowStart, whose backing array is
	// immutable and unique per frozen graph — so Support-style loops
	// running one pattern against a whole database skip the BFS on
	// every call after the first.
	order    []int32
	orderKey *int32
	// seen/queue are connectedOrder's BFS scratch.
	seen  bitset
	queue []int32
	// limit, if > 0, bounds the number of embeddings enumerated.
	limit int
	count int
	// cp, when non-nil, checkpoints every search-tree node: the run is
	// abandoned (err set) when the shared controller trips. VF2 has no
	// polynomial bound on pathological pattern/target pairs, so every
	// long-running caller should pass one.
	cp  *runctl.Checkpoint
	err error
	// emit receives each complete mapping; return false to stop. A nil
	// emit means existence/count-only mode, which keeps the hottest
	// entry points (SubgraphIsomorphic, CountEmbeddings) free of
	// closure allocations.
	emit func(mapping []int) bool
}

// bitset is a fixed-capacity bit vector over dense node ids.
type bitset []uint64

func (b bitset) set(i int32)      { b[i>>6] |= 1 << (uint(i) & 63) }
func (b bitset) clear(i int32)    { b[i>>6] &^= 1 << (uint(i) & 63) }
func (b bitset) has(i int32) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// grown returns b resized to hold n bits with every bit zero.
func (b bitset) grown(n int) bitset {
	words := (n + 63) / 64
	if cap(b) < words {
		return make(bitset, words)
	}
	b = b[:words]
	for i := range b {
		b[i] = 0
	}
	return b
}

// statePool recycles match states across calls. One Get/Put pair per
// VF2 invocation; a worker hammering Support over a database reuses the
// same arena for every graph, so the steady-state match loop allocates
// nothing.
var statePool = sync.Pool{New: func() any { return new(matchState) }}

// acquireState readies a pooled state for the given pair. It returns
// nil when the search is statically impossible or trivially satisfied
// (np == 0), with the trivial verdict in matched. Callers running under
// a run controller set s.cp before match; the search charges one
// checkpoint step per search-tree node.
func acquireState(pattern, target *graph.Graph, limit int, emit func([]int) bool) (s *matchState, matched bool) {
	np := pattern.NumNodes()
	if np == 0 {
		if emit != nil {
			emit(nil)
		}
		return nil, true
	}
	if np > target.NumNodes() || pattern.NumEdges() > target.NumEdges() {
		return nil, false
	}
	s = statePool.Get().(*matchState)
	s.p, s.t = pattern.CSR(), target.CSR()
	if cap(s.core) < np {
		s.core = make([]int, np)
	}
	s.core = s.core[:np]
	for i := range s.core {
		s.core[i] = -1
	}
	s.used = s.used.grown(target.NumNodes())
	if s.orderKey != &s.p.RowStart[0] {
		s.connectedOrder()
		s.orderKey = &s.p.RowStart[0]
	}
	s.limit = limit
	s.count = 0
	s.cp = nil
	s.err = nil
	s.emit = emit
	return s, false
}

// release returns a state to the pool. Views and callbacks are dropped
// so a pooled state never pins a graph or a caller's closure; the
// scratch arrays stay for reuse.
func (s *matchState) release() {
	s.p, s.t = graph.CSRView{}, graph.CSRView{}
	s.cp = nil
	s.emit = nil
	statePool.Put(s)
}

// SubgraphIsomorphic reports whether pattern occurs in target (labeled
// subgraph monomorphism with injective node mapping).
func SubgraphIsomorphic(pattern, target *graph.Graph) bool {
	found, _ := SubgraphIsomorphicCtl(pattern, target, nil)
	return found
}

// SubgraphIsomorphicCtl is SubgraphIsomorphic under a run-controller
// checkpoint: the search counts one checkpoint step per search-tree
// node and abandons with the stop cause when the controller trips. On a
// non-nil error the boolean is meaningless (the search was cut short,
// not exhausted).
func SubgraphIsomorphicCtl(pattern, target *graph.Graph, cp *runctl.Checkpoint) (bool, error) {
	s, trivial := acquireState(pattern, target, 1, nil)
	if s == nil {
		return trivial, nil
	}
	s.cp = cp
	s.match(0)
	found, err := s.count > 0, s.err
	s.release()
	return found, err
}

// FindEmbedding returns one mapping from pattern nodes to target nodes,
// or nil if none exists. The returned slice is owned by the caller.
func FindEmbedding(pattern, target *graph.Graph) []int {
	var result []int
	enumerate(pattern, target, 1, func(m []int) bool {
		result = append([]int(nil), m...)
		return false
	})
	return result
}

// CountEmbeddings returns the number of distinct embeddings of pattern in
// target, up to max (pass 0 for unbounded). Distinct means distinct
// injective node mappings; automorphic images count separately.
func CountEmbeddings(pattern, target *graph.Graph, max int) int {
	s, trivial := acquireState(pattern, target, max, nil)
	if s == nil {
		if trivial {
			return 1
		}
		return 0
	}
	s.match(0)
	n := s.count
	s.release()
	return n
}

// ForEachEmbedding calls fn with every embedding of pattern in target
// until fn returns false. The mapping slice is reused across calls; copy
// it if retained.
func ForEachEmbedding(pattern, target *graph.Graph, fn func(mapping []int) bool) {
	enumerate(pattern, target, 0, fn)
}

// ForEachEmbeddingCtl is ForEachEmbedding under a run-controller
// checkpoint; enumeration stops with the controller's cause when it
// trips (embeddings already emitted remain valid).
func ForEachEmbeddingCtl(pattern, target *graph.Graph, cp *runctl.Checkpoint, fn func(mapping []int) bool) error {
	return enumerateCtl(pattern, target, 0, cp, fn)
}

// Isomorphic reports whether a and b are isomorphic as labeled graphs.
func Isomorphic(a, b *graph.Graph) bool {
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		return false
	}
	if !labelMultisetsEqual(a, b) {
		return false
	}
	// Same node and edge count plus monomorphism a -> b implies edge
	// bijectivity, hence isomorphism.
	return SubgraphIsomorphic(a, b)
}

func labelMultisetsEqual(a, b *graph.Graph) bool {
	ca, cb := a.LabelCounts(), b.LabelCounts()
	if len(ca) != len(cb) {
		return false
	}
	for l, n := range ca {
		if cb[l] != n {
			return false
		}
	}
	ea := make(map[[3]int]int)
	for _, e := range a.Edges() {
		ea[edgeKey(a, e)]++
	}
	for _, e := range b.Edges() {
		k := edgeKey(b, e)
		ea[k]--
		if ea[k] < 0 {
			return false
		}
	}
	return true
}

func edgeKey(g *graph.Graph, e graph.Edge) [3]int {
	la, lb := int(g.NodeLabel(e.From)), int(g.NodeLabel(e.To))
	if la > lb {
		la, lb = lb, la
	}
	return [3]int{la, lb, int(e.Label)}
}

func enumerate(pattern, target *graph.Graph, limit int, emit func([]int) bool) {
	enumerateCtl(pattern, target, limit, nil, emit)
}

func enumerateCtl(pattern, target *graph.Graph, limit int, cp *runctl.Checkpoint, emit func([]int) bool) error {
	s, _ := acquireState(pattern, target, limit, emit)
	if s == nil {
		return nil
	}
	s.cp = cp
	s.match(0)
	err := s.err
	s.release()
	return err
}

// connectedOrder fills s.order with pattern nodes so that each node
// after the first is adjacent to an earlier node when possible (BFS
// over components), which keeps the VF2 frontier connected and pruning
// strong. All scratch comes from the arena.
func (s *matchState) connectedOrder() {
	n := len(s.p.NodeLabels)
	if cap(s.order) < n {
		s.order = make([]int32, 0, n)
	}
	s.order = s.order[:0]
	s.seen = s.seen.grown(n)
	s.queue = s.queue[:0]
	for start := 0; start < n; start++ {
		if s.seen.has(int32(start)) {
			continue
		}
		s.seen.set(int32(start))
		s.queue = append(s.queue, int32(start))
		for len(s.queue) > 0 {
			v := s.queue[0]
			s.queue = s.queue[1:]
			s.order = append(s.order, v)
			for i := s.p.RowStart[v]; i < s.p.RowStart[v+1]; i++ {
				u := s.p.Nbr[i]
				if !s.seen.has(u) {
					s.seen.set(u)
					s.queue = append(s.queue, u)
				}
			}
		}
		s.queue = s.queue[:0]
	}
}

// match extends the mapping with the depth-th pattern node in order.
// It returns false when enumeration should stop entirely.
func (s *matchState) match(depth int) bool {
	if err := s.cp.Step(); err != nil {
		s.err = err
		return false
	}
	if depth == len(s.order) {
		s.count++
		if s.emit != nil && !s.emit(s.core) {
			return false
		}
		return s.limit == 0 || s.count < s.limit
	}
	pv := s.order[depth]
	pl := s.p.NodeLabels[pv]
	pDeg := s.p.RowStart[pv+1] - s.p.RowStart[pv]

	// Candidate targets: neighbors of the first already-mapped pattern
	// neighbor when one exists (cheap frontier restriction), otherwise
	// all unused target nodes. Rows are iterated in place — the CSR is
	// immutable during the search, so no candidate buffer is needed.
	anchor := int32(-1)
	for i := s.p.RowStart[pv]; i < s.p.RowStart[pv+1]; i++ {
		if tv := s.core[s.p.Nbr[i]]; tv >= 0 {
			anchor = int32(tv)
			break
		}
	}
	// The cheap screens (used, node label, degree) run inline in the
	// candidate loops; tryCandidate only pays the call overhead for
	// survivors that reach the edge-feasibility check.
	if anchor >= 0 {
		for i := s.t.RowStart[anchor]; i < s.t.RowStart[anchor+1]; i++ {
			tv := s.t.Nbr[i]
			if s.used.has(tv) || s.t.NodeLabels[tv] != pl || s.t.RowStart[tv+1]-s.t.RowStart[tv] < pDeg {
				continue
			}
			if !s.tryCandidate(pv, tv, depth) {
				return false
			}
		}
	} else {
		for tv := int32(0); tv < int32(len(s.t.NodeLabels)); tv++ {
			if s.used.has(tv) || s.t.NodeLabels[tv] != pl || s.t.RowStart[tv+1]-s.t.RowStart[tv] < pDeg {
				continue
			}
			if !s.tryCandidate(pv, tv, depth) {
				return false
			}
		}
	}
	return true
}

// tryCandidate checks edge feasibility of tv for pattern node pv and
// recurses on success. It returns false when enumeration should stop
// entirely.
func (s *matchState) tryCandidate(pv, tv int32, depth int) bool {
	if !s.feasible(pv, tv) {
		return true
	}
	s.core[pv] = int(tv)
	s.used.set(tv)
	ok := s.match(depth + 1)
	s.core[pv] = -1
	s.used.clear(tv)
	return ok
}

// feasible checks that mapping pv -> tv preserves every pattern edge to
// an already-mapped neighbor, with matching edge labels. The target
// edge lookup is a scan of tv's CSR row — the same cost shape as the
// old adjacency-list scan, on flat arrays.
func (s *matchState) feasible(pv, tv int32) bool {
	for i := s.p.RowStart[pv]; i < s.p.RowStart[pv+1]; i++ {
		tu := s.core[s.p.Nbr[i]]
		if tu < 0 {
			continue
		}
		l := s.p.EdgeLabels[i]
		found := false
		for j := s.t.RowStart[tv]; j < s.t.RowStart[tv+1]; j++ {
			if int(s.t.Nbr[j]) == tu {
				found = s.t.EdgeLabels[j] == l
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Support counts the number of graphs in db that contain pattern. This is
// transaction support: each database graph contributes at most 1.
func Support(pattern *graph.Graph, db []*graph.Graph) int {
	n, _ := SupportCtl(pattern, db, nil)
	return n
}

// SupportCtl is Support under a run-controller checkpoint. On a non-nil
// error the returned count covers only the database prefix examined
// before the controller tripped — a lower bound, not the true support.
func SupportCtl(pattern *graph.Graph, db []*graph.Graph, cp *runctl.Checkpoint) (int, error) {
	n := 0
	for _, g := range db {
		found, err := SubgraphIsomorphicCtl(pattern, g, cp)
		if err != nil {
			return n, err
		}
		if found {
			n++
		}
	}
	return n, nil
}

// SupportingIDs returns, in database order, the indices of graphs in db
// that contain pattern.
func SupportingIDs(pattern *graph.Graph, db []*graph.Graph) []int {
	var ids []int
	for i, g := range db {
		if SubgraphIsomorphic(pattern, g) {
			ids = append(ids, i)
		}
	}
	return ids
}
