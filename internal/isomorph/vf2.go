// Package isomorph implements labeled (sub)graph isomorphism testing in
// the style of the VF2 algorithm. It is the correctness workhorse behind
// support counting in the miners, pattern containment in the classifiers,
// and maximality filtering in GraphSig's last phase.
//
// All matching is label-aware: a pattern node may only map to a target
// node with an identical label, and a pattern edge to a target edge with
// an identical label. Subgraph isomorphism here means *subgraph
// monomorphism onto a general (not necessarily induced) subgraph*, the
// semantics used by gSpan/FSG support counting: every pattern edge must be
// present in the target, but the target may have extra edges between
// mapped nodes.
package isomorph

import (
	"graphsig/internal/graph"
	"graphsig/internal/runctl"
)

// state carries the mutable search state of one VF2 run.
type state struct {
	pattern, target *graph.Graph
	// core maps pattern node -> target node (-1 when unmapped).
	core []int
	// used marks target nodes already claimed by the mapping.
	used []bool
	// order is the matching order of pattern nodes (connected order).
	order []int
	// candBufs holds one reusable candidate buffer per search depth, so
	// the hot match loop allocates nothing after warm-up.
	candBufs [][]int
	// limit, if > 0, bounds the number of embeddings enumerated.
	limit int
	count int
	// cp, when non-nil, checkpoints every search-tree node: the run is
	// abandoned (err set) when the shared controller trips. VF2 has no
	// polynomial bound on pathological pattern/target pairs, so every
	// long-running caller should pass one.
	cp  *runctl.Checkpoint
	err error
	// emit receives each complete mapping; return false to stop.
	emit func(mapping []int) bool
}

// SubgraphIsomorphic reports whether pattern occurs in target (labeled
// subgraph monomorphism with injective node mapping).
func SubgraphIsomorphic(pattern, target *graph.Graph) bool {
	found, _ := SubgraphIsomorphicCtl(pattern, target, nil)
	return found
}

// SubgraphIsomorphicCtl is SubgraphIsomorphic under a run-controller
// checkpoint: the search counts one checkpoint step per search-tree
// node and abandons with the stop cause when the controller trips. On a
// non-nil error the boolean is meaningless (the search was cut short,
// not exhausted).
func SubgraphIsomorphicCtl(pattern, target *graph.Graph, cp *runctl.Checkpoint) (bool, error) {
	found := false
	err := enumerateCtl(pattern, target, 1, cp, func([]int) bool {
		found = true
		return false
	})
	return found, err
}

// FindEmbedding returns one mapping from pattern nodes to target nodes,
// or nil if none exists. The returned slice is owned by the caller.
func FindEmbedding(pattern, target *graph.Graph) []int {
	var result []int
	enumerate(pattern, target, 1, func(m []int) bool {
		result = append([]int(nil), m...)
		return false
	})
	return result
}

// CountEmbeddings returns the number of distinct embeddings of pattern in
// target, up to max (pass 0 for unbounded). Distinct means distinct
// injective node mappings; automorphic images count separately.
func CountEmbeddings(pattern, target *graph.Graph, max int) int {
	n := 0
	enumerate(pattern, target, max, func([]int) bool {
		n++
		return max == 0 || n < max
	})
	return n
}

// ForEachEmbedding calls fn with every embedding of pattern in target
// until fn returns false. The mapping slice is reused across calls; copy
// it if retained.
func ForEachEmbedding(pattern, target *graph.Graph, fn func(mapping []int) bool) {
	enumerate(pattern, target, 0, fn)
}

// ForEachEmbeddingCtl is ForEachEmbedding under a run-controller
// checkpoint; enumeration stops with the controller's cause when it
// trips (embeddings already emitted remain valid).
func ForEachEmbeddingCtl(pattern, target *graph.Graph, cp *runctl.Checkpoint, fn func(mapping []int) bool) error {
	return enumerateCtl(pattern, target, 0, cp, fn)
}

// Isomorphic reports whether a and b are isomorphic as labeled graphs.
func Isomorphic(a, b *graph.Graph) bool {
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		return false
	}
	if !labelMultisetsEqual(a, b) {
		return false
	}
	// Same node and edge count plus monomorphism a -> b implies edge
	// bijectivity, hence isomorphism.
	return SubgraphIsomorphic(a, b)
}

func labelMultisetsEqual(a, b *graph.Graph) bool {
	ca, cb := a.LabelCounts(), b.LabelCounts()
	if len(ca) != len(cb) {
		return false
	}
	for l, n := range ca {
		if cb[l] != n {
			return false
		}
	}
	ea := make(map[[3]int]int)
	for _, e := range a.Edges() {
		ea[edgeKey(a, e)]++
	}
	for _, e := range b.Edges() {
		k := edgeKey(b, e)
		ea[k]--
		if ea[k] < 0 {
			return false
		}
	}
	return true
}

func edgeKey(g *graph.Graph, e graph.Edge) [3]int {
	la, lb := int(g.NodeLabel(e.From)), int(g.NodeLabel(e.To))
	if la > lb {
		la, lb = lb, la
	}
	return [3]int{la, lb, int(e.Label)}
}

func enumerate(pattern, target *graph.Graph, limit int, emit func([]int) bool) {
	enumerateCtl(pattern, target, limit, nil, emit)
}

func enumerateCtl(pattern, target *graph.Graph, limit int, cp *runctl.Checkpoint, emit func([]int) bool) error {
	np := pattern.NumNodes()
	if np == 0 {
		emit(nil)
		return nil
	}
	if np > target.NumNodes() || pattern.NumEdges() > target.NumEdges() {
		return nil
	}
	s := &state{
		pattern:  pattern,
		target:   target,
		core:     make([]int, np),
		used:     make([]bool, target.NumNodes()),
		order:    connectedOrder(pattern),
		candBufs: make([][]int, np),
		limit:    limit,
		cp:       cp,
		emit:     emit,
	}
	for i := range s.core {
		s.core[i] = -1
	}
	s.match(0)
	return s.err
}

// connectedOrder returns pattern nodes in an order where each node after
// the first is adjacent to an earlier node when possible (BFS over
// components), which keeps the VF2 frontier connected and pruning strong.
func connectedOrder(g *graph.Graph) []int {
	n := g.NumNodes()
	order := make([]int, 0, n)
	seen := make([]bool, n)
	for start := 0; start < n; start++ {
		if seen[start] {
			continue
		}
		seen[start] = true
		queue := []int{start}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			g.Neighbors(v, func(u int, _ graph.Label) {
				if !seen[u] {
					seen[u] = true
					queue = append(queue, u)
				}
			})
		}
	}
	return order
}

// match extends the mapping with the depth-th pattern node in order.
// It returns false when enumeration should stop entirely.
func (s *state) match(depth int) bool {
	if err := s.cp.Step(); err != nil {
		s.err = err
		return false
	}
	if depth == len(s.order) {
		s.count++
		if !s.emit(s.core) {
			return false
		}
		return s.limit == 0 || s.count < s.limit
	}
	pv := s.order[depth]
	pl := s.pattern.NodeLabel(pv)

	// Candidate targets: neighbors of an already-mapped pattern
	// neighbor when one exists (cheap frontier restriction), otherwise
	// all unused target nodes. The buffer is reused per depth.
	candidates := s.candBufs[depth][:0]
	anchored := false
	s.pattern.Neighbors(pv, func(pu int, _ graph.Label) {
		if anchored {
			return
		}
		if tv := s.core[pu]; tv >= 0 {
			anchored = true
			candidates = candidates[:0]
			s.target.Neighbors(tv, func(tu int, _ graph.Label) {
				candidates = append(candidates, tu)
			})
		}
	})
	if !anchored {
		for tv := 0; tv < s.target.NumNodes(); tv++ {
			candidates = append(candidates, tv)
		}
	}
	s.candBufs[depth] = candidates

	for _, tv := range candidates {
		if s.used[tv] || s.target.NodeLabel(tv) != pl {
			continue
		}
		if s.target.Degree(tv) < s.pattern.Degree(pv) {
			continue
		}
		if !s.feasible(pv, tv) {
			continue
		}
		s.core[pv] = tv
		s.used[tv] = true
		ok := s.match(depth + 1)
		s.core[pv] = -1
		s.used[tv] = false
		if !ok {
			return false
		}
	}
	return true
}

// feasible checks that mapping pv -> tv preserves every pattern edge to
// an already-mapped neighbor, with matching edge labels.
func (s *state) feasible(pv, tv int) bool {
	ok := true
	s.pattern.Neighbors(pv, func(pu int, l graph.Label) {
		if !ok {
			return
		}
		tu := s.core[pu]
		if tu < 0 {
			return
		}
		if s.target.EdgeLabel(tv, tu) != l {
			ok = false
		}
	})
	return ok
}

// Support counts the number of graphs in db that contain pattern. This is
// transaction support: each database graph contributes at most 1.
func Support(pattern *graph.Graph, db []*graph.Graph) int {
	n, _ := SupportCtl(pattern, db, nil)
	return n
}

// SupportCtl is Support under a run-controller checkpoint. On a non-nil
// error the returned count covers only the database prefix examined
// before the controller tripped — a lower bound, not the true support.
func SupportCtl(pattern *graph.Graph, db []*graph.Graph, cp *runctl.Checkpoint) (int, error) {
	n := 0
	for _, g := range db {
		found, err := SubgraphIsomorphicCtl(pattern, g, cp)
		if err != nil {
			return n, err
		}
		if found {
			n++
		}
	}
	return n, nil
}

// SupportingIDs returns, in database order, the indices of graphs in db
// that contain pattern.
func SupportingIDs(pattern *graph.Graph, db []*graph.Graph) []int {
	var ids []int
	for i, g := range db {
		if SubgraphIsomorphic(pattern, g) {
			ids = append(ids, i)
		}
	}
	return ids
}
