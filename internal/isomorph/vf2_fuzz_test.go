package isomorph_test

// Differential fuzzing of the arena'd CSR VF2 against the frozen
// pre-CSR matcher in internal/graph/reference: for arbitrary (size-
// capped) pattern/target pairs, both implementations must return the
// same containment verdict and the same embedding count. The search
// order is part of the contract (budget checkpoints charge per search-
// tree node), so count equality — not just verdict equality — matters.

import (
	"testing"

	"graphsig/internal/graph"
	"graphsig/internal/graph/reference"
	"graphsig/internal/isomorph"
)

// buildFuzzGraph interprets a byte script as a labeled graph, capped at
// maxNodes nodes (embedding counts are exponential in pattern size, so
// the caps keep worst-case fuzz inputs cheap).
func buildFuzzGraph(data []byte, maxNodes int) *graph.Graph {
	g := graph.New(0, 0)
	for i := 0; i+2 < len(data); i += 3 {
		op, a, b := data[i], data[i+1], data[i+2]
		n := g.NumNodes()
		switch {
		case op%3 == 0 && n < maxNodes:
			g.AddNode(graph.Label(a % 4))
		case n >= 2 && g.NumEdges() < 3*maxNodes:
			u, v := int(a)%n, int(b)%n
			if u == v {
				continue
			}
			// Duplicate edges are rejected by AddEdge; ignore the error.
			_ = g.AddEdge(u, v, graph.Label(op%3))
		}
	}
	return g
}

func FuzzVF2Differential(f *testing.F) {
	f.Add([]byte{0, 1, 0, 0, 2, 0, 1, 0, 1}, []byte{0, 1, 0, 0, 2, 0, 0, 1, 0, 1, 0, 1, 1, 1, 2})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 1, 0, 1, 1, 1, 2}, []byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 1, 1, 1, 2, 2, 0, 2})
	f.Add([]byte{}, []byte{0, 3, 0})
	f.Fuzz(func(t *testing.T, pdata, tdata []byte) {
		pattern := buildFuzzGraph(pdata, 6)
		target := buildFuzzGraph(tdata, 12)
		refPattern := reference.FromGraph(pattern)
		refTarget := reference.FromGraph(target)

		if got, want := isomorph.SubgraphIsomorphic(pattern, target), reference.SubgraphIsomorphic(refPattern, refTarget); got != want {
			t.Fatalf("verdict: csr=%v reference=%v (pattern %s, target %s)", got, want, pattern, target)
		}
		// Exact embedding counts, unbounded and under a limit.
		if got, want := isomorph.CountEmbeddings(pattern, target, 0), reference.CountEmbeddings(refPattern, refTarget, 0); got != want {
			t.Fatalf("count: csr=%d reference=%d (pattern %s, target %s)", got, want, pattern, target)
		}
		if got, want := isomorph.CountEmbeddings(pattern, target, 3), reference.CountEmbeddings(refPattern, refTarget, 3); got != want {
			t.Fatalf("count(limit 3): csr=%d reference=%d", got, want)
		}
		// Embedding emission order must agree entry for entry.
		var seqCSR, seqRef []int
		isomorph.ForEachEmbedding(pattern, target, func(m []int) bool {
			seqCSR = append(seqCSR, m...)
			return len(seqCSR) < 4096
		})
		reference.ForEachEmbedding(refPattern, refTarget, func(m []int) bool {
			seqRef = append(seqRef, m...)
			return len(seqRef) < 4096
		})
		if len(seqCSR) != len(seqRef) {
			t.Fatalf("embedding streams: %d vs %d mapped nodes", len(seqCSR), len(seqRef))
		}
		for i := range seqCSR {
			if seqCSR[i] != seqRef[i] {
				t.Fatalf("embedding streams diverge at position %d: %d vs %d", i, seqCSR[i], seqRef[i])
			}
		}
	})
}
