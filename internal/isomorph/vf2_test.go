package isomorph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"graphsig/internal/graph"
)

// build constructs a graph from labels and (from,to,label) triples.
func build(labels []graph.Label, edges [][3]int) *graph.Graph {
	g := graph.New(len(labels), len(edges))
	for _, l := range labels {
		g.AddNode(l)
	}
	for _, e := range edges {
		g.MustAddEdge(e[0], e[1], graph.Label(e[2]))
	}
	return g
}

func triangle(l0, l1, l2 graph.Label) *graph.Graph {
	return build([]graph.Label{l0, l1, l2}, [][3]int{{0, 1, 0}, {1, 2, 0}, {0, 2, 0}})
}

func TestSubgraphIsomorphicBasic(t *testing.T) {
	target := triangle(1, 1, 2)
	tests := []struct {
		name    string
		pattern *graph.Graph
		want    bool
	}{
		{"single matching node", build([]graph.Label{2}, nil), true},
		{"single missing node", build([]graph.Label{9}, nil), false},
		{"edge 1-2", build([]graph.Label{1, 2}, [][3]int{{0, 1, 0}}), true},
		{"edge wrong edge label", build([]graph.Label{1, 2}, [][3]int{{0, 1, 5}}), false},
		{"edge 1-1", build([]graph.Label{1, 1}, [][3]int{{0, 1, 0}}), true},
		{"whole triangle", triangle(1, 2, 1), true},
		{"path of 3 through triangle", build([]graph.Label{1, 1, 2}, [][3]int{{0, 1, 0}, {1, 2, 0}}), true},
		{"too many nodes", build([]graph.Label{1, 1, 2, 2}, nil), false},
		{"empty pattern", graph.New(0, 0), true},
	}
	for _, tc := range tests {
		if got := SubgraphIsomorphic(tc.pattern, target); got != tc.want {
			t.Errorf("%s: got %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestSubgraphNotInduced(t *testing.T) {
	// Pattern path a-b-c must match inside a triangle (monomorphism onto
	// a non-induced subgraph).
	pattern := build([]graph.Label{1, 1, 1}, [][3]int{{0, 1, 0}, {1, 2, 0}})
	target := triangle(1, 1, 1)
	if !SubgraphIsomorphic(pattern, target) {
		t.Fatal("path should embed into triangle (non-induced)")
	}
}

func TestCountEmbeddings(t *testing.T) {
	// A path 1-1 in a triangle of all-1 nodes: each of the 3 edges in 2
	// directions = 6 embeddings.
	pattern := build([]graph.Label{1, 1}, [][3]int{{0, 1, 0}})
	target := triangle(1, 1, 1)
	if got := CountEmbeddings(pattern, target, 0); got != 6 {
		t.Errorf("embeddings = %d; want 6", got)
	}
	if got := CountEmbeddings(pattern, target, 2); got != 2 {
		t.Errorf("limited embeddings = %d; want 2", got)
	}
}

func TestFindEmbeddingIsValid(t *testing.T) {
	pattern := build([]graph.Label{1, 2, 1}, [][3]int{{0, 1, 3}, {1, 2, 4}})
	target := build([]graph.Label{9, 1, 2, 1}, [][3]int{{1, 2, 3}, {2, 3, 4}, {0, 1, 7}})
	m := FindEmbedding(pattern, target)
	if m == nil {
		t.Fatal("no embedding found")
	}
	for pv := 0; pv < pattern.NumNodes(); pv++ {
		if pattern.NodeLabel(pv) != target.NodeLabel(m[pv]) {
			t.Fatalf("node label mismatch at %d", pv)
		}
	}
	for _, e := range pattern.Edges() {
		if target.EdgeLabel(m[e.From], m[e.To]) != e.Label {
			t.Fatalf("edge (%d,%d) not preserved", e.From, e.To)
		}
	}
}

func TestFindEmbeddingAbsent(t *testing.T) {
	pattern := build([]graph.Label{3, 3}, [][3]int{{0, 1, 0}})
	target := triangle(1, 1, 2)
	if m := FindEmbedding(pattern, target); m != nil {
		t.Fatalf("embedding = %v; want nil", m)
	}
}

func TestIsomorphicBasic(t *testing.T) {
	a := triangle(1, 2, 3)
	b := triangle(3, 1, 2)
	if !Isomorphic(a, b) {
		t.Error("relabeled triangles should be isomorphic")
	}
	c := build([]graph.Label{1, 2, 3}, [][3]int{{0, 1, 0}, {1, 2, 0}})
	if Isomorphic(a, c) {
		t.Error("triangle vs path should differ")
	}
	// Same label multiset, different structure.
	d := build([]graph.Label{1, 1, 1, 1}, [][3]int{{0, 1, 0}, {1, 2, 0}, {2, 3, 0}})
	e := build([]graph.Label{1, 1, 1, 1}, [][3]int{{0, 1, 0}, {0, 2, 0}, {0, 3, 0}})
	if Isomorphic(d, e) {
		t.Error("path4 vs star4 should differ")
	}
}

func TestDisconnectedPattern(t *testing.T) {
	// Two isolated nodes with labels 1 and 2 inside a triangle(1,1,2).
	pattern := build([]graph.Label{1, 2}, nil)
	target := triangle(1, 1, 2)
	if !SubgraphIsomorphic(pattern, target) {
		t.Error("disconnected pattern should match")
	}
	// Needs two distinct nodes labeled 2; target has one.
	pattern2 := build([]graph.Label{2, 2}, nil)
	if SubgraphIsomorphic(pattern2, target) {
		t.Error("injectivity violated")
	}
}

// bruteForceSub is an exponential oracle: tries all injective mappings.
func bruteForceSub(pattern, target *graph.Graph) bool {
	np, nt := pattern.NumNodes(), target.NumNodes()
	if np > nt {
		return false
	}
	assign := make([]int, np)
	used := make([]bool, nt)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == np {
			return true
		}
		for tv := 0; tv < nt; tv++ {
			if used[tv] || target.NodeLabel(tv) != pattern.NodeLabel(i) {
				continue
			}
			ok := true
			for pu := 0; pu < i && ok; pu++ {
				l := pattern.EdgeLabel(i, pu)
				if l == graph.NoLabel {
					continue
				}
				if target.EdgeLabel(tv, assign[pu]) != l {
					ok = false
				}
			}
			if !ok {
				continue
			}
			assign[i] = tv
			used[tv] = true
			if rec(i + 1) {
				return true
			}
			used[tv] = false
		}
		return false
	}
	return rec(0)
}

func randGraph(r *rand.Rand, n, extra, nl, el int) *graph.Graph {
	g := graph.New(n, n-1+extra)
	for i := 0; i < n; i++ {
		g.AddNode(graph.Label(r.Intn(nl)))
	}
	for i := 1; i < n; i++ {
		g.MustAddEdge(r.Intn(i), i, graph.Label(r.Intn(el)))
	}
	for e := 0; e < extra; e++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			g.MustAddEdge(u, v, graph.Label(r.Intn(el)))
		}
	}
	return g
}

func TestPropertyVF2MatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		target := randGraph(rr, 3+rr.Intn(6), rr.Intn(5), 2, 2)
		pattern := randGraph(rr, 1+rr.Intn(4), rr.Intn(3), 2, 2)
		return SubgraphIsomorphic(pattern, target) == bruteForceSub(pattern, target)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: r}); err != nil {
		t.Error(err)
	}
}

func TestPropertySubgraphOfSelfUnderRelabel(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		g := randGraph(rr, 2+rr.Intn(8), rr.Intn(5), 3, 2)
		perm := rr.Perm(g.NumNodes())
		h := g.Relabel(perm)
		return SubgraphIsomorphic(g, h) && Isomorphic(g, h)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: r}); err != nil {
		t.Error(err)
	}
}

func TestSupportCounting(t *testing.T) {
	pattern := build([]graph.Label{1, 2}, [][3]int{{0, 1, 0}})
	db := []*graph.Graph{
		triangle(1, 2, 3), // contains 1-2
		triangle(1, 1, 1), // does not
		build([]graph.Label{2, 1}, [][3]int{{0, 1, 0}}), // contains
		build([]graph.Label{1, 2}, nil),                 // nodes but no edge
	}
	if got := Support(pattern, db); got != 2 {
		t.Errorf("Support = %d; want 2", got)
	}
	ids := SupportingIDs(pattern, db)
	if len(ids) != 2 || ids[0] != 0 || ids[1] != 2 {
		t.Errorf("SupportingIDs = %v; want [0 2]", ids)
	}
}

func TestForEachEmbeddingEarlyStop(t *testing.T) {
	pattern := build([]graph.Label{1}, nil)
	target := build([]graph.Label{1, 1, 1, 1}, nil)
	calls := 0
	ForEachEmbedding(pattern, target, func(m []int) bool {
		calls++
		return calls < 2
	})
	if calls != 2 {
		t.Errorf("calls = %d; want 2 (early stop)", calls)
	}
}
