package jobs

import (
	"container/list"
	"sync"

	"graphsig/internal/core"
)

// resultCache is a small LRU over completed mine results, keyed by the
// canonical (database fingerprint, config) hash. Entries hold the
// core.Result by value; the pattern graphs inside are shared and
// treated as immutable by every reader. A capacity of 0 disables the
// cache (get always misses, put drops).
type resultCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used
	entries map[string]*list.Element
}

type cacheEntry struct {
	key string
	res core.Result
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
}

// get returns the cached result for key and refreshes its recency.
func (c *resultCache) get(key string) (core.Result, bool) {
	if c.cap <= 0 {
		return core.Result{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return core.Result{}, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// put inserts or refreshes key, evicting the least recently used entry
// past capacity.
func (c *resultCache) put(key string, res core.Result) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, res: res})
	for len(c.entries) > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// stats returns current entry count and capacity.
func (c *resultCache) stats() (entries, capacity int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries), c.cap
}
