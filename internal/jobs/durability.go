package jobs

// durability.go is the crash-recovery and overload-protection side of
// the Manager: write-ahead journaling of job lifecycle events, startup
// replay (re-enqueueing interrupted jobs with their last resumable
// checkpoint, surfacing finished results), transient-failure retries
// with jittered exponential backoff, deadline-aware admission control,
// and the stall watchdog. Everything here degrades gracefully: a nil
// journal means an in-memory manager identical to the pre-durability
// behavior, and a journal append failure is logged and counted, never
// turned into a job failure.

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"graphsig/internal/core"
	"graphsig/internal/journal"
	"graphsig/internal/obs"
	"graphsig/internal/runctl"
)

// Durability defaults.
const (
	// DefaultRetryBackoff is the base of the exponential retry backoff.
	DefaultRetryBackoff = 500 * time.Millisecond
	// maxRetryBackoff caps the exponential growth.
	maxRetryBackoff = 30 * time.Second
)

// ErrDeadline is returned by Submit when deadline-aware admission
// control sheds the job: the expected queue wait alone already exceeds
// the caller's completion deadline, so accepting the job could only
// burn a worker on an answer nobody will wait for.
type ErrDeadline struct {
	// ExpectedWait is the predicted time until a worker frees up.
	ExpectedWait time.Duration
	// Deadline is the caller's completion deadline.
	Deadline time.Time
}

func (e *ErrDeadline) Error() string {
	return fmt.Sprintf("jobs: shed: expected queue wait %s exceeds deadline", e.ExpectedWait.Round(time.Millisecond))
}

// permanentError marks a failure that retrying cannot fix.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so the retry loop treats it as non-retryable. An
// executor that detects a deterministic failure — invalid input, a
// config that can never mine — panics with Permanent(err); anything
// else (allocation pressure, transient runtime faults) stays transient
// and is retried up to Options.MaxRetries.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err carries the Permanent marker.
func IsPermanent(err error) bool {
	var p *permanentError
	return errors.As(err, &p)
}

// journalFor appends ev for j when the manager has a journal and the
// job's submission was journaled. Failures are logged and counted by
// the journal itself; a job never fails because its audit trail did.
func (m *Manager) journalFor(j *Job, ev journal.Event) {
	if m.opts.Journal == nil || !j.journaled {
		return
	}
	ev.Job = j.id
	if ev.AtMs == 0 {
		ev.AtMs = journal.NowMs()
	}
	if err := m.opts.Journal.Append(ev); err != nil {
		m.logf("jobs: journal append (%s %s): %v", ev.Type, j.id, err)
	}
}

// retryBackoff computes the delay before re-running attempt+1:
// base × 2^attempt, capped, scaled by a jitter factor in [0.5, 1.5) so
// a burst of same-instant failures does not re-converge on the queue.
func (m *Manager) retryBackoff(attempt int) time.Duration {
	base := m.opts.RetryBackoff
	if base <= 0 {
		base = DefaultRetryBackoff
	}
	d := base << uint(attempt)
	if d > maxRetryBackoff || d <= 0 {
		d = maxRetryBackoff
	}
	return time.Duration(float64(d) * (0.5 + rand.Float64()))
}

// scheduleRetry books a transient failure and re-enqueues j after a
// backoff. Called from run() with no locks held.
func (m *Manager) scheduleRetry(j *Job, nextAttempt int, cause error) {
	backoff := m.retryBackoff(nextAttempt - 1)
	m.retries.Add(1)
	m.met.retries.Inc()
	m.journalFor(j, journal.Event{Type: journal.EvRetrying, Attempt: nextAttempt, Error: cause.Error()})
	m.logf("jobs: %s attempt %d failed (%v); retry %d in %s", j.id, nextAttempt-1, cause, nextAttempt, backoff.Round(time.Millisecond))
	timer := time.AfterFunc(backoff, func() { m.requeue(j) })
	j.mu.Lock()
	j.retryTimer = timer
	j.mu.Unlock()
}

// requeue puts a retry-pending job back on the queue when its backoff
// fires. The job may have been canceled or the manager closed in the
// meantime; both settle the job instead of re-running it.
func (m *Manager) requeue(j *Job) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j.mu.Lock()
	j.retryPending = false
	j.retryTimer = nil
	if j.state != StateQueued {
		j.mu.Unlock()
		return // canceled (or otherwise settled) during backoff
	}
	if m.closed {
		j.err = ErrClosed
		j.finishLocked(StateFailed, time.Now())
		j.mu.Unlock()
		delete(m.byKey, j.key)
		m.met.finished(StateFailed).Inc()
		m.journalFor(j, journal.Event{Type: journal.EvFailed, Error: ErrClosed.Error()})
		return
	}
	select {
	case m.queue <- j:
		j.inQueue = true
		j.mu.Unlock()
		m.met.queueDepth.Set(int64(len(m.queue)))
	default:
		j.err = fmt.Errorf("jobs: retry dropped: %w", &ErrQueueFull{Depth: len(m.queue), Cap: cap(m.queue)})
		err := j.err
		j.finishLocked(StateFailed, time.Now())
		j.mu.Unlock()
		delete(m.byKey, j.key)
		m.met.finished(StateFailed).Inc()
		m.journalFor(j, journal.Event{Type: journal.EvFailed, Error: err.Error()})
	}
}

// updateAvgRun folds one finished execution into the EWMA service-time
// estimate admission control divides the backlog by. The estimate
// starts at zero (= unknown), so a cold manager never sheds.
func (m *Manager) updateAvgRun(run time.Duration) {
	for {
		old := m.avgRunNs.Load()
		next := int64(run)
		if old > 0 {
			next = old*4/5 + int64(run)/5
		}
		if next <= 0 {
			next = 1
		}
		if m.avgRunNs.CompareAndSwap(old, next) {
			return
		}
	}
}

// expectedWaitLocked predicts how long a newly enqueued job waits for a
// worker: the EWMA service time spread over the queue backlog plus the
// remaining halves of the runs in flight, divided across the pool.
// Caller holds m.mu.
func (m *Manager) expectedWaitLocked() time.Duration {
	avg := m.avgRunNs.Load()
	if avg <= 0 {
		return 0 // no service-time evidence yet: admit everything
	}
	backlog := float64(len(m.queue)) + 0.5*float64(m.busy.Load())
	return time.Duration(float64(avg) * backlog / float64(m.opts.Workers))
}

// watchdog cancels running jobs whose runctl checkpoints stop advancing
// for Options.StallTimeout: a mine that makes any progress bumps its
// controller's amortized check counter, so a flat counter across the
// window means the pipeline is wedged (deadlocked dependency, livelocked
// search) and the worker should be reclaimed. The canceled job books a
// degradation report through the normal cancel path and is flagged
// Stalled on its snapshot.
func (m *Manager) watchdog() {
	interval := m.opts.StallTimeout / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	if interval > time.Second {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	lastChecks := map[string]int64{}
	lastAdvance := map[string]time.Time{}
	for {
		select {
		case <-m.janitorStop:
			return
		case now := <-t.C:
			m.sweepStalls(now, lastChecks, lastAdvance)
		}
	}
}

// sweepStalls is one watchdog tick over the running jobs.
func (m *Manager) sweepStalls(now time.Time, lastChecks map[string]int64, lastAdvance map[string]time.Time) {
	type running struct {
		j   *Job
		ctl *runctl.Controller
	}
	m.mu.Lock()
	var live []running
	for _, j := range m.jobs {
		j.mu.Lock()
		if j.state == StateRunning && j.ctl != nil {
			live = append(live, running{j, j.ctl})
		}
		j.mu.Unlock()
	}
	m.mu.Unlock()

	seen := map[string]bool{}
	for _, r := range live {
		id := r.j.id
		seen[id] = true
		checks := r.ctl.Spent().Checks
		prev, known := lastChecks[id]
		if !known || checks != prev {
			lastChecks[id] = checks
			lastAdvance[id] = now
			continue
		}
		if now.Sub(lastAdvance[id]) < m.opts.StallTimeout {
			continue
		}
		r.j.mu.Lock()
		alreadyStalled := r.j.stalled
		r.j.stalled = true
		r.j.mu.Unlock()
		if alreadyStalled {
			continue // cancel already issued; the pipeline is unwinding
		}
		m.stalled.Add(1)
		m.met.stalled.Inc()
		m.logf("jobs: %s stalled (no controller progress for %s); canceling", id, m.opts.StallTimeout)
		r.ctl.Cancel(fmt.Sprintf("stall watchdog: no progress for %s", m.opts.StallTimeout))
	}
	for id := range lastChecks {
		if !seen[id] {
			delete(lastChecks, id)
			delete(lastAdvance, id)
		}
	}
}

// replay rebuilds the job store from the journal's startup fold:
// terminal records become finished store entries (completed results warm
// the dedup cache), interrupted records re-enter the queue as detached
// jobs resuming from their last checkpoint. Records that no longer
// decode — config schema drift, a different database — are marked
// failed in the journal so they stop replaying. Called from NewManager
// before the manager is published; workers are already consuming.
func (m *Manager) replay(records []journal.JobRecord) {
	for i := range records {
		rec := &records[i]
		if rec.Terminal != "" {
			m.replayFinished(rec)
			continue
		}
		m.replayInterrupted(rec)
	}
}

func (m *Manager) replayOutcome(outcome string) {
	m.replayed.Add(1)
	m.met.replayed(outcome).Inc()
}

// replayFinished surfaces a terminal job from the journal.
func (m *Manager) replayFinished(rec *journal.JobRecord) {
	j := &Job{
		id:        rec.ID,
		key:       rec.Key,
		label:     rec.Label,
		timeout:   time.Duration(rec.TimeoutMs) * time.Millisecond,
		done:      make(chan struct{}),
		detached:  true,
		journaled: true,
		created:   time.UnixMilli(rec.SubmittedMs),
		finished:  time.UnixMilli(rec.FinishedMs),
		attempt:   rec.Attempt,
	}
	switch rec.Terminal {
	case journal.EvCompleted:
		res, err := core.DecodeResult(rec.Result)
		if err != nil {
			m.logf("jobs: replay %s: result undecodable, dropping: %v", rec.ID, err)
			m.replayOutcome("dropped")
			return
		}
		j.state = StateDone
		j.result = &res
		if res.Truncated {
			j.degradation = &res.Degradation
		}
	case journal.EvFailed:
		j.state = StateFailed
		j.err = errors.New(rec.Error)
	case journal.EvCancelled:
		j.state = StateCanceled
		j.degradation = &runctl.Degradation{Truncated: true, Reason: runctl.ReasonCancel, Detail: rec.Error}
	default:
		m.replayOutcome("dropped")
		return
	}
	close(j.done)

	m.mu.Lock()
	m.jobs[j.id] = j
	if j.state == StateDone && !j.result.Truncated {
		m.cache.put(j.key, *j.result)
	}
	entries, _ := m.cache.stats()
	m.met.cacheEntries.Set(int64(entries))
	m.mu.Unlock()
	m.replayOutcome("finished")
}

// replayInterrupted re-enqueues a job the last process never finished.
func (m *Manager) replayInterrupted(rec *journal.JobRecord) {
	drop := func(why string, err error) {
		m.logf("jobs: replay %s: %s: %v", rec.ID, why, err)
		m.replayOutcome("dropped")
		// Mark the record terminal so it stops resurfacing on every
		// restart; use the journal directly — journalFor needs a job.
		if aerr := m.opts.Journal.Append(journal.Event{
			Type: journal.EvFailed, Job: rec.ID, AtMs: journal.NowMs(),
			Error: fmt.Sprintf("replay: %s: %v", why, err),
		}); aerr != nil {
			m.logf("jobs: journal append (replay drop %s): %v", rec.ID, aerr)
		}
	}
	cfg, err := core.DecodeConfig(rec.Config)
	if err != nil {
		drop("config undecodable", err)
		return
	}
	if key := m.KeyFor(cfg); key != rec.Key {
		drop("database or key schema changed", fmt.Errorf("journaled key %.12s, computed %.12s", rec.Key, key))
		return
	}
	j := &Job{
		id:         rec.ID,
		key:        rec.Key,
		cfg:        cfg,
		label:      rec.Label,
		timeout:    time.Duration(rec.TimeoutMs) * time.Millisecond,
		done:       make(chan struct{}),
		state:      StateQueued,
		detached:   true,
		journaled:  true,
		created:    time.UnixMilli(rec.SubmittedMs),
		attempt:    rec.Attempt,
		checkpoint: rec.Checkpoint,
	}
	j.inQueue = true // set before the send; a worker may own j after it
	m.mu.Lock()
	select {
	case m.queue <- j:
		m.jobs[j.id] = j
		m.byKey[j.key] = j
		m.met.queueDepth.Set(int64(len(m.queue)))
		m.mu.Unlock()
		m.replayOutcome("requeued")
	default:
		j.inQueue = false
		m.mu.Unlock()
		drop("queue full at replay", &ErrQueueFull{Depth: len(m.queue), Cap: cap(m.queue)})
	}
}

// obsReplayed builds the per-outcome replay counter accessor.
func obsReplayed(r *obs.Registry) func(outcome string) *obs.Counter {
	return func(outcome string) *obs.Counter {
		return r.Counter(obs.MJobsReplayed, "outcome", outcome)
	}
}
