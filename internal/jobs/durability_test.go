package jobs

// Durability suite: journaled lifecycle + restart replay, checkpoint
// resume across retries, transient/permanent failure classification,
// deadline-aware admission control, the stall watchdog, and the
// TTL-vs-in-flight eviction regression tests.

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"graphsig/internal/core"
	"graphsig/internal/journal"
	"graphsig/internal/obs"
	"graphsig/internal/runctl"
)

// openJournal opens a journal in dir, failing the test on error.
func openJournal(t *testing.T, dir string, opt journal.Options) (*journal.Journal, []journal.JobRecord) {
	t.Helper()
	jr, recs, err := journal.Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	return jr, recs
}

func TestJournalReplaySurfacesFinishedJob(t *testing.T) {
	dir := t.TempDir()
	jr, _ := openJournal(t, dir, journal.Options{})
	m := newTestManager(t, Options{Journal: jr})
	j, _, err := m.Submit(cfgN(4), SubmitOptions{Detached: true, Label: "durable", Timeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateDone)
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh manager over the same journal dir surfaces the
	// finished job with its persisted result under the same ID.
	jr2, recs := openJournal(t, dir, journal.Options{})
	reg := obs.NewRegistry()
	m2 := newTestManager(t, Options{Journal: jr2, Replay: recs, Metrics: reg})
	j2, ok := m2.Get(j.ID())
	if !ok {
		t.Fatalf("replayed manager lost job %s", j.ID())
	}
	snap := j2.Snapshot()
	if snap.State != StateDone || snap.Result == nil {
		t.Fatalf("replayed job snapshot = %+v", snap)
	}
	if snap.Label != "durable" {
		t.Errorf("label lost in replay: %q", snap.Label)
	}
	if n := reg.Counter(obs.MJobsReplayed, "outcome", "finished").Value(); n != 1 {
		t.Errorf("replayed{finished} = %d, want 1", n)
	}
	// The replayed result warms the dedup cache: an identical submit
	// completes instantly.
	_, info, err := m2.Submit(cfgN(4), SubmitOptions{Detached: true})
	if err != nil {
		t.Fatal(err)
	}
	if !info.Cached {
		t.Error("identical submit after replay missed the warmed cache")
	}
}

func TestJournalReplayRequeuesInterruptedJob(t *testing.T) {
	dir := t.TempDir()
	jr, _ := openJournal(t, dir, journal.Options{})

	// First manager: the job blocks mid-run; we simulate a crash by
	// abandoning the manager without Shutdown (its journal holds
	// submitted + started but no terminal event).
	block := make(chan struct{})
	started := make(chan struct{}, 1)
	m1 := NewManager(Options{
		DB: tinyDB(), Logf: t.Logf, Journal: jr,
		Exec: func(ctl *runctl.Controller, cfg core.Config) core.Result {
			started <- struct{}{}
			<-block
			return core.Result{}
		},
	})
	j, _, err := m1.Submit(cfgN(4), SubmitOptions{Detached: true, Label: "interrupted"})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if err := jr.Close(); err != nil { // crash: journal simply stops
		t.Fatal(err)
	}

	jr2, recs := openJournal(t, dir, journal.Options{})
	if len(recs) != 1 || recs[0].Terminal != "" {
		t.Fatalf("replay records = %+v, want one incomplete", recs)
	}
	reg := obs.NewRegistry()
	m2 := newTestManager(t, Options{Journal: jr2, Replay: recs, Metrics: reg})
	j2, ok := m2.Get(j.ID())
	if !ok {
		t.Fatalf("interrupted job %s not requeued", j.ID())
	}
	waitState(t, j2, StateDone)
	if n := reg.Counter(obs.MJobsReplayed, "outcome", "requeued").Value(); n != 1 {
		t.Errorf("replayed{requeued} = %d, want 1", n)
	}

	close(block)
	m1.Shutdown(context.Background())
}

func TestJournalReplayDropsForeignDatabase(t *testing.T) {
	dir := t.TempDir()
	jr, _ := openJournal(t, dir, journal.Options{})
	m1 := newTestManager(t, Options{Journal: jr})
	if _, _, err := m1.Submit(cfgN(4), SubmitOptions{Detached: true}); err != nil {
		t.Fatal(err)
	}
	// Leave the job queued/running; close the journal mid-flight so the
	// record replays as incomplete.
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}

	jr2, recs := openJournal(t, dir, journal.Options{})
	// Replay against a different database: the journaled MineKey no
	// longer matches, so the job must be dropped, not silently re-mined
	// over the wrong data.
	other := tinyDB()
	other = append(other, other[0].Clone())
	reg := obs.NewRegistry()
	newTestManager(t, Options{DB: other, Journal: jr2, Replay: recs, Metrics: reg})
	if n := reg.Counter(obs.MJobsReplayed, "outcome", "dropped").Value(); n != 1 {
		t.Errorf("replayed{dropped} = %d, want 1", n)
	}

	// The drop is journaled as terminal: a third replay sees a failed
	// job, not an incomplete one resurfacing forever.
	if err := jr2.Close(); err != nil {
		t.Fatal(err)
	}
	jr3, recs3 := openJournal(t, dir, journal.Options{})
	if err := jr3.Close(); err != nil {
		t.Fatal(err)
	}
	if len(recs3) != 1 || recs3[0].Terminal != journal.EvFailed {
		t.Fatalf("after drop, records = %+v, want one failed", recs3)
	}
}

func TestRetryTransientThenSucceed(t *testing.T) {
	var attempts atomic.Int64
	m := newTestManager(t, Options{
		Workers: 1, MaxRetries: 3, RetryBackoff: time.Millisecond,
		Exec: func(ctl *runctl.Controller, cfg core.Config) core.Result {
			if attempts.Add(1) <= 2 {
				panic("transient fault")
			}
			return core.Result{VectorsMined: 5}
		},
	})
	j, _, err := m.Submit(cfgN(4), SubmitOptions{Detached: true})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateDone)
	snap := j.Snapshot()
	if snap.Attempt != 2 || snap.Result == nil || snap.Result.VectorsMined != 5 {
		t.Fatalf("snapshot after retries = %+v", snap)
	}
	if st := m.Stats(); st.Retries != 2 {
		t.Errorf("Stats.Retries = %d, want 2", st.Retries)
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("executions = %d, want 3", got)
	}
}

func TestRetryCoalesceDuringBackoff(t *testing.T) {
	// While a job waits out its retry backoff it still owns its dedup
	// key: an identical submission attaches instead of double-running.
	var attempts atomic.Int64
	gate := make(chan struct{})
	m := newTestManager(t, Options{
		Workers: 1, MaxRetries: 1, RetryBackoff: 50 * time.Millisecond,
		Exec: func(ctl *runctl.Controller, cfg core.Config) core.Result {
			if attempts.Add(1) == 1 {
				close(gate)
				panic("first attempt fails")
			}
			return core.Result{}
		},
	})
	j, _, err := m.Submit(cfgN(4), SubmitOptions{Detached: true})
	if err != nil {
		t.Fatal(err)
	}
	<-gate // first attempt has failed; backoff timer pending
	j2, info, err := m.Submit(cfgN(4), SubmitOptions{Detached: true})
	if err != nil {
		t.Fatal(err)
	}
	if !info.Coalesced || j2.ID() != j.ID() {
		t.Fatalf("submit during backoff: coalesced=%v id=%s want attach to %s", info.Coalesced, j2.ID(), j.ID())
	}
	waitState(t, j, StateDone)
}

func TestPermanentFailureNotRetried(t *testing.T) {
	var attempts atomic.Int64
	m := newTestManager(t, Options{
		MaxRetries: 5, RetryBackoff: time.Millisecond,
		Exec: func(ctl *runctl.Controller, cfg core.Config) core.Result {
			attempts.Add(1)
			panic(Permanent(errors.New("config can never mine")))
		},
	})
	j, _, err := m.Submit(cfgN(4), SubmitOptions{Detached: true})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateFailed)
	if got := attempts.Load(); got != 1 {
		t.Fatalf("permanent failure executed %d times, want 1", got)
	}
	if snap := j.Snapshot(); !strings.Contains(snap.Err, "config can never mine") {
		t.Errorf("error lost: %q", snap.Err)
	}
	if st := m.Stats(); st.Retries != 0 {
		t.Errorf("Stats.Retries = %d, want 0", st.Retries)
	}
}

func TestRetryResumesFromCheckpoint(t *testing.T) {
	// The attempt after a transient failure receives the checkpoint the
	// failed attempt emitted, as a decoded Config.Resume.
	dir := t.TempDir()
	jr, _ := openJournal(t, dir, journal.Options{})
	db := tinyDB()
	snapshotCfg := core.Defaults()
	snapshotCfg.CutoffRadius = 4
	var attempts atomic.Int64
	var resumedWith atomic.Value
	m := newTestManager(t, Options{
		DB: db, Journal: jr, MaxRetries: 1, RetryBackoff: time.Millisecond,
		Exec: func(ctl *runctl.Controller, cfg core.Config) core.Result {
			if attempts.Add(1) == 1 {
				// Emit a synthetic checkpoint, then die.
				buf, err := core.EncodeResumeState(&core.ResumeState{V: 1, Key: "k", GroupsHash: "h", Done: 0})
				if err != nil {
					panic(Permanent(err))
				}
				ctl.EmitCheckpoint(buf)
				panic("transient")
			}
			if cfg.Resume != nil {
				resumedWith.Store(cfg.Resume.Key)
			}
			return core.Result{}
		},
	})
	j, _, err := m.Submit(snapshotCfg, SubmitOptions{Detached: true})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateDone)
	if got, _ := resumedWith.Load().(string); got != "k" {
		t.Fatalf("second attempt resumed with %q, want the first attempt's checkpoint", got)
	}
}

func TestAdmissionShedsDoomedSubmissions(t *testing.T) {
	block := make(chan struct{})
	started := make(chan struct{}, 4)
	reg := obs.NewRegistry()
	m := newTestManager(t, Options{
		Workers: 1, QueueDepth: 4, Metrics: reg,
		Exec: func(ctl *runctl.Controller, cfg core.Config) core.Result {
			started <- struct{}{}
			<-block
			return core.Result{}
		},
	})
	// Seed the service-time estimate: a cold manager never sheds.
	m.updateAvgRun(200 * time.Millisecond)

	// Occupy the worker and stack the queue.
	if _, _, err := m.Submit(cfgN(1), SubmitOptions{Detached: true}); err != nil {
		t.Fatal(err)
	}
	<-started
	for i := 2; i <= 3; i++ {
		if _, _, err := m.Submit(cfgN(i), SubmitOptions{Detached: true}); err != nil {
			t.Fatal(err)
		}
	}

	// Expected wait ≈ 200ms × (2 queued + 0.5 running) / 1 worker =
	// 500ms; a 10ms deadline is doomed, a 10s one is fine.
	_, _, err := m.Submit(cfgN(7), SubmitOptions{Detached: true, Deadline: time.Now().Add(10 * time.Millisecond)})
	var shed *ErrDeadline
	if !errors.As(err, &shed) {
		t.Fatalf("doomed submit returned %v, want ErrDeadline", err)
	}
	if shed.ExpectedWait <= 0 {
		t.Errorf("shed error carries no wait estimate: %+v", shed)
	}
	if _, _, err := m.Submit(cfgN(8), SubmitOptions{Detached: true, Deadline: time.Now().Add(10 * time.Second)}); err != nil {
		t.Fatalf("feasible-deadline submit rejected: %v", err)
	}
	if st := m.Stats(); st.Shed != 1 {
		t.Errorf("Stats.Shed = %d, want 1", st.Shed)
	}
	if n := reg.Counter(obs.MJobsShed).Value(); n != 1 {
		t.Errorf("shed counter = %d, want 1", n)
	}
	close(block)
}

func TestStallWatchdogCancelsWedgedJob(t *testing.T) {
	wedged := make(chan struct{})
	reg := obs.NewRegistry()
	m := newTestManager(t, Options{
		StallTimeout: 50 * time.Millisecond, Metrics: reg,
		Exec: func(ctl *runctl.Controller, cfg core.Config) core.Result {
			<-wedged // no controller checkpoints ever advance
			return core.Result{}
		},
	})
	j, _, err := m.Submit(cfgN(4), SubmitOptions{Detached: true})
	if err != nil {
		t.Fatal(err)
	}
	// The watchdog cancels the controller; the exec is still blocked on
	// the channel, so unblock it once cancellation is requested.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s := j.Snapshot(); s.Stalled {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(wedged)
	waitState(t, j, StateCanceled)
	snap := j.Snapshot()
	if !snap.Stalled {
		t.Error("snapshot not flagged Stalled")
	}
	if snap.Degradation == nil || !strings.Contains(snap.Degradation.Detail, "stall watchdog") {
		t.Errorf("degradation = %+v, want stall watchdog detail", snap.Degradation)
	}
	if st := m.Stats(); st.Stalled != 1 {
		t.Errorf("Stats.Stalled = %d, want 1", st.Stalled)
	}
	if n := reg.Counter(obs.MJobsStalled).Value(); n != 1 {
		t.Errorf("stalled counter = %d, want 1", n)
	}
}

func TestStallWatchdogSparesAdvancingJob(t *testing.T) {
	release := make(chan struct{})
	m := newTestManager(t, Options{
		StallTimeout: 60 * time.Millisecond,
		Exec: func(ctl *runctl.Controller, cfg core.Config) core.Result {
			// Step tightly: the amortized checkpoint syncs every interval
			// steps, each sync advancing Spent().Checks.
			cp := ctl.Checkpoint(runctl.StageGroup)
			deadline := time.Now().Add(300 * time.Millisecond)
			for time.Now().Before(deadline) {
				if err := cp.Step(); err != nil {
					panic(err)
				}
			}
			close(release)
			return core.Result{VectorsMined: 1}
		},
	})
	j, _, err := m.Submit(cfgN(4), SubmitOptions{Detached: true})
	if err != nil {
		t.Fatal(err)
	}
	<-release
	waitState(t, j, StateDone)
	if snap := j.Snapshot(); snap.Stalled {
		t.Fatal("watchdog canceled a job that was making progress")
	}
}

func TestTTLNeverEvictsRunningJob(t *testing.T) {
	block := make(chan struct{})
	started := make(chan struct{}, 1)
	m := newTestManager(t, Options{
		TTL: 5 * time.Millisecond,
		Exec: func(ctl *runctl.Controller, cfg core.Config) core.Result {
			started <- struct{}{}
			<-block
			return core.Result{}
		},
	})
	j, _, err := m.Submit(cfgN(4), SubmitOptions{Detached: true})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	// Far past the TTL, with the janitor sweeping every TTL/4: the
	// running job must survive.
	time.Sleep(50 * time.Millisecond)
	m.evictExpired(time.Now())
	if _, ok := m.Get(j.ID()); !ok {
		t.Fatal("running job evicted by TTL janitor")
	}
	close(block)
	waitState(t, j, StateDone)
}

func TestTTLHoldsCanceledJobStillInQueue(t *testing.T) {
	// A job canceled while physically enqueued is terminal but still
	// referenced by the queue channel; eviction must wait until a
	// worker dequeues it, or the store and channel disagree.
	block := make(chan struct{})
	started := make(chan struct{}, 1)
	m := newTestManager(t, Options{
		Workers: 1, TTL: time.Millisecond,
		Exec: func(ctl *runctl.Controller, cfg core.Config) core.Result {
			started <- struct{}{}
			<-block
			return core.Result{}
		},
	})
	if _, _, err := m.Submit(cfgN(1), SubmitOptions{Detached: true}); err != nil {
		t.Fatal(err)
	}
	<-started // worker occupied; the next job stays in the channel
	j, _, err := m.Submit(cfgN(2), SubmitOptions{Detached: true})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Cancel(j.ID()) {
		t.Fatal("cancel failed")
	}
	waitState(t, j, StateCanceled)
	time.Sleep(10 * time.Millisecond) // TTL long expired
	m.evictExpired(time.Now())
	if _, ok := m.Get(j.ID()); !ok {
		t.Fatal("canceled job evicted while still referenced by the queue channel")
	}
	close(block)
	// Once the worker drains it from the channel, eviction may proceed.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		m.evictExpired(time.Now())
		if _, ok := m.Get(j.ID()); !ok {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("dequeued terminal job never became evictable")
}

func TestTTLHoldsRetryPendingJob(t *testing.T) {
	var attempts atomic.Int64
	m := newTestManager(t, Options{
		TTL: time.Millisecond, MaxRetries: 1, RetryBackoff: 80 * time.Millisecond,
		Exec: func(ctl *runctl.Controller, cfg core.Config) core.Result {
			if attempts.Add(1) == 1 {
				panic("transient")
			}
			return core.Result{}
		},
	})
	j, _, err := m.Submit(cfgN(4), SubmitOptions{Detached: true})
	if err != nil {
		t.Fatal(err)
	}
	// During the backoff window the job is queued with a pending timer;
	// the janitor must leave it alone.
	deadline := time.Now().Add(5 * time.Second)
	for attempts.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	m.evictExpired(time.Now())
	if _, ok := m.Get(j.ID()); !ok {
		t.Fatal("retry-pending job evicted during backoff")
	}
	waitState(t, j, StateDone)
}
