// Package jobs is the asynchronous job-orchestration layer between the
// HTTP surface and the mining pipeline. It decouples mining execution
// from request handling with four cooperating pieces:
//
//   - a bounded FIFO queue with backpressure: when the queue is full,
//     Submit fails fast with an ErrQueueFull carrying depth info
//     instead of buffering unboundedly;
//   - a fixed worker pool executing mines under per-job runctl
//     controllers, so every job is cancelable, deadline-bounded, and
//     budget-bounded, and a canceled or timed-out job still lands with
//     a valid partial result plus a degradation report;
//   - an in-memory job store with states queued → running → done /
//     failed / canceled, TTL-based eviction of finished jobs, and
//     per-job progress snapshots sourced from the controller's stage
//     counters;
//   - a dedup layer: jobs are keyed by a canonical hash of (database
//     fingerprint, normalized mining config). Identical requests that
//     are concurrent coalesce onto one execution (singleflight), and
//     identical requests that are sequential hit an LRU result cache
//     and complete instantly. Truncated results are never cached — a
//     rerun under different runtime limits may do strictly better.
//
// Lock ordering: Manager.mu before Job.mu, never the reverse.
package jobs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"log"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"graphsig/internal/core"
	"graphsig/internal/graph"
	"graphsig/internal/journal"
	"graphsig/internal/obs"
	"graphsig/internal/runctl"
)

// Defaults for Options fields left zero.
const (
	DefaultWorkers    = 2
	DefaultQueueDepth = 32
	DefaultTTL        = 15 * time.Minute
	DefaultCacheSize  = 128
)

// State is a job's lifecycle position.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Finished reports whether the state is terminal.
func (s State) Finished() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// ExecFunc runs one mine under a controller. The default executes
// core.Mine over the manager's database; tests inject counters or
// blocking fakes here.
type ExecFunc func(ctl *runctl.Controller, cfg core.Config) core.Result

// Options configures a Manager.
type Options struct {
	// DB is the immutable database every job mines. Its fingerprint
	// scopes the dedup key, so a manager over a different database can
	// never collide in a shared-nothing deployment.
	DB []*graph.Graph
	// DBFingerprint, when non-empty, is graph.Fingerprint of the served
	// database, precomputed by the caller — a store manifest carries it
	// on disk, and a server that loaded DB from memory hashed it once
	// at startup. When empty the manager hashes DB itself. Required
	// when DB is nil (store-backed managers run a custom Exec and never
	// hold the corpus in memory).
	DBFingerprint string
	// Generation is the store generation of the served database (0 for
	// an in-memory corpus). It is folded into every dedup key, so after
	// an incremental append — same directory, new generation — stale
	// cached patterns and journal records from the old generation can
	// never be served, even transiently.
	Generation int64
	// Workers is the pool size (0 = DefaultWorkers). Each worker runs
	// one mine at a time; mines are internally parallel, so a handful
	// of workers saturates the machine. The default executor divides
	// GOMAXPROCS by the pool size into each mine's Config.Parallelism,
	// so job-level and mine-level fan-out multiply to roughly the host
	// width instead of oversubscribing it.
	Workers int
	// QueueDepth bounds jobs waiting for a worker (0 = DefaultQueueDepth).
	QueueDepth int
	// TTL is how long finished jobs stay retrievable (0 = DefaultTTL).
	TTL time.Duration
	// CacheSize bounds the dedup result cache, in entries
	// (0 = DefaultCacheSize; negative = cache disabled).
	CacheSize int
	// Budgets applies uniformly to every job's controller. Per-request
	// budget variation is deliberately unsupported: budgets are excluded
	// from the dedup key, which is only sound when they are constant.
	Budgets runctl.Budgets
	// Exec overrides the mine executor (nil = core.Mine over DB).
	Exec ExecFunc
	// Logf receives operational log lines (log.Printf when nil).
	Logf func(format string, args ...any)
	// Metrics, when non-nil, receives the manager's operational metrics
	// (queue depth, worker utilization, cache hit/miss/coalesce counts)
	// and is handed to every job's controller, so mining-stage metrics
	// land in the same registry. Nil disables metering.
	Metrics *obs.Registry
	// Journal, when non-nil, receives every job lifecycle event as a
	// durable write-ahead record, and each running mine's resumable
	// checkpoints. Nil means a purely in-memory manager.
	Journal *journal.Journal
	// Replay is the journal's startup fold (journal.Open's second
	// return): terminal jobs are surfaced with their persisted results,
	// interrupted jobs re-enter the queue resuming from their last
	// checkpoint.
	Replay []journal.JobRecord
	// MaxRetries bounds automatic re-runs of transiently failed jobs
	// (0 = retries disabled). Failures marked with Permanent are never
	// retried; neither are canceled runs.
	MaxRetries int
	// RetryBackoff is the base of the jittered exponential backoff
	// between attempts (0 = DefaultRetryBackoff).
	RetryBackoff time.Duration
	// StallTimeout, when > 0, arms the stall watchdog: a running job
	// whose controller checkpoints stop advancing for this long is
	// canceled and flagged Stalled.
	StallTimeout time.Duration
	// CheckpointEvery overrides the mining pipeline's snapshot
	// granularity, in committed groups (0 = core's default). Only
	// meaningful with a Journal.
	CheckpointEvery int
}

// SubmitOptions parameterizes one Submit.
type SubmitOptions struct {
	// Label is a human-readable tag carried on snapshots.
	Label string
	// Timeout bounds the mine's execution time, measured from when a
	// worker picks the job up — queue wait does not eat the budget
	// (0 = unbounded).
	Timeout time.Duration
	// Detached marks the job as owned by the store rather than by its
	// waiters: it survives with zero waiters until TTL eviction. Async
	// API submissions are detached; synchronous callers are not, so a
	// sync mine whose every client disconnected is canceled instead of
	// burning a worker for nobody.
	Detached bool
	// Meta is an opaque embedder payload echoed on snapshots (the HTTP
	// layer stores presentation parameters like the result limit).
	Meta any
	// Deadline, when non-zero, is the caller's completion deadline.
	// Admission control sheds the submission with ErrDeadline when the
	// expected queue wait alone already overshoots it. Zero opts out.
	Deadline time.Time
}

// SubmitInfo reports how a Submit was satisfied.
type SubmitInfo struct {
	// Coalesced: an identical job was already queued or running; the
	// returned job is that one, no new execution was scheduled.
	Coalesced bool
	// Cached: an identical mine already completed; the returned job was
	// born finished with the cached result.
	Cached bool
}

// ErrQueueFull is returned by Submit when the queue has no room. It
// carries the depth info a client needs for a useful 503.
type ErrQueueFull struct {
	Depth, Cap int
}

func (e *ErrQueueFull) Error() string {
	return fmt.Sprintf("jobs: queue full (%d of %d queued)", e.Depth, e.Cap)
}

// ErrClosed is returned by Submit after Shutdown began.
var ErrClosed = errors.New("jobs: manager shut down")

// Snapshot is a point-in-time public view of a job.
type Snapshot struct {
	ID    string
	Key   string
	Label string
	State State
	// Cached: the job never executed; its result came from the cache.
	Cached bool
	// CancelRequested: Cancel was called; on a running job the state
	// flips to canceled once the pipeline unwinds.
	CancelRequested bool
	Created         time.Time
	Started         time.Time // zero until running
	Finished        time.Time // zero until terminal
	// Progress is the live controller spend for running jobs and the
	// final spend for finished ones.
	Progress runctl.Spent
	// Result is non-nil once the job finished executing (including the
	// partial result of a canceled run). Nil for queued/running/failed.
	Result *core.Result
	// Degradation is non-nil when the run was cut short.
	Degradation *runctl.Degradation
	// Err is the failure message for StateFailed.
	Err     string
	Waiters int
	Meta    any
	// Attempt is the 0-based execution attempt; > 0 means the job was
	// retried after transient failures.
	Attempt int
	// Stalled: the stall watchdog canceled this job because its
	// controller checkpoints stopped advancing.
	Stalled bool
}

// Job is one unit of mining work. All mutable state is guarded; read
// it through Snapshot.
type Job struct {
	id   string
	key  string
	meta any

	cfg     core.Config
	label   string
	timeout time.Duration
	// journaled: the submission was durably recorded, so lifecycle
	// events keep appending. Written before the job is published and
	// immutable afterwards.
	journaled bool

	done chan struct{} // closed exactly once, on reaching a terminal state

	mu              sync.Mutex
	state           State
	detached        bool
	waiters         int
	cached          bool
	cancelRequested bool
	created         time.Time
	started         time.Time
	finished        time.Time
	ctl             *runctl.Controller
	result          *core.Result
	degradation     *runctl.Degradation
	err             error
	// attempt is the 0-based execution attempt (bumped per retry).
	attempt int
	// checkpoint is the latest resumable mining snapshot, from the
	// journal replay or this process's own checkpoint sink; the next
	// (re)run resumes from it.
	checkpoint []byte
	// inQueue: the job is physically referenced by the queue channel.
	// The janitor never evicts such a job — a worker will still
	// dequeue it — even when cancellation already made it terminal.
	inQueue bool
	// retryPending + retryTimer: a backoff timer holds the job for
	// re-enqueueing; eviction must wait for it to fire or be settled.
	retryPending bool
	retryTimer   *time.Timer
	// stalled: the watchdog canceled this job for lack of progress.
	stalled bool
}

// ID returns the job's stable identifier.
func (j *Job) ID() string { return j.id }

// Key returns the job's canonical dedup key.
func (j *Job) Key() string { return j.key }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Snapshot captures the job's current public state.
func (j *Job) Snapshot() Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := Snapshot{
		ID:              j.id,
		Key:             j.key,
		Label:           j.label,
		State:           j.state,
		Cached:          j.cached,
		CancelRequested: j.cancelRequested,
		Created:         j.created,
		Started:         j.started,
		Finished:        j.finished,
		Progress:        j.ctl.Spent(), // nil-safe: zeros before running
		Result:          j.result,
		Degradation:     j.degradation,
		Waiters:         j.waiters,
		Meta:            j.meta,
		Attempt:         j.attempt,
		Stalled:         j.stalled,
	}
	if j.err != nil {
		s.Err = j.err.Error()
	}
	return s
}

// finish moves the job to a terminal state. Caller holds j.mu.
func (j *Job) finishLocked(state State, now time.Time) {
	j.state = state
	j.finished = now
	close(j.done)
}

// Stats is a point-in-time view of the manager's counters.
type Stats struct {
	Workers     int           `json:"workers"`
	Busy        int           `json:"busy"`
	QueueDepth  int           `json:"queueDepth"`
	QueueCap    int           `json:"queueCap"`
	Jobs        int           `json:"jobs"`
	ByState     map[State]int `json:"byState,omitempty"`
	Executions  int64         `json:"executions"`
	Coalesced   int64         `json:"coalesced"`
	CacheHits   int64         `json:"cacheHits"`
	CacheMisses int64         `json:"cacheMisses"`
	Rejected    int64         `json:"rejected"`
	Shed        int64         `json:"shed"`
	Retries     int64         `json:"retries"`
	Replayed    int64         `json:"replayed"`
	Stalled     int64         `json:"stalled"`
	CacheSize   int           `json:"cacheSize"`
	CacheCap    int           `json:"cacheCap"`
}

// Manager owns the queue, the worker pool, the job store, and the
// result cache. Create one per served database with NewManager; it is
// safe for concurrent use.
type Manager struct {
	opts  Options
	exec  ExecFunc
	dbFP  string
	cache *resultCache

	queue chan *Job

	mu     sync.Mutex
	closed bool
	jobs   map[string]*Job // every live (unevicted) job by id
	byKey  map[string]*Job // the queued-or-running job per dedup key

	workers     sync.WaitGroup
	janitorStop chan struct{}
	// draining flips when Shutdown's drain deadline passes: every
	// running job is being canceled, and run() self-cancels jobs that
	// slipped through the dequeue/running-snapshot window.
	draining atomic.Bool

	busy        atomic.Int64
	executions  atomic.Int64
	coalesced   atomic.Int64
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	rejected    atomic.Int64
	shed        atomic.Int64
	retries     atomic.Int64
	replayed    atomic.Int64
	stalled     atomic.Int64
	seq         atomic.Int64
	// avgRunNs is the EWMA of executed-job wall time, in nanoseconds;
	// 0 = no evidence yet. Admission control divides the backlog by it.
	avgRunNs atomic.Int64

	met managerMetrics
}

// managerMetrics caches the manager's obs series so hot paths skip the
// registry lookup. With a nil Options.Metrics every field is nil and
// every call a no-op — the obs nil-receiver contract keeps the wiring
// branch-free.
type managerMetrics struct {
	queueDepth   *obs.Gauge
	busy         *obs.Gauge
	cacheEntries *obs.Gauge
	executions   *obs.Counter
	coalesced    *obs.Counter
	cacheHits    *obs.Counter
	cacheMisses  *obs.Counter
	rejected     *obs.Counter
	shed         *obs.Counter
	retries      *obs.Counter
	stalled      *obs.Counter
	replayed     func(outcome string) *obs.Counter
	runSeconds   *obs.Histogram
	finished     func(state State) *obs.Counter
}

func newManagerMetrics(r *obs.Registry, workers, queueCap int) managerMetrics {
	r.Gauge(obs.MJobsWorkers).Set(int64(workers))
	r.Gauge(obs.MJobsQueueCap).Set(int64(queueCap))
	return managerMetrics{
		queueDepth:   r.Gauge(obs.MJobsQueueDepth),
		busy:         r.Gauge(obs.MJobsBusy),
		cacheEntries: r.Gauge(obs.MJobsCacheSize),
		executions:   r.Counter(obs.MJobsExecutions),
		coalesced:    r.Counter(obs.MJobsCoalesced),
		cacheHits:    r.Counter(obs.MJobsCacheHits),
		cacheMisses:  r.Counter(obs.MJobsCacheMisses),
		rejected:     r.Counter(obs.MJobsRejected),
		shed:         r.Counter(obs.MJobsShed),
		retries:      r.Counter(obs.MJobsRetries),
		stalled:      r.Counter(obs.MJobsStalled),
		replayed:     obsReplayed(r),
		runSeconds:   r.Histogram(obs.MJobsRunSeconds, obs.DefBuckets),
		finished: func(state State) *obs.Counter {
			return r.Counter(obs.MJobsFinished, "state", string(state))
		},
	}
}

// NewManager starts the worker pool and TTL janitor for opt.
func NewManager(opt Options) *Manager {
	if opt.Workers <= 0 {
		opt.Workers = DefaultWorkers
	}
	if opt.QueueDepth <= 0 {
		opt.QueueDepth = DefaultQueueDepth
	}
	if opt.TTL <= 0 {
		opt.TTL = DefaultTTL
	}
	cacheSize := opt.CacheSize
	switch {
	case cacheSize == 0:
		cacheSize = DefaultCacheSize
	case cacheSize < 0:
		cacheSize = 0
	}
	dbFP := opt.DBFingerprint
	if dbFP == "" {
		dbFP = graph.Fingerprint(opt.DB)
	}
	m := &Manager{
		opts:        opt,
		dbFP:        dbFP,
		cache:       newResultCache(cacheSize),
		queue:       make(chan *Job, opt.QueueDepth),
		jobs:        make(map[string]*Job),
		byKey:       make(map[string]*Job),
		janitorStop: make(chan struct{}),
	}
	m.met = newManagerMetrics(opt.Metrics, opt.Workers, opt.QueueDepth)
	m.exec = opt.Exec
	if m.exec == nil {
		// Split the host between concurrently running mines: with W
		// workers each mine gets GOMAXPROCS/W of its own. Parallelism
		// is a runtime control outside the dedup key, so an explicit
		// caller setting still wins.
		share := runtime.GOMAXPROCS(0) / opt.Workers
		if share < 1 {
			share = 1
		}
		m.exec = func(ctl *runctl.Controller, cfg core.Config) core.Result {
			cfg.Ctl = ctl
			if cfg.Parallelism <= 0 {
				cfg.Parallelism = share
			}
			// Hand the mine the fingerprint computed once at startup so
			// checkpoint identity never re-hashes the corpus per run.
			cfg.DBFingerprint = m.dbFP
			return core.Mine(opt.DB, cfg)
		}
	}
	for i := 0; i < opt.Workers; i++ {
		m.workers.Add(1)
		runctl.Spawn("jobs worker", m.spawnPanic, m.worker)
	}
	runctl.Spawn("jobs janitor", m.spawnPanic, m.janitor)
	if opt.StallTimeout > 0 {
		runctl.Spawn("jobs stall watchdog", m.spawnPanic, m.watchdog)
	}
	if len(opt.Replay) > 0 {
		m.replay(opt.Replay)
	}
	return m
}

func (m *Manager) logf(format string, args ...any) {
	if m.opts.Logf != nil {
		m.opts.Logf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// spawnPanic is the Manager's runctl.Spawn recovery sink. By the time
// it runs the goroutine's own deferred cleanups (workers.Done) have
// already executed, so the report is purely informational.
func (m *Manager) spawnPanic(name string, r any, stack []byte) {
	m.logf("jobs: %s panicked: %v\n%s", name, r, stack)
}

// KeyFor returns the canonical dedup key a config submits under — the
// database fingerprint joined with the normalized config hash, scoped
// to the store generation when the database came from a store. An
// append bumps the generation, so every key changes and cached results
// mined against the smaller corpus are unreachable; journal records
// from the old generation fail the replay key check and drop.
func (m *Manager) KeyFor(cfg core.Config) string {
	key := core.MineKey(m.dbFP, cfg)
	if m.opts.Generation > 0 {
		return fmt.Sprintf("g%d:%s", m.opts.Generation, key)
	}
	return key
}

// Submit schedules cfg for execution, or attaches to an identical job
// already in flight, or completes instantly from the result cache.
// The returned job must be balanced with Release by non-detached
// callers once they stop waiting on it.
func (m *Manager) Submit(cfg core.Config, opt SubmitOptions) (*Job, SubmitInfo, error) {
	key := m.KeyFor(cfg)
	now := time.Now()
	// Persist the submission's identity up front, outside the lock: the
	// encode is pure CPU and its failure (a config the wire form cannot
	// carry) just means this job is not durable.
	var cfgBytes []byte
	if m.opts.Journal != nil {
		var err error
		if cfgBytes, err = core.EncodeConfig(cfg); err != nil {
			m.logf("jobs: submission not journaled: %v", err)
		}
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, SubmitInfo{}, ErrClosed
	}
	if j := m.byKey[key]; j != nil {
		m.coalesced.Add(1)
		m.met.coalesced.Inc()
		j.mu.Lock()
		j.detached = j.detached || opt.Detached
		if !opt.Detached {
			j.waiters++
		}
		j.mu.Unlock()
		m.mu.Unlock()
		return j, SubmitInfo{Coalesced: true}, nil
	}
	if res, ok := m.cache.get(key); ok {
		m.cacheHits.Add(1)
		m.met.cacheHits.Inc()
		j := m.newJobLocked(key, cfg, opt, now)
		j.state = StateDone
		j.cached = true
		j.result = &res
		j.finished = now
		close(j.done)
		m.jobs[j.id] = j
		m.mu.Unlock()
		return j, SubmitInfo{Cached: true}, nil
	}
	// Deadline-aware admission: only a genuinely new execution queues
	// work, so shedding happens after the free paths (coalesce, cache).
	if !opt.Deadline.IsZero() {
		if wait := m.expectedWaitLocked(); wait > 0 && now.Add(wait).After(opt.Deadline) {
			m.shed.Add(1)
			m.met.shed.Inc()
			m.mu.Unlock()
			return nil, SubmitInfo{}, &ErrDeadline{ExpectedWait: wait, Deadline: opt.Deadline}
		}
	}
	m.cacheMisses.Add(1)
	m.met.cacheMisses.Inc()
	j := m.newJobLocked(key, cfg, opt, now)
	j.journaled = len(cfgBytes) > 0
	// inQueue is set before the send: the moment the job is on the
	// channel a worker may own it, so no unlocked writes after that.
	j.inQueue = true
	select {
	case m.queue <- j:
	default:
		j.inQueue = false
		m.rejected.Add(1)
		m.met.rejected.Inc()
		m.mu.Unlock()
		return nil, SubmitInfo{}, &ErrQueueFull{Depth: len(m.queue), Cap: cap(m.queue)}
	}
	m.met.queueDepth.Set(int64(len(m.queue)))
	m.jobs[j.id] = j
	m.byKey[key] = j
	m.mu.Unlock()

	// Journal after releasing the lock (the fsync must not serialize
	// unrelated submissions) but before acknowledging to the caller, so
	// an acked job is always recoverable.
	m.journalFor(j, journal.Event{
		Type: journal.EvSubmitted, Key: key, Label: opt.Label,
		Config: cfgBytes, TimeoutMs: opt.Timeout.Milliseconds(), AtMs: now.UnixMilli(),
	})
	return j, SubmitInfo{}, nil
}

func (m *Manager) newJobLocked(key string, cfg core.Config, opt SubmitOptions, now time.Time) *Job {
	var rnd [6]byte
	rand.Read(rnd[:])
	j := &Job{
		id:       fmt.Sprintf("j%d-%s", m.seq.Add(1), hex.EncodeToString(rnd[:])),
		key:      key,
		meta:     opt.Meta,
		cfg:      cfg,
		label:    opt.Label,
		timeout:  opt.Timeout,
		done:     make(chan struct{}),
		state:    StateQueued,
		detached: opt.Detached,
		created:  now,
	}
	if !opt.Detached {
		j.waiters = 1
	}
	return j
}

// Get returns the job with the given id.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// List snapshots every live job, newest first.
func (m *Manager) List() []Snapshot {
	m.mu.Lock()
	jobs := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	out := make([]Snapshot, len(jobs))
	for i, j := range jobs {
		out[i] = j.Snapshot()
	}
	sort.Slice(out, func(i, k int) bool {
		if !out[i].Created.Equal(out[k].Created) {
			return out[i].Created.After(out[k].Created)
		}
		return out[i].ID > out[k].ID
	})
	return out
}

// Cancel requests cancellation of the job with the given id. A queued
// job is finished immediately as canceled; a running job has its
// controller tripped and lands in canceled with a degradation report
// once the pipeline unwinds. Returns false when the id is unknown; a
// job already finished returns true with no effect.
func (m *Manager) Cancel(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return false
	}
	m.cancelLocked(j, "cancel requested")
	return true
}

// cancelLocked cancels j. Caller holds m.mu.
func (m *Manager) cancelLocked(j *Job, detail string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateQueued:
		j.cancelRequested = true
		j.degradation = &runctl.Degradation{
			Truncated: true,
			Reason:    runctl.ReasonCancel,
			Detail:    detail + " before start",
		}
		delete(m.byKey, j.key)
		j.finishLocked(StateCanceled, time.Now())
		m.journalFor(j, journal.Event{Type: journal.EvCancelled, Error: detail + " before start"})
	case StateRunning:
		j.cancelRequested = true
		j.ctl.Cancel(detail) // the run unwinds; the worker finalizes the state
	default:
		// Already terminal: idempotent no-op.
	}
}

// Release signals that one waiter stopped caring about the job. When
// the last waiter of a non-detached job leaves before it finished, the
// job is canceled (nobody can ever read the result) and Release
// reports true so the caller knows a partial result is imminent on
// Done.
func (m *Manager) Release(j *Job) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	j.mu.Lock()
	j.waiters--
	abandon := j.waiters <= 0 && !j.detached && !j.state.Finished()
	j.mu.Unlock()
	if abandon {
		m.cancelLocked(j, "abandoned by all waiters")
	}
	return abandon
}

// worker executes jobs until the queue closes.
func (m *Manager) worker() {
	defer m.workers.Done()
	for j := range m.queue {
		m.met.queueDepth.Set(int64(len(m.queue)))
		m.run(j)
	}
}

// run executes one job end to end (one attempt; a transient failure
// with retry budget loops the job back through the queue).
func (m *Manager) run(j *Job) {
	j.mu.Lock()
	j.inQueue = false
	if j.state != StateQueued { // canceled while waiting in the queue
		j.mu.Unlock()
		return
	}
	attempt := j.attempt
	checkpoint := j.checkpoint
	var deadline time.Time
	if j.timeout > 0 {
		deadline = time.Now().Add(j.timeout)
	}
	// With a journal, every resumable snapshot the mine emits is both
	// remembered on the job (so a retry in this process resumes) and
	// appended to the WAL (so a restarted process resumes).
	var sink func([]byte)
	if m.opts.Journal != nil && j.journaled {
		sink = func(payload []byte) {
			j.mu.Lock()
			j.checkpoint = payload
			j.mu.Unlock()
			m.journalFor(j, journal.Event{Type: journal.EvCheckpoint, State: payload})
		}
	}
	ctl := runctl.New(runctl.Options{Deadline: deadline, Budgets: m.opts.Budgets, Metrics: m.opts.Metrics, CheckpointSink: sink})
	j.ctl = ctl
	j.state = StateRunning
	started := time.Now()
	j.started = started
	j.err = nil
	j.mu.Unlock()

	cfg := j.cfg
	if m.opts.CheckpointEvery > 0 {
		cfg.CheckpointEvery = m.opts.CheckpointEvery
	}
	if len(checkpoint) > 0 {
		if rs, err := core.DecodeResumeState(checkpoint); err == nil {
			cfg.Resume = rs
		} else {
			m.logf("jobs: %s checkpoint undecodable, mining from scratch: %v", j.id, err)
		}
	}
	m.journalFor(j, journal.Event{Type: journal.EvStarted, Attempt: attempt})

	// Handshake with Shutdown's drain deadline: the flag is set before
	// the running-job sweep, so a job that reached running after the
	// sweep observes the flag here and self-cancels; a job that reached
	// running before is caught by the sweep.
	if m.draining.Load() {
		m.mu.Lock()
		m.cancelLocked(j, "server shutting down")
		m.mu.Unlock()
	}

	m.busy.Add(1)
	m.executions.Add(1)
	m.met.busy.Add(1)
	m.met.executions.Inc()
	res, err := m.execIsolated(ctl, cfg)
	m.busy.Add(-1)
	m.met.busy.Add(-1)

	deg := ctl.Report()
	now := time.Now()
	// Every execution, terminal or retried, occupied a worker for this
	// long — exactly what the admission-control wait estimate needs.
	m.updateAvgRun(now.Sub(started))
	m.met.runSeconds.Observe(now.Sub(started).Seconds())

	j.mu.Lock()
	canceled := j.cancelRequested || (deg.Truncated && deg.Reason == runctl.ReasonCancel)
	if err != nil && !IsPermanent(err) && !canceled && !m.draining.Load() && attempt < m.opts.MaxRetries {
		// Transient failure with retry budget left: back to queued; the
		// backoff timer re-enqueues, and the next attempt resumes from
		// the last checkpoint instead of from zero.
		j.state = StateQueued
		j.attempt = attempt + 1
		j.retryPending = true
		j.ctl = nil
		j.started = time.Time{}
		j.mu.Unlock()
		m.scheduleRetry(j, attempt+1, err)
		return
	}
	j.err = err
	if err == nil {
		j.result = &res
	}
	if deg.Truncated {
		j.degradation = &deg
	}
	switch {
	case err != nil:
		j.finishLocked(StateFailed, now)
	case canceled:
		j.finishLocked(StateCanceled, now)
	default:
		j.finishLocked(StateDone, now)
	}
	state := j.state
	j.mu.Unlock()
	m.met.finished(state).Inc()

	m.mu.Lock()
	if m.byKey[j.key] == j {
		delete(m.byKey, j.key)
	}
	if state == StateDone && !res.Truncated {
		m.cache.put(j.key, res)
	}
	entries, _ := m.cache.stats()
	m.met.cacheEntries.Set(int64(entries))
	m.mu.Unlock()

	switch state {
	case StateDone:
		var resultBytes []byte
		if buf, encErr := core.EncodeResult(res); encErr == nil {
			resultBytes = buf
		} else {
			m.logf("jobs: %s result not journaled: %v", j.id, encErr)
		}
		m.journalFor(j, journal.Event{Type: journal.EvCompleted, Result: resultBytes, AtMs: now.UnixMilli()})
	case StateFailed:
		m.journalFor(j, journal.Event{Type: journal.EvFailed, Error: err.Error(), AtMs: now.UnixMilli()})
	case StateCanceled:
		m.journalFor(j, journal.Event{Type: journal.EvCancelled, Error: deg.Detail, AtMs: now.UnixMilli()})
	}

	switch {
	case err != nil:
		m.logf("jobs: %s failed after %s: %v", j.id, now.Sub(started).Round(time.Millisecond), err)
	case deg.Truncated:
		m.logf("jobs: %s %s after %s: %s", j.id, state, now.Sub(started).Round(time.Millisecond), deg.String())
	}
}

// execIsolated runs the executor behind a panic barrier so one
// pathological mine cannot take down the worker pool. A panic carrying
// a Permanent-marked error keeps the marker, so the retry loop sees it;
// any other panic value is a transient failure.
func (m *Manager) execIsolated(ctl *runctl.Controller, cfg core.Config) (res core.Result, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			if e, ok := rec.(error); ok && IsPermanent(e) {
				err = e
				return
			}
			err = fmt.Errorf("mine panicked: %v", rec)
		}
	}()
	return m.exec(ctl, cfg), nil
}

// janitor evicts finished jobs past their TTL.
func (m *Manager) janitor() {
	interval := m.opts.TTL / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	if interval > 30*time.Second {
		interval = 30 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-m.janitorStop:
			return
		case now := <-t.C:
			m.evictExpired(now)
		}
	}
}

// evictExpired drops finished jobs whose TTL passed. Only terminal
// jobs are reaped, and even a terminal job is held while anything still
// references it: a worker that will yet dequeue it from the queue
// channel (canceled-in-queue jobs stay physically enqueued), or a
// pending retry-backoff timer. A queued or running job is never
// evicted, however old — its worker owns it.
func (m *Manager) evictExpired(now time.Time) {
	cutoff := now.Add(-m.opts.TTL)
	m.mu.Lock()
	defer m.mu.Unlock()
	for id, j := range m.jobs {
		j.mu.Lock()
		expired := j.state.Finished() && !j.inQueue && !j.retryPending &&
			j.retryTimer == nil && j.finished.Before(cutoff)
		j.mu.Unlock()
		if expired {
			delete(m.jobs, id)
		}
	}
}

// Stats snapshots the manager's operational counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	byState := make(map[State]int)
	jobs := len(m.jobs)
	for _, j := range m.jobs {
		j.mu.Lock()
		byState[j.state]++
		j.mu.Unlock()
	}
	depth := len(m.queue)
	qcap := cap(m.queue)
	m.mu.Unlock()
	entries, capacity := m.cache.stats()
	return Stats{
		Workers:     m.opts.Workers,
		Busy:        int(m.busy.Load()),
		QueueDepth:  depth,
		QueueCap:    qcap,
		Jobs:        jobs,
		ByState:     byState,
		Executions:  m.executions.Load(),
		Coalesced:   m.coalesced.Load(),
		CacheHits:   m.cacheHits.Load(),
		CacheMisses: m.cacheMisses.Load(),
		Rejected:    m.rejected.Load(),
		Shed:        m.shed.Load(),
		Retries:     m.retries.Load(),
		Replayed:    m.replayed.Load(),
		Stalled:     m.stalled.Load(),
		CacheSize:   entries,
		CacheCap:    capacity,
	}
}

// Shutdown drains the manager: new submissions are rejected, queued
// jobs are canceled (their results could never be retrieved after the
// process exits), and running jobs get until ctx is done to finish
// before their controllers are tripped. Shutdown returns once every
// worker has exited; the returned error is ctx's if the drain deadline
// forced cancellation. Idempotent.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.workers.Wait()
		return nil
	}
	m.closed = true
	close(m.janitorStop)
	// Cancel everything still queued, then close the queue so workers
	// exit once the backlog of already-dequeued jobs completes.
	for {
		select {
		case j := <-m.queue:
			j.mu.Lock()
			j.inQueue = false // drained here; no worker will dequeue it
			j.mu.Unlock()
			m.cancelLocked(j, "server shutting down")
			continue
		default:
		}
		break
	}
	close(m.queue)
	m.mu.Unlock()

	workersDone := make(chan struct{})
	runctl.Spawn("jobs shutdown waiter", m.spawnPanic, func() {
		m.workers.Wait()
		close(workersDone)
	})
	select {
	case <-workersDone:
		return nil
	case <-ctx.Done():
	}
	// Drain deadline passed: trip every running controller and wait for
	// the pipeline to unwind into partial results. The flag is set
	// before the sweep so run() self-cancels any job that reaches
	// running after the sweep collected its victims.
	m.draining.Store(true)
	m.mu.Lock()
	for _, j := range m.jobs {
		m.cancelLocked(j, "shutdown drain deadline")
	}
	m.mu.Unlock()
	<-workersDone
	return ctx.Err()
}
