package jobs

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"graphsig/internal/core"
	"graphsig/internal/graph"
	"graphsig/internal/runctl"
)

func tinyDB() []*graph.Graph {
	g := graph.New(3, 2)
	a := g.AddNode(0)
	b := g.AddNode(1)
	c := g.AddNode(0)
	g.MustAddEdge(a, b, 0)
	g.MustAddEdge(b, c, 0)
	return []*graph.Graph{g}
}

// newTestManager builds a manager over a tiny db with a quiet logger
// and shuts it down at test end.
func newTestManager(t *testing.T, opt Options) *Manager {
	t.Helper()
	if opt.DB == nil {
		opt.DB = tinyDB()
	}
	if opt.Logf == nil {
		opt.Logf = t.Logf
	}
	m := NewManager(opt)
	t.Cleanup(func() {
		// Short drain: leftover blocked jobs are force-canceled quickly.
		ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
		defer cancel()
		m.Shutdown(ctx)
	})
	return m
}

// cfgN returns a config distinguished by its cutoff radius, so tests
// can mint distinct dedup keys on demand.
func cfgN(n int) core.Config {
	cfg := core.Defaults()
	cfg.CutoffRadius = n
	return cfg
}

// waitState polls until the job reaches state or the deadline passes.
func waitState(t *testing.T, j *Job, want State) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if j.Snapshot().State == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s (state %s)", j.ID(), want, j.Snapshot().State)
}

// TestCoalesceConcurrentExactlyOnce is the acceptance criterion:
// identical concurrent submissions execute the pipeline exactly once.
func TestCoalesceConcurrentExactlyOnce(t *testing.T) {
	var execs atomic.Int64
	release := make(chan struct{})
	started := make(chan struct{}, 16)
	m := newTestManager(t, Options{
		Workers: 2,
		Exec: func(ctl *runctl.Controller, cfg core.Config) core.Result {
			execs.Add(1)
			started <- struct{}{}
			<-release
			return core.Result{VectorsMined: 7}
		},
	})

	const n = 8
	jobsOut := make([]*Job, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j, _, err := m.Submit(cfgN(4), SubmitOptions{Detached: true})
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			jobsOut[i] = j
		}(i)
	}
	wg.Wait()
	<-started // the single execution is in flight
	close(release)
	for i, j := range jobsOut {
		if j == nil {
			t.Fatalf("submit %d returned no job", i)
		}
		<-j.Done()
		if jobsOut[i].ID() != jobsOut[0].ID() {
			t.Errorf("submit %d got distinct job %s vs %s", i, j.ID(), jobsOut[0].ID())
		}
	}
	if got := execs.Load(); got != 1 {
		t.Fatalf("pipeline executed %d times for %d identical submissions; want exactly 1", got, n)
	}
	snap := jobsOut[0].Snapshot()
	if snap.State != StateDone || snap.Result == nil || snap.Result.VectorsMined != 7 {
		t.Errorf("coalesced job snapshot = %+v", snap)
	}
	st := m.Stats()
	if st.Coalesced != n-1 {
		t.Errorf("coalesced counter = %d; want %d", st.Coalesced, n-1)
	}
}

// TestSequentialCacheHit: the same request after completion comes back
// from the cache without re-executing.
func TestSequentialCacheHit(t *testing.T) {
	var execs atomic.Int64
	m := newTestManager(t, Options{
		Workers: 1,
		Exec: func(ctl *runctl.Controller, cfg core.Config) core.Result {
			execs.Add(1)
			return core.Result{VectorsMined: int(execs.Load())}
		},
	})
	j1, info1, err := m.Submit(cfgN(4), SubmitOptions{Detached: true})
	if err != nil || info1.Cached || info1.Coalesced {
		t.Fatalf("first submit: %+v %v", info1, err)
	}
	<-j1.Done()

	j2, info2, err := m.Submit(cfgN(4), SubmitOptions{Detached: true})
	if err != nil {
		t.Fatal(err)
	}
	if !info2.Cached {
		t.Fatal("identical sequential submit missed the cache")
	}
	select {
	case <-j2.Done():
	default:
		t.Fatal("cached job not born finished")
	}
	snap := j2.Snapshot()
	if snap.State != StateDone || !snap.Cached || snap.Result == nil || snap.Result.VectorsMined != 1 {
		t.Errorf("cached snapshot = %+v", snap)
	}
	if execs.Load() != 1 {
		t.Errorf("executions = %d; want 1", execs.Load())
	}
	if j2.ID() == j1.ID() {
		t.Error("cache hit should mint a fresh job id")
	}

	// A different config is a different key: it executes.
	j3, info3, err := m.Submit(cfgN(5), SubmitOptions{Detached: true})
	if err != nil || info3.Cached || info3.Coalesced {
		t.Fatalf("distinct submit: %+v %v", info3, err)
	}
	<-j3.Done()
	if execs.Load() != 2 {
		t.Errorf("executions after distinct config = %d; want 2", execs.Load())
	}
}

// TestTruncatedResultsNotCached: a cut-short mine must not poison the
// cache — the next identical request re-executes.
func TestTruncatedResultsNotCached(t *testing.T) {
	var execs atomic.Int64
	m := newTestManager(t, Options{
		Workers: 1,
		Exec: func(ctl *runctl.Controller, cfg core.Config) core.Result {
			execs.Add(1)
			return core.Result{Truncated: true}
		},
	})
	j1, _, err := m.Submit(cfgN(4), SubmitOptions{Detached: true})
	if err != nil {
		t.Fatal(err)
	}
	<-j1.Done()
	j2, info, err := m.Submit(cfgN(4), SubmitOptions{Detached: true})
	if err != nil {
		t.Fatal(err)
	}
	if info.Cached {
		t.Fatal("truncated result served from cache")
	}
	<-j2.Done()
	if execs.Load() != 2 {
		t.Errorf("executions = %d; want 2", execs.Load())
	}
}

// ctlLoopExec runs checkpoint steps until the controller trips,
// returning a partial result — a stand-in for the real pipeline's
// cancellation behavior.
func ctlLoopExec(started chan<- string) ExecFunc {
	return func(ctl *runctl.Controller, cfg core.Config) core.Result {
		if started != nil {
			started <- "running"
		}
		cp := ctl.Checkpoint(runctl.StageFVMine)
		for {
			if err := cp.Force(); err != nil {
				return core.Result{Truncated: true}
			}
			time.Sleep(time.Millisecond)
		}
	}
}

// TestCancelRunningJob is the acceptance criterion: DELETE on a
// running job cancels it through runctl and it lands canceled with a
// degradation report.
func TestCancelRunningJob(t *testing.T) {
	started := make(chan string, 1)
	m := newTestManager(t, Options{Workers: 1, Exec: ctlLoopExec(started)})
	j, _, err := m.Submit(cfgN(4), SubmitOptions{Detached: true})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	waitState(t, j, StateRunning)
	if !m.Cancel(j.ID()) {
		t.Fatal("cancel of known job reported unknown")
	}
	select {
	case <-j.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("canceled job never finished")
	}
	snap := j.Snapshot()
	if snap.State != StateCanceled {
		t.Fatalf("state = %s; want canceled", snap.State)
	}
	if !snap.CancelRequested {
		t.Error("cancelRequested not set")
	}
	if snap.Degradation == nil {
		t.Fatal("canceled job carries no degradation report")
	}
	if snap.Degradation.Reason != runctl.ReasonCancel {
		t.Errorf("degradation reason = %q; want cancel", snap.Degradation.Reason)
	}
	if snap.Result == nil {
		t.Error("canceled job dropped its partial result")
	}
	// The canceled run must not be cached.
	if _, info, _ := m.Submit(cfgN(4), SubmitOptions{Detached: true}); info.Cached {
		t.Error("canceled result served from cache")
	}
}

// TestCancelQueuedJob: canceling a job still in the queue finishes it
// immediately and the worker never runs it.
func TestCancelQueuedJob(t *testing.T) {
	var execs atomic.Int64
	release := make(chan struct{})
	started := make(chan struct{}, 4)
	m := newTestManager(t, Options{
		Workers:    1,
		QueueDepth: 4,
		Exec: func(ctl *runctl.Controller, cfg core.Config) core.Result {
			execs.Add(1)
			started <- struct{}{}
			<-release
			return core.Result{}
		},
	})
	blocker, _, err := m.Submit(cfgN(1), SubmitOptions{Detached: true})
	if err != nil {
		t.Fatal(err)
	}
	<-started // worker is occupied
	queued, _, err := m.Submit(cfgN(2), SubmitOptions{Detached: true})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Cancel(queued.ID()) {
		t.Fatal("cancel reported unknown job")
	}
	select {
	case <-queued.Done():
	default:
		t.Fatal("queued job not finished immediately on cancel")
	}
	snap := queued.Snapshot()
	if snap.State != StateCanceled || snap.Degradation == nil || snap.Degradation.Reason != runctl.ReasonCancel {
		t.Errorf("canceled-queued snapshot = %+v", snap)
	}
	close(release)
	<-blocker.Done()
	if execs.Load() != 1 {
		t.Errorf("canceled queued job executed (execs=%d)", execs.Load())
	}
}

// TestQueueFullBackpressure: a full queue rejects with depth info
// instead of buffering.
func TestQueueFullBackpressure(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	m := newTestManager(t, Options{
		Workers:    1,
		QueueDepth: 1,
		Exec: func(ctl *runctl.Controller, cfg core.Config) core.Result {
			started <- struct{}{}
			<-release
			return core.Result{}
		},
	})
	defer close(release)
	if _, _, err := m.Submit(cfgN(1), SubmitOptions{Detached: true}); err != nil {
		t.Fatal(err)
	}
	<-started // dequeued and running; the queue itself is empty again
	if _, _, err := m.Submit(cfgN(2), SubmitOptions{Detached: true}); err != nil {
		t.Fatal(err) // fills the one queue slot
	}
	_, _, err := m.Submit(cfgN(3), SubmitOptions{Detached: true})
	var full *ErrQueueFull
	if !errors.As(err, &full) {
		t.Fatalf("overflow submit error = %v; want ErrQueueFull", err)
	}
	if full.Depth != 1 || full.Cap != 1 {
		t.Errorf("ErrQueueFull = %+v; want depth 1 of cap 1", full)
	}
	if m.Stats().Rejected != 1 {
		t.Errorf("rejected counter = %d; want 1", m.Stats().Rejected)
	}
}

// TestReleaseAbandonsLastWaiter: when every synchronous waiter leaves,
// the job is canceled rather than mining for nobody.
func TestReleaseAbandonsLastWaiter(t *testing.T) {
	started := make(chan string, 1)
	m := newTestManager(t, Options{Workers: 1, Exec: ctlLoopExec(started)})
	j, _, err := m.Submit(cfgN(4), SubmitOptions{}) // not detached: one waiter
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if !m.Release(j) {
		t.Fatal("last-waiter release did not abandon the job")
	}
	select {
	case <-j.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("abandoned job never unwound")
	}
	if st := j.Snapshot().State; st != StateCanceled {
		t.Errorf("abandoned job state = %s; want canceled", st)
	}
}

// TestDetachedJobSurvivesRelease: an async job keeps running with zero
// waiters.
func TestDetachedJobSurvivesRelease(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	m := newTestManager(t, Options{
		Workers: 1,
		Exec: func(ctl *runctl.Controller, cfg core.Config) core.Result {
			started <- struct{}{}
			<-release
			return core.Result{VectorsMined: 1}
		},
	})
	j, _, err := m.Submit(cfgN(4), SubmitOptions{Detached: true})
	if err != nil {
		t.Fatal(err)
	}
	// A sync waiter coalesces on, then leaves: must not kill the job.
	j2, info, err := m.Submit(cfgN(4), SubmitOptions{})
	if err != nil || !info.Coalesced || j2 != j {
		t.Fatalf("coalesce: %+v %v", info, err)
	}
	<-started
	if m.Release(j2) {
		t.Fatal("release of coalesced waiter canceled a detached job")
	}
	close(release)
	<-j.Done()
	if st := j.Snapshot().State; st != StateDone {
		t.Errorf("detached job state = %s; want done", st)
	}
}

// TestTTLEviction: finished jobs vanish from the store after the TTL.
func TestTTLEviction(t *testing.T) {
	m := newTestManager(t, Options{
		Workers: 1,
		TTL:     30 * time.Millisecond,
		Exec: func(ctl *runctl.Controller, cfg core.Config) core.Result {
			return core.Result{}
		},
	})
	j, _, err := m.Submit(cfgN(4), SubmitOptions{Detached: true})
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := m.Get(j.ID()); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("finished job never evicted past TTL")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Eviction drops the job record, not the cached result.
	if _, info, _ := m.Submit(cfgN(4), SubmitOptions{Detached: true}); !info.Cached {
		t.Error("result cache lost the entry on job eviction")
	}
}

// TestFailedJobIsolation: a panicking mine lands in failed with the
// panic message, and the worker survives to run the next job.
func TestFailedJobIsolation(t *testing.T) {
	m := newTestManager(t, Options{
		Workers: 1,
		Exec: func(ctl *runctl.Controller, cfg core.Config) core.Result {
			if cfg.CutoffRadius == 13 {
				panic("boom")
			}
			return core.Result{VectorsMined: 1}
		},
	})
	bad, _, err := m.Submit(cfgN(13), SubmitOptions{Detached: true})
	if err != nil {
		t.Fatal(err)
	}
	<-bad.Done()
	snap := bad.Snapshot()
	if snap.State != StateFailed || snap.Err == "" {
		t.Fatalf("panicked job snapshot = %+v", snap)
	}
	// Failed results must not be cached.
	if _, info, _ := m.Submit(cfgN(13), SubmitOptions{Detached: true}); info.Cached {
		t.Error("failed result served from cache")
	}
	good, _, err := m.Submit(cfgN(4), SubmitOptions{Detached: true})
	if err != nil {
		t.Fatal(err)
	}
	<-good.Done()
	if st := good.Snapshot().State; st != StateDone {
		t.Errorf("worker did not survive the panic: next job state = %s", st)
	}
}

// TestShutdownDrains: shutdown cancels queued jobs, lets running jobs
// finish within the deadline, and rejects new submissions.
func TestShutdownDrains(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	m := NewManager(Options{
		DB:      tinyDB(),
		Workers: 1,
		Logf:    t.Logf,
		Exec: func(ctl *runctl.Controller, cfg core.Config) core.Result {
			started <- struct{}{}
			<-release
			return core.Result{VectorsMined: 1}
		},
	})
	running, _, err := m.Submit(cfgN(1), SubmitOptions{Detached: true})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, _, err := m.Submit(cfgN(2), SubmitOptions{Detached: true})
	if err != nil {
		t.Fatal(err)
	}

	go func() {
		time.Sleep(20 * time.Millisecond)
		close(release) // the running job finishes well inside the drain window
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatalf("drain within deadline returned %v", err)
	}
	if st := running.Snapshot().State; st != StateDone {
		t.Errorf("running job state after graceful drain = %s; want done", st)
	}
	if st := queued.Snapshot().State; st != StateCanceled {
		t.Errorf("queued job state after shutdown = %s; want canceled", st)
	}
	if _, _, err := m.Submit(cfgN(3), SubmitOptions{Detached: true}); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after shutdown = %v; want ErrClosed", err)
	}
}

// TestShutdownDeadlineCancelsRunning: a drain that overruns its budget
// trips the running controllers into partial results.
func TestShutdownDeadlineCancelsRunning(t *testing.T) {
	started := make(chan string, 1)
	m := NewManager(Options{DB: tinyDB(), Workers: 1, Logf: t.Logf, Exec: ctlLoopExec(started)})
	j, _, err := m.Submit(cfgN(1), SubmitOptions{Detached: true})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := m.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("overrun drain returned %v; want deadline exceeded", err)
	}
	snap := j.Snapshot()
	if snap.State != StateCanceled {
		t.Errorf("state after forced drain = %s; want canceled", snap.State)
	}
	if snap.Degradation == nil || snap.Degradation.Reason != runctl.ReasonCancel {
		t.Errorf("degradation after forced drain = %+v", snap.Degradation)
	}
}

// TestStatsCounters sanity-checks the operational counters.
func TestStatsCounters(t *testing.T) {
	m := newTestManager(t, Options{
		Workers: 3,
		Exec: func(ctl *runctl.Controller, cfg core.Config) core.Result {
			return core.Result{}
		},
	})
	j, _, _ := m.Submit(cfgN(1), SubmitOptions{Detached: true})
	<-j.Done()
	m.Submit(cfgN(1), SubmitOptions{Detached: true}) // cache hit
	st := m.Stats()
	if st.Workers != 3 || st.QueueCap == 0 {
		t.Errorf("stats shape: %+v", st)
	}
	if st.Executions != 1 || st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Errorf("counters: %+v", st)
	}
	if st.ByState[StateDone] != 2 {
		t.Errorf("byState: %+v", st.ByState)
	}
	if st.CacheSize != 1 {
		t.Errorf("cacheSize = %d; want 1", st.CacheSize)
	}
}

// TestProgressSnapshot: a running job exposes live runctl counters.
func TestProgressSnapshot(t *testing.T) {
	started := make(chan string, 1)
	m := newTestManager(t, Options{Workers: 1, Exec: ctlLoopExec(started)})
	j, _, err := m.Submit(cfgN(4), SubmitOptions{Detached: true})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	deadline := time.Now().Add(5 * time.Second)
	for {
		p := j.Snapshot().Progress
		if p.Checks > 0 && p.FVMineStates > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no progress observed: %+v", p)
		}
		time.Sleep(2 * time.Millisecond)
	}
	m.Cancel(j.ID())
	<-j.Done()
	if p := j.Snapshot().Progress; p.Total() == 0 {
		t.Errorf("final progress zero: %+v", p)
	}
}
