// Package journal is the durability layer of the jobs server: an
// append-only, CRC-framed, fsync-on-commit write-ahead log of job
// lifecycle events. The jobs manager appends one event per lifecycle
// transition (submitted, started, checkpoint, retrying, completed,
// failed, cancelled); on startup, Open replays the log — repairing a
// torn or corrupt tail by truncating back to the last intact record —
// folds the events into per-job records, and compacts the file so only
// each job's live minimum (submission, latest checkpoint, terminal
// outcome) survives. Payloads are opaque JSON blobs owned by the
// caller; the journal knows framing and lifecycle, not mining.
//
// Frame format, little-endian, one record per event:
//
//	uint32 length | uint32 crc32(payload) | payload (JSON Event)
//
// Every append is a single write followed by fsync before Append
// returns: job lifecycle events are low-rate (a handful per job, plus
// one checkpoint per few mined groups), so the fsync cost buys the
// strongest guarantee — an acknowledged event survives kill -9 and
// power loss. A record that was being written when the process died is
// at the tail by construction and is cut off on the next Open.
package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"graphsig/internal/obs"
)

// Event types, in lifecycle order.
const (
	EvSubmitted  = "submitted"
	EvStarted    = "started"
	EvCheckpoint = "checkpoint"
	EvRetrying   = "retrying"
	EvCompleted  = "completed"
	EvFailed     = "failed"
	EvCancelled  = "cancelled"
)

// Event is one journaled lifecycle transition. Job is the subject; the
// remaining fields are type-dependent and omitted when empty.
type Event struct {
	Type string `json:"type"`
	Job  string `json:"job"`
	// AtMs is the event's wall-clock time in Unix milliseconds; replay
	// uses it to age out terminal jobs past the retention window.
	AtMs int64 `json:"atMs,omitempty"`
	// Key is the job's MineKey (submitted events).
	Key string `json:"key,omitempty"`
	// Label is the human-readable job label (submitted events).
	Label string `json:"label,omitempty"`
	// Config is the persisted mining config (submitted events).
	Config json.RawMessage `json:"config,omitempty"`
	// TimeoutMs is the job's per-run timeout (submitted events).
	TimeoutMs int64 `json:"timeoutMs,omitempty"`
	// Attempt is the 0-based execution attempt (started/retrying).
	Attempt int `json:"attempt,omitempty"`
	// State is a resumable mining snapshot (checkpoint events).
	State json.RawMessage `json:"state,omitempty"`
	// Result is the persisted final result (completed events).
	Result json.RawMessage `json:"result,omitempty"`
	// Error is the failure detail (failed/cancelled/retrying events).
	Error string `json:"error,omitempty"`
}

// terminal reports whether the event type ends a job's lifecycle.
func terminal(typ string) bool {
	return typ == EvCompleted || typ == EvFailed || typ == EvCancelled
}

// JobRecord is the folded state of one job after replay: its submission
// identity plus the latest checkpoint and outcome. Terminal is "" for a
// job the crash interrupted — the manager re-enqueues it, resuming from
// Checkpoint — or one of completed/failed/cancelled.
type JobRecord struct {
	ID          string
	Key         string
	Label       string
	Config      []byte
	TimeoutMs   int64
	SubmittedMs int64
	Attempt     int
	Checkpoint  []byte
	Terminal    string
	FinishedMs  int64
	Result      []byte
	Error       string

	// order is the record's submission position, for deterministic
	// replay ordering.
	order int
}

// Options configures Open.
type Options struct {
	// Retention drops terminal jobs whose finish time is older than
	// this window from both replay and the compacted file (0 = keep
	// all). Managers pass their result TTL so the journal cannot
	// outgrow the store it rebuilds.
	Retention time.Duration
	// Metrics, when non-nil, receives journal counters (records
	// appended by type, tail truncations, append errors).
	Metrics *obs.Registry
}

// Journal is an open write-ahead log. Appends are serialized and
// fsynced; a Journal is safe for concurrent use.
type Journal struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	metrics *obs.Registry
	closed  bool
}

// FileName is the journal's file name inside its directory.
const FileName = "jobs.wal"

// maxRecord bounds a single record; a length prefix beyond it is
// treated as tail corruption, not an allocation request.
const maxRecord = 1 << 28

// Open opens (creating if needed) the journal in dir, repairs a corrupt
// or torn tail, replays surviving events into JobRecords (submission
// order), compacts the file down to the live minimum, and returns the
// journal ready for appends.
func Open(dir string, opt Options) (*Journal, []JobRecord, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: create dir: %w", err)
	}
	path := filepath.Join(dir, FileName)
	events, err := recoverEvents(path, opt.Metrics)
	if err != nil {
		return nil, nil, err
	}
	records := fold(events, opt.Retention)
	if err := compact(path, records); err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: open: %w", err)
	}
	return &Journal{f: f, path: path, metrics: opt.Metrics}, records, nil
}

// Path returns the journal file's path.
func (j *Journal) Path() string { return j.path }

// Append frames, writes and fsyncs one event. The event is durable when
// Append returns nil. A nil Journal ignores appends, so callers can run
// without durability by simply not opening one.
func (j *Journal) Append(ev Event) error {
	if j == nil {
		return nil
	}
	payload, err := json.Marshal(ev)
	if err != nil {
		return fmt.Errorf("journal: encode event: %w", err)
	}
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[8:], payload)

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errors.New("journal: closed")
	}
	if _, err := j.f.Write(frame); err != nil {
		j.metrics.Counter(obs.MJournalErrors).Inc()
		return fmt.Errorf("journal: append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		j.metrics.Counter(obs.MJournalErrors).Inc()
		return fmt.Errorf("journal: sync: %w", err)
	}
	j.metrics.Counter(obs.MJournalRecords, "type", ev.Type).Inc()
	return nil
}

// Close syncs and closes the journal. Further appends fail.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	syncErr := j.f.Sync()
	closeErr := j.f.Close()
	if syncErr != nil {
		return fmt.Errorf("journal: close sync: %w", syncErr)
	}
	if closeErr != nil {
		return fmt.Errorf("journal: close: %w", closeErr)
	}
	return nil
}

// recoverEvents reads every intact record from path, truncating the
// file at the first torn or CRC-failing frame — by construction that
// frame and everything after it were in flight when the writer died.
// A missing file is an empty journal.
func recoverEvents(path string, reg *obs.Registry) ([]Event, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("journal: read: %w", err)
	}
	var events []Event
	off := 0
	good := 0 // offset just past the last intact record
	for {
		if off+8 > len(data) {
			break // torn or absent header
		}
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n <= 0 || n > maxRecord || off+8+n > len(data) {
			break // absurd length or torn payload
		}
		payload := data[off+8 : off+8+n]
		if crc32.ChecksumIEEE(payload) != sum {
			break // bit rot or partially overwritten tail
		}
		var ev Event
		if err := json.Unmarshal(payload, &ev); err != nil {
			break // framed garbage: treat as corruption, not data
		}
		events = append(events, ev)
		off += 8 + n
		good = off
	}
	if good < len(data) {
		reg.Counter(obs.MJournalTruncations).Inc()
		if err := os.Truncate(path, int64(good)); err != nil {
			return nil, fmt.Errorf("journal: truncate corrupt tail: %w", err)
		}
	}
	return events, nil
}

// fold collapses an event sequence into per-job records, dropping
// terminal jobs older than the retention window. Records come back in
// submission order.
func fold(events []Event, retention time.Duration) []JobRecord {
	byID := map[string]*JobRecord{}
	order := 0
	for _, ev := range events {
		rec := byID[ev.Job]
		if rec == nil {
			if ev.Type != EvSubmitted {
				// Lifecycle events for a job whose submission was
				// compacted away or lost: nothing to rebuild from.
				continue
			}
			rec = &JobRecord{ID: ev.Job, order: order}
			order++
			byID[ev.Job] = rec
		}
		switch ev.Type {
		case EvSubmitted:
			rec.Key, rec.Label, rec.TimeoutMs = ev.Key, ev.Label, ev.TimeoutMs
			rec.SubmittedMs = ev.AtMs
			rec.Config = append([]byte(nil), ev.Config...)
		case EvStarted, EvRetrying:
			if ev.Attempt > rec.Attempt {
				rec.Attempt = ev.Attempt
			}
		case EvCheckpoint:
			rec.Checkpoint = append([]byte(nil), ev.State...)
		case EvCompleted:
			rec.Terminal, rec.FinishedMs = EvCompleted, ev.AtMs
			rec.Result = append([]byte(nil), ev.Result...)
		case EvFailed:
			rec.Terminal, rec.FinishedMs, rec.Error = EvFailed, ev.AtMs, ev.Error
		case EvCancelled:
			rec.Terminal, rec.FinishedMs, rec.Error = EvCancelled, ev.AtMs, ev.Error
		}
	}
	cutoff := int64(0)
	if retention > 0 {
		cutoff = time.Now().Add(-retention).UnixMilli()
	}
	out := make([]JobRecord, 0, len(byID))
	for _, rec := range byID {
		if rec.Terminal != "" && rec.FinishedMs < cutoff {
			continue // aged out: the store would have reaped it too
		}
		out = append(out, *rec)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].order < out[k].order })
	return out
}

// compact rewrites the journal to the live minimum — per job: its
// submission, latest attempt, latest checkpoint, and terminal outcome —
// via a temp file renamed into place, so a crash mid-compaction leaves
// either the old file or the new one, never a hybrid.
func compact(path string, records []JobRecord) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}
	w := func(ev Event) error {
		payload, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		frame := make([]byte, 8+len(payload))
		binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
		copy(frame[8:], payload)
		_, err = f.Write(frame)
		return err
	}
	for _, rec := range records {
		if err := writeRecord(w, rec); err != nil {
			return fmt.Errorf("journal: compact write: %w", errors.Join(err, f.Close()))
		}
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("journal: compact sync: %w", errors.Join(err, f.Close()))
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("journal: compact close: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("journal: compact rename: %w", err)
	}
	return syncDir(filepath.Dir(path))
}

// writeRecord emits one job's minimal event set.
func writeRecord(w func(Event) error, rec JobRecord) error {
	if err := w(Event{
		Type: EvSubmitted, Job: rec.ID, AtMs: rec.SubmittedMs,
		Key: rec.Key, Label: rec.Label, Config: rec.Config, TimeoutMs: rec.TimeoutMs,
	}); err != nil {
		return err
	}
	if rec.Attempt > 0 {
		if err := w(Event{Type: EvStarted, Job: rec.ID, Attempt: rec.Attempt}); err != nil {
			return err
		}
	}
	if len(rec.Checkpoint) > 0 {
		if err := w(Event{Type: EvCheckpoint, Job: rec.ID, State: rec.Checkpoint}); err != nil {
			return err
		}
	}
	switch rec.Terminal {
	case EvCompleted:
		return w(Event{Type: EvCompleted, Job: rec.ID, AtMs: rec.FinishedMs, Result: rec.Result})
	case EvFailed:
		return w(Event{Type: EvFailed, Job: rec.ID, AtMs: rec.FinishedMs, Error: rec.Error})
	case EvCancelled:
		return w(Event{Type: EvCancelled, Job: rec.ID, AtMs: rec.FinishedMs, Error: rec.Error})
	}
	return nil
}

// syncDir fsyncs a directory so a rename inside it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("journal: open dir: %w", err)
	}
	syncErr := d.Sync()
	closeErr := d.Close()
	if syncErr != nil {
		return fmt.Errorf("journal: sync dir: %w", syncErr)
	}
	if closeErr != nil {
		return fmt.Errorf("journal: close dir: %w", closeErr)
	}
	return nil
}

// NowMs returns the current wall clock in Unix milliseconds — the
// stamp managers put on events.
func NowMs() int64 { return time.Now().UnixMilli() }

var _ io.Closer = (*Journal)(nil)
