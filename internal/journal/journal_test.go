package journal

import (
	"encoding/binary"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"graphsig/internal/obs"
)

func openT(t *testing.T, dir string, opt Options) (*Journal, []JobRecord) {
	t.Helper()
	j, recs, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	return j, recs
}

func appendT(t *testing.T, j *Journal, evs ...Event) {
	t.Helper()
	for _, ev := range evs {
		if err := j.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
}

func closeT(t *testing.T, j *Journal) {
	t.Helper()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestReplayFoldsLifecycle(t *testing.T) {
	dir := t.TempDir()
	j, recs := openT(t, dir, Options{})
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	appendT(t, j,
		Event{Type: EvSubmitted, Job: "a", AtMs: 10, Key: "k-a", Label: "mine a", Config: json.RawMessage(`{"v":1}`), TimeoutMs: 5000},
		Event{Type: EvSubmitted, Job: "b", AtMs: 11, Key: "k-b", Label: "mine b"},
		Event{Type: EvStarted, Job: "a", Attempt: 0},
		Event{Type: EvCheckpoint, Job: "a", State: json.RawMessage(`{"done":3}`)},
		Event{Type: EvCheckpoint, Job: "a", State: json.RawMessage(`{"done":7}`)},
		Event{Type: EvCompleted, Job: "b", AtMs: 20, Result: json.RawMessage(`{"ok":true}`)},
	)
	closeT(t, j)

	j2, recs := openT(t, dir, Options{})
	closeT(t, j2)
	if len(recs) != 2 {
		t.Fatalf("replayed %d records, want 2", len(recs))
	}
	a, b := recs[0], recs[1]
	if a.ID != "a" || b.ID != "b" {
		t.Fatalf("replay order %q, %q: want submission order a, b", a.ID, b.ID)
	}
	if a.Terminal != "" || string(a.Checkpoint) != `{"done":7}` || a.Key != "k-a" ||
		a.Label != "mine a" || a.TimeoutMs != 5000 || string(a.Config) != `{"v":1}` {
		t.Fatalf("incomplete job folded wrong: %+v", a)
	}
	if b.Terminal != EvCompleted || string(b.Result) != `{"ok":true}` || b.FinishedMs != 20 {
		t.Fatalf("completed job folded wrong: %+v", b)
	}
}

func TestDoubleReplayIdempotent(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, Options{})
	appendT(t, j,
		Event{Type: EvSubmitted, Job: "a", AtMs: 1, Key: "k"},
		Event{Type: EvStarted, Job: "a", Attempt: 1},
		Event{Type: EvCheckpoint, Job: "a", State: json.RawMessage(`{"done":2}`)},
		Event{Type: EvSubmitted, Job: "b", AtMs: 2},
		Event{Type: EvFailed, Job: "b", AtMs: 3, Error: "boom"},
	)
	closeT(t, j)

	// Open compacts; repeated open-close cycles must keep replaying the
	// exact same records — compaction loses nothing live.
	var prev []JobRecord
	for cycle := 0; cycle < 3; cycle++ {
		j, recs := openT(t, dir, Options{})
		closeT(t, j)
		if prev != nil {
			pa, _ := json.Marshal(prev)
			ca, _ := json.Marshal(recs)
			if string(pa) != string(ca) {
				t.Fatalf("cycle %d replayed differently:\n%s\n%s", cycle, pa, ca)
			}
		}
		prev = recs
	}
	if len(prev) != 2 || prev[0].Attempt != 1 || prev[1].Error != "boom" {
		t.Fatalf("replay lost state: %+v", prev)
	}
}

func TestCorruptTailTruncated(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, Options{})
	appendT(t, j,
		Event{Type: EvSubmitted, Job: "a", AtMs: 1},
		Event{Type: EvSubmitted, Job: "b", AtMs: 2},
	)
	closeT(t, j)
	path := filepath.Join(dir, FileName)

	// Flip one payload byte in the final record: its CRC fails, the
	// record is cut, and the intact prefix survives.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	j2, recs := openT(t, dir, Options{Metrics: reg})
	closeT(t, j2)
	if len(recs) != 1 || recs[0].ID != "a" {
		t.Fatalf("replayed %+v, want only job a", recs)
	}
	if n := reg.Counter(obs.MJournalTruncations).Value(); n != 1 {
		t.Fatalf("truncations = %d, want 1", n)
	}
}

func TestTornFinalRecordTruncated(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, Options{})
	appendT(t, j,
		Event{Type: EvSubmitted, Job: "a", AtMs: 1},
		Event{Type: EvSubmitted, Job: "b", AtMs: 2},
	)
	closeT(t, j)
	path := filepath.Join(dir, FileName)

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, 4, 9} { // mid-header, header boundary, mid-payload
		end := len(data) - cut
		if err := os.WriteFile(path, data[:end], 0o644); err != nil {
			t.Fatal(err)
		}
		j2, recs := openT(t, dir, Options{})
		closeT(t, j2)
		if len(recs) != 1 || recs[0].ID != "a" {
			t.Fatalf("cut %d: replayed %+v, want only job a", cut, recs)
		}
		// Writes after recovery must land cleanly on the repaired tail.
		j3, _ := openT(t, dir, Options{})
		appendT(t, j3, Event{Type: EvSubmitted, Job: "c", AtMs: 3})
		closeT(t, j3)
		j4, recs := openT(t, dir, Options{})
		closeT(t, j4)
		if len(recs) != 2 || recs[1].ID != "c" {
			t.Fatalf("cut %d: post-repair append lost: %+v", cut, recs)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAbsurdLengthTreatedAsCorruption(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, Options{})
	appendT(t, j, Event{Type: EvSubmitted, Job: "a", AtMs: 1})
	closeT(t, j)
	path := filepath.Join(dir, FileName)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], 1<<30) // past maxRecord
	if _, err := f.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	j2, recs := openT(t, dir, Options{})
	closeT(t, j2)
	if len(recs) != 1 || recs[0].ID != "a" {
		t.Fatalf("replayed %+v, want only job a", recs)
	}
}

func TestRetentionDropsOldTerminalJobs(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, Options{})
	old := time.Now().Add(-2 * time.Hour).UnixMilli()
	appendT(t, j,
		Event{Type: EvSubmitted, Job: "old-done", AtMs: old},
		Event{Type: EvCompleted, Job: "old-done", AtMs: old},
		Event{Type: EvSubmitted, Job: "old-live", AtMs: old},
		Event{Type: EvSubmitted, Job: "fresh", AtMs: NowMs()},
		Event{Type: EvCompleted, Job: "fresh", AtMs: NowMs()},
	)
	closeT(t, j)

	j2, recs := openT(t, dir, Options{Retention: time.Hour})
	closeT(t, j2)
	ids := map[string]bool{}
	for _, r := range recs {
		ids[r.ID] = true
	}
	// Terminal past retention is reaped; an incomplete job is never
	// aged out — it still needs re-running however old it is.
	if ids["old-done"] || !ids["old-live"] || !ids["fresh"] {
		t.Fatalf("retention kept wrong set: %+v", recs)
	}
}

func TestLifecycleWithoutSubmissionIgnored(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, Options{})
	appendT(t, j,
		Event{Type: EvCheckpoint, Job: "ghost", State: json.RawMessage(`{}`)},
		Event{Type: EvCompleted, Job: "ghost"},
		Event{Type: EvSubmitted, Job: "real", AtMs: 1},
	)
	closeT(t, j)
	j2, recs := openT(t, dir, Options{})
	closeT(t, j2)
	if len(recs) != 1 || recs[0].ID != "real" {
		t.Fatalf("replayed %+v, want only job real", recs)
	}
}

func TestNilJournalIsInert(t *testing.T) {
	var j *Journal
	if err := j.Append(Event{Type: EvSubmitted, Job: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	j, _ := openT(t, t.TempDir(), Options{})
	closeT(t, j)
	if err := j.Append(Event{Type: EvSubmitted, Job: "x"}); err == nil {
		t.Fatal("append after close must fail")
	}
}
