// Package kernel implements the optimal-assignment graph kernel of
// Fröhlich et al. (ICML 2005), the kernel-based baseline of §VI-D
// (substitution 4 in DESIGN.md). Atom-pair similarities blend label
// identity with recursively matched neighborhoods, and the graph-level
// similarity is the optimal assignment of one molecule's atoms onto the
// other's, solved exactly with the Hungarian algorithm. The O(n³) cost
// per graph pair is intrinsic and reproduces the baseline's poor scaling
// (Fig 17).
package kernel

import (
	"graphsig/internal/assign"
	"graphsig/internal/graph"
)

// OA is an optimal-assignment kernel configuration.
type OA struct {
	// Depth is the neighborhood recursion depth (default 1).
	Depth int
	// Decay weights neighborhood agreement against plain label identity
	// (default 0.5).
	Decay float64
}

// DefaultOA returns the configuration used by the experiment harness.
func DefaultOA() OA { return OA{Depth: 1, Decay: 0.5} }

func (k OA) fill() OA {
	if k.Depth <= 0 {
		k.Depth = 1
	}
	if k.Decay <= 0 {
		k.Decay = 0.5
	}
	return k
}

// Similarity returns the optimal-assignment similarity between two
// molecules, normalized by the larger atom count so that
// Similarity(g, g) == selfScore(g)/|g| is comparable across sizes.
func (k OA) Similarity(a, b *graph.Graph) float64 {
	k = k.fill()
	na, nb := a.NumNodes(), b.NumNodes()
	if na == 0 || nb == 0 {
		return 0
	}
	score := make([][]float64, na)
	for i := range score {
		score[i] = make([]float64, nb)
		for j := range score[i] {
			score[i][j] = k.atomSim(a, i, b, j, k.Depth)
		}
	}
	_, total := assign.MaxSum(score)
	denom := na
	if nb > denom {
		denom = nb
	}
	return total / float64(denom)
}

// atomSim scores atom i of a against atom j of b: label identity plus a
// decayed optimal matching of their bond/neighbor environments.
func (k OA) atomSim(a *graph.Graph, i int, b *graph.Graph, j int, depth int) float64 {
	base := 0.0
	if a.NodeLabel(i) == b.NodeLabel(j) {
		base = 1
	}
	if depth == 0 {
		return base
	}
	da, db := a.Degree(i), b.Degree(j)
	if da == 0 || db == 0 {
		return base
	}
	type half struct {
		node int
		bond graph.Label
	}
	var nbrA, nbrB []half
	a.Neighbors(i, func(u int, l graph.Label) { nbrA = append(nbrA, half{u, l}) })
	b.Neighbors(j, func(u int, l graph.Label) { nbrB = append(nbrB, half{u, l}) })
	score := make([][]float64, len(nbrA))
	for x := range score {
		score[x] = make([]float64, len(nbrB))
		for y := range score[x] {
			s := k.atomSim(a, nbrA[x].node, b, nbrB[y].node, depth-1)
			// Bond agreement counts only between atoms that agree at
			// all; a matched bond between unrelated atoms is noise.
			if s > 0 && nbrA[x].bond == nbrB[y].bond {
				s += 1
			}
			score[x][y] = s
		}
	}
	_, total := assign.MaxSum(score)
	denom := da
	if db > denom {
		denom = db
	}
	return base + k.Decay*total/float64(denom)
}

// Matrix computes the full pairwise similarity matrix of a graph set.
// This is the dominant cost of the OA baseline.
func (k OA) Matrix(graphs []*graph.Graph) [][]float64 {
	n := len(graphs)
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			s := k.Similarity(graphs[i], graphs[j])
			m[i][j] = s
			m[j][i] = s
		}
	}
	return m
}

// Row computes similarities of one graph against a set.
func (k OA) Row(g *graph.Graph, graphs []*graph.Graph) []float64 {
	out := make([]float64, len(graphs))
	for i, h := range graphs {
		out[i] = k.Similarity(g, h)
	}
	return out
}
