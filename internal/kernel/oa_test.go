package kernel

import (
	"testing"

	"graphsig/internal/chem"
	"graphsig/internal/graph"
)

func chain(labels ...graph.Label) *graph.Graph {
	g := graph.New(len(labels), len(labels)-1)
	for _, l := range labels {
		g.AddNode(l)
	}
	for i := 1; i < len(labels); i++ {
		g.MustAddEdge(i-1, i, 0)
	}
	return g
}

func TestSimilaritySymmetric(t *testing.T) {
	a := chain(1, 2, 3)
	b := chain(1, 2, 2, 3)
	k := DefaultOA()
	if s1, s2 := k.Similarity(a, b), k.Similarity(b, a); s1 != s2 {
		t.Errorf("asymmetric: %f vs %f", s1, s2)
	}
}

func TestSelfSimilarityIsMaximal(t *testing.T) {
	k := DefaultOA()
	a := chain(1, 2, 3, 2, 1)
	self := k.Similarity(a, a)
	for _, other := range []*graph.Graph{chain(1, 2, 3), chain(9, 9, 9, 9, 9), chain(1, 2, 3, 2, 9)} {
		if s := k.Similarity(a, other); s > self+1e-9 {
			t.Errorf("Similarity(a, %v) = %f > self %f", other.Labels(), s, self)
		}
	}
}

func TestIdenticalLabelsScoreHigherThanDisjoint(t *testing.T) {
	k := DefaultOA()
	a := chain(1, 2, 3)
	same := chain(1, 2, 3)
	disjoint := chain(7, 8, 9)
	if !(k.Similarity(a, same) > k.Similarity(a, disjoint)) {
		t.Error("identical chains should beat disjoint-label chains")
	}
	if k.Similarity(a, disjoint) != 0 {
		t.Errorf("disjoint similarity = %f; want 0", k.Similarity(a, disjoint))
	}
}

func TestNeighborhoodDiscriminates(t *testing.T) {
	// Same label multiset, different wiring: path C-O-C vs C-C-O. The
	// kernel with depth 1 must prefer the graph with matching
	// neighborhoods.
	k := DefaultOA()
	a := chain(0, 1, 0) // C-O-C
	b := chain(0, 1, 0) // identical
	c := chain(0, 0, 1) // C-C-O
	sAB := k.Similarity(a, b)
	sAC := k.Similarity(a, c)
	if !(sAB > sAC) {
		t.Errorf("identical wiring %f should beat different wiring %f", sAB, sAC)
	}
}

func TestEmptyGraph(t *testing.T) {
	k := DefaultOA()
	if s := k.Similarity(graph.New(0, 0), chain(1, 2)); s != 0 {
		t.Errorf("empty similarity = %f", s)
	}
}

func TestMatrixSymmetricAndDiagonalDominant(t *testing.T) {
	gen := chem.NewGenerator(5)
	var db []*graph.Graph
	for i := 0; i < 6; i++ {
		db = append(db, gen.Molecule())
	}
	k := DefaultOA()
	m := k.Matrix(db)
	for i := range m {
		for j := range m {
			if m[i][j] != m[j][i] {
				t.Fatalf("matrix asymmetric at (%d,%d)", i, j)
			}
		}
	}
	// Self similarity should be at least the row mean (graphs match
	// themselves at least as well as typical others).
	for i := range m {
		sum := 0.0
		for j := range m {
			sum += m[i][j]
		}
		if m[i][i] < sum/float64(len(m))-1e-9 {
			t.Errorf("diagonal weak at %d: %f < row mean %f", i, m[i][i], sum/float64(len(m)))
		}
	}
}

func TestRowMatchesSimilarity(t *testing.T) {
	gen := chem.NewGenerator(6)
	var db []*graph.Graph
	for i := 0; i < 4; i++ {
		db = append(db, gen.Molecule())
	}
	k := DefaultOA()
	row := k.Row(db[0], db)
	for i, g := range db {
		if row[i] != k.Similarity(db[0], g) {
			t.Errorf("Row[%d] mismatch", i)
		}
	}
}
