// Package leap is the pattern-based classification baseline standing in
// for LEAP, structural leap search (Yan et al., SIGMOD 2008) — see
// DESIGN.md, substitution 3. It mines subgraph patterns that discriminate
// a positive from a negative graph set: candidates are enumerated by
// gSpan over the positive set, scored by the G-test statistic between
// their class-conditional frequencies, pruned with the frequency-envelope
// upper bound (a pattern's descendants can never score above the bound
// achieved by keeping all its positive support and dropping all negative
// support), and reduced to a diverse top-k. Downstream, graphs become
// binary pattern-occurrence feature vectors for a linear SVM.
package leap

import (
	"math"
	"sort"
	"time"

	"graphsig/internal/dfscode"
	"graphsig/internal/graph"
	"graphsig/internal/gspan"
	"graphsig/internal/isomorph"
	"graphsig/internal/runctl"
)

// Options configures discriminative mining.
type Options struct {
	// MinPosFreq is the minimum frequency in the positive set, as a
	// fraction (default 0.15).
	MinPosFreq float64
	// TopK is the number of discriminative patterns retained
	// (default 20).
	TopK int
	// MaxEdges bounds candidate size (default 10).
	MaxEdges int
	// Deadline aborts enumeration when exceeded (zero = none). Ignored
	// when Ctl is set.
	Deadline time.Time
	// Ctl is the shared run controller, threaded into the gSpan
	// enumeration and the per-candidate scoring loop (each scored
	// candidate costs one isomorphism sweep over the negative set, so
	// scoring checkpoints un-amortized).
	Ctl *runctl.Controller
}

func (o *Options) fill() {
	if o.MinPosFreq <= 0 {
		o.MinPosFreq = 0.15
	}
	if o.TopK <= 0 {
		o.TopK = 20
	}
	if o.MaxEdges <= 0 {
		o.MaxEdges = 10
	}
}

// Pattern is a discriminative subgraph with its class statistics.
type Pattern struct {
	Graph *graph.Graph
	// PosFreq and NegFreq are class-conditional frequencies in [0,1].
	PosFreq, NegFreq float64
	// Score is the G-test statistic of the frequency contrast.
	Score float64
}

// GTest returns the G-test statistic contrasting a pattern's frequency p
// in the positive class against q in the negative class (per-graph
// Bernoulli formulation, as used by LEAP's objective family).
func GTest(p, q float64) float64 {
	return 2 * (term(p, q) + term(1-p, 1-q))
}

func term(p, q float64) float64 {
	if p <= 0 {
		return 0
	}
	if q <= 0 {
		q = 1e-9 // smoothed: absent in the other class is maximal evidence
	}
	return p * math.Log(p/q)
}

// Mine returns the top-k discriminative patterns contrasting pos against
// neg, using LEAP's frequency-descending strategy: candidates are
// enumerated at a high positive-frequency threshold first (cheap,
// high-quality patterns tend to be frequent in their own class), the
// threshold halves each round, and mining stops once the frequency
// envelope proves that no lower-frequency pattern can beat the current
// k-th best score.
func Mine(pos, neg []*graph.Graph, opt Options) []Pattern {
	opt.fill()
	if len(pos) == 0 {
		return nil
	}
	ctl := opt.Ctl
	if ctl == nil {
		ctl = runctl.FromDeadline(opt.Deadline)
	}
	cp := ctl.Checkpoint(runctl.StageLEAP)
	// Mining-internal isomorphism charges the miner pool; Budgets.VF2Nodes
	// is reserved for support verification and query-time search.
	cpVF2 := ctl.Checkpoint(runctl.StageLEAP)

	scoredByKey := map[string]Pattern{}
	minedAbove := len(pos) + 1 // support threshold of the previous round
	for freq := 0.8; ; freq /= 2 {
		if freq < opt.MinPosFreq {
			freq = opt.MinPosFreq
		}
		minSup := int(math.Ceil(freq * float64(len(pos))))
		if minSup < 1 {
			minSup = 1
		}
		if minSup < minedAbove {
			res := gspan.Mine(pos, gspan.Options{
				MinSupport: minSup,
				MaxEdges:   opt.MaxEdges,
				Ctl:        ctl,
			})
			kth := kthBestScore(scoredByKey, opt.TopK)
			scoreCandidates(res.Patterns, pos, neg, opt, minedAbove, scoredByKey, kth, cp, cpVF2)
			minedAbove = minSup
		}
		if freq <= opt.MinPosFreq {
			break
		}
		if err := cp.Force(); err != nil {
			break
		}
		// Leap: a pattern first appearing below the next threshold has
		// positive frequency < freq; even with zero negative support it
		// scores at most GTest(freq, 0). If that cannot displace the
		// current top k, descending further is fruitless.
		if len(scoredByKey) >= opt.TopK && GTest(freq, 0) <= kthBestScore(scoredByKey, opt.TopK) {
			break
		}
	}

	scored := make([]Pattern, 0, len(scoredByKey))
	for _, p := range scoredByKey {
		scored = append(scored, p)
	}
	sort.Slice(scored, func(i, j int) bool {
		if scored[i].Score != scored[j].Score {
			return scored[i].Score > scored[j].Score
		}
		if scored[i].Graph.NumEdges() != scored[j].Graph.NumEdges() {
			return scored[i].Graph.NumEdges() > scored[j].Graph.NumEdges()
		}
		return dfscode.Canonical(scored[i].Graph) < dfscode.Canonical(scored[j].Graph)
	})
	return diverseTopK(scored, opt.TopK)
}

// kthBestScore returns the k-th largest score among the scored patterns,
// or 0 when fewer than k exist — the displacement bar a new pattern must
// clear to enter the top k.
func kthBestScore(scoredByKey map[string]Pattern, k int) float64 {
	if len(scoredByKey) < k {
		return 0
	}
	scores := make([]float64, 0, len(scoredByKey))
	for _, p := range scoredByKey {
		scores = append(scores, p.Score)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(scores)))
	return scores[k-1]
}

// scoreCandidates scores the patterns of one descending round, skipping
// those already scored in earlier rounds (support >= minedAbove) and
// pruning patterns whose frequency envelope cannot clear the k-th best
// score captured at round start.
func scoreCandidates(cands []gspan.Pattern, pos, neg []*graph.Graph, opt Options,
	minedAbove int, scoredByKey map[string]Pattern, kth float64, cp, cpVF2 *runctl.Checkpoint) {
	sort.Slice(cands, func(i, j int) bool { return cands[i].Support > cands[j].Support })
	for _, cand := range cands {
		if cand.Support >= minedAbove {
			continue // scored in an earlier, higher-threshold round
		}
		// Un-amortized: one scored candidate can cost a full isomorphism
		// sweep over the negative set.
		if err := cp.Force(); err != nil {
			return
		}
		p := float64(cand.Support) / float64(len(pos))
		if len(scoredByKey) >= opt.TopK && GTest(p, 0) <= kth {
			continue
		}
		negSup := 0
		if len(neg) > 0 {
			var err error
			negSup, err = isomorph.SupportCtl(cand.Graph, neg, cpVF2)
			if err != nil {
				return // partial negative count would misscore the pattern
			}
		}
		q := 0.0
		if len(neg) > 0 {
			q = float64(negSup) / float64(len(neg))
		}
		score := GTest(p, q)
		key := dfscode.Canonical(cand.Graph)
		scoredByKey[key] = Pattern{Graph: cand.Graph, PosFreq: p, NegFreq: q, Score: score}
	}
}

// diverseTopK keeps the k best patterns, skipping patterns contained in
// an already-kept pattern with the same score signature (near-duplicate
// structural variants add no feature diversity).
func diverseTopK(scored []Pattern, k int) []Pattern {
	var out []Pattern
	seen := map[string]bool{}
	for _, cand := range scored {
		if len(out) >= k {
			break
		}
		key := dfscode.Canonical(cand.Graph)
		if seen[key] {
			continue
		}
		dup := false
		for _, kept := range out {
			if kept.PosFreq == cand.PosFreq && kept.NegFreq == cand.NegFreq &&
				isomorph.SubgraphIsomorphic(cand.Graph, kept.Graph) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		seen[key] = true
		out = append(out, cand)
	}
	return out
}

// Featurize converts graphs to binary pattern-occurrence vectors over the
// mined patterns, the representation LEAP feeds to its SVM.
func Featurize(graphs []*graph.Graph, patterns []Pattern) [][]float64 {
	out := make([][]float64, len(graphs))
	for i, g := range graphs {
		v := make([]float64, len(patterns))
		for j, p := range patterns {
			if isomorph.SubgraphIsomorphic(p.Graph, g) {
				v[j] = 1
			}
		}
		out[i] = v
	}
	return out
}
