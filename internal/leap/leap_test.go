package leap

import (
	"math"
	"testing"

	"graphsig/internal/chem"
	"graphsig/internal/graph"
	"graphsig/internal/isomorph"
)

func TestGTest(t *testing.T) {
	if GTest(0.5, 0.5) != 0 {
		t.Error("equal frequencies should score 0")
	}
	if !(GTest(0.9, 0.1) > GTest(0.6, 0.4)) {
		t.Error("larger contrast should score higher")
	}
	if g := GTest(0.5, 0); math.IsInf(g, 1) || g <= 0 {
		t.Errorf("GTest(0.5, 0) = %f; want large finite", g)
	}
	// Symmetric-ish in direction of contrast: a pattern depleted in the
	// positive class also scores.
	if GTest(0.1, 0.9) <= 0 {
		t.Error("depletion should score positive")
	}
}

// plantedClasses builds positives carrying a core and negatives without.
func plantedClasses(core *graph.Graph, nPos, nNeg int) (pos, neg []*graph.Graph) {
	gen := chem.NewGenerator(17)
	for i := 0; i < nPos; i++ {
		m := gen.Molecule()
		base := m.NumNodes()
		for v := 0; v < core.NumNodes(); v++ {
			m.AddNode(core.NodeLabel(v))
		}
		for _, e := range core.Edges() {
			m.MustAddEdge(base+e.From, base+e.To, e.Label)
		}
		m.MustAddEdge(0, base, chem.BondSingle)
		pos = append(pos, m)
	}
	for i := 0; i < nNeg; i++ {
		neg = append(neg, gen.Molecule())
	}
	return pos, neg
}

func TestMineFindsDiscriminativeCore(t *testing.T) {
	core := chem.SbCore()
	pos, neg := plantedClasses(core, 15, 15)
	patterns := Mine(pos, neg, Options{TopK: 10, MinPosFreq: 0.5, MaxEdges: 8})
	if len(patterns) == 0 {
		t.Fatal("no patterns mined")
	}
	// The top patterns must include one inside the planted core that is
	// absent from negatives.
	found := false
	for _, p := range patterns[:min(5, len(patterns))] {
		if p.NegFreq == 0 && p.PosFreq >= 0.9 && isomorph.SubgraphIsomorphic(p.Graph, core) && p.Graph.NumEdges() >= 2 {
			found = true
			break
		}
	}
	if !found {
		for _, p := range patterns {
			t.Logf("pattern %s pos=%.2f neg=%.2f score=%.2f", p.Graph, p.PosFreq, p.NegFreq, p.Score)
		}
		t.Error("no core fragment among top discriminative patterns")
	}
	// Scores must be sorted descending.
	for i := 1; i < len(patterns); i++ {
		if patterns[i].Score > patterns[i-1].Score {
			t.Error("patterns not sorted by score")
		}
	}
}

func TestMineTopKBound(t *testing.T) {
	core := chem.QuinoneCore()
	pos, neg := plantedClasses(core, 10, 10)
	patterns := Mine(pos, neg, Options{TopK: 3, MinPosFreq: 0.4, MaxEdges: 6})
	if len(patterns) > 3 {
		t.Errorf("got %d patterns; want <= 3", len(patterns))
	}
}

func TestMineEmptyPositives(t *testing.T) {
	if got := Mine(nil, nil, Options{}); got != nil {
		t.Errorf("got %v; want nil", got)
	}
}

func TestFeaturize(t *testing.T) {
	core := chem.ThiopheneCore()
	pos, neg := plantedClasses(core, 8, 8)
	patterns := Mine(pos, neg, Options{TopK: 5, MinPosFreq: 0.5, MaxEdges: 6})
	if len(patterns) == 0 {
		t.Fatal("no patterns")
	}
	feats := Featurize(append(append([]*graph.Graph{}, pos...), neg...), patterns)
	if len(feats) != 16 {
		t.Fatalf("got %d feature vectors", len(feats))
	}
	for i, v := range feats {
		if len(v) != len(patterns) {
			t.Fatalf("vector %d has %d dims; want %d", i, len(v), len(patterns))
		}
		for j, x := range v {
			want := 0.0
			g := pos[i%8]
			if i >= 8 {
				g = neg[i-8]
			}
			if isomorph.SubgraphIsomorphic(patterns[j].Graph, g) {
				want = 1
			}
			if x != want {
				t.Fatalf("feats[%d][%d] = %f; want %f", i, j, x, want)
			}
		}
	}
	// Positives should average more pattern hits than negatives.
	sum := func(vs [][]float64) float64 {
		s := 0.0
		for _, v := range vs {
			for _, x := range v {
				s += x
			}
		}
		return s
	}
	if !(sum(feats[:8]) > sum(feats[8:])) {
		t.Error("positives not richer in discriminative patterns")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestDescendingStrategyPreservesTopPattern: lowering the frequency
// floor must not lose the best high-frequency discriminative pattern —
// the leap bound only skips regions that provably cannot displace the
// top k.
func TestDescendingStrategyPreservesTopPattern(t *testing.T) {
	core := chem.SbCore()
	pos, neg := plantedClasses(core, 16, 16)
	high := Mine(pos, neg, Options{TopK: 5, MinPosFreq: 0.5, MaxEdges: 6})
	low := Mine(pos, neg, Options{TopK: 5, MinPosFreq: 0.05, MaxEdges: 6})
	if len(high) == 0 || len(low) == 0 {
		t.Fatal("no patterns")
	}
	if low[0].Score < high[0].Score-1e-9 {
		t.Errorf("descending lost the top pattern: %f < %f", low[0].Score, high[0].Score)
	}
}

func TestKthBestScore(t *testing.T) {
	m := map[string]Pattern{
		"a": {Score: 3}, "b": {Score: 1}, "c": {Score: 2},
	}
	if got := kthBestScore(m, 2); got != 2 {
		t.Errorf("kth = %f; want 2", got)
	}
	if got := kthBestScore(m, 5); got != 0 {
		t.Errorf("kth with few patterns = %f; want 0", got)
	}
}
