// Package mathx provides the special functions underlying GraphSig's
// statistical model: the regularized incomplete beta function, binomial
// tail probabilities (exact and in log space), and a normal CDF
// approximation. Everything is implemented on top of math.Lgamma so that
// p-values far below the smallest positive float64 remain comparable in
// log space.
package mathx

import (
	"math"
)

// Epsilon is the relative accuracy target for the continued-fraction
// evaluation of the incomplete beta function.
const Epsilon = 3e-14

// maxIterations bounds the Lentz continued-fraction loop. The fraction
// converges in a few dozen iterations for all well-conditioned inputs;
// the bound only guards pathological arguments.
const maxIterations = 500

// LogBeta returns log(B(a, b)) = lgamma(a) + lgamma(b) - lgamma(a+b).
func LogBeta(a, b float64) float64 {
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	lab, _ := math.Lgamma(a + b)
	return la + lb - lab
}

// RegularizedBeta computes the regularized incomplete beta function
// I_x(a, b) for x in [0, 1] and a, b > 0. It is the CDF of the Beta(a, b)
// distribution at x, and the binomial tail reduces to it (see BinomialTail).
//
// The implementation follows the classic approach: evaluate the continued
// fraction on whichever side of the symmetry point converges fast, using
// I_x(a,b) = 1 - I_{1-x}(b,a).
func RegularizedBeta(x, a, b float64) float64 {
	switch {
	case math.IsNaN(x) || math.IsNaN(a) || math.IsNaN(b):
		return math.NaN()
	case a <= 0 || b <= 0:
		return math.NaN()
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	// Prefactor x^a (1-x)^b / (a B(a,b)) in log space.
	logPre := a*math.Log(x) + b*math.Log1p(-x) - math.Log(a) - LogBeta(a, b)
	if x < (a+1)/(a+b+2) {
		return math.Exp(logPre) * betaContinuedFraction(x, a, b)
	}
	// Symmetric evaluation for the fast-converging regime.
	logPreSym := b*math.Log1p(-x) + a*math.Log(x) - math.Log(b) - LogBeta(b, a)
	return 1 - math.Exp(logPreSym)*betaContinuedFraction(1-x, b, a)
}

// LogRegularizedBeta returns log(I_x(a, b)), stable even when the result
// underflows float64 (p-values below ~1e-308).
func LogRegularizedBeta(x, a, b float64) float64 {
	switch {
	case a <= 0 || b <= 0:
		return math.NaN()
	case x <= 0:
		return math.Inf(-1)
	case x >= 1:
		return 0
	}
	if x < (a+1)/(a+b+2) {
		logPre := a*math.Log(x) + b*math.Log1p(-x) - math.Log(a) - LogBeta(a, b)
		return logPre + math.Log(betaContinuedFraction(x, a, b))
	}
	// On the other side the value is 1 - small; compute via complement.
	comp := RegularizedBeta(x, a, b)
	if comp >= 1 {
		return 0
	}
	return math.Log(comp)
}

// betaContinuedFraction evaluates the continued fraction for the
// incomplete beta function by the modified Lentz method.
func betaContinuedFraction(x, a, b float64) float64 {
	const tiny = 1e-300
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIterations; m++ {
		fm := float64(m)
		m2 := 2 * fm
		// Even step.
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		// Odd step.
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < Epsilon {
			return h
		}
	}
	return h
}
