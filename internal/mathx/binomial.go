package mathx

import "math"

// BinomialTail returns P(X >= k) for X ~ Binomial(n, p) — the upper tail
// used as the p-value of an observed support k out of n trials (Eqn 6 of
// the paper). It reduces to the regularized incomplete beta function:
//
//	P(X >= k) = I_p(k, n-k+1)
//
// Edge cases: k <= 0 returns 1 (some support is certain), k > n returns 0.
func BinomialTail(n, k int, p float64) float64 {
	switch {
	case k <= 0:
		return 1
	case k > n:
		return 0
	case p <= 0:
		return 0
	case p >= 1:
		return 1
	}
	return RegularizedBeta(p, float64(k), float64(n-k+1))
}

// LogBinomialTail returns log P(X >= k) for X ~ Binomial(n, p), remaining
// finite, accurate and ordered even when the tail underflows float64.
//
// For k in the lower half of the distribution the tail is large and the
// linear BinomialTail is accurate, so its log is returned. For k above
// the mean (where the complement-side beta evaluation would cancel
// catastrophically) the tail is summed directly in log space: the PMF
// terms decrease monotonically there, so the sum is truncated once terms
// stop contributing at float64 precision.
func LogBinomialTail(n, k int, p float64) float64 {
	switch {
	case k <= 0:
		return 0
	case k > n:
		return math.Inf(-1)
	case p <= 0:
		return math.Inf(-1)
	case p >= 1:
		return 0
	}
	if float64(k) <= float64(n)*p {
		// Tail >= ~1/2: the linear evaluation has no cancellation risk
		// at this magnitude.
		return math.Log(BinomialTail(n, k, p))
	}
	// Right of the mean: log-sum-exp over the (decreasing) PMF terms.
	logMax := LogBinomialPMF(n, k, p)
	if math.IsInf(logMax, -1) {
		return logMax
	}
	sum := 1.0 // term k itself, scaled by exp(logMax)
	logTerm := logMax
	for i := k + 1; i <= n; i++ {
		// pmf(i)/pmf(i-1) = (n-i+1)/i * p/(1-p)
		logTerm += math.Log(float64(n-i+1)/float64(i)) + math.Log(p) - math.Log1p(-p)
		rel := logTerm - logMax
		if rel < -45 { // below float64 resolution of the running sum
			break
		}
		sum += math.Exp(rel)
	}
	return logMax + math.Log(sum)
}

// LogBinomialPMF returns log P(X = k) for X ~ Binomial(n, p).
func LogBinomialPMF(n, k int, p float64) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	if p <= 0 {
		if k == 0 {
			return 0
		}
		return math.Inf(-1)
	}
	if p >= 1 {
		if k == n {
			return 0
		}
		return math.Inf(-1)
	}
	return LogChoose(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log1p(-p)
}

// BinomialPMF returns P(X = k) for X ~ Binomial(n, p).
func BinomialPMF(n, k int, p float64) float64 {
	return math.Exp(LogBinomialPMF(n, k, p))
}

// BinomialTailDirect sums the PMF from k to n. It is O(n-k) and exists as
// a cross-check oracle for BinomialTail in tests; prefer BinomialTail.
func BinomialTailDirect(n, k int, p float64) float64 {
	if k <= 0 {
		return 1
	}
	sum := 0.0
	for i := k; i <= n; i++ {
		sum += BinomialPMF(n, i, p)
	}
	if sum > 1 {
		return 1
	}
	return sum
}

// LogChoose returns log C(n, k) via lgamma.
func LogChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	ln1, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return ln1 - lk - lnk
}

// NormalCDF returns Phi(x), the standard normal CDF, via erf from the
// standard library. The paper notes the normal approximation to the
// binomial when n·p and n·(1-p) are both large; BinomialTailNormal uses it.
func NormalCDF(x float64) float64 {
	return 0.5 * (1 + math.Erf(x/math.Sqrt2))
}

// BinomialTailNormal approximates P(X >= k) for X ~ Binomial(n, p) with a
// continuity-corrected normal approximation. Accurate when n·p and
// n·(1-p) are both large (≥ ~10).
func BinomialTailNormal(n, k int, p float64) float64 {
	if k <= 0 {
		return 1
	}
	if k > n {
		return 0
	}
	mean := float64(n) * p
	sd := math.Sqrt(float64(n) * p * (1 - p))
	if sd == 0 {
		if float64(k) <= mean {
			return 1
		}
		return 0
	}
	z := (float64(k) - 0.5 - mean) / sd
	return 1 - NormalCDF(z)
}
