package mathx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	if diff < tol {
		return true
	}
	return diff/math.Max(math.Abs(a), math.Abs(b)) < tol
}

func TestRegularizedBetaKnownValues(t *testing.T) {
	tests := []struct {
		x, a, b float64
		want    float64
	}{
		{0.5, 1, 1, 0.5},           // uniform CDF
		{0.25, 1, 1, 0.25},         // uniform CDF
		{0.5, 2, 2, 0.5},           // symmetric beta
		{0.5, 5, 5, 0.5},           // symmetric beta
		{0.1, 1, 2, 0.19},          // 1-(1-x)^2
		{0.3, 2, 1, 0.09},          // x^2
		{0.9, 3, 1, 0.729},         // x^3
		{0.2, 1, 3, 1 - 0.512},     // 1-(1-x)^3
		{0, 2, 3, 0},               // boundary
		{1, 2, 3, 1},               // boundary
		{0.7, 10, 3, 0.2528153479}, // equals P(X>=10), X~Bin(12,0.7), by direct sum
	}
	for _, tc := range tests {
		got := RegularizedBeta(tc.x, tc.a, tc.b)
		if !almostEqual(got, tc.want, 1e-7) {
			t.Errorf("I_%g(%g,%g) = %.10f; want %.10f", tc.x, tc.a, tc.b, got, tc.want)
		}
	}
}

func TestRegularizedBetaInvalidArgs(t *testing.T) {
	for _, args := range [][3]float64{{0.5, -1, 2}, {0.5, 1, 0}, {math.NaN(), 1, 1}} {
		if got := RegularizedBeta(args[0], args[1], args[2]); !math.IsNaN(got) {
			t.Errorf("RegularizedBeta(%v) = %v; want NaN", args, got)
		}
	}
}

func TestRegularizedBetaSymmetry(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		x := rr.Float64()
		a := 0.5 + 20*rr.Float64()
		b := 0.5 + 20*rr.Float64()
		lhs := RegularizedBeta(x, a, b)
		rhs := 1 - RegularizedBeta(1-x, b, a)
		return almostEqual(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: r}); err != nil {
		t.Error(err)
	}
}

func TestRegularizedBetaMonotoneInX(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		a := 0.5 + 10*rr.Float64()
		b := 0.5 + 10*rr.Float64()
		x1 := rr.Float64()
		x2 := rr.Float64()
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		return RegularizedBeta(x1, a, b) <= RegularizedBeta(x2, a, b)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: r}); err != nil {
		t.Error(err)
	}
}

func TestBinomialTailMatchesDirectSum(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(200)
		k := rr.Intn(n + 2)
		p := rr.Float64()
		fast := BinomialTail(n, k, p)
		slow := BinomialTailDirect(n, k, p)
		return almostEqual(fast, slow, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: r}); err != nil {
		t.Error(err)
	}
}

func TestBinomialTailEdgeCases(t *testing.T) {
	tests := []struct {
		n, k int
		p    float64
		want float64
	}{
		{10, 0, 0.5, 1},
		{10, -3, 0.5, 1},
		{10, 11, 0.5, 0},
		{10, 5, 0, 0},
		{10, 5, 1, 1},
		{1, 1, 0.25, 0.25},
		{2, 2, 0.5, 0.25},
		{2, 1, 0.5, 0.75},
	}
	for _, tc := range tests {
		if got := BinomialTail(tc.n, tc.k, tc.p); !almostEqual(got, tc.want, 1e-12) {
			t.Errorf("BinomialTail(%d,%d,%g) = %g; want %g", tc.n, tc.k, tc.p, got, tc.want)
		}
	}
}

func TestLogBinomialTailConsistent(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(500)
		k := rr.Intn(n + 1)
		p := rr.Float64()
		lin := BinomialTail(n, k, p)
		lg := LogBinomialTail(n, k, p)
		if lin < 1e-290 {
			// The linear value is (sub)normal garbage down here; only
			// demand the log stays deeply negative.
			return lg < -600
		}
		return almostEqual(math.Log(lin), lg, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: r}); err != nil {
		t.Error(err)
	}
}

func TestLogBinomialTailExtremeUnderflow(t *testing.T) {
	// 5000 successes out of 5000 trials at p=0.01: tail is 1e-10000-ish,
	// far below float64. Log space must stay finite and ordered.
	lg1 := LogBinomialTail(5000, 5000, 0.01)
	lg2 := LogBinomialTail(5000, 4999, 0.01)
	if math.IsInf(lg1, -1) || math.IsNaN(lg1) {
		t.Fatalf("log tail not finite: %v", lg1)
	}
	if !(lg1 < lg2) {
		t.Errorf("monotonicity violated in deep underflow: %v >= %v", lg1, lg2)
	}
}

func TestLogBinomialTailMonotoneInK(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 2 + rr.Intn(300)
		k := 1 + rr.Intn(n-1)
		p := 0.001 + 0.998*rr.Float64()
		// Higher observed support => lower (or equal) p-value.
		return LogBinomialTail(n, k+1, p) <= LogBinomialTail(n, k, p)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: r}); err != nil {
		t.Error(err)
	}
}

func TestLogBinomialTailMonotoneInP(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 2 + rr.Intn(300)
		k := 1 + rr.Intn(n)
		p1 := rr.Float64()
		p2 := rr.Float64()
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		// Rarer pattern (smaller prior) => smaller tail probability.
		return LogBinomialTail(n, k, p1) <= LogBinomialTail(n, k, p2)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: r}); err != nil {
		t.Error(err)
	}
}

func TestBinomialPMFSumsToOne(t *testing.T) {
	for _, n := range []int{1, 5, 40} {
		for _, p := range []float64{0.1, 0.5, 0.93} {
			sum := 0.0
			for k := 0; k <= n; k++ {
				sum += BinomialPMF(n, k, p)
			}
			if !almostEqual(sum, 1, 1e-9) {
				t.Errorf("pmf(n=%d,p=%g) sums to %g", n, p, sum)
			}
		}
	}
}

func TestLogChoose(t *testing.T) {
	tests := []struct {
		n, k int
		want float64
	}{
		{5, 2, math.Log(10)},
		{10, 0, 0},
		{10, 10, 0},
		{52, 5, math.Log(2598960)},
	}
	for _, tc := range tests {
		if got := LogChoose(tc.n, tc.k); !almostEqual(got, tc.want, 1e-9) {
			t.Errorf("LogChoose(%d,%d) = %g; want %g", tc.n, tc.k, got, tc.want)
		}
	}
	if got := LogChoose(3, 5); !math.IsInf(got, -1) {
		t.Errorf("LogChoose(3,5) = %v; want -Inf", got)
	}
}

func TestNormalCDF(t *testing.T) {
	tests := []struct{ x, want float64 }{
		{0, 0.5},
		{1.959963985, 0.975},
		{-1.959963985, 0.025},
		{3, 0.99865},
	}
	for _, tc := range tests {
		if got := NormalCDF(tc.x); !almostEqual(got, tc.want, 1e-4) {
			t.Errorf("NormalCDF(%g) = %g; want %g", tc.x, got, tc.want)
		}
	}
}

func TestBinomialTailNormalApproximation(t *testing.T) {
	// With n·p and n·(1-p) large, the normal approximation should be
	// within ~1e-2 of the exact tail.
	for _, tc := range []struct {
		n, k int
		p    float64
	}{{1000, 520, 0.5}, {2000, 210, 0.1}, {500, 260, 0.5}} {
		exact := BinomialTail(tc.n, tc.k, tc.p)
		approx := BinomialTailNormal(tc.n, tc.k, tc.p)
		if math.Abs(exact-approx) > 0.01 {
			t.Errorf("normal approx off: n=%d k=%d p=%g exact=%g approx=%g",
				tc.n, tc.k, tc.p, exact, approx)
		}
	}
}

func TestBinomialTailPaperExample(t *testing.T) {
	// Sanity example in the spirit of §III-B: P(x)=3/16, m=4 trials,
	// observed support 2 => p-value = sum_{i=2..4} C(4,i) q^i (1-q)^(4-i).
	q := 3.0 / 16.0
	want := 0.0
	for i := 2; i <= 4; i++ {
		want += BinomialPMF(4, i, q)
	}
	if got := BinomialTail(4, 2, q); !almostEqual(got, want, 1e-12) {
		t.Errorf("BinomialTail = %g; want %g", got, want)
	}
}

func TestLogBeta(t *testing.T) {
	// B(1,1)=1, B(2,3)=1/12, B(0.5,0.5)=pi.
	tests := []struct{ a, b, want float64 }{
		{1, 1, 0},
		{2, 3, math.Log(1.0 / 12)},
		{0.5, 0.5, math.Log(math.Pi)},
	}
	for _, tc := range tests {
		if got := LogBeta(tc.a, tc.b); !almostEqual(got, tc.want, 1e-10) {
			t.Errorf("LogBeta(%g,%g) = %g; want %g", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestLogRegularizedBeta(t *testing.T) {
	// Boundary behavior.
	if got := LogRegularizedBeta(0, 2, 3); !math.IsInf(got, -1) {
		t.Errorf("x=0: %v", got)
	}
	if got := LogRegularizedBeta(1, 2, 3); got != 0 {
		t.Errorf("x=1: %v", got)
	}
	if got := LogRegularizedBeta(0.5, -1, 1); !math.IsNaN(got) {
		t.Errorf("invalid args: %v", got)
	}
	// Consistency with the linear form on the fast-converging side.
	for _, tc := range []struct{ x, a, b float64 }{{0.1, 3, 5}, {0.01, 2, 2}, {0.3, 10, 3}} {
		lin := RegularizedBeta(tc.x, tc.a, tc.b)
		lg := LogRegularizedBeta(tc.x, tc.a, tc.b)
		if !almostEqual(math.Log(lin), lg, 1e-8) {
			t.Errorf("I_%g(%g,%g): log %g vs linear-log %g", tc.x, tc.a, tc.b, lg, math.Log(lin))
		}
	}
	// Complement side stays finite and consistent for moderate values.
	lin := RegularizedBeta(0.9, 2, 5)
	if lg := LogRegularizedBeta(0.9, 2, 5); !almostEqual(math.Log(lin), lg, 1e-8) {
		t.Errorf("complement side: %g vs %g", lg, math.Log(lin))
	}
}

func TestBinomialPMFEdges(t *testing.T) {
	if BinomialPMF(5, -1, 0.5) != 0 || BinomialPMF(5, 6, 0.5) != 0 {
		t.Error("out-of-range k should have zero mass")
	}
	if BinomialPMF(5, 0, 0) != 1 || BinomialPMF(5, 3, 0) != 0 {
		t.Error("p=0 edge wrong")
	}
	if BinomialPMF(5, 5, 1) != 1 || BinomialPMF(5, 2, 1) != 0 {
		t.Error("p=1 edge wrong")
	}
}

func TestBinomialTailNormalEdges(t *testing.T) {
	if BinomialTailNormal(10, 0, 0.5) != 1 || BinomialTailNormal(10, 11, 0.5) != 0 {
		t.Error("k edges wrong")
	}
	// Degenerate distribution (sd = 0).
	if BinomialTailNormal(10, 5, 0) != 0 {
		t.Errorf("p=0 tail: %v", BinomialTailNormal(10, 5, 0))
	}
	if BinomialTailNormal(10, 5, 1) != 1 {
		t.Errorf("p=1 tail: %v", BinomialTailNormal(10, 5, 1))
	}
}
