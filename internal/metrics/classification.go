package metrics

// Confusion is a binary confusion matrix.
type Confusion struct {
	TP, FP, TN, FN int
}

// Confusions tallies predictions (score > 0 means positive) against
// labels.
func Confusions(scores []float64, labels []bool) Confusion {
	var c Confusion
	for i, s := range scores {
		switch {
		case s > 0 && labels[i]:
			c.TP++
		case s > 0 && !labels[i]:
			c.FP++
		case s <= 0 && labels[i]:
			c.FN++
		default:
			c.TN++
		}
	}
	return c
}

// Accuracy returns (TP+TN)/total, or 0 for an empty matrix.
func (c Confusion) Accuracy() float64 {
	total := c.TP + c.FP + c.TN + c.FN
	if total == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(total)
}

// Precision returns TP/(TP+FP), or 0 when nothing was predicted positive.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), or 0 when there are no positives.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall (0 when both are
// 0).
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// AveragePrecision computes the area under the precision-recall curve by
// the step-wise interpolation over descending scores (ties grouped).
// Returns 0 when there are no positives.
func AveragePrecision(scores []float64, labels []bool) float64 {
	if len(scores) != len(labels) {
		panic("metrics: scores/labels length mismatch")
	}
	type pair struct {
		score float64
		pos   bool
	}
	ps := make([]pair, len(scores))
	nPos := 0
	for i := range scores {
		ps[i] = pair{scores[i], labels[i]}
		if labels[i] {
			nPos++
		}
	}
	if nPos == 0 {
		return 0
	}
	// Sort descending by score.
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j].score > ps[j-1].score; j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
	ap := 0.0
	tp := 0
	i := 0
	for i < len(ps) {
		j := i
		groupTP := 0
		for j < len(ps) && ps[j].score == ps[i].score {
			if ps[j].pos {
				groupTP++
			}
			j++
		}
		if groupTP > 0 {
			tp += groupTP
			precision := float64(tp) / float64(j)
			ap += precision * float64(groupTP)
		}
		i = j
	}
	return ap / float64(nPos)
}
