package metrics

import (
	"math"
	"testing"
)

func TestConfusions(t *testing.T) {
	scores := []float64{1, 1, -1, -1, 1, -1}
	labels := []bool{true, false, true, false, true, false}
	c := Confusions(scores, labels)
	if c.TP != 2 || c.FP != 1 || c.FN != 1 || c.TN != 2 {
		t.Fatalf("confusion = %+v", c)
	}
	if got := c.Accuracy(); math.Abs(got-4.0/6) > 1e-12 {
		t.Errorf("accuracy = %f", got)
	}
	if got := c.Precision(); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("precision = %f", got)
	}
	if got := c.Recall(); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("recall = %f", got)
	}
	if got := c.F1(); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("F1 = %f", got)
	}
}

func TestConfusionEdgeCases(t *testing.T) {
	var c Confusion
	if c.Accuracy() != 0 || c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 {
		t.Error("empty confusion should be all zeros")
	}
	// No predicted positives.
	c = Confusion{TN: 5, FN: 2}
	if c.Precision() != 0 {
		t.Error("precision with no predictions should be 0")
	}
}

func TestAveragePrecisionPerfect(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []bool{true, true, false, false}
	if got := AveragePrecision(scores, labels); got != 1 {
		t.Errorf("AP = %f; want 1", got)
	}
}

func TestAveragePrecisionKnown(t *testing.T) {
	// Ranking: pos, neg, pos, neg. Precisions at hits: 1/1 and 2/3.
	scores := []float64{4, 3, 2, 1}
	labels := []bool{true, false, true, false}
	want := (1.0 + 2.0/3) / 2
	if got := AveragePrecision(scores, labels); math.Abs(got-want) > 1e-12 {
		t.Errorf("AP = %f; want %f", got, want)
	}
}

func TestAveragePrecisionNoPositives(t *testing.T) {
	if got := AveragePrecision([]float64{1, 2}, []bool{false, false}); got != 0 {
		t.Errorf("AP = %f; want 0", got)
	}
}

func TestAveragePrecisionTies(t *testing.T) {
	// All scores tied: group precision = nPos/n applies to each hit.
	scores := []float64{1, 1, 1, 1}
	labels := []bool{true, false, true, false}
	if got := AveragePrecision(scores, labels); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("AP = %f; want 0.5", got)
	}
}
