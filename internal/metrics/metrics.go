// Package metrics provides the evaluation machinery of §VI-D: ROC/AUC
// computation and stratified k-fold cross validation.
package metrics

import (
	"math"
	"math/rand"
	"sort"
)

// AUC computes the area under the ROC curve from decision scores and
// binary labels (true = positive). Higher scores should indicate the
// positive class. Ties are handled by the rank-statistic (Mann-Whitney)
// formulation: tied score groups contribute half credit. It returns 0.5
// when either class is empty (no ranking information).
func AUC(scores []float64, labels []bool) float64 {
	if len(scores) != len(labels) {
		panic("metrics: scores/labels length mismatch")
	}
	type pair struct {
		score float64
		pos   bool
	}
	ps := make([]pair, len(scores))
	nPos, nNeg := 0, 0
	for i, s := range scores {
		ps[i] = pair{s, labels[i]}
		if labels[i] {
			nPos++
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return 0.5
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].score < ps[j].score })

	// Sum ranks of positives with mid-ranks for ties.
	rankSum := 0.0
	i := 0
	for i < len(ps) {
		j := i
		for j < len(ps) && ps[j].score == ps[i].score {
			j++
		}
		// Ranks i+1 .. j (1-based); mid-rank for the tie group.
		mid := float64(i+1+j) / 2
		for k := i; k < j; k++ {
			if ps[k].pos {
				rankSum += mid
			}
		}
		i = j
	}
	u := rankSum - float64(nPos)*float64(nPos+1)/2
	return u / (float64(nPos) * float64(nNeg))
}

// ROCPoint is one point of an ROC curve.
type ROCPoint struct {
	FPR, TPR  float64
	Threshold float64
}

// ROC returns the ROC curve points, threshold descending, starting at
// (0,0) and ending at (1,1).
func ROC(scores []float64, labels []bool) []ROCPoint {
	type pair struct {
		score float64
		pos   bool
	}
	ps := make([]pair, len(scores))
	nPos, nNeg := 0, 0
	for i, s := range scores {
		ps[i] = pair{s, labels[i]}
		if labels[i] {
			nPos++
		} else {
			nNeg++
		}
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].score > ps[j].score })
	curve := []ROCPoint{{0, 0, 0}}
	tp, fp := 0, 0
	i := 0
	for i < len(ps) {
		j := i
		for j < len(ps) && ps[j].score == ps[i].score {
			if ps[j].pos {
				tp++
			} else {
				fp++
			}
			j++
		}
		pt := ROCPoint{Threshold: ps[i].score}
		if nNeg > 0 {
			pt.FPR = float64(fp) / float64(nNeg)
		}
		if nPos > 0 {
			pt.TPR = float64(tp) / float64(nPos)
		}
		curve = append(curve, pt)
		i = j
	}
	return curve
}

// Fold is one cross-validation split: indices into the original dataset.
type Fold struct {
	Train []int
	Test  []int
}

// StratifiedKFold splits indices into k folds preserving the class ratio.
// Splitting is deterministic given the seed.
func StratifiedKFold(labels []bool, k int, seed int64) []Fold {
	if k < 2 {
		panic("metrics: k must be >= 2")
	}
	rng := rand.New(rand.NewSource(seed))
	var pos, neg []int
	for i, l := range labels {
		if l {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	rng.Shuffle(len(pos), func(i, j int) { pos[i], pos[j] = pos[j], pos[i] })
	rng.Shuffle(len(neg), func(i, j int) { neg[i], neg[j] = neg[j], neg[i] })

	folds := make([]Fold, k)
	assign := func(idxs []int) {
		for i, idx := range idxs {
			folds[i%k].Test = append(folds[i%k].Test, idx)
		}
	}
	assign(pos)
	assign(neg)
	for f := range folds {
		inTest := map[int]bool{}
		for _, i := range folds[f].Test {
			inTest[i] = true
		}
		for i := range labels {
			if !inTest[i] {
				folds[f].Train = append(folds[f].Train, i)
			}
		}
		sort.Ints(folds[f].Test)
		sort.Ints(folds[f].Train)
	}
	return folds
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (0 for fewer than
// two samples).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}
