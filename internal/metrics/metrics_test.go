package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAUCPerfectClassifier(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []bool{true, true, false, false}
	if got := AUC(scores, labels); got != 1 {
		t.Errorf("AUC = %f; want 1", got)
	}
}

func TestAUCWorstClassifier(t *testing.T) {
	scores := []float64{0.1, 0.2, 0.8, 0.9}
	labels := []bool{true, true, false, false}
	if got := AUC(scores, labels); got != 0 {
		t.Errorf("AUC = %f; want 0", got)
	}
}

func TestAUCAllTied(t *testing.T) {
	scores := []float64{0.5, 0.5, 0.5, 0.5}
	labels := []bool{true, true, false, false}
	if got := AUC(scores, labels); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("AUC = %f; want 0.5", got)
	}
}

func TestAUCSingleClass(t *testing.T) {
	if got := AUC([]float64{1, 2}, []bool{true, true}); got != 0.5 {
		t.Errorf("AUC = %f; want 0.5 fallback", got)
	}
}

func TestAUCKnownValue(t *testing.T) {
	// One mis-ranked pair among 2x2: positives {0.9, 0.3}, negatives
	// {0.5, 0.1}. Pairs won: (0.9>0.5),(0.9>0.1),(0.3>0.1) = 3 of 4.
	scores := []float64{0.9, 0.3, 0.5, 0.1}
	labels := []bool{true, true, false, false}
	if got := AUC(scores, labels); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("AUC = %f; want 0.75", got)
	}
}

func TestAUCMatchesPairCounting(t *testing.T) {
	r := rand.New(rand.NewSource(91))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 4 + rr.Intn(40)
		scores := make([]float64, n)
		labels := make([]bool, n)
		hasPos, hasNeg := false, false
		for i := range scores {
			scores[i] = float64(rr.Intn(10)) / 10 // force ties
			labels[i] = rr.Float64() < 0.5
			if labels[i] {
				hasPos = true
			} else {
				hasNeg = true
			}
		}
		if !hasPos || !hasNeg {
			return true
		}
		// Direct O(n^2) pair counting with half credit for ties.
		wins, total := 0.0, 0.0
		for i := range scores {
			if !labels[i] {
				continue
			}
			for j := range scores {
				if labels[j] {
					continue
				}
				total++
				switch {
				case scores[i] > scores[j]:
					wins++
				case scores[i] == scores[j]:
					wins += 0.5
				}
			}
		}
		return math.Abs(AUC(scores, labels)-wins/total) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: r}); err != nil {
		t.Error(err)
	}
}

func TestROCEndpoints(t *testing.T) {
	scores := []float64{0.9, 0.4, 0.6, 0.1}
	labels := []bool{true, false, true, false}
	curve := ROC(scores, labels)
	first, last := curve[0], curve[len(curve)-1]
	if first.FPR != 0 || first.TPR != 0 {
		t.Errorf("curve starts at (%f,%f)", first.FPR, first.TPR)
	}
	if last.FPR != 1 || last.TPR != 1 {
		t.Errorf("curve ends at (%f,%f)", last.FPR, last.TPR)
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].FPR < curve[i-1].FPR || curve[i].TPR < curve[i-1].TPR {
			t.Error("ROC not monotone")
		}
	}
}

func TestStratifiedKFold(t *testing.T) {
	labels := make([]bool, 100)
	for i := 0; i < 20; i++ {
		labels[i] = true
	}
	folds := StratifiedKFold(labels, 5, 7)
	if len(folds) != 5 {
		t.Fatalf("got %d folds", len(folds))
	}
	seen := map[int]int{}
	for _, f := range folds {
		if len(f.Test)+len(f.Train) != 100 {
			t.Errorf("fold sizes: test %d + train %d != 100", len(f.Test), len(f.Train))
		}
		pos := 0
		for _, i := range f.Test {
			seen[i]++
			if labels[i] {
				pos++
			}
		}
		// Each test fold holds ~4 of the 20 positives.
		if pos < 3 || pos > 5 {
			t.Errorf("fold has %d positives in test; want ~4", pos)
		}
		// Train and test are disjoint.
		inTest := map[int]bool{}
		for _, i := range f.Test {
			inTest[i] = true
		}
		for _, i := range f.Train {
			if inTest[i] {
				t.Error("train/test overlap")
			}
		}
	}
	// Every index appears in exactly one test fold.
	for i := 0; i < 100; i++ {
		if seen[i] != 1 {
			t.Errorf("index %d in %d test folds", i, seen[i])
		}
	}
}

func TestStratifiedKFoldDeterministic(t *testing.T) {
	labels := make([]bool, 30)
	for i := 0; i < 6; i++ {
		labels[i] = true
	}
	a := StratifiedKFold(labels, 3, 11)
	b := StratifiedKFold(labels, 3, 11)
	for f := range a {
		if len(a[f].Test) != len(b[f].Test) {
			t.Fatal("folds differ across runs")
		}
		for i := range a[f].Test {
			if a[f].Test[i] != b[f].Test[i] {
				t.Fatal("folds differ across runs")
			}
		}
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %f; want 5", m)
	}
	if s := StdDev(xs); math.Abs(s-2.13809) > 1e-4 {
		t.Errorf("StdDev = %f; want ~2.138", s)
	}
	if Mean(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Error("empty/single-element edge cases wrong")
	}
}
