package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// PrometheusContentType is the Content-Type for WritePrometheus output.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders the registry in the Prometheus text
// exposition format (hand-rolled; the repo takes no dependencies).
// Series are sorted by (family, labels), so output is deterministic and
// each family's series are contiguous under their # TYPE line.
// Histograms render cumulative le buckets plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) {
	var lastFamily string
	for _, s := range r.sortedSeries() {
		if s.base != lastFamily {
			fmt.Fprintf(w, "# TYPE %s %s\n", s.base, s.kind)
			lastFamily = s.base
		}
		switch s.kind {
		case KindCounter:
			fmt.Fprintf(w, "%s %d\n", s.full, s.counter.Value())
		case KindGauge:
			fmt.Fprintf(w, "%s %d\n", s.full, s.gauge.Value())
		case KindHistogram:
			writePromHistogram(w, s)
		}
	}
}

func writePromHistogram(w io.Writer, s *series) {
	snap := s.hist.Snapshot()
	var cum int64
	for i, bound := range snap.Bounds {
		cum += snap.Counts[i]
		fmt.Fprintf(w, "%s_bucket{%s} %d\n", s.base, joinLabels(s.labels, `le="`+formatFloat(bound)+`"`), cum)
	}
	cum += snap.Counts[len(snap.Counts)-1]
	fmt.Fprintf(w, "%s_bucket{%s} %d\n", s.base, joinLabels(s.labels, `le="+Inf"`), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", s.base, wrapLabels(s.labels), formatFloat(snap.Sum))
	fmt.Fprintf(w, "%s_count%s %d\n", s.base, wrapLabels(s.labels), cum)
}

func joinLabels(block, extra string) string {
	if block == "" {
		return extra
	}
	return block + "," + extra
}

func wrapLabels(block string) string {
	if block == "" {
		return ""
	}
	return "{" + block + "}"
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Snapshot is a consistent-enough point-in-time view of a registry:
// each value is read atomically (no torn reads) and counters only ever
// increase, so two successive snapshots are monotone per series. It is
// the payload of GET /debug/vars.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every registered series. A nil registry snapshots
// as empty (non-nil, zero-length maps, so JSON renders {} not null).
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	for _, s := range r.sortedSeries() {
		switch s.kind {
		case KindCounter:
			snap.Counters[s.full] = s.counter.Value()
		case KindGauge:
			snap.Gauges[s.full] = s.gauge.Value()
		case KindHistogram:
			snap.Histograms[s.full] = s.hist.Snapshot()
		}
	}
	return snap
}

// CounterValue returns the snapshot's value for the counter series
// named by base + labels (0 when absent).
func (s Snapshot) CounterValue(base string, labels ...string) int64 {
	return s.Counters[SeriesName(base, labels...)]
}

// GaugeValue returns the snapshot's value for the gauge series named by
// base + labels (0 when absent).
func (s Snapshot) GaugeValue(base string, labels ...string) int64 {
	return s.Gauges[SeriesName(base, labels...)]
}

// HistogramValue returns the snapshot of the histogram series named by
// base + labels.
func (s Snapshot) HistogramValue(base string, labels ...string) (HistogramSnapshot, bool) {
	h, ok := s.Histograms[SeriesName(base, labels...)]
	return h, ok
}

// LabelValues returns the sorted distinct values of one label key
// across every series of the given family, in any metric kind. It is
// how consumers discover, e.g., which stages have reported without
// importing the pipeline packages.
func (s Snapshot) LabelValues(base, key string) []string {
	seen := map[string]bool{}
	collect := func(full string) {
		b, labels := splitSeries(full)
		if b != base {
			return
		}
		if v, ok := labels[key]; ok {
			seen[v] = true
		}
	}
	for full := range s.Counters {
		collect(full)
	}
	for full := range s.Gauges {
		collect(full)
	}
	for full := range s.Histograms {
		collect(full)
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// splitSeries parses a full series name back into its base name and
// label map, inverting SeriesName (including its escapes).
func splitSeries(full string) (string, map[string]string) {
	open := strings.IndexByte(full, '{')
	if open < 0 || !strings.HasSuffix(full, "}") {
		return full, nil
	}
	base := full[:open]
	labels := map[string]string{}
	rest := full[open+1 : len(full)-1]
	for len(rest) > 0 {
		eq := strings.Index(rest, `="`)
		if eq < 0 {
			break
		}
		key := rest[:eq]
		rest = rest[eq+2:]
		var val strings.Builder
		i := 0
		for i < len(rest) {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				switch rest[i+1] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(rest[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
			i++
		}
		labels[key] = val.String()
		rest = rest[i:]
		rest = strings.TrimPrefix(rest, `"`)
		rest = strings.TrimPrefix(rest, ",")
	}
	return base, labels
}
