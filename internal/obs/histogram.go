package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// DefBuckets are the default latency buckets, in seconds. The top of
// the ladder follows the Prometheus convention (5ms to 10s, roughly
// 2-2.5x apart), which covers everything from a cache-hit HTTP request
// to a deadline-bounded mine; below that it extends down to 50µs in the
// same progression, because per-group mining stages routinely complete
// in well under a millisecond and a 5ms first bucket reported the same
// p50/p95 for stages whose per-unit costs differ by two orders of
// magnitude.
var DefBuckets = []float64{
	.00005, .0001, .00025, .0005, .001, .0025,
	.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram with Prometheus semantics: a
// value v falls in the first bucket whose upper bound is >= v (bounds
// are inclusive), values above every bound land in the implicit +Inf
// overflow bucket, and values below the first bound land in the first
// bucket. Designed for non-negative observations (durations, sizes).
//
// Observe is lock-free: one atomic add on the bucket, one CAS loop on
// the float64 sum, one atomic add on the total count — in that order,
// so a concurrent Snapshot (which reads the count first) never sees a
// count larger than its bucket total. A nil *Histogram is valid: every
// method is a no-op.
type Histogram struct {
	bounds []float64      // sorted upper bounds; +Inf is implicit
	counts []atomic.Int64 // len(bounds)+1; last is the overflow bucket
	sum    atomic.Uint64  // float64 bits, updated by CAS
	count  atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{
		bounds: b,
		counts: make([]atomic.Int64, len(b)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v; len() = overflow
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			break
		}
	}
	h.count.Add(1)
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Seconds())
}

// Count returns the number of observations so far.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Snapshot captures the histogram's state. The count is read before
// the buckets, so under concurrent Observe calls the snapshot's bucket
// total is always >= its Count — consumers padding quantile math with
// Count never index past real data.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Count:  h.count.Load(),
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Sum = math.Float64frombits(h.sum.Load())
	return s
}

// HistogramSnapshot is a point-in-time view of a histogram.
type HistogramSnapshot struct {
	// Count is the total number of observations.
	Count int64 `json:"count"`
	// Sum is the sum of all observed values.
	Sum float64 `json:"sum"`
	// Bounds are the finite bucket upper bounds (inclusive); the
	// overflow (+Inf) bucket is implicit.
	Bounds []float64 `json:"bounds"`
	// Counts are per-bucket (non-cumulative) observation counts;
	// len(Counts) == len(Bounds)+1 and the last entry is the overflow.
	Counts []int64 `json:"counts"`
}

// Mean returns Sum/Count (NaN with no observations).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return math.NaN()
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile (0 <= q <= 1) by locating the
// bucket holding the q-th observation and interpolating linearly inside
// it. The estimate therefore never leaves that bucket: the error is
// bounded by the bucket's width. The overflow bucket has no upper
// bound, so quantiles landing there report the largest finite bound —
// a deliberate underestimate that keeps the value plottable. With no
// observations the result is NaN.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Counts) == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range s.Counts {
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(s.Bounds) { // overflow bucket
			if len(s.Bounds) == 0 {
				return math.Inf(1)
			}
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		if c == 0 {
			return hi
		}
		frac := (rank - float64(cum-c)) / float64(c)
		return lo + (hi-lo)*frac
	}
	// Concurrent observers can make Count trail the bucket totals, never
	// lead them, so this is unreachable; return the top as a safe answer.
	if len(s.Bounds) == 0 {
		return math.Inf(1)
	}
	return s.Bounds[len(s.Bounds)-1]
}
